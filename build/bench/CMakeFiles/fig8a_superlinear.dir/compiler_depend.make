# Empty compiler generated dependencies file for fig8a_superlinear.
# This may be replaced when dependencies are built.
