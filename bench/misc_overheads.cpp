// §6 overhead claims — "less than 2% of running time is spent in mutual
// exclusion and termination detection" — plus the communication breakdown
// §4.1.1 predicts for a replicated basis: bodies move only for additions
// (and the suspended-pair fetches), never for reductions to zero.
#include "bench_common.hpp"

using namespace gbd;

int main() {
  bench::print_header(
      "Section 6 overheads: mutual exclusion, termination detection, communication",
      "CritSec% = (lock manager traffic x round trip) / makespan as an upper bound on the\n"
      "mutual-exclusion+termination share; bodies/add shows replication's communication\n"
      "economy (the paper's claim: polynomials move only when the basis grows).");

  TextTable table({"Input", "P", "Makespan", "Adds", "Bodies moved", "Bodies/Add", "Msgs",
                   "Bytes", "CritSec%"});
  for (const char* name : {"trinks2", "trinks1", "katsura4", "arnborg5"}) {
    PolySystem sys = load_problem(name);
    for (int p : {4, 8}) {
      ParallelConfig cfg;
      cfg.gb = bench::paper_era_criteria();
      cfg.nprocs = p;
      ParallelResult res = bench::best_of_seeds(sys, cfg, 2);
      // Each add costs one lock round trip (request+grant+release) and each
      // termination wave 2(P-1) small messages; both are latency-bound.
      std::uint64_t lock_round = 3 * (cfg.cost.latency + cfg.cost.dispatch + cfg.cost.inject);
      std::uint64_t crit = res.stats.basis_added * lock_round;
      double crit_pct = 100.0 * static_cast<double>(crit) /
                        static_cast<double>(res.machine.makespan);
      double per_add = res.stats.basis_added == 0
                           ? 0.0
                           : static_cast<double>(res.stats.polys_transferred) /
                                 static_cast<double>(res.stats.basis_added);
      table.add_row({name, std::to_string(p), std::to_string(res.machine.makespan),
                     std::to_string(res.stats.basis_added),
                     std::to_string(res.stats.polys_transferred), fmt(per_add),
                     std::to_string(res.stats.messages_sent),
                     std::to_string(res.stats.bytes_sent), fmt(crit_pct)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper band: <2%% in mutual exclusion + termination detection; bodies/add bounded by\n"
      "P-1 (each addition is fetched at most once per other processor, many never at all).\n");
  return 0;
}
