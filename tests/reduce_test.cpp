// Tests for reduction (normal forms), S-polynomials and basis reduction —
// the algebra §2 of the paper builds on.
#include "poly/reduce.hpp"

#include <gtest/gtest.h>

#include "io/parse.hpp"
#include "poly/spoly.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

PolyContext ctx3(OrderKind order = OrderKind::kGrLex) {
  return PolyContext{{"x", "y", "z"}, order};
}

Polynomial P(const PolyContext& c, std::string_view s) { return parse_poly_or_die(c, s); }

TEST(ReduceStepTest, PaperExample) {
  // §2: p = 2x^2yz^3 - 7xy^10 + z, r = 5xyz - 3 reduces p to
  // p' = -7xy^10 + (2/5)xz^2·3/... — in primitive integer form the result is
  // the same polynomial scaled: 5p - 2xz^2·r = -35xy^10 + 6xz^2 + 5z.
  PolyContext c = ctx3(OrderKind::kLex);
  Polynomial p = P(c, "2*x^2*y*z^3 - 7*x*y^10 + z");
  Polynomial r = P(c, "5*x*y*z - 3");
  ASSERT_TRUE(r.hmono().divides(p.hmono()));
  Polynomial step = reduce_step(c, p, r);
  EXPECT_EQ(step.to_string(c), "-35*x*y^10 + 6*x*z^2 + 5*z");
  // Primitive normalization keeps the content-1 coefficients but flips the
  // sign so the head coefficient is positive.
  step.make_primitive();
  EXPECT_EQ(step.to_string(c), "35*x*y^10 - 6*x*z^2 - 5*z");
}

TEST(ReduceStepTest, CancelsHeadExactly) {
  PolyContext c = ctx3();
  Polynomial p = P(c, "6*x^2*y + x");
  Polynomial r = P(c, "4*x*y + z");
  Polynomial step = reduce_step(c, p, r);
  ASSERT_FALSE(step.is_zero());
  // Head x^2*y must be gone; the new head is strictly smaller.
  EXPECT_LT(c.cmp(step.hmono(), p.hmono()), 0);
  // 2·p − 3x·r = -3xz + 2x.
  EXPECT_EQ(step.to_string(c), "-3*x*z + 2*x");
}

TEST(ReduceStepTest, ExactMultipleGoesToZero) {
  PolyContext c = ctx3();
  Polynomial r = P(c, "x*y - z");
  Polynomial p = r.mul_term(BigInt(7), Monomial({2, 0, 0}));
  Polynomial step1 = reduce_step(c, p, r);
  // One step cancels the head; the remainder -7x^2 z + ... wait: p = 7x^3y - 7x^2 z.
  // step: p - 7x^2·r = 0 directly, since p is a term-multiple of r.
  EXPECT_TRUE(step1.is_zero());
}

TEST(ReduceFullTest, NormalFormIrreducible) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "x^2 - y"), P(c, "x*y - z")};
  VectorReducerSet set(&basis);
  ReduceOutcome out = reduce_full(c, P(c, "x^3"), set);
  // x^3 -> x·(x^2) -> x·y -> z. Head-reduction: x^3 - x(x^2-y) = xy; xy - (xy-z) = z.
  EXPECT_EQ(out.poly.to_string(c), "z");
  EXPECT_EQ(out.steps, 2u);
  EXPECT_TRUE(is_normal(out.poly, set));
}

TEST(ReduceFullTest, ReducesToZero) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "x - y")};
  VectorReducerSet set(&basis);
  // (x - y)·(x + 17y) is in the ideal; head reduction alone reaches 0.
  Polynomial p = basis[0].mul(c, P(c, "x + 17*y"));
  ReduceOutcome out = reduce_full(c, p, set);
  EXPECT_TRUE(out.poly.is_zero());
}

TEST(ReduceFullTest, HeadOnlyLeavesReducibleTail) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "y - 1")};
  VectorReducerSet set(&basis);
  // Head x^2 is irreducible by y; tail y is reducible but head-reduction stops.
  Polynomial p = P(c, "x^2 + y");
  ReduceOutcome head_only = reduce_full(c, p, set);
  EXPECT_EQ(head_only.poly.to_string(c), "x^2 + y");
  EXPECT_EQ(head_only.steps, 0u);

  ReduceOptions opts;
  opts.tail_reduce = true;
  ReduceOutcome full = reduce_full(c, p, set, opts);
  EXPECT_EQ(full.poly.to_string(c), "x^2 + 1");
  EXPECT_EQ(full.steps, 1u);
}

TEST(ReduceFullTest, ZeroInputIsNormal) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "x")};
  VectorReducerSet set(&basis);
  ReduceOutcome out = reduce_full(c, Polynomial(), set);
  EXPECT_TRUE(out.poly.is_zero());
  EXPECT_EQ(out.steps, 0u);
  EXPECT_TRUE(is_normal(Polynomial(), set));
}

TEST(ReduceFullTest, ObserverSeesEachStep) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "x^2 - y"), P(c, "x*y - z")};
  VectorReducerSet set(&basis);
  struct Recorder : ReduceObserver {
    std::vector<std::uint64_t> reducers;
    std::uint64_t total_cost = 0;
    void on_step(std::uint64_t id, std::uint64_t cost) override {
      reducers.push_back(id);
      total_cost += cost;
    }
  } rec;
  ReduceOutcome out = reduce_full(c, P(c, "x^3"), set, {}, &rec);
  EXPECT_EQ(out.steps, rec.reducers.size());
  EXPECT_EQ(rec.reducers, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_GT(rec.total_cost, 0u);
}

TEST(ReduceFullTest, EmptySetIsIdentity) {
  PolyContext c = ctx3();
  VectorReducerSet set;
  Polynomial p = P(c, "3*x + 1");
  ReduceOutcome out = reduce_full(c, p, set);
  EXPECT_TRUE(out.poly.equals(p));
  EXPECT_TRUE(is_normal(p, set));
}

TEST(SpolyTest, PaperDefinition) {
  // SPOL cancels both heads: for f = x^2 - y, g = x*y - z (grlex),
  // lcm = x^2 y; spol = y·f - x·g = xz - y^2 (primitive, head positive).
  PolyContext c = ctx3();
  Polynomial f = P(c, "x^2 - y");
  Polynomial g = P(c, "x*y - z");
  Polynomial s = spoly(c, f, g);
  EXPECT_EQ(s.to_string(c), "x*z - y^2");
  EXPECT_EQ(pair_lcm(f, g).to_string(c.vars), "x^2*y");
}

TEST(SpolyTest, AntisymmetricUpToSign) {
  PolyContext c = ctx3();
  Polynomial f = P(c, "x^2 + 3*y*z");
  Polynomial g = P(c, "2*x*y^2 - z");
  Polynomial s1 = spoly(c, f, g);
  Polynomial s2 = spoly(c, g, f);
  // Both are primitive with positive heads, so they must be exactly equal or
  // exact negatives pre-normalization; after make_primitive they're equal.
  EXPECT_TRUE(s1.equals(s2));
}

TEST(SpolyTest, HeadsCancelForEqualHeads) {
  PolyContext c = ctx3();
  Polynomial f = P(c, "x^2 - y");
  Polynomial g = P(c, "x^2 - z");
  Polynomial s = spoly(c, f, g);
  EXPECT_EQ(s.to_string(c), "y - z");
}

TEST(SpolyTest, CoefficientsStayReduced) {
  PolyContext c = ctx3();
  Polynomial f = P(c, "6*x^2 - y");
  Polynomial g = P(c, "4*x*y - z");
  // k1=6, k2=4, gcd 2 -> multipliers 2·y·f and 3·x·g; primitive result.
  Polynomial s = spoly(c, f, g);
  EXPECT_TRUE(s.is_primitive());
  EXPECT_EQ(s.to_string(c), "3*x*z - 2*y^2");
}

TEST(ReduceBasisTest, MinimizesDivisibleHeads) {
  PolyContext c = ctx3();
  // x^2 - y's head is divisible by x's head, so it must be dropped.
  std::vector<Polynomial> basis = {P(c, "x"), P(c, "x^2 - y"), P(c, "y - z")};
  std::vector<Polynomial> red = reduce_basis(c, basis);
  ASSERT_EQ(red.size(), 2u);
  EXPECT_EQ(red[0].to_string(c), "y - z");  // ascending head order
  EXPECT_EQ(red[1].to_string(c), "x");
}

TEST(ReduceBasisTest, TailReducesAgainstOthers) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {P(c, "x^2 + y"), P(c, "y - z")};
  std::vector<Polynomial> red = reduce_basis(c, basis);
  ASSERT_EQ(red.size(), 2u);
  EXPECT_EQ(red[0].to_string(c), "y - z");
  EXPECT_EQ(red[1].to_string(c), "x^2 + z");
}

TEST(ReduceBasisTest, DropsZerosAndDuplicates) {
  PolyContext c = ctx3();
  std::vector<Polynomial> basis = {Polynomial(), P(c, "x - y"), P(c, "2*x - 2*y")};
  std::vector<Polynomial> red = reduce_basis(c, basis);
  ASSERT_EQ(red.size(), 1u);
  EXPECT_EQ(red[0].to_string(c), "x - y");
}

class ReducePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReducePropertyTest, NormalFormIsIrreducibleAndSmaller) {
  Rng rng(GetParam());
  PolySystem sys = random_system(rng, 3, 4, 3, 4, 7);
  const PolyContext& c = sys.ctx;
  std::vector<Polynomial> basis(sys.polys.begin(), sys.polys.begin() + 3);
  VectorReducerSet set(&basis);
  Polynomial p = sys.polys[3];
  ReduceOutcome out = reduce_full(c, p, set, ReduceOptions{.tail_reduce = true, .max_steps = 100000});
  // Strong normal form: every term irreducible.
  for (const auto& t : out.poly.terms()) {
    EXPECT_EQ(set.find_reducer(t.mono, nullptr), nullptr);
  }
  if (!out.poly.is_zero() && !p.is_zero()) {
    EXPECT_LE(c.cmp(out.poly.hmono(), p.hmono()), 0);
  }
}

TEST_P(ReducePropertyTest, MembersOfPrincipalIdealVanish) {
  // q·g head-reduces to zero against {g} for any q (single-generator
  // reduction is division, which always succeeds).
  Rng rng(GetParam() ^ 0xbeef);
  PolySystem sys = random_system(rng, 3, 2, 3, 4, 9);
  const PolyContext& c = sys.ctx;
  std::vector<Polynomial> basis = {sys.polys[0]};
  VectorReducerSet set(&basis);
  Polynomial member = sys.polys[0].mul(c, sys.polys[1]);
  ReduceOutcome out = reduce_full(c, member, set, ReduceOptions{.tail_reduce = true});
  EXPECT_TRUE(out.poly.is_zero());
}

TEST_P(ReducePropertyTest, SpolyHeadStrictlyBelowLcm) {
  Rng rng(GetParam() ^ 0x1234);
  PolySystem sys = random_system(rng, 3, 2, 4, 4, 9);
  const PolyContext& c = sys.ctx;
  Polynomial s = spoly(c, sys.polys[0], sys.polys[1]);
  if (!s.is_zero()) {
    Monomial l = pair_lcm(sys.polys[0], sys.polys[1]);
    EXPECT_LT(c.cmp(s.hmono(), l), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace gbd

namespace gbd {
namespace {

TEST(InterreduceTest, PreservesIdealOnNonBases) {
  // {x, x*y + z}: reduce_basis's minimization would drop x*y+z (losing z);
  // interreduce must keep z in the ideal.
  PolyContext c{{"x", "y", "z"}, OrderKind::kGrLex};
  std::vector<Polynomial> gens = {parse_poly_or_die(c, "x"),
                                  parse_poly_or_die(c, "x*y + z")};
  std::vector<Polynomial> out = interreduce(c, gens);
  ASSERT_EQ(out.size(), 2u);
  // x*y reduces away, leaving z.
  bool has_z = false;
  for (const auto& g : out) has_z = has_z || g.to_string(c) == "z";
  EXPECT_TRUE(has_z);
}

TEST(InterreduceTest, DropsRedundancyAndZeros) {
  PolyContext c{{"x", "y", "z"}, OrderKind::kGrLex};
  std::vector<Polynomial> gens = {parse_poly_or_die(c, "x - y"),
                                  parse_poly_or_die(c, "2*x - 2*y"), Polynomial(),
                                  parse_poly_or_die(c, "(x - y)*(y + 3)")};
  std::vector<Polynomial> out = interreduce(c, gens);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to_string(c), "x - y");
}

TEST(InterreduceTest, FixedPointOnReducedBasis) {
  PolyContext c{{"x", "y", "z"}, OrderKind::kGrLex};
  std::vector<Polynomial> gb = {parse_poly_or_die(c, "x^2 - y"),
                                parse_poly_or_die(c, "x*y - z")};
  std::vector<Polynomial> out = interreduce(c, gb);
  ASSERT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace gbd
