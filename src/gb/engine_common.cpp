#include "gb/engine_common.hpp"

#include <sstream>

namespace gbd {

const char* selection_name(Selection s) {
  switch (s) {
    case Selection::kNormal:
      return "normal";
    case Selection::kDegree:
      return "degree";
    case Selection::kFifo:
      return "fifo";
    case Selection::kSugar:
      return "sugar";
  }
  return "?";
}

void GbStats::merge(const GbStats& other) {
  pairs_created += other.pairs_created;
  pairs_pruned_coprime += other.pairs_pruned_coprime;
  pairs_pruned_chain += other.pairs_pruned_chain;
  spolys_computed += other.spolys_computed;
  reductions_to_zero += other.reductions_to_zero;
  basis_added += other.basis_added;
  reduction_steps += other.reduction_steps;
  max_step_cost = std::max(max_step_cost, other.max_step_cost);
  work_units += other.work_units;
  messages_sent += other.messages_sent;
  bytes_sent += other.bytes_sent;
  polys_transferred += other.polys_transferred;
  lock_wait_units += other.lock_wait_units;
  idle_units += other.idle_units;
  termination_units += other.termination_units;
  peak_resident_bodies = std::max(peak_resident_bodies, other.peak_resident_bodies);
}

std::string GbStats::summary() const {
  std::ostringstream os;
  os << "pairs=" << pairs_created << " pruned(coprime)=" << pairs_pruned_coprime
     << " pruned(chain)=" << pairs_pruned_chain << " spolys=" << spolys_computed
     << " zeroed=" << reductions_to_zero << " added=" << basis_added
     << " steps=" << reduction_steps << " work=" << work_units;
  if (messages_sent > 0) {
    os << " msgs=" << messages_sent << " bytes=" << bytes_sent
       << " polys_moved=" << polys_transferred;
  }
  return os.str();
}

}  // namespace gbd
