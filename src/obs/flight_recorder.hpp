// Crash flight recorder — post-mortem for dying ranks.
//
// A SocketMachine rank that hits a fatal signal, an unrecoverable NetError
// or the launcher's watchdog used to die silently; the --kill-rank chaos
// drill then proves only that the *survivors* noticed. Armed, this recorder
// turns any such death into an actionable artifact: a JSON dump of the last
// N trace events from the rank's ProcTracer ring, the rank's latest
// telemetry sample, and the reason — written with async-signal-safe
// primitives only (open/write/strlen-free manual formatting; ev_name()
// returns string literals), so it works from inside SIGSEGV.
//
// Ownership: one process-global recorder (signal handlers have no closure
// argument). arm() installs handlers for the fatal signals and remembers
// where the trace ring lives; dump_now() may also be called directly from
// ordinary code (the NetError catch in gbd_launch, watchdog SIGTERM). The
// first dump wins; later calls are no-ops. After the handler dumps it
// restores the default disposition and re-raises, so the exit status still
// reflects the signal (the launcher's drill verdict depends on that).
//
// A SIGKILLed rank (the drill's victim) cannot dump anything — by design.
// The post-mortem for that drill comes from the survivors: their NetError
// ("peer rank N failed") dumps name the dead rank and show what each
// survivor was doing when the machine lost it.
#pragma once

#include <cstdint>
#include <string>

namespace gbd {

class ProcTracer;    // obs/tracer.hpp
class ProcTelemetry; // obs/telemetry.hpp
class Tracer;        // obs/tracer.hpp
class Telemetry;     // obs/telemetry.hpp

class FlightRecorder {
 public:
  /// The process-global recorder (signal handlers need static reach).
  static FlightRecorder& instance();

  /// Arm: remember the dump path and data sources, install fatal-signal
  /// handlers (SEGV, BUS, FPE, ILL, ABRT, TERM). `tracer`/`telemetry` may be
  /// null (the dump simply omits those sections) and must stay valid until
  /// disarm(). Re-arming replaces the configuration.
  void arm(const std::string& path, int rank, const ProcTracer* tracer,
           const ProcTelemetry* telemetry);

  /// Lazy variant: resolves this rank's ProcTracer/ProcTelemetry views at
  /// dump time, so it can be armed *before* Machine::run has sized the
  /// tracer/telemetry (their per-proc storage does not exist yet when a
  /// launcher arms). Either owner may be null. A dump taken before the run
  /// starts simply omits the unresolvable sections.
  void arm(const std::string& path, int rank, const Tracer* tracer, const Telemetry* telemetry);

  /// Restore the previous signal dispositions and forget the sources.
  void disarm();

  /// Write the dump now (async-signal-safe). Idempotent: the first call
  /// wins, later calls return immediately. Safe to call when unarmed (no-op).
  void dump_now(const char* reason);

  bool armed() const { return armed_; }
  bool dumped() const { return dumped_; }

  /// Events kept in the dump (the tail of the trace ring).
  static constexpr std::size_t kMaxDumpEvents = 256;

 private:
  FlightRecorder() = default;

  char path_[512] = {0};
  int rank_ = 0;
  const ProcTracer* tracer_ = nullptr;
  const ProcTelemetry* telemetry_ = nullptr;
  const Tracer* tracer_owner_ = nullptr;       ///< lazy arm: resolve at(rank_) at dump time
  const Telemetry* telemetry_owner_ = nullptr;
  volatile bool armed_ = false;
  volatile bool dumped_ = false;
};

}  // namespace gbd
