// Tests for the verification oracles themselves — in particular the negative
// cases (a broken oracle that always says yes would silently vouch for every
// engine in the rest of the suite).
#include "gb/verify.hpp"

#include <gtest/gtest.h>

#include "gb/sequential.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

PolyContext ctx3() { return PolyContext{{"x", "y", "z"}, OrderKind::kGrLex}; }

Polynomial P(const PolyContext& c, std::string_view s) { return parse_poly_or_die(c, s); }

TEST(VerifyTest, DetectsNonBasis) {
  // {x^2 - y, x^3 - z} is not a Gröbner basis (its s-polynomial has normal
  // form x*z - y^2 != 0... actually xy - z; either way nonzero).
  PolyContext c = ctx3();
  std::vector<Polynomial> not_gb = {P(c, "x^2 - y"), P(c, "x^3 - z")};
  std::string why;
  EXPECT_FALSE(is_groebner_basis(c, not_gb, &why));
  EXPECT_NE(why.find("does not reduce to zero"), std::string::npos);
}

TEST(VerifyTest, AcceptsKnownBasis) {
  PolyContext c = ctx3();
  std::vector<Polynomial> gb = {P(c, "x^2 - y"), P(c, "x*y - z"), P(c, "x*z - y^2"),
                                P(c, "y^3 - z^2")};
  EXPECT_TRUE(is_groebner_basis(c, gb));
}

TEST(VerifyTest, RejectsZeroElement) {
  PolyContext c = ctx3();
  std::vector<Polynomial> with_zero = {P(c, "x"), Polynomial()};
  std::string why;
  EXPECT_FALSE(is_groebner_basis(c, with_zero, &why));
  EXPECT_NE(why.find("zero polynomial"), std::string::npos);
}

TEST(VerifyTest, SingletonAndEmptyAreBases) {
  PolyContext c = ctx3();
  std::vector<Polynomial> empty;
  EXPECT_TRUE(is_groebner_basis(c, empty));
  std::vector<Polynomial> one = {P(c, "x^2 + y*z - 1")};
  EXPECT_TRUE(is_groebner_basis(c, one));
}

TEST(VerifyTest, IdealMembership) {
  PolyContext c = ctx3();
  PolySystem sys;
  sys.ctx = c;
  sys.polys = {P(c, "x^2 - y"), P(c, "x*y - z")};
  std::vector<Polynomial> gb = groebner_sequential(sys).basis;

  // Members: combinations of generators.
  EXPECT_TRUE(ideal_contains(c, gb, P(c, "(x^2 - y)*(z + 3)")));
  EXPECT_TRUE(ideal_contains(c, gb, P(c, "x*(x^2 - y) - (x*y - z) + 0")));
  EXPECT_TRUE(ideal_contains(c, gb, Polynomial()));
  // Non-members.
  EXPECT_FALSE(ideal_contains(c, gb, P(c, "x")));
  EXPECT_FALSE(ideal_contains(c, gb, P(c, "1")));
  EXPECT_FALSE(ideal_contains(c, gb, P(c, "x^2 - y + 1")));
}

TEST(VerifyTest, SameIdealDistinguishes) {
  PolyContext c = ctx3();
  PolySystem a, b, d;
  a.ctx = b.ctx = d.ctx = c;
  a.polys = {P(c, "x - y")};
  b.polys = {P(c, "2*x - 2*y")};       // same ideal, different generator
  d.polys = {P(c, "x - y"), P(c, "z")};  // strictly bigger ideal
  auto ga = groebner_sequential(a).basis;
  auto gb = groebner_sequential(b).basis;
  auto gd = groebner_sequential(d).basis;
  EXPECT_TRUE(same_ideal(c, ga, gb));
  EXPECT_FALSE(same_ideal(c, ga, gd));
  EXPECT_FALSE(same_ideal(c, gd, ga));
}

TEST(VerifyTest, FullCertificateCatchesMissingInput) {
  PolyContext c = ctx3();
  std::vector<Polynomial> inputs = {P(c, "x"), P(c, "y")};
  std::vector<Polynomial> basis = {P(c, "x")};  // a GB, but not of the inputs' ideal
  std::string why;
  EXPECT_FALSE(verify_groebner_result(c, inputs, basis, &why));
  EXPECT_NE(why.find("not in the output ideal"), std::string::npos);
}

TEST(VerifyTest, FullCertificatePassesOnRealRun) {
  PolySystem sys = load_problem("pavelle4");
  SequentialResult res = groebner_sequential(sys);
  std::string why;
  EXPECT_TRUE(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) << why;
}

}  // namespace
}  // namespace gbd
