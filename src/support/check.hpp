// Lightweight runtime assertion macros.
//
// GBD_CHECK is always on (used for invariants whose violation would corrupt
// results, e.g. dividing a monomial by a non-divisor). GBD_DCHECK compiles
// away in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gbd {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "GBD_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace gbd

#define GBD_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) ::gbd::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define GBD_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::gbd::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define GBD_DCHECK(cond) ((void)0)
#else
#define GBD_DCHECK(cond) GBD_CHECK(cond)
#endif
