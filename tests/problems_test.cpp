// Tests for the built-in benchmark problem library.
#include "problems/problems.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gbd {
namespace {

TEST(ProblemsTest, ListMatchesPaperBenchmarks) {
  std::set<std::string> names;
  for (const auto& info : problem_list()) names.insert(info.name);
  for (const char* expected : {"arnborg4", "arnborg5", "katsura4", "lazard", "morgenstern",
                               "pavelle4", "rose", "trinks1", "trinks2"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
    EXPECT_TRUE(has_problem(expected));
  }
  EXPECT_FALSE(has_problem("nonexistent"));
}

TEST(ProblemsTest, AllProblemsLoadAndAreCanonical) {
  for (const auto& info : problem_list()) {
    PolySystem sys = load_problem(info.name);
    EXPECT_EQ(sys.name, info.name);
    EXPECT_FALSE(sys.ctx.vars.empty());
    EXPECT_FALSE(sys.polys.empty());
    for (const auto& p : sys.polys) {
      EXPECT_FALSE(p.is_zero()) << info.name;
      EXPECT_TRUE(p.is_primitive()) << info.name;
      EXPECT_EQ(p.hmono().nvars(), sys.ctx.nvars()) << info.name;
    }
  }
}

TEST(ProblemsTest, Arnborg4IsCyclic4) {
  PolySystem sys = load_problem("arnborg4");
  EXPECT_EQ(sys.ctx.nvars(), 4u);
  ASSERT_EQ(sys.polys.size(), 4u);
  // Generator k has total degree k (k = 1..3) plus the degree-4 product-1.
  EXPECT_EQ(sys.polys[0].degree(), 1u);
  EXPECT_EQ(sys.polys[1].degree(), 2u);
  EXPECT_EQ(sys.polys[2].degree(), 3u);
  EXPECT_EQ(sys.polys[3].degree(), 4u);
  EXPECT_EQ(sys.polys[3].nterms(), 2u);  // xyzw - 1
}

TEST(ProblemsTest, Katsura4Shape) {
  PolySystem sys = load_problem("katsura4");
  EXPECT_EQ(sys.ctx.nvars(), 5u);
  ASSERT_EQ(sys.polys.size(), 5u);
  EXPECT_EQ(sys.polys[0].degree(), 1u);  // the normalization equation
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(sys.polys[i].degree(), 2u);
}

TEST(ProblemsTest, TrinksVariants) {
  PolySystem big = load_problem("trinks1");
  PolySystem little = load_problem("trinks2");
  EXPECT_EQ(big.polys.size(), 6u);
  EXPECT_EQ(little.polys.size(), 7u);
  EXPECT_EQ(big.ctx.vars, little.ctx.vars);
}

TEST(ProblemsTest, StandinsAreFlagged) {
  std::set<std::string> standins;
  for (const auto& info : problem_list()) {
    if (info.standin) standins.insert(info.name);
  }
  EXPECT_EQ(standins, (std::set<std::string>{"lazard", "morgenstern", "pavelle4", "rose"}));
}

TEST(ParametricTest, KatsuraGeneratorMatchesTableText) {
  for (int n : {4, 5}) {
    PolySystem gen = katsura_system(n);
    PolySystem text = load_problem("katsura" + std::to_string(n));
    EXPECT_EQ(gen.ctx.vars, text.ctx.vars) << n;
    ASSERT_EQ(gen.polys.size(), text.polys.size()) << n;
    for (std::size_t i = 0; i < gen.polys.size(); ++i) {
      EXPECT_TRUE(gen.polys[i].equals(text.polys[i])) << "katsura" << n << " eq " << i;
    }
  }
}

TEST(ParametricTest, CyclicGeneratorMatchesArnborg) {
  // arnborg4/5 ARE cyclic(4)/cyclic(5) with historical variable names;
  // equals() compares exponent vectors, so the rename is invisible.
  for (int n : {4, 5}) {
    PolySystem gen = cyclic_system(n);
    PolySystem text = load_problem("arnborg" + std::to_string(n));
    ASSERT_EQ(gen.polys.size(), text.polys.size()) << n;
    for (std::size_t i = 0; i < gen.polys.size(); ++i) {
      EXPECT_TRUE(gen.polys[i].equals(text.polys[i])) << "cyclic" << n << " eq " << i;
    }
  }
}

TEST(ParametricTest, ParametricNamesLoad) {
  EXPECT_TRUE(has_problem("katsura(6)"));
  EXPECT_TRUE(has_problem("cyclic(7)"));
  EXPECT_FALSE(has_problem("katsura(0)"));
  EXPECT_FALSE(has_problem("katsura(17)"));
  EXPECT_FALSE(has_problem("cyclic(1)"));
  EXPECT_FALSE(has_problem("cyclic(13)"));
  EXPECT_FALSE(has_problem("noon(3)"));
  EXPECT_FALSE(has_problem("katsura("));
  EXPECT_FALSE(has_problem("katsura(x)"));
  PolySystem k6 = load_problem("katsura(6)");
  EXPECT_EQ(k6.ctx.nvars(), 7u);
  EXPECT_EQ(k6.polys.size(), 7u);
  EXPECT_EQ(k6.name, "katsura6");
  for (const auto& p : k6.polys) EXPECT_TRUE(p.is_primitive());
  PolySystem c7 = load_problem("cyclic(7)");
  EXPECT_EQ(c7.ctx.nvars(), 7u);
  EXPECT_EQ(c7.polys.size(), 7u);
  EXPECT_EQ(c7.polys.back().nterms(), 2u);  // product - 1
}

TEST(ReplicateRenamedTest, DisjointVariableBlocks) {
  PolySystem base = load_problem("arnborg4");
  PolySystem x3 = replicate_renamed(base, 3);
  EXPECT_EQ(x3.name, "arnborg4x3");
  EXPECT_EQ(x3.ctx.nvars(), 12u);
  EXPECT_EQ(x3.polys.size(), 12u);
  // Every polynomial only touches one block of 4 variables.
  for (std::size_t pi = 0; pi < x3.polys.size(); ++pi) {
    std::size_t block = pi / 4;
    for (const auto& t : x3.polys[pi].terms()) {
      for (std::size_t v = 0; v < 12; ++v) {
        if (v / 4 != block) {
          EXPECT_EQ(t.mono.exp(v), 0u);
        }
      }
    }
  }
  // Variable names are distinct.
  std::set<std::string> names(x3.ctx.vars.begin(), x3.ctx.vars.end());
  EXPECT_EQ(names.size(), 12u);
}

TEST(ReplicateRenamedTest, SingleCopyKeepsNames) {
  PolySystem base = load_problem("trinks2");
  PolySystem x1 = replicate_renamed(base, 1);
  EXPECT_EQ(x1.ctx.vars, base.ctx.vars);
  ASSERT_EQ(x1.polys.size(), base.polys.size());
  for (std::size_t i = 0; i < base.polys.size(); ++i) {
    EXPECT_TRUE(x1.polys[i].equals(base.polys[i]));
  }
}

TEST(RandomSystemTest, RespectsBounds) {
  Rng rng(2024);
  PolySystem sys = random_system(rng, 4, 6, 5, 7, 10);
  EXPECT_EQ(sys.ctx.nvars(), 4u);
  EXPECT_EQ(sys.polys.size(), 6u);
  for (const auto& p : sys.polys) {
    EXPECT_FALSE(p.is_zero());
    EXPECT_LE(p.nterms(), 7u);
    for (const auto& t : p.terms()) {
      EXPECT_LE(t.mono.degree(), 5u);
    }
  }
}

TEST(RandomSystemTest, DeterministicPerSeed) {
  Rng a(77), b(77), c(78);
  PolySystem s1 = random_system(a, 3, 3, 3, 4, 5);
  PolySystem s2 = random_system(b, 3, 3, 3, 4, 5);
  PolySystem s3 = random_system(c, 3, 3, 3, 4, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(s1.polys[i].equals(s2.polys[i]));
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!s1.polys[i].equals(s3.polys[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(EcoTest, Eco3MatchesTheClassicalSystem) {
  PolySystem sys = eco_system(3);
  EXPECT_EQ(sys.name, "eco3");
  ASSERT_EQ(sys.ctx.nvars(), 3u);
  ASSERT_EQ(sys.polys.size(), 3u);
  // f1 = x1*x2*x3 + x1*x3 - 1, f2 = x2*x3 - 2, f3 = x1 + x2 + 1.
  EXPECT_TRUE(sys.polys[0].equals(parse_poly_or_die(sys.ctx, "x1*x2*x3 + x1*x3 - 1")));
  EXPECT_TRUE(sys.polys[1].equals(parse_poly_or_die(sys.ctx, "x2*x3 - 2")));
  EXPECT_TRUE(sys.polys[2].equals(parse_poly_or_die(sys.ctx, "x1 + x2 + 1")));
}

TEST(EcoTest, FamilyShape) {
  for (int n = 3; n <= 7; ++n) {
    PolySystem sys = eco_system(n);
    ASSERT_EQ(sys.ctx.nvars(), static_cast<std::size_t>(n));
    ASSERT_EQ(sys.polys.size(), static_cast<std::size_t>(n));
    // Price equations are cubic (quadratic for the last one), the
    // normalization is linear; all primitive, all touch x_n or the tail sum.
    for (int k = 0; k < n - 1; ++k) {
      EXPECT_EQ(sys.polys[static_cast<std::size_t>(k)].degree(),
                k + 1 <= n - 2 ? 3u : 2u)
          << "n=" << n << " k=" << k;
      // f_k has 1 (head) + (n-1-k-1+1 when k+1<=n-2) + 1 terms.
      std::size_t convolution = k + 1 <= n - 2 ? static_cast<std::size_t>(n - 2 - k) : 0u;
      EXPECT_EQ(sys.polys[static_cast<std::size_t>(k)].nterms(), 2u + convolution);
    }
    EXPECT_EQ(sys.polys.back().degree(), 1u);
    EXPECT_EQ(sys.polys.back().nterms(), static_cast<std::size_t>(n));
    for (const auto& p : sys.polys) EXPECT_TRUE(p.is_primitive());
  }
}

TEST(SparseTest, DeterministicInSeedAndBounded) {
  PolySystem a = random_sparse_system(42, 4, 5, 2, 3);
  PolySystem b = random_sparse_system(42, 4, 5, 2, 3);
  PolySystem c = random_sparse_system(43, 4, 5, 2, 3);
  EXPECT_EQ(a.name, "sparse4_5_42");
  ASSERT_EQ(a.polys.size(), 5u);
  ASSERT_EQ(b.polys.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(a.polys[i].equals(b.polys[i]));
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i)
    if (!a.polys[i].equals(c.polys[i])) any_diff = true;
  EXPECT_TRUE(any_diff);
  for (const auto& p : a.polys) {
    EXPECT_FALSE(p.is_zero());
    EXPECT_TRUE(p.is_primitive());
    EXPECT_LE(p.nterms(), 3u);
    for (const auto& t : p.terms()) {
      EXPECT_LE(t.mono.degree(), 2u);
      int distinct = 0;
      for (std::size_t v = 0; v < 4; ++v)
        if (t.mono.exp(v) != 0) ++distinct;
      EXPECT_LE(distinct, 2) << "sparse terms touch at most two variables";
    }
  }
}

TEST(ParametricNameTest, EcoAndSparseSpellings) {
  EXPECT_TRUE(has_problem("eco(3)"));
  EXPECT_TRUE(has_problem("eco(12)"));
  EXPECT_FALSE(has_problem("eco(2)"));
  EXPECT_FALSE(has_problem("eco(13)"));
  EXPECT_TRUE(has_problem("sparse(4,42)"));
  EXPECT_TRUE(has_problem("sparse(2,0)"));
  EXPECT_FALSE(has_problem("sparse(9,1)"));
  EXPECT_FALSE(has_problem("sparse(4)"));
  EXPECT_FALSE(has_problem("sparse(4,42,7)"));
  EXPECT_FALSE(has_problem("eco()"));
  EXPECT_FALSE(has_problem("eco(99999999999999999999)"));

  PolySystem eco = load_problem("eco(4)");
  EXPECT_EQ(eco.name, "eco4");
  EXPECT_EQ(eco.polys.size(), 4u);
  PolySystem sp = load_problem("sparse(3,7)");
  EXPECT_EQ(sp.ctx.nvars(), 3u);
  EXPECT_EQ(sp.polys.size(), 3u);
  // The spelling is deterministic: same name, same system.
  PolySystem sp2 = load_problem("sparse(3,7)");
  for (std::size_t i = 0; i < sp.polys.size(); ++i)
    EXPECT_TRUE(sp.polys[i].equals(sp2.polys[i]));
}

}  // namespace
}  // namespace gbd
