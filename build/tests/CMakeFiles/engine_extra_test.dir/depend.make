# Empty dependencies file for engine_extra_test.
# This may be replaced when dependencies are built.
