#include "poly/monomial.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"
#include "support/cost.hpp"
#include "support/serialize.hpp"

namespace gbd {

Monomial::Monomial(std::vector<std::uint32_t> exps) : exps_(std::move(exps)) {
  degree_ = std::accumulate(exps_.begin(), exps_.end(), 0u);
}

Monomial Monomial::operator*(const Monomial& rhs) const {
  GBD_DCHECK(nvars() == rhs.nvars());
  Monomial out(nvars());
  for (std::size_t i = 0; i < exps_.size(); ++i) out.exps_[i] = exps_[i] + rhs.exps_[i];
  out.degree_ = degree_ + rhs.degree_;
  CostCounter::charge(exps_.size());
  return out;
}

bool Monomial::divides(const Monomial& rhs) const {
  GBD_DCHECK(nvars() == rhs.nvars());
  if (degree_ > rhs.degree_) return false;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    if (exps_[i] > rhs.exps_[i]) return false;
  }
  CostCounter::charge(exps_.size());
  return true;
}

Monomial Monomial::operator/(const Monomial& rhs) const {
  GBD_DCHECK(nvars() == rhs.nvars());
  Monomial out(nvars());
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    GBD_CHECK_MSG(exps_[i] >= rhs.exps_[i], "Monomial division by non-divisor");
    out.exps_[i] = exps_[i] - rhs.exps_[i];
  }
  out.degree_ = degree_ - rhs.degree_;
  CostCounter::charge(exps_.size());
  return out;
}

Monomial Monomial::hcf(const Monomial& a, const Monomial& b) {
  GBD_DCHECK(a.nvars() == b.nvars());
  Monomial out(a.nvars());
  std::uint32_t deg = 0;
  for (std::size_t i = 0; i < a.exps_.size(); ++i) {
    out.exps_[i] = std::min(a.exps_[i], b.exps_[i]);
    deg += out.exps_[i];
  }
  out.degree_ = deg;
  CostCounter::charge(a.exps_.size());
  return out;
}

Monomial Monomial::lcm(const Monomial& a, const Monomial& b) {
  GBD_DCHECK(a.nvars() == b.nvars());
  Monomial out(a.nvars());
  std::uint32_t deg = 0;
  for (std::size_t i = 0; i < a.exps_.size(); ++i) {
    out.exps_[i] = std::max(a.exps_[i], b.exps_[i]);
    deg += out.exps_[i];
  }
  out.degree_ = deg;
  CostCounter::charge(a.exps_.size());
  return out;
}

bool Monomial::coprime(const Monomial& a, const Monomial& b) {
  GBD_DCHECK(a.nvars() == b.nvars());
  for (std::size_t i = 0; i < a.exps_.size(); ++i) {
    if (a.exps_[i] != 0 && b.exps_[i] != 0) return false;
  }
  CostCounter::charge(a.exps_.size());
  return true;
}

std::string Monomial::to_string(const std::vector<std::string>& names) const {
  GBD_CHECK(names.size() >= exps_.size());
  std::string out;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    if (exps_[i] == 0) continue;
    if (!out.empty()) out += "*";
    out += names[i];
    if (exps_[i] > 1) out += "^" + std::to_string(exps_[i]);
  }
  return out.empty() ? "1" : out;
}

void Monomial::write(Writer& w) const { w.words(exps_); }

Monomial Monomial::read(Reader& r) { return Monomial(r.words()); }

std::size_t Monomial::hash() const {
  std::size_t h = 1469598103934665603ULL;
  for (std::uint32_t e : exps_) {
    h ^= e;
    h *= 1099511628211ULL;
  }
  return h;
}

const char* order_name(OrderKind k) {
  switch (k) {
    case OrderKind::kLex:
      return "lex";
    case OrderKind::kGrLex:
      return "grlex";
    case OrderKind::kGRevLex:
      return "grevlex";
    case OrderKind::kElim:
      return "elim";
  }
  return "?";
}

namespace {

/// grlex restricted to the variable range [lo, hi).
int grlex_cmp_range(const Monomial& a, const Monomial& b, std::size_t lo, std::size_t hi) {
  std::uint32_t da = 0, db = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    da += a.exp(i);
    db += b.exp(i);
  }
  if (da != db) return da < db ? -1 : 1;
  for (std::size_t i = lo; i < hi; ++i) {
    if (a.exp(i) != b.exp(i)) return a.exp(i) < b.exp(i) ? -1 : 1;
  }
  return 0;
}

}  // namespace

int mono_cmp(OrderKind kind, const Monomial& a, const Monomial& b, std::size_t elim_vars) {
  GBD_DCHECK(a.nvars() == b.nvars());
  CostCounter::charge(a.nvars());
  switch (kind) {
    case OrderKind::kLex:
      break;
    case OrderKind::kGrLex:
    case OrderKind::kGRevLex:
      if (a.degree() != b.degree()) return a.degree() < b.degree() ? -1 : 1;
      break;
    case OrderKind::kElim: {
      std::size_t k = std::min(elim_vars, a.nvars());
      int c = grlex_cmp_range(a, b, 0, k);
      if (c != 0) return c;
      return grlex_cmp_range(a, b, k, a.nvars());
    }
  }
  if (kind == OrderKind::kGRevLex) {
    // Ties broken by the LAST variable in which they differ; the monomial
    // with the SMALLER exponent there is the larger monomial.
    for (std::size_t i = a.nvars(); i-- > 0;) {
      if (a.exp(i) != b.exp(i)) return a.exp(i) > b.exp(i) ? -1 : 1;
    }
    return 0;
  }
  for (std::size_t i = 0; i < a.nvars(); ++i) {
    if (a.exp(i) != b.exp(i)) return a.exp(i) < b.exp(i) ? -1 : 1;
  }
  return 0;
}

}  // namespace gbd
