file(REMOVE_RECURSE
  "libgbd_machine.a"
)
