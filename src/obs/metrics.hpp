// Unified metrics registry — one named, per-processor snapshot over the
// counters that previously lived in scattered structs and thread-locals
// (ProcCommStats, MailboxStats, TaskQueueStats, BasisStats, GbStats,
// FindReducerStats, geobucket stats).
//
// Model: a metric is a named series of one u64 value per processor. The
// engine and the machine *push* into the registry at run end (collection is
// not a hot path; a mutex guards the map). Both machine backends produce the
// identical set of series — including mailbox.* now that SimMachine
// populates MachineStats::mailbox — so cross-backend comparisons are a
// field-by-field diff of two snapshots.
//
// Kernel counters (find_reducer, geobucket) are accumulated in thread-locals
// for speed; because both backends host every logical processor on its own
// OS thread, a worker's thread-local deltas ARE that processor's counts.
// kernel_baseline()/collect_kernel_delta() window them per worker so the
// registry, not the raw thread-local, is the reporting surface.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "poly/divmask.hpp"
#include "poly/geobucket.hpp"
#include "poly/symbolic.hpp"

namespace gbd {

struct MachineStats;  // machine/machine.hpp

/// Immutable snapshot: sorted name -> per-proc values.
struct MetricsSnapshot {
  int nprocs = 0;
  std::map<std::string, std::vector<std::uint64_t>> series;

  std::uint64_t total(const std::string& name) const;
  const std::vector<std::uint64_t>* find(const std::string& name) const;
  /// {"nprocs":N,"metrics":{"name":{"per_proc":[...],"total":T},...}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int nprocs);

  int nprocs() const { return nprocs_; }

  /// Add v to series `name` at processor `proc` (creates the series lazily,
  /// zero-filled). Thread-safe; intended for run-end collection, not inner
  /// loops.
  void add(const std::string& name, int proc, std::uint64_t v);

  MetricsSnapshot snapshot() const;

 private:
  int nprocs_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::uint64_t>> series_;
};

/// Calling thread's kernel counters right now (delta window start).
struct KernelBaseline {
  FindReducerStats find_reducer;
  GeobucketStats geobucket;
  MatrixKernelStats matrix;
};
KernelBaseline kernel_baseline();

/// Push the calling thread's kernel-counter deltas since `base` into the
/// registry as kernel.find_reducer.* and kernel.geobucket.* series.
void collect_kernel_delta(MetricsRegistry& reg, int proc, const KernelBaseline& base);

/// Flatten MachineStats into comm.* / mailbox.* / machine.* series. Both
/// backends produce the same shape (mailbox.* series are emitted whenever
/// has_mailbox_stats, which both now set).
void collect_machine_stats(MetricsRegistry& reg, const MachineStats& ms);

}  // namespace gbd
