// Wire tests for the serve job protocol: encode/decode round trips, and
// SafeReader's guarantee that truncated or mutated payloads are diagnosed
// decode failures — never aborts (the daemon decodes hostile client bytes).
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace gbd {
namespace {

SubmitRequest sample_submit() {
  SubmitRequest req;
  req.token = 0x1122334455667788ULL;
  req.priority = 7;
  req.deadline_ms = 1500;
  req.subscribe = true;
  req.want_cert = true;
  req.source = 1;
  req.problem = "katsura(5)";
  req.zp_prime = 32003;
  return req;
}

JobResultMsg sample_result() {
  JobResultMsg m;
  m.token = 9;
  m.job_id = 1234;
  m.status = JobState::kDone;
  m.cache_hit = true;
  m.cert = 1;
  m.attempts = 2;
  m.queue_wait_ms = 11;
  m.exec_ms = 22;
  m.spolys = 39;
  m.basis_added = 12;
  m.basis = {"x^2 - y", "x*y - 1", "y^3 - x"};
  return m;
}

TEST(ServeWireTest, SubmitRoundTrip) {
  SubmitRequest req = sample_submit();
  Writer w;
  req.encode(w);
  SafeReader r(w.data());
  SubmitRequest out;
  ASSERT_TRUE(SubmitRequest::decode(r, &out));
  EXPECT_EQ(out.token, req.token);
  EXPECT_EQ(out.priority, req.priority);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
  EXPECT_EQ(out.subscribe, req.subscribe);
  EXPECT_EQ(out.want_cert, req.want_cert);
  EXPECT_EQ(out.source, req.source);
  EXPECT_EQ(out.problem, req.problem);
  EXPECT_EQ(out.zp_prime, req.zp_prime);
}

TEST(ServeWireTest, EventRoundTrip) {
  JobEventMsg e;
  e.token = 3;
  e.job_id = 17;
  e.state = JobState::kRequeued;
  e.progress_permille = 431;
  e.queue_depth = 12;
  e.attempt = 2;
  e.note = "rank 1 died";
  Writer w;
  e.encode(w);
  SafeReader r(w.data());
  JobEventMsg out;
  ASSERT_TRUE(JobEventMsg::decode(r, &out));
  EXPECT_EQ(out.token, e.token);
  EXPECT_EQ(out.state, JobState::kRequeued);
  EXPECT_EQ(out.progress_permille, 431u);
  EXPECT_EQ(out.note, "rank 1 died");
}

TEST(ServeWireTest, ResultRoundTrip) {
  JobResultMsg m = sample_result();
  Writer w;
  m.encode(w);
  SafeReader r(w.data());
  JobResultMsg out;
  ASSERT_TRUE(JobResultMsg::decode(r, &out));
  EXPECT_EQ(out.token, m.token);
  EXPECT_EQ(out.status, JobState::kDone);
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.cert, 1);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.basis, m.basis);
}

TEST(ServeWireTest, StatsRoundTrip) {
  ServerStatsMsg s;
  s.submitted = 1000;
  s.done = 990;
  s.requeues = 3;
  s.cache_hits = 500;
  s.wait_p99_ms = 250;
  s.exec_p50_ms = 12;
  s.workers = 8;
  s.backend = ServeBackend::kThread;
  s.paused = true;
  Writer w;
  s.encode(w);
  SafeReader r(w.data());
  ServerStatsMsg out;
  ASSERT_TRUE(ServerStatsMsg::decode(r, &out));
  EXPECT_EQ(out.submitted, 1000u);
  EXPECT_EQ(out.done, 990u);
  EXPECT_EQ(out.requeues, 3u);
  EXPECT_EQ(out.cache_hits, 500u);
  EXPECT_EQ(out.wait_p99_ms, 250u);
  EXPECT_EQ(out.workers, 8u);
  EXPECT_EQ(out.backend, ServeBackend::kThread);
  EXPECT_TRUE(out.paused);
}

TEST(ServeWireTest, EveryTruncationFailsCleanly) {
  Writer w;
  sample_submit().encode(w);
  const auto& bytes = w.data();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    SafeReader r(bytes.data(), n);
    SubmitRequest out;
    EXPECT_FALSE(SubmitRequest::decode(r, &out)) << "accepted a " << n << "-byte truncation";
  }
  Writer w2;
  sample_result().encode(w2);
  const auto& bytes2 = w2.data();
  for (std::size_t n = 0; n < bytes2.size(); ++n) {
    SafeReader r(bytes2.data(), n);
    JobResultMsg out;
    EXPECT_FALSE(JobResultMsg::decode(r, &out));
  }
}

TEST(ServeWireTest, TrailingBytesAreRejected) {
  Writer w;
  sample_submit().encode(w);
  std::vector<std::uint8_t> bytes = w.data();
  bytes.push_back(0);
  SafeReader r(bytes.data(), bytes.size());
  SubmitRequest out;
  EXPECT_FALSE(SubmitRequest::decode(r, &out));
}

TEST(ServeWireTest, MutatedPayloadsNeverCrash) {
  Writer w;
  sample_result().encode(w);
  Rng rng(5150);
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> bytes = w.data();
    int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f)
      bytes[rng.below(bytes.size())] = static_cast<std::uint8_t>(rng.next());
    SafeReader r(bytes.data(), bytes.size());
    JobResultMsg out;
    (void)JobResultMsg::decode(r, &out);  // accept or reject; must not abort
  }
}

TEST(ServeWireTest, StateNamesAndTerminality) {
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kTimedOut), "timed-out");
  EXPECT_FALSE(job_state_terminal(JobState::kQueued));
  EXPECT_FALSE(job_state_terminal(JobState::kRunning));
  EXPECT_FALSE(job_state_terminal(JobState::kRequeued));
  EXPECT_TRUE(job_state_terminal(JobState::kDone));
  EXPECT_TRUE(job_state_terminal(JobState::kRejected));
  EXPECT_STREQ(serve_backend_name(ServeBackend::kSim), "sim");
}

}  // namespace
}  // namespace gbd
