file(REMOVE_RECURSE
  "CMakeFiles/implicitization.dir/implicitization.cpp.o"
  "CMakeFiles/implicitization.dir/implicitization.cpp.o.d"
  "implicitization"
  "implicitization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicitization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
