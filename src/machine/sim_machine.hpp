// SimMachine — deterministic discrete-event simulation of the distributed
// machine, with virtual time.
//
// Each logical processor is hosted on its own OS thread, but a token
// scheduler runs exactly one of them at a time: always the processor with
// the smallest virtual clock among those able to run (ties to the smallest
// id). A processor's clock advances by
//   - the work its code performs (drained from the thread-local CostCounter
//     that the algebra kernels charge),
//   - explicit charge() calls,
//   - message injection/dispatch costs and idle time spent in wait(),
// and a message sent at time t becomes deliverable at its destination at
// t + latency + bandwidth·size (see CostModel). Because execution order is a
// pure function of virtual clocks, a run is bit-for-bit reproducible on any
// host — run-to-run variation, which the paper got for free from CM-5 timing
// races, is reintroduced only via explicit seeds in the applications.
//
// Delivery order is by arrival time (not per-link FIFO): two messages on the
// same link can overtake each other if a later, smaller message has lower
// wire time, as on a real packet network. Protocols must tolerate this.
//
// After global quiescence (every processor waiting or finished, nothing in
// flight) all waiters return false from wait(); sends after that point are
// protocol bugs and abort.
#pragma once

#include <memory>

#include "machine/chaos.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"

namespace gbd {

/// MachineStats plus per-processor virtual finish times.
struct SimStats : MachineStats {
  std::vector<std::uint64_t> proc_clocks;
  std::uint64_t duplicated_messages = 0;  ///< chaos-injected duplicate deliveries
};

class SimMachine final : public Machine {
 public:
  explicit SimMachine(int nprocs, CostModel cost = CostModel{}, ChaosConfig chaos = ChaosConfig{});
  ~SimMachine() override;

  int nprocs() const override { return nprocs_; }
  MachineStats run(const std::function<void(Proc&)>& worker) override;

  /// run() with the simulation-specific extras.
  SimStats run_sim(const std::function<void(Proc&)>& worker);

  const ChaosConfig& chaos_config() const { return chaos_; }

 private:
  class SimProc;
  struct Core;

  /// Seeded extra delivery delay for the message with global sequence `seq`.
  std::uint64_t chaos_delay(std::uint64_t seq) const;
  /// Tie-break rank: the raw sequence normally; a seeded shuffle when the
  /// reorder knob is on, so equal-arrival messages deliver in random order.
  std::uint64_t chaos_rank(std::uint64_t seq) const;
  bool chaos_duplicates(HandlerId h, std::uint64_t seq) const;

  int nprocs_;
  CostModel cost_;
  ChaosConfig chaos_;
  std::unique_ptr<Core> core_;
};

}  // namespace gbd
