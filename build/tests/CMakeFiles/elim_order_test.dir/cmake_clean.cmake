file(REMOVE_RECURSE
  "CMakeFiles/elim_order_test.dir/elim_order_test.cpp.o"
  "CMakeFiles/elim_order_test.dir/elim_order_test.cpp.o.d"
  "elim_order_test"
  "elim_order_test.pdb"
  "elim_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elim_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
