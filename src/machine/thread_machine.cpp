#include "machine/thread_machine.hpp"

#include <chrono>
#include <deque>
#include <thread>

#include "machine/invariants.hpp"
#include "support/check.hpp"

namespace gbd {

namespace {

struct Envelope {
  int src;
  HandlerId handler;
  std::vector<std::uint8_t> payload;
};

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

class ThreadMachine::ThreadProc final : public Proc {
 public:
  ThreadProc(ThreadMachine* m, int id) : machine_(m), id_(id) {}

  int id() const override { return id_; }
  int nprocs() const override { return machine_->nprocs_; }

  void on(HandlerId h, Handler fn) override {
    if (handlers_.size() <= h) handlers_.resize(h + 1);
    GBD_CHECK_MSG(!handlers_[h], "handler registered twice");
    handlers_[h] = std::move(fn);
  }

  void send(int dst, HandlerId h, std::vector<std::uint8_t> payload) override {
    GBD_CHECK(dst >= 0 && dst < machine_->nprocs_);
    comm_.messages_sent += 1;
    comm_.bytes_sent += payload.size();
    Envelope env{id_, h, std::move(payload)};
    {
      std::lock_guard<std::mutex> lock(machine_->mu_);
      machine_->procs_[static_cast<std::size_t>(dst)]->inbox_.push_back(std::move(env));
      machine_->in_flight_ += 1;
    }
    machine_->cv_.notify_all();
  }

  std::size_t poll() override {
    std::deque<Envelope> batch;
    {
      std::lock_guard<std::mutex> lock(machine_->mu_);
      batch.swap(inbox_);
      machine_->in_flight_ -= batch.size();
    }
    for (auto& env : batch) dispatch(env);
    return batch.size();
  }

  bool wait() override {
    for (;;) {
      std::size_t n = poll();
      if (n > 0) return true;
      std::unique_lock<std::mutex> lock(machine_->mu_);
      if (!inbox_.empty()) continue;  // raced with a send
      if (machine_->shutdown_) return false;
      machine_->blocked_ += 1;
      machine_->maybe_quiesce_locked();
      machine_->cv_.wait(lock, [&] { return !inbox_.empty() || machine_->shutdown_; });
      machine_->blocked_ -= 1;
      if (inbox_.empty() && machine_->shutdown_) return false;
    }
  }

  void charge(std::uint64_t) override {}

  std::uint64_t now() override { return wall_ns() - machine_->epoch_ns_; }

  void yield() override { std::this_thread::yield(); }

 private:
  void dispatch(Envelope& env) {
    GBD_CHECK_MSG(env.handler < handlers_.size() && handlers_[env.handler],
                  "message for unregistered handler");
    comm_.messages_received += 1;
    Reader r(env.payload.data(), env.payload.size());
    handlers_[env.handler](*this, env.src, r);
  }

  ThreadMachine* machine_;
  int id_;
  std::vector<Handler> handlers_;
  std::deque<Envelope> inbox_;  // guarded by machine_->mu_

  friend class ThreadMachine;
};

ThreadMachine::ThreadMachine(int nprocs) : nprocs_(nprocs) {
  GBD_CHECK(nprocs >= 1);
}

ThreadMachine::~ThreadMachine() = default;

void ThreadMachine::maybe_quiesce_locked() {
  if (!shutdown_ && blocked_ + finished_ == nprocs_ && in_flight_ == 0) {
    shutdown_ = true;
    cv_.notify_all();
  }
}

MachineStats ThreadMachine::run(const std::function<void(Proc&)>& worker) {
  procs_.clear();
  blocked_ = finished_ = 0;
  in_flight_ = 0;
  shutdown_ = false;
  for (int i = 0; i < nprocs_; ++i) {
    procs_.push_back(std::make_unique<ThreadProc>(this, i));
  }
  epoch_ns_ = wall_ns();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    threads.emplace_back([this, i, &worker] {
      worker(*procs_[static_cast<std::size_t>(i)]);
      std::lock_guard<std::mutex> lock(mu_);
      finished_ += 1;
      maybe_quiesce_locked();
      cv_.notify_all();
    });
  }
  for (auto& t : threads) t.join();

  // Under real concurrency a mid-run global read would race, so invariants
  // run only once all workers have joined (the final state is still the
  // one the protocols must leave coherent).
  if (monitor_ != nullptr) monitor_->run_all("quiescence");

  MachineStats stats;
  stats.makespan = wall_ns() - epoch_ns_;
  for (auto& p : procs_) stats.per_proc.push_back(p->comm_stats());
  return stats;
}

}  // namespace gbd
