#include "gb/verify.hpp"

#include "gb/sequential.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"

namespace gbd {

namespace {

/// Re-embed a polynomial into a ring with extra trailing variables.
Polynomial widen(const PolyContext& wide, const Polynomial& p) {
  std::vector<Term> terms;
  terms.reserve(p.nterms());
  for (const auto& t : p.terms()) {
    std::vector<std::uint32_t> exps(wide.nvars(), 0);
    for (std::size_t v = 0; v < t.mono.nvars(); ++v) exps[v] = t.mono.exp(v);
    terms.push_back(Term{t.coeff, Monomial(std::move(exps))});
  }
  return Polynomial::from_terms(wide, std::move(terms));
}

}  // namespace

bool radical_contains(const PolyContext& ctx, const std::vector<Polynomial>& gens,
                      const Polynomial& p) {
  if (p.is_zero()) return true;
  // Extended ring K[x1..xn, t], t last (lowest precedence in every order).
  PolySystem ext;
  ext.ctx.vars = ctx.vars;
  ext.ctx.vars.push_back("_rab_t");
  ext.ctx.order = ctx.order;
  for (const auto& g : gens) {
    if (!g.is_zero()) ext.polys.push_back(widen(ext.ctx, g));
  }
  // 1 - t·p
  std::vector<std::uint32_t> t_exp(ext.ctx.nvars(), 0);
  t_exp.back() = 1;
  Polynomial tp = widen(ext.ctx, p).mul_term(BigInt(1), Monomial(std::move(t_exp)));
  ext.polys.push_back(Polynomial::constant(ext.ctx, BigInt(1)).sub(ext.ctx, tp));

  SequentialResult res = groebner_sequential(ext);
  // 1 ∈ ideal iff the (any) Gröbner basis contains a nonzero constant.
  for (const auto& g : res.basis) {
    if (!g.is_zero() && g.hmono().is_one()) return true;
  }
  return false;
}

namespace {

/// For kZp, the canonical mod-p image of a set (zp_combine and friends
/// require canonical residues); for kExact, null — the caller uses the
/// original vector untouched.
std::vector<Polynomial> coeff_image(const PolyContext& ctx, const std::vector<Polynomial>& polys,
                                    const CoeffOptions& coeff) {
  std::vector<Polynomial> out;
  out.reserve(polys.size());
  for (const auto& p : polys) {
    Polynomial q = p;
    coeff_normalize(ctx, &q, coeff);
    out.push_back(std::move(q));
  }
  return out;
}

/// True iff every polynomial is already in the exact form coeff_image would
/// produce over Zp: monic with every coefficient a canonical residue. Engine
/// bases over Zp always are, so the certificate can skip re-normalizing them
/// (a per-call full copy of the basis, pre-PR7).
bool zp_canonical(const std::vector<Polynomial>& polys, const ZpField& field) {
  for (const Polynomial& p : polys) {
    if (p.is_zero()) continue;  // the image of zero is zero
    if (!p.hcoef().is_one()) return false;
    for (const Term& t : p.terms()) {
      if (t.coeff.is_negative() || t.coeff.bit_length() > 62) return false;
      if (zp_residue_u64(t.coeff) >= field.p()) return false;
    }
  }
  return true;
}

/// Shared verification context: the coefficient image (or the original
/// vector, when it is usable as-is) plus ONE divmask-backed reducer set over
/// it. Built once per top-level verify entry; pre-PR7 every containment
/// query rebuilt both, which made verify_s rival gb_s on small problems.
struct VerifyView {
  VerifyView(const PolyContext& ctx, const std::vector<Polynomial>& polys,
             const CoeffOptions& coeff) {
    if (coeff.is_zp() && !zp_canonical(polys, ZpField(coeff.prime))) {
      image_ = coeff_image(ctx, polys, coeff);
      use_ = &image_;
    } else {
      use_ = &polys;
    }
    set_ = VectorReducerSet(use_);
    ropts_.coeff = coeff;
  }
  VerifyView(const VerifyView&) = delete;
  VerifyView& operator=(const VerifyView&) = delete;

  const std::vector<Polynomial>& polys() const { return *use_; }
  const VectorReducerSet& set() const { return set_; }
  const ReduceOptions& ropts() const { return ropts_; }

 private:
  const std::vector<Polynomial>* use_ = nullptr;
  std::vector<Polynomial> image_;
  VectorReducerSet set_;
  ReduceOptions ropts_;
};

bool is_groebner_basis_view(const PolyContext& ctx, const VerifyView& v, std::string* why,
                            const CoeffOptions& coeff) {
  const std::vector<Polynomial>& use = v.polys();
  // Reject zeros up front: spoly() has a nonzero precondition. (Over Zp an
  // exactly-nonzero element can vanish mod p — that still disqualifies the
  // set as a basis over this field.)
  for (std::size_t i = 0; i < use.size(); ++i) {
    if (use[i].is_zero()) {
      if (why) *why = "basis contains the zero polynomial";
      return false;
    }
  }
  for (std::size_t i = 0; i < use.size(); ++i) {
    for (std::size_t j = i + 1; j < use.size(); ++j) {
      // Buchberger's first criterion is a theorem, not a heuristic: coprime
      // heads guarantee S(f,g) reduces to zero modulo {f,g} alone, so the
      // certificate need not recompute it.
      if (Monomial::coprime(use[i].hmono(), use[j].hmono())) continue;
      Polynomial s = spoly(ctx, use[i], use[j], coeff);
      ReduceOutcome out = reduce_full(ctx, std::move(s), v.set(), v.ropts());
      if (!out.poly.is_zero()) {
        if (why) {
          *why = "SPOL(basis[" + std::to_string(i) + "], basis[" + std::to_string(j) +
                 "]) does not reduce to zero; normal form " + out.poly.to_string(ctx);
        }
        return false;
      }
    }
  }
  return true;
}

bool ideal_contains_view(const PolyContext& ctx, const VerifyView& v, const Polynomial& p) {
  return reduce_full(ctx, p, v.set(), v.ropts()).poly.is_zero();
}

}  // namespace

bool is_groebner_basis(const PolyContext& ctx, const std::vector<Polynomial>& basis,
                       std::string* why, const CoeffOptions& coeff) {
  VerifyView v(ctx, basis, coeff);
  return is_groebner_basis_view(ctx, v, why, coeff);
}

bool ideal_contains(const PolyContext& ctx, const std::vector<Polynomial>& gb,
                    const Polynomial& p, const CoeffOptions& coeff) {
  VerifyView v(ctx, gb, coeff);
  return ideal_contains_view(ctx, v, p);
}

bool same_ideal(const PolyContext& ctx, const std::vector<Polynomial>& gb1,
                const std::vector<Polynomial>& gb2, const CoeffOptions& coeff) {
  VerifyView v1(ctx, gb1, coeff);
  VerifyView v2(ctx, gb2, coeff);
  for (const auto& g : gb1) {
    if (!ideal_contains_view(ctx, v2, g)) return false;
  }
  for (const auto& g : gb2) {
    if (!ideal_contains_view(ctx, v1, g)) return false;
  }
  return true;
}

bool verify_groebner_result(const PolyContext& ctx, const std::vector<Polynomial>& inputs,
                            const std::vector<Polynomial>& basis, std::string* why,
                            const CoeffOptions& coeff) {
  // One image + one reducer set (with its lazily built divmask cache) backs
  // both the S-pair sweep and every input-containment query.
  VerifyView v(ctx, basis, coeff);
  if (!is_groebner_basis_view(ctx, v, why, coeff)) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!ideal_contains_view(ctx, v, inputs[i])) {
      if (why) *why = "input generator " + std::to_string(i) + " not in the output ideal";
      return false;
    }
  }
  return true;
}

}  // namespace gbd
