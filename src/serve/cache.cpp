#include "serve/cache.hpp"

namespace gbd {

std::string ResultCache::make_key(const std::string& canonical_key, std::uint64_t zp_prime) {
  std::string key;
  key.reserve(canonical_key.size() + 8);
  for (int i = 0; i < 8; ++i) key.push_back(static_cast<char>((zp_prime >> (8 * i)) & 0xff));
  key += canonical_key;
  return key;
}

bool ResultCache::lookup(const std::string& key, bool want_cert, CacheEntry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || (want_cert && !it->second->second.verified)) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = lru_.front().second;
  ++stats_.hits;
  return true;
}

void ResultCache::insert(const std::string& key, CacheEntry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second->second.verified && !entry.verified) return;
    lru_.splice(lru_.begin(), lru_, it->second);
    lru_.front().second = std::move(entry);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  map_.emplace(key, lru_.begin());
  ++stats_.inserts;
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace gbd
