# Empty compiler generated dependencies file for gbd_poly.
# This may be replaced when dependencies are built.
