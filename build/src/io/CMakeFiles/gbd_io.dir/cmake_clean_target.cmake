file(REMOVE_RECURSE
  "libgbd_io.a"
)
