// Tests for the built-in benchmark problem library.
#include "problems/problems.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gbd {
namespace {

TEST(ProblemsTest, ListMatchesPaperBenchmarks) {
  std::set<std::string> names;
  for (const auto& info : problem_list()) names.insert(info.name);
  for (const char* expected : {"arnborg4", "arnborg5", "katsura4", "lazard", "morgenstern",
                               "pavelle4", "rose", "trinks1", "trinks2"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
    EXPECT_TRUE(has_problem(expected));
  }
  EXPECT_FALSE(has_problem("nonexistent"));
}

TEST(ProblemsTest, AllProblemsLoadAndAreCanonical) {
  for (const auto& info : problem_list()) {
    PolySystem sys = load_problem(info.name);
    EXPECT_EQ(sys.name, info.name);
    EXPECT_FALSE(sys.ctx.vars.empty());
    EXPECT_FALSE(sys.polys.empty());
    for (const auto& p : sys.polys) {
      EXPECT_FALSE(p.is_zero()) << info.name;
      EXPECT_TRUE(p.is_primitive()) << info.name;
      EXPECT_EQ(p.hmono().nvars(), sys.ctx.nvars()) << info.name;
    }
  }
}

TEST(ProblemsTest, Arnborg4IsCyclic4) {
  PolySystem sys = load_problem("arnborg4");
  EXPECT_EQ(sys.ctx.nvars(), 4u);
  ASSERT_EQ(sys.polys.size(), 4u);
  // Generator k has total degree k (k = 1..3) plus the degree-4 product-1.
  EXPECT_EQ(sys.polys[0].degree(), 1u);
  EXPECT_EQ(sys.polys[1].degree(), 2u);
  EXPECT_EQ(sys.polys[2].degree(), 3u);
  EXPECT_EQ(sys.polys[3].degree(), 4u);
  EXPECT_EQ(sys.polys[3].nterms(), 2u);  // xyzw - 1
}

TEST(ProblemsTest, Katsura4Shape) {
  PolySystem sys = load_problem("katsura4");
  EXPECT_EQ(sys.ctx.nvars(), 5u);
  ASSERT_EQ(sys.polys.size(), 5u);
  EXPECT_EQ(sys.polys[0].degree(), 1u);  // the normalization equation
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(sys.polys[i].degree(), 2u);
}

TEST(ProblemsTest, TrinksVariants) {
  PolySystem big = load_problem("trinks1");
  PolySystem little = load_problem("trinks2");
  EXPECT_EQ(big.polys.size(), 6u);
  EXPECT_EQ(little.polys.size(), 7u);
  EXPECT_EQ(big.ctx.vars, little.ctx.vars);
}

TEST(ProblemsTest, StandinsAreFlagged) {
  std::set<std::string> standins;
  for (const auto& info : problem_list()) {
    if (info.standin) standins.insert(info.name);
  }
  EXPECT_EQ(standins, (std::set<std::string>{"lazard", "morgenstern", "pavelle4", "rose"}));
}

TEST(ParametricTest, KatsuraGeneratorMatchesTableText) {
  for (int n : {4, 5}) {
    PolySystem gen = katsura_system(n);
    PolySystem text = load_problem("katsura" + std::to_string(n));
    EXPECT_EQ(gen.ctx.vars, text.ctx.vars) << n;
    ASSERT_EQ(gen.polys.size(), text.polys.size()) << n;
    for (std::size_t i = 0; i < gen.polys.size(); ++i) {
      EXPECT_TRUE(gen.polys[i].equals(text.polys[i])) << "katsura" << n << " eq " << i;
    }
  }
}

TEST(ParametricTest, CyclicGeneratorMatchesArnborg) {
  // arnborg4/5 ARE cyclic(4)/cyclic(5) with historical variable names;
  // equals() compares exponent vectors, so the rename is invisible.
  for (int n : {4, 5}) {
    PolySystem gen = cyclic_system(n);
    PolySystem text = load_problem("arnborg" + std::to_string(n));
    ASSERT_EQ(gen.polys.size(), text.polys.size()) << n;
    for (std::size_t i = 0; i < gen.polys.size(); ++i) {
      EXPECT_TRUE(gen.polys[i].equals(text.polys[i])) << "cyclic" << n << " eq " << i;
    }
  }
}

TEST(ParametricTest, ParametricNamesLoad) {
  EXPECT_TRUE(has_problem("katsura(6)"));
  EXPECT_TRUE(has_problem("cyclic(7)"));
  EXPECT_FALSE(has_problem("katsura(0)"));
  EXPECT_FALSE(has_problem("katsura(17)"));
  EXPECT_FALSE(has_problem("cyclic(1)"));
  EXPECT_FALSE(has_problem("cyclic(13)"));
  EXPECT_FALSE(has_problem("noon(3)"));
  EXPECT_FALSE(has_problem("katsura("));
  EXPECT_FALSE(has_problem("katsura(x)"));
  PolySystem k6 = load_problem("katsura(6)");
  EXPECT_EQ(k6.ctx.nvars(), 7u);
  EXPECT_EQ(k6.polys.size(), 7u);
  EXPECT_EQ(k6.name, "katsura6");
  for (const auto& p : k6.polys) EXPECT_TRUE(p.is_primitive());
  PolySystem c7 = load_problem("cyclic(7)");
  EXPECT_EQ(c7.ctx.nvars(), 7u);
  EXPECT_EQ(c7.polys.size(), 7u);
  EXPECT_EQ(c7.polys.back().nterms(), 2u);  // product - 1
}

TEST(ReplicateRenamedTest, DisjointVariableBlocks) {
  PolySystem base = load_problem("arnborg4");
  PolySystem x3 = replicate_renamed(base, 3);
  EXPECT_EQ(x3.name, "arnborg4x3");
  EXPECT_EQ(x3.ctx.nvars(), 12u);
  EXPECT_EQ(x3.polys.size(), 12u);
  // Every polynomial only touches one block of 4 variables.
  for (std::size_t pi = 0; pi < x3.polys.size(); ++pi) {
    std::size_t block = pi / 4;
    for (const auto& t : x3.polys[pi].terms()) {
      for (std::size_t v = 0; v < 12; ++v) {
        if (v / 4 != block) {
          EXPECT_EQ(t.mono.exp(v), 0u);
        }
      }
    }
  }
  // Variable names are distinct.
  std::set<std::string> names(x3.ctx.vars.begin(), x3.ctx.vars.end());
  EXPECT_EQ(names.size(), 12u);
}

TEST(ReplicateRenamedTest, SingleCopyKeepsNames) {
  PolySystem base = load_problem("trinks2");
  PolySystem x1 = replicate_renamed(base, 1);
  EXPECT_EQ(x1.ctx.vars, base.ctx.vars);
  ASSERT_EQ(x1.polys.size(), base.polys.size());
  for (std::size_t i = 0; i < base.polys.size(); ++i) {
    EXPECT_TRUE(x1.polys[i].equals(base.polys[i]));
  }
}

TEST(RandomSystemTest, RespectsBounds) {
  Rng rng(2024);
  PolySystem sys = random_system(rng, 4, 6, 5, 7, 10);
  EXPECT_EQ(sys.ctx.nvars(), 4u);
  EXPECT_EQ(sys.polys.size(), 6u);
  for (const auto& p : sys.polys) {
    EXPECT_FALSE(p.is_zero());
    EXPECT_LE(p.nterms(), 7u);
    for (const auto& t : p.terms()) {
      EXPECT_LE(t.mono.degree(), 5u);
    }
  }
}

TEST(RandomSystemTest, DeterministicPerSeed) {
  Rng a(77), b(77), c(78);
  PolySystem s1 = random_system(a, 3, 3, 3, 4, 5);
  PolySystem s2 = random_system(b, 3, 3, 3, 4, 5);
  PolySystem s3 = random_system(c, 3, 3, 3, 4, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(s1.polys[i].equals(s2.polys[i]));
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!s1.polys[i].equals(s3.polys[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace gbd
