# Empty dependencies file for gbd_io.
# This may be replaced when dependencies are built.
