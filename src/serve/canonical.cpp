#include "serve/canonical.hpp"

#include <algorithm>

#include "support/serialize.hpp"

namespace gbd {

CanonicalSystem canonicalize(const PolySystem& in) {
  CanonicalSystem out;
  out.sys.name = "canon";
  out.sys.ctx.order = in.ctx.order;
  out.sys.ctx.elim_vars = in.ctx.elim_vars;
  out.sys.ctx.vars.reserve(in.ctx.nvars());
  for (std::size_t i = 0; i < in.ctx.nvars(); ++i)
    out.sys.ctx.vars.push_back("v" + std::to_string(i));

  // Serialize each primitive nonzero generator; sort + dedup on the bytes.
  // Polynomial::write encodes exponent vectors over variable indices, so the
  // bytes — and therefore the key — are invariant under positional renaming.
  std::vector<std::pair<std::string, Polynomial>> gens;
  gens.reserve(in.polys.size());
  for (const Polynomial& p : in.polys) {
    if (p.is_zero()) continue;
    Polynomial q = p;
    q.make_primitive();
    Writer w;
    q.write(w);
    gens.emplace_back(std::string(reinterpret_cast<const char*>(w.data().data()),
                                  w.data().size()),
                      std::move(q));
  }
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  gens.erase(std::unique(gens.begin(), gens.end(),
                         [](const auto& a, const auto& b) { return a.first == b.first; }),
             gens.end());

  Writer key;
  key.u8(static_cast<std::uint8_t>(in.ctx.order));
  key.u64(in.ctx.elim_vars);
  key.u64(in.ctx.nvars());
  key.u64(gens.size());
  out.sys.polys.reserve(gens.size());
  for (auto& [bytes, poly] : gens) {
    key.str(bytes);
    out.sys.polys.push_back(std::move(poly));
  }
  out.key.assign(reinterpret_cast<const char*>(key.data().data()), key.data().size());
  return out;
}

}  // namespace gbd
