file(REMOVE_RECURSE
  "CMakeFiles/fig7a_speedup_small.dir/fig7a_speedup_small.cpp.o"
  "CMakeFiles/fig7a_speedup_small.dir/fig7a_speedup_small.cpp.o.d"
  "fig7a_speedup_small"
  "fig7a_speedup_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_speedup_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
