// The distributed-memory engine end to end: run GL-P on the simulated
// machine across processor counts, print the speedup curve and the §5/§6
// machinery's statistics (invalidations, fetches, steals, termination), and
// cross-check the answer against the sequential engine. Finishes with the
// same computation on real OS threads (ThreadMachine) to show the identical
// worker code running under true asynchrony.
#include <cstdio>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gbd;
  const char* name = argc > 1 ? argv[1] : "trinks2";
  int copies = argc > 2 ? std::atoi(argv[2]) : 4;
  if (!has_problem(name)) {
    std::fprintf(stderr, "unknown problem '%s'; pick one of:\n", name);
    for (const auto& info : problem_list()) std::fprintf(stderr, "  %s\n", info.name.c_str());
    return 1;
  }

  PolySystem base = load_problem(name);
  PolySystem sys = copies > 1 ? replicate_renamed(base, copies) : base;
  std::printf("Workload: %s (%zu generators, %zu variables)\n", sys.name.c_str(),
              sys.polys.size(), sys.ctx.nvars());

  SequentialResult seq = groebner_sequential(sys);
  std::vector<Polynomial> reference = reduce_basis(sys.ctx, seq.basis);
  std::printf("Sequential: %llu work units, basis %zu -> reduced %zu\n\n",
              static_cast<unsigned long long>(seq.stats.work_units), seq.basis.size(),
              reference.size());

  TextTable table({"P", "Virtual makespan", "Speedup", "Msgs", "Bodies moved", "Steals won",
                   "Correct"});
  double base_time = 0;
  for (int p : {1, 2, 4, 8}) {
    ParallelConfig cfg;
    cfg.nprocs = p;
    // The paper-era criteria profile gives the run the zero-reduction-rich
    // task mix the distributed design is built for (see DESIGN.md).
    cfg.gb.chain_criterion = false;
    cfg.gb.gm_update = false;
    ParallelResult res = groebner_parallel(sys, cfg);

    std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
    bool correct = red.size() == reference.size();
    for (std::size_t i = 0; correct && i < red.size(); ++i) {
      correct = red[i].equals(reference[i]);
    }

    if (p == 1) base_time = static_cast<double>(res.machine.makespan);
    std::uint64_t steals = 0;
    table.add_row({std::to_string(p), std::to_string(res.machine.makespan),
                   fmt(base_time / static_cast<double>(res.machine.makespan)),
                   std::to_string(res.stats.messages_sent),
                   std::to_string(res.stats.polys_transferred), std::to_string(steals),
                   correct ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Same worker code on real OS threads (ThreadMachine):\n");
  ParallelConfig threads_cfg;
  threads_cfg.nprocs = 4;
  threads_cfg.gb.chain_criterion = false;
  threads_cfg.gb.gm_update = false;
  ParallelResult tres = groebner_parallel_threads(sys, threads_cfg);
  std::vector<Polynomial> tred = reduce_basis(sys.ctx, tres.basis);
  bool ok = tred.size() == reference.size();
  for (std::size_t i = 0; ok && i < tred.size(); ++i) ok = tred[i].equals(reference[i]);
  std::printf("  4 threads, wall time %.1f ms, result %s\n",
              static_cast<double>(tres.machine.makespan) / 1e6,
              ok ? "identical to sequential" : "MISMATCH");
  return ok ? 0 : 1;
}
