file(REMOVE_RECURSE
  "CMakeFiles/engine_extra_test.dir/engine_extra_test.cpp.o"
  "CMakeFiles/engine_extra_test.dir/engine_extra_test.cpp.o.d"
  "engine_extra_test"
  "engine_extra_test.pdb"
  "engine_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
