// SocketMachine — the third Machine backend: one OS *process* per logical
// processor, communicating over TCP (loopback by default, real hosts via
// NetConfig endpoints). The GL-P engine runs on it unmodified: this class
// implements the same Proc contract as SimMachine and ThreadMachine, so a
// worker written against machine/machine.hpp cannot tell the difference —
// except that each process hosts exactly ONE processor (its rank) and
// Machine::run executes the worker for that rank only.
//
// The pieces, and how they mirror ThreadMachine's semantics:
//
//   Registration barrier. ThreadMachine blocks the first send/poll/wait on a
//   std::latch until every processor has registered its handlers. Here the
//   same contract runs over the wire: the first communication call sends
//   kReady to rank 0, which broadcasts kGo once all P ranks (its own
//   included) have arrived. Application frames arriving before kGo simply
//   sit undispatched in the transport inbox — delivery happens only inside
//   poll()/wait(), which cannot run before the barrier.
//
//   Quiescence (wait() returning false). ThreadMachine's last-idler test
//   (idle_ == P && in_flight_ == 0) needs shared memory; across processes we
//   run Mattern's four-counter double wave. Every rank counts envelopes sent
//   and delivered (self-sends included; envelopes discarded after the worker
//   finished count as delivered, matching ThreadMachine's drop-on-finish).
//   An idle rank reports (sent, delivered) to rank 0 (kIdle). When all ranks
//   are idle and Σsent == Σdelivered, rank 0 snapshots the table and probes
//   (kProbe); each rank answers (kProbeAck) with its *current* counters and
//   idleness. If every rank was still idle with counters unchanged, every
//   rank was continuously idle over an interval covering the probe instant,
//   making the snapshot a consistent cut with no envelope in flight — rank 0
//   broadcasts kQuiescent and every wait() returns false. Frames buffered in
//   the transport's reorder layer are sent-but-not-delivered, so chaos
//   faults can delay quiescence but never fake it.
//
//   Exit. After quiescence each rank ships its ProcCommStats + synthesized
//   MailboxStats + finish time to rank 0 (kExitStats/kExitAck), so rank 0's
//   MachineStats covers all ranks (makespan = max finish) exactly like the
//   shared-memory backends; other ranks fill only their own slot.
//
//   gather(). A post-run collective for application-level result merging:
//   every rank contributes a blob, rank 0 receives all P (indexed by rank).
//   net_engine.hpp uses it to assemble the full ParallelResult.
//
// Failure semantics: any peer death (socket EOF/reset) or silence beyond
// NetConfig::peer_timeout_ms surfaces as NetError thrown from the machine
// call the worker is inside — a clean diagnostic naming the rank, never a
// hang. After the exit handshake the transport turns lenient: peers closing
// their sockets on the way out is expected.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "machine/machine.hpp"
#include "net/transport.hpp"

namespace gbd {

struct SocketMachineConfig {
  NetConfig net;
  /// Per-rank elimination-kernel thread grant (Proc::kernel_lanes). Each
  /// rank is its own OS process, so unlike ThreadMachine the host's
  /// concurrency is not divided by the rank count here; 0 = auto
  /// (max(1, hardware_concurrency)).
  std::size_t kernel_lanes = 0;
};

class SocketMachine final : public Machine {
 public:
  explicit SocketMachine(SocketMachineConfig cfg);
  ~SocketMachine() override;

  int nprocs() const override { return cfg_.net.nprocs; }
  int rank() const { return cfg_.net.rank; }

  /// Runs `worker` for THIS process's rank only (the other ranks run it in
  /// their own processes). Returns once the whole machine is quiescent and
  /// per-rank stats are exchanged. One-shot: a machine cannot be rerun.
  MachineStats run(const std::function<void(Proc&)>& worker) override;

  /// Post-run collective: every rank calls this with its contribution; rank 0
  /// returns all blobs indexed by rank, other ranks return an empty vector
  /// per slot except their own. Must be called by every rank or none.
  std::vector<std::vector<std::uint8_t>> gather(std::vector<std::uint8_t> blob);

  /// Wire-level counters for this rank (frames/bytes/retransmits/chaos).
  const TransportStats& transport_stats() const;

  const NetConfig& net_config() const { return cfg_.net; }

 private:
  class SocketProc;
  friend class SocketProc;

  void on_control(int src, FrameType type, Reader& r);
  /// kReady -> rank 0 -> kGo: the cross-process analog of ThreadMachine's
  /// start latch, run by the first communication call on this rank.
  void registration_barrier();
  /// Mark this rank idle: refresh rank 0's table (rank 0) or send kIdle when
  /// the counters changed or the last report was invalidated.
  void report_idle();
  void note_busy();
  void maybe_start_wave();
  void declare_quiescent();
  void exit_phase();
  void pump_until_flushed(const char* what);

  SocketMachineConfig cfg_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<SocketProc> proc_;
  bool ran_ = false;
  std::uint64_t epoch_ns_ = 0;  ///< steady-clock origin of Proc::now()

  // Registration barrier.
  int ready_count_ = 0;   ///< rank 0: kReady arrivals (incl. self)
  bool go_received_ = false;

  // Quiescence (all ranks).
  std::uint64_t sent_total_ = 0;       ///< envelopes sent (self-sends included)
  std::uint64_t delivered_total_ = 0;  ///< envelopes dispatched or discarded
  bool local_idle_ = false;            ///< blocked in wait() / finished, queues empty
  bool idle_reported_ = false;         ///< rank 0 holds our current counters
  std::uint64_t reported_sent_ = 0;
  std::uint64_t reported_delivered_ = 0;
  bool quiescent_ = false;

  // Quiescence coordinator (rank 0 only).
  std::vector<bool> idle_;
  std::vector<std::uint64_t> r_sent_, r_delivered_;
  bool wave_active_ = false;
  std::uint64_t wave_id_ = 0;
  int wave_replies_ = 0;
  bool wave_all_idle_ = false;
  bool wave_consistent_ = false;
  std::vector<std::uint64_t> snap_sent_, snap_delivered_;

  // Exit handshake.
  int exit_stats_received_ = 0;  ///< rank 0: kExitStats arrivals
  bool exit_ack_ = false;
  std::uint64_t finish_ns_ = 0;  ///< this rank's worker-return time
  std::vector<ProcCommStats> all_comm_;    ///< rank 0: per-rank comm stats
  std::vector<MailboxStats> all_mailbox_;  ///< rank 0: per-rank mailbox stats
  std::vector<std::uint64_t> all_finish_;  ///< rank 0: per-rank finish times

  // gather().
  std::vector<std::vector<std::uint8_t>> gather_blobs_;
  int gather_received_ = 0;
  bool gather_ack_ = false;
};

}  // namespace gbd
