// Sparse Macaulay-style matrix over a symbolic frame (GBLA-like layout).
//
// The frame (symbolic.hpp) fixes the columns: one per monomial, decreasing
// left to right. Rows split GBLA-style into the *pivot block* — one row per
// scheduled reducer product, upper triangular because each product's head
// covers a distinct column and its tail lies strictly to the right — and the
// *work rows* (the batch's s-polynomials), which the elimination kernel
// (echelon.hpp) reduces against the pivot block. In GBLA's ABCD naming the
// pivot block is A|B and the work rows are C|D, with the split between
// pivot columns and non-pivot columns.
//
// Storage is per-coefficient-ring:
//   · exact rows keep sparse (column, BigInt) pairs; the pivot block is NOT
//     expanded — the fraction-free kernel reads the reducer products straight
//     from the frame, because expanding them would copy coefficients the
//     geobucket accumulator never touches more than once;
//   · Zp pivot rows ARE expanded, made monic, and converted to Montgomery
//     form once per batch, so eliminating one work-row cell costs one REDC
//     per pivot-row term with no per-use normalization.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/zp.hpp"
#include "poly/coeff.hpp"
#include "poly/symbolic.hpp"

namespace gbd {

/// One sparse row: parallel arrays of column indices (strictly increasing —
/// monomials strictly decreasing) and nonzero coefficients. Exact rows hold
/// arbitrary integers; Zp rows hold canonical residues.
struct MatrixRow {
  std::vector<std::uint32_t> cols;
  std::vector<BigInt> coeffs;

  bool empty() const { return cols.empty(); }
  std::size_t nnz() const { return cols.size(); }
};

/// A Zp pivot row expanded for the elimination hot loop: monic (head
/// coefficient 1), every coefficient premultiplied into Montgomery form, so
/// `acc -= f·row` is one mul_canonical per term.
struct ZpPivotRow {
  std::vector<std::uint32_t> cols;
  std::vector<std::uint64_t> mont;
};

/// The same pivot row in GBLA-style "multiline" layout for the SIMD sweep
/// (poly/simd.hpp): the tail's columns grouped into maximal consecutive
/// runs, coefficients stored densely per run as *canonical residues* (the
/// delayed-reduction kernel multiplies plain residues, not Montgomery
/// words). The head term is omitted — it cancels exactly against the swept
/// cell. Only built when the field admits delayed reduction (p < 2^32).
struct ZpPivotRuns {
  struct Run {
    std::uint32_t col;  ///< first column of the run
    std::uint32_t off;  ///< offset into `coeffs`
    std::uint32_t len;  ///< consecutive columns covered
  };
  std::vector<Run> runs;
  std::vector<std::uint32_t> coeffs;  ///< concatenated run payloads
};

struct MacaulayMatrix {
  std::size_t ncols = 0;
  /// The batch rows (C|D block), one per input polynomial, in input order.
  /// Rows of zero polynomials are empty.
  std::vector<MatrixRow> work_rows;
  /// Zp mode only: the pivot block (A|B), parallel to frame.pivots.
  /// Exact mode leaves this empty and reads frame.pivots directly.
  std::vector<ZpPivotRow> zp_pivots;
  /// Multiline mirror of zp_pivots for the SIMD sweep; parallel to
  /// frame.pivots when has_runs, else empty (scalar dispatch, exact mode,
  /// or p ≥ 2^32).
  std::vector<ZpPivotRuns> zp_runs;
  bool has_runs = false;
};

/// Expand the batch rows (and, over Zp, the pivot products) onto the frame.
/// Every monomial of `rows` must be in the frame — i.e. `rows` must be the
/// batch symbolic_preprocess was given. Zp rows must carry canonical
/// residues (the engines' invariant form). `build_runs` additionally lays
/// the pivot block out as multiline runs for the SIMD sweep (ignored unless
/// the field admits delayed reduction); callers that know they will
/// dispatch scalar skip it so the two kernels pay comparable build costs.
MacaulayMatrix build_matrix(const PolyContext& ctx, const SymbolicFrame& frame,
                            const std::vector<Polynomial>& rows, const CoeffOptions& coeff,
                            bool build_runs = false);

/// Convert a row back to a polynomial over the frame (no normalization).
Polynomial row_to_poly(const PolyContext& ctx, const SymbolicFrame& frame, const MatrixRow& row);

}  // namespace gbd
