// Ablations for the design choices DESIGN.md calls out: pair-elimination
// criteria strength, selection strategy, steal end, push balancing,
// reserved-coordinator mode, and network cost sensitivity. Each row answers
// "what does this knob buy (or cost)" on a fixed mid-size workload.
#include "bench_common.hpp"

using namespace gbd;

namespace {

struct Variant {
  std::string name;
  ParallelConfig cfg;
};

}  // namespace

int main() {
  bench::print_header("Design ablations (GL-P on trinks2 x 4 copies, P=8, best of 2 seeds)",
                      "Makespan in virtual units; Work = total algebra charged; Zero/Add\n"
                      "shows how much speculation each configuration admits.");

  PolySystem base = load_problem("trinks2");
  PolySystem sys = replicate_renamed(base, 4);

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "default (paper-era criteria)";
    v.cfg.gb = bench::paper_era_criteria();
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "full modern criteria (GM+chain)";
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no criteria at all";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.gb.coprime_criterion = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "degree selection";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.gb.selection = Selection::kDegree;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "fifo selection (no heuristic)";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.gb.selection = Selection::kFifo;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "steal from best end";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.taskq.steal_from_best = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "push balancing (threshold 8)";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.taskq.push_threshold = 8;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "reserved coordinator";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.reserve_coordinator = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "10x network latency";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.cost.latency = 4000;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "free communication";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.cost = CostModel::free();
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "token-ring termination";
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.taskq.termination = Termination::kTokenRing;
    variants.push_back(v);
  }

  // Hybrid-basis continuum rows (§7 future work, implemented here).
  for (auto [homes, cache] : {std::pair<int, std::size_t>{2, 16},
                              std::pair<int, std::size_t>{1, 8},
                              std::pair<int, std::size_t>{1, 4}}) {
    Variant v;
    v.name = "hybrid basis homes=" + std::to_string(homes) + " cache=" + std::to_string(cache);
    v.cfg.gb = bench::paper_era_criteria();
    v.cfg.basis_mode = BasisMode::kHybrid;
    v.cfg.hybrid_homes = homes;
    v.cfg.hybrid_cache_capacity = cache;
    variants.push_back(v);
  }

  TextTable table({"Variant", "Makespan", "Work", "Zeroed", "Added", "Msgs", "Bodies",
                   "PeakResident"});
  for (auto& v : variants) {
    v.cfg.nprocs = 8;
    ParallelResult res = bench::best_of_seeds(sys, v.cfg, 2);
    table.add_row({v.name, std::to_string(res.machine.makespan),
                   std::to_string(res.compute_units),
                   std::to_string(res.stats.reductions_to_zero),
                   std::to_string(res.stats.basis_added),
                   std::to_string(res.stats.messages_sent),
                   std::to_string(res.stats.polys_transferred),
                   std::to_string(res.stats.peak_resident_bodies)});
  }
  std::printf("%s\n", table.render().c_str());

  // Sequential-side heuristic ablation (sugar lives here: pair sugar is not
  // propagated over the distributed queue's wire format).
  bench::print_header("Sequential selection-strategy ablation (work units)",
                      "normal = paper's heuristic; sugar = Giovini et al. refinement.");
  TextTable seqtab({"Input", "normal", "degree", "sugar", "fifo", "interreduced"});
  for (const char* name : {"trinks1", "katsura4", "arnborg5", "rose"}) {
    PolySystem s = load_problem(name);
    std::vector<std::string> row{name};
    for (Selection sel :
         {Selection::kNormal, Selection::kDegree, Selection::kSugar, Selection::kFifo}) {
      GbConfig cfg;
      cfg.selection = sel;
      row.push_back(std::to_string(groebner_sequential(s, cfg).stats.work_units));
    }
    GbConfig inter;
    inter.interreduce_input = true;
    row.push_back(std::to_string(groebner_sequential(s, inter).stats.work_units));
    seqtab.add_row(row);
  }
  std::printf("%s\n", seqtab.render().c_str());
  return 0;
}
