// Exact univariate polynomial layer — the back end of "solving systems of
// non-linear equations" (the first application named in the paper's
// introduction). A lex Gröbner basis of a zero-dimensional ideal triangulates
// the system; its eliminant is univariate, and everything downstream —
// root counting, isolation, rational roots — happens here, exactly, over Z.
//
// Provided: dense univariate polynomials with exact integer coefficients,
// pseudo-division, primitive-PRS gcd, squarefree part, derivative, Sturm
// sequences, exact sign evaluation at rationals, real-root counting on
// intervals, root isolation by bisection, and rational-root extraction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bigint/rational.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// Dense univariate polynomial over Z: coeffs_[k] multiplies x^k; the
/// leading coefficient is nonzero (zero polynomial = empty vector).
class UniPoly {
 public:
  UniPoly() = default;
  /// From low-to-high coefficients (trailing zeros trimmed).
  explicit UniPoly(std::vector<BigInt> coeffs);

  /// Extract a univariate polynomial from a multivariate one that uses only
  /// variable `var`; returns nullopt if any other variable occurs.
  static std::optional<UniPoly> from_polynomial(const PolyContext& ctx, const Polynomial& p,
                                                std::size_t var);

  bool is_zero() const { return coeffs_.empty(); }
  /// Degree; zero polynomial reports -1.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const BigInt& coeff(std::size_t k) const { return coeffs_[k]; }
  const BigInt& leading() const;
  const std::vector<BigInt>& coeffs() const { return coeffs_; }

  UniPoly operator-() const;
  UniPoly add(const UniPoly& rhs) const;
  UniPoly sub(const UniPoly& rhs) const;
  UniPoly mul(const UniPoly& rhs) const;

  /// Divide by content, make leading coefficient positive.
  void make_primitive();
  BigInt content() const;

  /// Formal derivative.
  UniPoly derivative() const;

  /// Pseudo-remainder: lc(d)^(deg n - deg d + 1) · n  mod  d (fraction-free).
  static UniPoly prem(const UniPoly& n, const UniPoly& d);

  /// Primitive gcd (subresultant-free primitive PRS — fine at these sizes).
  static UniPoly gcd(const UniPoly& a, const UniPoly& b);

  /// p / gcd(p, p'): same roots, all simple.
  UniPoly squarefree_part() const;

  /// Exact sign of p(x) at a rational point: -1, 0, +1.
  int sign_at(const Rational& x) const;
  Rational evaluate(const Rational& x) const;

  /// Number of *distinct* real roots in the half-open interval (lo, hi],
  /// by Sturm's theorem. Requires lo < hi.
  int count_real_roots(const Rational& lo, const Rational& hi) const;
  /// Number of distinct real roots on the whole line.
  int count_real_roots() const;

  /// A bound B with every real root in [-B, B] (Cauchy bound).
  Rational root_bound() const;

  /// Disjoint isolating intervals (lo, hi], one per distinct real root,
  /// each of width <= `width`, in increasing order.
  struct Interval {
    Rational lo, hi;
  };
  std::vector<Interval> isolate_real_roots(const Rational& width) const;

  /// All rational roots (exact; rational-root theorem + verification).
  std::vector<Rational> rational_roots() const;

  std::string to_string(const std::string& var = "x") const;

 private:
  std::vector<UniPoly> sturm_sequence() const;
  /// Sign variations of the Sturm sequence at x.
  static int variations(const std::vector<UniPoly>& seq, const Rational& x);

  void trim();

  std::vector<BigInt> coeffs_;
};

}  // namespace gbd
