#include "gb/shared_memory.hpp"

#include <algorithm>

#include "gb/pairs.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"
#include "support/rng.hpp"

namespace gbd {

namespace {

enum class Phase { kFetch, kReduce, kAugment };

struct Worker {
  std::uint64_t clock = 0;
  Phase phase = Phase::kFetch;
  bool parked = false;
  // In-flight reduct and its originating pair.
  Polynomial h;
  std::uint32_t pi = 0, pj = 0;
};

}  // namespace

SharedMemoryResult groebner_shared(const PolySystem& sys, const SharedMemoryConfig& cfg) {
  GBD_CHECK(cfg.nprocs >= 1);
  GBD_CHECK_MSG(!cfg.gb.coeff.is_zp(),
                "groebner_shared is exact-only; use the sequential or GL-P engines for Zp");
  SharedMemoryResult res;
  const PolyContext& ctx = sys.ctx;
  const GbConfig& gb = cfg.gb;
  Rng rng(cfg.seed);

  // Shared state.
  std::vector<Polynomial> basis;
  std::vector<Monomial> heads;
  for (const auto& p : sys.polys) {
    if (p.is_zero()) continue;
    Polynomial q = p;
    q.make_primitive();
    heads.push_back(q.hmono());
    basis.push_back(std::move(q));
  }
  SequentialPairQueue gpq(&ctx, gb.selection);
  DonePairs done;
  VectorReducerSet reducer_set(&basis);
  for (std::uint32_t i = 0; i < basis.size(); ++i) {
    for (std::uint32_t j = i + 1; j < basis.size(); ++j) {
      gpq.push(i, j, Monomial::lcm(heads[i], heads[j]));
      res.stats.pairs_created += 1;
    }
  }

  std::uint64_t pq_free = 0;     // pair-queue lock release time
  std::uint64_t basis_free = 0;  // basis writer lock release time

  std::vector<Worker> workers(static_cast<std::size_t>(cfg.nprocs));

  auto lock = [&](std::uint64_t* lock_free, Worker& w) {
    std::uint64_t start = std::max(w.clock, *lock_free);
    res.lock_wait += start - w.clock;
    w.clock = start + cfg.lock_cost;
  };

  auto unpark_all = [&](std::uint64_t now) {
    for (auto& w : workers) {
      if (w.parked) {
        w.parked = false;
        w.clock = std::max(w.clock, now);
      }
    }
  };

  // One simulation turn for worker w. Returns false if w parked (no work).
  auto advance = [&](Worker& w) {
    switch (w.phase) {
      case Phase::kFetch: {
        lock(&pq_free, w);
        if (gpq.empty()) {
          pq_free = w.clock;
          w.parked = true;
          return;
        }
        PendingPair pair = gpq.pop_best();
        pq_free = w.clock;
        if (gb.coprime_criterion && coprime_criterion(heads[pair.i], heads[pair.j])) {
          res.stats.pairs_pruned_coprime += 1;
          done.mark(pair.i, pair.j);
          return;  // stay in kFetch
        }
        if (gb.chain_criterion && chain_criterion(pair.i, pair.j, pair.lcm, heads, done)) {
          res.stats.pairs_pruned_chain += 1;
          return;
        }
        CostScope cost;
        w.h = spoly(ctx, basis[pair.i], basis[pair.j]);
        w.h.make_primitive();
        w.clock += cost.elapsed();
        res.stats.work_units += cost.elapsed();
        res.stats.spolys_computed += 1;
        w.pi = pair.i;
        w.pj = pair.j;
        w.phase = Phase::kReduce;
        return;
      }
      case Phase::kReduce: {
        if (w.h.is_zero()) {
          res.stats.reductions_to_zero += 1;
          done.mark(w.pi, w.pj);
          w.phase = Phase::kFetch;
          return;
        }
        // Reads wait for a concurrent writer to drain (coherence), then one
        // reduction step against the *current* shared basis.
        w.clock = std::max(w.clock, basis_free);
        std::uint64_t id = 0;
        const Polynomial* r = reducer_set.find_reducer(w.h.hmono(), &id);
        if (cfg.read_cost > 0) w.clock += cfg.read_cost * basis.size();
        if (r == nullptr) {
          w.phase = Phase::kAugment;
          return;
        }
        CostScope cost;
        w.h = reduce_step(ctx, w.h, *r);
        w.h.make_primitive();
        std::uint64_t c = cost.elapsed();
        w.clock += c;
        res.stats.work_units += c;
        res.stats.reduction_steps += 1;
        res.stats.max_step_cost = std::max(res.stats.max_step_cost, c);
        return;  // one step per turn: other workers interleave
      }
      case Phase::kAugment: {
        lock(&basis_free, w);
        // Re-check under the writer lock: someone may have added a reducer.
        if (reducer_set.find_reducer(w.h.hmono(), nullptr) != nullptr) {
          basis_free = w.clock;
          w.phase = Phase::kReduce;
          return;
        }
        std::uint32_t m = static_cast<std::uint32_t>(basis.size());
        Monomial new_head = w.h.hmono();
        res.stats.pairs_created += m;
        std::vector<bool> keep(m, true);
        if (gb.gm_update) {
          GmPruneCounts gm;
          std::vector<std::size_t> kept = gm_new_pairs(ctx, heads, new_head, &gm);
          keep.assign(m, false);
          for (std::size_t i : kept) keep[i] = true;
          res.stats.pairs_pruned_coprime += gm.coprime;
          res.stats.pairs_pruned_chain += gm.m_rule + gm.f_rule;
        }
        heads.push_back(new_head);
        basis.push_back(std::move(w.h));
        w.h = Polynomial();
        res.stats.basis_added += 1;
        done.mark(w.pi, w.pj);
        basis_free = w.clock;
        // Enqueue the surviving pairs under the pair-queue lock.
        lock(&pq_free, w);
        for (std::uint32_t i = 0; i < m; ++i) {
          if (keep[i]) {
            gpq.push(i, m, Monomial::lcm(heads[i], heads[m]));
          } else if (coprime_criterion(heads[i], heads[m])) {
            done.mark(i, m);
          }
        }
        pq_free = w.clock;
        unpark_all(w.clock);
        w.phase = Phase::kFetch;
        return;
      }
    }
  };

  // Event loop: always advance the runnable worker with the lowest clock
  // (ties by index — deterministic). The seed perturbs only initial clocks,
  // standing in for OS scheduling noise on a real SMP.
  for (auto& w : workers) w.clock = rng.below(16);

  for (;;) {
    Worker* next = nullptr;
    for (auto& w : workers) {
      if (w.parked) continue;
      if (next == nullptr || w.clock < next->clock) next = &w;
    }
    if (next == nullptr) break;  // all parked: queue globally empty
    advance(*next);
  }
  GBD_CHECK_MSG(gpq.empty(), "shared-memory simulation wedged with queued pairs");

  res.basis = std::move(basis);
  for (const auto& w : workers) {
    res.worker_clocks.push_back(w.clock);
    res.makespan = std::max(res.makespan, w.clock);
  }
  res.elapsed_units = res.makespan;
  res.stats.lock_wait_units = res.lock_wait;
  return res;
}

}  // namespace gbd
