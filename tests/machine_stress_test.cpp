// Stress and property tests for the virtual machine: message storms, big
// payloads, determinism under load, and cost-model arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "machine/cost_model.hpp"
#include "machine/sim_machine.hpp"
#include "machine/thread_machine.hpp"
#include "support/cost.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

enum Handlers : HandlerId { kWork = 0, kStop = 1 };

TEST(CostModelTest, WireTimeArithmetic) {
  CostModel cm;
  cm.latency = 100;
  cm.units_per_16_bytes = 8;
  EXPECT_EQ(cm.wire_time(0), 100u);
  EXPECT_EQ(cm.wire_time(1), 108u);
  EXPECT_EQ(cm.wire_time(16), 108u);
  EXPECT_EQ(cm.wire_time(17), 116u);
  EXPECT_EQ(cm.wire_time(160), 180u);
  CostModel free = CostModel::free();
  EXPECT_EQ(free.wire_time(100000), 0u);
  EXPECT_EQ(free.dispatch, 0u);
}

// Random storm: every processor fires pseudo-random messages at random
// destinations for a fixed number of rounds; the run must terminate and be
// bit-identical across repetitions (SimMachine).
std::vector<std::uint64_t> storm_run(int procs, std::uint64_t seed, int rounds) {
  SimMachine m(procs);
  std::vector<std::uint64_t> digest(static_cast<std::size_t>(procs), 0);
  auto stats = m.run_sim([&](Proc& self) {
    Rng rng(seed + static_cast<std::uint64_t>(self.id()) * 1000003);
    int remaining = rounds;
    std::uint64_t& mine = digest[static_cast<std::size_t>(self.id())];
    self.on(kWork, [&](Proc& p, int src, Reader& r) {
      std::uint64_t v = r.u64();
      mine = mine * 31 + v + static_cast<std::uint64_t>(src);
      CostCounter::charge(v % 257);
      if (remaining > 0) {
        --remaining;
        Writer w;
        w.u64(rng.next() % 1000);
        p.send(static_cast<int>(rng.below(static_cast<std::uint64_t>(p.nprocs()))), kWork,
               w.take());
      }
    });
    // Kick off a few messages.
    for (int k = 0; k < 3; ++k) {
      Writer w;
      w.u64(rng.next() % 1000);
      self.send(static_cast<int>(rng.below(static_cast<std::uint64_t>(self.nprocs()))), kWork,
                w.take());
    }
    while (self.wait()) {
    }
  });
  digest.push_back(stats.makespan);
  return digest;
}

TEST(SimStressTest, MessageStormDeterministic) {
  auto a = storm_run(6, 99, 50);
  auto b = storm_run(6, 99, 50);
  EXPECT_EQ(a, b);
  auto c = storm_run(6, 100, 50);
  EXPECT_NE(a, c);  // different seed, different run
}

TEST(SimStressTest, LargePayloadsSurvive) {
  SimMachine m(2);
  std::size_t got = 0;
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc&, int, Reader& r) { got = r.str().size(); });
    if (self.id() == 0) {
      Writer w;
      w.str(std::string(1 << 20, 'x'));
      self.send(1, kWork, w.take());
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(got, static_cast<std::size_t>(1 << 20));
}

TEST(SimStressTest, BandwidthChargesForBigMessages) {
  CostModel cm;
  cm.latency = 10;
  cm.units_per_16_bytes = 4;
  cm.dispatch = 0;
  cm.inject = 0;
  SimMachine m(2, cm);
  std::uint64_t recv_at = 0;
  m.run_sim([&](Proc& self) {
    self.on(kWork, [&](Proc& p, int, Reader&) { recv_at = p.now(); });
    if (self.id() == 0) {
      self.send(1, kWork, std::vector<std::uint8_t>(1600));
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(recv_at, 10u + 4u * 100u);
}

TEST(ThreadStressTest, ManyMessagesAllDelivered) {
  const int kP = 4;
  const int kEach = 500;
  ThreadMachine m(kP);
  std::atomic<int> received{0};
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc&, int, Reader&) { received.fetch_add(1); });
    for (int k = 0; k < kEach; ++k) {
      self.send((self.id() + 1 + k) % kP, kWork, {});
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(received.load(), kP * kEach);
}

TEST(ThreadStressTest, PingPongChainsUnderRealConcurrency) {
  const int kP = 3;
  ThreadMachine m(kP);
  std::atomic<int> hops{0};
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc& p, int, Reader& r) {
      std::uint64_t left = r.u64();
      hops.fetch_add(1);
      if (left > 0) {
        Writer w;
        w.u64(left - 1);
        p.send((p.id() + 1) % kP, kWork, w.take());
      }
    });
    if (self.id() == 0) {
      Writer w;
      w.u64(300);
      self.send(1, kWork, w.take());
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(hops.load(), 301);
}

TEST(SimStressTest, ManyProcessorsQuiesce) {
  // 64 simulated processors — well past the CM-5 partition sizes the paper
  // used — start, exchange one round, and shut down cleanly.
  const int kP = 64;
  SimMachine m(kP);
  std::atomic<int> done{0};
  m.run([&](Proc& self) {
    self.on(kWork, [](Proc&, int, Reader&) {});
    self.send((self.id() + 1) % kP, kWork, {});
    while (self.wait()) {
    }
    ++done;
  });
  EXPECT_EQ(done.load(), kP);
}

}  // namespace
}  // namespace gbd
