file(REMOVE_RECURSE
  "CMakeFiles/deep_topology_test.dir/deep_topology_test.cpp.o"
  "CMakeFiles/deep_topology_test.dir/deep_topology_test.cpp.o.d"
  "deep_topology_test"
  "deep_topology_test.pdb"
  "deep_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
