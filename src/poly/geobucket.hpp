// Geobucket accumulator for polynomial reduction (Yan, "The geobucket data
// structure for polynomials", J. Symbolic Computation 1998).
//
// A reduction of an n-term polynomial performs many updates of the shape
//     acc ← a·acc + c·(m·r),
// and the naive representation (one flat sorted term vector) pays O(n) term
// movement per update — O(n·steps) overall. A geobucket keeps the accumulator
// as O(log n) buckets of sorted term lists, bucket i holding at most 4^(i+1)
// terms; an update touches only a bucket of the reducer's size plus an
// amortized cascade, and the leading term is found by comparing the bucket
// heads. Total term movement is O(n log n).
//
// Two twists adapt the structure to *fraction-free* reduction over the
// integers:
//
//   · Pending scales. The step multiplies the whole accumulator by a. Each
//     bucket carries a lazy BigInt multiplier instead: scaling is O(#buckets)
//     coefficient multiplications, and a bucket's multiplier is materialized
//     only when the bucket is merged or extracted. Invariant: the accumulator
//     value is Σ_i scale_i · bucket_i  (+ the retired terms below).
//
//   · Epoch-stamped retirement. Tail reduction moves each irreducible leading
//     term to a `done` list; terms retired earlier must still absorb every
//     *later* a-multiplier. Each retired term is stamped with the current
//     length of the scale log, and settlement multiplies it by the suffix
//     product of the log past its stamp — O(done + steps) multiplications
//     once, instead of O(done) per step. Every retired term is strictly
//     larger (in the monomial order) than everything still bucketed, so the
//     final polynomial is the done list concatenated with the merged buckets.
//
// The accumulated scales make coefficients grow where the naive path divided
// by the content every step; when the pending scale bits pass a threshold the
// bucket normalizes (materializes everything, divides by the content). Any
// such rescaling keeps every intermediate a *scalar multiple* of the naive
// path's value — g = gcd(s·c, hc(r)) absorbs the extra factor s — so the
// monomial trajectory, the reducer choices and the step count are identical,
// and the final make_primitive yields the bit-identical normal form. The
// differential test in reduce_diff_test.cpp holds the two paths to exactly
// that.
#pragma once

#include <cstdint>
#include <vector>

#include "poly/polynomial.hpp"

namespace gbd {

/// Thread-local geobucket activity counters, mirroring FindReducerStats:
/// both machine backends host each logical processor on its own OS thread,
/// so a worker's deltas are that processor's counts. Windowed per run by the
/// metrics registry (obs/metrics.hpp).
struct GeobucketStats {
  std::uint64_t axpys = 0;
  std::uint64_t extracts = 0;
  std::uint64_t normalizations = 0;
};

GeobucketStats& geobucket_stats();
void reset_geobucket_stats();

class ZpField;  // bigint/zp.hpp

class Geobucket {
 public:
  /// Start accumulating with the terms of p (consumed). When `zp` is
  /// non-null the accumulator runs over Z/pZ instead of Z (the coefficient
  /// seam, poly/coeff.hpp): every stored coefficient is a canonical residue
  /// in [0, p), merges add mod p, pending multipliers scale mod p, and
  /// extract() produces the monic canonical form. In Zp mode axpy's `scale`
  /// must be 1 — the field has no fraction-free blowup to defer, so the
  /// scale log stays empty and threshold normalization never fires. The
  /// field must outlive the bucket; coefficients of p and of every axpy
  /// operand must already be canonical residues.
  explicit Geobucket(const PolyContext& ctx, Polynomial p, const ZpField* zp = nullptr);

  /// Refresh the current leading (largest-monomial) term into *out, with its
  /// exact coefficient (all pending scales applied). Groups of bucket heads
  /// that cancel to zero are discarded on the way. Returns false when the
  /// accumulator has no terms left.
  bool lead(Term* out);

  /// Move the current leading term (the last one lead() produced) to the
  /// done list. Requires a preceding successful lead() with no intervening
  /// axpy().
  void retire_lead();

  /// acc ← scale·acc + coeff·(m·p): the fraction-free cancellation step.
  /// scale and coeff must be nonzero.
  void axpy(const BigInt& scale, const BigInt& coeff, const Monomial& m, const Polynomial& p);

  /// Same step with the product m·p already expanded into a descending term
  /// run (coefficients as p carries them — the head coefficient included).
  /// Bit-identical to axpy(scale, coeff, m, p) when `expanded` holds exactly
  /// {(c, mono·m) : (c, mono) ∈ p}; the caller amortizes the per-term
  /// monomial multiplications across repeated touches of the same product
  /// (the echelon kernel's lazy pivot cache).
  void axpy_expanded(const BigInt& scale, const BigInt& coeff, const std::vector<Term>& expanded);

  /// Materialize done ++ remaining buckets as a primitive polynomial and
  /// reset the accumulator to empty.
  Polynomial extract();

  /// Number of threshold-triggered normalizations performed (observability).
  std::uint64_t normalizations() const { return normalizations_; }

 private:
  struct Bucket {
    std::vector<Term> terms;  // descending monomials; [start, end) live
    std::size_t start = 0;
    BigInt scale{1};  // pending multiplier on every live coefficient
    bool live() const { return start < terms.size(); }
    std::size_t size() const { return terms.size() - start; }
  };
  struct Retired {
    Term term;
    std::uint32_t epoch;  // scale_log_.size() at retirement
  };

  static std::size_t cap(std::size_t i) { return std::size_t{4} << (2 * i); }

  /// Insert a sorted term run with a pending scale, cascading merges upward.
  void insert(std::vector<Term> terms, BigInt scale);
  /// Multiply the live coefficients of b by its pending scale.
  void settle_bucket(Bucket& b) const;
  /// Sum of two descending term runs (coefficients added, zeros dropped).
  std::vector<Term> merge(std::vector<Term> a, std::size_t astart, std::vector<Term> b,
                          std::size_t bstart) const;
  /// Apply the scale-log suffix products to the done list.
  void settle_done();
  /// Merge every bucket into one settled run and empty the buckets.
  std::vector<Term> drain_buckets();
  /// Materialize, make primitive, rebuild — bounds coefficient growth.
  void normalize();

  const PolyContext* ctx_;
  const ZpField* zp_ = nullptr;  // null ⇒ exact integer mode
  std::vector<Bucket> buckets_;
  std::vector<Retired> done_;
  std::vector<BigInt> scale_log_;  // every a applied since the last normalize
  std::size_t pending_bits_ = 0;   // Σ bit_length over scale_log_
  std::uint64_t normalizations_ = 0;

  Term lead_;                          // last value lead() produced
  std::vector<std::size_t> lead_src_;  // buckets whose head contributes to it
  bool lead_valid_ = false;
};

}  // namespace gbd
