#include "poly/coeff.hpp"

#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

std::string CoeffOptions::to_string() const {
  if (!is_zp()) return "exact";
  return "zp:" + std::to_string(prime);
}

Polynomial poly_mod(const PolyContext& ctx, const Polynomial& p, const ZpField& field) {
  std::vector<Term> terms;
  terms.reserve(p.nterms());
  for (const Term& t : p.terms()) {
    std::uint64_t r = field.to_u64(field.from_bigint(t.coeff));
    if (r == 0) continue;
    terms.push_back(Term{BigInt(static_cast<std::int64_t>(r)), t.mono});
  }
  CostCounter::charge(p.nterms());
  // Residue mapping preserves the strictly-decreasing monomial order; only
  // zero terms were dropped.
  return Polynomial::from_sorted_terms(ctx, std::move(terms));
}

void coeff_normalize(const PolyContext& ctx, Polynomial* p, const CoeffOptions& coeff) {
  if (!coeff.is_zp()) {
    p->make_primitive();
    return;
  }
  ZpField field(coeff.prime);
  *p = poly_mod(ctx, *p, field);
  p->make_monic(field);
}

Polynomial zp_combine(const PolyContext& ctx, const ZpField& field, std::uint64_t a,
                      const Monomial& ma, const Polynomial& pa, std::uint64_t b,
                      const Monomial& mb, const Polynomial& pb) {
  GBD_DCHECK(a != 0 || pa.is_zero());
  GBD_DCHECK(b != 0 || pb.is_zero());
  // Scalars to Montgomery form once; each term then costs one REDC and the
  // merged coefficients stay canonical residues throughout.
  const Zp am = field.from_residue(a);
  const Zp bm = field.from_residue(b);
  const auto& ta = pa.terms();
  const auto& tb = pb.terms();
  std::vector<Term> out;
  out.reserve(ta.size() + tb.size());
  std::size_t i = 0, j = 0;
  // Monomial multiplication is strictly order-preserving, so both scaled
  // shifted runs stay sorted and a single merge suffices.
  Monomial mi, mj;
  bool mi_valid = false, mj_valid = false;
  while (i < ta.size() || j < tb.size()) {
    if (i < ta.size() && !mi_valid) {
      mi = ta[i].mono * ma;
      mi_valid = true;
    }
    if (j < tb.size() && !mj_valid) {
      mj = tb[j].mono * mb;
      mj_valid = true;
    }
    int c;
    if (i >= ta.size()) {
      c = -1;
    } else if (j >= tb.size()) {
      c = 1;
    } else {
      c = ctx.cmp(mi, mj);
    }
    if (c > 0) {
      std::uint64_t r = field.mul_canonical(am, zp_residue_u64(ta[i].coeff));
      if (r != 0) out.push_back(Term{BigInt(static_cast<std::int64_t>(r)), std::move(mi)});
      mi_valid = false;
      ++i;
    } else if (c < 0) {
      std::uint64_t r = field.mul_canonical(bm, zp_residue_u64(tb[j].coeff));
      if (r != 0) out.push_back(Term{BigInt(static_cast<std::int64_t>(r)), std::move(mj)});
      mj_valid = false;
      ++j;
    } else {
      std::uint64_t r = field.add_canonical(field.mul_canonical(am, zp_residue_u64(ta[i].coeff)),
                                            field.mul_canonical(bm, zp_residue_u64(tb[j].coeff)));
      if (r != 0) out.push_back(Term{BigInt(static_cast<std::int64_t>(r)), std::move(mi)});
      mi_valid = false;
      mj_valid = false;
      ++i;
      ++j;
    }
  }
  // Same term-movement charge Polynomial::add makes for these lengths.
  CostCounter::charge(ta.size() + tb.size());
  return Polynomial::from_sorted_terms(ctx, std::move(out));
}

}  // namespace gbd
