#include "gb/pairs.hpp"

#include "support/check.hpp"

namespace gbd {

void SequentialPairQueue::push(std::uint32_t i, std::uint32_t j, Monomial lcm,
                               std::uint32_t sugar) {
  GBD_DCHECK(i < j);
  PendingPair p;
  p.i = i;
  p.j = j;
  p.lcm = std::move(lcm);
  p.sugar = sugar;
  p.seq = next_seq_++;
  pairs_.insert(std::move(p));
}

bool SequentialPairQueue::before(const PendingPair& a, const PendingPair& b) const {
  switch (selection_) {
    case Selection::kNormal: {
      int c = ctx_->cmp(a.lcm, b.lcm);
      if (c != 0) return c < 0;
      break;
    }
    case Selection::kDegree: {
      if (a.lcm.degree() != b.lcm.degree()) return a.lcm.degree() < b.lcm.degree();
      int c = ctx_->cmp(a.lcm, b.lcm);
      if (c != 0) return c < 0;
      break;
    }
    case Selection::kFifo:
      break;
    case Selection::kSugar: {
      if (a.sugar != b.sugar) return a.sugar < b.sugar;
      int c = ctx_->cmp(a.lcm, b.lcm);
      if (c != 0) return c < 0;
      break;
    }
  }
  return a.seq < b.seq;
}

PendingPair SequentialPairQueue::pop_best() {
  GBD_CHECK_MSG(!pairs_.empty(), "pop_best on empty pair queue");
  auto it = pairs_.begin();
  PendingPair p = *it;
  pairs_.erase(it);
  return p;
}

const PendingPair& SequentialPairQueue::peek_best() const {
  GBD_CHECK_MSG(!pairs_.empty(), "peek_best on empty pair queue");
  return *pairs_.begin();
}

std::vector<std::size_t> gm_new_pairs(const PolyContext& ctx,
                                      const std::vector<Monomial>& heads, const Monomial& hr,
                                      GmPruneCounts* counts) {
  GmPruneCounts local;
  GmPruneCounts& c = counts ? *counts : local;
  std::size_t n = heads.size();
  std::vector<Monomial> lcms;
  lcms.reserve(n);
  for (const Monomial& h : heads) lcms.push_back(Monomial::lcm(h, hr));

  std::vector<bool> dropped(n, false);
  // M: strict-divisor lcm elsewhere.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (lcms[j].divides(lcms[i]) && lcms[j] != lcms[i]) {
        dropped[i] = true;
        c.m_rule += 1;
        break;
      }
    }
  }
  // F: one representative per equal-lcm group; none if a member is coprime.
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (dropped[i]) continue;
    bool group_handled = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (!dropped[j] && lcms[j] == lcms[i]) {
        group_handled = true;  // an earlier member represents (or killed) the group
        break;
      }
    }
    if (group_handled) {
      c.f_rule += 1;
      dropped[i] = true;
      continue;
    }
    // Group representative: if ANY group member is coprime, the whole group
    // is superfluous.
    bool group_coprime = false;
    for (std::size_t j = i; j < n; ++j) {
      if (lcms[j] == lcms[i] && Monomial::coprime(heads[j], hr)) {
        group_coprime = true;
        break;
      }
    }
    if (group_coprime) {
      c.coprime += 1;
      dropped[i] = true;
      continue;
    }
    kept.push_back(i);
  }
  (void)ctx;
  return kept;
}

bool chain_criterion(std::uint32_t i, std::uint32_t j, const Monomial& lcm,
                     const std::vector<Monomial>& heads, const DonePairs& done) {
  for (std::uint32_t k = 0; k < heads.size(); ++k) {
    if (k == i || k == j) continue;
    if (heads[k].divides(lcm) && done.contains(i, k) && done.contains(j, k)) {
      return true;
    }
  }
  return false;
}

}  // namespace gbd
