// Job admission, queueing and lifecycle for the serve daemon.
//
// The JobManager owns the bounded priority queue between the connection I/O
// thread (producer: submit / cancel / expire) and the resident worker pool
// (consumer: pop / requeue / finish). Admission control is a hard capacity
// bound — a submit against a full queue is rejected immediately rather than
// buffered, so a flood of jobs degrades into fast rejections instead of
// unbounded memory growth. Scheduling is strict priority with FIFO within a
// priority level; a requeued job (worker death) re-enters at the *front* of
// its level so a crash never costs a job its place in line.
//
// Deadlines and cancellation are cooperative: a queued job is simply removed;
// a running job has its stop flag raised and the engine (GbConfig::stop)
// abandons the computation at the next S-pair boundary. expire() is the
// reaper's single entry point for both halves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/telemetry.hpp"
#include "serve/canonical.hpp"
#include "serve/wire.hpp"

namespace gbd {

/// One submitted job, shared between the I/O thread and its worker.
/// Plain fields are written by one side at a time (I/O thread before the job
/// is queued, the owning worker while running, I/O thread after finish);
/// the atomics are the only concurrently-touched state.
struct Job {
  std::uint64_t id = 0;       ///< server-assigned, dense
  std::uint64_t conn_id = 0;  ///< owning connection
  SubmitRequest req;          ///< as submitted (token, priority, flags, ...)
  PolySystem sys;             ///< parsed system, original variable names
  CanonicalSystem canon;      ///< cache-key form; engines run on canon.sys
  std::string cache_key;      ///< ResultCache composite key

  std::uint64_t submit_ms = 0;    ///< steady-clock ms at admission
  std::uint64_t deadline_ms = 0;  ///< absolute steady-clock ms; 0 = none
  std::uint64_t start_ms = 0;     ///< last attempt's start
  std::uint32_t attempt = 0;      ///< execution attempts so far

  std::atomic<bool> stop{false};  ///< cancel/deadline signal to the engine
  /// Why stop was raised: 0 = not raised, 1 = client cancel, 2 = deadline.
  /// First writer wins (CAS from 0), so a cancel racing a deadline yields
  /// one coherent terminal state.
  std::atomic<std::uint8_t> stop_reason{0};
  std::atomic<std::uint32_t> progress_permille{0};

  /// Raise the stop flag with a reason; returns true if this call won.
  bool raise_stop(std::uint8_t reason) {
    std::uint8_t expected = 0;
    bool won = stop_reason.compare_exchange_strong(expected, reason);
    stop.store(true, std::memory_order_release);
    return won;
  }

  JobResultMsg result;  ///< filled by the worker / finish path
};

using JobPtr = std::shared_ptr<Job>;

/// Counters + latency histograms, snapshot via JobManager::stats().
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t requeues = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  LogHistogram queue_wait_ms;  ///< admission -> first execution start
  LogHistogram exec_ms;        ///< final attempt start -> terminal
};

class JobManager {
 public:
  JobManager(std::size_t capacity, bool start_paused)
      : capacity_(capacity), paused_(start_paused) {}

  /// Admit a job. Returns false (and counts a rejection) when the queue is
  /// at capacity or the manager is shut down.
  bool submit(JobPtr job);

  /// Block until a job is runnable (queue nonempty and not paused), then
  /// dequeue the highest-priority oldest job. Returns nullptr on shutdown.
  JobPtr pop();

  /// Worker died mid-job: put it back at the front of its priority level.
  void requeue(JobPtr job);

  /// Record a terminal transition: drop from the running set, bump the
  /// counter for `final_state`, record wait/exec latencies.
  void finish(const JobPtr& job, JobState final_state, std::uint64_t now_ms);

  /// Remove a *queued* job for cancellation; nullptr if it is not queued
  /// (running jobs are cancelled by raising their stop flag instead).
  JobPtr take_queued(std::uint64_t conn_id, std::uint64_t token);

  /// Find a running job owned by (conn, token); nullptr if none.
  JobPtr find_running(std::uint64_t conn_id, std::uint64_t token) const;

  /// Snapshot of the running set (the progress ticker's iteration source).
  std::vector<JobPtr> running_jobs() const;

  /// Reaper: remove and return queued jobs whose deadline has passed, and
  /// raise the stop flag on expired running jobs.
  std::vector<JobPtr> expire(std::uint64_t now_ms);

  /// While paused, pop() blocks even with work queued (lets a bench enqueue
  /// its whole corpus before the first job starts).
  void resume();

  /// Wake every popper with nullptr; subsequent submits are rejected.
  void shutdown();

  std::size_t depth() const;
  ServeStats stats() const;

 private:
  JobPtr pop_locked();

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool paused_ = false;
  bool shutdown_ = false;
  /// Highest priority first; FIFO deque per level.
  std::map<std::uint32_t, std::deque<JobPtr>, std::greater<std::uint32_t>> queue_;
  std::size_t queued_ = 0;
  std::unordered_map<std::uint64_t, JobPtr> running_;  ///< by job id
  ServeStats stats_;
};

}  // namespace gbd
