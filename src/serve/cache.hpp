// Result cache for the serve daemon.
//
// Keyed on the canonical-form bytes (serve/canonical.hpp) plus the
// coefficient field: two submissions share an entry exactly when they are the
// same ideal under the same monomial order over the same field, up to
// positional variable renaming, generator scaling, order and multiplicity.
// The cached basis is stored in canonical index space and re-rendered with
// each querying system's variable names.
//
// Certificates interact with hits conservatively: an entry remembers whether
// its basis was certificate-verified when computed. A want_cert lookup only
// hits a verified entry; otherwise it is a miss and the recomputed (verified)
// result replaces the entry. A no-cert lookup hits either kind.
//
// Bounded LRU with hit/miss/eviction counters; all methods thread-safe.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "poly/polynomial.hpp"

namespace gbd {

struct CacheEntry {
  std::vector<Polynomial> basis;  ///< reduced basis, canonical index space
  std::uint64_t spolys = 0;       ///< S-pairs the original computation retired
  std::uint64_t basis_added = 0;  ///< intermediate basis insertions
  bool verified = true;           ///< certificate checked when computed
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
};

class ResultCache {
 public:
  /// capacity 0 disables caching (every lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Composite key: canonical bytes + field (0 = exact, else the Zp prime).
  static std::string make_key(const std::string& canonical_key, std::uint64_t zp_prime);

  /// On hit copies the entry into *out, promotes it to most-recent and
  /// returns true. A want_cert lookup misses unverified entries.
  bool lookup(const std::string& key, bool want_cert, CacheEntry* out);

  /// Insert or replace; evicts least-recently-used beyond capacity. A
  /// verified entry is never replaced by an unverified one for the same key.
  void insert(const std::string& key, CacheEntry entry);

  CacheStats stats() const;

 private:
  using Lru = std::list<std::pair<std::string, CacheEntry>>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  Lru lru_;  ///< most-recent first
  std::unordered_map<std::string, Lru::iterator> map_;
  CacheStats stats_;
};

}  // namespace gbd
