// Text format for polynomial systems.
//
// Example:
//   vars x, y, z;
//   order grlex;
//   x^2*y - 3/4*x + 1;
//   (x + y)*(x - y) - z^2;
//
// Variables are ordered x1 > x2 > … by declaration order. Coefficients are
// exact rationals ("3", "-7/2"); '/' is only part of a numeric literal, not
// a polynomial operator. '+', '-', '*', '^' and parentheses are supported;
// every polynomial is terminated by ';'. '#' starts a line comment.
//
// Parsed polynomials are canonicalized to their primitive integer associate
// (see polynomial.hpp) — the same polynomial up to a nonzero rational unit,
// which leaves ideals and Gröbner bases unchanged.
//
// The parser is hardened against hostile input (it is the gbd_serve daemon's
// untrusted surface): parenthesis nesting, exponents, term counts and term
// degrees are all bounded, and exceeding a bound is a normal parse error
// with a diagnostic — never a crash, hang or unbounded allocation. The
// limits (depth 200, exponent 2^16, 2^16 terms, degree 2^20 per parsed
// expression) are far beyond any legitimate polynomial system.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "poly/polynomial.hpp"

namespace gbd {

/// A named input problem: context plus generator polynomials.
struct PolySystem {
  std::string name;
  PolyContext ctx;
  std::vector<Polynomial> polys;
};

/// Parse a full system (vars/order declarations + polynomials).
/// On failure returns false and, if err != nullptr, a message with position.
bool parse_system(std::string_view text, PolySystem* out, std::string* err);

/// Parse one polynomial expression against an existing context.
bool parse_poly(const PolyContext& ctx, std::string_view text, Polynomial* out, std::string* err);

/// Convenience wrappers that abort on malformed input (used for the built-in
/// benchmark systems, whose text is a compile-time constant).
PolySystem parse_system_or_die(std::string_view text);
Polynomial parse_poly_or_die(const PolyContext& ctx, std::string_view text);

/// Render a system back to parseable text.
std::string to_text(const PolySystem& sys);

}  // namespace gbd
