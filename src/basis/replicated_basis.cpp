#include "basis/replicated_basis.hpp"

#include <cstring>

#include "machine/chaos.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "support/check.hpp"

namespace gbd {

ReplicatedBasis::ReplicatedBasis(Proc& self, BasisWireConfig wire)
    : self_(self), wire_(wire), reducer_view_(this) {
  self_.on(kBaInvalidate, [this](Proc&, int src, Reader& r) { on_invalidate(src, r); });
  self_.on(kBaInvBatch, [this](Proc&, int src, Reader& r) { on_inv_batch(src, r); });
  self_.on(kBaInvAck, [this](Proc&, int src, Reader& r) { on_inv_ack(src, r); });
  self_.on(kBaFetch, [this](Proc&, int src, Reader& r) { on_fetch(src, r); });
  self_.on(kBaFetchBatch, [this](Proc&, int src, Reader& r) { on_fetch_batch(src, r); });
  self_.on(kBaBody, [this](Proc&, int, Reader& r) { on_body(r); });
  self_.on(kBaBodyBatch, [this](Proc&, int, Reader& r) { on_body_batch(r); });
  ack_seen_.assign(static_cast<std::size_t>(self_.nprocs()), false);
}

void ReplicatedBasis::preload(PolyId id, Polynomial poly) {
  GBD_CHECK_MSG(replica_.find(id) == replica_.end(), "preload of duplicate id");
  // Keep locally-assigned ids clear of preloaded ones sharing our owner slot.
  if (poly_id_owner(id) == self_.id() && poly_id_seq(id) >= next_local_seq_) {
    next_local_seq_ = poly_id_seq(id) + 1;
  }
  store(id, std::move(poly));
}

void ReplicatedBasis::announce(PolyId id, const Monomial& head) {
  for (const auto& [kid, khead] : known_heads_) {
    if (kid == id) return;
  }
  known_heads_.emplace_back(id, head);
}

void ReplicatedBasis::store(PolyId id, Polynomial poly) {
  announce(id, poly.hmono());
  auto [it, inserted] = replica_.emplace(id, std::move(poly));
  if (inserted) {
    order_.push_back(id);
    const Polynomial& body = it->second;
    if (ruler_.nvars() != body.hmono().nvars()) ruler_ = DivMaskRuler(body.hmono().nvars());
    order_masks_.push_back(ruler_.mask(body.hmono()));
    order_body_.push_back(&body);
  }
  stats_.max_resident = std::max(stats_.max_resident, replica_.size());
}

const Polynomial* ReplicatedBasis::find(PolyId id) const {
  auto it = replica_.find(id);
  return it == replica_.end() ? nullptr : &it->second;
}

bool ReplicatedBasis::known(PolyId id) const {
  return replica_.count(id) > 0 || shadow_.count(id) > 0;
}

int ReplicatedBasis::tree_parent(int owner) const {
  int p = self_.nprocs();
  int pos = (self_.id() - owner + p) % p;
  GBD_CHECK_MSG(pos != 0, "owner routing to itself");
  int parent_pos = (pos - 1) / 2;
  return (parent_pos + owner) % p;
}

PolyId ReplicatedBasis::begin_add(Polynomial poly) {
  GBD_CHECK_MSG(add_done(), "begin_add while a previous add is still in flight");
  GBD_CHECK_MSG(!batch_open_, "begin_add inside an open add batch");
  PolyId id = make_poly_id(self_.id(), next_local_seq_++);
  Monomial head = poly.hmono();
  store(id, std::move(poly));
  acks_missing_ = self_.nprocs() - 1;
  add_in_flight_ = id;
  in_flight_ids_.assign(1, id);
  ack_seen_.assign(static_cast<std::size_t>(self_.nprocs()), false);
  if (ProcTracer* t = self_.tracer()) {
    t->async_begin(Ev::kAddRound, self_.now(), id, 1);
    if (acks_missing_ == 0) t->async_end(Ev::kAddRound, self_.now(), id);
  }
  if (acks_missing_ == 0) completed_adds_.push_back(id);  // 1-proc degenerate add
  for (int p = 0; p < self_.nprocs(); ++p) {
    if (p == self_.id()) continue;
    Writer w;
    w.u64(id);
    head.write(w);
    self_.send(p, kBaInvalidate, w.take());
    stats_.invalidations_sent += 1;
  }
  return id;
}

void ReplicatedBasis::add_open() {
  GBD_CHECK_MSG(add_done(), "add_open while a previous add is still in flight");
  GBD_CHECK_MSG(!batch_open_, "add_open twice");
  batch_open_ = true;
  in_flight_ids_.clear();
}

PolyId ReplicatedBasis::add_push(Polynomial poly) {
  GBD_CHECK_MSG(batch_open_, "add_push outside an open add batch");
  PolyId id = make_poly_id(self_.id(), next_local_seq_++);
  store(id, std::move(poly));  // locally visible at once: later pushes reduce against it
  in_flight_ids_.push_back(id);
  return id;
}

void ReplicatedBasis::add_close() {
  GBD_CHECK_MSG(batch_open_ && !in_flight_ids_.empty(), "add_close on an empty batch");
  batch_open_ = false;
  acks_missing_ = self_.nprocs() - 1;
  add_in_flight_ = in_flight_ids_.front();  // the whole round acks this token
  ack_seen_.assign(static_cast<std::size_t>(self_.nprocs()), false);
  if (ProcTracer* t = self_.tracer()) {
    t->async_begin(Ev::kAddRound, self_.now(), add_in_flight_, in_flight_ids_.size());
    if (acks_missing_ == 0) t->async_end(Ev::kAddRound, self_.now(), add_in_flight_);
  }
  stats_.invalidations_sent +=
      in_flight_ids_.size() * static_cast<std::uint64_t>(self_.nprocs() - 1);
  if (acks_missing_ == 0) {  // 1-proc degenerate add
    completed_adds_.insert(completed_adds_.end(), in_flight_ids_.begin(), in_flight_ids_.end());
    return;
  }
  Writer w;
  w.u32(static_cast<std::uint32_t>(in_flight_ids_.size()));
  for (PolyId id : in_flight_ids_) {
    w.u64(id);
    replica_.at(id).hmono().write(w);
  }
  const std::vector<std::uint8_t> payload = w.take();
  for (int p = 0; p < self_.nprocs(); ++p) {
    if (p == self_.id()) continue;
    self_.send(p, kBaInvBatch, payload);
    stats_.invalidation_batches += 1;
  }
}

void ReplicatedBasis::on_invalidate(int src, Reader& r) {
  PolyId id = r.u64();
  Monomial head = Monomial::read(r);
  Writer ack;
  ack.u64(id);
  // Injected fault (chaos harness only): acknowledge the invalidation but
  // "lose" it before applying — the classic ack-before-apply lost update. The
  // coherence checker must catch this; see ChaosConfig::fault_drop_invalidate.
  const ChaosConfig* chaos = self_.chaos();
  if (chaos != nullptr && chaos->fault_drop_invalidate_permille > 0) {
    std::uint64_t draw = chaos_mix2(chaos->seed ^ 0x464449ULL,
                                    (static_cast<std::uint64_t>(self_.id()) << 40) ^ fault_draws_++);
    if (draw % 1000 < chaos->fault_drop_invalidate_permille) {
      self_.send(src, kBaInvAck, ack.take());
      return;
    }
  }
  announce(id, head);
  // The body may already be resident if a fetched copy overtook the
  // invalidation (delivery is by arrival time, not FIFO).
  if (replica_.find(id) == replica_.end()) {
    shadow_.emplace(id, std::move(head));
  }
  self_.send(src, kBaInvAck, ack.take());
  if (on_invalidate_) on_invalidate_(id);
}

void ReplicatedBasis::on_inv_batch(int src, Reader& r) {
  // Same contract as on_invalidate, amortized: announce/shadow every id of
  // the batch, then acknowledge once with the batch token (its first id).
  // Announce and shadow insertion both deduplicate, so a duplicated or
  // reordered batch delivery is as harmless as a duplicated single one.
  std::uint32_t count = r.u32();
  GBD_CHECK_MSG(count > 0, "empty invalidation batch");
  PolyId token = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    PolyId id = r.u64();
    Monomial head = Monomial::read(r);
    if (i == 0) token = id;
    // Injected fault (chaos harness only), drawn per id exactly as in
    // on_invalidate: the batch is acked but this id is "lost" before
    // applying — the coherence checker must catch it in the batched
    // protocol too.
    const ChaosConfig* chaos = self_.chaos();
    if (chaos != nullptr && chaos->fault_drop_invalidate_permille > 0) {
      std::uint64_t draw = chaos_mix2(chaos->seed ^ 0x464449ULL,
                                      (static_cast<std::uint64_t>(self_.id()) << 40) ^ fault_draws_++);
      if (draw % 1000 < chaos->fault_drop_invalidate_permille) continue;
    }
    announce(id, head);
    if (replica_.find(id) == replica_.end()) {
      shadow_.emplace(id, std::move(head));
    }
    if (on_invalidate_) on_invalidate_(id);
  }
  Writer ack;
  ack.u64(token);
  self_.send(src, kBaInvAck, ack.take());
}

void ReplicatedBasis::on_inv_ack(int src, Reader& r) {
  PolyId id = r.u64();
  // Acks are counted once per (round, processor): a duplicated delivery
  // (chaos mode) or an ack for a previous, already-completed round is
  // ignored rather than corrupting the in-flight count.
  if (id != add_in_flight_ || acks_missing_ == 0) return;
  auto s = static_cast<std::size_t>(src);
  if (s >= ack_seen_.size() || ack_seen_[s]) return;
  ack_seen_[s] = true;
  acks_missing_ -= 1;
  if (acks_missing_ == 0) {
    if (ProcTracer* t = self_.tracer()) t->async_end(Ev::kAddRound, self_.now(), add_in_flight_);
    completed_adds_.insert(completed_adds_.end(), in_flight_ids_.begin(), in_flight_ids_.end());
  }
}

void ReplicatedBasis::begin_validate() {
  if (ProcTracer* t = self_.tracer(); t != nullptr && !validate_open_ && !shadow_.empty()) {
    // One async round per shadow-drain episode: opened at the first fetch
    // wave, closed when the shadow set empties in absorb_body.
    validate_open_ = true;
    t->async_begin(Ev::kValidate, self_.now(), ++validate_rounds_, shadow_.size());
  }
  if (!wire_.batch_fetches) {
    for (const auto& [id, head] : shadow_) {
      request_body(id);
    }
    return;
  }
  std::vector<PolyId> wanted;
  wanted.reserve(shadow_.size());
  for (const auto& [id, head] : shadow_) wanted.push_back(id);
  request_bodies(wanted);
}

void ReplicatedBasis::request_bodies(const std::vector<PolyId>& ids) {
  if (!wire_.batch_fetches) {
    for (PolyId id : ids) request_body(id);
    return;
  }
  // Group by tree parent so the whole validation round costs one envelope
  // per distinct upstream hop instead of one per id.
  std::map<int, std::vector<PolyId>> by_parent;
  for (PolyId id : ids) {
    if (!fetch_in_flight_.emplace(id, true).second) continue;  // already requested
    by_parent[tree_parent(poly_id_owner(id))].push_back(id);
    stats_.fetches_sent += 1;
  }
  for (auto& [parent, list] : by_parent) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(list.size()));
    for (PolyId id : list) w.u64(id);
    self_.send(parent, kBaFetchBatch, w.take());
    stats_.fetch_batches += 1;
  }
}

void ReplicatedBasis::request_body(PolyId id) {
  auto [it, inserted] = fetch_in_flight_.emplace(id, true);
  if (!inserted) return;  // already requested (by us or on behalf of a child)
  Writer w;
  w.u64(id);
  self_.send(tree_parent(poly_id_owner(id)), kBaFetch, w.take());
  stats_.fetches_sent += 1;
}

void ReplicatedBasis::on_fetch(int src, Reader& r) {
  PolyId id = r.u64();
  const Polynomial* body = find(id);
  if (body != nullptr) {
    Writer w;
    w.u64(id);
    body->write(w);
    self_.send(src, kBaBody, w.take());
    stats_.bodies_served += 1;
    return;
  }
  // Not resident here: remember the requester and pull from our own parent.
  // (We may not even have seen the invalidation yet; that is fine — the
  // owner at the tree root definitely has the body.)
  pending_requesters_[id].push_back(src);
  request_body(id);
}

void ReplicatedBasis::on_fetch_batch(int src, Reader& r) {
  std::uint32_t count = r.u32();
  GBD_CHECK_MSG(count > 0, "empty fetch batch");
  Writer reply;
  std::uint32_t resident = 0;
  reply.u32(0);  // patched below
  std::vector<PolyId> missing;
  for (std::uint32_t i = 0; i < count; ++i) {
    PolyId id = r.u64();
    const Polynomial* body = find(id);
    if (body != nullptr) {
      reply.u64(id);
      body->write(reply);
      resident += 1;
      stats_.bodies_served += 1;
    } else {
      pending_requesters_[id].push_back(src);
      missing.push_back(id);
    }
  }
  if (resident > 0) {
    std::vector<std::uint8_t> payload = reply.take();
    std::memcpy(payload.data(), &resident, sizeof resident);
    self_.send(src, kBaBodyBatch, std::move(payload));
    stats_.body_batches += 1;
  }
  // Pull everything we lack from our own parents, batched per hop again.
  if (!missing.empty()) request_bodies(missing);
}

std::vector<int> ReplicatedBasis::absorb_body(PolyId id, Polynomial poly) {
  stats_.bodies_received += 1;
  fetch_in_flight_.erase(id);
  std::vector<int> children;
  auto pend = pending_requesters_.find(id);
  if (pend != pending_requesters_.end()) {
    children = std::move(pend->second);
    pending_requesters_.erase(pend);
  }
  // Store before erasing the shadow entry, and only then let the caller
  // forward to waiting children. send() is a scheduling point, and the
  // original erase-forward-store order left a window where the id was in
  // neither the shadow set nor the replica — a transiently "unknown"
  // element that the chaos harness's coherence sweep caught (a completed
  // AddToSet demands known-everywhere).
  store(id, std::move(poly));
  shadow_.erase(id);
  if (validate_open_ && shadow_.empty()) {
    validate_open_ = false;
    if (ProcTracer* t = self_.tracer()) t->async_end(Ev::kValidate, self_.now(), validate_rounds_);
  }
  return children;
}

void ReplicatedBasis::on_body(Reader& r) {
  PolyId id = r.u64();
  Polynomial poly = Polynomial::read(r);
  std::vector<std::uint8_t> payload;
  {
    Writer w;
    w.u64(id);
    poly.write(w);
    payload = w.take();
  }
  std::vector<int> children = absorb_body(id, std::move(poly));
  for (int child : children) {
    self_.send(child, kBaBody, payload);
    stats_.bodies_forwarded += 1;
  }
}

void ReplicatedBasis::on_body_batch(Reader& r) {
  std::uint32_t count = r.u32();
  GBD_CHECK_MSG(count > 0, "empty body batch");
  // Absorb every body first (all stores precede any forward), collecting
  // which ids each waiting child needs; then unwind with one batched
  // envelope per child.
  std::map<int, std::vector<PolyId>> per_child;
  for (std::uint32_t i = 0; i < count; ++i) {
    PolyId id = r.u64();
    Polynomial poly = Polynomial::read(r);
    for (int child : absorb_body(id, std::move(poly))) {
      per_child[child].push_back(id);
    }
  }
  for (auto& [child, ids] : per_child) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (PolyId id : ids) {
      w.u64(id);
      replica_.at(id).write(w);
      stats_.bodies_forwarded += 1;
    }
    self_.send(child, kBaBodyBatch, w.take());
    stats_.body_batches += 1;
  }
}

const Polynomial* ReplicatedBasis::ReducerView::find_reducer(const Monomial& m,
                                                             std::uint64_t* out_id) const {
  // Same preference policy as VectorReducerSet (see reducer_preferred) so
  // sequential and parallel reductions cost alike; same divmask prefilter
  // and carried best-key so they probe alike too.
  if (b_->order_.empty()) return nullptr;
  FindReducerStats& st = find_reducer_stats();
  st.calls += 1;
  const std::uint64_t tmask = b_->ruler_.mask(m);
  const Polynomial* best = nullptr;
  PolyId best_id = 0;
  std::size_t best_bits = 0, best_terms = 0;
  for (std::size_t i = 0; i < b_->order_.size(); ++i) {
    st.probes += 1;
    if (!DivMaskRuler::may_divide(b_->order_masks_[i], tmask)) {
      st.mask_rejects += 1;
      continue;
    }
    const Polynomial& g = *b_->order_body_[i];
    if (g.is_zero()) continue;
    st.divides_calls += 1;
    if (!g.hmono().divides(m)) continue;
    std::size_t gbits = g.hcoef().bit_length();
    std::size_t gterms = g.nterms();
    if (best == nullptr || gbits < best_bits || (gbits == best_bits && gterms < best_terms)) {
      best = &g;
      best_id = b_->order_[i];
      best_bits = gbits;
      best_terms = gterms;
    }
  }
  if (best && out_id) *out_id = best_id;
  return best;
}

// --- lock ---------------------------------------------------------------------

LockManager::LockManager(Proc& self) : self_(self) {
  self_.on(kLkRequest, [this](Proc&, int src, Reader&) {
    if (!held_) {
      held_ = true;
      self_.send(src, kLkGrant, {});
    } else {
      queue_.push_back(src);
    }
  });
  self_.on(kLkRelease, [this](Proc&, int, Reader&) {
    GBD_CHECK_MSG(held_, "release of a lock nobody holds");
    if (queue_.empty()) {
      held_ = false;
    } else {
      int next = queue_.front();
      queue_.erase(queue_.begin());
      self_.send(next, kLkGrant, {});
    }
  });
}

LockClient::LockClient(Proc& self, int coordinator) : self_(self), coordinator_(coordinator) {
  self_.on(kLkGrant, [this](Proc&, int, Reader&) {
    GBD_CHECK_MSG(requested_ && !granted_, "unexpected lock grant");
    granted_ = true;
    std::uint64_t waited = self_.now() - request_time_;
    wait_units_ += waited;
    if (ProcTracer* t = self_.tracer()) t->async_end(Ev::kLockWait, self_.now(), rounds_);
    if (ProcTelemetry* te = self_.telemetry()) {
      te->hist(TeleHist::kLockWait).record(waited);
    }
  });
}

void LockClient::request() {
  GBD_CHECK_MSG(!requested_, "lock already requested");
  requested_ = true;
  request_time_ = self_.now();
  rounds_ += 1;
  if (ProcTracer* t = self_.tracer()) t->async_begin(Ev::kLockWait, request_time_, rounds_);
  self_.send(coordinator_, kLkRequest, {});
}

void LockClient::release() {
  GBD_CHECK_MSG(granted_, "release without grant");
  granted_ = false;
  requested_ = false;
  self_.send(coordinator_, kLkRelease, {});
}

}  // namespace gbd
