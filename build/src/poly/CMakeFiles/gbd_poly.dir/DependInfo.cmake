
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/certificate.cpp" "src/poly/CMakeFiles/gbd_poly.dir/certificate.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/certificate.cpp.o.d"
  "/root/repo/src/poly/monomial.cpp" "src/poly/CMakeFiles/gbd_poly.dir/monomial.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/monomial.cpp.o.d"
  "/root/repo/src/poly/polynomial.cpp" "src/poly/CMakeFiles/gbd_poly.dir/polynomial.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/polynomial.cpp.o.d"
  "/root/repo/src/poly/reduce.cpp" "src/poly/CMakeFiles/gbd_poly.dir/reduce.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/reduce.cpp.o.d"
  "/root/repo/src/poly/spoly.cpp" "src/poly/CMakeFiles/gbd_poly.dir/spoly.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/spoly.cpp.o.d"
  "/root/repo/src/poly/univariate.cpp" "src/poly/CMakeFiles/gbd_poly.dir/univariate.cpp.o" "gcc" "src/poly/CMakeFiles/gbd_poly.dir/univariate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/gbd_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gbd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
