// Table 2 — "Typical number of polynomials added and reduced to zeroes in a
// sequential implementation."
//
// The replicate-vs-partition argument of §4.1.1 rests on zero reductions
// being the common case (ratio >= ~5 with the era's criteria): a replicated
// basis communicates only the rare additions, a partitioned pipeline ships
// every reduct around the ring. We print the counts under the paper-era
// criteria (Buchberger's coprime criterion only — the configuration whose
// ratios land in the paper's band) and, as an ablation, under this library's
// full modern pruning (Gebauer–Möller + chain), which removes most
// would-be-zero pairs before they are ever reduced.
//
// The second section checks §4.1.1's pair-counting arithmetic: a run that
// starts with l generators and ends with m basis elements creates exactly
// C(l,2) + sum_{i=l..m-1} i pairs.
#include "bench_common.hpp"

using namespace gbd;

int main() {
  bench::print_header("Table 2: polynomials added vs reduced to zero",
                      "Paper rows (criteria of [3], sequential): arnborg5 33/511=9.6,\n"
                      "morgenstern 14/117=8.4, pavelle4 10/57=5.7, rose 26/158=6.1,\n"
                      "trinks1 11/85=7.6 (ratios at least ~5).");

  TextTable table({"Input", "Added", "Zeroed", "Ratio", "Added*", "Zeroed*", "Ratio*"});
  for (const auto& info : problem_list()) {
    if (info.extra) continue;  // beyond the paper's table
    PolySystem sys = load_problem(info.name);
    GbConfig era = bench::paper_era_criteria();
    SequentialResult weak = groebner_sequential(sys, era);
    SequentialResult strong = groebner_sequential(sys);
    auto ratio = [](const GbStats& s) {
      return s.basis_added == 0 ? 0.0
                                : static_cast<double>(s.reductions_to_zero) /
                                      static_cast<double>(s.basis_added);
    };
    table.add_row({info.name, std::to_string(weak.stats.basis_added),
                   std::to_string(weak.stats.reductions_to_zero), fmt(ratio(weak.stats)),
                   std::to_string(strong.stats.basis_added),
                   std::to_string(strong.stats.reductions_to_zero), fmt(ratio(strong.stats))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(*) with this library's full criteria (Gebauer-Moller update + chain):\n"
              "most zero reductions are pruned before any arithmetic happens.\n\n");

  bench::print_header("Section 4.1.1: pair-count identity",
                      "pairs created == C(l,2) + sum_{i=l}^{m-1} i for l inputs, m final basis");
  TextTable t2({"Input", "l", "m", "Pairs created", "Closed form", "Match"});
  for (const auto& info : problem_list()) {
    if (info.extra) continue;  // beyond the paper's table
    PolySystem sys = load_problem(info.name);
    GbConfig cfg;
    cfg.gm_update = false;  // count raw pair creation, no update-time drops
    cfg.chain_criterion = false;
    cfg.coprime_criterion = false;
    SequentialResult res = groebner_sequential(sys, cfg);
    std::uint64_t l = sys.polys.size();
    std::uint64_t m = res.basis.size();
    std::uint64_t closed = l * (l - 1) / 2;
    for (std::uint64_t i = l; i < m; ++i) closed += i;
    t2.add_row({info.name, std::to_string(l), std::to_string(m),
                std::to_string(res.stats.pairs_created), std::to_string(closed),
                res.stats.pairs_created == closed ? "yes" : "NO"});
  }
  std::printf("%s\n", t2.render().c_str());
  return 0;
}
