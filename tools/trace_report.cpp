// trace_report — run a built-in problem under the event tracer and print the
// paper's per-processor utilization breakdown (% reduce / % comm / % hold /
// % idle), or re-analyze a previously saved binary trace.
//
// Run mode (default):
//   trace_report [--problem NAME] [--procs N] [--threads] [--seed S]
//                [--chaos SEED] [--reserve] [--matrix] [--ring CAP]
//                [--perfetto FILE] [--metrics FILE] [--save FILE]
//
//   Runs GL-P on the simulator (or, with --threads, on real OS threads) with
//   a tracer and a metrics registry attached, prints the breakdown table to
//   stdout, and optionally writes:
//   --matrix enables the batched F4-style reduction path; the breakdown then
//   also shows the per-phase matrix split (symbolic/build/eliminate/convert)
//   inside the reduce bucket, and kernel.matrix.* metrics series appear.
//     --perfetto FILE   Chrome/Perfetto trace_event JSON (open in ui.perfetto.dev)
//     --metrics  FILE   unified metrics snapshot JSON
//     --save     FILE   the raw binary trace, reloadable with --load
//
// Load mode:
//   trace_report --load FILE [--perfetto FILE]
//
//   Decodes a saved trace and prints the same report without re-running.
//
// Merge mode:
//   trace_report --merge OUT.json rank0.gbdt rank1.gbdt ...
//
//   Stitches per-rank traces from a SocketMachine run (tools/gbd_launch
//   --trace-dir) into one Perfetto timeline: each rank becomes a process
//   track (pid = rank), timelines are aligned by the wall-clock epoch each
//   rank recorded at run start, and the per-rank clock offsets land in the
//   trace metadata (otherData.clock_offsets_ns).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gb/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"
#include "problems/problems.hpp"

using namespace gbd;

namespace {

struct Options {
  std::string problem = "trinks1";
  int procs = 4;
  bool threads = false;
  std::uint64_t seed = 1;
  std::uint64_t chaos_seed = 0;
  bool reserve = false;
  bool matrix = false;
  std::size_t ring = 1u << 15;
  std::string perfetto_path;
  std::string metrics_path;
  std::string save_path;
  std::string load_path;
  std::string merge_out;
  std::vector<std::string> merge_inputs;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--problem NAME] [--procs N] [--threads] [--seed S]\n"
               "          [--chaos SEED] [--reserve] [--matrix] [--ring CAP]\n"
               "          [--perfetto FILE] [--metrics FILE] [--save FILE]\n"
               "       %s --load FILE [--perfetto FILE]\n"
               "       %s --merge OUT.json rank0.gbdt rank1.gbdt ...\n",
               argv0, argv0, argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--problem") == 0) {
      opt.problem = value(i);
    } else if (std::strcmp(a, "--procs") == 0) {
      opt.procs = std::atoi(value(i));
    } else if (std::strcmp(a, "--threads") == 0) {
      opt.threads = true;
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--chaos") == 0) {
      opt.chaos_seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--reserve") == 0) {
      opt.reserve = true;
    } else if (std::strcmp(a, "--matrix") == 0) {
      opt.matrix = true;
    } else if (std::strcmp(a, "--ring") == 0) {
      opt.ring = static_cast<std::size_t>(std::strtoull(value(i), nullptr, 10));
    } else if (std::strcmp(a, "--perfetto") == 0) {
      opt.perfetto_path = value(i);
    } else if (std::strcmp(a, "--metrics") == 0) {
      opt.metrics_path = value(i);
    } else if (std::strcmp(a, "--save") == 0) {
      opt.save_path = value(i);
    } else if (std::strcmp(a, "--load") == 0) {
      opt.load_path = value(i);
    } else if (std::strcmp(a, "--merge") == 0) {
      opt.merge_out = value(i);
      while (i + 1 < argc) opt.merge_inputs.emplace_back(argv[++i]);
      if (opt.merge_inputs.size() < 2) usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.procs < 1) usage(argv[0]);
  return opt;
}

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(out);
}

int report(const TraceData& data, const Options& opt) {
  std::string violation = check_well_formed(data);
  if (!violation.empty()) {
    std::fprintf(stderr, "warning: trace is not well-formed: %s\n", violation.c_str());
  }
  BreakdownReport br = analyze_trace(data);
  std::fputs(render_breakdown(br).c_str(), stdout);
  if (!opt.perfetto_path.empty()) {
    std::string json = trace_to_perfetto_json(data);
    if (!write_file(opt.perfetto_path, json.data(), json.size())) return 1;
    std::printf("\nperfetto trace written to %s\n", opt.perfetto_path.c_str());
  }
  if (!opt.save_path.empty()) {
    std::vector<std::uint8_t> bytes = data.encode();
    if (!write_file(opt.save_path, bytes.data(), bytes.size())) return 1;
    std::printf("binary trace written to %s (%zu bytes)\n", opt.save_path.c_str(), bytes.size());
  }
  return 0;
}

std::vector<std::uint8_t> read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);

  if (!opt.merge_out.empty()) {
    std::vector<TraceData> ranks;
    for (const std::string& path : opt.merge_inputs) {
      ranks.push_back(TraceData::decode(read_file_or_die(path)));
      const TraceData& d = ranks.back();
      std::printf("%-28s procs=%zu makespan=%llu ns epoch=%llu\n", path.c_str(), d.procs.size(),
                  static_cast<unsigned long long>(d.makespan),
                  static_cast<unsigned long long>(d.wall_epoch_ns));
      if (d.wall_epoch_ns == 0) {
        std::fprintf(stderr,
                     "warning: %s has no wall-clock epoch (trace v1?); "
                     "its track will not be offset-aligned\n",
                     path.c_str());
      }
    }
    std::string json = merged_traces_to_perfetto_json(ranks);
    if (!write_file(opt.merge_out, json.data(), json.size())) return 1;
    std::printf("merged perfetto trace (%zu ranks) written to %s\n", ranks.size(),
                opt.merge_out.c_str());
    return 0;
  }

  if (!opt.load_path.empty()) {
    std::ifstream in(opt.load_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", opt.load_path.c_str());
      return 1;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    return report(TraceData::decode(bytes), opt);
  }

  if (!has_problem(opt.problem)) {
    std::fprintf(stderr, "error: unknown problem '%s'\n", opt.problem.c_str());
    return 1;
  }
  PolySystem sys = load_problem(opt.problem);

  Tracer tracer(TracerConfig{opt.ring});
  MetricsRegistry metrics(opt.procs);
  ParallelConfig cfg;
  cfg.nprocs = opt.procs;
  cfg.seed = opt.seed;
  cfg.reserve_coordinator = opt.reserve;
  cfg.gb.matrix_reduce = opt.matrix;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  if (opt.chaos_seed != 0) {
    cfg.chaos.seed = opt.chaos_seed;
    cfg.chaos.jitter = 40;
    cfg.chaos.reorder_permille = 100;
    cfg.chaos.reorder_window = 200;
  }

  ParallelResult res =
      opt.threads ? groebner_parallel_threads(sys, cfg) : groebner_parallel(sys, cfg);

  std::printf("%s  P=%d  backend=%s%s  seed=%llu  basis=%zu  makespan=%llu%s\n\n",
              opt.problem.c_str(), opt.procs, opt.threads ? "threads" : "sim",
              opt.matrix ? "  reduce=matrix" : "",
              static_cast<unsigned long long>(opt.seed), res.basis_ids.size(),
              static_cast<unsigned long long>(res.machine.makespan),
              opt.threads ? " ns" : " units");

  int rc = report(tracer.data(), opt);
  if (rc != 0) return rc;

  if (!opt.metrics_path.empty()) {
    std::string json = metrics.snapshot().to_json();
    if (!write_file(opt.metrics_path, json.data(), json.size())) return 1;
    std::printf("metrics written to %s\n", opt.metrics_path.c_str());
  }
  return 0;
}
