# Empty dependencies file for table2_added_zeroed.
# This may be replaced when dependencies are built.
