#include "machine/thread_machine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "machine/invariants.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "support/check.hpp"

namespace gbd {

namespace {

struct Envelope {
  int src;
  HandlerId handler;
  std::vector<std::uint8_t> payload;
};

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One processor's inbox. Padded to its own cache line so two processors'
/// mailbox mutexes never false-share; the envelope vector is a pooled slab
/// (poll swaps it with a drained scratch vector, so its capacity — and the
/// scratch's — is reused for the whole run).
struct alignas(64) ThreadMachine::Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Envelope> in;  // guarded by mu
  bool waiting = false;      // owner asleep in wait(), guarded by mu
  MailboxStats stats;        // sender fields guarded by mu; owner fields owner-only
};

class ThreadMachine::ThreadProc final : public Proc {
 public:
  ThreadProc(ThreadMachine* m, int id) : machine_(m), id_(id) {}

  int id() const override { return id_; }
  int nprocs() const override { return machine_->nprocs_; }

  void on(HandlerId h, Handler fn) override {
    GBD_CHECK_MSG(!started_, "on() after this processor started communicating");
    if (handlers_.size() <= h) handlers_.resize(h + 1);
    GBD_CHECK_MSG(!handlers_[h], "handler registered twice");
    handlers_[h] = std::move(fn);
  }

  void send(int dst, HandlerId h, std::vector<std::uint8_t> payload) override {
    ensure_started();
    GBD_CHECK(dst >= 0 && dst < machine_->nprocs_);
    GBD_CHECK_MSG(!machine_->shutdown_.load(std::memory_order_relaxed),
                  "send after machine quiescence — protocol bug");
    comm_.messages_sent += 1;
    comm_.bytes_sent += payload.size();
    // Count the envelope as in flight *before* it becomes visible in the
    // destination mailbox: quiescence tests in_flight_ == 0, and this order
    // guarantees an undelivered message is always counted.
    machine_->in_flight_.fetch_add(1);
    Mailbox& mb = *machine_->procs_[static_cast<std::size_t>(dst)]->mailbox_;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mb.mu, std::try_to_lock);
      if (!lock.owns_lock()) {
        lock.lock();
        mb.stats.lock_contended += 1;
      }
      mb.in.push_back(Envelope{id_, h, std::move(payload)});
      mb.stats.enqueues += 1;
      wake = mb.waiting;
      if (wake) mb.stats.notifies += 1;
    }
    if (wake) mb.cv.notify_one();
  }

  std::size_t poll() override {
    ensure_started();
    maybe_tick();
    return drain();
  }

  bool wait() override {
    ensure_started();
    for (;;) {
      maybe_tick();
      if (drain() > 0) return true;
      Mailbox& mb = *mailbox_;
      std::unique_lock<std::mutex> lock(mb.mu);
      if (!mb.in.empty()) continue;  // raced with a send
      if (machine_->shutdown_.load()) return false;
      mb.waiting = true;
      mb.stats.cv_waits += 1;
      int idle = machine_->idle_.fetch_add(1) + 1;
      if (idle == machine_->nprocs_ && machine_->in_flight_.load() == 0) {
        // We are the last processor to go idle and nothing is undelivered:
        // the machine is quiescent. (No other processor can break this —
        // blocked and finished processors never send.)
        mb.waiting = false;
        machine_->idle_.fetch_sub(1);
        lock.unlock();
        machine_->declare_shutdown();
        return false;
      }
      std::uint64_t t0 = wall_ns();
      mb.cv.wait(lock, [&] {
        return !mb.in.empty() || machine_->shutdown_.load(std::memory_order_relaxed);
      });
      comm_.idle_units += wall_ns() - t0;
      mb.waiting = false;
      machine_->idle_.fetch_sub(1);
      if (!mb.in.empty()) {
        mb.stats.wakeups += 1;
        continue;  // drain on the next iteration
      }
      if (machine_->shutdown_.load()) return false;
    }
  }

  void charge(std::uint64_t) override {}

  void backoff(std::uint64_t units) override {
    // Real-time analog of the simulator's charged delay: without it, an
    // idle processor's steal/NACK circuits run at wire speed and saturate
    // the machine with protocol traffic (and, oversubscribed, starve the
    // busy processors of cpu). ~50ns per abstract work unit, capped; a
    // sender's notify ends the pause early, so throttling never delays
    // actual work by more than the scheduler already does.
    ensure_started();
    constexpr std::uint64_t kNsPerUnit = 50;
    constexpr std::uint64_t kMaxNs = 2'000'000;  // 2 ms
    // Escalate while nothing arrives (drain resets the streak): a long-idle
    // processor polls ever more lazily instead of at a fixed cadence.
    std::uint64_t ns = std::min((units * kNsPerUnit) << std::min(backoff_streak_, 5u), kMaxNs);
    backoff_streak_ += 1;
    Mailbox& mb = *mailbox_;
    std::unique_lock<std::mutex> lock(mb.mu);
    if (!mb.in.empty() || machine_->shutdown_.load()) return;
    mb.waiting = true;  // senders notify; idle_ untouched — still busy for quiescence
    mb.stats.cv_waits += 1;
    std::uint64_t t0 = wall_ns();
    mb.cv.wait_for(lock, std::chrono::nanoseconds(ns), [&] {
      return !mb.in.empty() || machine_->shutdown_.load(std::memory_order_relaxed);
    });
    comm_.idle_units += wall_ns() - t0;
    mb.waiting = false;
  }

  std::size_t kernel_lanes() const override { return machine_->kernel_lanes_; }

  std::uint64_t now() override { return wall_ns() - machine_->epoch_ns_; }

  void yield() override { std::this_thread::yield(); }

 private:
  /// Swap the mailbox slab out under its lock and dispatch outside it.
  std::size_t drain() {
    Mailbox& mb = *mailbox_;
    scratch_.clear();
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      scratch_.swap(mb.in);
    }
    if (scratch_.empty()) return 0;
    backoff_streak_ = 0;  // traffic arrived: poll eagerly again
    machine_->in_flight_.fetch_sub(scratch_.size());
    mb.stats.drains += 1;
    mb.stats.drained_messages += scratch_.size();
    mb.stats.max_drain_batch = std::max<std::uint64_t>(mb.stats.max_drain_batch, scratch_.size());
    for (Envelope& env : scratch_) dispatch(env);
    return scratch_.size();
  }

  /// Steady-clock telemetry tick; frames land in the in-process aggregator.
  void maybe_tick() {
    if (telemetry_ == nullptr) return;
    std::uint64_t t = now();
    if (!telemetry_->due(t)) return;
    std::vector<std::uint8_t> frame = telemetry_->sample(
        id_, t, comm_, tracer() != nullptr ? tracer()->dropped() : 0);
    machine_->telemetry_->ingest_bytes(frame.data(), frame.size());
  }

  /// First communication call: this processor's registration is complete.
  /// Block until every processor's is (see the contract on Proc::on).
  void ensure_started() {
    if (started_) return;
    started_ = true;
    machine_->start_latch_->arrive_and_wait();
  }

  void dispatch(Envelope& env) {
    GBD_CHECK_MSG(env.handler < handlers_.size() && handlers_[env.handler],
                  "message for unregistered handler");
    comm_.messages_received += 1;
    Reader r(env.payload.data(), env.payload.size());
    std::uint64_t t0 = tracer() != nullptr ? now() : 0;
    handlers_[env.handler](*this, env.src, r);
    if (tracer() != nullptr) {
      tracer()->complete(Ev::kHandler, t0, now(), env.handler,
                         static_cast<std::uint64_t>(env.src));
    }
  }

  ThreadMachine* machine_;
  int id_;
  std::vector<Handler> handlers_;
  std::unique_ptr<Mailbox> mailbox_;
  std::vector<Envelope> scratch_;  ///< pooled drain buffer, owner-only
  bool started_ = false;           ///< passed the registration barrier
  unsigned backoff_streak_ = 0;    ///< consecutive backoffs with no traffic

  friend class ThreadMachine;
};

ThreadMachine::ThreadMachine(int nprocs, std::size_t kernel_lanes) : nprocs_(nprocs) {
  GBD_CHECK(nprocs >= 1);
  if (kernel_lanes == 0) {
    // Auto: split the host's concurrency evenly across the procs' own
    // threads so kernels never oversubscribe the box.
    std::size_t hw = std::thread::hardware_concurrency();
    kernel_lanes_ = std::max<std::size_t>(1, hw / static_cast<std::size_t>(nprocs));
  } else {
    kernel_lanes_ = kernel_lanes;
  }
}

ThreadMachine::~ThreadMachine() = default;

void ThreadMachine::declare_shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  // Wake every sleeper. Taking each mailbox mutex orders the store above
  // before any still-running wait(): a processor either sees shutdown_ when
  // it evaluates its predicate, or is already inside cv.wait and gets the
  // notification.
  for (auto& p : procs_) {
    Mailbox& mb = *p->mailbox_;
    {
      std::lock_guard<std::mutex> lock(mb.mu);
    }
    mb.cv.notify_all();
  }
}

void ThreadMachine::note_worker_finished(ThreadProc& proc) {
  // A worker that never communicated still owes its barrier arrival, or
  // every other processor would block at the latch forever.
  if (!proc.started_) {
    proc.started_ = true;
    start_latch_->count_down();
  }
  int idle = idle_.fetch_add(1) + 1;
  if (idle == nprocs_ && in_flight_.load() == 0) declare_shutdown();
}

MachineStats ThreadMachine::run(const std::function<void(Proc&)>& worker) {
  procs_.clear();
  in_flight_.store(0);
  idle_.store(0);
  shutdown_.store(false);
  start_latch_ = std::make_unique<std::latch>(nprocs_);
  for (int i = 0; i < nprocs_; ++i) {
    procs_.push_back(std::make_unique<ThreadProc>(this, i));
    procs_.back()->mailbox_ = std::make_unique<Mailbox>();
  }
  if (tracer_ != nullptr) {
    tracer_->start_run(nprocs_, ClockDomain::kSteadyNs);
    for (int i = 0; i < nprocs_; ++i) {
      procs_[static_cast<std::size_t>(i)]->tracer_ = &tracer_->at(i);
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->start_run(nprocs_, ClockDomain::kSteadyNs);
    for (int i = 0; i < nprocs_; ++i) {
      procs_[static_cast<std::size_t>(i)]->telemetry_ = &telemetry_->at(i);
    }
  }
  epoch_ns_ = wall_ns();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    threads.emplace_back([this, i, &worker] {
      worker(*procs_[static_cast<std::size_t>(i)]);
      note_worker_finished(*procs_[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& t : threads) t.join();

  // Under real concurrency a mid-run global read would race, so invariants
  // run only once all workers have joined (the final state is still the
  // one the protocols must leave coherent).
  if (monitor_ != nullptr) monitor_->run_all("quiescence");

  MachineStats stats;
  stats.makespan = wall_ns() - epoch_ns_;
  stats.has_mailbox_stats = true;
  for (auto& p : procs_) {
    stats.per_proc.push_back(p->comm_stats());
    stats.mailbox.push_back(p->mailbox_->stats);
  }
  if (tracer_ != nullptr) tracer_->finish_run(stats.makespan);
  return stats;
}

}  // namespace gbd
