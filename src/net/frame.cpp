#include "net/frame.hpp"

#include <array>
#include <cstring>

namespace gbd {

namespace {

/// Lazily built 256-entry table for the reflected IEEE polynomial.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t n, std::uint32_t seed) {
  const std::uint32_t* t = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kReady: return "ready";
    case FrameType::kGo: return "go";
    case FrameType::kApp: return "app";
    case FrameType::kAck: return "ack";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kIdle: return "idle";
    case FrameType::kProbe: return "probe";
    case FrameType::kProbeAck: return "probe-ack";
    case FrameType::kQuiescent: return "quiescent";
    case FrameType::kExitStats: return "exit-stats";
    case FrameType::kExitAck: return "exit-ack";
    case FrameType::kGather: return "gather";
    case FrameType::kGatherAck: return "gather-ack";
    case FrameType::kTelemetry: return "telemetry";
    case FrameType::kJobSubmit: return "job-submit";
    case FrameType::kJobCancel: return "job-cancel";
    case FrameType::kJobEvent: return "job-event";
    case FrameType::kJobResult: return "job-result";
    case FrameType::kServerStats: return "server-stats";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out(kFrameHeaderSize + f.payload.size());
  std::uint8_t* h = out.data();
  put_u32(h + 0, kFrameMagic);
  h[4] = kFrameVersion;
  h[5] = static_cast<std::uint8_t>(f.type);
  put_u16(h + 6, 0);
  put_u32(h + 8, f.src);
  put_u32(h + 12, f.handler);
  put_u64(h + 16, f.seq);
  put_u32(h + 24, static_cast<std::uint32_t>(f.payload.size()));
  if (!f.payload.empty()) {
    std::memcpy(h + kFrameHeaderSize, f.payload.data(), f.payload.size());
  }
  std::uint32_t crc = crc32_ieee(h, 28);
  crc = crc32_ieee(f.payload.data(), f.payload.size(), crc);
  put_u32(h + 28, crc);
  return out;
}

FrameDecoder::Status FrameDecoder::next(Frame* out) {
  if (!error_.empty()) return Status::kError;
  // Compact the consumed prefix once it dominates the buffer, so a long
  // stream doesn't grow the vector without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kFrameHeaderSize) return Status::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u32(h) != kFrameMagic) return fail("bad frame magic (not a GBDF stream)");
  if (h[4] != kFrameVersion) {
    return fail("unsupported frame version " + std::to_string(int(h[4])) + " (expected " +
                std::to_string(int(kFrameVersion)) + ")");
  }
  if (h[5] == 0 || h[5] > kMaxFrameType) {
    return fail("unknown frame type " + std::to_string(int(h[5])));
  }
  if (get_u16(h + 6) != 0) return fail("nonzero reserved flags");
  std::uint32_t len = get_u32(h + 24);
  if (len > max_payload_) {
    return fail("frame payload length " + std::to_string(len) + " exceeds limit " +
                std::to_string(max_payload_));
  }
  if (buf_.size() - pos_ < kFrameHeaderSize + len) return Status::kNeedMore;
  std::uint32_t crc = crc32_ieee(h, 28);
  crc = crc32_ieee(h + kFrameHeaderSize, len, crc);
  if (crc != get_u32(h + 28)) {
    return fail("frame CRC mismatch (type " + std::string(frame_type_name(FrameType(h[5]))) +
                ", " + std::to_string(len) + " payload bytes)");
  }
  out->type = static_cast<FrameType>(h[5]);
  out->src = get_u32(h + 8);
  out->handler = get_u32(h + 12);
  out->seq = get_u64(h + 16);
  out->payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + len);
  pos_ += kFrameHeaderSize + len;
  return Status::kFrame;
}

}  // namespace gbd
