#include "gb/parallel.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>

#include "basis/hybrid_basis.hpp"
#include "basis/replicated_basis.hpp"
#include "gb/pairs.hpp"
#include "machine/invariants.hpp"
#include "machine/thread_machine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "poly/echelon.hpp"
#include "poly/reduce.hpp"
#include "poly/simd.hpp"
#include "poly/spoly.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"
#include "support/rng.hpp"

namespace gbd {

namespace {

/// Machine-wide record of executed task uids, for the no-double-execution
/// invariant. Mutex-guarded so ThreadMachine workers may share it too.
struct TaskLedger {
  std::mutex mu;
  std::set<std::uint64_t> executed;

  /// Returns true iff uid was already recorded (i.e. this is a double run).
  bool record(std::uint64_t uid) {
    std::lock_guard<std::mutex> g(mu);
    return !executed.insert(uid).second;
  }
};

/// A pair task: the two polynomial ids plus their head monomials, carried so
/// the receiving processor can evaluate the elimination criteria and the
/// priority without the bodies.
struct PairTask {
  PolyId a = 0;
  PolyId b = 0;
  Monomial ha, hb;

  std::vector<std::uint8_t> encode() const {
    Writer w;
    w.u64(a);
    w.u64(b);
    ha.write(w);
    hb.write(w);
    return w.take();
  }

  static PairTask decode(const std::vector<std::uint8_t>& payload) {
    Reader r(payload);
    PairTask t;
    t.a = r.u64();
    t.b = r.u64();
    t.ha = Monomial::read(r);
    t.hb = Monomial::read(r);
    return t;
  }
};

/// Exact set of treated id-pairs (chain-criterion knowledge is local to each
/// processor; citing only pairs we completed ourselves keeps the criterion
/// sound — see DESIGN.md §6).
class DoneIdPairs {
 public:
  void mark(PolyId a, PolyId b) { done_.insert(key(a, b)); }
  bool contains(PolyId a, PolyId b) const { return done_.count(key(a, b)) > 0; }

 private:
  static std::pair<PolyId, PolyId> key(PolyId a, PolyId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  std::set<std::pair<PolyId, PolyId>> done_;
};

/// Per-processor results handed back to the driver after the machine stops.
struct ProcOutput {
  std::vector<std::pair<PolyId, Polynomial>> added;
  GbStats stats;
  BasisStats basis;
  ProcTrace trace;
  std::uint64_t lock_wait = 0;
};

/// The augment protocol's split-phase state (§5: the suspended "thread").
enum class AugState { kIdle, kWaitLock, kValidating, kAdding };

/// Async-round id for a pair's hold/stall episode (matches begin to end).
std::uint64_t hold_id(PolyId a, PolyId b) { return (a * 0x9e3779b97f4a7c15ULL) ^ b; }

/// One processor's GL-P worker.
class GlpWorker {
 public:
  GlpWorker(Proc& self, const PolySystem& sys, const ParallelConfig& cfg,
            const std::vector<std::pair<PolyId, Polynomial>>& inputs, ProcOutput* out,
            InvariantMonitor* monitor = nullptr, TaskLedger* ledger = nullptr)
      : self_(self),
        sys_(sys),
        cfg_(cfg),
        out_(out),
        monitor_(monitor),
        ledger_(ledger),
        zp_(cfg.gb.coeff.is_zp() ? std::make_optional<ZpField>(cfg.gb.coeff.prime)
                                 : std::nullopt),
        basis_owned_(make_store(self, cfg)),
        basis_(*basis_owned_),
        lock_mgr_(self.id() == 0 ? std::make_optional<LockManager>(self) : std::nullopt),
        lock_(self, /*coordinator=*/0),
        queue_(self, &sys.ctx, [this] { return app_idle(); }, taskq_config(cfg)) {
    for (const auto& [id, poly] : inputs) basis_.preload(id, poly);
  }

  // --- invariant-checker views (read-only; see run_on_machine) ---------------

  /// The basis as a ReplicatedBasis, or null under the hybrid store.
  const ReplicatedBasis* replicated_basis() const {
    return dynamic_cast<const ReplicatedBasis*>(basis_owned_.get());
  }
  const DistTaskQueue& taskq() const { return queue_; }
  bool app_idle_now() const { return app_idle(); }

  void run() {
    if (ProcTelemetry* te = self_.telemetry()) {
      // Live-telemetry sampler: called from this processor's own tick sites
      // (inside its poll/wait), so plain reads of worker state are safe.
      te->set_sampler([this](TeleSample& s) {
        tele_at(s, TeleKey::kQueueDepth) = queue_.local_size() + suspended_.size() +
                                           stalled_.size() + pending_.size();
        tele_at(s, TeleKey::kDegree) = cur_degree_;
        tele_at(s, TeleKey::kBasisSize) = basis_.known_heads().size();
        tele_at(s, TeleKey::kSpairsRetired) = out_->stats.spolys_computed;
        tele_at(s, TeleKey::kSpairsZeroed) = out_->stats.reductions_to_zero;
        tele_at(s, TeleKey::kWorkUnits) = out_->stats.work_units;
      });
    }
    {
      // Spanned so a trace's timeline starts at the first real activity
      // (initial pair creation is engine work, not idle time).
      TraceSpan span(self_, Ev::kAugment);
      seed_initial_pairs();
    }
    std::vector<std::uint8_t> payload;
    for (;;) {
      self_.poll();
      // The VALIDATE axiom of Figure 3 is independently schedulable: fire it
      // whenever the shadow set is nonempty. The fetches stream in while we
      // keep computing, so the replica stays near-fresh and reductions
      // rarely run against a badly stale basis (begin_validate dedups
      // in-flight requests, so re-firing is cheap).
      if (!basis_.valid()) basis_.begin_validate();
      pump_augment();
      if (try_resume_suspended()) continue;
      if (is_reserved_coordinator()) {
        queue_.pump_termination();
        if (queue_.terminated()) break;
        if (!traced_wait()) break;
        continue;
      }
      if (aug_state_ != AugState::kIdle && aug_state_ != AugState::kWaitLock) {
        // Validation/adding hold the lock: just serve the network until the
        // split-phase transfers complete. (While merely *waiting* for the
        // lock we fall through and overlap other pair work — the paper's
        // thread suspension.)
        if (!traced_wait()) {
          finishing_ = true;  // machine quiescence mid-protocol: checked below
        } else {
          continue;
        }
      }
      if (!finishing_) switch (queue_.try_dequeue(&payload)) {
        case DistTaskQueue::Dequeue::kGot:
          if (cfg_.gb.matrix_reduce) {
            process_task_batch(&payload);
          } else {
            process_task(PairTask::decode(payload));
          }
          break;
        case DistTaskQueue::Dequeue::kTerminated:
          finishing_ = true;
          break;
        case DistTaskQueue::Dequeue::kEmpty:
          if (!traced_wait()) finishing_ = true;
          break;
      }
      if (finishing_) {
        if (!(pending_.empty() && suspended_.empty() && stalled_.empty())) {
          // Under a monitor this is recorded as a violation (the fuzz driver
          // wants the replay string, not an abort); otherwise it is fatal.
          if (monitor_ != nullptr) {
            monitor_->note("termination-unfinished-work",
                           "proc " + std::to_string(self_.id()) +
                               " terminated with unfinished local work (suspended=" +
                               std::to_string(suspended_.size()) + " stalled=" +
                               std::to_string(stalled_.size()) + " pending=" +
                               std::to_string(pending_.size()) + ")");
            break;
          }
          GBD_CHECK_MSG(false, "terminated with unfinished local work — protocol bug");
        }
        break;
      }
    }
    out_->lock_wait = lock_.wait_units();
    out_->stats.lock_wait_units = lock_.wait_units();
    out_->stats.idle_units = self_.comm_stats().idle_units;
    out_->stats.polys_transferred = basis_.stats().bodies_received;
    out_->stats.peak_resident_bodies = basis_.stats().max_resident;
    out_->basis = basis_.stats();
    if (cfg_.metrics != nullptr) push_metrics(*cfg_.metrics);
  }

 private:
  TaskQueueConfig taskq_config(const ParallelConfig& cfg) {
    TaskQueueConfig tq = cfg.taskq;
    tq.coordinator = 0;
    tq.selection = cfg.gb.selection;
    if (monitor_ != nullptr) {
      // Conservation hook: every task uid must be executed exactly once,
      // machine-wide, across any pattern of steals and pushes.
      tq.on_dequeue = [this](std::uint64_t uid) {
        if (ledger_ != nullptr && ledger_->record(uid)) {
          monitor_->note("task-double-execution",
                         "task uid " + std::to_string(uid) + " dequeued twice (second time on proc " +
                             std::to_string(self_.id()) + ")");
        }
      };
      // Termination-safety hook: when the announcement reaches this
      // processor, the double-wave (or white token circuit) has already
      // proved global idleness and enq == deq, both stable — so finding any
      // local task, or any suspended/stalled/pending work, here means the
      // coordinator announced while work was still in flight.
      tq.on_announce = [this] {
        if (queue_.local_size() != 0 || !app_idle()) {
          monitor_->note("premature-announce",
                         "proc " + std::to_string(self_.id()) +
                             " learned of termination while still holding work (local=" +
                             std::to_string(queue_.local_size()) + ")");
        }
      };
    }
    return tq;
  }

  bool is_reserved_coordinator() const {
    return cfg_.reserve_coordinator && self_.id() == 0;
  }

  /// Telemetry degree gauge: lcm degree of the dequeued pair, computed
  /// without Monomial::lcm so no CostCounter work is charged — telemetry
  /// must observe the run, never perturb its virtual time.
  void note_task_degree(const PairTask& task) {
    if (self_.telemetry() == nullptr) return;
    std::uint64_t deg = 0;
    for (std::size_t i = 0; i < task.ha.nvars(); ++i) {
      deg += std::max(task.ha.exp(i), task.hb.exp(i));
    }
    cur_degree_ = deg;
  }

  /// Why we are about to block: classifies the wait for the breakdown
  /// analyzer (hold = bodies en route, protocol = augment round in flight,
  /// idle = genuinely nothing to do).
  WaitReason wait_reason() const {
    if (!suspended_.empty() || !stalled_.empty()) return WaitReason::kHold;
    if (aug_state_ != AugState::kIdle || !pending_.empty()) return WaitReason::kProtocol;
    return WaitReason::kIdle;
  }

  /// wait() wrapped in a kWait span tagged with the reason. Handler spans
  /// emitted by deliveries during the wait nest inside it, so the analyzer's
  /// self-time pass charges dispatch work to comm, not to the wait bucket.
  bool traced_wait() {
    if (self_.tracer() == nullptr) return self_.wait();
    TraceSpan span(self_, Ev::kWait, static_cast<std::uint64_t>(wait_reason()));
    return self_.wait();
  }

  /// Run-end metrics: every per-processor counter this worker owns, as named
  /// series (the machine-level comm/mailbox series are pushed by the driver).
  void push_metrics(MetricsRegistry& reg) {
    int p = self_.id();
    const GbStats& g = out_->stats;
    reg.add("gb.pairs_created", p, g.pairs_created);
    reg.add("gb.pairs_pruned_coprime", p, g.pairs_pruned_coprime);
    reg.add("gb.pairs_pruned_chain", p, g.pairs_pruned_chain);
    reg.add("gb.spolys_computed", p, g.spolys_computed);
    reg.add("gb.reductions_to_zero", p, g.reductions_to_zero);
    reg.add("gb.basis_added", p, g.basis_added);
    reg.add("gb.reduction_steps", p, g.reduction_steps);
    reg.add("gb.work_units", p, g.work_units);
    reg.add("gb.lock_wait_units", p, g.lock_wait_units);
    reg.add("gb.idle_units", p, g.idle_units);
    reg.add("gb.peak_resident_bodies", p, g.peak_resident_bodies);
    const BasisStats& b = basis_.stats();
    reg.add("basis.invalidations_sent", p, b.invalidations_sent);
    reg.add("basis.fetches_sent", p, b.fetches_sent);
    reg.add("basis.bodies_received", p, b.bodies_received);
    reg.add("basis.bodies_served", p, b.bodies_served);
    reg.add("basis.bodies_forwarded", p, b.bodies_forwarded);
    reg.add("basis.evictions", p, b.evictions);
    reg.add("basis.max_resident", p, b.max_resident);
    reg.add("basis.invalidation_batches", p, b.invalidation_batches);
    reg.add("basis.fetch_batches", p, b.fetch_batches);
    reg.add("basis.body_batches", p, b.body_batches);
    const TaskQueueStats& q = queue_.stats();
    reg.add("taskq.enqueued", p, q.enqueued);
    reg.add("taskq.dequeued", p, q.dequeued);
    reg.add("taskq.steals_sent", p, q.steals_sent);
    reg.add("taskq.steals_won", p, q.steals_won);
    reg.add("taskq.tasks_migrated", p, q.tasks_migrated);
    reg.add("taskq.tasks_migrated_in", p, q.tasks_migrated_in);
    reg.add("taskq.waves_started", p, q.waves_started);
    reg.add("taskq.token_rounds", p, q.token_rounds);
    reg.add("tracer.dropped_events", p,
            self_.tracer() != nullptr ? self_.tracer()->dropped() : 0);
    // Kernel thread-locals: this worker's thread hosts exactly this logical
    // processor on both backends, so the delta since construction is ours.
    collect_kernel_delta(reg, p, kernel_base_);
  }

  bool app_idle() const {
    return suspended_.empty() && stalled_.empty() && pending_.empty() && !executing_;
  }

  int first_worker() const { return cfg_.reserve_coordinator ? 1 : 0; }
  int nworkers() const { return self_.nprocs() - first_worker(); }

  /// Distribute the initial pairs round-robin over the compute processors,
  /// rotated by the seed (the run-to-run perturbation knob).
  void seed_initial_pairs() {
    if (is_reserved_coordinator()) return;
    const auto& heads = basis_.known_heads();
    std::uint64_t k = 0;
    for (std::size_t i = 0; i < heads.size(); ++i) {
      for (std::size_t j = i + 1; j < heads.size(); ++j, ++k) {
        int assignee = first_worker() +
                       static_cast<int>((k + cfg_.seed) % static_cast<std::uint64_t>(nworkers()));
        if (assignee != self_.id()) continue;
        create_pair(heads[i].first, heads[j].first, heads[i].second, heads[j].second);
      }
    }
  }

  /// Create (and locally enqueue) one pair, applying the coprime criterion
  /// at creation as the sequential engine does.
  void create_pair(PolyId a, PolyId b, const Monomial& ha, const Monomial& hb) {
    out_->stats.pairs_created += 1;
    if (cfg_.gb.coprime_criterion && Monomial::coprime(ha, hb)) {
      out_->stats.pairs_pruned_coprime += 1;
      done_.mark(a, b);
      return;
    }
    PairTask t{a, b, ha, hb};
    queue_.enqueue(t.encode(), Monomial::lcm(ha, hb));
  }

  /// Enqueue without any criterion (the caller already filtered).
  void enqueue_pair(PolyId a, PolyId b, const Monomial& ha, const Monomial& hb) {
    PairTask t{a, b, ha, hb};
    queue_.enqueue(t.encode(), Monomial::lcm(ha, hb));
  }

  /// Chain criterion against local knowledge: heads come from the replica
  /// and the shadow set (shadow entries carry their head monomial).
  bool chain_prunable(const PairTask& t) const {
    if (!cfg_.gb.chain_criterion) return false;
    Monomial l = Monomial::lcm(t.ha, t.hb);
    for (const auto& [k, head] : basis_.known_heads()) {
      if (k == t.a || k == t.b) continue;
      if (head.divides(l) && done_.contains(t.a, k) && done_.contains(t.b, k)) {
        return true;
      }
    }
    return false;
  }

  void process_task(PairTask task) {
    executing_ = true;
    note_task_degree(task);
    TraceSpan span(self_, Ev::kTask, task.a, task.b);
    if (cfg_.gb.coprime_criterion && Monomial::coprime(task.ha, task.hb)) {
      out_->stats.pairs_pruned_coprime += 1;
      done_.mark(task.a, task.b);
      executing_ = false;
      return;
    }
    if (chain_prunable(task)) {
      // Not marked done: only self-grounded treatments are citable (see
      // sequential.cpp on the justification-cycle hazard).
      out_->stats.pairs_pruned_chain += 1;
      executing_ = false;
      return;
    }
    const Polynomial* pa = basis_.find(task.a);
    const Polynomial* pb = basis_.find(task.b);
    if (pa == nullptr || pb == nullptr) {
      // §5 "Local Threads": put the pair on hold and fetch what is missing;
      // other pairs proceed meanwhile.
      if (pa == nullptr) basis_.prefetch(task.a);
      if (pb == nullptr) basis_.prefetch(task.b);
      if (ProcTracer* t = self_.tracer()) {
        t->async_begin(Ev::kHold, self_.now(), hold_id(task.a, task.b), task.a);
      }
      suspended_.push_back(std::move(task));
      executing_ = false;
      return;
    }

    TaskTrace trace;
    trace.a = task.a;
    trace.b = task.b;
    Polynomial h;
    {
      // Span strictly encloses the CostScope (see obs/span.hpp): its end
      // drains the s-poly work into the clock after elapsed() was read.
      TraceSpan sp(self_, Ev::kSpoly, task.a, task.b);
      CostScope cost;
      h = spoly(sys_.ctx, *pa, *pb, cfg_.gb.coeff);
      out_->stats.work_units += cost.elapsed();
    }
    out_->stats.spolys_computed += 1;
    continue_reduction(std::move(task), std::move(h), std::move(trace));
  }

  /// Batched (F4-style) variant of process_task, used when
  /// cfg.gb.matrix_reduce is set. Starting from one dequeued task, drains up
  /// to matrix_batch_max further *locally available* tasks (no degree filter:
  /// unlike the sequential engine there is no global queue to group by
  /// degree, and whatever is local IS this processor's share of the front),
  /// screens each exactly as process_task would — criteria, then residency
  /// suspension — and reduces the survivors' s-polynomials as one Macaulay
  /// matrix against the replica. Each surviving row enters the augment
  /// pipeline as its own Pending attributed to its originating pair, so
  /// done-marking, freshening and pair creation reuse the per-pair machinery
  /// unchanged. The network is NOT served between symbolic preprocessing and
  /// the elimination: the frame holds pointers into replica storage, which
  /// stays stable only while we do not poll.
  void process_task_batch(std::vector<std::uint8_t>* payload) {
    executing_ = true;
    struct Ready {
      PairTask task;
      Polynomial spoly;
    };
    std::vector<Ready> ready;
    {
      TraceSpan span(self_, Ev::kTask);
      for (;;) {
        PairTask task = PairTask::decode(*payload);
        note_task_degree(task);
        if (cfg_.gb.coprime_criterion && Monomial::coprime(task.ha, task.hb)) {
          out_->stats.pairs_pruned_coprime += 1;
          done_.mark(task.a, task.b);
        } else if (chain_prunable(task)) {
          // Not marked done: only self-grounded treatments are citable (see
          // sequential.cpp on the justification-cycle hazard).
          out_->stats.pairs_pruned_chain += 1;
        } else {
          const Polynomial* pa = basis_.find(task.a);
          const Polynomial* pb = basis_.find(task.b);
          if (pa == nullptr || pb == nullptr) {
            if (pa == nullptr) basis_.prefetch(task.a);
            if (pb == nullptr) basis_.prefetch(task.b);
            if (ProcTracer* t = self_.tracer()) {
              t->async_begin(Ev::kHold, self_.now(), hold_id(task.a, task.b), task.a);
            }
            suspended_.push_back(std::move(task));
          } else {
            Polynomial h;
            {
              TraceSpan sp(self_, Ev::kSpoly, task.a, task.b);
              CostScope cost;
              h = spoly(sys_.ctx, *pa, *pb, cfg_.gb.coeff);
              out_->stats.work_units += cost.elapsed();
            }
            out_->stats.spolys_computed += 1;
            ready.push_back(Ready{std::move(task), std::move(h)});
          }
        }
        if (ready.size() >= cfg_.gb.matrix_batch_max) break;
        if (queue_.try_dequeue(payload) != DistTaskQueue::Dequeue::kGot) break;
      }
      span.result(ready.size());
    }
    if (ready.empty()) {
      executing_ = false;
      return;
    }

    std::vector<Polynomial> rows;
    rows.reserve(ready.size());
    for (Ready& r : ready) rows.push_back(std::move(r.spoly));

    SymbolicFrame frame;
    {
      TraceSpan sp(self_, Ev::kMatSymbolic, rows.size());
      CostScope cost;
      frame = symbolic_preprocess(sys_.ctx, rows, basis_.reducer_set());
      out_->stats.work_units += cost.elapsed();
      sp.result(frame.ncols());
    }
    MacaulayMatrix mat;
    {
      TraceSpan sp(self_, Ev::kMatBuild, rows.size(), frame.ncols());
      CostScope cost;
      // Multiline runs only when the vector sweep could dispatch (mirrors
      // reduce_batch); build cost charged is dispatch-independent.
      const bool want_runs = cfg_.gb.coeff.is_zp() && !cfg_.gb.matrix_force_scalar &&
                             simd_level() != SimdLevel::kScalar;
      mat = build_matrix(sys_.ctx, frame, rows, cfg_.gb.coeff, want_runs);
      out_->stats.work_units += cost.elapsed();
    }
    EchelonOptions eopts;
    eopts.coeff = cfg_.gb.coeff;
    eopts.force_scalar = cfg_.gb.matrix_force_scalar;
    // Parallel elimination inside the task: the configured lane count,
    // clamped by what this machine grants each processor (SimMachine grants
    // freely and stays deterministic via makespan charging; Thread/Socket
    // grant the host's spare threads).
    eopts.nthreads = std::min(std::max<std::size_t>(1, cfg_.gb.matrix_threads),
                              std::max<std::size_t>(1, self_.kernel_lanes()));
    EchelonOutput eo;
    {
      TraceSpan sp(self_, Ev::kMatEliminate, rows.size());
      CostScope cost;
      const std::uint64_t axpys_before = matrix_kernel_stats().axpys;
      const std::uint64_t simd_before = matrix_kernel_stats().simd_rows;
      const std::uint64_t scalar_before = matrix_kernel_stats().scalar_rows;
      eo = echelon_reduce(sys_.ctx, frame, mat, eopts);
      const MatrixKernelStats& ks = matrix_kernel_stats();
      out_->stats.reduction_steps += ks.axpys - axpys_before;
      std::uint64_t c = cost.elapsed();
      out_->stats.work_units += c;
      out_->stats.max_step_cost = std::max(out_->stats.max_step_cost, c);
      sp.result(eo.rows.size());
      if (ProcTracer* t = self_.tracer()) {
        t->instant(Ev::kMatSweep, self_.now(), ks.simd_rows - simd_before,
                   ks.scalar_rows - scalar_before);
      }
    }

    TraceSpan sp(self_, Ev::kMatConvert, eo.rows.size());
    std::size_t next = 0;
    for (std::size_t s = 0; s < ready.size(); ++s) {
      PairTask& task = ready[s].task;
      TaskTrace trace;
      trace.a = task.a;
      trace.b = task.b;
      if (eo.src_zeroed[s]) {
        // Zero in-matrix: the row's standard representation uses replica
        // elements plus (possibly) other batch rows, each of which itself
        // either joins the basis or dies against real basis elements — so
        // the treatment is grounded and citable, as in the sequential batch.
        out_->stats.reductions_to_zero += 1;
        done_.mark(task.a, task.b);
        if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(trace));
        continue;
      }
      GBD_CHECK(next < eo.rows.size() && eo.rows[next].src == s);
      Polynomial h = std::move(eo.rows[next].poly);
      ++next;
      if (PolyId blocked = basis_.pending_reducer(h.hmono()); blocked != 0) {
        basis_.prefetch(blocked);
        if (ProcTracer* t = self_.tracer()) {
          t->async_begin(Ev::kStall, self_.now(), hold_id(task.a, task.b), blocked);
        }
        stalled_.push_back(Stalled{std::move(task), std::move(h), std::move(trace)});
        continue;
      }
      pending_.push_back(Pending{std::move(h), std::move(trace), task.a, task.b});
      if (!lock_.requested()) {
        lock_.request();
        aug_state_ = AugState::kWaitLock;
      }
    }
    executing_ = false;
  }

  /// Drive a reduct toward augment: reduce against the local replica, and
  /// then either retire it (zero), stall it (a shadowed element's head can
  /// still reduce it — the killing body is already en route, so waiting
  /// locally is far cheaper than discovering the same thing under the
  /// lock), or push it into the augment pipeline.
  void continue_reduction(PairTask task, Polynomial h, TaskTrace trace) {
    executing_ = true;
    reduce_by_replica(&h, &trace);

    if (h.is_zero()) {
      out_->stats.reductions_to_zero += 1;
      done_.mark(task.a, task.b);
      if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(trace));
      executing_ = false;
      return;
    }
    if (PolyId blocked = basis_.pending_reducer(h.hmono()); blocked != 0) {
      basis_.prefetch(blocked);
      if (ProcTracer* t = self_.tracer()) {
        t->async_begin(Ev::kStall, self_.now(), hold_id(task.a, task.b), blocked);
      }
      stalled_.push_back(Stalled{std::move(task), std::move(h), std::move(trace)});
      executing_ = false;
      return;
    }
    // Nonzero normal form w.r.t. the (possibly stale) replica: suspend into
    // the augment pipeline and request the lock if it is not already wanted.
    pending_.push_back(Pending{std::move(h), std::move(trace), task.a, task.b});
    if (!lock_.requested()) {
      lock_.request();
      aug_state_ = AugState::kWaitLock;
    }
    executing_ = false;
  }

  /// Head-reduce *h against the local replica, one step at a time, polling
  /// the network between steps (the paper's minimum grain is a single
  /// reduction step). Appends reducer ids to the trace.
  void reduce_by_replica(Polynomial* h, TaskTrace* trace) {
    TraceSpan span(self_, Ev::kReduce);
    ProcTelemetry* te = self_.telemetry();
    std::uint64_t t0 = te != nullptr ? self_.now() : 0;
    std::uint64_t steps = 0;
    if (!zp_) h->make_primitive();
    while (!h->is_zero()) {
      std::uint64_t rid = 0;
      const Polynomial* r = basis_.reducer_set().find_reducer(h->hmono(), &rid);
      if (r == nullptr) break;
      CostScope cost;
      if (zp_) {
        // Mod-p steps keep residues canonical by construction; the monic
        // normalization happens once at the end (reduce_step_mod is
        // scalar-equivariant, so deferring it changes nothing downstream).
        *h = reduce_step_mod(sys_.ctx, *h, *r, *zp_);
      } else {
        *h = reduce_step(sys_.ctx, *h, *r);
        h->make_primitive();
      }
      std::uint64_t c = cost.elapsed();
      steps += 1;
      out_->stats.reduction_steps += 1;
      out_->stats.max_step_cost = std::max(out_->stats.max_step_cost, c);
      out_->stats.work_units += c;
      trace->reducers.push_back(rid);
      self_.poll();  // serve fetches/invalidations/steals between steps
      // Also advance the augment protocol between steps: a lock grant or the
      // last invalidation ack must not wait for this (possibly long)
      // reduction to finish — that would stretch every lock hold by an
      // unrelated task's length. Guarded against re-entry because the
      // augment itself reduces.
      pump_augment();
    }
    if (zp_) h->make_monic(*zp_);
    if (te != nullptr) te->hist(TeleHist::kReduce).record(self_.now() - t0);
    span.result(steps);
  }

  /// Advance the augment state machine as far as the arrived messages allow.
  /// Re-entrant calls (from the augment's own reduction) are no-ops.
  void pump_augment() {
    if (in_pump_) return;
    in_pump_ = true;
    pump_augment_impl();
    in_pump_ = false;
  }

  void pump_augment_impl() {
    if (aug_state_ == AugState::kWaitLock && !lock_.granted() &&
        basis_.stats().bodies_received != replica_seen_) {
      // While queued for the lock, keep the pending reduct fresh against
      // every newly arrived basis element: work done here comes off the
      // critical section (and a reduct that dies here never needed the
      // lock's validation round at all).
      replica_seen_ = basis_.stats().bodies_received;
      freshen_pending();
    }
    if (aug_state_ == AugState::kWaitLock && lock_.granted()) {
      // Under the lock the basis is stable and all prior invalidations have
      // reached us (their acks gated the previous holder's release): one
      // validation round makes the replica the complete current G.
      aug_state_ = AugState::kValidating;
      basis_.begin_validate();
    }
    if (aug_state_ == AugState::kValidating && basis_.valid()) {
      if (use_batched_adds()) {
        finish_augment_under_lock_batched();
      } else {
        finish_augment_under_lock();
      }
    }
    if (aug_state_ == AugState::kAdding && basis_.add_done()) {
      if (!batch_adding_.empty()) {
        complete_add_batch();
      } else {
        complete_add();
      }
    }
  }

  bool use_batched_adds() const {
    return cfg_.wire.batch_invalidations && basis_.supports_batch_add();
  }

  /// With the lock held and a valid replica: re-reduce the pending reduct
  /// against the full basis (the NORMAL re-check of axiom AUGMENT) and
  /// either discard it or start the AddToSet broadcast.
  /// Re-reduce queued reducts against the current replica; retire any that
  /// reach zero. Runs outside the lock.
  void freshen_pending() {
    TraceSpan span(self_, Ev::kFreshen, pending_.size());
    for (std::size_t i = 0; i < pending_.size();) {
      Pending& p = pending_[i];
      reduce_by_replica(&p.poly, &p.trace);
      if (p.poly.is_zero()) {
        out_->stats.reductions_to_zero += 1;
        done_.mark(p.a, p.b);
        if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(p.trace));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  void finish_augment_under_lock() {
    TraceSpan span(self_, Ev::kAugment);
    if (pending_.empty()) {
      // Everything we queued for died while we waited; give the lock back.
      release_and_continue();
      return;
    }
    Pending& p = pending_.front();
    reduce_by_replica(&p.poly, &p.trace);
    if (!p.poly.is_zero()) {
      // The NORMAL re-check must see the body of any head that still
      // divides; under the hybrid store it may not be resident. Fetch it
      // and retry from pump_augment when it lands (progress is saved in
      // p.poly; the lock stays held — the price of bounded replication).
      if (PolyId blocked = basis_.pending_reducer(p.poly.hmono()); blocked != 0) {
        basis_.prefetch(blocked);
        return;
      }
    }
    if (p.poly.is_zero()) {
      out_->stats.reductions_to_zero += 1;
      done_.mark(p.a, p.b);
      if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(p.trace));
      pending_.pop_front();
      release_and_continue();
      return;
    }
    adding_id_ = basis_.begin_add(p.poly);
    aug_state_ = AugState::kAdding;
  }

  /// All invalidation acks arrived: record the new element, create its pairs
  /// (replica is complete, so this is {(s, r) : s ∈ G}), release the lock.
  void complete_add() {
    TraceSpan span(self_, Ev::kAugment, adding_id_);
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    const Polynomial* body = basis_.find(adding_id_);
    GBD_CHECK(body != nullptr);
    Monomial new_head = body->hmono();
    // The add is globally visible (all acks in): the critical section can
    // end here; pair creation only reads the (stable) local replica.
    release_and_continue();
    // The replica is complete and stable under the lock, so the
    // Gebauer–Möller update applies exactly as in the sequential engine.
    std::vector<PolyId> others;
    std::vector<Monomial> heads;
    for (const auto& [k, head] : basis_.known_heads()) {
      if (k == adding_id_) continue;
      others.push_back(k);
      heads.push_back(head);
    }
    if (cfg_.gb.gm_update) {
      out_->stats.pairs_created += others.size();
      GmPruneCounts gm;
      std::vector<std::size_t> kept = gm_new_pairs(sys_.ctx, heads, new_head, &gm);
      out_->stats.pairs_pruned_coprime += gm.coprime;
      out_->stats.pairs_pruned_chain += gm.m_rule + gm.f_rule;
      std::vector<bool> keep(others.size(), false);
      for (std::size_t i : kept) keep[i] = true;
      for (std::size_t i = 0; i < others.size(); ++i) {
        if (keep[i]) {
          enqueue_pair(others[i], adding_id_, heads[i], new_head);
        } else if (Monomial::coprime(heads[i], new_head)) {
          done_.mark(others[i], adding_id_);  // grounded by criterion 1 only
        }
      }
    } else {
      for (std::size_t i = 0; i < others.size(); ++i) {
        create_pair(others[i], adding_id_, heads[i], new_head);
      }
    }
    out_->stats.basis_added += 1;
    out_->added.emplace_back(adding_id_, *body);
    done_.mark(p.a, p.b);
    p.trace.added = true;
    p.trace.result = adding_id_;
    if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(p.trace));
  }

  /// Batched AUGMENT (wire.batch_invalidations): admit up to max_batch_adds
  /// surviving reducts under this single lock hold. Each is re-reduced
  /// against the complete replica *including the batch members pushed
  /// before it* (add_push stores immediately), so the admitted set is
  /// exactly what the unbatched path would have added over that many
  /// consecutive lock rounds — minus the per-add lock hand-offs and the
  /// per-id invalidation envelopes.
  void finish_augment_under_lock_batched() {
    TraceSpan span(self_, Ev::kAugment);
    bool open = false;
    while (!pending_.empty() && batch_adding_.size() < cfg_.max_batch_adds) {
      Pending& p = pending_.front();
      reduce_by_replica(&p.poly, &p.trace);
      if (!p.poly.is_zero()) {
        if (PolyId blocked = basis_.pending_reducer(p.poly.hmono()); blocked != 0) {
          // Unreachable on the replicated store (no invalidation can arrive
          // while we hold the lock), but kept for parity with the unbatched
          // path: fetch and resume from pump_augment when the body lands.
          basis_.prefetch(blocked);
          break;
        }
      }
      if (p.poly.is_zero()) {
        out_->stats.reductions_to_zero += 1;
        done_.mark(p.a, p.b);
        if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(p.trace));
        pending_.pop_front();
        continue;
      }
      if (!open) {
        basis_.add_open();
        open = true;
      }
      BatchAdd add;
      add.a = p.a;
      add.b = p.b;
      add.trace = std::move(p.trace);
      add.id = basis_.add_push(std::move(p.poly));
      batch_adding_.push_back(std::move(add));
      pending_.pop_front();
    }
    if (!open) {
      // Everything died (release) or the front reduct is blocked on a fetch
      // (keep the lock; pump_augment retries when the body arrives).
      if (pending_.empty()) release_and_continue();
      return;
    }
    basis_.add_close();
    aug_state_ = AugState::kAdding;
  }

  /// All acks for the batch round arrived: the adds are globally visible.
  /// Release the lock, then create each member's pairs exactly as the
  /// unbatched path would have — member k pairs against everything known
  /// before it, including earlier batch members but not later ones.
  void complete_add_batch() {
    TraceSpan span(self_, Ev::kAugment, batch_adding_.size());
    std::vector<BatchAdd> batch = std::move(batch_adding_);
    batch_adding_.clear();
    release_and_continue();
    // Batch ids are this processor's own sequence numbers: ascending.
    std::vector<PolyId> batch_ids;
    for (const BatchAdd& add : batch) batch_ids.push_back(add.id);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      BatchAdd& add = batch[k];
      const Polynomial* body = basis_.find(add.id);
      GBD_CHECK(body != nullptr);
      Monomial new_head = body->hmono();
      std::vector<PolyId> others;
      std::vector<Monomial> heads;
      for (const auto& [kid, head] : basis_.known_heads()) {
        if (kid == add.id) continue;
        // Skip later batch members: they were not yet in G when this
        // element was (logically) added.
        if (kid > add.id &&
            std::binary_search(batch_ids.begin(), batch_ids.end(), kid)) {
          continue;
        }
        others.push_back(kid);
        heads.push_back(head);
      }
      if (cfg_.gb.gm_update) {
        out_->stats.pairs_created += others.size();
        GmPruneCounts gm;
        std::vector<std::size_t> kept = gm_new_pairs(sys_.ctx, heads, new_head, &gm);
        out_->stats.pairs_pruned_coprime += gm.coprime;
        out_->stats.pairs_pruned_chain += gm.m_rule + gm.f_rule;
        std::vector<bool> keep(others.size(), false);
        for (std::size_t i : kept) keep[i] = true;
        for (std::size_t i = 0; i < others.size(); ++i) {
          if (keep[i]) {
            enqueue_pair(others[i], add.id, heads[i], new_head);
          } else if (Monomial::coprime(heads[i], new_head)) {
            done_.mark(others[i], add.id);  // grounded by criterion 1 only
          }
        }
      } else {
        for (std::size_t i = 0; i < others.size(); ++i) {
          create_pair(others[i], add.id, heads[i], new_head);
        }
      }
      out_->stats.basis_added += 1;
      out_->added.emplace_back(add.id, *body);
      done_.mark(add.a, add.b);
      add.trace.added = true;
      add.trace.result = add.id;
      if (cfg_.record_trace) out_->trace.tasks.push_back(std::move(add.trace));
    }
  }

  void release_and_continue() {
    lock_.release();
    if (!pending_.empty()) {
      lock_.request();
      aug_state_ = AugState::kWaitLock;
    } else {
      aug_state_ = AugState::kIdle;
    }
  }

  bool try_resume_suspended() {
    for (auto it = suspended_.begin(); it != suspended_.end(); ++it) {
      bool have_a = basis_.find(it->a) != nullptr;
      bool have_b = basis_.find(it->b) != nullptr;
      if (have_a && have_b) {
        PairTask t = std::move(*it);
        suspended_.erase(it);
        if (ProcTracer* tr = self_.tracer()) {
          tr->async_end(Ev::kHold, self_.now(), hold_id(t.a, t.b));
        }
        TraceSpan span(self_, Ev::kResume, t.a, t.b);
        process_task(std::move(t));
        return true;
      }
      // Keep the fetches alive: under a bounded cache one body can arrive
      // and be evicted again before its partner lands.
      if (!have_a) basis_.prefetch(it->a);
      if (!have_b) basis_.prefetch(it->b);
    }
    for (auto it = stalled_.begin(); it != stalled_.end(); ++it) {
      // Resume as soon as the head can make progress locally (a resident
      // reducer arrived) or nothing further is pending. Requires a resident
      // check too: under the hybrid store a *different*, permanently
      // non-resident element's head may divide forever.
      PolyId pending = basis_.pending_reducer(it->partial.hmono());
      if (pending == 0 ||
          basis_.reducer_set().find_reducer(it->partial.hmono(), nullptr) != nullptr) {
        Stalled s = std::move(*it);
        stalled_.erase(it);
        if (ProcTracer* tr = self_.tracer()) {
          tr->async_end(Ev::kStall, self_.now(), hold_id(s.task.a, s.task.b));
        }
        TraceSpan span(self_, Ev::kResume, s.task.a, s.task.b);
        continue_reduction(std::move(s.task), std::move(s.partial), std::move(s.trace));
        return true;
      }
      // Still blocked: keep the fetch alive (the body may have been fetched
      // and evicted again under a bounded cache).
      basis_.prefetch(pending);
    }
    return false;
  }

  struct Pending {
    Polynomial poly;
    TaskTrace trace;
    PolyId a, b;
  };

  /// One member of an in-flight batched add round (its body already lives in
  /// the store; the id is assigned by add_push).
  struct BatchAdd {
    PolyId id;
    PolyId a, b;
    TaskTrace trace;
  };

  Proc& self_;
  const PolySystem& sys_;
  const ParallelConfig& cfg_;
  ProcOutput* out_;
  InvariantMonitor* monitor_ = nullptr;
  TaskLedger* ledger_ = nullptr;
  /// Engaged iff cfg.gb.coeff selects Zp — the Montgomery constants are
  /// computed once per worker, not once per reduction step.
  std::optional<ZpField> zp_;

  static std::unique_ptr<BasisStore> make_store(Proc& self, const ParallelConfig& cfg) {
    if (cfg.basis_mode == BasisMode::kHybrid) {
      HybridConfig hc;
      hc.homes = cfg.hybrid_homes;
      hc.cache_capacity = cfg.hybrid_cache_capacity;
      return std::make_unique<HybridBasis>(self, hc);
    }
    return std::make_unique<ReplicatedBasis>(self, cfg.wire);
  }

  std::unique_ptr<BasisStore> basis_owned_;
  BasisStore& basis_;
  std::optional<LockManager> lock_mgr_;
  LockClient lock_;
  DistTaskQueue queue_;

  struct Stalled {
    PairTask task;
    Polynomial partial;
    TaskTrace trace;
  };

  DoneIdPairs done_;
  std::deque<PairTask> suspended_;
  std::deque<Stalled> stalled_;
  std::deque<Pending> pending_;
  std::vector<BatchAdd> batch_adding_;
  AugState aug_state_ = AugState::kIdle;
  PolyId adding_id_ = 0;
  /// Kernel thread-local counters at construction (on the hosting thread),
  /// windowing this run's deltas for the metrics registry.
  KernelBaseline kernel_base_ = kernel_baseline();
  std::size_t replica_seen_ = 0;
  std::uint64_t cur_degree_ = 0;  ///< lcm degree of the last dequeued pair (telemetry gauge)
  bool executing_ = false;
  bool in_pump_ = false;
  bool finishing_ = false;
};

/// Register the three protocol invariants over the (lazily filled) worker
/// vector. Every check skips cleanly while any processor has not constructed
/// its worker yet; the quiescence sweep always sees all of them.
void register_invariants(InvariantMonitor& monitor,
                         const std::vector<std::unique_ptr<GlpWorker>>& workers) {
  // Replicated-basis coherence: an AddToSet that completed (all acks in)
  // proves every processor processed the INVALIDATE — so the id must be
  // known machine-wide, and wherever the body is resident it must be
  // byte-identical to every other resident copy.
  monitor.add_check("basis-coherence", [&workers]() -> std::string {
    for (const auto& wp : workers) {
      if (wp == nullptr) return "";
    }
    for (std::size_t p = 0; p < workers.size(); ++p) {
      const ReplicatedBasis* rb = workers[p]->replicated_basis();
      if (rb == nullptr) continue;  // hybrid store: no replication invariant
      for (PolyId id : rb->completed_adds()) {
        const Polynomial* ref = rb->find(id);
        for (std::size_t q = 0; q < workers.size(); ++q) {
          const ReplicatedBasis* ob = workers[q]->replicated_basis();
          if (ob == nullptr) continue;
          if (!ob->known(id)) {
            return "add of id " + std::to_string(id) + " completed on proc " + std::to_string(p) +
                   " but proc " + std::to_string(q) + " never saw the invalidation";
          }
          const Polynomial* body = ob->find(id);
          if (ref != nullptr && body != nullptr && !ref->equals(*body)) {
            return "replicas of id " + std::to_string(id) + " diverge between proc " +
                   std::to_string(p) + " and proc " + std::to_string(q);
          }
        }
      }
    }
    return "";
  });
  // Task-queue conservation: no task lost or double-counted. At any
  // consistent snapshot every enqueued task is either dequeued, resting in
  // some local queue, or serialized inside an in-flight grant/push message
  // (counted by migrated-out minus migrated-in). Written add-only to dodge
  // unsigned underflow.
  monitor.add_check("task-conservation", [&workers]() -> std::string {
    std::uint64_t enq = 0, deq = 0, local = 0, mig_out = 0, mig_in = 0;
    for (const auto& wp : workers) {
      if (wp == nullptr) return "";
      const TaskQueueStats& st = wp->taskq().stats();
      enq += st.enqueued;
      deq += st.dequeued;
      local += wp->taskq().local_size();
      mig_out += st.tasks_migrated;
      mig_in += st.tasks_migrated_in;
    }
    if (enq + mig_in != deq + local + mig_out) {
      return "task conservation broken: enqueued=" + std::to_string(enq) + " dequeued=" +
             std::to_string(deq) + " resting=" + std::to_string(local) + " migrated_out=" +
             std::to_string(mig_out) + " migrated_in=" + std::to_string(mig_in);
    }
    return "";
  });
  // Termination safety: announcement is stable and final — once any endpoint
  // has heard it, no processor may hold a task (queued, suspended, stalled,
  // pending or executing) ever again.
  monitor.add_check("termination-safety", [&workers]() -> std::string {
    bool announced = false;
    for (const auto& wp : workers) {
      if (wp == nullptr) return "";
      announced = announced || wp->taskq().terminated();
    }
    if (!announced) return "";
    for (std::size_t p = 0; p < workers.size(); ++p) {
      if (workers[p]->taskq().local_size() != 0 || !workers[p]->app_idle_now()) {
        return "termination announced but proc " + std::to_string(p) + " still holds work";
      }
    }
    return "";
  });
}

ParallelResult run_on_machine(Machine& machine, bool sim, const PolySystem& sys,
                              const ParallelConfig& cfg) {
  GBD_CHECK_MSG(!cfg.reserve_coordinator || cfg.nprocs >= 2,
                "reserve_coordinator needs at least two processors");

  // Canonical inputs, preloaded identically everywhere with owner-0 ids.
  std::vector<std::pair<PolyId, Polynomial>> inputs;
  std::uint32_t seq = 0;
  for (const auto& p : sys.polys) {
    Polynomial q = p;
    coeff_normalize(sys.ctx, &q, cfg.gb.coeff);
    if (q.is_zero()) continue;
    inputs.emplace_back(make_poly_id(0, seq++), std::move(q));
  }

  std::vector<ProcOutput> outputs(static_cast<std::size_t>(cfg.nprocs));
  // Workers are heap-allocated and owned here (not on the proc threads'
  // stacks) so invariant sweeps — including the final one after quiescence —
  // can safely read every processor's application state.
  std::vector<std::unique_ptr<GlpWorker>> workers(static_cast<std::size_t>(cfg.nprocs));
  InvariantMonitor monitor(cfg.invariant_period);
  TaskLedger ledger;
  InvariantMonitor* mon = cfg.check_invariants ? &monitor : nullptr;
  if (mon != nullptr) {
    machine.set_monitor(mon);
    register_invariants(monitor, workers);
  }
  machine.set_tracer(cfg.tracer);
  machine.set_telemetry(cfg.telemetry);
  auto worker = [&](Proc& self) {
    auto& slot = workers[static_cast<std::size_t>(self.id())];
    slot = std::make_unique<GlpWorker>(self, sys, cfg, inputs,
                                       &outputs[static_cast<std::size_t>(self.id())], mon, &ledger);
    slot->run();
  };

  ParallelResult res;
  if (sim) {
    res.machine = static_cast<SimMachine&>(machine).run_sim(worker);
  } else {
    MachineStats ms = machine.run(worker);
    res.machine.makespan = ms.makespan;
    res.machine.per_proc = std::move(ms.per_proc);
    res.machine.mailbox = std::move(ms.mailbox);
    res.machine.has_mailbox_stats = ms.has_mailbox_stats;
  }
  if (cfg.metrics != nullptr) collect_machine_stats(*cfg.metrics, res.machine);
  if (cfg.metrics != nullptr && cfg.telemetry != nullptr) {
    cfg.metrics->add("telemetry.dropped_frames", 0, cfg.telemetry->dropped_frames());
    cfg.metrics->add("telemetry.frames_received", 0,
                     cfg.telemetry->aggregator().frames_received());
  }
  if (mon != nullptr) {
    res.violations = monitor.violations();
    res.invariant_sweeps = monitor.sweeps_run();
  }

  res.basis_ids = inputs;
  for (auto& out : outputs) {
    for (auto& [id, poly] : out.added) res.basis_ids.emplace_back(id, std::move(poly));
    res.per_proc.push_back(out.stats);
    res.stats.merge(out.stats);
    res.compute_units += out.stats.work_units;
    res.trace.procs.push_back(std::move(out.trace));
    res.wire.invalidations_sent += out.basis.invalidations_sent;
    res.wire.fetches_sent += out.basis.fetches_sent;
    res.wire.bodies_received += out.basis.bodies_received;
    res.wire.bodies_served += out.basis.bodies_served;
    res.wire.bodies_forwarded += out.basis.bodies_forwarded;
    res.wire.evictions += out.basis.evictions;
    res.wire.invalidation_batches += out.basis.invalidation_batches;
    res.wire.fetch_batches += out.basis.fetch_batches;
    res.wire.body_batches += out.basis.body_batches;
  }
  std::sort(res.basis_ids.begin(), res.basis_ids.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [id, poly] : res.basis_ids) res.basis.push_back(poly);

  for (std::size_t p = 0; p < res.machine.per_proc.size(); ++p) {
    res.stats.messages_sent += res.machine.per_proc[p].messages_sent;
    res.stats.bytes_sent += res.machine.per_proc[p].bytes_sent;
  }
  res.elapsed_units = res.machine.makespan;
  return res;
}

}  // namespace

std::map<PolyId, Polynomial> ParallelResult::bodies() const {
  std::map<PolyId, Polynomial> m;
  for (const auto& [id, poly] : basis_ids) m.emplace(id, poly);
  return m;
}

ParallelResult groebner_parallel(const PolySystem& sys, const ParallelConfig& cfg) {
  ChaosConfig chaos = cfg.chaos;
  if (chaos.dup_permille > 0 && chaos.dup_safe.empty()) {
    // The engine's idempotent handlers (the only ones chaos may duplicate):
    // the basis protocol is dup-safe end to end (acks carry ids and are
    // deduplicated per processor), steal requests just provoke another
    // possibly-empty grant, and the termination announcement is sticky.
    // Grants/pushes (task payloads!), wave probes/reports (reply counting),
    // the ring token and the lock protocol are NOT idempotent by design —
    // exactly-once is part of their contract.
    chaos.dup_safe = {kBaInvalidate, kBaInvAck,    kBaFetch,     kBaBody,
                      kBaInvBatch,   kBaFetchBatch, kBaBodyBatch,
                      kTqSteal,      kTqAnnounce};
  }
  SimMachine machine(cfg.nprocs, cfg.cost, chaos);
  return run_on_machine(machine, /*sim=*/true, sys, cfg);
}

ParallelResult groebner_parallel_threads(const PolySystem& sys, const ParallelConfig& cfg) {
  ThreadMachine machine(cfg.nprocs);
  return run_on_machine(machine, /*sim=*/false, sys, cfg);
}

ParallelResult groebner_parallel_machine(Machine& machine, const PolySystem& sys,
                                         const ParallelConfig& cfg) {
  GBD_CHECK_MSG(machine.nprocs() == cfg.nprocs, "cfg.nprocs must match the machine");
  return run_on_machine(machine, /*sim=*/false, sys, cfg);
}

}  // namespace gbd
