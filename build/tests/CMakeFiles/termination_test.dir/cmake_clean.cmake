file(REMOVE_RECURSE
  "CMakeFiles/termination_test.dir/termination_test.cpp.o"
  "CMakeFiles/termination_test.dir/termination_test.cpp.o.d"
  "termination_test"
  "termination_test.pdb"
  "termination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/termination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
