// Tests for the replicated basis: invalidation/ack, shadow sets, validation
// via tree-routed fetches, and the coordinator lock.
#include "basis/replicated_basis.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "io/parse.hpp"
#include "machine/sim_machine.hpp"
#include "machine/thread_machine.hpp"

namespace gbd {
namespace {

PolyContext ctx3() { return PolyContext{{"x", "y", "z"}, OrderKind::kGrLex}; }

std::unique_ptr<Machine> make_machine(bool sim, int p) {
  if (sim) return std::make_unique<SimMachine>(p);
  return std::make_unique<ThreadMachine>(p);
}

TEST(PolyIdTest, PackUnpack) {
  PolyId id = make_poly_id(7, 12345);
  EXPECT_EQ(poly_id_owner(id), 7);
  EXPECT_EQ(poly_id_seq(id), 12345u);
  EXPECT_EQ(make_poly_id(0, 0), 0u);
}

class BasisTest : public ::testing::TestWithParam<bool> {
 protected:
  bool sim() const { return GetParam(); }
};

TEST_P(BasisTest, PreloadVisibleEverywhere) {
  auto m = make_machine(sim(), 3);
  PolyContext c = ctx3();
  Polynomial f = parse_poly_or_die(c, "x^2 - y");
  std::atomic<int> ok{0};
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    basis.preload(make_poly_id(0, 0), f);
    EXPECT_TRUE(basis.valid());
    EXPECT_EQ(basis.replica_size(), 1u);
    const Polynomial* p = basis.find(make_poly_id(0, 0));
    ASSERT_NE(p, nullptr);
    if (p->equals(f)) ++ok;
  });
  EXPECT_EQ(ok.load(), 3);
}

TEST_P(BasisTest, AddInvalidatesOthersAndAcks) {
  auto m = make_machine(sim(), 4);
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "x*y - z");
  std::atomic<int> shadowed{0};
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 2) {
      PolyId id = basis.begin_add(g);
      EXPECT_EQ(poly_id_owner(id), 2);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      EXPECT_TRUE(basis.valid());  // the adder's own replica is never stale
    } else {
      // Serve protocol until the machine quiesces.
      while (self.wait()) {
      }
      EXPECT_EQ(basis.shadow_size(), 1u);
      EXPECT_FALSE(basis.valid());
      if (basis.find(make_poly_id(2, 0)) == nullptr) ++shadowed;
    }
  });
  EXPECT_EQ(shadowed.load(), 3);
}

TEST_P(BasisTest, ValidateFetchesBodies) {
  const int kP = 5;
  auto m = make_machine(sim(), kP);
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "x^3 + 2*y*z - 1");
  std::atomic<int> validated{0};
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 0) {
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      while (self.wait()) {
      }
    } else {
      // Wait for the invalidation to arrive.
      while (basis.shadow_size() == 0) {
        ASSERT_TRUE(self.wait());
      }
      basis.begin_validate();
      while (!basis.valid()) {
        ASSERT_TRUE(self.wait());
      }
      const Polynomial* p = basis.find(make_poly_id(0, 0));
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(p->equals(g));
      ++validated;
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(validated.load(), kP - 1);
}

TEST_P(BasisTest, ReducerSetSeesLocalReplicaOnly) {
  auto m = make_machine(sim(), 2);
  PolyContext c = ctx3();
  Polynomial f = parse_poly_or_die(c, "x^2 - y");
  Polynomial g = parse_poly_or_die(c, "y^2 - z");
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    basis.preload(make_poly_id(0, 100), f);
    if (self.id() == 1) {
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      // Local replica has both: y^2 reducible.
      std::uint64_t id = 0;
      const Polynomial* r = basis.reducer_set().find_reducer(Monomial({0, 2, 0}), &id);
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(id, make_poly_id(1, 0));
      while (self.wait()) {
      }
    } else {
      while (self.wait()) {
      }
      // Proc 0 never validated: y^2 must be irreducible against its replica,
      // x^2*z reducible via the preloaded f.
      EXPECT_EQ(basis.reducer_set().find_reducer(Monomial({0, 2, 0}), nullptr), nullptr);
      EXPECT_NE(basis.reducer_set().find_reducer(Monomial({2, 0, 1}), nullptr), nullptr);
    }
  });
}

TEST_P(BasisTest, InvalidateHookFires) {
  auto m = make_machine(sim(), 2);
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "z^4 - 1");
  std::atomic<int> hook_calls{0};
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    basis.set_invalidate_hook([&](PolyId id) {
      EXPECT_EQ(poly_id_owner(id), 0);
      ++hook_calls;
    });
    if (self.id() == 0) {
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(hook_calls.load(), 1);
}

TEST_P(BasisTest, ManyAddsFromManyOwners) {
  const int kP = 4;
  auto m = make_machine(sim(), kP);
  PolyContext c = ctx3();
  std::atomic<int> complete{0};
  m->run([&](Proc& self) {
    ReplicatedBasis basis(self);
    // Each processor adds one distinct polynomial, serialized by id order to
    // keep the test simple (the engine uses the lock for this).
    Polynomial mine = parse_poly_or_die(
        c, "x^" + std::to_string(self.id() + 1) + " - " + std::to_string(self.id() + 2));
    for (int turn = 0; turn < kP; ++turn) {
      if (turn == self.id()) {
        basis.begin_add(mine);
        while (!basis.add_done()) {
          ASSERT_TRUE(self.wait());
        }
      } else {
        // Validate until this turn's body is resident. begin_validate is
        // re-issued after every wake because a later turn's invalidation can
        // land mid-validation (it dedups in-flight fetches).
        while (basis.replica_size() < static_cast<std::size_t>(turn) + 1) {
          if (!basis.valid()) basis.begin_validate();
          ASSERT_TRUE(self.wait());
        }
      }
    }
    EXPECT_EQ(basis.replica_size(), static_cast<std::size_t>(kP));
    ++complete;
    while (self.wait()) {
    }
  });
  EXPECT_EQ(complete.load(), kP);
}

// ---------------------------------------------------------------------------
// Idempotence of the basis protocol under chaos-mode message duplication and
// reordering (the §4.1.2 operations must tolerate an at-least-once network).

ChaosConfig dup_all_basis(std::uint64_t seed) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.dup_permille = 1000;  // duplicate every basis message
  chaos.dup_safe = {kBaInvalidate, kBaInvAck, kBaFetch, kBaBody};
  return chaos;
}

TEST(ChaosBasisTest, DuplicatedInvalidationBroadcastIsIdempotent) {
  SimMachine m(4, CostModel{}, dup_all_basis(21));
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "x*y^2 - z");
  std::atomic<int> shadow_once{0};
  std::atomic<int> completed{0};
  SimStats stats = m.run_sim([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 0) {
      PolyId id = basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      ASSERT_EQ(basis.completed_adds().size(), 1u);
      EXPECT_EQ(basis.completed_adds()[0], id);
      ++completed;
      while (self.wait()) {
      }
    } else {
      while (self.wait()) {
      }
      // Each victim saw the INVALIDATE twice; Valid? must still report
      // exactly one pending shadow entry, not two.
      if (basis.shadow_size() == 1) ++shadow_once;
    }
  });
  EXPECT_EQ(completed.load(), 1);
  EXPECT_EQ(shadow_once.load(), 3);
  EXPECT_GT(stats.duplicated_messages, 0u);
}

TEST(ChaosBasisTest, DuplicateAcksCountedOncePerProcessor) {
  // Only acks are duplicated: with 3 victims the adder receives 6 acks. The
  // pre-hardening counter would hit zero after the first 3 arrivals even if
  // two came from the same processor; the per-(id, proc) dedup must wait for
  // all three distinct victims and complete the add exactly once.
  ChaosConfig chaos;
  chaos.seed = 9;
  chaos.dup_permille = 1000;
  chaos.dup_safe = {kBaInvAck};
  SimMachine m(4, CostModel{}, chaos);
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "y^3 - x");
  std::atomic<int> completed{0};
  m.run_sim([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 0) {
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      while (self.wait()) {
      }
      completed = static_cast<int>(basis.completed_adds().size());
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(completed.load(), 1);
}

TEST(ChaosBasisTest, StaleOrForgedAckIsIgnored) {
  // An ack for an id that is not the in-flight add must be dropped, and a
  // later legitimate add must still complete normally.
  SimMachine m(2);
  PolyContext c = ctx3();
  Polynomial g = parse_poly_or_die(c, "z^2 - x*y");
  bool added = false;
  m.run_sim([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 1) {
      Writer w;
      w.u64(make_poly_id(0, 777));  // ack for an add that never happened
      self.send(0, kBaInvAck, w.take());
      while (self.wait()) {
      }
    } else {
      self.poll();
      EXPECT_TRUE(basis.add_done());  // forged ack must not corrupt the idle state
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      added = true;
      while (self.wait()) {
      }
    }
  });
  EXPECT_TRUE(added);
}

TEST(ChaosBasisTest, ReorderedBroadcastsConvergeToIdenticalReplicas) {
  // Several adds under full reordering plus duplication: whatever order the
  // invalidations, fetches and bodies land in, Validate must converge every
  // replica to the same three bodies.
  ChaosConfig chaos = dup_all_basis(33);
  chaos.reorder_permille = 1000;
  chaos.reorder_window = 5000;
  chaos.jitter = 500;
  SimMachine m(3, CostModel{}, chaos);
  PolyContext c = ctx3();
  std::atomic<int> converged{0};
  m.run_sim([&](Proc& self) {
    ReplicatedBasis basis(self);
    std::vector<Polynomial> gs = {parse_poly_or_die(c, "x^2 - y"),
                                  parse_poly_or_die(c, "x*y - z"),
                                  parse_poly_or_die(c, "y^2 - x*z")};
    if (self.id() == 0) {
      for (const Polynomial& g : gs) {
        basis.begin_add(g);
        while (!basis.add_done()) {
          ASSERT_TRUE(self.wait());
        }
      }
      while (self.wait()) {
      }
    } else {
      // Keep validating until all three bodies are resident; begin_validate
      // is re-issued on every wake and must be idempotent (in-flight fetches
      // dedup, duplicated bodies overwrite with identical content).
      while (basis.replica_size() < 3) {
        if (!basis.valid()) basis.begin_validate();
        if (!self.wait()) break;
      }
      ASSERT_EQ(basis.replica_size(), 3u);
      EXPECT_TRUE(basis.valid());
      bool all_equal = true;
      for (std::uint32_t s = 0; s < 3; ++s) {
        const Polynomial* p = basis.find(make_poly_id(0, s));
        all_equal = all_equal && p != nullptr && p->equals(gs[s]);
      }
      if (all_equal) ++converged;
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(converged.load(), 2);
}

class LockTest : public ::testing::TestWithParam<bool> {
 protected:
  bool sim() const { return GetParam(); }
};

TEST_P(LockTest, MutualExclusionAndFairness) {
  const int kP = 4;
  auto m = make_machine(sim(), kP);
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> entries{0};
  m->run([&](Proc& self) {
    if (self.id() == 0) {
      LockManager manager(self);
      LockClient lock(self, 0);
      // The coordinator also competes for the lock.
      lock.request();
      while (!lock.granted()) {
        ASSERT_TRUE(self.wait());
      }
      int now = ++in_critical;
      int prev = max_seen.load();
      while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
      }
      ++entries;
      --in_critical;
      lock.release();
      while (self.wait()) {
      }
    } else {
      LockClient lock(self, 0);
      for (int round = 0; round < 3; ++round) {
        lock.request();
        while (!lock.granted()) {
          ASSERT_TRUE(self.wait());
        }
        int now = ++in_critical;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        ++entries;
        --in_critical;
        lock.release();
      }
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(max_seen.load(), 1) << "two processors were in the critical section at once";
  EXPECT_EQ(entries.load(), 1 + 3 * (kP - 1));
}

INSTANTIATE_TEST_SUITE_P(Impls, BasisTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sim" : "Threads";
                         });
INSTANTIATE_TEST_SUITE_P(Impls, LockTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sim" : "Threads";
                         });

}  // namespace
}  // namespace gbd
