#include "gb/modular.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "bigint/zp.hpp"
#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "net/net_engine.hpp"
#include "poly/reduce.hpp"
#include "support/check.hpp"
#include "support/serialize.hpp"

namespace gbd {

const char* modular_backend_name(ModularBackend b) {
  switch (b) {
    case ModularBackend::kSequential: return "sequential";
    case ModularBackend::kSim: return "sim";
    case ModularBackend::kThread: return "thread";
    case ModularBackend::kSocket: return "socket";
  }
  return "?";
}

std::string ModularStats::summary() const {
  std::string s = "primes=" + std::to_string(primes_used) +
                  " unlucky=" + std::to_string(primes_unlucky) +
                  " inadmissible=" + std::to_string(primes_inadmissible) +
                  " jobs=" + std::to_string(jobs_run) + " retried=" + std::to_string(jobs_retried) +
                  " failed=" + std::to_string(jobs_failed) + " rounds=" + std::to_string(rounds) +
                  " recon_failures=" + std::to_string(reconstruction_failures) +
                  " modulus_bits=" + std::to_string(modulus_bits);
  if (used_exact_fallback) s += " exact_fallback";
  s += verified ? " verified" : " UNVERIFIED";
  return s;
}

bool rational_reconstruct(const BigInt& a, const BigInt& m, BigInt* num, BigInt* den) {
  GBD_CHECK_MSG(m > BigInt(1) && !a.is_negative() && a < m,
                "rational_reconstruct: requires 0 <= a < m, m > 1");
  const BigInt bound = BigInt(1) << ((m.bit_length() - 2) / 2);
  // Half-extended Euclid on (m, a): the invariant s_i·a ≡ r_i (mod m) makes
  // every row a candidate fraction r_i/s_i; stopping at the first remainder
  // within the bound yields the unique bounded solution if one exists
  // (Wang's algorithm; 2·bound² ≤ m gives uniqueness).
  BigInt r0 = m, r1 = a;
  BigInt s0(0), s1(1);
  while (r1 > bound) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    BigInt s2 = s0 - q * s1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s1 = std::move(s2);
  }
  BigInt n = std::move(r1), d = std::move(s1);
  if (d.is_negative()) {
    n = -n;
    d = -d;
  }
  if (d.is_zero() || d > bound) return false;
  if (!BigInt::gcd(n, d).is_one()) return false;
  *num = std::move(n);
  *den = std::move(d);
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The full monomial support of a canonical reduced basis, serialized — the
/// quantity the majority vote compares. Two primes whose bases have equal
/// shape lift together; a differing shape is the unlucky-prime signature.
std::string shape_key(const std::vector<Polynomial>& basis) {
  Writer w;
  w.u64(basis.size());
  for (const auto& g : basis) {
    w.u64(g.nterms());
    for (const Term& t : g.terms()) t.mono.write(w);
  }
  std::vector<std::uint8_t> bytes = w.take();
  return std::string(bytes.begin(), bytes.end());
}

/// p is admissible iff it divides no input head coefficient: the head term
/// of every generator survives mod p (which also keeps the image nonzero).
bool prime_admissible(const PolySystem& sys, const ZpField& field) {
  for (const auto& p : sys.polys) {
    if (p.is_zero()) continue;
    if (field.to_u64(field.from_bigint(p.hcoef())) == 0) return false;
  }
  return true;
}

/// Fork cfg.nprocs single-rank processes over loopback TCP, run GL-P mod p,
/// and read rank 0's raw basis back through a temp file (the same pattern
/// the cross-backend tests use; _exit everywhere so a child never runs the
/// parent's atexit machinery).
std::optional<std::vector<Polynomial>> run_socket_job(const PolySystem& sys, const GbConfig& gb,
                                                      const ModularConfig& cfg, int base_port) {
  std::string path = "/tmp/gbd_modular_" + std::to_string(::getpid()) + "_" +
                     std::to_string(base_port) + ".bin";
  std::vector<pid_t> pids;
  for (int r = 0; r < cfg.nprocs; ++r) {
    pid_t pid = ::fork();
    if (pid == 0) {
      try {
        SocketMachineConfig mc;
        mc.net.rank = r;
        mc.net.nprocs = cfg.nprocs;
        mc.net.chaos = cfg.chaos;
        for (int i = 0; i < cfg.nprocs; ++i) {
          NetEndpoint ep;
          ep.host = "127.0.0.1";
          ep.port = static_cast<std::uint16_t>(base_port + i);
          mc.net.peers.push_back(ep);
        }
        SocketMachine machine(mc);
        ParallelConfig pc;
        pc.gb = gb;
        pc.nprocs = cfg.nprocs;
        pc.seed = cfg.seed;
        ParallelResult res = groebner_parallel_socket(machine, sys, pc);
        if (r != 0) ::_exit(0);
        Writer w;
        w.u32(static_cast<std::uint32_t>(res.basis.size()));
        for (const Polynomial& p : res.basis) p.write(w);
        std::vector<std::uint8_t> bytes = w.take();
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();  // _exit skips destructors; flush explicitly
        ::_exit(out ? 0 : 1);
      } catch (...) {
        ::_exit(3);
      }
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (pid_t pid : pids) {
    int st = 0;
    ::waitpid(pid, &st, 0);
    ok = ok && WIFEXITED(st) && WEXITSTATUS(st) == 0;
  }
  if (!ok) {
    std::remove(path.c_str());
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  Reader rd(bytes);
  std::uint32_t n = rd.u32();
  std::vector<Polynomial> basis;
  basis.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) basis.push_back(Polynomial::read(rd));
  if (!rd.done()) return std::nullopt;
  return basis;
}

struct JobOutcome {
  bool ok = false;
  std::vector<Polynomial> basis;  ///< canonical reduced monic basis mod p
  std::string why;
  double verify_seconds = 0.0;
};

/// One job attempt: GB mod `prime` on the configured backend, canonical
/// Zp reduction, and (cfg.verify) the per-prime certificate.
JobOutcome run_prime_job(const PolySystem& sys, const ModularConfig& cfg, std::uint64_t prime,
                         int attempt, int base_port) {
  JobOutcome out;
  // Injected fault drill — deterministic in (seed, prime, attempt) and never
  // fired on the final allowed attempt, so a drilled run still completes.
  if (cfg.fault_permille > 0 && attempt < cfg.max_job_retries &&
      chaos_mix2(cfg.seed ^ prime, static_cast<std::uint64_t>(attempt)) % 1000 <
          cfg.fault_permille) {
    out.why = "injected fault";
    return out;
  }
  GbConfig gb = cfg.gb;
  gb.coeff = CoeffOptions::zp(prime);
  std::vector<Polynomial> raw;
  switch (cfg.backend) {
    case ModularBackend::kSequential:
      raw = groebner_sequential(sys, gb).basis;
      break;
    case ModularBackend::kSim: {
      ParallelConfig pc;
      pc.gb = gb;
      pc.nprocs = cfg.nprocs;
      pc.seed = chaos_mix2(cfg.seed, prime) + static_cast<std::uint64_t>(attempt);
      pc.chaos = cfg.chaos;
      raw = groebner_parallel(sys, pc).basis;
      break;
    }
    case ModularBackend::kThread: {
      ParallelConfig pc;
      pc.gb = gb;
      pc.nprocs = cfg.nprocs;
      pc.seed = chaos_mix2(cfg.seed, prime) + static_cast<std::uint64_t>(attempt);
      raw = groebner_parallel_threads(sys, pc).basis;
      break;
    }
    case ModularBackend::kSocket: {
      std::optional<std::vector<Polynomial>> r = run_socket_job(sys, gb, cfg, base_port);
      if (!r.has_value()) {
        out.why = "socket job failed";
        return out;
      }
      raw = std::move(*r);
      break;
    }
  }
  CoeffOptions zp = CoeffOptions::zp(prime);
  out.basis = reduce_basis(sys.ctx, std::move(raw), zp);
  if (cfg.verify) {
    Clock::time_point tv = Clock::now();
    std::string why;
    bool ok = verify_groebner_result(sys.ctx, sys.polys, out.basis, &why, zp);
    out.verify_seconds = seconds_since(tv);
    if (!ok) {
      out.why = "Zp certificate failed: " + why;
      out.basis.clear();
      return out;
    }
  }
  out.ok = true;
  return out;
}

struct PrimeRun {
  std::uint64_t prime = 0;
  std::vector<Polynomial> basis;
  std::string shape;
};

/// CRT-combine the (shape-identical) runs and rationally reconstruct each
/// coefficient; clear denominators per polynomial into the primitive integer
/// associate. Returns false on any reconstruction failure (modulus still too
/// small — the caller adds primes).
bool lift_runs(const PolyContext& ctx, const std::vector<const PrimeRun*>& runs,
               std::vector<Polynomial>* out) {
  // Garner-style CRT basis: x = Σ rᵢ·eᵢ (mod M) with eᵢ ≡ δᵢⱼ (mod pⱼ).
  BigInt modulus(1);
  for (const PrimeRun* r : runs) modulus *= BigInt(static_cast<std::int64_t>(r->prime));
  std::vector<BigInt> e(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    BigInt p(static_cast<std::int64_t>(runs[i]->prime));
    BigInt mi = modulus / p;
    BigInt inv = mod_inverse(mi % p, p);
    GBD_CHECK_MSG(!inv.is_zero(), "CRT: primes not pairwise distinct");
    e[i] = mi * inv;
  }
  const std::vector<Polynomial>& proto = runs.front()->basis;
  out->clear();
  out->reserve(proto.size());
  for (std::size_t k = 0; k < proto.size(); ++k) {
    std::size_t nterms = proto[k].nterms();
    std::vector<BigInt> nums(nterms), dens(nterms);
    BigInt den_lcm(1);
    for (std::size_t t = 0; t < nterms; ++t) {
      BigInt x(0);
      for (std::size_t i = 0; i < runs.size(); ++i) {
        std::uint64_t r = zp_residue_u64(runs[i]->basis[k].terms()[t].coeff);
        x += e[i] * BigInt(static_cast<std::int64_t>(r));
      }
      x %= modulus;
      if (x.is_negative()) x += modulus;
      if (!rational_reconstruct(x, modulus, &nums[t], &dens[t])) return false;
      den_lcm = BigInt::lcm(den_lcm, dens[t]);
    }
    std::vector<Term> terms;
    terms.reserve(nterms);
    for (std::size_t t = 0; t < nterms; ++t) {
      BigInt c = nums[t] * (den_lcm / dens[t]);
      // A residue nonzero mod every used prime cannot lift to zero.
      GBD_CHECK(!c.is_zero());
      terms.push_back(Term{std::move(c), proto[k].terms()[t].mono});
    }
    Polynomial p = Polynomial::from_sorted_terms(ctx, std::move(terms));
    p.make_primitive();
    out->push_back(std::move(p));
  }
  return true;
}

/// Rung 5: the lifted basis must reduce mod every used prime back to exactly
/// that prime's canonical basis.
bool lift_consistent(const PolyContext& ctx, const std::vector<Polynomial>& lifted,
                     const std::vector<const PrimeRun*>& runs) {
  for (const PrimeRun* r : runs) {
    ZpField field(r->prime);
    for (std::size_t k = 0; k < lifted.size(); ++k) {
      Polynomial img = poly_mod(ctx, lifted[k], field);
      img.make_monic(field);
      if (!img.equals(r->basis[k])) return false;
    }
  }
  return true;
}

}  // namespace

ModularResult groebner_multimodular(const PolySystem& sys, const ModularConfig& cfg) {
  GBD_CHECK_MSG(cfg.initial_primes >= 1 && cfg.step_primes >= 1 &&
                    cfg.max_primes >= cfg.initial_primes,
                "groebner_multimodular: bad prime budget");
  GBD_CHECK_MSG(cfg.prime_bits >= 3 && cfg.prime_bits <= 62,
                "groebner_multimodular: prime_bits out of range");
  ModularResult res;

  // Lazy descending prime source: forced primes first, then downward from
  // 2^prime_bits. Examination is capped so a pathological forced list (or an
  // input whose heads are divisible by everything we try) cannot spin.
  std::size_t forced_next = 0;
  std::uint64_t candidate = 0;
  std::size_t examined = 0;
  const std::size_t examine_cap = cfg.max_primes * 4 + cfg.forced_primes.size() + 8;
  auto next_prime = [&]() -> std::uint64_t {
    if (forced_next < cfg.forced_primes.size()) return cfg.forced_primes[forced_next++];
    candidate = (candidate == 0) ? prev_prime_u64(std::uint64_t{1} << cfg.prime_bits)
                                 : prev_prime_u64(candidate);
    return candidate;
  };

  const int port_base = cfg.socket_base_port != 0
                            ? cfg.socket_base_port
                            : 26000 + static_cast<int>(::getpid() % 17000);
  int port_off = 0;

  std::size_t jobs = cfg.jobs;
  if (jobs == 0) {
    // The thread backend already spreads one job across cores and the socket
    // backend forks processes — run those one at a time. Sequential and sim
    // jobs are single-threaded, so a small pool overlaps them.
    bool pooled = cfg.backend == ModularBackend::kSequential || cfg.backend == ModularBackend::kSim;
    unsigned hw = std::thread::hardware_concurrency();
    jobs = pooled ? std::max<std::size_t>(2, std::min<std::size_t>(4, hw == 0 ? 2 : hw)) : 1;
  }
  if (cfg.backend == ModularBackend::kSocket) jobs = 1;  // fork + fixed ports

  auto exact_fallback = [&]() -> ModularResult {
    GBD_CHECK_MSG(cfg.exact_fallback,
                  "groebner_multimodular: prime budget exhausted and exact_fallback disabled");
    res.stats.used_exact_fallback = true;
    GbConfig gb = cfg.gb;
    gb.coeff = CoeffOptions::exact();
    res.basis = reduce_basis(sys.ctx, groebner_sequential(sys, gb).basis);
    res.primes.clear();
    if (cfg.verify) {
      Clock::time_point tv = Clock::now();
      std::string why;
      GBD_CHECK_MSG(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why),
                    "exact fallback failed its own certificate");
      res.stats.verify_seconds += seconds_since(tv);
      res.stats.verified = true;
    }
    return res;
  };

  std::vector<PrimeRun> runs;
  std::size_t primes_attempted = 0;  // admissible primes whose jobs ran

  for (;;) {
    res.stats.rounds += 1;
    // Assemble this round's batch of admissible primes.
    std::size_t want = runs.empty() ? cfg.initial_primes : cfg.step_primes;
    std::vector<std::uint64_t> batch;
    while (batch.size() < want && primes_attempted + batch.size() < cfg.max_primes &&
           examined < examine_cap) {
      std::uint64_t p = next_prime();
      examined += 1;
      ZpField field(p);
      if (!prime_admissible(sys, field)) {
        res.stats.primes_inadmissible += 1;
        continue;
      }
      batch.push_back(p);
    }
    if (batch.empty()) return exact_fallback();
    primes_attempted += batch.size();

    // Run the batch, with retries; a small pool overlaps independent jobs.
    Clock::time_point tg = Clock::now();
    std::vector<std::optional<PrimeRun>> slots(batch.size());
    std::mutex mu;  // guards res.stats and slots
    std::atomic<std::size_t> next{0};
    auto job_worker = [&]() {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= batch.size()) return;
        std::uint64_t prime = batch[i];
        int port = 0;
        {
          std::lock_guard<std::mutex> g(mu);
          port = port_base + port_off;
          // Fresh ports per job so back-to-back runs never hit TIME_WAIT.
          port_off = (port_off + cfg.nprocs) % 4096;
        }
        for (int attempt = 0; attempt <= cfg.max_job_retries; ++attempt) {
          JobOutcome out = run_prime_job(sys, cfg, prime, attempt, port);
          std::lock_guard<std::mutex> g(mu);
          res.stats.jobs_run += 1;
          res.stats.verify_seconds += out.verify_seconds;
          if (out.ok) {
            PrimeRun run;
            run.prime = prime;
            run.shape = shape_key(out.basis);
            run.basis = std::move(out.basis);
            slots[i] = std::move(run);
            break;
          }
          res.stats.jobs_failed += 1;
          if (attempt < cfg.max_job_retries) res.stats.jobs_retried += 1;
        }
      }
    };
    if (jobs <= 1 || batch.size() <= 1) {
      job_worker();
    } else {
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < std::min(jobs, batch.size()); ++t) pool.emplace_back(job_worker);
      for (auto& t : pool) t.join();
    }
    res.stats.gb_seconds += seconds_since(tg);
    for (auto& s : slots) {
      if (s.has_value()) runs.push_back(std::move(*s));
    }
    if (runs.empty()) {
      if (primes_attempted < cfg.max_primes) continue;
      return exact_fallback();
    }

    // Majority shape vote. A winner needs >= 2 supporters once more than one
    // prime has reported (a lone dissenting shape is exactly what an unlucky
    // prime looks like).
    std::map<std::string, std::vector<const PrimeRun*>> groups;
    for (const PrimeRun& r : runs) groups[r.shape].push_back(&r);
    const std::vector<const PrimeRun*>* winner = nullptr;
    for (const auto& [shape, members] : groups) {
      if (winner == nullptr || members.size() > winner->size()) winner = &members;
    }
    if (runs.size() > 1 && winner->size() < 2) {
      if (primes_attempted < cfg.max_primes) continue;  // add primes, revote
      return exact_fallback();
    }

    // Lift the winning group.
    Clock::time_point tl = Clock::now();
    std::vector<Polynomial> lifted;
    bool lifted_ok = lift_runs(sys.ctx, *winner, &lifted);
    res.stats.lift_seconds += seconds_since(tl);
    if (!lifted_ok) {
      res.stats.reconstruction_failures += 1;
      if (primes_attempted < cfg.max_primes) continue;  // modulus too small yet
      return exact_fallback();
    }

    bool consistent = lift_consistent(sys.ctx, lifted, *winner);
    bool certified = true;
    if (consistent && cfg.verify) {
      Clock::time_point tv = Clock::now();
      std::string why;
      certified = verify_groebner_result(sys.ctx, sys.polys, lifted, &why);
      res.stats.verify_seconds += seconds_since(tv);
    }
    if (!consistent || !certified) {
      // The whole winning group is suspect (a coordinated unlucky shape):
      // discard it and continue with fresh primes rather than ever returning
      // an uncertified basis.
      std::vector<PrimeRun> keep;
      for (PrimeRun& r : runs) {
        bool in_winner = false;
        for (const PrimeRun* w : *winner) in_winner = in_winner || w == &r;
        if (!in_winner) keep.push_back(std::move(r));
        else res.stats.primes_unlucky += 1;
      }
      runs = std::move(keep);
      if (primes_attempted < cfg.max_primes) continue;
      return exact_fallback();
    }

    // Success.
    res.stats.primes_used = winner->size();
    res.stats.primes_unlucky += runs.size() - winner->size();
    BigInt modulus(1);
    for (const PrimeRun* r : *winner) {
      res.primes.push_back(r->prime);
      modulus *= BigInt(static_cast<std::int64_t>(r->prime));
    }
    res.stats.modulus_bits = modulus.bit_length();
    res.stats.verified = cfg.verify;
    res.basis = std::move(lifted);
    return res;
  }
}

}  // namespace gbd
