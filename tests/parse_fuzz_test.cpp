// Fuzz-style hardening tests for the text parser — the gbd_serve daemon's
// untrusted input surface. Every input here must produce a clean accept or a
// diagnosed parse error: never a crash, an abort, a hang, or an unbounded
// allocation. Deterministic (seeded) so failures replay.
#include "io/parse.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/rng.hpp"

namespace gbd {
namespace {

const char* kValidSystem =
    "vars x, y, z;\n"
    "order grlex;\n"
    "x^2*y - 3/4*x + 1;\n"
    "(x + y)*(x - y) - z^2;\n";

/// Parse must return a verdict (and a message on failure) without crashing.
void expect_survives(const std::string& text) {
  PolySystem sys;
  std::string err;
  bool ok = parse_system(text, &sys, &err);
  if (!ok) EXPECT_FALSE(err.empty()) << "failure without diagnostic on: " << text;
}

TEST(ParseFuzzTest, EveryTruncationOfAValidSystemIsHandled) {
  std::string text = kValidSystem;
  for (std::size_t n = 0; n <= text.size(); ++n) expect_survives(text.substr(0, n));
}

TEST(ParseFuzzTest, DeepNestingIsARejectionNotAStackOverflow) {
  // 100k open parens would overflow the recursive-descent stack unchecked.
  std::string text = "vars x;\n";
  text.append(100'000, '(');
  text += "x";
  text.append(100'000, ')');
  text += ";\n";
  PolySystem sys;
  std::string err;
  EXPECT_FALSE(parse_system(text, &sys, &err));
  EXPECT_NE(err.find("nested too deeply"), std::string::npos) << err;
}

TEST(ParseFuzzTest, ModerateNestingStillParses) {
  std::string text = "vars x;\n";
  text.append(50, '(');
  text += "x + 1";
  text.append(50, ')');
  text += ";\n";
  PolySystem sys;
  std::string err;
  EXPECT_TRUE(parse_system(text, &sys, &err)) << err;
}

TEST(ParseFuzzTest, HugeExponentIsARejectionNotAHang) {
  // x^4294967295 would loop for hours multiplying term by term.
  PolySystem sys;
  std::string err;
  EXPECT_FALSE(parse_system("vars x;\nx^4294967295;\n", &sys, &err));
  EXPECT_FALSE(parse_system("vars x;\nx^70000;\n", &sys, &err));
  EXPECT_NE(err.find("exponent"), std::string::npos) << err;
  // The bound itself is fine (a single variable power is one term).
  EXPECT_TRUE(parse_system("vars x;\nx^65536;\n", &sys, &err)) << err;
}

TEST(ParseFuzzTest, CombinatorialBlowupIsARejectionNotAnAllocation) {
  // (x0+...+x9)^20 expands to ~10^7 terms; the parser must refuse before
  // materializing anything near that.
  std::string text = "vars x0, x1, x2, x3, x4, x5, x6, x7, x8, x9;\n"
                     "(x0+x1+x2+x3+x4+x5+x6+x7+x8+x9)^20;\n";
  PolySystem sys;
  std::string err;
  EXPECT_FALSE(parse_system(text, &sys, &err));
  EXPECT_NE(err.find("too large"), std::string::npos) << err;
}

TEST(ParseFuzzTest, AccumulatedDegreeIsBounded) {
  // Each factor is small but the product's degree explodes multiplicatively.
  std::string text = "vars x;\n(x^65536)^1 * (x^65536) * (x^65536) * "
                     "(x^65536) * (x^65536) * (x^65536) * (x^65536) * "
                     "(x^65536) * (x^65536) * (x^65536) * (x^65536) * "
                     "(x^65536) * (x^65536) * (x^65536) * (x^65536) * "
                     "(x^65536) * (x^65536);\n";
  PolySystem sys;
  std::string err;
  EXPECT_FALSE(parse_system(text, &sys, &err));
}

TEST(ParseFuzzTest, RandomGarbageNeverCrashes) {
  // Random bytes over the parser's alphabet plus noise characters.
  const std::string alphabet = "xyzab0123456789+-*/^(),;= \n\t#._<>vars order";
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    std::size_t len = rng.below(160);
    std::string text;
    text.reserve(len);
    for (std::size_t i = 0; i < len; ++i) text += alphabet[rng.below(alphabet.size())];
    expect_survives(text);
  }
}

TEST(ParseFuzzTest, MutatedValidInputNeverCrashes) {
  Rng rng(97);
  for (int round = 0; round < 2000; ++round) {
    std::string text = kValidSystem;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f)
      text[rng.below(text.size())] = static_cast<char>(rng.below(256));
    expect_survives(text);
  }
}

TEST(ParseFuzzTest, HostileNumericLiterals) {
  PolySystem sys;
  std::string err;
  // Zero denominators, empty fractions, overlong digit strings.
  expect_survives("vars x;\n1/0*x;\n");
  expect_survives("vars x;\n/3;\n");
  expect_survives("vars x;\n99999999999999999999999999999999999999*x;\n");
  expect_survives(std::string("vars x;\n") + std::string(10000, '9') + "*x;\n");
}

}  // namespace
}  // namespace gbd
