#include "poly/univariate.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

UniPoly::UniPoly(std::vector<BigInt> coeffs) : coeffs_(std::move(coeffs)) { trim(); }

void UniPoly::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

std::optional<UniPoly> UniPoly::from_polynomial(const PolyContext& ctx, const Polynomial& p,
                                                std::size_t var) {
  GBD_CHECK(var < ctx.nvars());
  std::vector<BigInt> coeffs;
  for (const auto& t : p.terms()) {
    for (std::size_t v = 0; v < t.mono.nvars(); ++v) {
      if (v != var && t.mono.exp(v) != 0) return std::nullopt;
    }
    std::size_t e = t.mono.exp(var);
    if (coeffs.size() <= e) coeffs.resize(e + 1, BigInt(0));
    coeffs[e] += t.coeff;
  }
  return UniPoly(std::move(coeffs));
}

const BigInt& UniPoly::leading() const {
  GBD_CHECK_MSG(!coeffs_.empty(), "leading() of the zero polynomial");
  return coeffs_.back();
}

UniPoly UniPoly::operator-() const {
  UniPoly r = *this;
  for (auto& c : r.coeffs_) c = -c;
  return r;
}

UniPoly UniPoly::add(const UniPoly& rhs) const {
  std::vector<BigInt> out(std::max(coeffs_.size(), rhs.coeffs_.size()), BigInt(0));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (std::size_t i = 0; i < rhs.coeffs_.size(); ++i) out[i] += rhs.coeffs_[i];
  return UniPoly(std::move(out));
}

UniPoly UniPoly::sub(const UniPoly& rhs) const { return add(-rhs); }

UniPoly UniPoly::mul(const UniPoly& rhs) const {
  if (is_zero() || rhs.is_zero()) return UniPoly();
  std::vector<BigInt> out(coeffs_.size() + rhs.coeffs_.size() - 1, BigInt(0));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < rhs.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * rhs.coeffs_[j];
    }
  }
  CostCounter::charge(coeffs_.size() * rhs.coeffs_.size());
  return UniPoly(std::move(out));
}

BigInt UniPoly::content() const {
  BigInt g;
  for (const auto& c : coeffs_) {
    g = BigInt::gcd(g, c);
    if (g.is_one()) break;
  }
  return g;
}

void UniPoly::make_primitive() {
  if (coeffs_.empty()) return;
  BigInt g = content();
  if (coeffs_.back().is_negative()) g = -g;
  if (g.is_one()) return;
  for (auto& c : coeffs_) c /= g;
}

UniPoly UniPoly::derivative() const {
  if (coeffs_.size() <= 1) return UniPoly();
  std::vector<BigInt> out(coeffs_.size() - 1, BigInt(0));
  for (std::size_t k = 1; k < coeffs_.size(); ++k) {
    out[k - 1] = coeffs_[k] * BigInt(static_cast<std::int64_t>(k));
  }
  return UniPoly(std::move(out));
}

UniPoly UniPoly::prem(const UniPoly& n, const UniPoly& d) {
  GBD_CHECK_MSG(!d.is_zero(), "pseudo-division by zero");
  if (n.degree() < d.degree()) return n;
  UniPoly r = n;
  const BigInt& lc = d.leading();
  int steps = n.degree() - d.degree() + 1;
  for (int s = 0; s < steps && !r.is_zero() && r.degree() >= d.degree(); ++s) {
    // r = lc·r − lead(r)·x^(deg r − deg d)·d
    std::size_t shift = static_cast<std::size_t>(r.degree() - d.degree());
    BigInt top = r.leading();
    std::vector<BigInt> next(r.coeffs_.size(), BigInt(0));
    for (std::size_t i = 0; i < r.coeffs_.size(); ++i) next[i] = r.coeffs_[i] * lc;
    for (std::size_t i = 0; i < d.coeffs_.size(); ++i) {
      next[i + shift] -= top * d.coeffs_[i];
    }
    r = UniPoly(std::move(next));
  }
  return r;
}

UniPoly UniPoly::gcd(const UniPoly& a, const UniPoly& b) {
  UniPoly f = a, g = b;
  f.make_primitive();
  g.make_primitive();
  if (f.is_zero()) return g;
  if (g.is_zero()) return f;
  if (f.degree() < g.degree()) std::swap(f, g);
  while (!g.is_zero()) {
    UniPoly r = prem(f, g);
    r.make_primitive();
    f = std::move(g);
    g = std::move(r);
  }
  f.make_primitive();
  return f;
}

UniPoly UniPoly::squarefree_part() const {
  if (degree() <= 1) {
    UniPoly r = *this;
    r.make_primitive();
    return r;
  }
  UniPoly g = gcd(*this, derivative());
  if (g.degree() == 0) {
    UniPoly r = *this;
    r.make_primitive();
    return r;
  }
  // Exact division this / g via pseudo-division bookkeeping: since g | this
  // (up to content), divide with rational-free long division over Q cleared.
  // Simpler: repeated synthetic division using prem invariants is fussy;
  // divide over rationals then clear denominators.
  int dq = degree() - g.degree();
  std::vector<Rational> rem;
  rem.reserve(coeffs_.size());
  for (const auto& c : coeffs_) rem.emplace_back(c);
  std::vector<Rational> quot(static_cast<std::size_t>(dq) + 1);
  Rational glead{g.leading()};
  for (int k = dq; k >= 0; --k) {
    Rational q = rem[static_cast<std::size_t>(k + g.degree())] / glead;
    quot[static_cast<std::size_t>(k)] = q;
    if (q.is_zero()) continue;
    for (int i = 0; i <= g.degree(); ++i) {
      rem[static_cast<std::size_t>(k + i)] -=
          q * Rational(g.coeff(static_cast<std::size_t>(i)));
    }
  }
  // Clear denominators.
  BigInt den(1);
  for (const auto& q : quot) den = BigInt::lcm(den, q.den());
  if (den.is_zero()) den = BigInt(1);
  std::vector<BigInt> out;
  out.reserve(quot.size());
  for (const auto& q : quot) out.push_back(q.num() * (den / q.den()));
  UniPoly result{std::move(out)};
  result.make_primitive();
  return result;
}

Rational UniPoly::evaluate(const Rational& x) const {
  // Horner over exact rationals.
  Rational acc;
  for (std::size_t k = coeffs_.size(); k-- > 0;) {
    acc = acc * x + Rational(coeffs_[k]);
  }
  return acc;
}

int UniPoly::sign_at(const Rational& x) const { return evaluate(x).signum(); }

std::vector<UniPoly> UniPoly::sturm_sequence() const {
  // Standard Sturm chain on the squarefree part:
  //   p0 = squarefree(p), p1 = p0', p_{k+1} = −(p_{k−1} mod p_k),
  // where each element may be scaled by any POSITIVE constant. We compute
  // remainders fraction-free: prem(f, g) = s·(f mod g) with
  // s = lc(g)^(deg f − deg g + 1), so the next element is
  //   −prem/s = (s < 0 ? +prem : −prem) up to positive scale,
  // and the positive scale is removed by dividing out the (positive) content.
  std::vector<UniPoly> seq;
  UniPoly p0 = squarefree_part();
  if (p0.is_zero()) return seq;
  seq.push_back(p0);
  UniPoly p1 = p0.derivative();
  while (!p1.is_zero()) {
    seq.push_back(p1);
    const UniPoly& f = seq[seq.size() - 2];
    UniPoly raw = prem(f, p1);
    if (raw.is_zero()) break;
    int steps = f.degree() - p1.degree() + 1;
    bool scale_negative = p1.leading().is_negative() && (steps % 2 == 1);
    UniPoly next = scale_negative ? raw : -raw;
    BigInt c = next.content();
    if (!c.is_one()) {
      for (auto& co : next.coeffs_) co /= c;
    }
    p1 = std::move(next);
  }
  return seq;
}

int UniPoly::variations(const std::vector<UniPoly>& seq, const Rational& x) {
  int var = 0;
  int prev = 0;
  for (const auto& p : seq) {
    int s = p.sign_at(x);
    if (s == 0) continue;
    if (prev != 0 && s != prev) ++var;
    prev = s;
  }
  return var;
}

Rational UniPoly::root_bound() const {
  if (degree() <= 0) return Rational(1);
  // Cauchy: 1 + max |a_i| / |a_n|.
  BigInt mx(0);
  for (std::size_t i = 0; i + 1 < coeffs_.size(); ++i) {
    BigInt a = coeffs_[i].abs();
    if (a > mx) mx = a;
  }
  Rational bound = Rational(mx, leading().abs()) + Rational(1);
  return bound;
}

int UniPoly::count_real_roots(const Rational& lo, const Rational& hi) const {
  GBD_CHECK_MSG(lo < hi, "count_real_roots: empty interval");
  std::vector<UniPoly> seq = sturm_sequence();
  if (seq.empty()) return 0;
  return variations(seq, lo) - variations(seq, hi);
}

int UniPoly::count_real_roots() const {
  if (degree() <= 0) return 0;
  Rational b = root_bound();
  return count_real_roots(-b, b);
}

std::vector<UniPoly::Interval> UniPoly::isolate_real_roots(const Rational& width) const {
  std::vector<Interval> out;
  if (degree() <= 0) return out;
  std::vector<UniPoly> seq = sturm_sequence();
  if (seq.empty()) return out;
  Rational b = root_bound();

  struct Job {
    Rational lo, hi;
    int count;
  };
  int total = variations(seq, -b) - variations(seq, b);
  if (total == 0) return out;
  std::vector<Job> stack = {{-b, b, total}};
  Rational two(2);
  while (!stack.empty()) {
    Job job = stack.back();
    stack.pop_back();
    if (job.count == 0) continue;
    Rational span = job.hi - job.lo;
    if (job.count == 1 && span <= width) {
      out.push_back(Interval{job.lo, job.hi});
      continue;
    }
    Rational mid = (job.lo + job.hi) / two;
    int left = variations(seq, job.lo) - variations(seq, mid);
    int right = job.count - left;
    // Push right first so output comes out in increasing order.
    if (right > 0) stack.push_back(Job{mid, job.hi, right});
    if (left > 0) stack.push_back(Job{job.lo, mid, left});
  }
  std::sort(out.begin(), out.end(),
            [](const Interval& a, const Interval& b2) { return a.lo < b2.lo; });
  return out;
}

std::vector<Rational> UniPoly::rational_roots() const {
  std::vector<Rational> roots;
  if (is_zero()) return roots;
  // Strip x^k.
  std::size_t low = 0;
  while (low < coeffs_.size() && coeffs_[low].is_zero()) ++low;
  if (low > 0) roots.push_back(Rational(BigInt(0)));
  if (low + 1 >= coeffs_.size()) return roots;

  const BigInt constant = coeffs_[low];
  const BigInt lead = coeffs_.back();
  auto divisors = [](const BigInt& n) {
    std::vector<BigInt> out;
    BigInt a = n.abs();
    for (BigInt d(1); d * d <= a; d += BigInt(1)) {
      if ((a % d).is_zero()) {
        out.push_back(d);
        out.push_back(a / d);
      }
    }
    return out;
  };
  for (const BigInt& p : divisors(constant)) {
    for (const BigInt& q : divisors(lead)) {
      for (int sign : {1, -1}) {
        Rational cand(sign > 0 ? p : -p, q);
        bool seen = false;
        for (const auto& r : roots) seen = seen || r == cand;
        if (!seen && sign_at(cand) == 0) roots.push_back(cand);
      }
    }
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::string UniPoly::to_string(const std::string& var) const {
  if (is_zero()) return "0";
  std::string out;
  for (std::size_t k = coeffs_.size(); k-- > 0;) {
    if (coeffs_[k].is_zero()) continue;
    BigInt a = coeffs_[k].abs();
    bool neg = coeffs_[k].is_negative();
    if (out.empty()) {
      if (neg) out += "-";
    } else {
      out += neg ? " - " : " + ";
    }
    if (k == 0) {
      out += a.to_string();
    } else {
      if (!a.is_one()) out += a.to_string() + "*";
      out += var;
      if (k > 1) out += "^" + std::to_string(k);
    }
  }
  return out;
}

}  // namespace gbd
