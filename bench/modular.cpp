// Multi-modular vs exact (PR 6): what does computing the basis mod a
// handful of word-size primes and CRT-lifting buy over exact BigInt
// arithmetic, whole-run — per-prime jobs, CRT + rational reconstruction,
// and the final certificate all included?
//
// The answer depends entirely on coefficient growth. Under grlex the corpus
// systems keep their coefficients small and the exact engine wins (the
// modular run pays for several GB runs plus certificates). Under lex the
// intermediate coefficients explode — arnborg5's exact lex run spends tens
// of seconds inside BigInt gcd/divide while every mod-p coefficient stays
// one machine word, and katsura4/lex does not finish in under half an hour
// of exact arithmetic at all — so the modular driver is the only practical
// route. Both regimes are recorded; the honest exhibit is the contrast.
//
// Emitted as BENCH_pr6.json. Every modular row is certificate-verified and
// coefficient-identical to the exact reduced basis before it is written.
//
// Modes:
//   modular [--out FILE]   all rows incl. arnborg5/lex (~30 s exact baseline);
//                          katsura4/lex (exact baseline runs for upwards of
//                          half an hour) only with GBD_BENCH_FULL=1
//   modular --smoke        CI gate: katsura4 grlex multi-modular run
//                          completes, certified, identical to exact
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gb/modular.hpp"
#include "gb/sequential.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

bool full_size() {
  const char* v = std::getenv("GBD_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PolySystem load_with_order(const std::string& name, OrderKind order) {
  PolySystem sys = load_problem(name);
  sys.ctx.order = order;
  // Re-sort every term vector under the requested order.
  for (auto& p : sys.polys) {
    p = Polynomial::from_terms(sys.ctx, std::vector<Term>(p.terms().begin(), p.terms().end()));
  }
  return sys;
}

struct Row {
  std::string problem;
  std::string order;
  double exact_ms = 0;
  double modular_ms = 0;
  double speedup = 0;
  std::size_t basis = 0;
  std::size_t primes = 0;
  std::uint64_t modulus_bits = 0;
  double gb_s = 0, lift_s = 0, verify_s = 0;
  bool verified = false;
  bool identical = false;
};

Row bench_problem(const std::string& name, OrderKind order) {
  Row row;
  row.problem = name;
  row.order = order == OrderKind::kLex ? "lex" : "grlex";
  PolySystem sys = load_with_order(name, order);

  double t0 = now_ms();
  std::vector<Polynomial> exact = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  row.exact_ms = now_ms() - t0;

  ModularConfig cfg;
  t0 = now_ms();
  ModularResult res = groebner_multimodular(sys, cfg);
  row.modular_ms = now_ms() - t0;

  row.speedup = row.exact_ms / row.modular_ms;
  row.basis = res.basis.size();
  row.primes = res.primes.size();
  row.modulus_bits = res.stats.modulus_bits;
  row.gb_s = res.stats.gb_seconds;
  row.lift_s = res.stats.lift_seconds;
  row.verify_s = res.stats.verify_seconds;
  row.verified = res.stats.verified && !res.stats.used_exact_fallback;
  row.identical = res.basis.size() == exact.size();
  for (std::size_t i = 0; row.identical && i < exact.size(); ++i) {
    row.identical = res.basis[i].equals(exact[i]);
  }
  return row;
}

int run_smoke() {
  PolySystem sys = load_problem("katsura4");
  std::vector<Polynomial> exact = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ModularConfig cfg;
  ModularResult res = groebner_multimodular(sys, cfg);
  if (!res.stats.verified || res.stats.used_exact_fallback) {
    std::fprintf(stderr, "smoke: katsura4 multi-modular run not certified (%s)\n",
                 res.stats.summary().c_str());
    return 1;
  }
  bool identical = res.basis.size() == exact.size();
  for (std::size_t i = 0; identical && i < exact.size(); ++i) {
    identical = res.basis[i].equals(exact[i]);
  }
  if (!identical) {
    std::fprintf(stderr, "smoke: lifted basis differs from the exact reduced basis\n");
    return 1;
  }
  std::printf("smoke: katsura4 multi-modular certified and identical to exact (%s)\n",
              res.stats.summary().c_str());
  return 0;
}

int run_full(const std::string& out_path) {
  std::vector<Row> rows;
  std::vector<std::pair<std::string, OrderKind>> plan = {
      {"katsura4", OrderKind::kGrLex},
      {"trinks1", OrderKind::kGrLex},
      {"trinks1", OrderKind::kLex},
      {"arnborg5", OrderKind::kLex},
  };
  if (full_size()) {
    plan.push_back({"katsura4", OrderKind::kLex});
  } else {
    std::printf(
        "note: katsura4/lex (exact baseline runs for upwards of half an hour) "
        "needs GBD_BENCH_FULL=1\n");
  }
  for (const auto& [name, order] : plan) {
    std::printf("%s/%s...\n", name.c_str(), order == OrderKind::kLex ? "lex" : "grlex");
    Row r = bench_problem(name, order);
    if (!r.verified || !r.identical) {
      std::fprintf(stderr, "%s/%s: modular result not certified+identical — refusing to record\n",
                   r.problem.c_str(), r.order.c_str());
      return 1;
    }
    std::printf(
        "  exact %.1f ms, modular %.1f ms (speedup %.2fx), %zu primes, %llu modulus bits, "
        "gb %.3f s / lift %.3f s / verify %.3f s\n",
        r.exact_ms, r.modular_ms, r.speedup, r.primes,
        static_cast<unsigned long long>(r.modulus_bits), r.gb_s, r.lift_s, r.verify_s);
    rows.push_back(std::move(r));
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"modular\",\n";
  js << "  \"note\": \"whole-run wall times: exact = sequential Buchberger + reduce_basis; "
        "modular = per-prime Zp runs + CRT/rational lift + certificates. Every modular row "
        "is certified and coefficient-identical to the exact basis. Speedup tracks "
        "coefficient growth: grlex stays small (exact wins), lex explodes (modular wins).\",\n";
  js << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    js << "    {\"problem\": \"" << r.problem << "\", \"order\": \"" << r.order
       << "\", \"exact_ms\": " << r.exact_ms << ", \"modular_ms\": " << r.modular_ms
       << ", \"speedup\": " << r.speedup << ", \"basis\": " << r.basis
       << ", \"primes\": " << r.primes << ", \"modulus_bits\": " << r.modulus_bits
       << ", \"gb_s\": " << r.gb_s << ", \"lift_s\": " << r.lift_s
       << ", \"verify_s\": " << r.verify_s << ", \"verified\": true, \"identical\": true}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ]\n";
  js << "}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gbd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr6.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? gbd::run_smoke() : gbd::run_full(out_path);
}
