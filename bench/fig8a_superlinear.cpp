// Figure 8(a) — superlinear speedup on lazard: best and worst over 5 runs.
//
// "Superlinear speedup occurs when certain 'magic' polynomials get added to
// the basis that reduce many other polynomials quickly to zero … exploring a
// few of the best pairs (as against the best) in parallel pays off." Both
// the best and the worst curve in the paper lie above linear for this input.
// Run-to-run variation, which the CM-5 provided through timing races, comes
// from the explicit seed here.
#include "bench_common.hpp"

using namespace gbd;

int main() {
  bench::print_header("Figure 8(a): superlinear speedup on lazard (best & worst of 5 runs)",
                      "Speedup over the parallel engine's own 1-processor time. Paper shape:\n"
                      "best runs clearly above linear for mid-range P; worst runs still high.");

  PolySystem sys = load_problem("lazard");
  int seeds = bench::full_size() ? 8 : 5;
  TextTable table({"P", "Best makespan", "Best speedup", "Worst makespan", "Worst speedup",
                   "Linear"});
  double base = 0;
  for (int p : {1, 2, 4, 8, 16}) {
    ParallelConfig cfg;
    cfg.gb = bench::paper_era_criteria();
    cfg.nprocs = p;
    ParallelResult worst;
    ParallelResult best = bench::best_of_seeds(sys, cfg, p == 1 ? 1 : seeds, &worst);
    if (p == 1) {
      base = static_cast<double>(best.machine.makespan);
      worst = best;
    }
    table.add_row({std::to_string(p), std::to_string(best.machine.makespan),
                   fmt(base / static_cast<double>(best.machine.makespan)),
                   std::to_string(worst.machine.makespan),
                   fmt(base / static_cast<double>(worst.machine.makespan)),
                   std::to_string(p)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
