#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>

namespace gbd {

namespace {

/// floor(log2(v)) + 1, i.e. bit width; 0 for v == 0.
std::size_t bucket_of(std::uint64_t v) {
  std::size_t b = 0;
  while (v != 0) {
    v >>= 1;
    b += 1;
  }
  return b;
}

}  // namespace

const char* tele_key_name(TeleKey k) {
  switch (k) {
    case TeleKey::kTime: return "time";
    case TeleKey::kQueueDepth: return "queue";
    case TeleKey::kDegree: return "degree";
    case TeleKey::kBasisSize: return "basis";
    case TeleKey::kSpairsRetired: return "retired";
    case TeleKey::kSpairsZeroed: return "zeroed";
    case TeleKey::kMsgsSent: return "msgs_sent";
    case TeleKey::kMsgsRecv: return "msgs_recv";
    case TeleKey::kIdleUnits: return "idle";
    case TeleKey::kWorkUnits: return "work";
    case TeleKey::kTracerDropped: return "tracer_dropped";
    case TeleKey::kCount: break;
  }
  return "?";
}

const char* tele_hist_name(TeleHist h) {
  switch (h) {
    case TeleHist::kReduce: return "reduce";
    case TeleHist::kLockWait: return "lock_wait";
    case TeleHist::kAckRtt: return "ack_rtt";
    case TeleHist::kCount: break;
  }
  return "?";
}

void LogHistogram::record(std::uint64_t v) {
  buckets[std::min<std::size_t>(bucket_of(v), buckets.size() - 1)] += 1;
  count += 1;
  sum += v;
  max = std::max(max, v);
}

void LogHistogram::merge(const LogHistogram& o) {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  max = std::max(max, o.max);
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample (1-based), then walk buckets to find it.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Interpolate within [floor, 2·floor) — clamped to the observed max so
      // quantile(1.0) never exceeds it.
      std::uint64_t lo = bucket_floor(i);
      std::uint64_t width = i == 0 ? 1 : lo;
      double frac = buckets[i] == 1
                        ? 1.0
                        : static_cast<double>(rank - seen - 1) / static_cast<double>(buckets[i] - 1);
      std::uint64_t v = lo + static_cast<std::uint64_t>(frac * static_cast<double>(width - 1));
      return std::min(v, max);
    }
    seen += buckets[i];
  }
  return max;
}

void LogHistogram::encode(Writer& w) const {
  w.u64(count);
  w.u64(sum);
  w.u64(max);
  std::uint8_t nonzero = 0;
  for (std::uint64_t b : buckets) nonzero += (b != 0);
  w.u8(nonzero);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    w.u8(static_cast<std::uint8_t>(i));
    w.u64(buckets[i]);
  }
}

LogHistogram LogHistogram::decode(Reader& r) {
  LogHistogram h;
  h.count = r.u64();
  h.sum = r.u64();
  h.max = r.u64();
  std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n && r.remaining() >= 9; ++i) {
    std::uint8_t idx = r.u8();
    std::uint64_t c = r.u64();
    if (idx < h.buckets.size()) h.buckets[idx] = c;
  }
  return h;
}

std::vector<std::uint8_t> ProcTelemetry::sample(int proc, std::uint64_t now,
                                                const ProcCommStats& comm,
                                                std::uint64_t tracer_dropped) {
  TeleSample s{};
  tele_at(s, TeleKey::kTime) = now;
  tele_at(s, TeleKey::kMsgsSent) = comm.messages_sent;
  tele_at(s, TeleKey::kMsgsRecv) = comm.messages_received;
  tele_at(s, TeleKey::kIdleUnits) = comm.idle_units;
  tele_at(s, TeleKey::kTracerDropped) = tracer_dropped;
  if (sampler_) sampler_(s);

  seq_ += 1;
  last_tick_ = now;
  bool keyframe = (seq_ % kTelemetryKeyframeEvery) == 1 || kTelemetryKeyframeEvery == 1;

  Writer w;
  w.u8(kTelemetryFormat);
  w.u32(static_cast<std::uint32_t>(proc));
  w.u64(seq_);
  w.u8(keyframe ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(kTeleKeyCount));
  for (std::size_t i = 0; i < kTeleKeyCount; ++i) {
    // Keyframes carry absolute values; delta frames carry wrapping
    // differences (exact mod 2^64, so gauges may decrease freely).
    w.u64(keyframe ? s[i] : s[i] - prev_[i]);
  }
  prev_ = s;

  w.u8(static_cast<std::uint8_t>(kTeleHistCount));
  for (std::size_t i = 0; i < kTeleHistCount; ++i) {
    w.u8(static_cast<std::uint8_t>(i));
    hists_[i].encode(w);
  }
  return w.take();
}

void TelemetryAggregator::reset(int nprocs, std::size_t series_capacity) {
  ranks_.assign(static_cast<std::size_t>(nprocs), RankState{});
  series_cap_ = series_capacity;
  malformed_ = 0;
  progress_ = 0.0;
}

void TelemetryAggregator::ingest(Reader& r) {
  // The lossy, untrusted path: anything surprising is counted and ignored.
  // (Length checks precede every read — Reader underrun aborts by design,
  // and that contract is for trusted engine envelopes, not telemetry.)
  if (r.remaining() < 1 + 4 + 8 + 1 + 1) {
    malformed_ += 1;
    return;
  }
  if (r.u8() != kTelemetryFormat) {
    malformed_ += 1;
    return;
  }
  std::uint32_t proc = r.u32();
  std::uint64_t seq = r.u64();
  std::uint8_t flags = r.u8();
  std::uint8_t nvals = r.u8();
  if (proc >= ranks_.size() || seq == 0 || r.remaining() < std::size_t(nvals) * 8) {
    malformed_ += 1;
    return;
  }
  std::array<std::uint64_t, 64> vals{};  // tolerate future senders with more slots
  for (std::uint8_t i = 0; i < nvals; ++i) {
    std::uint64_t v = r.u64();
    if (i < vals.size()) vals[i] = v;
  }

  RankState& rs = ranks_[proc];
  if (seq <= rs.last_seq) {
    rs.stale += 1;  // chaos duplicate or reordered leftover
    return;
  }
  std::uint64_t gap = seq - rs.last_seq - 1;
  rs.dropped += gap;
  rs.last_seq = seq;
  rs.frames += 1;

  bool keyframe = (flags & 1) != 0;
  std::size_t n = std::min<std::size_t>(nvals, kTeleKeyCount);
  if (keyframe) {
    // Absolute values: always applicable, heals any earlier loss.
    for (std::size_t i = 0; i < n; ++i) rs.values[i] = vals[i];
    rs.synced = true;
  } else if (rs.synced && gap == 0) {
    // Contiguous delta on a synced stream: apply (wrapping add).
    for (std::size_t i = 0; i < n; ++i) rs.values[i] += vals[i];
  } else {
    // A delta after loss can't be applied; wait for the next keyframe.
    rs.synced = false;
  }

  if (rs.synced) {
    rs.series.push_back(rs.values);
    while (rs.series.size() > series_cap_) rs.series.pop_front();
  }

  // Histograms: absolute state, replace wholesale.
  if (r.remaining() >= 1) {
    std::uint8_t nhist = r.u8();
    for (std::uint8_t i = 0; i < nhist; ++i) {
      if (r.remaining() < 1 + 8 * 3 + 1) {
        malformed_ += 1;
        return;
      }
      std::uint8_t id = r.u8();
      if (r.remaining() < 8 * 3 + 1) {
        malformed_ += 1;
        return;
      }
      // Bound the sparse list before handing the reader to decode().
      LogHistogram h = LogHistogram::decode(r);
      if (id < kTeleHistCount) rs.hists[id] = h;
    }
  }

  // Refresh the monotone progress estimate.
  std::uint64_t done = 0, depth = 0;
  for (const RankState& s : ranks_) {
    if (s.frames == 0 || !s.synced) continue;
    done += tele_get(s.values, TeleKey::kSpairsRetired) +
            tele_get(s.values, TeleKey::kSpairsZeroed);
    depth += tele_get(s.values, TeleKey::kQueueDepth);
  }
  if (done + depth > 0) {
    progress_ = std::max(progress_, double(done) / double(done + depth));
  }
}

std::uint64_t TelemetryAggregator::dropped_frames() const {
  std::uint64_t d = 0;
  for (const RankState& s : ranks_) d += s.dropped;
  return d;
}

std::uint64_t TelemetryAggregator::frames_received() const {
  std::uint64_t f = 0;
  for (const RankState& s : ranks_) f += s.frames;
  return f;
}

LogHistogram TelemetryAggregator::merged_hist(TeleHist h) const {
  LogHistogram out;
  for (const RankState& s : ranks_) out.merge(s.hists[static_cast<std::size_t>(h)]);
  return out;
}

std::string TelemetryAggregator::snapshot_json() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", progress_);
  std::uint64_t stale = 0;
  for (const RankState& s : ranks_) stale += s.stale;
  std::string out = "{\"type\":\"sample\",\"progress\":";
  out += buf;
  out += ",\"dropped_frames\":" + std::to_string(dropped_frames());
  out += ",\"stale_frames\":" + std::to_string(stale);
  out += ",\"ranks\":[";
  for (std::size_t p = 0; p < ranks_.size(); ++p) {
    const RankState& s = ranks_[p];
    if (p > 0) out.push_back(',');
    out += "{\"rank\":" + std::to_string(p);
    out += ",\"seq\":" + std::to_string(s.last_seq);
    out += ",\"dropped\":" + std::to_string(s.dropped);
    out += ",\"synced\":" + std::string(s.synced ? "true" : "false");
    for (std::size_t i = 0; i < kTeleKeyCount; ++i) {
      out += ",\"";
      out += tele_key_name(static_cast<TeleKey>(i));
      out += "\":" + std::to_string(s.values[i]);
    }
    out.push_back('}');
  }
  out += "],\"hist\":{";
  for (std::size_t i = 0; i < kTeleHistCount; ++i) {
    if (i > 0) out.push_back(',');
    LogHistogram h = merged_hist(static_cast<TeleHist>(i));
    out.push_back('"');
    out += tele_hist_name(static_cast<TeleHist>(i));
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

void Telemetry::start_run(int nprocs, ClockDomain domain) {
  procs_.assign(static_cast<std::size_t>(nprocs), ProcTelemetry{});
  std::uint64_t interval = domain == ClockDomain::kVirtual
                               ? cfg_.sim_interval_units
                               : std::uint64_t(cfg_.interval_ms) * 1'000'000u;
  for (ProcTelemetry& p : procs_) p.interval_ = interval;
  std::lock_guard<std::mutex> lock(mu_);
  agg_.reset(nprocs, cfg_.series_capacity);
}

void Telemetry::ingest_bytes(const std::uint8_t* data, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  Reader r(data, n);
  agg_.ingest(r);
  if (on_update_) on_update_(agg_);
}

std::uint64_t Telemetry::dropped_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return agg_.dropped_frames();
}

double Telemetry::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return agg_.progress();
}

std::string Telemetry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return agg_.snapshot_json();
}

}  // namespace gbd
