#include "poly/echelon.hpp"

#include <algorithm>
#include <thread>

#include "poly/geobucket.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

struct SweepTally {
  std::uint64_t axpys = 0;
  std::uint64_t dense_cells = 0;
  std::uint64_t cost = 0;  // term-operation units this worker charged
};

/// Zp pivot sweep for one work row: dense accumulator of canonical residues,
/// columns walked in tiles. A pivot's tail scatters strictly to the right of
/// its head, so one left-to-right pass clears every pivot column.
Polynomial sweep_row_zp(const PolyContext& ctx, const SymbolicFrame& frame,
                        const MacaulayMatrix& mat, const ZpField& field, const MatrixRow& row,
                        std::size_t block_cols, std::vector<std::uint64_t>* acc,
                        SweepTally* tally) {
  const std::size_t ncols = mat.ncols;
  std::fill(acc->begin(), acc->end(), 0);
  for (std::size_t i = 0; i < row.nnz(); ++i) {
    (*acc)[row.cols[i]] = zp_residue_u64(row.coeffs[i]);
  }
  const std::size_t tile = std::max<std::size_t>(1, block_cols);
  for (std::size_t b = 0; b < ncols; b += tile) {
    const std::size_t be = std::min(ncols, b + tile);
    for (std::size_t c = b; c < be; ++c) {
      std::uint64_t f = (*acc)[c];
      if (f == 0) continue;
      std::int32_t pv = frame.pivot_of_col[c];
      if (pv < 0) continue;
      const ZpPivotRow& prow = mat.zp_pivots[static_cast<std::size_t>(pv)];
      // prow is monic with head at column c: the head cancels exactly.
      (*acc)[c] = 0;
      for (std::size_t j = 1; j < prow.cols.size(); ++j) {
        std::uint64_t& cell = (*acc)[prow.cols[j]];
        cell = field.sub_canonical(cell, field.mul_canonical(Zp{prow.mont[j]}, f));
      }
      tally->axpys += 1;
      CostCounter::charge(prow.cols.size());
    }
  }
  tally->dense_cells += ncols;
  CostCounter::charge(ncols / 8 + 1);  // the tile scan itself, amortized

  std::vector<Term> terms;
  for (std::size_t c = 0; c < ncols; ++c) {
    std::uint64_t v = (*acc)[c];
    if (v != 0) terms.push_back(Term{BigInt(static_cast<std::int64_t>(v)), frame.cols[c]});
  }
  Polynomial out = Polynomial::from_sorted_terms(ctx, std::move(terms));
  out.make_monic(field);
  return out;
}

/// Exact pivot sweep for one work row: the reduce_full geobucket loop with
/// the reducer choice read off the frame. Bit-identical to the per-poly
/// oracle's tail-reduced normal form (same reducers, same fraction-free
/// steps, same final make_primitive inside extract()).
Polynomial sweep_row_exact(const PolyContext& ctx, const SymbolicFrame& frame,
                           const MatrixRow& mrow, SweepTally* tally) {
  Polynomial p = row_to_poly(ctx, frame, mrow);
  p.make_primitive();
  if (p.is_zero()) return p;
  Geobucket acc(ctx, std::move(p));
  Term lead;
  while (acc.lead(&lead)) {
    std::int64_t c = frame.col_of(lead.mono);
    GBD_CHECK_MSG(c >= 0, "echelon_reduce: monomial escaped the frame");
    std::int32_t pv = frame.pivot_of_col[static_cast<std::size_t>(c)];
    if (pv < 0) {
      acc.retire_lead();
      continue;
    }
    const PivotProduct& prod = frame.pivots[static_cast<std::size_t>(pv)];
    BigInt g = BigInt::gcd(lead.coeff, prod.reducer->hcoef());
    BigInt a = prod.reducer->hcoef() / g;
    BigInt b = lead.coeff / g;
    if (a.is_negative()) {
      a = -a;
      b = -b;
    }
    b = -b;
    acc.axpy(a, b, prod.mult, *prod.reducer);
    tally->axpys += 1;
  }
  return acc.extract();
}

/// Combine `row` against `piv` (equal head monomials), fraction-free.
void combine_exact(const PolyContext& ctx, Polynomial* row, const Polynomial& piv) {
  BigInt g = BigInt::gcd(row->hcoef(), piv.hcoef());
  BigInt a = piv.hcoef() / g;
  BigInt b = row->hcoef() / g;
  if (a.is_negative()) {
    a = -a;
    b = -b;
  }
  Monomial unit(row->hmono().nvars());
  Polynomial sub = piv.mul_term(b, unit);
  *row = (a.is_one() ? *row : row->mul_term(a, unit)).sub(ctx, sub);
  row->make_primitive();
}

}  // namespace

EchelonOutput echelon_reduce(const PolyContext& ctx, const SymbolicFrame& frame,
                             const MacaulayMatrix& mat, const EchelonOptions& opts) {
  MatrixKernelStats& st = matrix_kernel_stats();
  const std::size_t nrows = mat.work_rows.size();
  EchelonOutput out;
  out.src_zeroed.assign(nrows, false);

  const bool zp = opts.coeff.is_zp();
  ZpField field(zp ? opts.coeff.prime : 3);

  // Stage 1: per-row pivot sweep, parallel across rows. Each worker owns its
  // accumulator and tally; slot i of `reduced` is written by exactly one
  // worker.
  std::vector<Polynomial> reduced(nrows);
  std::size_t nthreads = std::max<std::size_t>(1, opts.nthreads);
  nthreads = std::min(nthreads, std::max<std::size_t>(1, nrows));
  std::vector<SweepTally> tallies(nthreads);

  auto sweep_range = [&](std::size_t t) {
    SweepTally& tally = tallies[t];
    CostScope scope;
    std::vector<std::uint64_t> acc;
    if (zp) acc.assign(mat.ncols, 0);
    for (std::size_t i = t; i < nrows; i += nthreads) {
      const MatrixRow& row = mat.work_rows[i];
      if (row.empty()) continue;
      reduced[i] = zp ? sweep_row_zp(ctx, frame, mat, field, row, opts.block_cols, &acc, &tally)
                      : sweep_row_exact(ctx, frame, row, &tally);
    }
    tally.cost = scope.elapsed();
  };

  if (nthreads == 1) {
    sweep_range(0);
  } else {
    // Workers charge their own thread-local cost counters, which die with
    // the threads; the caller is charged the slowest worker's total below
    // (parallel makespan, same convention as the machine backends).
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) workers.emplace_back(sweep_range, t);
    for (auto& w : workers) w.join();
    std::uint64_t makespan = 0;
    for (const auto& tally : tallies) makespan = std::max(makespan, tally.cost);
    CostCounter::charge(makespan);
  }
  for (const auto& tally : tallies) {
    st.axpys += tally.axpys;
    st.dense_cells += tally.dense_cells;
  }

  // Stage 2: row echelon of the surviving rows. Rows are processed in
  // descending head order (ties by src) so an accepted row can never be
  // re-touched by a later combination; each combination strictly lowers the
  // working row's head. Row identity (src) survives combination.
  struct Work {
    Polynomial poly;
    std::size_t src;
  };
  std::vector<Work> alive;
  for (std::size_t i = 0; i < nrows; ++i) {
    if (mat.work_rows[i].empty() || reduced[i].is_zero()) {
      if (!mat.work_rows[i].empty()) out.src_zeroed[i] = true;
      continue;
    }
    alive.push_back(Work{std::move(reduced[i]), i});
  }

  if (opts.interreduce && alive.size() > 1) {
    std::sort(alive.begin(), alive.end(), [&](const Work& a, const Work& b) {
      int c = ctx.cmp(a.poly.hmono(), b.poly.hmono());
      if (c != 0) return c > 0;
      return a.src < b.src;
    });
    std::unordered_map<Monomial, std::size_t, SymbolicFrame::MonoHash> head_of;
    std::vector<Work> kept;
    Monomial unit(ctx.nvars());
    for (Work& w : alive) {
      while (!w.poly.is_zero()) {
        auto it = head_of.find(w.poly.hmono());
        if (it == head_of.end()) break;
        const Polynomial& piv = kept[it->second].poly;
        if (zp) {
          std::uint64_t f = field.p() - zp_residue_u64(w.poly.hcoef());  // piv is monic
          w.poly = zp_combine(ctx, field, 1, unit, w.poly, f, unit, piv);
        } else {
          combine_exact(ctx, &w.poly, piv);
        }
        st.axpys += 1;
      }
      if (w.poly.is_zero()) {
        out.src_zeroed[w.src] = true;
        continue;
      }
      if (zp) w.poly.make_monic(field);
      head_of.emplace(w.poly.hmono(), kept.size());
      kept.push_back(std::move(w));
    }
    alive = std::move(kept);
  }

  std::sort(alive.begin(), alive.end(),
            [](const Work& a, const Work& b) { return a.src < b.src; });
  out.rows.reserve(alive.size());
  for (Work& w : alive) out.rows.push_back(EchelonOutput::NewRow{std::move(w.poly), w.src});
  for (bool z : out.src_zeroed) st.rows_zeroed += z ? 1 : 0;
  return out;
}

EchelonOutput reduce_batch(const PolyContext& ctx, const std::vector<Polynomial>& rows,
                           const ReducerSet& reducers, const EchelonOptions& opts) {
  SymbolicFrame frame = symbolic_preprocess(ctx, rows, reducers);
  MacaulayMatrix mat = build_matrix(ctx, frame, rows, opts.coeff);
  return echelon_reduce(ctx, frame, mat, opts);
}

}  // namespace gbd
