// Activity traces and the sequential replay baseline of Figure 8(b).
//
// The paper: "the parallel version accumulates traces of activity at each
// processor. A sequential program … reads in the traces and mimics an
// appropriately merged sequence of execution steps. The execution time of
// this program is used as the baseline for normalized curves."
//
// Our trace records, per processor and per task, the pair worked on, the
// exact sequence of reducers applied and the outcome. The replay engine
// re-executes that algebra sequentially — recomputing every s-polynomial and
// every reduction step from the recorded reducer ids — and its charged work
// is the normalized baseline. Replay doubles as a structural audit of the
// parallel run: every recorded reducer must still cancel the head it was
// recorded against, and every added result must equal the basis body.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "basis/replicated_basis.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// One executed pair task: SPOL(a, b) reduced by `reducers` in order,
/// ending in zero (added == false) or in the basis element `result`.
struct TaskTrace {
  PolyId a = 0;
  PolyId b = 0;
  std::vector<PolyId> reducers;
  bool added = false;
  PolyId result = 0;
};

struct ProcTrace {
  std::vector<TaskTrace> tasks;
};

struct RunTrace {
  std::vector<ProcTrace> procs;

  std::size_t total_tasks() const;
};

struct ReplayResult {
  /// Work units charged by the sequential re-execution — the Fig. 8(b)
  /// baseline time.
  std::uint64_t work_units = 0;
  std::uint64_t tasks_replayed = 0;
  std::uint64_t reduction_steps = 0;
};

/// Re-execute a parallel run's trace sequentially. `bodies` must map every
/// id appearing in the trace (inputs and added elements) to its polynomial.
/// Aborts if the trace is structurally inconsistent with the bodies — i.e.
/// if the parallel run it came from performed an invalid reduction.
ReplayResult replay_trace(const PolyContext& ctx, const RunTrace& trace,
                          const std::map<PolyId, Polynomial>& bodies);

}  // namespace gbd
