// Unit and property tests for exact rational arithmetic.
#include "bigint/rational.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace gbd {
namespace {

Rational random_rational(Rng& rng) {
  std::int64_t num = static_cast<std::int64_t>(rng.below(20001)) - 10000;
  std::int64_t den = static_cast<std::int64_t>(rng.below(9999)) + 1;
  return Rational(BigInt(num), BigInt(den));
}

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
  EXPECT_TRUE(r.den().is_one());
}

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(BigInt(4), BigInt(-6));
  EXPECT_EQ(r.to_string(), "-2/3");
  EXPECT_EQ(r.num().to_int64(), -2);
  EXPECT_EQ(r.den().to_int64(), 3);
  EXPECT_EQ(Rational(BigInt(0), BigInt(-7)).to_string(), "0");
  EXPECT_EQ(Rational(BigInt(10), BigInt(5)).to_string(), "2");
}

TEST(RationalTest, ParseForms) {
  EXPECT_EQ(Rational::from_string("7").to_string(), "7");
  EXPECT_EQ(Rational::from_string("-7").to_string(), "-7");
  EXPECT_EQ(Rational::from_string("3/4").to_string(), "3/4");
  EXPECT_EQ(Rational::from_string("-6/8").to_string(), "-3/4");
  Rational out;
  EXPECT_FALSE(Rational::parse("3/0", &out));
  EXPECT_FALSE(Rational::parse("a/b", &out));
  EXPECT_FALSE(Rational::parse("", &out));
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).to_string(), "5/6");
  EXPECT_EQ((half - third).to_string(), "1/6");
  EXPECT_EQ((half * third).to_string(), "1/6");
  EXPECT_EQ((half / third).to_string(), "3/2");
  EXPECT_EQ((-half).to_string(), "-1/2");
  EXPECT_EQ(half.inverse().to_string(), "2");
}

TEST(RationalTest, ComparisonCrossDenominator) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_GT(Rational(BigInt(-1), BigInt(3)), Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(2)).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-7), BigInt(4)).to_double(), -1.75);
  EXPECT_DOUBLE_EQ(Rational().to_double(), 0.0);
  // Values beyond int64 still approximate sensibly (truncating conversion,
  // so allow ~1e-9 relative error).
  BigInt big = BigInt::pow(BigInt(10), 30);
  EXPECT_NEAR(Rational(big, BigInt(1)).to_double() / 1e30, 1.0, 1e-9);
  EXPECT_NEAR(Rational(BigInt(1), big).to_double() / 1e-30, 1.0, 1e-9);
}

class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    Rational a = random_rational(rng);
    Rational b = random_rational(rng);
    Rational c = random_rational(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_TRUE((a - a).is_zero());
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
      EXPECT_TRUE((b * b.inverse()).is_one());
    }
  }
}

TEST_P(RationalPropertyTest, InvariantAlwaysNormalized) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int iter = 0; iter < 25; ++iter) {
    Rational a = random_rational(rng) * random_rational(rng) + random_rational(rng);
    EXPECT_GT(a.den().signum(), 0);
    EXPECT_TRUE(BigInt::gcd(a.num(), a.den()).is_one() || a.is_zero());
    if (a.is_zero()) {
      EXPECT_TRUE(a.den().is_one());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace gbd
