#include "poly/reduce.hpp"

#include <algorithm>
#include <numeric>

#include "bigint/zp.hpp"
#include "poly/geobucket.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

bool reducer_preferred(const Polynomial& a, const Polynomial& b) {
  std::size_t abits = a.hcoef().bit_length();
  std::size_t bbits = b.hcoef().bit_length();
  if (abits != bbits) return abits < bbits;
  return a.nterms() < b.nterms();
}

const Polynomial* VectorReducerSet::find_reducer(const Monomial& m, std::uint64_t* out_id) const {
  if (polys_ == nullptr || polys_->empty()) return nullptr;
  FindReducerStats& st = find_reducer_stats();
  st.calls += 1;
  // Extend the mask cache over elements appended since the last call.
  if (masks_.size() < polys_->size()) {
    if (ruler_.nvars() != m.nvars()) ruler_ = DivMaskRuler(m.nvars());
    for (std::size_t i = masks_.size(); i < polys_->size(); ++i) {
      const Polynomial& r = (*polys_)[i];
      // A zero element can never divide; all-ones almost always fails the
      // mask test, and the is_zero() check below covers the remainder.
      masks_.push_back(r.is_zero() ? ~std::uint64_t{0} : ruler_.mask(r.hmono()));
    }
  }
  const std::uint64_t tmask = ruler_.mask(m);
  // Among all applicable reducers prefer the one whose head coefficient is
  // smallest (the fraction-free step scales the reduct by hc(r)/g, so a big
  // head coefficient inflates every later coefficient), then the one with
  // the fewest terms; ties go to the oldest. This keeps reduction cost
  // stable across the different basis orders the parallel engines produce.
  // The running best's key (bits, terms) is carried through the scan instead
  // of re-deriving it per candidate (reducer_preferred recomputes both
  // bit_lengths on every call).
  const Polynomial* best = nullptr;
  std::size_t best_i = 0, best_bits = 0, best_terms = 0;
  for (std::size_t i = 0; i < polys_->size(); ++i) {
    st.probes += 1;
    if (!DivMaskRuler::may_divide(masks_[i], tmask)) {
      st.mask_rejects += 1;
      continue;
    }
    const Polynomial& r = (*polys_)[i];
    if (r.is_zero()) continue;
    st.divides_calls += 1;
    if (!r.hmono().divides(m)) continue;
    std::size_t rbits = r.hcoef().bit_length();
    std::size_t rterms = r.nterms();
    if (best == nullptr || rbits < best_bits || (rbits == best_bits && rterms < best_terms)) {
      best = &r;
      best_i = i;
      best_bits = rbits;
      best_terms = rterms;
    }
  }
  if (best && out_id) *out_id = best_i;
  return best;
}

bool VectorReducerSet::head_added_since(const Monomial& m, std::uint64_t stamp) const {
  if (polys_ == nullptr || stamp >= polys_->size()) return false;
  // Extend the mask cache exactly as find_reducer does, then scan only the
  // suffix appended after `stamp` — the memo-invalidation hot path is a
  // short suffix walk, not a full reducer search.
  if (masks_.size() < polys_->size()) {
    if (ruler_.nvars() != m.nvars()) ruler_ = DivMaskRuler(m.nvars());
    for (std::size_t i = masks_.size(); i < polys_->size(); ++i) {
      const Polynomial& r = (*polys_)[i];
      masks_.push_back(r.is_zero() ? ~std::uint64_t{0} : ruler_.mask(r.hmono()));
    }
  }
  const std::uint64_t tmask = ruler_.mask(m);
  for (std::size_t i = static_cast<std::size_t>(stamp); i < polys_->size(); ++i) {
    if (!DivMaskRuler::may_divide(masks_[i], tmask)) continue;
    const Polynomial& r = (*polys_)[i];
    if (r.is_zero()) continue;
    if (r.hmono().divides(m)) return true;
  }
  return false;
}

namespace {

/// Cancel the term of p at index k against reducer r (fraction-free).
/// Requires r.hmono() | p.terms()[k].mono. Monomials of terms 0..k-1 are
/// unchanged by construction (their coefficients get scaled).
Polynomial cancel_at(const PolyContext& ctx, const Polynomial& p, std::size_t k,
                     const Polynomial& r) {
  const Term& t = p.terms()[k];
  BigInt g = BigInt::gcd(t.coeff, r.hcoef());
  BigInt a = r.hcoef() / g;
  BigInt b = t.coeff / g;
  if (a.is_negative()) {
    a = -a;
    b = -b;
  }
  Monomial m = t.mono / r.hmono();
  Polynomial sub = r.mul_term(b, m);
  if (a.is_one()) return p.sub(ctx, sub);
  return p.mul_term(a, Monomial(t.mono.nvars())).sub(ctx, sub);
}

}  // namespace

Polynomial reduce_step(const PolyContext& ctx, const Polynomial& p, const Polynomial& r) {
  GBD_CHECK_MSG(!p.is_zero() && !r.is_zero(), "reduce_step with zero operand");
  GBD_CHECK_MSG(r.hmono().divides(p.hmono()), "reduce_step: reducer head does not divide");
  return cancel_at(ctx, p, 0, r);
}

namespace {

/// Cancel the term of p at index k against reducer r over Z/pZ:
/// p − (c·hc(r)^{-1})·(m·r), all coefficients canonical residues. Unlike the
/// fraction-free step there is no scalar ambiguity — the result is uniquely
/// determined, which is what makes the geobucket and naive Zp paths agree
/// coefficient-for-coefficient at every step.
Polynomial zp_cancel_at(const PolyContext& ctx, const ZpField& field, const Polynomial& p,
                        std::size_t k, const Polynomial& r) {
  const Term& t = p.terms()[k];
  Zp fac = field.mul(field.from_residue(zp_residue_u64(t.coeff)),
                     field.inv(field.from_residue(zp_residue_u64(r.hcoef()))));
  std::uint64_t b = field.to_u64(field.neg(fac));
  Monomial unit(t.mono.nvars());
  return zp_combine(ctx, field, 1, unit, p, b, t.mono / r.hmono(), r);
}

}  // namespace

Polynomial reduce_step_mod(const PolyContext& ctx, const Polynomial& p, const Polynomial& r,
                           const ZpField& field) {
  GBD_CHECK_MSG(!p.is_zero() && !r.is_zero(), "reduce_step_mod with zero operand");
  GBD_CHECK_MSG(r.hmono().divides(p.hmono()), "reduce_step_mod: reducer head does not divide");
  return zp_cancel_at(ctx, field, p, 0, r);
}

namespace {

/// The pre-geobucket flat-vector path: rebuilds the whole polynomial every
/// step. Kept for one release as the differential-test oracle (see
/// ReduceOptions::use_geobuckets) — it is the reference semantics.
ReduceOutcome reduce_full_naive(const PolyContext& ctx, Polynomial p, const ReducerSet& set,
                                const ReduceOptions& opts, ReduceObserver* obs) {
  ReduceOutcome out;
  Polynomial cur = std::move(p);
  cur.make_primitive();
  std::size_t k = 0;  // index of the first term not yet known irreducible
  while (!cur.is_zero() && k < cur.nterms()) {
    std::uint64_t id = 0;
    const Polynomial* r = set.find_reducer(cur.terms()[k].mono, &id);
    if (r == nullptr) {
      if (!opts.tail_reduce) break;
      ++k;
      continue;
    }
    CostScope cost;
    cur = cancel_at(ctx, cur, k, *r);
    cur.make_primitive();
    ++out.steps;
    GBD_CHECK_MSG(out.steps <= opts.max_steps, "reduce_full exceeded max_steps");
    if (obs) obs->on_step(id, cost.elapsed());
  }
  out.poly = std::move(cur);
  return out;
}

/// The Zp twin of reduce_full. Mod-p cancellation has no scalar ambiguity
/// (every step is p ← p − c·hc(r)^{-1}·(m·r) over canonical residues), so
/// the naive and geobucket paths agree coefficient-for-coefficient at every
/// step — not merely up to a scalar — and both finish with the monic form.
ReduceOutcome reduce_full_zp(const PolyContext& ctx, Polynomial p, const ReducerSet& set,
                             const ReduceOptions& opts, ReduceObserver* obs) {
  ZpField field(opts.coeff.prime);
  ReduceOutcome out;
  // Entry canonicalization mirrors the exact paths' make_primitive: reduce
  // every coefficient to its canonical residue (idempotent on engine data).
  Polynomial cur = poly_mod(ctx, p, field);
  if (!opts.use_geobuckets) {
    std::size_t k = 0;
    while (!cur.is_zero() && k < cur.nterms()) {
      std::uint64_t id = 0;
      const Polynomial* r = set.find_reducer(cur.terms()[k].mono, &id);
      if (r == nullptr) {
        if (!opts.tail_reduce) break;
        ++k;
        continue;
      }
      CostScope cost;
      cur = zp_cancel_at(ctx, field, cur, k, *r);
      ++out.steps;
      GBD_CHECK_MSG(out.steps <= opts.max_steps, "reduce_full exceeded max_steps");
      if (obs) obs->on_step(id, cost.elapsed());
    }
    cur.make_monic(field);
    out.poly = std::move(cur);
    return out;
  }
  Geobucket acc(ctx, std::move(cur), &field);
  Term lead;
  while (acc.lead(&lead)) {
    std::uint64_t id = 0;
    const Polynomial* r = set.find_reducer(lead.mono, &id);
    if (r == nullptr) {
      if (!opts.tail_reduce) break;
      acc.retire_lead();
      continue;
    }
    CostScope cost;
    Zp fac = field.mul(field.from_residue(zp_residue_u64(lead.coeff)),
                       field.inv(field.from_residue(zp_residue_u64(r->hcoef()))));
    BigInt b(static_cast<std::int64_t>(field.to_u64(field.neg(fac))));
    acc.axpy(BigInt(1), b, lead.mono / r->hmono(), *r);
    ++out.steps;
    GBD_CHECK_MSG(out.steps <= opts.max_steps, "reduce_full exceeded max_steps");
    if (obs) obs->on_step(id, cost.elapsed());
  }
  out.poly = acc.extract();
  return out;
}

}  // namespace

ReduceOutcome reduce_full(const PolyContext& ctx, Polynomial p, const ReducerSet& set,
                          const ReduceOptions& opts, ReduceObserver* obs) {
  if (opts.coeff.is_zp()) return reduce_full_zp(ctx, std::move(p), set, opts, obs);
  if (!opts.use_geobuckets) return reduce_full_naive(ctx, std::move(p), set, opts, obs);
  // Geobucket path. Intermediate values are scalar multiples of the naive
  // path's (normalization is deferred, not per-step), which leaves the
  // monomial trajectory, reducer choices and step count identical and the
  // final primitive form bit-identical — see geobucket.hpp.
  ReduceOutcome out;
  p.make_primitive();
  Geobucket acc(ctx, std::move(p));
  Term lead;
  while (acc.lead(&lead)) {
    std::uint64_t id = 0;
    const Polynomial* r = set.find_reducer(lead.mono, &id);
    if (r == nullptr) {
      if (!opts.tail_reduce) break;
      acc.retire_lead();
      continue;
    }
    CostScope cost;
    BigInt g = BigInt::gcd(lead.coeff, r->hcoef());
    BigInt a = r->hcoef() / g;
    BigInt b = lead.coeff / g;
    if (a.is_negative()) {
      a = -a;
      b = -b;
    }
    b = -b;
    Monomial m = lead.mono / r->hmono();
    acc.axpy(a, b, m, *r);
    ++out.steps;
    GBD_CHECK_MSG(out.steps <= opts.max_steps, "reduce_full exceeded max_steps");
    if (obs) obs->on_step(id, cost.elapsed());
  }
  out.poly = acc.extract();
  return out;
}

bool is_normal(const Polynomial& p, const ReducerSet& set) {
  if (p.is_zero()) return true;
  return set.find_reducer(p.hmono(), nullptr) == nullptr;
}

std::vector<Polynomial> interreduce(const PolyContext& ctx, std::vector<Polynomial> gens,
                                    const CoeffOptions& coeff) {
  std::vector<Polynomial> work;
  for (auto& g : gens) {
    coeff_normalize(ctx, &g, coeff);
    if (g.is_zero()) continue;
    work.push_back(std::move(g));
  }
  ReduceOptions opts;
  opts.tail_reduce = true;
  opts.coeff = coeff;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < work.size();) {
      std::vector<Polynomial> others;
      others.reserve(work.size() - 1);
      for (std::size_t j = 0; j < work.size(); ++j) {
        if (j != i) others.push_back(work[j]);
      }
      VectorReducerSet set(&others);
      Polynomial nf = reduce_full(ctx, work[i], set, opts).poly;
      if (nf.is_zero()) {
        work.erase(work.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        continue;
      }
      if (!nf.equals(work[i])) {
        work[i] = std::move(nf);
        changed = true;
      }
      ++i;
    }
  }
  return work;
}

std::vector<Polynomial> reduce_basis(const PolyContext& ctx, std::vector<Polynomial> basis,
                                     const CoeffOptions& coeff) {
  // Normalize and drop zeros.
  std::vector<Polynomial> in;
  in.reserve(basis.size());
  for (auto& g : basis) {
    coeff_normalize(ctx, &g, coeff);
    if (g.is_zero()) continue;
    in.push_back(std::move(g));
  }

  // Minimize: visit in ascending head order and keep an element only if no
  // already-kept head divides its head. (If hm(a) | hm(b) with a != b then
  // hm(a) <= hm(b) in every admissible order, so one ascending pass is
  // complete; equal heads keep the first occurrence.)
  std::vector<std::size_t> idx(in.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ctx.cmp(in[a].hmono(), in[b].hmono()) < 0;
  });
  std::vector<Polynomial> minimal;
  for (std::size_t i : idx) {
    bool covered = false;
    for (const auto& kept : minimal) {
      if (kept.hmono().divides(in[i].hmono())) {
        covered = true;
        break;
      }
    }
    if (!covered) minimal.push_back(in[i]);
  }

  // Tail-reduce each element against all the others.
  std::vector<Polynomial> out(minimal.size());
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    std::vector<Polynomial> others;
    others.reserve(minimal.size() - 1);
    for (std::size_t j = 0; j < minimal.size(); ++j) {
      if (j != i) others.push_back(minimal[j]);
    }
    VectorReducerSet set(&others);
    ReduceOptions opts;
    opts.tail_reduce = true;
    opts.coeff = coeff;
    out[i] = reduce_full(ctx, minimal[i], set, opts).poly;
    GBD_CHECK_MSG(!out[i].is_zero(), "reduce_basis: minimal element reduced to zero");
  }

  std::sort(out.begin(), out.end(), [&](const Polynomial& a, const Polynomial& b) {
    return ctx.cmp(a.hmono(), b.hmono()) < 0;
  });
  return out;
}

}  // namespace gbd
