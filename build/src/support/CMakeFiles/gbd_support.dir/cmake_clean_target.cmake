file(REMOVE_RECURSE
  "libgbd_support.a"
)
