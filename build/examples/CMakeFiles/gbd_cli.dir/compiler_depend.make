# Empty compiler generated dependencies file for gbd_cli.
# This may be replaced when dependencies are built.
