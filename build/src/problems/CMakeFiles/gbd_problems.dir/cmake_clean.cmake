file(REMOVE_RECURSE
  "CMakeFiles/gbd_problems.dir/problems.cpp.o"
  "CMakeFiles/gbd_problems.dir/problems.cpp.o.d"
  "libgbd_problems.a"
  "libgbd_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
