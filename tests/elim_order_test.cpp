// Tests for the block elimination order and its use for elimination ideals
// (the graded alternative to full lex for implicitization).
#include <gtest/gtest.h>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/transition.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

Monomial mono(std::vector<std::uint32_t> e) { return Monomial(std::move(e)); }

TEST(ElimOrderTest, FirstBlockDominates) {
  // Block {x0, x1} | {x2, x3}: any positive power in the first block beats
  // any monomial confined to the second.
  Monomial x0 = mono({1, 0, 0, 0});
  Monomial big_tail = mono({0, 0, 9, 9});
  EXPECT_GT(mono_cmp(OrderKind::kElim, x0, big_tail, 2), 0);
  EXPECT_LT(mono_cmp(OrderKind::kElim, big_tail, x0, 2), 0);
  // Within the first block, grlex.
  EXPECT_GT(mono_cmp(OrderKind::kElim, mono({1, 1, 0, 0}), mono({1, 0, 0, 5}), 2), 0);
  // Equal first block: second block grlex decides.
  EXPECT_GT(mono_cmp(OrderKind::kElim, mono({1, 0, 2, 0}), mono({1, 0, 1, 0}), 2), 0);
  EXPECT_EQ(mono_cmp(OrderKind::kElim, mono({1, 0, 2, 0}), mono({1, 0, 2, 0}), 2), 0);
}

TEST(ElimOrderTest, DegenerateBlocksReduceToGrlex) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint32_t> ea(4), eb(4);
    for (auto& e : ea) e = static_cast<std::uint32_t>(rng.below(5));
    for (auto& e : eb) e = static_cast<std::uint32_t>(rng.below(5));
    Monomial a(std::move(ea)), b(std::move(eb));
    // elim_vars = 0 and elim_vars = nvars both degenerate to plain grlex.
    EXPECT_EQ(mono_cmp(OrderKind::kElim, a, b, 0), mono_cmp(OrderKind::kGrLex, a, b));
    EXPECT_EQ(mono_cmp(OrderKind::kElim, a, b, 4), mono_cmp(OrderKind::kGrLex, a, b));
  }
}

TEST(ElimOrderTest, AdmissibilityAxioms) {
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    std::vector<std::uint32_t> ea(4), eb(4), ec(4);
    for (auto& e : ea) e = static_cast<std::uint32_t>(rng.below(4));
    for (auto& e : eb) e = static_cast<std::uint32_t>(rng.below(4));
    for (auto& e : ec) e = static_cast<std::uint32_t>(rng.below(4));
    Monomial a(std::move(ea)), b(std::move(eb)), c(std::move(ec));
    EXPECT_LE(mono_cmp(OrderKind::kElim, Monomial(4), a, 2), 0);  // 1 <= a
    int ab = mono_cmp(OrderKind::kElim, a, b, 2);
    int acbc = mono_cmp(OrderKind::kElim, a * c, b * c, 2);
    EXPECT_EQ(ab < 0, acbc < 0);
    EXPECT_EQ(ab == 0, acbc == 0);
    EXPECT_EQ(ab, -mono_cmp(OrderKind::kElim, b, a, 2));
  }
}

TEST(ElimOrderTest, ParserAcceptsElimDeclaration) {
  PolySystem sys;
  std::string err;
  ASSERT_TRUE(parse_system("vars t, u, x, y; order elim 2; x - t*u; y - t^2;", &sys, &err))
      << err;
  EXPECT_EQ(sys.ctx.order, OrderKind::kElim);
  EXPECT_EQ(sys.ctx.elim_vars, 2u);
  PolySystem back;
  ASSERT_TRUE(parse_system(to_text(sys), &back, &err)) << err;
  EXPECT_EQ(back.ctx.order, OrderKind::kElim);
  EXPECT_EQ(back.ctx.elim_vars, 2u);
}

TEST(ElimOrderTest, ImplicitizationViaBlockOrder) {
  // The cuspidal cubic again, but with the graded elimination order instead
  // of full lex: the implicit equation y^2 - x^3 must still drop out as the
  // basis element free of t.
  PolySystem sys = parse_system_or_die(R"(
    vars t, x, y;
    order elim 1;
    x - t^2;
    y - t^3;
  )");
  SequentialResult res = groebner_sequential(sys);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, res.basis);
  bool found = false;
  for (const auto& g : gb) {
    bool t_free = true;
    for (const auto& term : g.terms()) t_free = t_free && term.mono.exp(0) == 0;
    if (t_free) {
      // x^3 - y^2 up to sign under this order (head is x^3: degree 3 beats
      // y^2's degree 2 in the second block).
      EXPECT_EQ(g.to_string(sys.ctx), "x^3 - y^2");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ElimOrderTest, WhitneyUmbrellaViaBlockOrder) {
  PolySystem sys = parse_system_or_die(R"(
    vars u, v, x, y, z;
    order elim 2;
    x - u*v;
    y - u;
    z - v^2;
  )");
  SequentialResult res = groebner_sequential(sys);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, res.basis);
  bool found = false;
  for (const auto& g : gb) {
    bool param_free = true;
    for (const auto& term : g.terms()) {
      param_free = param_free && term.mono.exp(0) == 0 && term.mono.exp(1) == 0;
    }
    if (param_free) {
      // Same implicit equation as lex gives; under this order the head is
      // y^2*z (degree 3 beats x^2's degree 2 within the second block).
      EXPECT_EQ(g.to_string(sys.ctx), "y^2*z - x^2");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ElimOrderTest, EnginesAgreeUnderElimOrder) {
  PolySystem sys = parse_system_or_die(R"(
    vars t, x, y;
    order elim 1;
    x - t^2 - 1;
    y - t^3 + t;
  )");
  SequentialResult seq = groebner_sequential(sys);
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, seq.basis);
  TransitionConfig unused;  // (compile-time check that headers coexist)
  (void)unused;
  ParallelConfig pcfg;
  pcfg.nprocs = 3;
  std::vector<Polynomial> par =
      reduce_basis(sys.ctx, groebner_parallel(sys, pcfg).basis);
  ASSERT_EQ(par.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(par[i].equals(ref[i])) << i;
  }
}

}  // namespace
}  // namespace gbd
