file(REMOVE_RECURSE
  "CMakeFiles/solve_system.dir/solve_system.cpp.o"
  "CMakeFiles/solve_system.dir/solve_system.cpp.o.d"
  "solve_system"
  "solve_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
