// HybridBasis — the replicate/partition continuum of the paper's §7:
// "We are designing a more flexible abstraction that performs this
// space-time trade-off on a continuum using a hybrid of partitioning and
// replication."
//
// Heads (8-byte id + small monomial) are replicated on every processor, so
// membership, criteria and NORMAL checks never need communication. Bodies
// are only *permanently* resident on `homes` consecutive processors
// starting at the owner (homes = P reproduces full replication; homes = 1
// with cache 0 is a pure partition). Every other processor may cache up to
// `cache_capacity` bodies, evicting least-recently-used; a non-resident
// body is fetched on demand up the owner-rooted tree, exactly like the
// replicated store's validation fetches. The engine stalls work that needs
// an absent body (BasisStore::pending_reducer), so bounded memory costs
// extra fetch traffic and latency, never correctness.
//
// Reuses the replicated store's wire protocol (handler ids 120..123) plus
// one extra message: the owner eagerly pushes each new body to its other
// home processors.
#pragma once

#include <list>
#include <map>

#include "basis/basis_store.hpp"
#include "machine/machine.hpp"
#include "poly/divmask.hpp"

namespace gbd {

/// Handler-id 124 (extends the 120..123 block of replicated_basis.hpp).
inline constexpr HandlerId kBaHomeBody = 124;

struct HybridConfig {
  /// Number of consecutive processors (starting at the owner) that hold
  /// each body permanently. Clamped to [1, P].
  int homes = 2;
  /// Maximum number of *non-home* bodies cached per processor; 0 disables
  /// caching entirely (every remote use is a fetch).
  std::size_t cache_capacity = 16;
};

class HybridBasis final : public BasisStore {
 public:
  HybridBasis(Proc& self, HybridConfig cfg);

  void preload(PolyId id, Polynomial poly) override;
  PolyId begin_add(Polynomial poly) override;
  bool add_done() const override { return acks_missing_ == 0; }
  /// Consistency is maintained incrementally at the head level; there is
  /// nothing batched to fetch.
  void begin_validate() override {}
  bool valid() const override { return true; }
  void prefetch(PolyId id) override;
  const Polynomial* find(PolyId id) override;
  const ReducerSet& reducer_set() const override { return reducer_view_; }
  const std::vector<std::pair<PolyId, Monomial>>& known_heads() const override {
    return known_heads_;
  }
  PolyId pending_reducer(const Monomial& m) const override;
  const BasisStats& stats() const override { return stats_; }

  /// True iff this processor is a permanent holder of id's body.
  bool is_home(PolyId id) const;
  std::size_t resident_bodies() const { return resident_.size(); }
  std::size_t cached_bodies() const { return lru_.size(); }

 private:
  class ReducerView final : public ReducerSet {
   public:
    explicit ReducerView(HybridBasis* b) : b_(b) {}
    const Polynomial* find_reducer(const Monomial& m, std::uint64_t* out_id) const override;

   private:
    HybridBasis* b_;
  };

  int tree_parent(int owner) const;
  void announce(PolyId id, Monomial head);
  void store_body(PolyId id, Polynomial poly);
  void touch(PolyId id);
  void request_body(PolyId id);

  void on_invalidate(int src, Reader& r);
  void on_fetch(int src, Reader& r);
  void on_body(Reader& r, bool as_home);

  Proc& self_;
  HybridConfig cfg_;
  BasisStats stats_;

  std::vector<std::pair<PolyId, Monomial>> known_heads_;
  // Parallel to known_heads_: divmask of each head, so the reducer scan
  // rejects non-divisors before even looking up residency.
  DivMaskRuler ruler_;
  std::vector<std::uint64_t> head_masks_;
  std::map<PolyId, Monomial> head_index_;
  std::map<PolyId, Polynomial> resident_;
  // LRU order of cached (non-home) resident ids; front = oldest.
  std::list<PolyId> lru_;
  std::map<PolyId, std::list<PolyId>::iterator> lru_pos_;

  std::map<PolyId, std::vector<int>> pending_requesters_;
  std::map<PolyId, bool> fetch_in_flight_;

  std::uint32_t next_local_seq_ = 0;
  int acks_missing_ = 0;
  ReducerView reducer_view_;
};

}  // namespace gbd
