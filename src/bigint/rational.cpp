#include "bigint/rational.hpp"

#include "support/check.hpp"

namespace gbd {

Rational::Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
  GBD_CHECK_MSG(!den_.is_zero(), "Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

bool Rational::parse(std::string_view s, Rational* out) {
  std::size_t slash = s.find('/');
  BigInt num, den(1);
  if (slash == std::string_view::npos) {
    if (!BigInt::parse(s, &num)) return false;
  } else {
    if (!BigInt::parse(s.substr(0, slash), &num)) return false;
    if (!BigInt::parse(s.substr(slash + 1), &den)) return false;
    if (den.is_zero()) return false;
  }
  *out = Rational(std::move(num), std::move(den));
  return true;
}

Rational Rational::from_string(std::string_view s) {
  Rational r;
  GBD_CHECK_MSG(parse(s, &r), "Rational::from_string: malformed literal");
  return r;
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational Rational::inverse() const {
  GBD_CHECK_MSG(!is_zero(), "Rational::inverse of zero");
  return Rational(den_, num_);
}

Rational Rational::operator+(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  return Rational(num_ * rhs.num_, den_ * rhs.den_);
}

Rational Rational::operator/(const Rational& rhs) const {
  GBD_CHECK_MSG(!rhs.is_zero(), "Rational division by zero");
  return Rational(num_ * rhs.den_, den_ * rhs.num_);
}

int Rational::cmp(const Rational& rhs) const {
  return (num_ * rhs.den_).cmp(rhs.num_ * den_);
}

std::string Rational::to_string() const {
  if (den_.is_one()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

double Rational::to_double() const {
  // Scale into int64 range via bit shifts; adequate for diagnostics.
  BigInt n = num_, d = den_;
  int exp2 = 0;
  while (!n.fits_int64()) {
    n = n >> 32;
    exp2 += 32;
  }
  while (!d.fits_int64()) {
    d = d >> 32;
    exp2 -= 32;
  }
  if (d.is_zero()) return 0.0;
  double v = static_cast<double>(n.to_int64()) / static_cast<double>(d.to_int64());
  while (exp2 >= 32) {
    v *= 4294967296.0;
    exp2 -= 32;
  }
  while (exp2 <= -32) {
    v /= 4294967296.0;
    exp2 += 32;
  }
  return v;
}

}  // namespace gbd
