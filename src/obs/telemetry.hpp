// Live telemetry pipeline — streaming per-processor metric snapshots.
//
// PR 4's tracer/metrics layer answers every question *after* the run; this
// layer answers them *during* it. Each logical processor periodically
// (virtual-time ticks on SimMachine, steady-clock ticks on Thread/Socket)
// samples a small fixed vector of counters and gauges — pair-queue depth,
// current degree, S-pairs retired/zeroed, message and idle totals — plus
// log-bucketed latency histograms (reduce-span durations, lock waits, ack
// RTT), and encodes them into a compact telemetry frame. Frames flow to an
// aggregator (in-process on Sim/Thread; rank 0 via best-effort kTelemetry
// wire frames on SocketMachine) that maintains ring-buffered time series,
// merged histograms and a derived monotone progress estimate.
//
// Loss tolerance is the design center. Telemetry frames are UNRELIABLE by
// construction: on the socket backend they are never acked, never
// retransmitted, and never counted by the Mattern quiescence layer — a
// chaos-dropped snapshot is simply gone. To make that loss harmless the
// codec is delta+keyframe: every kKeyframeEvery-th frame carries absolute
// values, the rest carry wrapping u64 deltas against the sender's previous
// sample (wrapping subtraction is lossless mod 2^64, so decreasing gauges
// round-trip exactly). The aggregator applies a delta only when the frame's
// snapshot seq is contiguous with the last one applied; on a gap it counts
// the missing frames (telemetry.dropped_frames) and waits for the next
// keyframe to resynchronize. Histograms ride every frame as absolute sparse
// bucket lists, so losing one costs timeline resolution, never correctness.
//
// Determinism: sampling never charges virtual time, never sends engine
// messages and never touches quiescence counters, so a SimMachine run with
// telemetry attached is bit-identical (virtual clocks, traces, bases) to
// the same run without it — asserted by telemetry_test and gated in CI.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "obs/tracer.hpp"
#include "support/serialize.hpp"

namespace gbd {

/// Sampled value slots. Fixed order is part of the frame format; append only.
enum class TeleKey : std::uint8_t {
  kTime = 0,        ///< sampler's clock at the tick (virtual units / steady ns)
  kQueueDepth,      ///< local pair-queue depth + suspended + stalled + pending (gauge)
  kDegree,          ///< degree of the most recent task (gauge)
  kBasisSize,       ///< local replica size (gauge)
  kSpairsRetired,   ///< S-pairs fully processed (cumulative)
  kSpairsZeroed,    ///< S-pairs that reduced to zero (cumulative)
  kMsgsSent,        ///< engine envelopes sent (cumulative)
  kMsgsRecv,        ///< engine envelopes received (cumulative)
  kIdleUnits,       ///< time blocked in wait() (cumulative)
  kWorkUnits,       ///< reduction work performed (cumulative)
  kTracerDropped,   ///< trace ring overwrites so far (cumulative)
  kCount
};
constexpr std::size_t kTeleKeyCount = static_cast<std::size_t>(TeleKey::kCount);

/// One sample: value per TeleKey slot.
using TeleSample = std::array<std::uint64_t, kTeleKeyCount>;

inline std::uint64_t& tele_at(TeleSample& s, TeleKey k) {
  return s[static_cast<std::size_t>(k)];
}
inline std::uint64_t tele_get(const TeleSample& s, TeleKey k) {
  return s[static_cast<std::size_t>(k)];
}

/// Short identifier used in JSONL output ("queue", "retired", ...).
const char* tele_key_name(TeleKey k);

/// Latency histogram slots carried by every frame.
enum class TeleHist : std::uint8_t {
  kReduce = 0,   ///< reduce-span durations (virtual units / ns)
  kLockWait,     ///< lock request -> grant (virtual units / ns)
  kAckRtt,       ///< reliable-frame ack round trip (ms; socket backend only)
  kCount
};
constexpr std::size_t kTeleHistCount = static_cast<std::size_t>(TeleHist::kCount);

const char* tele_hist_name(TeleHist h);

/// Power-of-two-bucketed histogram: bucket i counts values whose bit width
/// is i (value 0 lands in bucket 0). 64 buckets cover the whole u64 range.
struct LogHistogram {
  std::array<std::uint64_t, 64> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v);
  void merge(const LogHistogram& o);
  /// Inclusive lower bound of bucket i's value range.
  static std::uint64_t bucket_floor(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t(1) << (i - 1);
  }

  /// Estimated q-quantile (q in [0,1]) assuming uniform spread within the
  /// bucket holding the q·count-th sample — at worst a factor-2 bucketing
  /// error, which is what the serve daemon's p50/p99 stats need, not exact
  /// order statistics. Returns 0 on an empty histogram; quantile(1.0) == max.
  std::uint64_t quantile(double q) const;

  /// Absolute sparse form: count/sum/max then (idx, count) per nonzero bucket.
  void encode(Writer& w) const;
  static LogHistogram decode(Reader& r);
};

/// Telemetry frame payload format version (first payload byte).
constexpr std::uint8_t kTelemetryFormat = 1;
/// Every N-th snapshot is a keyframe carrying absolute values.
constexpr std::uint64_t kTelemetryKeyframeEvery = 8;

struct TelemetryConfig {
  /// Tick interval on the simulator, in virtual work units.
  std::uint64_t sim_interval_units = 50'000;
  /// Tick interval on real-clock backends, in milliseconds.
  int interval_ms = 100;
  /// Samples retained per rank in the aggregator's time-series ring.
  std::size_t series_capacity = 512;
};

/// One processor's telemetry producer. Owner-thread-only, like ProcTracer:
/// the engine registers a sampler callback and records histogram values; the
/// machine backend decides when a tick is due and where the frame goes.
class ProcTelemetry {
 public:
  /// Callback filling the engine-owned TeleSample slots (queue depth,
  /// degree, basis size, retired/zeroed, work units) at each tick.
  void set_sampler(std::function<void(TeleSample&)> fn) { sampler_ = std::move(fn); }

  LogHistogram& hist(TeleHist h) { return hists_[static_cast<std::size_t>(h)]; }
  const LogHistogram& hist(TeleHist h) const { return hists_[static_cast<std::size_t>(h)]; }

  /// True when a tick is due at time `now` (intervals set by Telemetry).
  bool due(std::uint64_t now) const {
    return interval_ != 0 && (seq_ == 0 || now - last_tick_ >= interval_);
  }

  /// Take a snapshot and encode the telemetry frame payload: machine-owned
  /// slots come from `now`/`comm`/`tracer_dropped`, engine slots from the
  /// sampler. Advances the snapshot seq and the delta baseline.
  std::vector<std::uint8_t> sample(int proc, std::uint64_t now, const ProcCommStats& comm,
                                   std::uint64_t tracer_dropped);

  std::uint64_t snapshots() const { return seq_; }

  /// Last encoded sample — plain POD, safe to read from a signal handler
  /// (possibly torn if the owner thread is mid-tick; acceptable for a
  /// post-mortem dump).
  const TeleSample& last_sample() const { return prev_; }

 private:
  friend class Telemetry;

  std::function<void(TeleSample&)> sampler_;
  std::array<LogHistogram, kTeleHistCount> hists_{};
  TeleSample prev_{};              ///< delta baseline (last encoded sample)
  std::uint64_t seq_ = 0;          ///< snapshots taken (wire seq starts at 1)
  std::uint64_t last_tick_ = 0;
  std::uint64_t interval_ = 0;     ///< 0 until start_run configures the domain
};

/// Rank-0-side (or in-process) sink: per-rank ring-buffered series, merged
/// histograms, loss accounting and the derived progress estimate.
class TelemetryAggregator {
 public:
  struct RankState {
    std::uint64_t last_seq = 0;   ///< highest snapshot seq applied
    std::uint64_t frames = 0;     ///< frames accepted
    std::uint64_t dropped = 0;    ///< seq gaps observed (frames lost in flight)
    std::uint64_t stale = 0;      ///< duplicate / out-of-date frames ignored
    bool synced = false;          ///< values are absolute-correct (keyframe seen,
                                  ///< no unhealed gap since)
    TeleSample values{};          ///< latest absolute sample (valid when synced)
    std::deque<TeleSample> series;  ///< ring of absolute samples, oldest first
    std::array<LogHistogram, kTeleHistCount> hists{};  ///< latest absolute hists
  };

  void reset(int nprocs, std::size_t series_capacity);

  /// Ingest one telemetry frame payload. Malformed or stale frames are
  /// counted and ignored, never fatal — this is the untrusted lossy path.
  void ingest(Reader& r);

  int nprocs() const { return static_cast<int>(ranks_.size()); }
  const RankState& rank(int r) const { return ranks_[static_cast<std::size_t>(r)]; }

  /// Frames known lost across all ranks (from seq gaps).
  std::uint64_t dropped_frames() const;
  std::uint64_t frames_received() const;
  std::uint64_t malformed_frames() const { return malformed_; }

  /// Monotone fraction-done estimate in [0,1]: retired+zeroed over
  /// retired+zeroed+queued, never decreasing across updates.
  double progress() const { return progress_; }

  /// Histogram h merged across every rank's latest snapshot.
  LogHistogram merged_hist(TeleHist h) const;

  /// One JSONL line: progress, loss counters, per-rank latest values and
  /// merged histogram summaries. Valid standalone JSON.
  std::string snapshot_json() const;

 private:
  std::vector<RankState> ranks_;
  std::size_t series_cap_ = 0;
  std::uint64_t malformed_ = 0;
  double progress_ = 0.0;
};

/// Whole-run telemetry: one ProcTelemetry per processor plus the aggregator.
/// Attach via Machine::set_telemetry before run(); must outlive the run.
/// Producer sides are owner-thread-only; ingest/aggregator access is
/// serialized by an internal mutex (on the socket backend only rank 0's
/// process ever ingests).
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig cfg = {}) : cfg_(cfg) {}

  /// Called by the machine at run start: sizes per-proc state and picks the
  /// tick interval for the clock domain.
  void start_run(int nprocs, ClockDomain domain);

  ProcTelemetry& at(int proc) { return procs_[static_cast<std::size_t>(proc)]; }
  const ProcTelemetry& at(int proc) const { return procs_[static_cast<std::size_t>(proc)]; }
  int nprocs() const { return static_cast<int>(procs_.size()); }
  const TelemetryConfig& config() const { return cfg_; }

  /// Feed one frame payload to the aggregator (thread-safe). Fires the
  /// on_update callback (under the same lock — the callback must not call
  /// back into this Telemetry).
  void ingest_bytes(const std::uint8_t* data, std::size_t n);

  /// Called after each ingested frame — the live dashboard hook.
  void set_on_update(std::function<void(const TelemetryAggregator&)> fn) {
    on_update_ = std::move(fn);
  }

  /// Thread-safe aggregator reads.
  std::uint64_t dropped_frames() const;
  double progress() const;
  std::string snapshot_json() const;

  /// Unlocked aggregator access — only valid once the run has joined.
  const TelemetryAggregator& aggregator() const { return agg_; }

 private:
  TelemetryConfig cfg_;
  std::vector<ProcTelemetry> procs_;
  TelemetryAggregator agg_;
  std::function<void(const TelemetryAggregator&)> on_update_;
  mutable std::mutex mu_;
};

}  // namespace gbd
