// Algorithm S — Buchberger's sequential algorithm exactly as in Figure 1 of
// the paper, with the traditional (normal) selection heuristic and
// Buchberger's pair elimination criteria.
//
// This engine is the "best sequential implementation" baseline of Table 3,
// the source of the added/zeroed counts of Table 2, and (with per-reducer
// accounting enabled) the source of the pipeline-parallelism bounds of
// Table 1.
#pragma once

#include "gb/engine_common.hpp"
#include "io/parse.hpp"

namespace gbd {

/// Per-reducer work attribution for the replicate-vs-partition analysis of
/// §4.1.1: stage_work[k] is the total reduction work in which basis element
/// k was the reducer — i.e. the busy time of pipeline stage k if the basis
/// were partitioned one reducer per stage (Table 1).
struct ReducerAccounting {
  std::vector<std::uint64_t> stage_work;
  std::uint64_t total_reduction_work = 0;
  std::uint64_t max_step_cost = 0;

  /// Total work / max stage work: the pipeline-parallelism upper bound of
  /// Table 1 ("Maximum Parallelism").
  double pipeline_parallelism() const;
  std::uint64_t max_stage_work() const;
};

struct SequentialResult : GbResult {
  ReducerAccounting reducers;
};

/// Compute a Gröbner basis of sys.polys. Inputs are canonicalized (primitive,
/// zero generators dropped); the returned basis contains the surviving inputs
/// followed by every added normal form, none of them zero.
SequentialResult groebner_sequential(const PolySystem& sys, const GbConfig& cfg = {});

}  // namespace gbd
