// The virtual distributed-memory machine.
//
// This is our substitute for the CM-5 + active-message layer the paper ran
// on. A Machine owns P logical processors with *private* address spaces;
// the only way data crosses processors is an active message: a typed,
// byte-payload message whose registered handler runs on the destination
// processor when that processor polls its network. This mirrors CMAM
// semantics (handlers run at poll time on the compute processor; no DMA,
// no preemption), which is exactly the model §5 of the paper programs to.
//
// Two implementations share this interface:
//  - ThreadMachine (thread_machine.hpp): one OS thread per logical
//    processor, real concurrency, wall-clock time. Used to demonstrate the
//    algorithms under true asynchrony.
//  - SimMachine (sim_machine.hpp): deterministic discrete-event simulation.
//    Each processor has a virtual clock advanced by the work it performs
//    (term-operation units charged by the polynomial kernels) and by a
//    latency/bandwidth model for every message. All performance experiments
//    run here; see DESIGN.md for why this substitution preserves the
//    paper's claims.
//
// Worker protocol: Machine::run(worker) invokes worker(Proc&) once per
// processor. A worker first registers its handlers via Proc::on, then
// alternates computing with poll()/wait(). Handlers run only inside the
// destination's poll()/wait() and must not call poll(), wait() or run
// blocking loops themselves; sending from a handler is allowed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/serialize.hpp"

namespace gbd {

/// Application-chosen message type tag (dense small integers).
using HandlerId = std::uint32_t;

struct ChaosConfig;      // machine/chaos.hpp
class InvariantMonitor;  // machine/invariants.hpp
class ProcTracer;        // obs/tracer.hpp
class Tracer;            // obs/tracer.hpp
class ProcTelemetry;     // obs/telemetry.hpp
class Telemetry;         // obs/telemetry.hpp

class Proc;

/// Handler invoked on the destination processor: (self, source, payload).
using Handler = std::function<void(Proc&, int, Reader&)>;

/// Per-processor communication statistics.
struct ProcCommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t idle_units = 0;  ///< virtual time spent blocked in wait()
};

/// Per-processor mailbox/delivery behavior. On ThreadMachine the sender-side
/// fields are maintained under the destination mailbox's mutex and the
/// owner-side fields only by the owning thread — both are safe to read once
/// run() has joined every worker. SimMachine populates the equivalent
/// counters from its envelope queues (notifies/lock_contended/cv_waits stay
/// zero there: the simulator has no condvars and no lock contention), so
/// both backends report the same stats shape.
struct MailboxStats {
  // Sender side (indexed by *destination* mailbox).
  std::uint64_t enqueues = 0;        ///< messages pushed into this mailbox
  std::uint64_t notifies = 0;        ///< pushes that found the owner asleep and woke it
  std::uint64_t lock_contended = 0;  ///< mailbox-mutex acquisitions that had to block
  // Owner side.
  std::uint64_t cv_waits = 0;          ///< times the owner blocked on the condvar
  std::uint64_t wakeups = 0;           ///< waits that ended with work delivered (not shutdown)
  std::uint64_t drains = 0;            ///< poll() rounds that delivered >= 1 message
  std::uint64_t drained_messages = 0;  ///< total messages taken across drains
  std::uint64_t max_drain_batch = 0;   ///< largest single drain
};

/// One logical processor's view of the machine. Only ever touched by its own
/// worker thread (and by handlers running inside its poll/wait).
class Proc {
 public:
  virtual ~Proc() = default;

  virtual int id() const = 0;
  virtual int nprocs() const = 0;

  /// Register the handler for a message type. All registration must happen
  /// before this processor's first send()/poll()/wait(); unknown incoming
  /// handler ids abort. ThreadMachine additionally enforces a machine-wide
  /// registration barrier: the first send/poll/wait on any processor blocks
  /// until every processor has finished registering (i.e. performed its own
  /// first communication call, or returned from its worker), so a fast
  /// processor's message can never race a slow processor's on().
  virtual void on(HandlerId h, Handler fn) = 0;

  /// Asynchronous send; never blocks. Self-sends are allowed (delivered on a
  /// later poll). Ordering is FIFO per (src, dst) pair.
  virtual void send(int dst, HandlerId h, std::vector<std::uint8_t> payload) = 0;

  /// Deliver every message available now; returns how many were delivered.
  virtual std::size_t poll() = 0;

  /// Block until at least one message has been delivered (true), or the
  /// whole machine is quiescent — every processor blocked or finished and no
  /// message in flight — in which case every waiter returns false. Workers
  /// use `false` as the shutdown signal.
  virtual bool wait() = 0;

  /// Add explicit work to this processor's clock (most work is charged
  /// implicitly through CostCounter by the algebra kernels).
  virtual void charge(std::uint64_t units) = 0;

  /// Pause for roughly `units` work-units' worth of time, or until traffic
  /// arrives — the idle-throttling primitive (steal backoff). On the
  /// simulator this is exactly charge(); on real threads it is a timed
  /// sleep that a sender's notify cuts short. Unlike wait(), a processor in
  /// backoff still counts as busy for quiescence detection (it will resume
  /// and may send), so backoff can never cause a premature shutdown.
  virtual void backoff(std::uint64_t units) { charge(units); }

  /// How many worker threads this processor may spin up for an elimination
  /// kernel (poly/echelon.hpp nthreads) on top of its own thread. 1 = run
  /// the kernel inline. The simulator grants freely — its cost convention
  /// (charge the slowest lane's total, the parallel makespan) keeps virtual
  /// time deterministic for any grant; real backends grant what the host
  /// has spare so P procs × L lanes never oversubscribe. Engines clamp
  /// their configured matrix_threads by this.
  virtual std::size_t kernel_lanes() const { return 1; }

  /// Current time: virtual units (SimMachine) or wall nanoseconds
  /// (ThreadMachine).
  virtual std::uint64_t now() = 0;

  /// Cooperative scheduling point with no message delivery.
  virtual void yield() = 0;

  /// Chaos / fault-injection knobs active on this machine, or nullptr when
  /// none. Protocol layers consult this for seeded application-level fault
  /// injection (the machine itself applies the schedule-level knobs).
  virtual const ChaosConfig* chaos() const { return nullptr; }

  const ProcCommStats& comm_stats() const { return comm_; }

  /// This processor's event sink, or nullptr when tracing is off. Engine
  /// layers emit spans through this (obs/span.hpp); the machine attaches it
  /// from the Tracer set on the Machine before running the worker.
#ifdef GBD_DISABLE_TRACING
  ProcTracer* tracer() const { return nullptr; }
#else
  ProcTracer* tracer() const { return tracer_; }
#endif

  /// This processor's telemetry producer, or nullptr when live telemetry is
  /// off. The engine registers its sampler and records latency histograms
  /// through this; the machine backend owns the tick cadence and ships the
  /// encoded frames (obs/telemetry.hpp).
  ProcTelemetry* telemetry() const { return telemetry_; }

 protected:
  ProcCommStats comm_;
  ProcTracer* tracer_ = nullptr;
  ProcTelemetry* telemetry_ = nullptr;
};

/// Machine-wide run statistics.
struct MachineStats {
  std::uint64_t makespan = 0;  ///< max processor finish time (virtual or wall ns)
  std::vector<ProcCommStats> per_proc;
  /// Per-processor mailbox counters; both backends populate these and set
  /// has_mailbox_stats, so downstream consumers see one shape.
  std::vector<MailboxStats> mailbox;
  bool has_mailbox_stats = false;
};

/// A P-processor machine executing one worker function per processor.
class Machine {
 public:
  virtual ~Machine() = default;
  virtual int nprocs() const = 0;
  /// Run worker(proc) on every processor to completion and return stats.
  virtual MachineStats run(const std::function<void(Proc&)>& worker) = 0;

  /// Attach a registry of global invariant checks. The machine runs them at
  /// implementation-defined safe points (see invariants.hpp); the monitor
  /// must outlive run(). Pass nullptr to detach.
  void set_monitor(InvariantMonitor* m) { monitor_ = m; }
  InvariantMonitor* monitor() const { return monitor_; }

  /// Attach an event tracer (obs/tracer.hpp). run() resets it for nprocs(),
  /// hands each processor its ProcTracer, and stamps the makespan at the
  /// end; the tracer must outlive run(). Pass nullptr to detach. With no
  /// tracer attached every emission site is a single null test (and with
  /// GBD_DISABLE_TRACING they compile out entirely).
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  /// Attach a live telemetry pipeline (obs/telemetry.hpp). run() resets it
  /// for nprocs(), hands each processor its ProcTelemetry, and ticks each
  /// processor's sampler on the backend's clock (virtual-time intervals on
  /// the simulator — with zero cost charged, so attaching telemetry never
  /// perturbs a deterministic run — steady-clock intervals elsewhere).
  /// Must outlive run(). Pass nullptr to detach.
  void set_telemetry(Telemetry* t) { telemetry_ = t; }
  Telemetry* telemetry() const { return telemetry_; }

 protected:
  InvariantMonitor* monitor_ = nullptr;
  Tracer* tracer_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace gbd
