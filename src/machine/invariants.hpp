// Protocol invariant checkers, registered on the machine.
//
// An InvariantMonitor holds named global checks — functions that inspect the
// application state of *every* logical processor and return an empty string
// when the invariant holds, or a description of the violation. The machine
// runs the registry at points where a global read is safe:
//
//   SimMachine    — after message deliveries (the token scheduler runs one
//                   processor at a time, so all other processors are parked
//                   at scheduling points with their state quiescent) and
//                   once more after global quiescence;
//   ThreadMachine — only after all worker threads have joined (mid-run
//                   global reads would race under real concurrency).
//
// Violations are *recorded*, not aborted on: a fuzz driver wants to finish
// the run, report the replay string, and shrink the failing configuration.
// Repeated failures of the same check are collapsed into a count so a
// violated invariant in a hot loop cannot flood memory. Application hooks
// (e.g. a task-queue dequeue observer) may also report violations directly
// via note(); all entry points are mutex-guarded so the monitor is safe to
// share with ThreadMachine handlers too.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace gbd {

class InvariantMonitor {
 public:
  /// A global check: returns "" when the invariant holds, else a violation
  /// description. Must only read state — never send, poll or block.
  using Check = std::function<std::string()>;

  /// `period`: run the full registry every period-th maybe_check() call.
  explicit InvariantMonitor(std::uint64_t period = 64);

  void add_check(std::string name, Check fn);

  /// Called by the machine at every delivery; runs the registry every
  /// period-th call. Cheap when not due.
  void maybe_check();

  /// Run every registered check now (quiescence, announce hooks, tests).
  void run_all(const char* when);

  /// Report a violation observed directly by an application hook.
  void note(const std::string& name, const std::string& detail);

  bool ok() const;
  /// One formatted line per distinct violated invariant (first detail plus a
  /// repeat count).
  std::vector<std::string> violations() const;
  std::uint64_t sweeps_run() const;

 private:
  struct Entry {
    std::string name;
    Check fn;
  };
  struct Violation {
    std::string name;
    std::string first_detail;
    std::uint64_t count = 0;
  };

  void record_locked(const std::string& name, const std::string& detail);

  mutable std::mutex mu_;
  std::vector<Entry> checks_;
  std::vector<Violation> violations_;
  std::uint64_t period_;
  std::uint64_t calls_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace gbd
