// Divisibility bitmasks ("divmasks") for fast reducer lookup.
//
// find_reducer is the innermost loop of reduction: every cancellation step
// scans candidate basis heads asking "does this head divide that monomial?".
// The full test walks both exponent vectors; a divmask compresses each
// monomial's exponent vector into a 64-bit signature so that almost all
// non-divisors are dismissed by one AND and one compare — the classic filter
// of the Singular / Macaulay2 lineage.
//
// Layout: a DivMaskRuler splits the 64 mask bits into contiguous per-variable
// fields of `bits(v)` bits each (evenly, first variables get the spare bits;
// variables beyond the 64th get zero bits and simply don't participate). Bit
// j of variable v's field is set iff exp(v) >= j+1, i.e. the field holds
// min(exp(v), bits(v)) low ones. Then for any monomials a, b
//
//     a | b   implies   mask(a) & ~mask(b) == 0,
//
// because exp_a(v) <= exp_b(v) forces min(exp_a, k) <= min(exp_b, k) and a
// prefix of ones can only grow. The converse is false — the filter has false
// positives (saturated fields, dropped variables) but never false negatives,
// so callers run the exact Monomial::divides test on survivors and reducer
// selection is bit-for-bit unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "poly/monomial.hpp"

namespace gbd {

class DivMaskRuler {
 public:
  DivMaskRuler() = default;
  explicit DivMaskRuler(std::size_t nvars);

  std::size_t nvars() const { return bits_.size(); }

  /// Signature of m under this ruler. Monomials compared through masks must
  /// come from the same ruler (i.e. the same nvars).
  std::uint64_t mask(const Monomial& m) const;

  /// Necessary condition for "divisor | multiple": every exponent-threshold
  /// bit the divisor sets must also be set by the multiple.
  static bool may_divide(std::uint64_t divisor_mask, std::uint64_t multiple_mask) {
    return (divisor_mask & ~multiple_mask) == 0;
  }

 private:
  std::vector<std::uint8_t> bits_;    // field width per variable (may be 0)
  std::vector<std::uint8_t> offset_;  // field start bit per variable
};

/// Counters for the find_reducer hot path, thread-local so the simulated
/// engines (which run many logical processors on one thread) aggregate
/// naturally and benchmarks can read them without plumbing.
struct FindReducerStats {
  std::uint64_t calls = 0;         ///< find_reducer invocations
  std::uint64_t probes = 0;        ///< candidate heads examined (mask test included)
  std::uint64_t mask_rejects = 0;  ///< candidates dismissed by the divmask alone
  std::uint64_t divides_calls = 0; ///< full exponent-vector comparisons performed
};

FindReducerStats& find_reducer_stats();
void reset_find_reducer_stats();

}  // namespace gbd
