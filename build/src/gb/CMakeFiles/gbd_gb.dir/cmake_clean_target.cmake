file(REMOVE_RECURSE
  "libgbd_gb.a"
)
