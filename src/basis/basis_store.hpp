// The basis-storage abstraction the GL-P engine programs against.
//
// §4.1.2's interface (AddToSet / Validate / Valid? / ForAll) plus the
// operations the engine's scheduling needs (prefetch for suspended pairs,
// pending-reducer detection for stalling). Two policies implement it:
//
//  - ReplicatedBasis (replicated_basis.hpp): the paper's main design —
//    every processor eventually holds every body.
//  - HybridBasis (hybrid_basis.hpp): the paper's §7 proposal — heads are
//    replicated everywhere (they are small), but each body permanently
//    lives only on a configurable number of "home" processors; everyone
//    else fetches on demand into a bounded, evicting cache. This trades
//    extra communication for bounded memory: the space-time continuum
//    between full replication and Siegl-style partitioning.
//
// Knowledge of *membership* (ids + head monomials) is always complete up to
// in-flight invalidations on both stores; what varies is body residency.
#pragma once

#include <cstdint>
#include <vector>

#include "poly/reduce.hpp"
#include "support/check.hpp"

namespace gbd {

/// Unique polynomial identity: owner processor in the top 32 bits, the
/// owner's local sequence number below — "eight byte unique identifiers".
using PolyId = std::uint64_t;

inline PolyId make_poly_id(int owner, std::uint32_t seq) {
  return (static_cast<PolyId>(static_cast<std::uint32_t>(owner)) << 32) | seq;
}
inline int poly_id_owner(PolyId id) { return static_cast<int>(id >> 32); }
inline std::uint32_t poly_id_seq(PolyId id) { return static_cast<std::uint32_t>(id); }

struct BasisStats {
  std::uint64_t invalidations_sent = 0;  ///< per-destination id announcements (logical)
  std::uint64_t fetches_sent = 0;        ///< logical body requests issued
  std::uint64_t bodies_received = 0;
  std::uint64_t bodies_served = 0;   ///< fetch requests answered locally
  std::uint64_t bodies_forwarded = 0;
  std::uint64_t evictions = 0;       ///< hybrid only
  std::size_t max_resident = 0;      ///< high-water mark of resident bodies
  // Wire-batching envelope counters (zero when batching is off): the
  // logical counters above keep their meaning, these count the coalesced
  // envelopes actually put on the wire.
  std::uint64_t invalidation_batches = 0;
  std::uint64_t fetch_batches = 0;
  std::uint64_t body_batches = 0;
};

/// Wire-level batching knobs for the basis protocol (PR 3). Off by default:
/// the one-message-per-id path is the differential oracle the batched path
/// is tested against.
struct BasisWireConfig {
  /// Coalesce the invalidation broadcast of a whole add batch into one
  /// multi-id envelope per destination (enables the engine's multi-add
  /// lock rounds via add_open/add_push/add_close).
  bool batch_invalidations = false;
  /// Coalesce validation fetches by tree parent and body replies by
  /// requester into multi-id envelopes.
  bool batch_fetches = false;

  bool any() const { return batch_invalidations || batch_fetches; }
};

class BasisStore {
 public:
  virtual ~BasisStore() = default;

  /// Install an input polynomial present on every processor from the start.
  virtual void preload(PolyId id, Polynomial poly) = 0;

  /// AddToSet, split-phase: store locally, broadcast the announcement, and
  /// collect acknowledgements; poll until add_done().
  virtual PolyId begin_add(Polynomial poly) = 0;
  virtual bool add_done() const = 0;

  /// Batched AddToSet (optional; stores that return false from
  /// supports_batch_add keep the one-at-a-time contract). add_open() starts
  /// a batch; each add_push() stores the body locally — immediately visible
  /// to find()/reducer_set(), so later batch members reduce against earlier
  /// ones — and add_close() broadcasts ONE multi-id invalidation envelope
  /// per destination and starts a single ack round for the whole batch;
  /// add_done() turns true when that round completes.
  virtual bool supports_batch_add() const { return false; }
  virtual void add_open() { GBD_CHECK_MSG(false, "batched add unsupported by this store"); }
  virtual PolyId add_push(Polynomial) {
    GBD_CHECK_MSG(false, "batched add unsupported by this store");
    return 0;
  }
  virtual void add_close() { GBD_CHECK_MSG(false, "batched add unsupported by this store"); }

  /// Validate, split-phase: start whatever fetches this store's consistency
  /// policy wants; poll until valid().
  virtual void begin_validate() = 0;
  virtual bool valid() const = 0;

  /// Request one specific body (suspended pairs, stalled reducts). No-op if
  /// resident or already in flight.
  virtual void prefetch(PolyId id) = 0;

  /// Body lookup; nullptr when not resident here (fetch with prefetch).
  virtual const Polynomial* find(PolyId id) = 0;

  /// ForAll as a ReducerSet over the *resident* bodies; reducer ids are
  /// PolyIds.
  virtual const ReducerSet& reducer_set() const = 0;

  /// Every announced element (id, head monomial), in local announcement
  /// order — complete enough for criteria and pair creation under the lock.
  virtual const std::vector<std::pair<PolyId, Monomial>>& known_heads() const = 0;

  /// An announced element whose head divides m but whose body is not
  /// resident (0 if none): the reducer the engine should wait for instead
  /// of taking the lock with a doomed or improvable reduct. (0 is a safe
  /// sentinel: id 0 is the first preloaded input, resident everywhere.)
  virtual PolyId pending_reducer(const Monomial& m) const = 0;

  virtual const BasisStats& stats() const = 0;
};

}  // namespace gbd
