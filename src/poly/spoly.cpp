#include "poly/spoly.hpp"

#include "support/check.hpp"

namespace gbd {

Polynomial spoly(const PolyContext& ctx, const Polynomial& p1, const Polynomial& p2) {
  GBD_CHECK_MSG(!p1.is_zero() && !p2.is_zero(), "spoly of zero polynomial");
  const Monomial& m1 = p1.hmono();
  const Monomial& m2 = p2.hmono();
  Monomial h = Monomial::hcf(m1, m2);
  BigInt kg = BigInt::gcd(p1.hcoef(), p2.hcoef());
  BigInt k1 = p1.hcoef() / kg;
  BigInt k2 = p2.hcoef() / kg;
  Polynomial s = p1.mul_term(k2, m2 / h).sub(ctx, p2.mul_term(k1, m1 / h));
  s.make_primitive();
  return s;
}

Monomial pair_lcm(const Polynomial& p1, const Polynomial& p2) {
  return Monomial::lcm(p1.hmono(), p2.hmono());
}

}  // namespace gbd
