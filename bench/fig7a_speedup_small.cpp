// Figure 7(a) — speedup on the small inputs arnborg4 and trinks1, best of 5
// runs, with the shared-memory (Vidal-style) engine's best curve alongside.
//
// As in the paper, speedups are the ratio of the parallel program's
// one-processor time to its P-processor time (scaled through (1,1)); small
// problems are limited by startup/termination transients.
#include "bench_common.hpp"
#include "gb/shared_memory.hpp"

using namespace gbd;

int main() {
  bench::print_header("Figure 7(a): speedup on small inputs (best of 5 runs)",
                      "Distributed GL-P vs the shared-memory baseline. Paper shape: rising but\n"
                      "clearly sublinear curves; the distributed version at least matches the\n"
                      "shared-memory one.");

  int seeds = bench::full_size() ? 5 : 3;
  std::vector<int> procs = {1, 2, 4, 8, 16};

  for (const char* name : {"arnborg4", "trinks1"}) {
    PolySystem sys = load_problem(name);
    std::printf("-- %s --\n", name);
    TextTable table({"P", "GL-P makespan", "GL-P speedup", "Shared makespan", "Shared speedup"});

    double glp_base = 0, shm_base = 0;
    for (int p : procs) {
      ParallelConfig cfg;
      cfg.gb = bench::paper_era_criteria();
      cfg.nprocs = p;
      ParallelResult best = bench::best_of_seeds(sys, cfg, p == 1 ? 1 : seeds);

      SharedMemoryResult shm_best;
      bool first = true;
      for (int s = 1; s <= (p == 1 ? 1 : seeds); ++s) {
        SharedMemoryConfig sc;
        sc.gb = bench::paper_era_criteria();
        sc.nprocs = p;
        sc.seed = static_cast<std::uint64_t>(s);
        SharedMemoryResult r = groebner_shared(sys, sc);
        if (first || r.makespan < shm_best.makespan) shm_best = r;
        first = false;
      }

      if (p == 1) {
        glp_base = static_cast<double>(best.machine.makespan);
        shm_base = static_cast<double>(shm_best.makespan);
      }
      table.add_row({std::to_string(p), std::to_string(best.machine.makespan),
                     fmt(glp_base / static_cast<double>(best.machine.makespan)),
                     std::to_string(shm_best.makespan),
                     fmt(shm_base / static_cast<double>(shm_best.makespan))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
