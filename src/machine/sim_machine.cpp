#include "machine/sim_machine.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>

#include "machine/invariants.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct SimEnvelope {
  std::uint64_t arrival;
  std::uint64_t rank;  // tie-break; == seq normally, chaos-shuffled under reorder
  std::uint64_t seq;   // global send order; the final deterministic tie-break
  int src;
  HandlerId handler;
  std::vector<std::uint8_t> payload;
};

struct ArrivalLater {
  bool operator()(const SimEnvelope& a, const SimEnvelope& b) const {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.seq > b.seq;
  }
};

enum class St { kReady, kRunning, kWaiting, kDone };

}  // namespace

/// Scheduler state shared by all processors; everything here is guarded by
/// `mu` except where noted.
struct SimMachine::Core {
  std::mutex mu;
  std::vector<std::unique_ptr<SimProc>> procs;
  std::uint64_t next_seq = 0;
  std::uint64_t duplicated = 0;  ///< chaos-injected duplicate deliveries
  bool shutdown = false;

  /// Earliest time proc i could run: its clock if ready, the max of its
  /// clock and its earliest pending arrival if waiting, never if done or
  /// waiting on an empty inbox.
  std::uint64_t resume_key_locked(int i) const;

  /// Min-key processor among those able to run, excluding `except`; -1 none.
  int pick_next_locked(int except) const;

  /// Hand the token to `next` (or trigger shutdown if next == -1 and nothing
  /// can ever run again).
  void grant_locked(int next);
};

class SimMachine::SimProc final : public Proc {
 public:
  SimProc(SimMachine* m, int id) : machine_(m), id_(id) {}

  int id() const override { return id_; }
  int nprocs() const override { return machine_->nprocs_; }

  void on(HandlerId h, Handler fn) override {
    if (handlers_.size() <= h) handlers_.resize(h + 1);
    GBD_CHECK_MSG(!handlers_[h], "handler registered twice");
    handlers_[h] = std::move(fn);
  }

  void send(int dst, HandlerId h, std::vector<std::uint8_t> payload) override {
    GBD_CHECK(dst >= 0 && dst < machine_->nprocs_);
    drain_cost();
    clock_ += machine_->cost_.inject;
    comm_.messages_sent += 1;
    comm_.bytes_sent += payload.size();
    std::uint64_t wire = clock_ + machine_->cost_.wire_time(payload.size());
    {
      std::lock_guard<std::mutex> lock(machine_->core_->mu);
      GBD_CHECK_MSG(!machine_->core_->shutdown, "send after machine quiescence");
      auto& dst_proc = *machine_->core_->procs[static_cast<std::size_t>(dst)];
      std::uint64_t seq = machine_->core_->next_seq++;
      // Chaos: a dup-safe message may be delivered twice, each copy with its
      // own seeded delay — the duplicate takes its own sequence number so its
      // perturbation is independent of the original's.
      if (machine_->chaos_duplicates(h, seq)) {
        std::uint64_t dseq = machine_->core_->next_seq++;
        machine_->core_->duplicated += 1;
        dst_proc.mbox_.enqueues += 1;
        dst_proc.inbox_.push(SimEnvelope{wire + machine_->chaos_delay(dseq),
                                         machine_->chaos_rank(dseq), dseq, id_, h, payload});
      }
      dst_proc.mbox_.enqueues += 1;
      dst_proc.inbox_.push(SimEnvelope{wire + machine_->chaos_delay(seq),
                                       machine_->chaos_rank(seq), seq, id_, h,
                                       std::move(payload)});
      // If dst is blocked in wait(), its resume key just changed; it will be
      // considered at the sender's next scheduling point. No wake needed —
      // the token protocol only moves at scheduling points.
    }
    checkpoint();
  }

  std::size_t poll() override {
    drain_cost();
    checkpoint();
    return deliver_due();
  }

  bool wait() override {
    drain_cost();
    maybe_tick();
    std::size_t n = deliver_due();
    if (n > 0) return true;

    std::unique_lock<std::mutex> lock(machine_->core_->mu);
    for (;;) {
      if (!inbox_.empty()) {
        // Advance to the earliest arrival; the gap is idle time.
        std::uint64_t arrival = inbox_.top().arrival;
        if (arrival > clock_) {
          comm_.idle_units += arrival - clock_;
          clock_ = arrival;
        }
        // Run only if we are (still) the minimum — otherwise hand off first.
        int next = machine_->core_->pick_next_locked(id_);
        if (next >= 0 && earlier_than_me(next)) {
          state_ = St::kReady;  // we have work (a due message) pending
          machine_->core_->grant_locked(next);
          block_until_active(lock);
          if (machine_->core_->shutdown && inbox_.empty()) return false;
          continue;  // re-evaluate; more messages may have arrived
        }
        state_ = St::kRunning;
        lock.unlock();
        return deliver_due() > 0 ? true : wait();  // re-enter if a race drained nothing
      }

      state_ = St::kWaiting;
      mbox_.cv_waits += 1;  // parked with an empty inbox — the sim's "condvar wait"
      int next = machine_->core_->pick_next_locked(id_);
      machine_->core_->grant_locked(next);  // next == -1 triggers shutdown check
      block_until_active(lock);
      if (machine_->core_->shutdown && inbox_.empty()) {
        state_ = St::kDone;  // no further participation in scheduling
        return false;
      }
      mbox_.wakeups += 1;  // resumed with traffic pending, not by shutdown
    }
  }

  void charge(std::uint64_t units) override {
    drain_cost();
    clock_ += units * scale_;
  }

  /// Unbounded grant: the elimination kernel charges the parallel makespan
  /// (max per-lane tally) whatever the lane count, so virtual time stays a
  /// pure function of the configuration — never of the host's cores.
  std::size_t kernel_lanes() const override {
    return std::numeric_limits<std::size_t>::max();
  }

  std::uint64_t now() override {
    drain_cost();
    return clock_;
  }

  void yield() override {
    drain_cost();
    checkpoint();
  }

  const ChaosConfig* chaos() const override {
    return machine_->chaos_.enabled() ? &machine_->chaos_ : nullptr;
  }

 private:
  friend class SimMachine;
  friend struct SimMachine::Core;

  /// Move accumulated kernel work into the virtual clock. A chaos-starved
  /// processor pays scale_ virtual units per unit of work, so the min-clock
  /// scheduler systematically favors everyone else.
  void drain_cost() { clock_ += CostCounter::drain() * scale_; }

  /// Scheduling point: hand the token to an earlier processor if one exists.
  void checkpoint() {
    std::unique_lock<std::mutex> lock(machine_->core_->mu);
    if (machine_->core_->shutdown) return;  // post-quiescence cleanup runs freely
    int next = machine_->core_->pick_next_locked(id_);
    if (next < 0 || !earlier_than_me(next)) return;
    state_ = St::kReady;
    machine_->core_->grant_locked(next);
    block_until_active(lock);
  }

  bool earlier_than_me(int other) const {
    std::uint64_t key = machine_->core_->resume_key_locked(other);
    if (key != clock_) return key < clock_;
    return other < id_;
  }

  void block_until_active(std::unique_lock<std::mutex>& lock) {
    cv_.wait(lock, [&] { return active_ || machine_->core_->shutdown; });
    if (active_) {
      active_ = false;
      state_ = St::kRunning;
    }
  }

  /// Deliver every message whose arrival is <= the current clock, in arrival
  /// order, advancing the clock by dispatch and handler work as it goes.
  std::size_t deliver_due() {
    std::size_t delivered = 0;
    for (;;) {
      SimEnvelope env;
      {
        std::lock_guard<std::mutex> lock(machine_->core_->mu);
        if (inbox_.empty() || inbox_.top().arrival > clock_) break;
        env = inbox_.top();
        inbox_.pop();
      }
      std::uint64_t t0 = clock_;
      clock_ += machine_->cost_.dispatch;
      comm_.messages_received += 1;
      GBD_CHECK_MSG(env.handler < handlers_.size() && handlers_[env.handler],
                    "message for unregistered handler");
      Reader r(env.payload.data(), env.payload.size());
      handlers_[env.handler](*this, env.src, r);
      drain_cost();  // handler work lands on this processor's clock
      if (tracer() != nullptr) {
        tracer()->complete(Ev::kHandler, t0, clock_, env.handler,
                           static_cast<std::uint64_t>(env.src));
      }
      ++delivered;
      // Safe point for global invariant checks: this processor is between
      // handlers, every other processor is parked at a scheduling point.
      if (machine_->monitor_ != nullptr) machine_->monitor_->maybe_check();
    }
    if (delivered > 0) {
      mbox_.drains += 1;
      mbox_.drained_messages += delivered;
      mbox_.max_drain_batch = std::max<std::uint64_t>(mbox_.max_drain_batch, delivered);
    }
    maybe_tick();
    return delivered;
  }

  /// Telemetry tick at a cost-drained boundary. Pure observation: charges
  /// nothing, sends nothing, touches no scheduler state — a run with
  /// telemetry attached is bit-identical (clocks, traces, bases) to one
  /// without. The frame goes straight to the in-process aggregator.
  void maybe_tick() {
    if (telemetry_ == nullptr || !telemetry_->due(clock_)) return;
    std::vector<std::uint8_t> frame = telemetry_->sample(
        id_, clock_, comm_, tracer() != nullptr ? tracer()->dropped() : 0);
    machine_->telemetry_->ingest_bytes(frame.data(), frame.size());
  }

  SimMachine* machine_;
  int id_;
  std::vector<Handler> handlers_;
  std::uint64_t clock_ = 0;
  std::uint64_t scale_ = 1;  ///< chaos starvation multiplier (set at run start)
  /// Delivery counters, mirroring ThreadMachine's mailbox stats. enqueues is
  /// sender-written under core->mu; the owner-side fields are touched only
  /// by this processor's thread.
  MailboxStats mbox_;

  // Guarded by core->mu:
  std::priority_queue<SimEnvelope, std::vector<SimEnvelope>, ArrivalLater> inbox_;
  St state_ = St::kReady;
  bool active_ = false;
  std::condition_variable cv_;
};

std::uint64_t SimMachine::Core::resume_key_locked(int i) const {
  const SimProc& p = *procs[static_cast<std::size_t>(i)];
  switch (p.state_) {
    case St::kReady:
      return p.clock_;
    case St::kWaiting:
      if (p.inbox_.empty()) return kNever;
      return std::max(p.clock_, p.inbox_.top().arrival);
    case St::kRunning:
    case St::kDone:
      return kNever;
  }
  return kNever;
}

int SimMachine::Core::pick_next_locked(int except) const {
  int best = -1;
  std::uint64_t best_key = kNever;
  for (int i = 0; i < static_cast<int>(procs.size()); ++i) {
    if (i == except) continue;
    std::uint64_t key = resume_key_locked(i);
    if (key == kNever) continue;
    if (best < 0 || key < best_key) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

void SimMachine::Core::grant_locked(int next) {
  if (next >= 0) {
    SimProc& p = *procs[static_cast<std::size_t>(next)];
    p.active_ = true;
    p.cv_.notify_one();
    return;
  }
  // Nothing can run besides the caller (who is releasing): if every other
  // processor is done or waiting on an empty inbox, the machine is quiescent.
  if (!shutdown) {
    shutdown = true;
    for (auto& p : procs) p->cv_.notify_all();
  }
}

SimMachine::SimMachine(int nprocs, CostModel cost, ChaosConfig chaos)
    : nprocs_(nprocs), cost_(cost), chaos_(std::move(chaos)), core_(std::make_unique<Core>()) {
  GBD_CHECK(nprocs >= 1);
}

SimMachine::~SimMachine() = default;

std::uint64_t SimMachine::chaos_delay(std::uint64_t seq) const {
  std::uint64_t d = 0;
  if (chaos_.jitter != 0) {
    d += chaos_mix2(chaos_.seed, seq * 4 + 1) % (chaos_.jitter + 1);
  }
  if (chaos_.reorder_permille != 0 && chaos_.reorder_window != 0 &&
      chaos_mix2(chaos_.seed, seq * 4 + 2) % 1000 < chaos_.reorder_permille) {
    d += chaos_mix2(chaos_.seed, seq * 4 + 3) % (chaos_.reorder_window + 1);
  }
  return d;
}

std::uint64_t SimMachine::chaos_rank(std::uint64_t seq) const {
  if (chaos_.reorder_permille == 0) return seq;
  return chaos_mix2(chaos_.seed ^ 0x52414e4bULL, seq);
}

bool SimMachine::chaos_duplicates(HandlerId h, std::uint64_t seq) const {
  if (chaos_.dup_permille == 0 || !chaos_.dup_allowed(h)) return false;
  return chaos_mix2(chaos_.seed ^ 0x445550ULL, seq) % 1000 < chaos_.dup_permille;
}

MachineStats SimMachine::run(const std::function<void(Proc&)>& worker) {
  return run_sim(worker);
}

SimStats SimMachine::run_sim(const std::function<void(Proc&)>& worker) {
  core_ = std::make_unique<Core>();
  for (int i = 0; i < nprocs_; ++i) {
    core_->procs.push_back(std::make_unique<SimProc>(this, i));
    core_->procs.back()->scale_ = chaos_.starve_scale(i);
  }
  if (tracer_ != nullptr) {
    tracer_->start_run(nprocs_, ClockDomain::kVirtual);
    for (int i = 0; i < nprocs_; ++i) {
      core_->procs[static_cast<std::size_t>(i)]->tracer_ = &tracer_->at(i);
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->start_run(nprocs_, ClockDomain::kVirtual);
    for (int i = 0; i < nprocs_; ++i) {
      core_->procs[static_cast<std::size_t>(i)]->telemetry_ = &telemetry_->at(i);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    threads.emplace_back([this, i, &worker] {
      SimProc& self = *core_->procs[static_cast<std::size_t>(i)];
      {
        // Wait for the initial token: proc 0 starts (all clocks are 0).
        std::unique_lock<std::mutex> lock(core_->mu);
        if (i != 0) {
          self.state_ = St::kReady;
          self.block_until_active(lock);
        } else {
          self.state_ = St::kRunning;
        }
      }
      CostCounter::drain();  // start from a clean per-thread counter
      worker(self);
      self.drain_cost();
      {
        std::unique_lock<std::mutex> lock(core_->mu);
        self.state_ = St::kDone;
        if (!core_->shutdown) {
          int next = core_->pick_next_locked(i);
          core_->grant_locked(next);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Global quiescence: one last full invariant sweep over the final state.
  if (monitor_ != nullptr) monitor_->run_all("quiescence");

  SimStats stats;
  stats.duplicated_messages = core_->duplicated;
  stats.has_mailbox_stats = true;
  for (auto& p : core_->procs) {
    stats.per_proc.push_back(p->comm_stats());
    stats.mailbox.push_back(p->mbox_);
    stats.proc_clocks.push_back(p->clock_);
    stats.makespan = std::max(stats.makespan, p->clock_);
  }
  if (tracer_ != nullptr) tracer_->finish_run(stats.makespan);
  return stats;
}

}  // namespace gbd
