#include "support/cost.hpp"

namespace gbd {

std::uint64_t& CostCounter::local() {
  thread_local std::uint64_t counter = 0;
  return counter;
}

}  // namespace gbd
