#include "gb/verify.hpp"

#include "gb/sequential.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"

namespace gbd {

namespace {

/// Re-embed a polynomial into a ring with extra trailing variables.
Polynomial widen(const PolyContext& wide, const Polynomial& p) {
  std::vector<Term> terms;
  terms.reserve(p.nterms());
  for (const auto& t : p.terms()) {
    std::vector<std::uint32_t> exps(wide.nvars(), 0);
    for (std::size_t v = 0; v < t.mono.nvars(); ++v) exps[v] = t.mono.exp(v);
    terms.push_back(Term{t.coeff, Monomial(std::move(exps))});
  }
  return Polynomial::from_terms(wide, std::move(terms));
}

}  // namespace

bool radical_contains(const PolyContext& ctx, const std::vector<Polynomial>& gens,
                      const Polynomial& p) {
  if (p.is_zero()) return true;
  // Extended ring K[x1..xn, t], t last (lowest precedence in every order).
  PolySystem ext;
  ext.ctx.vars = ctx.vars;
  ext.ctx.vars.push_back("_rab_t");
  ext.ctx.order = ctx.order;
  for (const auto& g : gens) {
    if (!g.is_zero()) ext.polys.push_back(widen(ext.ctx, g));
  }
  // 1 - t·p
  std::vector<std::uint32_t> t_exp(ext.ctx.nvars(), 0);
  t_exp.back() = 1;
  Polynomial tp = widen(ext.ctx, p).mul_term(BigInt(1), Monomial(std::move(t_exp)));
  ext.polys.push_back(Polynomial::constant(ext.ctx, BigInt(1)).sub(ext.ctx, tp));

  SequentialResult res = groebner_sequential(ext);
  // 1 ∈ ideal iff the (any) Gröbner basis contains a nonzero constant.
  for (const auto& g : res.basis) {
    if (!g.is_zero() && g.hmono().is_one()) return true;
  }
  return false;
}

namespace {

/// For kZp, the canonical mod-p image of a set (zp_combine and friends
/// require canonical residues); for kExact, null — the caller uses the
/// original vector untouched.
std::vector<Polynomial> coeff_image(const PolyContext& ctx, const std::vector<Polynomial>& polys,
                                    const CoeffOptions& coeff) {
  std::vector<Polynomial> out;
  out.reserve(polys.size());
  for (const auto& p : polys) {
    Polynomial q = p;
    coeff_normalize(ctx, &q, coeff);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

bool is_groebner_basis(const PolyContext& ctx, const std::vector<Polynomial>& basis,
                       std::string* why, const CoeffOptions& coeff) {
  std::vector<Polynomial> image;
  const std::vector<Polynomial>* use = &basis;
  if (coeff.is_zp()) {
    image = coeff_image(ctx, basis, coeff);
    use = &image;
  }
  // Reject zeros up front: spoly() has a nonzero precondition. (Over Zp an
  // exactly-nonzero element can vanish mod p — that still disqualifies the
  // set as a basis over this field.)
  for (std::size_t i = 0; i < use->size(); ++i) {
    if ((*use)[i].is_zero()) {
      if (why) *why = "basis contains the zero polynomial";
      return false;
    }
  }
  VectorReducerSet set(use);
  ReduceOptions ropts;
  ropts.coeff = coeff;
  for (std::size_t i = 0; i < use->size(); ++i) {
    for (std::size_t j = i + 1; j < use->size(); ++j) {
      Polynomial s = spoly(ctx, (*use)[i], (*use)[j], coeff);
      ReduceOutcome out = reduce_full(ctx, std::move(s), set, ropts);
      if (!out.poly.is_zero()) {
        if (why) {
          *why = "SPOL(basis[" + std::to_string(i) + "], basis[" + std::to_string(j) +
                 "]) does not reduce to zero; normal form " + out.poly.to_string(ctx);
        }
        return false;
      }
    }
  }
  return true;
}

bool ideal_contains(const PolyContext& ctx, const std::vector<Polynomial>& gb,
                    const Polynomial& p, const CoeffOptions& coeff) {
  std::vector<Polynomial> image;
  const std::vector<Polynomial>* use = &gb;
  if (coeff.is_zp()) {
    image = coeff_image(ctx, gb, coeff);
    use = &image;
  }
  VectorReducerSet set(use);
  ReduceOptions ropts;
  ropts.coeff = coeff;
  return reduce_full(ctx, p, set, ropts).poly.is_zero();
}

bool same_ideal(const PolyContext& ctx, const std::vector<Polynomial>& gb1,
                const std::vector<Polynomial>& gb2, const CoeffOptions& coeff) {
  for (const auto& g : gb1) {
    if (!ideal_contains(ctx, gb2, g, coeff)) return false;
  }
  for (const auto& g : gb2) {
    if (!ideal_contains(ctx, gb1, g, coeff)) return false;
  }
  return true;
}

bool verify_groebner_result(const PolyContext& ctx, const std::vector<Polynomial>& inputs,
                            const std::vector<Polynomial>& basis, std::string* why,
                            const CoeffOptions& coeff) {
  if (!is_groebner_basis(ctx, basis, why, coeff)) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!ideal_contains(ctx, basis, inputs[i], coeff)) {
      if (why) *why = "input generator " + std::to_string(i) + " not in the output ideal";
      return false;
    }
  }
  return true;
}

}  // namespace gbd
