// Chaos mode for the simulated machine: seeded adversarial schedules.
//
// The simulator's determinism is a strength (bit-for-bit replay) and a
// weakness: every protocol is only ever exercised by the one benign schedule
// the cost model induces. Distributed Buchberger breaks exactly where
// message reordering and uneven progress live (see PAPERS.md on Kredel's
// distributed JAS and the reduction-machine formulations), so ChaosConfig
// reintroduces those adversities *deterministically*: every perturbation is
// a pure function of (seed, global message sequence number), which keeps a
// chaotic run exactly as replayable as a benign one. The knobs:
//
//   jitter    — every message's arrival is delayed by U[0, jitter] extra
//               units (models contention / variable routes);
//   reorder   — a permille-chance that a message additionally sleeps up to
//               reorder_window units, letting later traffic on the same link
//               overtake it wholesale (models adversarial reordering within
//               a destination mailbox);
//   dup       — a permille-chance that a message is delivered twice, with
//               independent delays, but only for handler ids the application
//               declared idempotent via dup_safe (duplicating a task-carrying
//               grant would *create* work; duplicating an invalidation must
//               not — that is precisely the idempotence contract under test);
//   starve    — a permille-chance per processor that all its compute is
//               scaled by starve_factor in virtual time, so the scheduler
//               systematically favors everyone else (models uneven progress
//               and biased scheduling);
//   fault_drop_invalidate — an *intentional protocol bug* for checker
//               validation: a victim acknowledges an INVALIDATE but "loses"
//               the processing, the classic ack-before-apply lost update.
//               A healthy harness must catch this via the replica-coherence
//               invariant; it is never enabled outside such tests.
//
// A second family of knobs (net_*) targets the SocketMachine transport
// (src/net/): they perturb *frames on the wire* rather than the simulator's
// schedule. Dropped frames are recovered by the transport's retransmit
// layer, duplicates are deduplicated by sequence number, and delays create
// genuine reordering the receiver must repair — so enabling them must never
// change the computed answer, only exercise the recovery machinery. Every
// decision is a pure function of (seed, destination, frame sequence number),
// keyed by the same seed as the schedule-level knobs.
//
// A config round-trips through a compact replay string (encode/decode) so a
// failing fuzz case can be reported as one line and re-run exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hpp"

namespace gbd {

/// Stateless SplitMix64 finalizer: the chaos layer derives every random
/// decision from hashes of (seed, event id) rather than a stateful stream,
/// so draw order cannot perturb replay.
inline std::uint64_t chaos_mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t chaos_mix2(std::uint64_t a, std::uint64_t b) {
  return chaos_mix(a ^ chaos_mix(b));
}

struct ChaosConfig {
  std::uint64_t seed = 0;
  /// Uniform extra delivery delay in [0, jitter] work units per message.
  std::uint64_t jitter = 0;
  /// Permille chance a message gets an extra delay in [0, reorder_window].
  std::uint32_t reorder_permille = 0;
  std::uint64_t reorder_window = 0;
  /// Permille chance a dup_safe message is delivered twice.
  std::uint32_t dup_permille = 0;
  /// Handler ids the application declares safe to duplicate. Left empty,
  /// duplication never fires; engines fill in their idempotent set.
  std::vector<HandlerId> dup_safe;
  /// Permille chance a processor is starved; its compute is scaled by
  /// starve_factor (>= 1) in virtual time.
  std::uint32_t starve_permille = 0;
  std::uint32_t starve_factor = 1;
  /// Injected bug (checker validation only): permille chance a processor
  /// acknowledges an INVALIDATE without applying it.
  std::uint32_t fault_drop_invalidate_permille = 0;

  // Transport-level faults (SocketMachine only; no-ops on the in-process
  // backends). Applied per application frame at the sender.
  std::uint32_t net_drop_permille = 0;   ///< frame "lost" on first send; retransmit recovers
  std::uint32_t net_dup_permille = 0;    ///< frame written twice; receiver dedups by seq
  std::uint32_t net_delay_permille = 0;  ///< frame held net_delay_ms before the write
  std::uint32_t net_delay_ms = 0;

  bool schedule_chaos() const {
    return jitter != 0 || reorder_permille != 0 || dup_permille != 0 ||
           (starve_permille != 0 && starve_factor > 1);
  }
  bool net_chaos() const {
    return net_drop_permille != 0 || net_dup_permille != 0 ||
           (net_delay_permille != 0 && net_delay_ms != 0);
  }
  bool enabled() const {
    return schedule_chaos() || net_chaos() || fault_drop_invalidate_permille != 0;
  }

  bool dup_allowed(HandlerId h) const {
    for (HandlerId s : dup_safe) {
      if (s == h) return true;
    }
    return false;
  }

  /// Virtual-time multiplier for proc's compute: starve_factor if the seeded
  /// coin says this processor is starved, 1 otherwise.
  std::uint64_t starve_scale(int proc) const {
    if (starve_permille == 0 || starve_factor <= 1) return 1;
    return chaos_mix2(seed ^ 0x5741525645ULL, static_cast<std::uint64_t>(proc)) % 1000 <
                   starve_permille
               ? starve_factor
               : 1;
  }

  /// One-line replay string; decode() aborts on malformed input.
  std::string encode() const;
  static ChaosConfig decode(const std::string& s);

  /// Canonical presets: 0 = off, 1 = mild (jitter + reorder), 2 = + dup +
  /// starvation, 3 = heavy everything. dup_safe stays empty — the engine
  /// fills in its idempotent handler set.
  static ChaosConfig intensity(int level, std::uint64_t seed);

  /// Transport-fault presets for SocketMachine runs: 0 = off, 1 = default
  /// (mild drop + dup), 2 = drop + dup + delay, 3 = heavy everything. The
  /// schedule-level knobs are left untouched (they have no effect on the
  /// socket backend anyway).
  static ChaosConfig net_intensity(int level, std::uint64_t seed);

  bool operator==(const ChaosConfig&) const = default;
};

}  // namespace gbd
