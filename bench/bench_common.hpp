// Shared plumbing for the exhibit-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper and prints the
// same rows/series. Times are in the library's abstract work units (see
// support/cost.hpp); the exhibits the paper builds from them are ratios, so
// units cancel exactly where they did for the authors.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "problems/problems.hpp"
#include "support/table.hpp"

namespace gbd::bench {

/// True when the caller asked for the (slower) full-size configuration.
inline bool full_size() {
  const char* v = std::getenv("GBD_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

/// Run the distributed engine `seeds` times and keep the best (smallest
/// virtual makespan) run — the paper's "best over N runs" methodology
/// (§7: speedups are reported as best of 5).
inline ParallelResult best_of_seeds(const PolySystem& sys, ParallelConfig cfg, int seeds,
                                    ParallelResult* worst = nullptr) {
  ParallelResult best;
  bool first = true;
  for (int s = 1; s <= seeds; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s);
    ParallelResult r = groebner_parallel(sys, cfg);
    if (first || r.machine.makespan < best.machine.makespan) best = r;
    if (worst && (first || r.machine.makespan > worst->machine.makespan)) *worst = r;
    first = false;
  }
  return best;
}

/// The paper's effective criteria strength (Buchberger's criteria of the
/// era): coprime pruning only. Used by the figure benches so the
/// zeroed/added profile matches Table 2's regime.
inline GbConfig paper_era_criteria() {
  GbConfig gb;
  gb.chain_criterion = false;
  gb.gm_update = false;
  return gb;
}

inline void print_header(const char* exhibit, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", exhibit, caption);
}

}  // namespace gbd::bench
