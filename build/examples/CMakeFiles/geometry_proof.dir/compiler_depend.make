# Empty compiler generated dependencies file for geometry_proof.
# This may be replaced when dependencies are built.
