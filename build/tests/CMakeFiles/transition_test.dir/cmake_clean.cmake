file(REMOVE_RECURSE
  "CMakeFiles/transition_test.dir/transition_test.cpp.o"
  "CMakeFiles/transition_test.dir/transition_test.cpp.o.d"
  "transition_test"
  "transition_test.pdb"
  "transition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
