// Tests for the support substrate: serialization buffers, deterministic RNG,
// cost accounting, and the bench table renderer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/cost.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"
#include "support/table.hpp"

namespace gbd {
namespace {

TEST(SerializeTest, AllPrimitiveRoundTrips) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.str("hello");
  w.str("");
  w.bytes("xyz", 3);
  w.words({1, 2, 3});
  w.words({});

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "xyz");  // bytes and str share the wire format
  EXPECT_EQ(r.words(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.words().empty());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, EmptyBufferIsDone) {
  std::vector<std::uint8_t> empty;
  Reader r(empty);
  EXPECT_TRUE(r.done());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs = differs || (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysBelow) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  // All residues get hit eventually.
  std::set<std::uint64_t> seen;
  Rng rng2(8);
  for (int i = 0; i < 500; ++i) seen.insert(rng2.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(RngTest, SplitGivesIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  bool differs = false;
  for (int i = 0; i < 20; ++i) differs = differs || (c1.next() != c2.next());
  EXPECT_TRUE(differs);
}

TEST(CostTest, ChargeAndDrain) {
  CostCounter::drain();  // reset this thread
  CostCounter::charge(10);
  CostCounter::charge(5);
  EXPECT_EQ(CostCounter::peek(), 15u);
  EXPECT_EQ(CostCounter::drain(), 15u);
  EXPECT_EQ(CostCounter::peek(), 0u);
}

TEST(CostTest, ScopeMeasuresDelta) {
  CostCounter::drain();
  CostCounter::charge(100);
  CostScope scope;
  CostCounter::charge(40);
  EXPECT_EQ(scope.elapsed(), 40u);
  CostCounter::charge(2);
  EXPECT_EQ(scope.elapsed(), 42u);
  CostCounter::drain();
}

TEST(CostTest, CountersAreThreadLocal) {
  CostCounter::drain();
  CostCounter::charge(7);
  std::uint64_t other = 999;
  std::thread t([&] {
    CostCounter::charge(3);
    other = CostCounter::peek();
  });
  t.join();
  EXPECT_EQ(other, 3u);
  EXPECT_EQ(CostCounter::drain(), 7u);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header and both rows plus the rule line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Columns align: every line has the same width (cells are padded).
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(nl - pos, first_len) << "line starting at " << pos;
    pos = nl + 1;
  }
}

TEST(TableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace gbd
