// The GB-as-a-service job protocol — message schemas over GBDF frames.
//
// A gbd_client connection to the gbd_serve daemon is one TCP stream of GBDF
// frames (net/frame.hpp): the client sends kJobSubmit / kJobCancel /
// kServerStats requests, the server streams back kJobEvent state
// transitions and progress pushes, exactly one kJobResult per submitted
// token, and kServerStats replies. There is no reliability layer on this
// channel — a single ordered TCP stream is the delivery guarantee, and a
// broken stream simply orphans the connection's jobs.
//
// Every payload here decodes through SafeReader: the daemon treats client
// bytes as hostile, so a truncated or corrupt payload is a diagnosed decode
// failure (the connection is dropped), never a crash — Reader's aborting
// bounds check is for trusted rank-to-rank traffic only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/serialize.hpp"

namespace gbd {

/// Job lifecycle states. Wire values; append only.
enum class JobState : std::uint8_t {
  kQueued = 0,    ///< admitted, waiting in the priority queue
  kRunning = 1,   ///< a worker is executing it
  kRequeued = 2,  ///< worker died mid-job; back in the queue for another attempt
  kDone = 3,      ///< terminal: basis computed (and verified when requested)
  kFailed = 4,    ///< terminal: parse error, certificate failure, attempts exhausted
  kCancelled = 5, ///< terminal: client cancel honored
  kTimedOut = 6,  ///< terminal: deadline elapsed (queued or running)
  kRejected = 7,  ///< terminal: admission control refused it (queue full, bad spec)
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

/// How the daemon executes jobs (the groebner_parallel_machine seam).
enum class ServeBackend : std::uint8_t {
  kSequential = 0,  ///< groebner_sequential per worker thread (fastest for small jobs;
                    ///< supports cooperative cancel/deadline via GbConfig::stop)
  kSim = 1,         ///< GL-P on a per-job SimMachine (deterministic; telemetry progress)
  kThread = 2,      ///< GL-P on a per-job ThreadMachine (telemetry progress)
};

const char* serve_backend_name(ServeBackend b);

/// Bounds-checked payload reader that reports failure instead of aborting.
/// Mirrors Reader's call sequence API; after any failed read, ok() is false
/// and every later read returns a zero value.
class SafeReader {
 public:
  SafeReader(const std::uint8_t* data, std::size_t n) : buf_(data), size_(n) {}
  explicit SafeReader(const std::vector<std::uint8_t>& v) : buf_(v.data()), size_(v.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str(std::size_t max_len = 1u << 26);

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == size_; }

 private:
  bool need(std::size_t n);

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// kJobSubmit payload (client -> server).
struct SubmitRequest {
  std::uint64_t token = 0;       ///< client-chosen; unique per connection
  std::uint32_t priority = 0;    ///< higher runs earlier (FIFO within a priority)
  std::uint64_t deadline_ms = 0; ///< relative to submission; 0 = server default
  bool subscribe = false;        ///< stream kJobEvent progress pushes
  bool want_cert = false;        ///< server verifies the Gröbner certificate
  std::uint8_t source = 0;       ///< 0 = inline system text, 1 = built-in problem name
  std::string problem;           ///< text (source 0) or name (source 1)
  std::uint64_t zp_prime = 0;    ///< 0 = exact coefficients, else compute mod p

  void encode(Writer& w) const;
  static bool decode(SafeReader& r, SubmitRequest* out);
};

/// kJobEvent payload (server -> client).
struct JobEventMsg {
  std::uint64_t token = 0;
  std::uint64_t job_id = 0;
  JobState state = JobState::kQueued;
  std::uint32_t progress_permille = 0;  ///< monotone estimate (telemetry-backed)
  std::uint32_t queue_depth = 0;        ///< server queue depth when the event fired
  std::uint32_t attempt = 0;
  std::string note;

  void encode(Writer& w) const;
  static bool decode(SafeReader& r, JobEventMsg* out);
};

/// kJobResult payload (server -> client); exactly one per admitted token.
struct JobResultMsg {
  std::uint64_t token = 0;
  std::uint64_t job_id = 0;
  JobState status = JobState::kDone;  ///< terminal state
  bool cache_hit = false;
  std::uint8_t cert = 0;  ///< 0 = not requested, 1 = verified, 2 = verification failed
  std::uint32_t attempts = 0;
  std::uint64_t queue_wait_ms = 0;
  std::uint64_t exec_ms = 0;
  std::uint64_t spolys = 0;
  std::uint64_t basis_added = 0;
  std::string error;               ///< nonempty on kFailed / kRejected
  std::vector<std::string> basis;  ///< rendered in the submitted system's variables

  void encode(Writer& w) const;
  static bool decode(SafeReader& r, JobResultMsg* out);
};

/// kServerStats reply payload (the request payload is empty).
struct ServerStatsMsg {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t requeues = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t wait_p50_ms = 0;
  std::uint64_t wait_p99_ms = 0;
  std::uint64_t exec_p50_ms = 0;
  std::uint64_t exec_p99_ms = 0;
  std::uint32_t workers = 0;
  ServeBackend backend = ServeBackend::kSequential;
  bool paused = false;

  void encode(Writer& w) const;
  static bool decode(SafeReader& r, ServerStatsMsg* out);
};

}  // namespace gbd
