#include "net/net_engine.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace gbd {

namespace {

constexpr std::uint8_t kContribVersion = 1;

void write_gb_stats(Writer& w, const GbStats& s) {
  w.u64(s.pairs_created);
  w.u64(s.pairs_pruned_coprime);
  w.u64(s.pairs_pruned_chain);
  w.u64(s.spolys_computed);
  w.u64(s.reductions_to_zero);
  w.u64(s.basis_added);
  w.u64(s.reduction_steps);
  w.u64(s.max_step_cost);
  w.u64(s.work_units);
  w.u64(s.messages_sent);
  w.u64(s.bytes_sent);
  w.u64(s.polys_transferred);
  w.u64(s.lock_wait_units);
  w.u64(s.idle_units);
  w.u64(s.termination_units);
  w.u64(s.peak_resident_bodies);
}

GbStats read_gb_stats(Reader& r) {
  GbStats s;
  s.pairs_created = r.u64();
  s.pairs_pruned_coprime = r.u64();
  s.pairs_pruned_chain = r.u64();
  s.spolys_computed = r.u64();
  s.reductions_to_zero = r.u64();
  s.basis_added = r.u64();
  s.reduction_steps = r.u64();
  s.max_step_cost = r.u64();
  s.work_units = r.u64();
  s.messages_sent = r.u64();
  s.bytes_sent = r.u64();
  s.polys_transferred = r.u64();
  s.lock_wait_units = r.u64();
  s.idle_units = r.u64();
  s.termination_units = r.u64();
  s.peak_resident_bodies = r.u64();
  return s;
}

void write_basis_stats(Writer& w, const BasisStats& s) {
  w.u64(s.invalidations_sent);
  w.u64(s.fetches_sent);
  w.u64(s.bodies_received);
  w.u64(s.bodies_served);
  w.u64(s.bodies_forwarded);
  w.u64(s.evictions);
  w.u64(s.max_resident);
  w.u64(s.invalidation_batches);
  w.u64(s.fetch_batches);
  w.u64(s.body_batches);
}

BasisStats read_basis_stats(Reader& r) {
  BasisStats s;
  s.invalidations_sent = r.u64();
  s.fetches_sent = r.u64();
  s.bodies_received = r.u64();
  s.bodies_served = r.u64();
  s.bodies_forwarded = r.u64();
  s.evictions = r.u64();
  s.max_resident = static_cast<std::size_t>(r.u64());
  s.invalidation_batches = r.u64();
  s.fetch_batches = r.u64();
  s.body_batches = r.u64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_rank_contribution(int rank, std::size_t input_count,
                                                   const ParallelResult& partial) {
  Writer w;
  w.u8(kContribVersion);
  w.u32(static_cast<std::uint32_t>(rank));
  write_gb_stats(w, partial.per_proc[static_cast<std::size_t>(rank)]);
  write_basis_stats(w, partial.wire);
  w.u64(partial.invariant_sweeps);
  w.u32(static_cast<std::uint32_t>(partial.violations.size()));
  for (const std::string& v : partial.violations) w.str(v);
  // Polynomials this rank added (inputs are preloaded everywhere; skip them).
  std::uint32_t added = 0;
  for (const auto& [id, poly] : partial.basis_ids) {
    if (poly_id_owner(id) == 0 && poly_id_seq(id) < input_count) continue;
    added += 1;
  }
  w.u32(added);
  for (const auto& [id, poly] : partial.basis_ids) {
    if (poly_id_owner(id) == 0 && poly_id_seq(id) < input_count) continue;
    w.u64(id);
    poly.write(w);
  }
  return w.take();
}

void merge_rank_contribution(ParallelResult* total, const std::vector<std::uint8_t>& blob) {
  Reader r(blob);
  GBD_CHECK_MSG(r.u8() == kContribVersion, "rank contribution version mismatch");
  std::uint32_t rank = r.u32();
  GBD_CHECK(rank < total->per_proc.size());
  GbStats stats = read_gb_stats(r);
  total->per_proc[rank] = stats;
  total->stats.merge(stats);
  total->compute_units += stats.work_units;
  BasisStats wire = read_basis_stats(r);
  total->wire.invalidations_sent += wire.invalidations_sent;
  total->wire.fetches_sent += wire.fetches_sent;
  total->wire.bodies_received += wire.bodies_received;
  total->wire.bodies_served += wire.bodies_served;
  total->wire.bodies_forwarded += wire.bodies_forwarded;
  total->wire.evictions += wire.evictions;
  total->wire.invalidation_batches += wire.invalidation_batches;
  total->wire.fetch_batches += wire.fetch_batches;
  total->wire.body_batches += wire.body_batches;
  total->invariant_sweeps += r.u64();
  std::uint32_t nviol = r.u32();
  for (std::uint32_t i = 0; i < nviol; ++i) total->violations.push_back(r.str());
  std::uint32_t nadded = r.u32();
  for (std::uint32_t i = 0; i < nadded; ++i) {
    PolyId id = r.u64();
    total->basis_ids.emplace_back(id, Polynomial::read(r));
  }
}

ParallelResult groebner_parallel_socket(SocketMachine& machine, const PolySystem& sys,
                                        const ParallelConfig& cfg) {
  GBD_CHECK_MSG(!cfg.record_trace, "record_trace is not supported across processes");
  ParallelResult res = groebner_parallel_machine(machine, sys, cfg);

  std::size_t input_count = 0;
  for (const auto& p : sys.polys) {
    if (!p.is_zero()) input_count += 1;
  }
  int rank = machine.rank();
  std::vector<std::vector<std::uint8_t>> blobs =
      machine.gather(encode_rank_contribution(rank, input_count, res));
  if (rank != 0) return res;  // partial; rank 0 holds the authoritative result

  for (int r = 1; r < machine.nprocs(); ++r) {
    merge_rank_contribution(&res, blobs[static_cast<std::size_t>(r)]);
  }
  std::sort(res.basis_ids.begin(), res.basis_ids.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  res.basis.clear();
  for (const auto& [id, poly] : res.basis_ids) res.basis.push_back(poly);
  return res;
}

}  // namespace gbd
