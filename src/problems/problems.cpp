#include "problems/problems.hpp"

#include <map>

#include "support/check.hpp"

namespace gbd {

namespace {

struct BuiltinProblem {
  ProblemInfo info;
  const char* text;
};

// --- exact classical systems -------------------------------------------------

// Arnborg's examples are the cyclic n-roots systems (also "Arnborg-Lazard").
constexpr const char* kArnborg4 = R"(
name arnborg4;
vars x, y, z, w;
order grlex;
x + y + z + w;
x*y + y*z + z*w + w*x;
x*y*z + y*z*w + z*w*x + w*x*y;
x*y*z*w - 1;
)";

constexpr const char* kArnborg5 = R"(
name arnborg5;
vars a, b, c, d, e;
order grlex;
a + b + c + d + e;
a*b + b*c + c*d + d*e + e*a;
a*b*c + b*c*d + c*d*e + d*e*a + e*a*b;
a*b*c*d + b*c*d*e + c*d*e*a + d*e*a*b + e*a*b*c;
a*b*c*d*e - 1;
)";

// Katsura's magnetism equations, n = 4 (5 variables).
constexpr const char* kKatsura4 = R"(
name katsura4;
vars u0, u1, u2, u3, u4;
order grlex;
u0 + 2*u1 + 2*u2 + 2*u3 + 2*u4 - 1;
u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 + 2*u4^2 - u0;
2*u0*u1 + 2*u1*u2 + 2*u2*u3 + 2*u3*u4 - u1;
u1^2 + 2*u0*u2 + 2*u1*u3 + 2*u2*u4 - u2;
2*u1*u2 + 2*u0*u3 + 2*u1*u4 - u3;
)";

// Trinks' system (Boege–Gebauer–Kredel); "big" variant with 6 generators.
constexpr const char* kTrinks1 = R"(
name trinks1;
vars w, p, z, t, s, b;
order grlex;
45*p + 35*s - 165*b - 36;
35*p + 40*z + 25*t - 27*s;
15*w + 25*p*s + 30*z - 18*t - 165*b^2;
-9*w + 15*p*t + 20*z*s;
w*p + 2*z*t - 11*b^3;
99*w - 11*s*b + 3*b^2;
)";

// "Little" Trinks: the same plus one more equation, which makes the
// computation much shorter (the paper's trinks2).
constexpr const char* kTrinks2 = R"(
name trinks2;
vars w, p, z, t, s, b;
order grlex;
45*p + 35*s - 165*b - 36;
35*p + 40*z + 25*t - 27*s;
15*w + 25*p*s + 30*z - 18*t - 165*b^2;
-9*w + 15*p*t + 20*z*s;
w*p + 2*z*t - 11*b^3;
99*w - 11*s*b + 3*b^2;
10000*b^2 + 6600*b + 2673;
)";

// --- documented stand-ins ------------------------------------------------------

// lazard: historical input not reconstructible. Stand-in constructed to have
// the documented property of the paper's lazard (§7 "Superlinear Speedup"):
// the pair-selection heuristic is "not sufficiently discerning" — a Katsura
// core carries the bulk of the work, while the high-degree w-generators hide
// "magic" s-polynomials (pairwise differences that are *linear* relations
// collapsing the core). The normal strategy defers those pairs (their lcm is
// w^5), so a single queue discovers them late; with the initial pairs
// scattered over processors, some processor reaches one early and the whole
// computation shortcuts — superlinear speedup over the one-processor run,
// exactly the phenomenon Figure 8(a) reports.
constexpr const char* kLazard = R"(
name lazard;
vars u0, u1, u2, u3, u4, w;
order grlex;
u0 + 2*u1 + 2*u2 + 2*u3 + 2*u4 - 1;
u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 + 2*u4^2 - u0;
2*u0*u1 + 2*u1*u2 + 2*u2*u3 + 2*u3*u4 - u1;
u1^2 + 2*u0*u2 + 2*u1*u3 + 2*u2*u4 - u2;
2*u1*u2 + 2*u0*u3 + 2*u1*u4 - u3;
w^5 + u1;
w^5 + u1 + u2 - u4;
w^5 + 3*u1 - u3;
)";

// morgenstern: stand-in, Katsura n = 3 — a mid-size regular system with
// running time between arnborg4 and katsura4, matching the slot morgenstern
// occupies in the paper's tables.
constexpr const char* kMorgenstern = R"(
name morgenstern;
vars u0, u1, u2, u3;
order grlex;
u0 + 2*u1 + 2*u2 + 2*u3 - 1;
u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 - u0;
2*u0*u1 + 2*u1*u2 + 2*u2*u3 - u1;
u1^2 + 2*u0*u2 + 2*u1*u3 - u2;
)";

// pavelle4: stand-in with the flavor of Pavelle's geometry-proving examples:
// surface intersection/implicitization generators in 4 variables.
constexpr const char* kPavelle4 = R"(
name pavelle4;
vars x, y, z, u;
order grlex;
x^2 + y^2 + z^2 - u^2;
x*y + z^2 - 1;
x*y*z - x^2 - y^2 - z + u;
x^2*z - 2*y + u^2 - 1;
)";

// rose: stand-in of comparable shape (3 variables, mixed degrees, rational
// data cleared to integers) standing in for the Rose general-equilibrium
// system.
constexpr const char* kRose = R"(
name rose;
vars u3, u4, a;
order grlex;
7*u4^4 - 20*a^2;
2160*a^2*u3^4 + 1512*a*u3^4 + 315*u3^4 - 4000*a^2 - 2800*a - 490;
15*a^2*u4^3 + 18*a*u3^2*u4 - 4*a*u3*u4 + 6*u4^3 - 7*u3^2 + 10*a - 3;
)";

// --- extra systems beyond the paper's table (for scaling studies) -------------

constexpr const char* kKatsura5 = R"(
name katsura5;
vars u0, u1, u2, u3, u4, u5;
order grlex;
u0 + 2*u1 + 2*u2 + 2*u3 + 2*u4 + 2*u5 - 1;
u0^2 + 2*u1^2 + 2*u2^2 + 2*u3^2 + 2*u4^2 + 2*u5^2 - u0;
2*u0*u1 + 2*u1*u2 + 2*u2*u3 + 2*u3*u4 + 2*u4*u5 - u1;
u1^2 + 2*u0*u2 + 2*u1*u3 + 2*u2*u4 + 2*u3*u5 - u2;
2*u1*u2 + 2*u0*u3 + 2*u1*u4 + 2*u2*u5 - u3;
u2^2 + 2*u1*u3 + 2*u0*u4 + 2*u1*u5 - u4;
)";

constexpr const char* kNoon3 = R"(
name noon3;
vars x, y, z;
order grlex;
10*x*y^2 + 10*x*z^2 - 11*x + 10;
10*y*x^2 + 10*y*z^2 - 11*y + 10;
10*z*x^2 + 10*z*y^2 - 11*z + 10;
)";

const std::vector<BuiltinProblem>& builtins() {
  static const std::vector<BuiltinProblem> kProblems = {
      {{"arnborg4", "cyclic 4-roots (exact classical system)", false}, kArnborg4},
      {{"arnborg5", "cyclic 5-roots (exact classical system)", false}, kArnborg5},
      {{"katsura4", "Katsura magnetism n=4 (exact classical system)", false}, kKatsura4},
      {{"lazard", "stand-in: Katsura core + deferred 'magic' pairs (superlinear-prone)", true},
       kLazard},
      {{"morgenstern", "stand-in: Katsura n=3", true}, kMorgenstern},
      {{"pavelle4", "stand-in: geometric system in 4 vars", true}, kPavelle4},
      {{"rose", "stand-in for the Rose equilibrium system", true}, kRose},
      {{"trinks1", "Trinks 'big' system (exact classical system)", false}, kTrinks1},
      {{"trinks2", "Trinks 'little' system (exact classical system)", false}, kTrinks2},
      // Beyond the paper's table: larger/independent systems for scaling and
      // property studies (flagged extra so the exhibit benches skip them).
      {{"katsura5", "Katsura magnetism n=5 (extra, not in the paper's tables)", false, true},
       kKatsura5},
      {{"noon3", "Noonburg neural network n=3 (extra, not in the paper's tables)", false, true},
       kNoon3},
  };
  return kProblems;
}

/// Parametric spellings: "katsura(7)", "cyclic(5)", "eco(4)",
/// "sparse(4,123)". `family` is the base name; `args` the comma-separated
/// non-negative integer arguments, validated per family below.
struct ParametricName {
  std::string family;
  std::vector<std::uint64_t> args;
};

bool parse_parametric(const std::string& name, ParametricName* out) {
  std::size_t open = name.find('(');
  if (open == std::string::npos || open == 0 || name.back() != ')') return false;
  std::string base = name.substr(0, open);
  std::vector<std::uint64_t> args;
  std::uint64_t cur = 0;
  std::size_t digits = 0;
  for (std::size_t i = open + 1; i + 1 <= name.size() - 1; ++i) {
    char c = name[i];
    if (c == ',') {
      if (digits == 0) return false;
      args.push_back(cur);
      cur = 0;
      digits = 0;
    } else if (c >= '0' && c <= '9') {
      if (++digits > 9) return false;
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
    } else {
      return false;
    }
  }
  if (digits == 0) return false;
  args.push_back(cur);

  const std::uint64_t n = args[0];
  if (base == "katsura" && args.size() == 1 && n >= 1 && n <= 16) {
    // ok
  } else if (base == "cyclic" && args.size() == 1 && n >= 2 && n <= 12) {
    // ok
  } else if (base == "eco" && args.size() == 1 && n >= 3 && n <= 12) {
    // ok
  } else if (base == "sparse" && args.size() == 2 && n >= 2 && n <= 8) {
    // args[1] is the seed; any value is valid
  } else {
    return false;
  }
  out->family = std::move(base);
  out->args = std::move(args);
  return true;
}

PolySystem load_parametric(const ParametricName& pn) {
  const int n = static_cast<int>(pn.args[0]);
  if (pn.family == "katsura") return katsura_system(n);
  if (pn.family == "cyclic") return cyclic_system(n);
  if (pn.family == "eco") return eco_system(n);
  // sparse(N,SEED): N vars, N polys, degree <= 2, <= 3 terms — small jobs of
  // varied shape for the serve throughput corpus.
  return random_sparse_system(pn.args[1], static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n), 2, 3);
}

}  // namespace

PolySystem katsura_system(int n) {
  GBD_CHECK_MSG(n >= 1 && n <= 16, "katsura_system: n out of range");
  PolySystem sys;
  sys.name = "katsura" + std::to_string(n);
  sys.ctx.order = OrderKind::kGrLex;
  for (int i = 0; i <= n; ++i) sys.ctx.vars.push_back("u" + std::to_string(i));
  const std::size_t nv = sys.ctx.nvars();
  auto mono = [&](std::initializer_list<int> vars_used) {
    std::vector<std::uint32_t> e(nv, 0);
    for (int v : vars_used) e[static_cast<std::size_t>(v)] += 1;
    return Monomial(std::move(e));
  };
  // u0 + 2*u1 + ... + 2*un - 1.
  std::vector<Term> lin;
  for (int i = 0; i <= n; ++i) lin.push_back(Term{BigInt(i == 0 ? 1 : 2), mono({i})});
  lin.push_back(Term{BigInt(-1), mono({})});
  sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(lin)));
  // For m = 0..n-1: sum over l of u_|l| * u_|m-l| (indices beyond n drop
  // out) minus u_m — the convolution identities of Katsura's problem.
  for (int m = 0; m < n; ++m) {
    std::vector<Term> ts;
    for (int l = -n; l <= n; ++l) {
      int a = l < 0 ? -l : l;
      int b = m - l < 0 ? l - m : m - l;
      if (a > n || b > n) continue;
      ts.push_back(Term{BigInt(1), mono({a, b})});
    }
    ts.push_back(Term{BigInt(-1), mono({m})});
    sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(ts)));
  }
  for (auto& p : sys.polys) p.make_primitive();
  return sys;
}

PolySystem cyclic_system(int n) {
  GBD_CHECK_MSG(n >= 2 && n <= 12, "cyclic_system: n out of range");
  PolySystem sys;
  sys.name = "cyclic" + std::to_string(n);
  sys.ctx.order = OrderKind::kGrLex;
  for (int i = 0; i < n; ++i) sys.ctx.vars.push_back("x" + std::to_string(i));
  const std::size_t nv = sys.ctx.nvars();
  // For d = 1..n-1: the rotational sum of length-d products of consecutive
  // variables (indices mod n).
  for (int d = 1; d < n; ++d) {
    std::vector<Term> ts;
    for (int i = 0; i < n; ++i) {
      std::vector<std::uint32_t> e(nv, 0);
      for (int k = 0; k < d; ++k) e[static_cast<std::size_t>((i + k) % n)] += 1;
      ts.push_back(Term{BigInt(1), Monomial(std::move(e))});
    }
    sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(ts)));
  }
  // x0*x1*...*x_{n-1} - 1.
  std::vector<Term> last;
  last.push_back(Term{BigInt(1), Monomial(std::vector<std::uint32_t>(nv, 1))});
  last.push_back(Term{BigInt(-1), Monomial(std::vector<std::uint32_t>(nv, 0))});
  sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(last)));
  for (auto& p : sys.polys) p.make_primitive();
  return sys;
}

PolySystem eco_system(int n) {
  GBD_CHECK_MSG(n >= 3 && n <= 12, "eco_system: n out of range");
  PolySystem sys;
  sys.name = "eco" + std::to_string(n);
  sys.ctx.order = OrderKind::kGrLex;
  for (int i = 1; i <= n; ++i) sys.ctx.vars.push_back("x" + std::to_string(i));
  const std::size_t nv = sys.ctx.nvars();
  auto mono = [&](std::initializer_list<int> vars_used) {
    // 1-based variable numbers, multiplicities accumulate.
    std::vector<std::uint32_t> e(nv, 0);
    for (int v : vars_used) e[static_cast<std::size_t>(v - 1)] += 1;
    return Monomial(std::move(e));
  };
  // f_k = x_n·(x_k + Σ_{i=1}^{n-1-k} x_i·x_{i+k}) − k, k = 1..n-1.
  for (int k = 1; k < n; ++k) {
    std::vector<Term> ts;
    ts.push_back(Term{BigInt(1), mono({k, n})});
    for (int i = 1; i + k <= n - 1; ++i) {
      ts.push_back(Term{BigInt(1), mono({i, i + k, n})});
    }
    ts.push_back(Term{BigInt(-k), mono({})});
    sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(ts)));
  }
  // x_1 + … + x_{n-1} + 1.
  std::vector<Term> lin;
  for (int i = 1; i < n; ++i) lin.push_back(Term{BigInt(1), mono({i})});
  lin.push_back(Term{BigInt(1), mono({})});
  sys.polys.push_back(Polynomial::from_terms(sys.ctx, std::move(lin)));
  for (auto& p : sys.polys) p.make_primitive();
  return sys;
}

PolySystem random_sparse_system(std::uint64_t seed, std::size_t nvars, std::size_t npolys,
                                std::uint32_t maxdeg, std::size_t maxterms) {
  GBD_CHECK(nvars >= 1 && npolys >= 1 && maxdeg >= 1 && maxterms >= 1);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x51ed270b7a649c1dULL);
  PolySystem sys;
  sys.name = "sparse" + std::to_string(nvars) + "_" + std::to_string(npolys) + "_" +
             std::to_string(seed);
  sys.ctx.order = OrderKind::kGrLex;
  for (std::size_t i = 0; i < nvars; ++i) sys.ctx.vars.push_back("x" + std::to_string(i));

  while (sys.polys.size() < npolys) {
    std::size_t nterms = 1 + rng.below(maxterms);
    std::vector<Term> terms;
    for (std::size_t t = 0; t < nterms; ++t) {
      // Sparse support: each term touches at most two distinct variables.
      std::vector<std::uint32_t> exps(nvars, 0);
      std::uint32_t budget = static_cast<std::uint32_t>(1 + rng.below(maxdeg));
      std::size_t v1 = rng.below(nvars);
      std::size_t v2 = rng.below(nvars);
      for (std::uint32_t d = 0; d < budget; ++d) {
        exps[rng.below(2) == 0 ? v1 : v2] += 1;
      }
      std::int64_t c = static_cast<std::int64_t>(rng.below(18)) - 9;
      if (c >= 0) c += 1;  // exclude zero
      terms.push_back(Term{BigInt(c), Monomial(std::move(exps))});
    }
    // A constant generator makes the ideal trivially (1); skip those so the
    // generated jobs exercise a real computation.
    Polynomial p = Polynomial::from_terms(sys.ctx, std::move(terms));
    if (p.is_zero() || p.hmono().is_one()) continue;
    p.make_primitive();
    sys.polys.push_back(std::move(p));
  }
  return sys;
}

const std::vector<ProblemInfo>& problem_list() {
  static const std::vector<ProblemInfo> kInfos = [] {
    std::vector<ProblemInfo> v;
    for (const auto& b : builtins()) v.push_back(b.info);
    return v;
  }();
  return kInfos;
}

bool has_problem(const std::string& name) {
  for (const auto& b : builtins()) {
    if (b.info.name == name) return true;
  }
  ParametricName pn;
  return parse_parametric(name, &pn);
}

PolySystem load_problem(const std::string& name) {
  ParametricName pn;
  if (parse_parametric(name, &pn)) {
    return load_parametric(pn);
  }
  for (const auto& b : builtins()) {
    if (b.info.name != name) continue;
    PolySystem sys = parse_system_or_die(b.text);
    // Engines expect canonical generators: primitive with positive head.
    for (auto& p : sys.polys) p.make_primitive();
    return sys;
  }
  GBD_CHECK_MSG(false, ("unknown problem: " + name).c_str());
  __builtin_unreachable();
}

PolySystem replicate_renamed(const PolySystem& base, int copies) {
  GBD_CHECK(copies >= 1);
  PolySystem out;
  out.name = base.name + "x" + std::to_string(copies);
  out.ctx.order = base.ctx.order;
  std::size_t nv = base.ctx.nvars();
  for (int c = 0; c < copies; ++c) {
    for (const auto& v : base.ctx.vars) {
      out.ctx.vars.push_back(copies == 1 ? v : v + "_" + std::to_string(c));
    }
  }
  for (int c = 0; c < copies; ++c) {
    for (const auto& p : base.polys) {
      std::vector<Term> terms;
      for (const auto& t : p.terms()) {
        std::vector<std::uint32_t> exps(out.ctx.nvars(), 0);
        for (std::size_t i = 0; i < nv; ++i) {
          exps[static_cast<std::size_t>(c) * nv + i] = t.mono.exp(i);
        }
        terms.push_back(Term{t.coeff, Monomial(std::move(exps))});
      }
      out.polys.push_back(Polynomial::from_terms(out.ctx, std::move(terms)));
    }
  }
  return out;
}

PolySystem random_system(Rng& rng, std::size_t nvars, std::size_t npolys, std::uint32_t maxdeg,
                         std::size_t maxterms, std::int64_t coeff_bound) {
  GBD_CHECK(nvars >= 1 && npolys >= 1 && coeff_bound >= 1);
  PolySystem sys;
  sys.name = "random";
  sys.ctx.order = OrderKind::kGrLex;
  for (std::size_t i = 0; i < nvars; ++i) sys.ctx.vars.push_back("x" + std::to_string(i));

  while (sys.polys.size() < npolys) {
    std::size_t nterms = 1 + rng.below(maxterms);
    std::vector<Term> terms;
    for (std::size_t t = 0; t < nterms; ++t) {
      std::vector<std::uint32_t> exps(nvars, 0);
      std::uint32_t budget = static_cast<std::uint32_t>(rng.below(maxdeg + 1));
      for (std::uint32_t d = 0; d < budget; ++d) {
        exps[rng.below(nvars)] += 1;
      }
      std::int64_t c = static_cast<std::int64_t>(rng.below(2 * coeff_bound)) - coeff_bound;
      if (c >= 0) c += 1;  // exclude zero
      terms.push_back(Term{BigInt(c), Monomial(std::move(exps))});
    }
    Polynomial p = Polynomial::from_terms(sys.ctx, std::move(terms));
    if (!p.is_zero()) {
      p.make_primitive();
      sys.polys.push_back(std::move(p));
    }
  }
  return sys;
}

}  // namespace gbd
