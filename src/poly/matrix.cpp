#include "poly/matrix.hpp"

#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

MatrixRow expand_row(const SymbolicFrame& frame, const Polynomial& p) {
  MatrixRow row;
  row.cols.reserve(p.nterms());
  row.coeffs.reserve(p.nterms());
  for (const Term& t : p.terms()) {
    std::int64_t c = frame.col_of(t.mono);
    GBD_CHECK_MSG(c >= 0, "build_matrix: row monomial missing from frame");
    row.cols.push_back(static_cast<std::uint32_t>(c));
    row.coeffs.push_back(t.coeff);
  }
  // Terms are strictly decreasing monomials and the frame is sorted the same
  // way, so the column indices come out strictly increasing.
  return row;
}

}  // namespace

MacaulayMatrix build_matrix(const PolyContext& ctx, const SymbolicFrame& frame,
                            const std::vector<Polynomial>& rows, const CoeffOptions& coeff,
                            bool build_runs) {
  MacaulayMatrix mat;
  mat.ncols = frame.ncols();
  mat.work_rows.reserve(rows.size());
  std::uint64_t cells = 0;
  for (const Polynomial& p : rows) {
    mat.work_rows.push_back(expand_row(frame, p));
    cells += p.nterms();
  }

  if (coeff.is_zp()) {
    ZpField field(coeff.prime);
    mat.has_runs = build_runs && field.delayed_reduction_ok();
    mat.zp_pivots.reserve(frame.pivots.size());
    if (mat.has_runs) mat.zp_runs.reserve(frame.pivots.size());
    for (const PivotProduct& pv : frame.pivots) {
      const auto& terms = pv.reducer->terms();
      ZpPivotRow row;
      row.cols.reserve(terms.size());
      row.mont.reserve(terms.size());
      // Monic once per batch: fold hc^{-1} into the Montgomery conversion so
      // the kernel's per-use factor is just the accumulator cell itself.
      Zp inv_head = field.inv(field.from_residue(zp_residue_u64(pv.reducer->hcoef())));
      std::vector<std::uint64_t> canon;  // monic canonical residues, per term
      if (mat.has_runs) canon.reserve(terms.size());
      for (const Term& t : terms) {
        std::int64_t c = frame.col_of(t.mono * pv.mult);
        GBD_CHECK_MSG(c >= 0, "build_matrix: pivot monomial missing from frame");
        row.cols.push_back(static_cast<std::uint32_t>(c));
        std::uint64_t r = field.mul_canonical(inv_head, zp_residue_u64(t.coeff));
        if (mat.has_runs) canon.push_back(r);
        row.mont.push_back(field.from_residue(r).m);
      }
      cells += terms.size();
      if (mat.has_runs) {
        // Multiline layout: maximal consecutive-column runs of the tail
        // (j >= 1 — the monic head cancels exactly and is never streamed).
        ZpPivotRuns runs;
        for (std::size_t j = 1; j < row.cols.size(); ++j) {
          if (!runs.runs.empty()) {
            ZpPivotRuns::Run& last = runs.runs.back();
            if (row.cols[j] == last.col + last.len) {
              last.len += 1;
              runs.coeffs.push_back(static_cast<std::uint32_t>(canon[j]));
              continue;
            }
          }
          runs.runs.push_back(ZpPivotRuns::Run{
              row.cols[j], static_cast<std::uint32_t>(runs.coeffs.size()), 1});
          runs.coeffs.push_back(static_cast<std::uint32_t>(canon[j]));
        }
        // Deliberately not charged: whether runs are built depends on host
        // CPU dispatch, and charged units must be host-independent so
        // SimMachine virtual time reproduces everywhere.
        mat.zp_runs.push_back(std::move(runs));
      }
      mat.zp_pivots.push_back(std::move(row));
    }
  }
  CostCounter::charge(cells);
  (void)ctx;
  return mat;
}

Polynomial row_to_poly(const PolyContext& ctx, const SymbolicFrame& frame, const MatrixRow& row) {
  std::vector<Term> terms;
  terms.reserve(row.nnz());
  for (std::size_t i = 0; i < row.nnz(); ++i) {
    terms.push_back(Term{row.coeffs[i], frame.cols[row.cols[i]]});
  }
  CostCounter::charge(terms.size());
  return Polynomial::from_sorted_terms(ctx, std::move(terms));
}

}  // namespace gbd
