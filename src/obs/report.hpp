// Trace analyzer — the paper's per-processor idle/utilization breakdown.
//
// Input is a TraceData (obs/tracer.hpp); output is, per processor, the
// virtual (or wall) time split into the four buckets of the paper's
// activity analysis:
//
//   reduce — useful algebra: task processing, s-polys, reduction, the
//            under-lock augment work and freshen re-reductions (self-time:
//            nested handler/wait spans are subtracted);
//   comm   — serving the network (handler dispatch spans), waiting on
//            protocol rounds (wait spans with WaitReason::kProtocol), and
//            the residual unattributed engine time (steal/validate send
//            circuits and loop bookkeeping — protocol-driving code that is
//            not individually spanned);
//   hold   — waiting on missing polynomial bodies (wait spans with
//            WaitReason::kHold) plus the suspended/stalled resume scans;
//   idle   — true idleness: wait spans with WaitReason::kIdle, steal-circuit
//            backoff pauses, and the head/tail gaps before a processor's
//            first event and after its last (the tail gap is the
//            load-imbalance loss: the processor finished while the makespan
//            clock kept running).
//
// The four buckets plus the (internally tracked, comm-folded) residual
// partition [0, makespan] exactly, so the rendered percentages sum to 100.
//
// Self-time uses the completion-order invariant of the span ring (children
// are recorded before their parents): scanning events in order, frames
// contained in a new span are its direct children and their durations are
// subtracted once. The same pass powers check_well_formed, which verifies
// the stack discipline a trace claims (used by the chaos tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace gbd {

struct ProcBreakdown {
  std::uint64_t reduce = 0;
  std::uint64_t comm = 0;  ///< handler + protocol-wait self-time (no residual)
  std::uint64_t hold = 0;
  std::uint64_t idle = 0;
  std::uint64_t other = 0;  ///< unattributed busy time; folded into comm when rendered

  // Matrix-reduction phase self-times (subsets of `reduce`; all zero unless
  // the run used cfg.gb.matrix_reduce).
  std::uint64_t mat_symbolic = 0;
  std::uint64_t mat_build = 0;
  std::uint64_t mat_eliminate = 0;
  std::uint64_t mat_convert = 0;

  // Secondary per-proc facts for the report.
  std::uint64_t spans = 0;         ///< sync spans analyzed
  std::uint64_t holds_opened = 0;  ///< kHold async begins
  std::uint64_t steals = 0;        ///< steal instants

  std::uint64_t busy() const { return reduce + comm + hold + other; }
  std::uint64_t matrix_total() const {
    return mat_symbolic + mat_build + mat_eliminate + mat_convert;
  }
};

struct BreakdownReport {
  ClockDomain domain = ClockDomain::kVirtual;
  std::uint64_t makespan = 0;
  std::vector<ProcBreakdown> procs;
  /// max busy / mean busy over processors (1.0 = perfectly balanced).
  double load_imbalance = 0.0;
  /// Busy time of the busiest processor — an estimate of the schedule's
  /// critical path; makespan minus this is that processor's idle loss.
  std::uint64_t critical_path = 0;
  std::uint64_t dropped_events = 0;  ///< ring overflow across processors
};

BreakdownReport analyze_trace(const TraceData& data);

/// "" when every processor's sync spans obey the discipline (every open span
/// closed, properly nested, no partial overlap, completion order monotone);
/// otherwise a description of the first violation found.
std::string check_well_formed(const TraceData& data);

/// The paper-style table: one row per processor with % reduce / % comm /
/// % hold / % idle (comm includes the unattributed residual; the footnote
/// reports its maximum), plus makespan, load-imbalance ratio and the
/// critical-path estimate.
std::string render_breakdown(const BreakdownReport& report);

}  // namespace gbd
