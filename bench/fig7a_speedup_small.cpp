// Figure 7(a) — speedup on the small inputs arnborg4 and trinks1, best of 5
// runs, with the shared-memory (Vidal-style) engine's best curve alongside
// and, since PR 3, the same worker on real OS threads (ThreadMachine) as a
// wall-clock comparison column.
//
// As in the paper, speedups are the ratio of the parallel program's
// one-processor time to its P-processor time (scaled through (1,1)); small
// problems are limited by startup/termination transients. The real-thread
// column is wall time and only meaningful up to the host's core count —
// that caveat is why the virtual-time columns remain the exhibit.
#include <chrono>

#include "bench_common.hpp"
#include "gb/shared_memory.hpp"

using namespace gbd;

namespace {

/// Best-of-seeds wall time of the real-threads backend, milliseconds.
double thread_wall_ms(const PolySystem& sys, int nprocs, int repeats) {
  ParallelConfig cfg;
  cfg.gb = bench::paper_era_criteria();
  cfg.nprocs = nprocs;
  double best = 0;
  for (int s = 1; s <= repeats; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s);
    auto t0 = std::chrono::steady_clock::now();
    groebner_parallel_threads(sys, cfg);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (s == 1 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("Figure 7(a): speedup on small inputs (best of 5 runs)",
                      "Distributed GL-P vs the shared-memory baseline. Paper shape: rising but\n"
                      "clearly sublinear curves; the distributed version at least matches the\n"
                      "shared-memory one.");

  int seeds = bench::full_size() ? 5 : 3;
  std::vector<int> procs = {1, 2, 4, 8, 16};

  for (const char* name : {"arnborg4", "trinks1"}) {
    PolySystem sys = load_problem(name);
    std::printf("-- %s --\n", name);
    TextTable table({"P", "GL-P makespan", "GL-P speedup", "Shared makespan", "Shared speedup",
                     "Threads wall ms", "Threads speedup"});

    double glp_base = 0, shm_base = 0, thr_base = 0;
    for (int p : procs) {
      ParallelConfig cfg;
      cfg.gb = bench::paper_era_criteria();
      cfg.nprocs = p;
      ParallelResult best = bench::best_of_seeds(sys, cfg, p == 1 ? 1 : seeds);

      SharedMemoryResult shm_best;
      bool first = true;
      for (int s = 1; s <= (p == 1 ? 1 : seeds); ++s) {
        SharedMemoryConfig sc;
        sc.gb = bench::paper_era_criteria();
        sc.nprocs = p;
        sc.seed = static_cast<std::uint64_t>(s);
        SharedMemoryResult r = groebner_shared(sys, sc);
        if (first || r.makespan < shm_best.makespan) shm_best = r;
        first = false;
      }

      double thr_ms = thread_wall_ms(sys, p, p == 1 ? 1 : seeds);

      if (p == 1) {
        glp_base = static_cast<double>(best.machine.makespan);
        shm_base = static_cast<double>(shm_best.makespan);
        thr_base = thr_ms;
      }
      table.add_row({std::to_string(p), std::to_string(best.machine.makespan),
                     fmt(glp_base / static_cast<double>(best.machine.makespan)),
                     std::to_string(shm_best.makespan),
                     fmt(shm_base / static_cast<double>(shm_best.makespan)),
                     fmt(thr_ms), fmt(thr_base / thr_ms)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
