file(REMOVE_RECURSE
  "libgbd_basis.a"
)
