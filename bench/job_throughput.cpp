// PR 10 exhibit: GB-as-a-service job throughput.
//
// Drives the real daemon stack end to end — JobServer over TCP, the GBDF
// serve protocol, the canonical-form result cache, and requeue-on-worker-
// death — with a queued corpus of >= 1000 jobs, and reports jobs/sec plus
// p50/p99 client-observed latency into BENCH_pr10.json.
//
// Three scenarios, same harness:
//   cold_distinct  every job a distinct ideal: pure compute throughput
//   warm_cache     1000 jobs over 25 distinct ideals: cache-served rate
//   chaos_faults   a simulated rank death every 97th job on its first
//                  attempt: requeue machinery on the hot path, still
//                  exactly one result per token
//
// Every job asks for a certificate (want_cert): a scenario only counts as
// passed when every result is kDone with a verified certificate, and no
// token is lost or answered twice. The server starts paused so the whole
// corpus is queued (admission-controlled) before the first worker runs —
// the measured window is resume() -> last result.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace gbd {
namespace {

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

struct ScenarioRow {
  std::string name;
  std::size_t jobs = 0;
  std::size_t distinct = 0;
  double wall_ms = 0;
  double jobs_per_sec = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t requeues = 0;
  std::size_t certs = 0;
  std::size_t lost = 0;
  std::size_t duplicated = 0;
  bool ok = false;
};

double quantile_ms(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Queue `jobs` submissions across `nconns` connections against a paused
/// server, release the workers, and drain every result.
ScenarioRow run_scenario(const std::string& name, std::size_t jobs, std::size_t distinct,
                         std::size_t fault_every, std::uint32_t workers) {
  ScenarioRow row;
  row.name = name;
  row.jobs = jobs;
  row.distinct = distinct;

  ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = jobs + 64;
  cfg.cache_capacity = 512;
  cfg.start_paused = true;
  if (fault_every > 0) {
    cfg.fault_hook = [fault_every](const Job& job) {
      if (job.req.token % fault_every == 1 && job.attempt == 1)
        throw NetError("bench chaos: rank 1 connection reset mid-reduction");
    };
  }
  JobServer server(std::move(cfg));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "server start failed: %s\n", err.c_str());
    return row;
  }

  const std::size_t nconns = 4;
  std::vector<ServeClient> conns(nconns);
  for (std::size_t c = 0; c < nconns; ++c) {
    if (!conns[c].connect("127.0.0.1", server.port(), &err)) {
      std::fprintf(stderr, "connect failed: %s\n", err.c_str());
      return row;
    }
  }

  // Tokens are 1..jobs, dealt round-robin over the connections. The ideal
  // cycles over `distinct` seeded sparse systems, so warm scenarios resolve
  // mostly from the canonical-form cache.
  std::vector<std::size_t> expected(nconns, 0);
  for (std::size_t i = 0; i < jobs; ++i) {
    SubmitRequest req;
    req.token = i + 1;
    req.source = 1;
    req.problem = "sparse(4," + std::to_string(100 + i % distinct) + ")";
    req.want_cert = true;
    if (!conns[i % nconns].submit(req)) {
      std::fprintf(stderr, "submit %zu failed\n", i);
      return row;
    }
    ++expected[i % nconns];
  }

  // Admission runs on the server's I/O thread: wait until the whole corpus
  // is actually queued so the measured window starts at full depth.
  for (int spin = 0; spin < 20'000 && server.queue_depth() < jobs; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (server.queue_depth() < jobs) {
    std::fprintf(stderr, "%s: only %zu of %zu jobs queued\n", name.c_str(), server.queue_depth(),
                 jobs);
    return row;
  }

  std::uint64_t t0 = mono_ms();
  server.resume();

  // Drain round-robin so no connection's results back up; stamp arrivals.
  std::map<std::uint64_t, std::size_t> results_per_token;
  std::vector<double> latencies;
  latencies.reserve(jobs);
  std::size_t got = 0;
  row.certs = 0;
  std::uint64_t deadline = t0 + 600'000;
  while (got < jobs && mono_ms() < deadline) {
    bool progressed = false;
    for (std::size_t c = 0; c < nconns; ++c) {
      if (expected[c] == 0) continue;
      ClientUpdate u;
      int pr = conns[c].poll(&u, 2);
      if (pr < 0) {
        std::fprintf(stderr, "%s: connection %zu dropped\n", name.c_str(), c);
        return row;
      }
      if (pr == 0) continue;
      progressed = true;
      if (u.kind != ClientUpdate::Kind::kResult) continue;
      ++results_per_token[u.result.token];
      --expected[c];
      ++got;
      latencies.push_back(static_cast<double>(mono_ms() - t0));
      if (u.result.status == JobState::kDone && u.result.cert == 1) ++row.certs;
      else
        std::fprintf(stderr, "%s: token %llu status=%s cert=%d %s\n", name.c_str(),
                     static_cast<unsigned long long>(u.result.token),
                     job_state_name(u.result.status), u.result.cert, u.result.error.c_str());
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::uint64_t t1 = mono_ms();

  for (std::uint64_t t = 1; t <= jobs; ++t) {
    auto it = results_per_token.find(t);
    if (it == results_per_token.end()) ++row.lost;
    else if (it->second > 1) ++row.duplicated;
  }

  row.wall_ms = static_cast<double>(t1 - t0);
  row.jobs_per_sec = row.wall_ms > 0 ? 1000.0 * static_cast<double>(got) / row.wall_ms : 0;
  row.p50_latency_ms = quantile_ms(latencies, 0.50);
  row.p99_latency_ms = quantile_ms(latencies, 0.99);
  row.cache_hits = server.cache_stats().hits;
  row.requeues = server.stats().requeues;
  row.ok = got == jobs && row.certs == jobs && row.lost == 0 && row.duplicated == 0;
  server.stop();
  return row;
}

int run(std::size_t jobs, const std::string& out_path) {
  std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::uint32_t workers = std::min(hw, 4u);

  std::vector<ScenarioRow> rows;
  rows.push_back(run_scenario("cold_distinct", jobs, jobs, 0, workers));
  rows.push_back(run_scenario("warm_cache", jobs, 25, 0, workers));
  rows.push_back(run_scenario("chaos_faults", jobs, 50, 97, workers));

  std::printf("%-14s %6s %9s %12s %12s %12s %10s %8s %5s %4s %4s\n", "scenario", "jobs",
              "wall_ms", "jobs_per_sec", "p50_lat_ms", "p99_lat_ms", "cache_hits", "requeues",
              "certs", "lost", "dup");
  bool all_ok = true;
  for (const ScenarioRow& r : rows) {
    std::printf("%-14s %6zu %9.0f %12.1f %12.1f %12.1f %10llu %8llu %5zu %4zu %4zu %s\n",
                r.name.c_str(), r.jobs, r.wall_ms, r.jobs_per_sec, r.p50_latency_ms,
                r.p99_latency_ms, static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.requeues), r.certs, r.lost, r.duplicated,
                r.ok ? "ok" : "FAIL");
    all_ok = all_ok && r.ok;
  }
  if (!all_ok) {
    std::fprintf(stderr, "a scenario failed its exactly-once/certificate contract\n");
    return 1;
  }

  std::ostringstream js;
  js << "{\n  \"bench\": \"pr10_job_throughput\",\n";
  js << "  \"config\": {\"workers\": " << workers << ", \"connections\": 4, \"backend\": \"seq\", "
     << "\"want_cert\": true, \"queued_before_start\": true},\n";
  js << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"jobs\": %zu, \"distinct\": %zu, \"wall_ms\": %.0f, "
                  "\"jobs_per_sec\": %.1f, \"p50_latency_ms\": %.1f, \"p99_latency_ms\": %.1f, "
                  "\"cache_hits\": %llu, \"requeues\": %llu, \"certs\": %zu, \"lost\": %zu, "
                  "\"duplicated\": %zu}%s\n",
                  r.name.c_str(), r.jobs, r.distinct, r.wall_ms, r.jobs_per_sec, r.p50_latency_ms,
                  r.p99_latency_ms, static_cast<unsigned long long>(r.cache_hits),
                  static_cast<unsigned long long>(r.requeues), r.certs, r.lost, r.duplicated,
                  i + 1 < rows.size() ? "," : "");
    js << buf;
  }
  js << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gbd

int main(int argc, char** argv) {
  std::size_t jobs = 1000;
  std::string out_path = "BENCH_pr10.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      jobs = 60;
      out_path = "/tmp/BENCH_pr10_smoke.json";
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N] [--out FILE] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return gbd::run(jobs, out_path);
}
