# Empty dependencies file for solve_system.
# This may be replaced when dependencies are built.
