file(REMOVE_RECURSE
  "libgbd_poly.a"
)
