// Tests for the G-1 transition-axiom engine: schedule-independence of the
// result is the property the paper's derivation rests on.
#include "gb/transition.hpp"

#include <gtest/gtest.h>

#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

std::vector<Polynomial> reduced_reference(const PolySystem& sys) {
  return reduce_basis(sys.ctx, groebner_sequential(sys).basis);
}

TEST(TransitionTest, MatchesSequentialOnBenchmarks) {
  for (const char* name : {"arnborg4", "trinks2", "morgenstern"}) {
    PolySystem sys = load_problem(name);
    std::vector<Polynomial> ref = reduced_reference(sys);
    TransitionResult res = groebner_transition(sys);
    std::string why;
    EXPECT_TRUE(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) << name << why;
    std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
    ASSERT_EQ(red.size(), ref.size()) << name;
    for (std::size_t i = 0; i < red.size(); ++i) {
      EXPECT_TRUE(red[i].equals(ref[i])) << name << " " << i;
    }
  }
}

class TransitionScheduleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitionScheduleTest, AnyScheduleComputesTheSameReducedBasis) {
  PolySystem sys = load_problem("arnborg4");
  std::vector<Polynomial> ref = reduced_reference(sys);
  TransitionConfig cfg;
  cfg.seed = GetParam();
  TransitionResult res = groebner_transition(sys, cfg);
  EXPECT_TRUE(is_groebner_basis(sys.ctx, res.basis));
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
  // The schedule really interleaved: reducts were in flight concurrently
  // (more spolys fired than augments+discards at some point is hard to
  // observe post-hoc; at least all axiom kinds fired).
  EXPECT_GT(res.trace.fired_spoly, 0u);
  EXPECT_GT(res.trace.fired_reduce, 0u);
  EXPECT_GT(res.trace.fired_augment, 0u);
  EXPECT_GT(res.trace.fired_discard, 0u);
}

TEST_P(TransitionScheduleTest, FusedAxiomAgrees) {
  PolySystem sys = load_problem("arnborg4");
  std::vector<Polynomial> ref = reduced_reference(sys);
  TransitionConfig cfg;
  cfg.seed = GetParam();
  cfg.fused_reduce_augment = true;
  TransitionResult res = groebner_transition(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionScheduleTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 777777));

TEST(TransitionTest, MaxInflightOneActsSequentially) {
  // With one reduct in flight the engine degenerates to Algorithm S order
  // modulo the pair heuristic; spoly firings equal discards + augments.
  PolySystem sys = load_problem("trinks2");
  TransitionConfig cfg;
  cfg.max_inflight = 1;
  TransitionResult res = groebner_transition(sys, cfg);
  EXPECT_TRUE(is_groebner_basis(sys.ctx, res.basis));
  EXPECT_EQ(res.trace.fired_spoly, res.trace.fired_discard + res.trace.fired_augment);
}

TEST(TransitionTest, WideInflightStillTerminates) {
  PolySystem sys = load_problem("morgenstern");
  TransitionConfig cfg;
  cfg.max_inflight = 64;
  cfg.seed = 5;
  TransitionResult res = groebner_transition(sys, cfg);
  EXPECT_TRUE(is_groebner_basis(sys.ctx, res.basis));
}

TEST(TransitionTest, DeterministicPerSeed) {
  PolySystem sys = load_problem("arnborg4");
  TransitionConfig cfg;
  cfg.seed = 2024;
  TransitionResult a = groebner_transition(sys, cfg);
  TransitionResult b = groebner_transition(sys, cfg);
  EXPECT_EQ(a.trace.fired_spoly, b.trace.fired_spoly);
  EXPECT_EQ(a.trace.fired_reduce, b.trace.fired_reduce);
  EXPECT_EQ(a.basis.size(), b.basis.size());
  for (std::size_t i = 0; i < a.basis.size(); ++i) {
    EXPECT_TRUE(a.basis[i].equals(b.basis[i]));
  }
}

}  // namespace
}  // namespace gbd
