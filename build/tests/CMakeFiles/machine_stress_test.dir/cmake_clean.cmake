file(REMOVE_RECURSE
  "CMakeFiles/machine_stress_test.dir/machine_stress_test.cpp.o"
  "CMakeFiles/machine_stress_test.dir/machine_stress_test.cpp.o.d"
  "machine_stress_test"
  "machine_stress_test.pdb"
  "machine_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
