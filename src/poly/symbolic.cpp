#include "poly/symbolic.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

MatrixKernelStats& matrix_kernel_stats() {
  static thread_local MatrixKernelStats stats;
  return stats;
}

void reset_matrix_kernel_stats() { matrix_kernel_stats() = MatrixKernelStats{}; }

SymbolicFrame symbolic_preprocess(const PolyContext& ctx, const std::vector<Polynomial>& rows,
                                  const ReducerSet& reducers, SymbolicMemo* memo) {
  MatrixKernelStats& st = matrix_kernel_stats();
  st.batches += 1;
  const std::uint64_t ver = reducers.version();
  const bool use_memo = memo != nullptr && ver != ReducerSet::kUnversioned;

  SymbolicFrame frame;
  // Every monomial of the closure, mapped to its chosen reducer (index into
  // `chosen`, or -1 for irreducible). Worklist order does not affect the
  // result: each monomial is resolved exactly once and find_reducer is a
  // pure function of (monomial, reducer set).
  struct Resolved {
    const Polynomial* reducer;
    std::uint64_t reducer_id;
  };
  std::unordered_map<Monomial, std::int64_t, SymbolicFrame::MonoHash> seen;
  std::vector<Resolved> chosen;
  std::vector<Monomial> worklist;

  auto visit = [&](const Monomial& m) {
    if (seen.emplace(m, -2).second) worklist.push_back(m);
  };
  for (const Polynomial& r : rows) {
    for (const Term& t : r.terms()) visit(t.mono);
  }

  while (!worklist.empty()) {
    Monomial m = std::move(worklist.back());
    worklist.pop_back();
    std::uint64_t id = 0;
    const Polynomial* red = nullptr;
    bool resolved = false;
    if (use_memo) {
      if (SymbolicMemo::Entry* e = memo->lookup(m)) {
        // Reusable iff no head appended after the stamp divides m; a hit
        // refreshes the stamp so the next check scans an empty suffix.
        if (e->stamp == ver || !reducers.head_added_since(m, e->stamp)) {
          e->stamp = ver;
          if (e->reducible) {
            red = reducers.by_id(e->reducer_id);
            id = e->reducer_id;
            resolved = red != nullptr;  // id must resolve; else fall through
          } else {
            resolved = true;  // still irreducible
          }
          if (resolved) st.memo_hits += 1;
        }
      }
    }
    if (!resolved) {
      red = reducers.find_reducer(m, &id);
      if (use_memo) {
        st.memo_misses += 1;
        memo->store(m, SymbolicMemo::Entry{id, ver, red != nullptr});
      }
    }
    if (red == nullptr) {
      seen[m] = -1;
      continue;
    }
    // Schedule (m / HMONO(red))·red and feed its tail monomials back. The
    // head monomial is m itself, already in `seen`.
    seen[m] = static_cast<std::int64_t>(chosen.size());
    chosen.push_back(Resolved{red, id});
    Monomial mult = m / red->hmono();
    const auto& terms = red->terms();
    for (std::size_t i = 1; i < terms.size(); ++i) visit(terms[i].mono * mult);
    CostCounter::charge(terms.size());
  }

  // Frame columns: the closure in strictly decreasing monomial order.
  frame.cols.reserve(seen.size());
  for (const auto& [m, r] : seen) frame.cols.push_back(m);
  std::sort(frame.cols.begin(), frame.cols.end(),
            [&](const Monomial& a, const Monomial& b) { return ctx.cmp(a, b) > 0; });

  frame.index_.reserve(frame.cols.size());
  frame.pivot_of_col.assign(frame.cols.size(), -1);
  for (std::uint32_t c = 0; c < frame.cols.size(); ++c) {
    frame.index_.emplace(frame.cols[c], c);
  }
  // Pivot products in head-column order (strictly increasing: one product
  // per reducible monomial).
  for (std::uint32_t c = 0; c < frame.cols.size(); ++c) {
    std::int64_t k = seen.at(frame.cols[c]);
    GBD_DCHECK(k >= -1);
    if (k < 0) continue;
    const Resolved& r = chosen[static_cast<std::size_t>(k)];
    frame.pivot_of_col[c] = static_cast<std::int32_t>(frame.pivots.size());
    frame.pivots.push_back(
        PivotProduct{r.reducer, r.reducer_id, frame.cols[c] / r.reducer->hmono()});
  }

  st.frame_cols += frame.cols.size();
  st.pivot_rows += frame.pivots.size();
  st.work_rows += rows.size();
  return frame;
}

}  // namespace gbd
