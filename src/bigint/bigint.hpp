// Arbitrary-precision signed integers.
//
// The paper's implementation used the CMU bignum package for exact rational
// coefficient arithmetic; this is our from-scratch equivalent. Representation
// is sign–magnitude with little-endian 32-bit limbs (no leading zero limbs;
// zero is the empty limb vector with sign 0). Multiplication switches from
// schoolbook to Karatsuba above a limb threshold; division is Knuth's
// algorithm D; gcd is the binary algorithm.
//
// All operations charge CostCounter in proportion to the limb work they do,
// so coefficient growth is visible to the simulated machine's virtual clock.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gbd {

class Writer;
class Reader;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) — int literals are pervasive

  /// Parse a decimal string with optional leading '-'. Aborts on bad input;
  /// use parse() for fallible parsing.
  static BigInt from_string(std::string_view s);

  /// Fallible decimal parse; returns false and leaves *out untouched on error.
  static bool parse(std::string_view s, BigInt* out);

  bool is_zero() const { return sign_ == 0; }
  bool is_one() const { return sign_ == 1 && mag_.size() == 1 && mag_[0] == 1; }
  bool is_negative() const { return sign_ < 0; }
  /// -1, 0 or +1.
  int signum() const { return sign_; }

  /// Number of significant bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  /// Number of 32-bit limbs (0 for zero).
  std::size_t limbs() const { return mag_.size(); }

  /// Value as int64 if it fits; aborts otherwise (see fits_int64).
  std::int64_t to_int64() const;
  bool fits_int64() const;

  std::string to_string() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated (C-style) quotient. rhs must be nonzero.
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder with the sign of the dividend (C semantics). rhs must be nonzero.
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator/=(const BigInt& rhs) { return *this = *this / rhs; }
  BigInt& operator%=(const BigInt& rhs) { return *this = *this % rhs; }

  /// Quotient and remainder in one division.
  static void divmod(const BigInt& num, const BigInt& den, BigInt* quot, BigInt* rem);

  /// Greatest common divisor; always nonnegative. gcd(0,0) == 0.
  static BigInt gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple; always nonnegative.
  static BigInt lcm(const BigInt& a, const BigInt& b);
  static BigInt pow(const BigInt& base, std::uint32_t exp);

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  bool operator==(const BigInt& rhs) const { return sign_ == rhs.sign_ && mag_ == rhs.mag_; }
  bool operator!=(const BigInt& rhs) const { return !(*this == rhs); }
  bool operator<(const BigInt& rhs) const { return cmp(rhs) < 0; }
  bool operator<=(const BigInt& rhs) const { return cmp(rhs) <= 0; }
  bool operator>(const BigInt& rhs) const { return cmp(rhs) > 0; }
  bool operator>=(const BigInt& rhs) const { return cmp(rhs) >= 0; }

  /// Three-way comparison: negative, zero or positive.
  int cmp(const BigInt& rhs) const;

  /// Marshal to / unmarshal from a message payload.
  void write(Writer& w) const;
  static BigInt read(Reader& r);

  /// Bytes this value occupies on the wire (for communication-volume stats).
  std::size_t wire_size() const { return 1 + 8 + 4 * mag_.size(); }

  /// FNV-1a hash of the canonical representation.
  std::size_t hash() const;

 private:
  static int cmp_mag(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_school(const std::vector<std::uint32_t>& a,
                                               const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_karatsuba(const std::vector<std::uint32_t>& a,
                                                  const std::vector<std::uint32_t>& b);
  static void divmod_mag(const std::vector<std::uint32_t>& num,
                         const std::vector<std::uint32_t>& den,
                         std::vector<std::uint32_t>* quot, std::vector<std::uint32_t>* rem);
  static void trim(std::vector<std::uint32_t>& v);
  void normalize();

  BigInt(int sign, std::vector<std::uint32_t> mag) : sign_(sign), mag_(std::move(mag)) {
    normalize();
  }

  int sign_ = 0;
  std::vector<std::uint32_t> mag_;
};

}  // namespace gbd
