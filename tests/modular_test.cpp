// The multi-modular driver battery: CRT + rational-reconstruction round-trip
// fuzz (a bounded rational is recovered exactly once the modulus is large
// enough, and a failed reconstruction is *reported*, never silently wrong),
// the deliberately-unlucky-prime drills (detection by shape vote, exhaustion
// into the exact fallback), the fault-injection retry drill, and end-to-end
// agreement of the lifted basis with the exact engines on corpus and random
// systems — coefficient-identical, not just up to ideal equality.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/zp.hpp"
#include "gb/modular.hpp"
#include "gb/sequential.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

/// Uniform BigInt in [0, 2^bits).
BigInt rand_bigint(Rng& rng, unsigned bits) {
  BigInt v(0);
  for (unsigned got = 0; got < bits; got += 32) {
    v = (v << 32) + BigInt(static_cast<std::int64_t>(rng.next() & 0xFFFFFFFFu));
  }
  return v % (BigInt(1) << bits);
}

/// Product of descending word-size primes with at least `min_bits` bits.
BigInt prime_product(unsigned min_bits, std::vector<std::uint64_t>* primes_out = nullptr) {
  BigInt m(1);
  std::uint64_t p = prev_prime_u64(std::uint64_t{1} << 62);
  while (m.bit_length() < min_bits) {
    m *= BigInt(static_cast<std::int64_t>(p));
    if (primes_out) primes_out->push_back(p);
    p = prev_prime_u64(p);
  }
  return m;
}

std::vector<Polynomial> exact_reduced(const PolySystem& sys) {
  return reduce_basis(sys.ctx, groebner_sequential(sys).basis);
}

void expect_same_basis(const PolySystem& sys, const std::vector<Polynomial>& got,
                       const std::vector<Polynomial>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].equals(want[i]))
        << label << " element " << i << ": " << got[i].to_string(sys.ctx) << " vs "
        << want[i].to_string(sys.ctx);
  }
}

TEST(RationalReconstructTest, RoundTripFuzz) {
  Rng rng(20260808);
  for (int iter = 0; iter < 150; ++iter) {
    // A bounded rational n/d in lowest terms, n of either sign.
    unsigned bits = 1 + static_cast<unsigned>(rng.below(180));
    BigInt n = rand_bigint(rng, bits);
    BigInt d = rand_bigint(rng, bits) + BigInt(1);
    BigInt g = BigInt::gcd(n, d);
    if (!g.is_zero()) {
      n = n / g;
      d = d / g;
    }
    if (rng.below(2) == 0) n = -n;
    // A modulus with 2·bound² ≤ m and bound ≥ max(|n|, d), so the round trip
    // must land on exactly this pair.
    unsigned need = 2 * std::max<unsigned>(n.bit_length(), d.bit_length()) + 6;
    BigInt m = prime_product(need);
    BigInt dinv = mod_inverse(((d % m) + m) % m, m);
    ASSERT_FALSE(dinv.is_zero());  // d < 2^181 cannot share a 62-bit prime factor
    BigInt a = (((n % m) + m) % m) * dinv % m;
    BigInt rn, rd;
    ASSERT_TRUE(rational_reconstruct(a, m, &rn, &rd)) << "iter " << iter;
    EXPECT_EQ(rn, n) << "iter " << iter;
    EXPECT_EQ(rd, d) << "iter " << iter;
  }
}

TEST(RationalReconstructTest, NeverWrongOnRandomResidues) {
  // A random residue usually is NOT the image of a bounded rational. The
  // contract is: either report failure, or return a pair that genuinely
  // satisfies the congruence and the uniqueness bound — never a junk answer.
  Rng rng(7);
  BigInt m = prime_product(120);
  const BigInt bound = BigInt(1) << ((m.bit_length() - 2) / 2);
  int failures = 0;
  for (int iter = 0; iter < 100; ++iter) {
    BigInt a = rand_bigint(rng, static_cast<unsigned>(m.bit_length()) + 8) % m;
    BigInt n, d;
    if (!rational_reconstruct(a, m, &n, &d)) {
      ++failures;
      continue;
    }
    BigInt chk = (n - a * d) % m;
    if (chk.is_negative()) chk += m;
    EXPECT_TRUE(chk.is_zero()) << "iter " << iter;
    BigInt abs_n = n.is_negative() ? -n : n;
    EXPECT_LE(abs_n, bound);
    EXPECT_GT(d, BigInt(0));
    EXPECT_LE(d, bound);
    EXPECT_TRUE(BigInt::gcd(n, d).is_one());
  }
  // With 2·bound² ≤ m a large fraction of residues must be rejected.
  EXPECT_GT(failures, 0);
}

TEST(RationalReconstructTest, CrtRecombinesKnownInteger) {
  // Sanity for the Garner path the driver uses: an integer below the bound
  // reconstructs with denominator 1 from its residues' CRT combination.
  Rng rng(99);
  std::vector<std::uint64_t> primes;
  BigInt m = prime_product(250, &primes);
  EXPECT_GE(primes.size(), 4u);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt x = rand_bigint(rng, 100);
    if (rng.below(2) == 0) x = -x;
    BigInt a = x % m;
    if (a.is_negative()) a += m;
    BigInt n, d;
    ASSERT_TRUE(rational_reconstruct(a, m, &n, &d));
    EXPECT_EQ(n, x);
    EXPECT_TRUE(d.is_one());
  }
}

TEST(ModularDriverTest, MatchesExactOnKatsura4) {
  PolySystem sys = load_problem("katsura4");
  ModularConfig cfg;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  EXPECT_GE(res.primes.size(), 1u);
  EXPECT_EQ(res.primes.size(), res.stats.primes_used);
  EXPECT_GT(res.stats.modulus_bits, 0u);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "katsura4");
}

TEST(ModularDriverTest, MatchesExactOnArnborg4) {
  PolySystem sys = load_problem("arnborg4");
  ModularConfig cfg;
  cfg.initial_primes = 2;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "arnborg4");
}

TEST(ModularDriverTest, UnluckyPrimeIsOutvotedAndExcluded) {
  // Mod 5 both inputs collapse to x, so the mod-5 basis has shape {x} while
  // the true basis is {y, x}: the classic unlucky prime. With two honest
  // primes alongside it, the shape vote must exclude 5 and still lift the
  // exact answer.
  PolySystem sys = parse_system_or_die("vars x, y; order grlex; x + 5*y; x - 5*y;");
  ModularConfig cfg;
  cfg.forced_primes = {5};
  cfg.initial_primes = 3;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  EXPECT_GE(res.stats.primes_unlucky, 1u);
  EXPECT_EQ(std::count(res.primes.begin(), res.primes.end(), 5u), 0);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "unlucky-outvoted");
}

TEST(ModularDriverTest, UnluckyPrimeAloneFallsBackToExact) {
  // Budget of exactly one prime, and that prime is unlucky. The lifted basis
  // {x} passes the Buchberger rung but not input membership (x + 5y does not
  // reduce to zero), so the final certificate must reject it and the driver
  // must answer through the exact path rather than return the bogus lift.
  PolySystem sys = parse_system_or_die("vars x, y; order grlex; x + 5*y; x - 5*y;");
  ModularConfig cfg;
  cfg.forced_primes = {5};
  cfg.initial_primes = 1;
  cfg.max_primes = 1;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_TRUE(res.stats.used_exact_fallback);
  EXPECT_GE(res.stats.primes_unlucky, 1u);
  EXPECT_TRUE(res.primes.empty());
  expect_same_basis(sys, res.basis, exact_reduced(sys), "unlucky-fallback");
}

TEST(ModularDriverTest, UnluckyPrimeWithFallbackDisabledAborts) {
  PolySystem sys = parse_system_or_die("vars x, y; order grlex; x + 5*y; x - 5*y;");
  ModularConfig cfg;
  cfg.forced_primes = {5};
  cfg.initial_primes = 1;
  cfg.max_primes = 1;
  cfg.exact_fallback = false;
  EXPECT_DEATH(groebner_multimodular(sys, cfg), "exact_fallback");
}

TEST(ModularDriverTest, InadmissiblePrimeIsScreenedBeforeAnyJob) {
  // 7 divides the head coefficient of the first input, so it must be
  // rejected by the admissibility screen, not burned as a job.
  PolySystem sys = parse_system_or_die("vars x, y; order grlex; 7*x - y; y^2 - 1;");
  ModularConfig cfg;
  cfg.forced_primes = {7};
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_GE(res.stats.primes_inadmissible, 1u);
  EXPECT_EQ(std::count(res.primes.begin(), res.primes.end(), 7u), 0);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "inadmissible");
}

TEST(ModularDriverTest, InjectedFaultsAreRetriedAndRunCompletes) {
  PolySystem sys = load_problem("arnborg4");
  ModularConfig cfg;
  cfg.initial_primes = 2;
  cfg.fault_permille = 1000;  // every attempt fails except the last allowed
  cfg.max_job_retries = 2;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  EXPECT_GE(res.stats.jobs_retried, 2u * cfg.initial_primes);
  EXPECT_GE(res.stats.jobs_failed, 2u * cfg.initial_primes);
  EXPECT_GT(res.stats.jobs_run, res.stats.jobs_failed);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "fault-drill");
}

TEST(ModularDriverTest, SmallPrimesStillEndVerifiedAndCorrect) {
  // 16-bit primes give a reconstruction bound of only a few bits per round;
  // whatever path the run takes (extra rounds, reconstruction failures, or
  // the exact fallback), the answer must come out certified and identical to
  // the exact basis — the "never an unverified basis" contract under a
  // modulus that starts out too small.
  PolySystem sys = parse_system_or_die(
      "vars x, y; order grlex; x^2 - 1000003*y; x*y - 7919;");
  ModularConfig cfg;
  cfg.prime_bits = 16;
  cfg.initial_primes = 1;
  cfg.step_primes = 1;
  cfg.max_primes = 12;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_GE(res.stats.rounds, 1u);
  expect_same_basis(sys, res.basis, exact_reduced(sys), "small-primes");
}

TEST(ModularDriverTest, RandomSystemsDifferential) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 1337);
    PolySystem sys = random_system(rng, 3, 3, 2, 3, 9);
    bool all_zero = true;
    for (const auto& p : sys.polys) all_zero = all_zero && p.is_zero();
    if (all_zero) continue;
    ModularConfig cfg;
    cfg.initial_primes = 2;
    cfg.seed = seed;
    ModularResult res = groebner_multimodular(sys, cfg);
    EXPECT_TRUE(res.stats.verified) << "seed " << seed;
    expect_same_basis(sys, res.basis, exact_reduced(sys),
                      "random seed " + std::to_string(seed));
  }
}

TEST(ModularDriverTest, StatsSummaryMentionsTheOutcome) {
  PolySystem sys = parse_system_or_die("vars x, y; order grlex; x - y; y^2 - 2;");
  ModularConfig cfg;
  ModularResult res = groebner_multimodular(sys, cfg);
  std::string s = res.stats.summary();
  EXPECT_NE(s.find("primes="), std::string::npos);
  EXPECT_NE(s.find("verified"), std::string::npos);
  EXPECT_EQ(s.find("UNVERIFIED"), std::string::npos);
}

}  // namespace
}  // namespace gbd
