// ThreadMachine — the Machine interface on real OS threads.
//
// One std::thread per logical processor. Unlike the original single-mutex
// design, every processor owns a private, cacheline-padded mailbox (its own
// mutex + condition variable + envelope slab), so a send touches only the
// destination's mailbox and two processors exchanging messages never
// serialize against the rest of the machine. Wakeups are targeted: a sender
// calls notify_one only when it observed the destination asleep. Envelope
// slabs are pooled — poll() swaps the mailbox's vector with a drained
// scratch vector, so steady-state delivery performs no per-message node
// allocation.
//
// Quiescence (every processor blocked or finished, no undelivered message)
// is detected with two atomics instead of a global lock: in_flight_ is
// incremented before an envelope is enqueued and decremented after it is
// drained, and idle_ counts blocked + finished processors. The last
// processor to go idle observes idle_ == P and in_flight_ == 0, declares
// shutdown, and wakes every mailbox; wait() then returns false everywhere
// (see DESIGN.md §11 for the interleaving argument).
//
// A registration barrier closes the historical handler race: the first
// send()/poll()/wait() on any processor blocks until every processor has
// completed registration (performed its own first communication call or
// returned from its worker), so no message can ever be dispatched to a
// handler table still under construction. charge() is a no-op (real time
// just passes); now() is wall nanoseconds since run start.
#pragma once

#include <atomic>
#include <condition_variable>
#include <latch>
#include <memory>
#include <mutex>

#include "machine/machine.hpp"

namespace gbd {

class ThreadMachine final : public Machine {
 public:
  /// `kernel_lanes` is the per-processor elimination-kernel thread grant
  /// (Proc::kernel_lanes): 0 = auto, the host's spare concurrency divided
  /// evenly (max(1, hardware_concurrency / nprocs)), so P procs with their
  /// lanes never oversubscribe the box.
  explicit ThreadMachine(int nprocs, std::size_t kernel_lanes = 0);
  ~ThreadMachine() override;

  int nprocs() const override { return nprocs_; }
  MachineStats run(const std::function<void(Proc&)>& worker) override;

 private:
  class ThreadProc;
  struct Mailbox;

  /// Declare shutdown and wake every mailbox. Called by the processor that
  /// observed idle_ == nprocs with nothing in flight, and (defensively) by
  /// the last finishing worker.
  void declare_shutdown();
  /// Finished workers count as permanently idle; the last one may be the
  /// one to complete quiescence.
  void note_worker_finished(ThreadProc& proc);

  int nprocs_;
  std::size_t kernel_lanes_ = 1;  ///< resolved per-proc grant
  std::vector<std::unique_ptr<ThreadProc>> procs_;
  std::uint64_t epoch_ns_ = 0;

  std::atomic<std::uint64_t> in_flight_{0};  ///< enqueued, not yet drained
  std::atomic<int> idle_{0};                 ///< blocked in wait() + finished
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<std::latch> start_latch_;  ///< registration barrier, per run
};

}  // namespace gbd
