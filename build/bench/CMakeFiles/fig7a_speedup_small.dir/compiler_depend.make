# Empty compiler generated dependencies file for fig7a_speedup_small.
# This may be replaced when dependencies are built.
