// gbd — command-line Gröbner basis computation over every engine in the
// library.
//
//   gbd [options] [file]        read a system from file (or stdin, or -p NAME)
//
// Options:
//   -p NAME       use built-in problem NAME instead of reading input
//   -e ENGINE     sequential | transition | parallel | shared | pipeline
//   -n P          processors / workers / stages (parallel engines; default 4)
//   -s SEED       schedule seed (default 1)
//   -o ORDER      override monomial order: lex | grlex | grevlex
//   -c MODE       criteria: full (default) | coprime | none
//   -x K          replicate the input K times with renamed variables
//   -r            print the raw basis as well as the reduced one
//   -q            quiet: stats only, no basis
//   -v            verify the result (slow for big bases)
//   -l            list built-in problems and exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "gb/parallel.hpp"
#include "gb/pipeline.hpp"
#include "gb/sequential.hpp"
#include "gb/shared_memory.hpp"
#include "gb/transition.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace {

using namespace gbd;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-p NAME] [-e ENGINE] [-n P] [-s SEED] [-o ORDER] [-c MODE]\n"
               "          [-x K] [-r] [-q] [-v] [-l] [file]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbd;

  std::string problem, engine = "sequential", file, order, criteria = "full";
  int nprocs = 4, copies = 1;
  std::uint64_t seed = 1;
  bool raw = false, quiet = false, verify = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "-p") {
      problem = next();
    } else if (arg == "-e") {
      engine = next();
    } else if (arg == "-n") {
      nprocs = std::atoi(next());
    } else if (arg == "-s") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "-o") {
      order = next();
    } else if (arg == "-c") {
      criteria = next();
    } else if (arg == "-x") {
      copies = std::atoi(next());
    } else if (arg == "-r") {
      raw = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "-v") {
      verify = true;
    } else if (arg == "-l") {
      for (const auto& info : problem_list()) {
        std::printf("%-12s %s%s\n", info.name.c_str(), info.description.c_str(),
                    info.standin ? " [stand-in]" : "");
      }
      return 0;
    } else if (arg[0] == '-' && arg != "-") {
      return usage(argv[0]);
    } else {
      file = arg;
    }
  }

  // --- load the system -------------------------------------------------------
  PolySystem sys;
  if (!problem.empty()) {
    if (!has_problem(problem)) {
      std::fprintf(stderr, "unknown problem '%s' (use -l to list)\n", problem.c_str());
      return 1;
    }
    sys = load_problem(problem);
  } else {
    std::string text;
    if (file.empty() || file == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
    std::string err;
    if (!parse_system(text, &sys, &err)) {
      std::fprintf(stderr, "parse error: %s\n", err.c_str());
      return 1;
    }
    for (auto& p : sys.polys) p.make_primitive();
  }

  if (!order.empty()) {
    if (order == "lex") {
      sys.ctx.order = OrderKind::kLex;
    } else if (order == "grlex") {
      sys.ctx.order = OrderKind::kGrLex;
    } else if (order == "grevlex") {
      sys.ctx.order = OrderKind::kGRevLex;
    } else {
      std::fprintf(stderr, "unknown order '%s'\n", order.c_str());
      return 1;
    }
    // Re-canonicalize under the new order.
    for (auto& p : sys.polys) {
      std::vector<Term> terms(p.terms().begin(), p.terms().end());
      p = Polynomial::from_terms(sys.ctx, std::move(terms));
    }
  }
  if (copies > 1) sys = replicate_renamed(sys, copies);

  GbConfig gb;
  if (criteria == "coprime") {
    gb.chain_criterion = false;
    gb.gm_update = false;
  } else if (criteria == "none") {
    gb.coprime_criterion = false;
    gb.chain_criterion = false;
    gb.gm_update = false;
  } else if (criteria != "full") {
    std::fprintf(stderr, "unknown criteria mode '%s'\n", criteria.c_str());
    return 1;
  }

  // --- run -------------------------------------------------------------------
  std::vector<Polynomial> basis;
  GbStats stats;
  std::uint64_t elapsed = 0;
  if (engine == "sequential") {
    SequentialResult r = groebner_sequential(sys, gb);
    basis = std::move(r.basis);
    stats = r.stats;
    elapsed = r.elapsed_units;
  } else if (engine == "transition") {
    TransitionConfig cfg;
    cfg.gb = gb;
    cfg.seed = seed;
    TransitionResult r = groebner_transition(sys, cfg);
    basis = std::move(r.basis);
    stats = r.stats;
    elapsed = r.elapsed_units;
  } else if (engine == "parallel") {
    ParallelConfig cfg;
    cfg.gb = gb;
    cfg.nprocs = nprocs;
    cfg.seed = seed;
    ParallelResult r = groebner_parallel(sys, cfg);
    basis = std::move(r.basis);
    stats = r.stats;
    elapsed = r.machine.makespan;
  } else if (engine == "shared") {
    SharedMemoryConfig cfg;
    cfg.gb = gb;
    cfg.nprocs = nprocs;
    cfg.seed = seed;
    SharedMemoryResult r = groebner_shared(sys, cfg);
    basis = std::move(r.basis);
    stats = r.stats;
    elapsed = r.makespan;
  } else if (engine == "pipeline") {
    PipelineConfig cfg;
    cfg.gb = gb;
    cfg.nstages = nprocs;
    cfg.inflight = nprocs;
    PipelineResult r = groebner_pipeline(sys, cfg);
    basis = std::move(r.basis);
    stats = r.stats;
    elapsed = r.makespan;
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
    return 1;
  }

  // --- report ----------------------------------------------------------------
  std::fprintf(stderr, "engine=%s order=%s %s\n", engine.c_str(), order_name(sys.ctx.order),
               stats.summary().c_str());
  std::fprintf(stderr, "time=%llu units, |G|=%zu\n",
               static_cast<unsigned long long>(elapsed), basis.size());

  if (raw && !quiet) {
    std::printf("# raw basis (%zu elements)\n", basis.size());
    for (const auto& g : basis) std::printf("%s;\n", g.to_string(sys.ctx).c_str());
  }
  std::vector<Polynomial> reduced = reduce_basis(sys.ctx, basis);
  if (!quiet) {
    std::printf("# reduced Groebner basis (%zu elements)\n", reduced.size());
    for (const auto& g : reduced) std::printf("%s;\n", g.to_string(sys.ctx).c_str());
  } else {
    std::fprintf(stderr, "|reduced|=%zu\n", reduced.size());
  }

  if (verify) {
    std::string why;
    if (!verify_groebner_result(sys.ctx, sys.polys, basis, &why)) {
      std::fprintf(stderr, "VERIFICATION FAILED: %s\n", why.c_str());
      return 1;
    }
    std::fprintf(stderr, "verified: Groebner basis containing the input ideal\n");
  }
  return 0;
}
