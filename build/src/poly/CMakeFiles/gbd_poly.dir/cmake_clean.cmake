file(REMOVE_RECURSE
  "CMakeFiles/gbd_poly.dir/certificate.cpp.o"
  "CMakeFiles/gbd_poly.dir/certificate.cpp.o.d"
  "CMakeFiles/gbd_poly.dir/monomial.cpp.o"
  "CMakeFiles/gbd_poly.dir/monomial.cpp.o.d"
  "CMakeFiles/gbd_poly.dir/polynomial.cpp.o"
  "CMakeFiles/gbd_poly.dir/polynomial.cpp.o.d"
  "CMakeFiles/gbd_poly.dir/reduce.cpp.o"
  "CMakeFiles/gbd_poly.dir/reduce.cpp.o.d"
  "CMakeFiles/gbd_poly.dir/spoly.cpp.o"
  "CMakeFiles/gbd_poly.dir/spoly.cpp.o.d"
  "CMakeFiles/gbd_poly.dir/univariate.cpp.o"
  "CMakeFiles/gbd_poly.dir/univariate.cpp.o.d"
  "libgbd_poly.a"
  "libgbd_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
