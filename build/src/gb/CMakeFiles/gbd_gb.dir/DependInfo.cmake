
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gb/engine_common.cpp" "src/gb/CMakeFiles/gbd_gb.dir/engine_common.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/engine_common.cpp.o.d"
  "/root/repo/src/gb/pairs.cpp" "src/gb/CMakeFiles/gbd_gb.dir/pairs.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/pairs.cpp.o.d"
  "/root/repo/src/gb/parallel.cpp" "src/gb/CMakeFiles/gbd_gb.dir/parallel.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/parallel.cpp.o.d"
  "/root/repo/src/gb/pipeline.cpp" "src/gb/CMakeFiles/gbd_gb.dir/pipeline.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/pipeline.cpp.o.d"
  "/root/repo/src/gb/sequential.cpp" "src/gb/CMakeFiles/gbd_gb.dir/sequential.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/sequential.cpp.o.d"
  "/root/repo/src/gb/shared_memory.cpp" "src/gb/CMakeFiles/gbd_gb.dir/shared_memory.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/shared_memory.cpp.o.d"
  "/root/repo/src/gb/trace.cpp" "src/gb/CMakeFiles/gbd_gb.dir/trace.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/trace.cpp.o.d"
  "/root/repo/src/gb/transition.cpp" "src/gb/CMakeFiles/gbd_gb.dir/transition.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/transition.cpp.o.d"
  "/root/repo/src/gb/verify.cpp" "src/gb/CMakeFiles/gbd_gb.dir/verify.cpp.o" "gcc" "src/gb/CMakeFiles/gbd_gb.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/gbd_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/gbd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/gbd_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gbd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/gbd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/taskq/CMakeFiles/gbd_taskq.dir/DependInfo.cmake"
  "/root/repo/build/src/basis/CMakeFiles/gbd_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/gbd_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
