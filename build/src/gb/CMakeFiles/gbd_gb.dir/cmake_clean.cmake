file(REMOVE_RECURSE
  "CMakeFiles/gbd_gb.dir/engine_common.cpp.o"
  "CMakeFiles/gbd_gb.dir/engine_common.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/pairs.cpp.o"
  "CMakeFiles/gbd_gb.dir/pairs.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/parallel.cpp.o"
  "CMakeFiles/gbd_gb.dir/parallel.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/pipeline.cpp.o"
  "CMakeFiles/gbd_gb.dir/pipeline.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/sequential.cpp.o"
  "CMakeFiles/gbd_gb.dir/sequential.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/shared_memory.cpp.o"
  "CMakeFiles/gbd_gb.dir/shared_memory.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/trace.cpp.o"
  "CMakeFiles/gbd_gb.dir/trace.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/transition.cpp.o"
  "CMakeFiles/gbd_gb.dir/transition.cpp.o.d"
  "CMakeFiles/gbd_gb.dir/verify.cpp.o"
  "CMakeFiles/gbd_gb.dir/verify.cpp.o.d"
  "libgbd_gb.a"
  "libgbd_gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
