// Table 1 — "The potential parallelism using a replicated basis is
// inherently larger than that using a partitioned basis."
//
// For each benchmark, as the paper does: instrument a sequential run,
// attribute every reduction step to the basis element used as the reducer
// (= the busy time of that element's pipeline stage under partitioning with
// one reducer per stage, unlimited processors, free communication), and
// report the max stage time, the achievable pipeline parallelism
// (total / max stage), and the maximum single reduction step — the grain a
// replicated-basis scheme can schedule at, two orders of magnitude finer.
// A real simulated pipeline (Siegl-style, 8 stages) is run alongside to show
// achieved parallelism under actual stage contention and communication.
#include "bench_common.hpp"
#include "gb/pipeline.hpp"

using namespace gbd;

int main() {
  bench::print_header(
      "Table 1: pipeline limits vs replicated grain",
      "Max Stage = busiest reducer's total work; Max Par = total reduction work / max stage\n"
      "(the upper bound on pipeline parallelism); Step = max single reduction step\n"
      "(the replicated scheme's grain); Stage/Step = how much coarser the pipeline grain is;\n"
      "Pipe@8 = parallelism actually achieved by the simulated 8-stage Siegl pipeline.");

  TextTable table({"Input", "Max Stage (units)", "Max Par", "Max Step (units)", "Stage/Step",
                   "Pipe@8"});
  for (const auto& info : problem_list()) {
    if (info.extra) continue;  // beyond the paper's table
    PolySystem sys = load_problem(info.name);
    SequentialResult seq = groebner_sequential(sys);

    PipelineConfig pc;
    pc.nstages = 8;
    pc.inflight = 8;
    PipelineResult pipe = groebner_pipeline(sys, pc);

    double stage_over_step =
        seq.reducers.max_step_cost == 0
            ? 0.0
            : static_cast<double>(seq.reducers.max_stage_work()) /
                  static_cast<double>(seq.reducers.max_step_cost);
    table.add_row({info.name, std::to_string(seq.reducers.max_stage_work()),
                   fmt(seq.reducers.pipeline_parallelism()),
                   std::to_string(seq.reducers.max_step_cost), fmt(stage_over_step, 1),
                   fmt(pipe.achieved_parallelism())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper band: Max Par 2.9-15 (most 3-8), typical pipeline efficiency 20-30%%, and a\n"
      "single reduction step about two orders of magnitude below a stage time.\n");
  return 0;
}
