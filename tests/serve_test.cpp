// End-to-end tests for the GB-as-a-service daemon: submission, scheduling,
// admission control, cancellation, deadlines, the kill-a-worker chaos drill,
// progress streaming and the exactly-one-result contract.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/client.hpp"

namespace gbd {
namespace {

constexpr int kWaitMs = 60'000;

std::unique_ptr<JobServer> start_server(ServerConfig cfg) {
  auto server = std::make_unique<JobServer>(std::move(cfg));
  std::string err;
  EXPECT_TRUE(server->start(&err)) << err;
  return server;
}

ServeClient connect_to(const JobServer& server) {
  ServeClient client;
  std::string err;
  EXPECT_TRUE(client.connect("127.0.0.1", server.port(), &err)) << err;
  return client;
}

SubmitRequest named_job(std::uint64_t token, const std::string& problem) {
  SubmitRequest req;
  req.token = token;
  req.source = 1;
  req.problem = problem;
  return req;
}

SubmitRequest text_job(std::uint64_t token, const std::string& text) {
  SubmitRequest req;
  req.token = token;
  req.source = 0;
  req.problem = text;
  return req;
}

TEST(ServeTest, SubmitComputeVerifyRoundTrip) {
  ServerConfig cfg;
  cfg.workers = 2;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  SubmitRequest req = text_job(7, "vars x, y;\norder grlex;\nx^2 - y;\nx*y - 1;\n");
  req.want_cert = true;
  ASSERT_TRUE(client.submit(req));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(7, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
  EXPECT_EQ(res.cert, 1) << res.error;
  EXPECT_FALSE(res.cache_hit);
  EXPECT_FALSE(res.basis.empty());
  // The basis is rendered in the submitted variable names.
  bool mentions_xy = false;
  for (const std::string& p : res.basis)
    if (p.find('x') != std::string::npos || p.find('y') != std::string::npos) mentions_xy = true;
  EXPECT_TRUE(mentions_xy);

  // Named problems work too.
  ASSERT_TRUE(client.submit(named_job(8, "katsura(3)")));
  ASSERT_TRUE(client.wait_result(8, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
}

TEST(ServeTest, CacheHitsAcrossRenamingAndConnections) {
  ServerConfig cfg;
  cfg.workers = 2;
  auto server = start_server(std::move(cfg));

  {
    ServeClient client = connect_to(*server);
    SubmitRequest req = text_job(1, "vars x, y;\norder grlex;\nx^2*y - 1;\nx + y;\n");
    req.want_cert = true;
    ASSERT_TRUE(client.submit(req));
    JobResultMsg res;
    ASSERT_TRUE(client.wait_result(1, &res, kWaitMs));
    EXPECT_EQ(res.status, JobState::kDone);
    EXPECT_FALSE(res.cache_hit);
  }
  {
    // Renamed variables, reordered + rescaled generators, fresh connection:
    // the same equivalence class, so a hit.
    ServeClient client = connect_to(*server);
    SubmitRequest req = text_job(2, "vars u, v;\norder grlex;\n2*u + 2*v;\n5*u^2*v - 5;\n");
    req.want_cert = true;
    ASSERT_TRUE(client.submit(req));
    JobResultMsg res;
    ASSERT_TRUE(client.wait_result(2, &res, kWaitMs));
    EXPECT_EQ(res.status, JobState::kDone);
    EXPECT_TRUE(res.cache_hit);
    EXPECT_EQ(res.cert, 1);
    // Rendered in *this* submission's names.
    bool mentions_uv = false;
    for (const std::string& p : res.basis)
      if (p.find('u') != std::string::npos || p.find('v') != std::string::npos) mentions_uv = true;
    EXPECT_TRUE(mentions_uv);

    // A genuinely different system must not hit.
    SubmitRequest other = text_job(3, "vars u, v;\norder grlex;\nu^2*v - 2;\nu + v;\n");
    ASSERT_TRUE(client.submit(other));
    ASSERT_TRUE(client.wait_result(3, &res, kWaitMs));
    EXPECT_EQ(res.status, JobState::kDone);
    EXPECT_FALSE(res.cache_hit);
  }
  CacheStats cs = server->cache_stats();
  EXPECT_GE(cs.hits, 1u);
  EXPECT_GE(cs.misses, 2u);
}

TEST(ServeTest, PrioritySchedulingRunsHighFirst) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  // Three distinct low-priority jobs, then one high-priority; with a single
  // worker released afterwards, the high one must finish first.
  for (std::uint64_t t = 1; t <= 3; ++t) {
    SubmitRequest req = named_job(t, "sparse(4," + std::to_string(40 + t) + ")");
    req.priority = 1;
    ASSERT_TRUE(client.submit(req));
  }
  SubmitRequest urgent = named_job(9, "sparse(4,99)");
  urgent.priority = 10;
  ASSERT_TRUE(client.submit(urgent));
  // Admission happens on the I/O thread; wait for all four to be queued
  // before releasing the worker.
  for (int spin = 0; spin < 2000 && server->queue_depth() < 4; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server->queue_depth(), 4u);

  server->resume();
  std::vector<std::uint64_t> completion;
  for (int i = 0; i < 4; ++i) {
    ClientUpdate u;
    int pr;
    do {
      pr = client.poll(&u, kWaitMs);
      ASSERT_GT(pr, 0);
    } while (u.kind != ClientUpdate::Kind::kResult);
    EXPECT_EQ(u.result.status, JobState::kDone) << u.result.error;
    completion.push_back(u.result.token);
  }
  EXPECT_EQ(completion.front(), 9u);
}

TEST(ServeTest, AdmissionControlRejectsBeyondCapacity) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  int rejected = 0, admitted = 0;
  for (std::uint64_t t = 1; t <= 5; ++t)
    ASSERT_TRUE(client.submit(named_job(t, "sparse(3," + std::to_string(t) + ")")));
  // Rejections come back immediately; admitted jobs complete after resume.
  server->resume();
  for (int i = 0; i < 5; ++i) {
    ClientUpdate u;
    int pr;
    do {
      pr = client.poll(&u, kWaitMs);
      ASSERT_GT(pr, 0);
    } while (u.kind != ClientUpdate::Kind::kResult);
    if (u.result.status == JobState::kRejected) {
      ++rejected;
      EXPECT_NE(u.result.error.find("queue full"), std::string::npos);
    } else {
      EXPECT_EQ(u.result.status, JobState::kDone);
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(rejected, 3);
}

TEST(ServeTest, BadSubmissionsAreRejectedWithDiagnostics) {
  ServerConfig cfg;
  cfg.workers = 1;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  JobResultMsg res;
  ASSERT_TRUE(client.submit(text_job(1, "vars x;\nx^2 -;\n")));
  ASSERT_TRUE(client.wait_result(1, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kRejected);
  EXPECT_NE(res.error.find("parse error"), std::string::npos);

  ASSERT_TRUE(client.submit(named_job(2, "no_such_system")));
  ASSERT_TRUE(client.wait_result(2, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kRejected);
  EXPECT_NE(res.error.find("unknown problem"), std::string::npos);

  SubmitRequest bad_prime = named_job(3, "katsura(3)");
  bad_prime.zp_prime = 15;  // composite
  ASSERT_TRUE(client.submit(bad_prime));
  ASSERT_TRUE(client.wait_result(3, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kRejected);
  EXPECT_NE(res.error.find("prime"), std::string::npos);

  // The daemon is still healthy afterwards.
  SubmitRequest good = named_job(4, "katsura(3)");
  good.zp_prime = 32003;
  ASSERT_TRUE(client.submit(good));
  ASSERT_TRUE(client.wait_result(4, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
}

TEST(ServeTest, HostileBytesDropTheConnectionNotTheDaemon) {
  ServerConfig cfg;
  cfg.workers = 1;
  // Paused so the abuser's first job stays queued: its token is provably
  // still live when the duplicate arrives, making the reuse unambiguous.
  cfg.start_paused = true;
  auto server = start_server(std::move(cfg));

  // Raw garbage: not even a GBDF frame header.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::string garbage(512, 'Z');
  ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
  char buf[64];
  ssize_t n;
  do {
    n = ::recv(fd, buf, sizeof buf, 0);  // server closes on decode error
  } while (n > 0);
  EXPECT_EQ(n, 0);
  ::close(fd);

  // Token reuse on a live connection is a protocol violation: dropped too.
  {
    ServeClient abuser = connect_to(*server);
    ASSERT_TRUE(abuser.submit(named_job(1, "katsura(3)")));
    ASSERT_TRUE(abuser.submit(named_job(1, "katsura(3)")));
    ClientUpdate u;
    int pr = 1;
    while (pr > 0) pr = abuser.poll(&u, 2000);
    EXPECT_EQ(pr, -1);
  }

  // A well-behaved client still gets service.
  server->resume();
  ServeClient client = connect_to(*server);
  ASSERT_TRUE(client.submit(named_job(5, "katsura(3)")));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(5, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
}

TEST(ServeTest, CancelQueuedAndRunningJobs) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  // Queued cancel: nothing is running, so token 1 is still in the queue.
  ASSERT_TRUE(client.submit(named_job(1, "katsura(4)")));
  ASSERT_TRUE(client.cancel(1));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(1, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kCancelled);
  EXPECT_NE(res.error.find("queued"), std::string::npos);

  // Running cancel: start a long job, wait until it reports kRunning, then
  // cancel — the engine's stop seam aborts at the next pair boundary.
  SubmitRequest heavy = named_job(2, "cyclic(7)");
  heavy.subscribe = true;
  ASSERT_TRUE(client.submit(heavy));
  server->resume();
  bool running_seen = false;
  while (!running_seen) {
    ClientUpdate u;
    ASSERT_GT(client.poll(&u, kWaitMs), 0);
    ASSERT_NE(u.kind, ClientUpdate::Kind::kResult) << "finished before cancel";
    if (u.kind == ClientUpdate::Kind::kEvent && u.event.state == JobState::kRunning)
      running_seen = true;
  }
  ASSERT_TRUE(client.cancel(2));
  ASSERT_TRUE(client.wait_result(2, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kCancelled);
  EXPECT_GT(server->stats().cancelled, 1u);
}

TEST(ServeTest, DeadlinesExpireQueuedAndRunningJobs) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  // Queued expiry: the pool is paused, so the deadline fires in the queue.
  SubmitRequest req = named_job(1, "katsura(4)");
  req.deadline_ms = 100;
  ASSERT_TRUE(client.submit(req));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(1, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kTimedOut);
  EXPECT_NE(res.error.find("queue"), std::string::npos);

  // Running expiry: a job far larger than its deadline.
  server->resume();
  SubmitRequest heavy = named_job(2, "cyclic(7)");
  heavy.deadline_ms = 200;
  ASSERT_TRUE(client.submit(heavy));
  ASSERT_TRUE(client.wait_result(2, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kTimedOut);
  EXPECT_EQ(server->stats().timed_out, 2u);
}

TEST(ServeTest, ChaosDrillWorkerDeathRequeuesAndCompletes) {
  std::string flight = "/tmp/gbd_serve_chaos_flight.json";
  std::remove(flight.c_str());

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_attempts = 3;
  cfg.flight_path = flight;
  // Kill the first execution attempt of token 42's job, as if the worker's
  // rank died mid-computation; later attempts survive.
  cfg.fault_hook = [](const Job& job) {
    if (job.req.token == 42 && job.attempt == 1)
      throw NetError("rank 1 timed out mid-reduction (injected)");
  };
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  SubmitRequest req = named_job(42, "katsura(4)");
  req.subscribe = true;
  req.want_cert = true;
  ASSERT_TRUE(client.submit(req));

  bool requeued_seen = false;
  int results = 0;
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(42, &res, kWaitMs, [&](const JobEventMsg& e) {
    if (e.state == JobState::kRequeued) requeued_seen = true;
  }));
  ++results;
  // The job survived the worker death: completed, verified, on attempt 2.
  EXPECT_EQ(res.status, JobState::kDone) << res.error;
  EXPECT_EQ(res.cert, 1);
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_TRUE(requeued_seen);
  EXPECT_EQ(server->stats().requeues, 1u);

  // Zero lost, zero duplicated: no further result arrives for this token.
  ClientUpdate u;
  EXPECT_EQ(client.poll(&u, 300), 0);
  EXPECT_EQ(results, 1);

  // The flight recorder captured the death and names the dead rank.
  std::ifstream in(flight);
  ASSERT_TRUE(in.good()) << "no flight record at " << flight;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("rank 1"), std::string::npos) << ss.str();
  FlightRecorder::instance().disarm();
  std::remove(flight.c_str());
}

TEST(ServeTest, AttemptsExhaustedFailsCleanly) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_attempts = 2;
  cfg.fault_hook = [](const Job& job) {
    if (job.req.token == 13) throw NetError("rank 2 lost (injected, every attempt)");
  };
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  ASSERT_TRUE(client.submit(named_job(13, "katsura(3)")));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(13, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kFailed);
  EXPECT_NE(res.error.find("attempts exhausted"), std::string::npos);
  EXPECT_EQ(res.attempts, 2u);

  // The daemon survives and serves the next job.
  ASSERT_TRUE(client.submit(named_job(14, "katsura(3)")));
  ASSERT_TRUE(client.wait_result(14, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
}

TEST(ServeTest, ProgressEventsStreamMonotonically) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.backend = ServeBackend::kSim;  // deterministic telemetry-backed progress
  cfg.backend_procs = 4;
  cfg.progress_interval_ms = 5;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  // katsura(4) on the sim machine runs ~130ms: long enough for several
  // telemetry ticks at a 5ms interval, short enough that server teardown
  // (which must join the uncancellable sim job) stays fast.
  SubmitRequest req = named_job(6, "katsura(4)");
  req.subscribe = true;
  ASSERT_TRUE(client.submit(req));
  std::uint32_t last = 0;
  int events = 0;
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(6, &res, kWaitMs, [&](const JobEventMsg& e) {
    ++events;
    EXPECT_GE(e.progress_permille, last) << "progress must never regress";
    last = std::max(last, e.progress_permille);
    EXPECT_LE(e.progress_permille, 1000u);
  }));
  EXPECT_EQ(res.status, JobState::kDone) << res.error;
  EXPECT_GE(events, 2) << "expected at least queued+running events";
}

TEST(ServeTest, ZpJobsComputeOverTheRequestedField) {
  ServerConfig cfg;
  cfg.workers = 1;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  SubmitRequest req = named_job(1, "katsura(4)");
  req.zp_prime = 32003;
  req.want_cert = true;
  ASSERT_TRUE(client.submit(req));
  JobResultMsg res;
  ASSERT_TRUE(client.wait_result(1, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone) << res.error;
  EXPECT_EQ(res.cert, 1);

  // Same ideal over a different field: a different cache entry.
  SubmitRequest exact = named_job(2, "katsura(4)");
  exact.want_cert = true;
  ASSERT_TRUE(client.submit(exact));
  ASSERT_TRUE(client.wait_result(2, &res, kWaitMs));
  EXPECT_EQ(res.status, JobState::kDone);
  EXPECT_FALSE(res.cache_hit) << "Zp and exact results must not alias";
}

TEST(ServeTest, StatsOverTheWire) {
  ServerConfig cfg;
  cfg.workers = 2;
  auto server = start_server(std::move(cfg));
  ServeClient client = connect_to(*server);

  for (std::uint64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(client.submit(named_job(t, "katsura(3)")));
    JobResultMsg res;
    ASSERT_TRUE(client.wait_result(t, &res, kWaitMs));
    EXPECT_EQ(res.status, JobState::kDone);
  }
  ServerStatsMsg s;
  ASSERT_TRUE(client.stats(&s, kWaitMs));
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.done, 3u);
  EXPECT_EQ(s.workers, 2u);
  EXPECT_GE(s.cache_hits, 2u);  // identical submissions hit after the first
  EXPECT_EQ(s.backend, ServeBackend::kSequential);
}

}  // namespace
}  // namespace gbd
