// Multi-modular Gröbner driver: compute the basis mod several machine-word
// primes (cheap, fixed-width arithmetic — gb/engine over poly/coeff.hpp's
// kZp ring), CRT-combine the per-prime results, rationally reconstruct the
// coefficients over Q, and certify the lift with the exact verifier.
//
// The exact engines spend nearly all their time on coefficient growth (the
// PR-4 breakdowns); mod p every coefficient is one word, so a per-prime run
// is often an order of magnitude cheaper than the exact run and the lift
// amortizes a handful of them. Per-prime jobs are independent and dispatch
// onto any existing backend — the sequential engine, GL-P on a SimMachine or
// ThreadMachine in-process, or GL-P across forked single-rank processes over
// the socket backend.
//
// Soundness. A prime can be *unlucky*: the mod-p basis has a different
// lead-term structure than the true basis over Q, and lifting it would be
// wrong. The driver defends in depth; a failure at any rung adds primes or
// falls back to the exact path — it never returns an unverified basis:
//   1. admissibility screen — p must not divide any input head coefficient
//      or annihilate an input mod p;
//   2. per-prime certificate — each job's reduced basis passes
//      verify_groebner_result over Z/pZ (Buchberger + input membership);
//   3. shape vote — only primes agreeing on the full monomial support of the
//      canonical reduced basis are combined, and a winning shape needs at
//      least two supporters once more than one prime has been run;
//   4. reconstruction bound — a rational is accepted only when numerator and
//      denominator fit 2·N·D ≤ modulus (the uniqueness bound), so a bad lift
//      is detected, never silently wrong;
//   5. lift consistency — the lifted basis reduces mod every used prime back
//      to exactly that prime's basis;
//   6. final certificate — verify_groebner_result over Q on the lifted basis
//      (cfg.verify). The one statement this cannot certify — every lifted
//      element lies in IDEAL(inputs) — is discussed in DESIGN.md §14.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gb/engine_common.hpp"
#include "io/parse.hpp"
#include "machine/chaos.hpp"

namespace gbd {

/// Which engine runs each per-prime job.
enum class ModularBackend : std::uint8_t {
  kSequential,  ///< groebner_sequential in-process
  kSim,         ///< GL-P on a fresh SimMachine (deterministic virtual time)
  kThread,      ///< GL-P on a ThreadMachine (real threads)
  kSocket,      ///< GL-P across forked one-rank processes over TCP sockets
};

const char* modular_backend_name(ModularBackend b);

struct ModularConfig {
  /// Engine options for the per-prime jobs and the exact fallback. The coeff
  /// field is overridden per prime; leave it exact.
  GbConfig gb;
  ModularBackend backend = ModularBackend::kSequential;
  /// Processors per per-prime job (parallel backends only).
  int nprocs = 2;
  /// Primes in the first round / added per retry round / overall budget.
  std::size_t initial_primes = 3;
  std::size_t step_primes = 2;
  std::size_t max_primes = 16;
  /// Primes are taken descending from just below 2^prime_bits (3..62).
  unsigned prime_bits = 62;
  /// Drill knob: use these primes first, before the generated sequence.
  /// Deliberately unlucky primes go here; the admissibility screen still
  /// applies. Must be valid ZpField moduli.
  std::vector<std::uint64_t> forced_primes;
  /// Concurrent per-prime jobs. 0 = auto (a small pool for the sequential
  /// and sim backends; 1 for thread and socket backends, which already
  /// spread across cores or fork processes).
  std::size_t jobs = 0;
  /// A failed per-prime job (certificate failure or injected fault) is
  /// retried this many times with a perturbed seed before the prime is
  /// abandoned.
  int max_job_retries = 2;
  /// Fault drill: each job *attempt* fails with this probability (per
  /// mille), deterministically from (seed, prime, attempt) — except the last
  /// allowed attempt, so a drilled run still completes. Exercises the retry
  /// path; 0 = off.
  std::uint32_t fault_permille = 0;
  /// Run the per-prime Zp certificates and the final exact certificate.
  bool verify = true;
  /// When the prime budget is exhausted (or every shape vote stays split),
  /// fall back to the exact sequential engine instead of failing.
  bool exact_fallback = true;
  std::uint64_t seed = 1;
  /// Chaos injection for Sim/Thread/Socket machine backends (machine/chaos.hpp).
  ChaosConfig chaos;
  /// Socket backend: first TCP port; 0 derives one from the pid. Each job
  /// advances by nprocs so back-to-back jobs never collide in TIME_WAIT.
  int socket_base_port = 0;
};

struct ModularStats {
  std::uint64_t primes_used = 0;          ///< primes contributing to the returned lift
  std::uint64_t primes_unlucky = 0;       ///< admissible primes voted down or lift-inconsistent
  std::uint64_t primes_inadmissible = 0;  ///< screened out before any job ran
  std::uint64_t jobs_run = 0;             ///< job attempts, including retries
  std::uint64_t jobs_retried = 0;
  std::uint64_t jobs_failed = 0;  ///< attempts lost to faults or failed Zp certificates
  std::uint64_t rounds = 0;       ///< prime-batch rounds before success
  std::uint64_t reconstruction_failures = 0;  ///< CRT lifts rejected by the bound
  std::uint64_t modulus_bits = 0;             ///< bit length of the final combined modulus
  bool verified = false;             ///< final certificate passed (always true when cfg.verify)
  bool used_exact_fallback = false;  ///< answer came from the exact path
  double gb_seconds = 0.0;           ///< wall time in per-prime jobs
  double lift_seconds = 0.0;         ///< wall time in CRT + reconstruction
  double verify_seconds = 0.0;       ///< wall time in certificates (Zp + exact)

  std::string summary() const;
};

struct ModularResult {
  /// Canonical reduced basis over Q (primitive integer associates) —
  /// coefficient-identical to reduce_basis of any exact engine's output.
  std::vector<Polynomial> basis;
  /// Primes whose runs were combined (empty if the exact fallback answered).
  std::vector<std::uint64_t> primes;
  ModularStats stats;
};

/// Compute the canonical reduced Gröbner basis of sys by the multi-modular
/// strategy above. Throws nothing; unlucky primes, reconstruction failures
/// and injected faults retry with more primes and ultimately fall back to
/// the exact engine (cfg.exact_fallback). Aborts only on configs that can
/// never succeed (exact_fallback off and the prime budget exhausted).
ModularResult groebner_multimodular(const PolySystem& sys, const ModularConfig& cfg);

/// Rational reconstruction: the unique n/d with a ≡ n·d^{-1} (mod m),
/// |n| ≤ B, 0 < d ≤ B, gcd(n, d) = 1 for B = 2^⌊(bits(m)−2)/2⌋ (so that
/// 2B² ≤ m, making the solution unique when one exists). Returns false if no
/// such pair exists — never a wrong answer. a must lie in [0, m).
bool rational_reconstruct(const BigInt& a, const BigInt& m, BigInt* num, BigInt* den);

}  // namespace gbd
