// G-1 — the transition-axiom formulation of Buchberger's algorithm
// (Figure 2 of the paper), executed by a nondeterministic scheduler.
//
// State: the basis G, the pair queue gpq, and a queue gq of intermediate
// reducts. Axioms:
//
//   S-POLYNOMIAL     ∃(p,q) ∈ gpq  →  gpq -= {(p,q)}; gq += SPOL(p,q)
//   REDUCE           ∃r ∈ gq, ¬NORMAL(r,G)  →  r := one reduction step
//   AUGMENT-BASIS    ∃r ∈ gq, r ≠ 0, NORMAL(r,G)  →  gq -= r;
//                      gpq += {(s,r) : s ∈ G}; G += r
//   DISCARD          ∃r ∈ gq, r = 0  →  gq -= r
//
// Any fair schedule of these axioms terminates with G a Gröbner basis; the
// scheduler here picks an enabled axiom pseudo-randomly from a seed, so tests
// can sweep schedules. The fused REDUCE/AUGMENT axiom of Figure 5 (which
// avoids re-evaluating the expensive NORMAL guard, at the price of being a
// stuttering axiom the scheduler must throttle) is available as an option.
//
// This engine exists to validate the paper's derivation chain — it is the
// bridge between Algorithm S and the distributed GL-P engine — and to let
// tests check schedule-independence of the result.
#pragma once

#include "gb/engine_common.hpp"
#include "io/parse.hpp"

namespace gbd {

struct TransitionConfig {
  GbConfig gb;
  /// Scheduler seed: different seeds explore different interleavings.
  std::uint64_t seed = 1;
  /// Use the fused REDUCE/AUGMENT axiom (Figure 5) instead of separate
  /// REDUCE and AUGMENT-BASIS axioms.
  bool fused_reduce_augment = false;
  /// Capacity of gq: how many reducts may be in flight at once. Values > 1
  /// exercise the interleaving freedom the parallel engine exploits.
  std::size_t max_inflight = 4;
};

/// Fired-axiom counts, to assert schedules actually interleave.
struct TransitionTrace {
  std::uint64_t fired_spoly = 0;
  std::uint64_t fired_reduce = 0;
  std::uint64_t fired_augment = 0;
  std::uint64_t fired_discard = 0;
};

struct TransitionResult : GbResult {
  TransitionTrace trace;
};

TransitionResult groebner_transition(const PolySystem& sys, const TransitionConfig& cfg = {});

}  // namespace gbd
