#include "poly/spoly.hpp"

#include "bigint/zp.hpp"
#include "support/check.hpp"

namespace gbd {

Polynomial spoly(const PolyContext& ctx, const Polynomial& p1, const Polynomial& p2) {
  GBD_CHECK_MSG(!p1.is_zero() && !p2.is_zero(), "spoly of zero polynomial");
  const Monomial& m1 = p1.hmono();
  const Monomial& m2 = p2.hmono();
  Monomial h = Monomial::hcf(m1, m2);
  BigInt kg = BigInt::gcd(p1.hcoef(), p2.hcoef());
  BigInt k1 = p1.hcoef() / kg;
  BigInt k2 = p2.hcoef() / kg;
  Polynomial s = p1.mul_term(k2, m2 / h).sub(ctx, p2.mul_term(k1, m1 / h));
  s.make_primitive();
  return s;
}

Polynomial spoly(const PolyContext& ctx, const Polynomial& p1, const Polynomial& p2,
                 const CoeffOptions& coeff) {
  if (!coeff.is_zp()) return spoly(ctx, p1, p2);
  GBD_CHECK_MSG(!p1.is_zero() && !p2.is_zero(), "spoly of zero polynomial");
  ZpField field(coeff.prime);
  const Monomial& m1 = p1.hmono();
  const Monomial& m2 = p2.hmono();
  Monomial h = Monomial::hcf(m1, m2);
  std::uint64_t hc1 = zp_residue_u64(p1.hcoef());
  std::uint64_t hc2 = zp_residue_u64(p2.hcoef());
  Polynomial s = zp_combine(ctx, field, hc2, m2 / h, p1,
                            field.sub_canonical(0, hc1), m1 / h, p2);
  s.make_monic(field);
  return s;
}

Monomial pair_lcm(const Polynomial& p1, const Polynomial& p2) {
  return Monomial::lcm(p1.hmono(), p2.hmono());
}

}  // namespace gbd
