# Empty dependencies file for gbd_support.
# This may be replaced when dependencies are built.
