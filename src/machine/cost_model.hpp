// Communication cost model for the simulated machine.
//
// Patterned on the CM-5 of the paper (§7): active messages with a fixed
// per-message network latency plus a bandwidth term for bulk payloads, and a
// per-message handler dispatch cost at the receiver. Units are the same
// abstract term-operation units the compute kernels charge, so the ratio of
// communication to computation — not absolute time — is what the model pins
// down. Defaults are calibrated so that one small message costs about as
// much as a few hundred coefficient operations, matching the paper's
// observation that polynomial transfers (hundreds to thousands of bytes)
// are expensive relative to a single reduction step but cheap relative to a
// full reduction.
#pragma once

#include <cstdint>

namespace gbd {

struct CostModel {
  /// Fixed wire latency per message, in work units. Calibration: one work
  /// unit is roughly one coefficient-word operation (~a cycle on the CM-5's
  /// 33 MHz Sparc), and CM-5 active-message latency was a few microseconds,
  /// i.e. on the order of a hundred cycles.
  std::uint64_t latency = 150;
  /// Additional units per 16 payload bytes (bandwidth term).
  std::uint64_t units_per_16_bytes = 4;
  /// Receiver-side handler dispatch cost per message.
  std::uint64_t dispatch = 25;
  /// Sender-side injection cost per message (occupies the sender).
  std::uint64_t inject = 25;

  std::uint64_t wire_time(std::size_t payload_bytes) const {
    return latency + units_per_16_bytes * ((payload_bytes + 15) / 16);
  }

  /// A model with free communication, for ablations.
  static CostModel free() { return CostModel{0, 0, 0, 0}; }

  /// The default model with every communication cost multiplied by `factor`.
  /// Chaos sweeps use stretched models to widen the in-flight window: the
  /// longer messages live on the wire, the more room seeded jitter and
  /// reordering have to permute them.
  static CostModel stretched(std::uint64_t factor) {
    CostModel base;
    return CostModel{base.latency * factor, base.units_per_16_bytes * factor,
                     base.dispatch * factor, base.inject * factor};
  }
};

}  // namespace gbd
