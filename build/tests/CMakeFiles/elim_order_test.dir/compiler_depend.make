# Empty compiler generated dependencies file for elim_order_test.
# This may be replaced when dependencies are built.
