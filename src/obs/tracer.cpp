#include "obs/tracer.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/serialize.hpp"

namespace gbd {

ProcTracer::ProcTracer(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(cap_, 1024));
  stack_.reserve(16);
}

void ProcTracer::push(const TraceEvent& e) {
  if (ring_.size() < cap_) {
    ring_.push_back(e);
  } else {
    // Ring semantics: overwrite the oldest. The analyzer warns when
    // dropped() is nonzero — a truncated trace still renders but its
    // breakdown covers only the surviving window.
    ring_[next_] = e;
  }
  next_ = (next_ + 1) % cap_;
  total_ += 1;
}

void ProcTracer::begin(Ev kind, std::uint64_t t, std::uint64_t a, std::uint64_t b) {
  stack_.push_back(Open{kind, t, a, b});
}

void ProcTracer::end(Ev kind, std::uint64_t t, std::uint64_t result) {
  GBD_CHECK_MSG(!stack_.empty(), "span end with no open span");
  Open o = stack_.back();
  stack_.pop_back();
  GBD_CHECK_MSG(o.kind == kind, "span end does not match the innermost open span");
  TraceEvent e;
  e.t0 = o.t0;
  e.t1 = t;
  e.a = o.a;
  e.b = result != 0 ? result : o.b;
  e.kind = kind;
  e.phase = Ph::kSpan;
  push(e);
}

void ProcTracer::complete(Ev kind, std::uint64_t t0, std::uint64_t t1, std::uint64_t a,
                          std::uint64_t b) {
  push(TraceEvent{t0, t1, a, b, kind, Ph::kSpan});
}

void ProcTracer::instant(Ev kind, std::uint64_t t, std::uint64_t a, std::uint64_t b) {
  push(TraceEvent{t, t, a, b, kind, Ph::kInstant});
}

void ProcTracer::async_begin(Ev kind, std::uint64_t t, std::uint64_t id, std::uint64_t b) {
  push(TraceEvent{t, t, id, b, kind, Ph::kAsyncBegin});
}

void ProcTracer::async_end(Ev kind, std::uint64_t t, std::uint64_t id) {
  push(TraceEvent{t, t, id, 0, kind, Ph::kAsyncEnd});
}

std::uint64_t ProcTracer::dropped() const { return total_ - ring_.size(); }

std::vector<TraceEvent> ProcTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_) {
    out = ring_;
  } else {
    // Unroll the ring: oldest surviving event sits at the write cursor.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

Tracer::Tracer(TracerConfig cfg) : cfg_(cfg) {}

void Tracer::start_run(int nprocs, ClockDomain domain) {
  procs_.clear();
  for (int i = 0; i < nprocs; ++i) procs_.emplace_back(cfg_.ring_capacity);
  domain_ = domain;
  makespan_ = 0;
}

TraceData Tracer::data() const {
  TraceData d;
  d.domain = domain_;
  d.makespan = makespan_;
  d.wall_epoch_ns = wall_epoch_ns_;
  for (const ProcTracer& p : procs_) {
    TraceData::ProcData pd;
    pd.events = p.events();
    pd.dropped = p.dropped();
    pd.open_spans = static_cast<std::uint32_t>(p.open_spans());
    d.procs.push_back(std::move(pd));
  }
  return d;
}

namespace {
constexpr std::uint32_t kTraceMagic = 0x54444247;  // "GBDT"
// v2 adds wall_epoch_ns after makespan (for cross-process clock alignment);
// v1 files still decode, with wall_epoch_ns = 0.
constexpr std::uint32_t kTraceVersion = 2;
}  // namespace

std::vector<std::uint8_t> TraceData::encode() const {
  Writer w;
  w.u32(kTraceMagic);
  w.u32(kTraceVersion);
  w.u8(static_cast<std::uint8_t>(domain));
  w.u64(makespan);
  w.u64(wall_epoch_ns);
  w.u32(static_cast<std::uint32_t>(procs.size()));
  for (const ProcData& p : procs) {
    w.u64(p.dropped);
    w.u32(p.open_spans);
    w.u64(p.events.size());
    for (const TraceEvent& e : p.events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u8(static_cast<std::uint8_t>(e.phase));
      w.u64(e.t0);
      w.u64(e.t1);
      w.u64(e.a);
      w.u64(e.b);
    }
  }
  return w.take();
}

TraceData TraceData::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  GBD_CHECK_MSG(r.u32() == kTraceMagic, "not a gbd trace file");
  std::uint32_t version = r.u32();
  GBD_CHECK_MSG(version == 1 || version == kTraceVersion, "unsupported trace version");
  TraceData d;
  d.domain = static_cast<ClockDomain>(r.u8());
  d.makespan = r.u64();
  if (version >= 2) d.wall_epoch_ns = r.u64();
  std::uint32_t nprocs = r.u32();
  for (std::uint32_t i = 0; i < nprocs; ++i) {
    ProcData p;
    p.dropped = r.u64();
    p.open_spans = r.u32();
    std::uint64_t n = r.u64();
    p.events.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      TraceEvent e;
      e.kind = static_cast<Ev>(r.u8());
      e.phase = static_cast<Ph>(r.u8());
      e.t0 = r.u64();
      e.t1 = r.u64();
      e.a = r.u64();
      e.b = r.u64();
      p.events.push_back(e);
    }
    d.procs.push_back(std::move(p));
  }
  return d;
}

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::kTask: return "task";
    case Ev::kSpoly: return "spoly";
    case Ev::kReduce: return "reduce";
    case Ev::kFreshen: return "freshen";
    case Ev::kAugment: return "augment";
    case Ev::kResume: return "resume-scan";
    case Ev::kWait: return "wait";
    case Ev::kBackoff: return "backoff";
    case Ev::kHandler: return "handler";
    case Ev::kHold: return "hold";
    case Ev::kStall: return "stall";
    case Ev::kValidate: return "validate-round";
    case Ev::kAddRound: return "add-round";
    case Ev::kLockWait: return "lock-wait";
    case Ev::kSteal: return "steal";
    case Ev::kStealGrant: return "steal-grant";
    case Ev::kMatSymbolic: return "mat-symbolic";
    case Ev::kMatBuild: return "mat-build";
    case Ev::kMatEliminate: return "mat-eliminate";
    case Ev::kMatConvert: return "mat-convert";
    case Ev::kMatSweep: return "mat-sweep";
    case Ev::kMsgSend: return "msg-send";
    case Ev::kMsgRecv: return "msg-recv";
  }
  return "unknown";
}

namespace {

/// Append a microsecond timestamp: virtual units 1:1, nanoseconds /1000 with
/// three fractional digits (so nothing collapses to zero-length).
void append_ts(std::string* out, std::uint64_t t, ClockDomain domain) {
  if (domain == ClockDomain::kVirtual) {
    out->append(std::to_string(t));
    return;
  }
  out->append(std::to_string(t / 1000));
  std::uint64_t frac = t % 1000;
  out->push_back('.');
  out->push_back(static_cast<char>('0' + frac / 100));
  out->push_back(static_cast<char>('0' + frac / 10 % 10));
  out->push_back(static_cast<char>('0' + frac % 10));
}

void append_common(std::string* out, int pid, int tid, const TraceEvent& e, ClockDomain domain,
                   std::uint64_t shift) {
  out->append("\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"ts\":");
  append_ts(out, e.t0 + shift, domain);
  out->append(",\"name\":\"");
  out->append(ev_name(e.kind));
  out->push_back('"');
}

/// Emit one TraceData's events under process track `pid`, with every
/// timestamp shifted by `shift` (same unit as the clock domain).
void append_trace_events(std::string* outp, bool* first, const TraceData& data, int pid,
                         std::uint64_t shift) {
  std::string& out = *outp;
  auto sep = [&] {
    if (!*first) out.push_back(',');
    *first = false;
  };
  // Thread-name metadata gives each processor a labeled Perfetto track.
  for (std::size_t p = 0; p < data.procs.size(); ++p) {
    if (pid != 0 && data.procs[p].events.empty()) continue;  // merged view: skip empty slots
    sep();
    out.append("{\"ph\":\"M\",\"pid\":");
    out.append(std::to_string(pid));
    out.append(",\"tid\":");
    out.append(std::to_string(p));
    out.append(",\"name\":\"thread_name\",\"args\":{\"name\":\"proc ");
    out.append(std::to_string(p));
    out.append("\"}}");
  }
  for (std::size_t p = 0; p < data.procs.size(); ++p) {
    for (const TraceEvent& e : data.procs[p].events) {
      sep();
      switch (e.phase) {
        case Ph::kSpan: {
          out.append("{\"ph\":\"X\",");
          append_common(&out, pid, static_cast<int>(p), e, data.domain, shift);
          out.append(",\"cat\":\"engine\",\"dur\":");
          append_ts(&out, e.t1 - e.t0, data.domain);
          out.append(",\"args\":{\"a\":");
          out.append(std::to_string(e.a));
          out.append(",\"b\":");
          out.append(std::to_string(e.b));
          out.append("}}");
          break;
        }
        case Ph::kAsyncBegin:
        case Ph::kAsyncEnd: {
          out.append(e.phase == Ph::kAsyncBegin ? "{\"ph\":\"b\"," : "{\"ph\":\"e\",");
          append_common(&out, pid, static_cast<int>(p), e, data.domain, shift);
          out.append(",\"cat\":\"round\",\"id\":\"");
          // Disambiguate rounds across kinds, processors and ranks: Perfetto
          // matches async begin/end on (cat, id).
          out.append(std::to_string((static_cast<std::uint64_t>(pid) << 56) ^
                                    (static_cast<std::uint64_t>(p) << 48) ^
                                    (static_cast<std::uint64_t>(e.kind) << 40) ^ e.a));
          out.append("\"}");
          break;
        }
        case Ph::kInstant: {
          if (e.kind == Ev::kMsgSend || e.kind == Ev::kMsgRecv) {
            // Causal flow edge: "s" at the sender binds to the slice open at
            // send time, "f" (bp:"e") at the receiver binds to the enclosing
            // handler slice. Perfetto matches the pair on (cat, id) — the
            // flow id is machine-unique, so every edge resolves 1:1.
            out.append(e.kind == Ev::kMsgSend ? "{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"msg\""
                                              : "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\","
                                                "\"name\":\"msg\"");
            out.append(",\"id\":\"");
            out.append(std::to_string(e.a));
            out.append("\",\"pid\":");
            out.append(std::to_string(pid));
            out.append(",\"tid\":");
            out.append(std::to_string(p));
            out.append(",\"ts\":");
            append_ts(&out, e.t0 + shift, data.domain);
            out.append("}");
            break;
          }
          out.append("{\"ph\":\"i\",");
          append_common(&out, pid, static_cast<int>(p), e, data.domain, shift);
          out.append(",\"cat\":\"engine\",\"s\":\"t\",\"args\":{\"a\":");
          out.append(std::to_string(e.a));
          out.append("}}");
          break;
        }
      }
    }
  }
}

}  // namespace

std::string trace_to_perfetto_json(const TraceData& data) {
  std::string out;
  out.reserve(1u << 16);
  out.append("{\"traceEvents\":[");
  bool first = true;
  append_trace_events(&out, &first, data, /*pid=*/0, /*shift=*/0);
  out.append("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock_domain\":\"");
  out.append(data.domain == ClockDomain::kVirtual ? "virtual" : "steady_ns");
  out.append("\",\"makespan\":");
  out.append(std::to_string(data.makespan));
  out.append("}}");
  return out;
}

std::string merged_traces_to_perfetto_json(const std::vector<TraceData>& ranks) {
  // Clock alignment: each rank's timestamps count from its own run start.
  // With wall epochs recorded, shift each rank by its epoch's distance from
  // the earliest one, putting all ranks on a common timeline.
  std::uint64_t min_epoch = 0;
  bool have_epochs = !ranks.empty();
  for (const TraceData& d : ranks) have_epochs = have_epochs && d.wall_epoch_ns != 0;
  if (have_epochs) {
    min_epoch = ranks.front().wall_epoch_ns;
    for (const TraceData& d : ranks) min_epoch = std::min(min_epoch, d.wall_epoch_ns);
  }
  std::string out;
  out.reserve(1u << 16);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (std::size_t rk = 0; rk < ranks.size(); ++rk) {
    std::uint64_t shift = have_epochs ? ranks[rk].wall_epoch_ns - min_epoch : 0;
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"ph\":\"M\",\"pid\":");
    out.append(std::to_string(rk));
    out.append(",\"name\":\"process_name\",\"args\":{\"name\":\"rank ");
    out.append(std::to_string(rk));
    out.append("\"}}");
    append_trace_events(&out, &first, ranks[rk], static_cast<int>(rk), shift);
  }
  std::uint64_t makespan = 0;
  for (const TraceData& d : ranks) makespan = std::max(makespan, d.makespan);
  out.append("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock_domain\":\"");
  out.append(!ranks.empty() && ranks.front().domain == ClockDomain::kVirtual ? "virtual"
                                                                             : "steady_ns");
  out.append("\",\"makespan\":");
  out.append(std::to_string(makespan));
  out.append(",\"clock_offsets_ns\":[");
  for (std::size_t rk = 0; rk < ranks.size(); ++rk) {
    if (rk) out.push_back(',');
    out.append(std::to_string(have_epochs ? ranks[rk].wall_epoch_ns - min_epoch : 0));
  }
  out.append("]}}");
  return out;
}

}  // namespace gbd
