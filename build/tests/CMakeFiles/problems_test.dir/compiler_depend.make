# Empty compiler generated dependencies file for problems_test.
# This may be replaced when dependencies are built.
