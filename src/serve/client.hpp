// Blocking client for the gbd_serve daemon — the library under the
// gbd_client CLI and the serve tests/benches.
//
// One ServeClient owns one TCP connection and speaks the serve/wire.hpp
// protocol. Sends are synchronous; receives go through poll(), which
// surfaces every server message (job events, job results, stats replies) in
// arrival order, or through the wait_result() convenience that routes
// events to a callback until a specific token's single result lands.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/wire.hpp"

namespace gbd {

/// One message from the server, tagged by kind.
struct ClientUpdate {
  enum class Kind : std::uint8_t { kEvent, kResult, kStats };
  Kind kind = Kind::kEvent;
  JobEventMsg event;
  JobResultMsg result;
  ServerStatsMsg stats;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& o) noexcept : fd_(o.fd_), dec_(std::move(o.dec_)) { o.fd_ = -1; }
  ServeClient& operator=(ServeClient&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      dec_ = std::move(o.dec_);
      o.fd_ = -1;
    }
    return *this;
  }

  /// Dial the daemon. Returns false with *err on failure.
  bool connect(const std::string& host, std::uint16_t port, std::string* err = nullptr,
               int timeout_ms = 5000);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Send a submission / cancellation / stats request. False on I/O error.
  bool submit(const SubmitRequest& req);
  bool cancel(std::uint64_t token);
  bool request_stats();

  /// Wait up to timeout_ms for the next server message. Returns 1 with *out
  /// filled, 0 on timeout, -1 on disconnect or protocol error.
  int poll(ClientUpdate* out, int timeout_ms);

  /// Drive poll() until `token`'s result arrives (events for any token go to
  /// on_event when set; results for other tokens are a protocol error here).
  /// False on timeout/disconnect.
  bool wait_result(std::uint64_t token, JobResultMsg* out, int timeout_ms,
                   const std::function<void(const JobEventMsg&)>& on_event = nullptr);

  /// request_stats + wait for the reply, passing through job messages to
  /// on_update when set. False on timeout/disconnect.
  bool stats(ServerStatsMsg* out, int timeout_ms,
             const std::function<void(const ClientUpdate&)>& on_update = nullptr);

 private:
  bool send_frame(std::uint8_t type, std::vector<std::uint8_t> payload);

  int fd_ = -1;
  FrameDecoder dec_{64u << 20};
};

}  // namespace gbd
