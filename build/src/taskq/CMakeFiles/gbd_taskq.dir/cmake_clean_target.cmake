file(REMOVE_RECURSE
  "libgbd_taskq.a"
)
