# Empty compiler generated dependencies file for table3_seq_vs_parallel.
# This may be replaced when dependencies are built.
