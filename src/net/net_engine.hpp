// Running GL-P across processes: SocketMachine + result aggregation.
//
// groebner_parallel_machine (gb/parallel.hpp) runs the unmodified engine on
// any Machine, but a SocketMachine hosts only this process's rank, so its
// ParallelResult is partial: the local rank's added polynomials, engine
// stats and violations, plus (at rank 0, via the exit handshake) the full
// per-rank machine comm stats. groebner_parallel_socket closes the gap with
// one post-run gather round: every rank serializes its contribution — engine
// GbStats, basis wire counters, invariant findings, and the polynomials it
// added (id + body; inputs are preloaded everywhere and excluded) — and
// rank 0 merges the blobs into the same full ParallelResult a single-process
// run would produce: union basis sorted by id, per-rank GbStats, summed
// wire/engine totals.
//
// Non-root ranks return their local partial result (is_root() tells the
// caller whose result is authoritative). cfg.record_trace is not supported
// across processes (the replay trace stays local) and is checked off.
#pragma once

#include "gb/parallel.hpp"
#include "net/socket_machine.hpp"

namespace gbd {

/// Run GL-P on `machine` (already configured with rank/nprocs/endpoints) and
/// merge the full result onto rank 0. cfg.nprocs must equal machine.nprocs().
/// Every rank of the job must call this; throws NetError on peer failure.
ParallelResult groebner_parallel_socket(SocketMachine& machine, const PolySystem& sys,
                                        const ParallelConfig& cfg);

/// Serialization of one rank's contribution (exposed for tests).
/// `input_count` = number of nonzero input polynomials: ids make_poly_id(0,
/// seq < input_count) are preloaded inputs, excluded from the blob.
std::vector<std::uint8_t> encode_rank_contribution(int rank, std::size_t input_count,
                                                   const ParallelResult& partial);
void merge_rank_contribution(ParallelResult* total, const std::vector<std::uint8_t>& blob);

}  // namespace gbd
