// GL-P — the distributed-memory parallel Buchberger engine (Figures 3/4 of
// the paper), programmed against the virtual machine exactly as §5-§6
// describe the CM-5 implementation:
//
//  - tasks are pairs of 8-byte polynomial ids in the distributed task queue;
//    polynomial bodies never travel with tasks;
//  - each processor reduces against its own, possibly stale, replica of the
//    basis (axiom REDUCE over ForAll; staleness is safe — no reduction goes
//    to waste);
//  - a pair whose polynomials are not locally resident is suspended ("on
//    hold") while its bodies are fetched up the owner-rooted tree, and other
//    work proceeds — the paper's application-level threading;
//  - a nonzero normal form triggers the augment protocol: request the
//    central invalidation lock (suspending the augment if not granted
//    immediately), then VALIDATE the replica (split-phase bulk fetch),
//    re-reduce against the now-complete basis, and either discard (zero) or
//    AddToSet (split-phase invalidation broadcast with acks), create the new
//    pairs, and release;
//  - processor `coordinator` additionally hosts the lock manager and the
//    termination-detection coordinator (§6); optionally it is reserved and
//    takes no compute tasks, as on the paper's CM-5.
//
// On a SimMachine the run is deterministic for a fixed config; `seed`
// perturbs the initial pair placement, standing in for the timing races that
// made CM-5 runs vary ("best of 5 runs").
#pragma once

#include <map>

#include "basis/basis_store.hpp"
#include "gb/engine_common.hpp"
#include "gb/trace.hpp"
#include "io/parse.hpp"
#include "machine/chaos.hpp"
#include "machine/cost_model.hpp"
#include "machine/sim_machine.hpp"
#include "taskq/taskq.hpp"

namespace gbd {

class Tracer;           // obs/tracer.hpp
class MetricsRegistry;  // obs/metrics.hpp
class Telemetry;        // obs/telemetry.hpp

/// Basis storage policy (see basis/basis_store.hpp).
enum class BasisMode : std::uint8_t {
  kReplicated,  ///< the paper's main design: every processor holds every body
  kHybrid,      ///< §7's space-time continuum: bounded homes + evicting cache
};

struct ParallelConfig {
  GbConfig gb;
  int nprocs = 4;
  std::uint64_t seed = 1;
  CostModel cost;
  BasisMode basis_mode = BasisMode::kReplicated;
  /// Hybrid mode: permanent copies per element / non-home cache slots.
  int hybrid_homes = 2;
  std::size_t hybrid_cache_capacity = 16;
  /// Reserve the coordinator processor for lock/termination duty only
  /// (the paper's CM-5 setup). Requires nprocs >= 2.
  bool reserve_coordinator = false;
  /// Wire-level protocol batching (PR 3): coalesce invalidation broadcasts
  /// and validation fetch/body traffic into multi-id envelopes, and admit
  /// several reducts per lock hold. Off by default — the one-message-per-id
  /// path is the differential oracle. Replicated store only; the hybrid
  /// store ignores it.
  BasisWireConfig wire;
  /// Max reducts admitted per lock hold when wire.batch_invalidations is on.
  std::size_t max_batch_adds = 8;
  /// Task-queue tuning (coordinator field is overridden to 0).
  TaskQueueConfig taskq;
  /// Record per-task traces for the Fig. 8(b) replay baseline.
  bool record_trace = false;
  /// Adversarial schedule perturbation (SimMachine only; see machine/chaos.hpp).
  /// If chaos duplication is on and dup_safe is empty, groebner_parallel
  /// fills in the engine's idempotent handler set.
  ChaosConfig chaos;
  /// Register the protocol invariant checkers (replicated-basis coherence,
  /// task conservation, termination safety) on the machine. Violations are
  /// recorded in ParallelResult::violations, not aborted on.
  bool check_invariants = false;
  /// Deliveries between periodic invariant sweeps (see InvariantMonitor).
  std::uint64_t invariant_period = 128;
  /// Observability (obs/): when non-null, `tracer` is attached to the machine
  /// and records per-processor event timelines (task/reduce/wait/hold spans,
  /// protocol rounds); `metrics` receives every run-end counter — machine,
  /// queue, basis, engine and kernel — as named per-processor series. Both
  /// must outlive the call. Null ⇒ zero instrumentation beyond a pointer
  /// test per site.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Live telemetry pipeline (obs/telemetry.hpp): when non-null, each
  /// processor periodically snapshots progress counters (queue depth, degree,
  /// S-pairs retired/zeroed, ...) and latency histograms into best-effort
  /// frames aggregated at processor 0. Must outlive the call.
  Telemetry* telemetry = nullptr;
};

struct ParallelResult : GbResult {
  /// Final basis with identities (inputs + added), sorted by id.
  std::vector<std::pair<PolyId, Polynomial>> basis_ids;
  /// Virtual makespan and per-processor machine counters.
  SimStats machine;
  std::vector<GbStats> per_proc;
  /// Basis-protocol traffic summed over processors (logical ids + the
  /// PR-3 batched-envelope counters; max_resident is meaningless summed and
  /// is left per-store).
  BasisStats wire;
  /// Total algebra work (spoly + reduction + criteria) across processors —
  /// the replay baseline approximates this.
  std::uint64_t compute_units = 0;
  RunTrace trace;
  /// Invariant violations observed by the monitor (empty when
  /// check_invariants was off or every check held on every sweep).
  std::vector<std::string> violations;
  /// Number of full invariant sweeps that ran (for asserting coverage).
  std::uint64_t invariant_sweeps = 0;

  /// id -> body map for replay_trace.
  std::map<PolyId, Polynomial> bodies() const;
};

/// Run GL-P on a fresh SimMachine with cfg.nprocs processors.
ParallelResult groebner_parallel(const PolySystem& sys, const ParallelConfig& cfg);

/// Run the same worker on real threads (functional demonstration; timing
/// fields of the result are wall-clock and not comparable to virtual units).
ParallelResult groebner_parallel_threads(const PolySystem& sys, const ParallelConfig& cfg);

class Machine;  // machine/machine.hpp

/// Run GL-P on a caller-supplied real-time Machine backend (ThreadMachine,
/// SocketMachine, ...). cfg.nprocs must equal machine.nprocs(). On a
/// machine that hosts only a subset of the logical processors in this
/// process (SocketMachine hosts exactly one), the result is *partial*: only
/// the locally hosted ranks contribute per_proc/basis entries — use
/// net/net_engine.hpp to merge a full result across processes.
ParallelResult groebner_parallel_machine(Machine& machine, const PolySystem& sys,
                                         const ParallelConfig& cfg);

}  // namespace gbd
