// Symbolic preprocessing for batched (F4-style) matrix reduction.
//
// Per-poly reduction (reduce.hpp) re-walks the reducer set once per
// cancellation step. When many s-polynomials are reduced together, almost all
// of that search is shared: the monomials they contain overlap heavily, and
// each distinct monomial needs its reducer chosen exactly once. Symbolic
// preprocessing (Faugère's F4; GBLA) runs the search ahead of time over the
// whole batch: starting from the monomials of the batch rows, every monomial
// some basis head divides gets one scheduled reducer product
// mult·g (mult = m / HMONO(g)), whose own monomials are fed back into the
// worklist until closure. The closure — the *frame* — becomes the columns of
// a Macaulay matrix (matrix.hpp) and the scheduled products its pivot rows;
// the numeric elimination (echelon.hpp) then never searches for reducers.
//
// Reducer choice per monomial delegates to ReducerSet::find_reducer — the
// same divmask-prefiltered, deterministically-tie-broken lookup the per-poly
// path uses — so for a fixed reducer set the matrix path cancels each
// monomial against the exact polynomial the oracle would have picked.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "poly/polynomial.hpp"
#include "poly/reduce.hpp"

namespace gbd {

/// Thread-local counters for the batched kernel, mirroring GeobucketStats /
/// FindReducerStats: windowed per run by the metrics registry.
struct MatrixKernelStats {
  std::uint64_t batches = 0;        ///< symbolic_preprocess calls
  std::uint64_t frame_cols = 0;     ///< frame monomials (matrix columns)
  std::uint64_t pivot_rows = 0;     ///< scheduled reducer products
  std::uint64_t work_rows = 0;      ///< batch rows fed in
  std::uint64_t rows_zeroed = 0;    ///< work rows eliminated to zero
  std::uint64_t axpys = 0;          ///< row-elimination updates
  std::uint64_t dense_cells = 0;    ///< Zp accumulator cells scanned
  // SIMD sweep dispatch (poly/simd.hpp) and multiline streaming.
  std::uint64_t simd_rows = 0;      ///< work rows swept by the vector kernel
  std::uint64_t scalar_rows = 0;    ///< Zp work rows swept by the Montgomery kernel
  std::uint64_t simd_cells = 0;     ///< coefficient lanes streamed by vector AXPYs
  std::uint64_t simd_runs = 0;      ///< multiline runs streamed
  std::uint64_t sweep_ns = 0;       ///< wall nanoseconds inside the stage-1 sweep
  // Symbolic frame reuse across adjacent-degree batches (SymbolicMemo).
  std::uint64_t memo_hits = 0;      ///< closure monomials resolved from the memo
  std::uint64_t memo_misses = 0;    ///< closure monomials that ran find_reducer
  // Exact-path lazy pivot expansion (per touched column, shared per worker).
  std::uint64_t pivot_cache_builds = 0;  ///< products expanded on first touch
  std::uint64_t pivot_cache_hits = 0;    ///< reuses of an expanded product
};

MatrixKernelStats& matrix_kernel_stats();
void reset_matrix_kernel_stats();

/// One scheduled reducer product mult·(*reducer), covering the frame
/// monomial mult·HMONO(reducer). The pointer aliases the reducer set's
/// backing storage and is valid only while that set is not mutated.
struct PivotProduct {
  const Polynomial* reducer = nullptr;
  std::uint64_t reducer_id = 0;  ///< id reported by ReducerSet::find_reducer
  Monomial mult;
};

/// Output of symbolic preprocessing: the monomial frame and the pivot
/// schedule. Columns are the frame monomials in strictly decreasing order
/// under the context's ordering (column 0 = largest); pivots are sorted by
/// head column, which is strictly increasing (one pivot per reducible
/// monomial), so the pivot block is upper triangular by construction.
struct SymbolicFrame {
  std::vector<Monomial> cols;        ///< strictly decreasing
  std::vector<PivotProduct> pivots;  ///< head columns strictly increasing
  /// Per column: index into `pivots` of the product whose head covers it,
  /// or -1 when the column's monomial is irreducible.
  std::vector<std::int32_t> pivot_of_col;

  std::size_t ncols() const { return cols.size(); }

  /// Column of a monomial, or -1 if it is not in the frame.
  std::int64_t col_of(const Monomial& m) const {
    auto it = index_.find(m);
    return it == index_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

  struct MonoHash {
    std::size_t operator()(const Monomial& m) const { return m.hash(); }
  };
  std::unordered_map<Monomial, std::uint32_t, MonoHash> index_;
};

/// Cross-batch cache of reducer resolutions. Adjacent-degree batches share
/// most of their closure monomials, so rebuilding the frame from scratch
/// re-runs find_reducer over a mostly unchanged reducer set. The memo keys
/// each resolved monomial to (reducer id, set version at resolution time,
/// reducible?); an entry is reusable iff no head added after its stamp
/// divides the monomial (ReducerSet::head_added_since) — existing elements
/// never change under the append-only contract, and a newcomer can only
/// displace the previous winner if its head divides the monomial. Pointers
/// are never cached: they are re-fetched by id per batch, because the
/// backing vector may have reallocated. Only effective against sets that
/// report a version (VectorReducerSet); unversioned sets bypass the memo.
class SymbolicMemo {
 public:
  struct Entry {
    std::uint64_t reducer_id = 0;  ///< meaningful iff reducible
    std::uint64_t stamp = 0;       ///< reducer-set version at resolution
    bool reducible = false;
  };

  Entry* lookup(const Monomial& m) {
    auto it = map_.find(m);
    return it == map_.end() ? nullptr : &it->second;
  }
  void store(const Monomial& m, Entry e) { map_[m] = e; }
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  std::unordered_map<Monomial, Entry, SymbolicFrame::MonoHash> map_;
};

/// Build the frame for a batch of rows against `reducers`. Rows may be zero
/// (they contribute nothing). The result's PivotProduct pointers alias
/// `reducers`' backing storage — do not mutate the set until the frame is
/// consumed. `memo`, if given, caches resolutions across calls; it must only
/// ever be used against the same logical reducer set (the sequential engine
/// keeps one per run). The frame is bit-identical with or without it.
SymbolicFrame symbolic_preprocess(const PolyContext& ctx, const std::vector<Polynomial>& rows,
                                  const ReducerSet& reducers, SymbolicMemo* memo = nullptr);

}  // namespace gbd
