// Additional engine-level regression anchors: the superlinear mechanism,
// repeated real-thread runs (race coverage), stats arithmetic, and config
// corner cases.
#include <gtest/gtest.h>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "io/parse.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

TEST(SuperlinearTest, LazardShortcutsUnderParallelExploration) {
  // The constructed lazard stand-in must keep its defining property: some
  // schedule at P=8 finds the deferred "magic" pairs early and beats the
  // one-processor run by far more than 8/1 would ever explain... at least
  // by a solid factor. Deterministic on the simulator, so this is a stable
  // regression anchor for the Fig. 8(a) phenomenon.
  PolySystem sys = load_problem("lazard");
  GbConfig era;
  era.chain_criterion = false;
  era.gm_update = false;

  ParallelConfig one;
  one.gb = era;
  one.nprocs = 1;
  std::uint64_t t1 = groebner_parallel(sys, one).machine.makespan;

  std::uint64_t best = t1;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ParallelConfig cfg;
    cfg.gb = era;
    cfg.nprocs = 8;
    cfg.seed = seed;
    ParallelResult res = groebner_parallel(sys, cfg);
    EXPECT_TRUE(is_groebner_basis(sys.ctx, res.basis)) << "seed " << seed;
    best = std::min(best, res.machine.makespan);
  }
  EXPECT_LT(best * 2, t1) << "parallel exploration no longer shortcuts lazard";
}

TEST(ThreadEngineTest, RepeatedRacyRunsStayCorrect) {
  // Real threads, no virtual-time serialization: three consecutive runs with
  // genuinely different interleavings must all produce the canonical basis.
  PolySystem sys = load_problem("arnborg4");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  for (int round = 0; round < 3; ++round) {
    ParallelConfig cfg;
    cfg.nprocs = 5;
    cfg.seed = static_cast<std::uint64_t>(round + 1);
    ParallelResult res = groebner_parallel_threads(sys, cfg);
    std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
    ASSERT_EQ(red.size(), ref.size()) << "round " << round;
    for (std::size_t i = 0; i < red.size(); ++i) {
      EXPECT_TRUE(red[i].equals(ref[i])) << "round " << round << " elt " << i;
    }
  }
}

TEST(ThreadEngineTest, HybridBasisOnRealThreads) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.basis_mode = BasisMode::kHybrid;
  cfg.hybrid_homes = 1;
  cfg.hybrid_cache_capacity = 6;
  ParallelResult res = groebner_parallel_threads(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
}

TEST(GbStatsTest, MergeSumsAndMaxes) {
  GbStats a, b;
  a.pairs_created = 10;
  a.max_step_cost = 100;
  a.peak_resident_bodies = 7;
  a.reduction_steps = 3;
  b.pairs_created = 5;
  b.max_step_cost = 200;
  b.peak_resident_bodies = 4;
  b.reduction_steps = 9;
  a.merge(b);
  EXPECT_EQ(a.pairs_created, 15u);
  EXPECT_EQ(a.reduction_steps, 12u);
  EXPECT_EQ(a.max_step_cost, 200u);       // max, not sum
  EXPECT_EQ(a.peak_resident_bodies, 7u);  // max, not sum
}

TEST(GbStatsTest, SummaryMentionsCommOnlyWhenPresent) {
  GbStats s;
  s.pairs_created = 3;
  EXPECT_EQ(s.summary().find("msgs="), std::string::npos);
  s.messages_sent = 12;
  EXPECT_NE(s.summary().find("msgs=12"), std::string::npos);
}

TEST(ConfigCornersTest, TwoProcsReservedCoordinatorStillWorks) {
  // One worker + one coordinator: degenerates to sequential-with-protocol.
  PolySystem sys = load_problem("morgenstern");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ParallelConfig cfg;
  cfg.nprocs = 2;
  cfg.reserve_coordinator = true;
  ParallelResult res = groebner_parallel(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
  EXPECT_EQ(res.per_proc[0].spolys_computed, 0u);
}

TEST(ConfigCornersTest, EmptyAndTrivialInputs) {
  PolySystem sys;
  sys.ctx.vars = {"x", "y"};
  // All-zero generators: empty basis, nothing to do, on every engine.
  sys.polys = {Polynomial(), Polynomial()};
  SequentialResult seq = groebner_sequential(sys);
  EXPECT_TRUE(seq.basis.empty());
  ParallelConfig cfg;
  cfg.nprocs = 3;
  ParallelResult par = groebner_parallel(sys, cfg);
  EXPECT_TRUE(par.basis.empty());
  EXPECT_EQ(par.stats.spolys_computed, 0u);
}

TEST(ConfigCornersTest, SingleGeneratorManyProcs) {
  PolySystem sys;
  sys.ctx.vars = {"x", "y"};
  sys.polys = {parse_poly_or_die(sys.ctx, "x^3*y - x + 2")};
  ParallelConfig cfg;
  cfg.nprocs = 16;  // far more processors than work
  ParallelResult res = groebner_parallel(sys, cfg);
  ASSERT_EQ(res.basis.size(), 1u);
  EXPECT_TRUE(res.basis[0].equals(sys.polys[0]));
}

}  // namespace
}  // namespace gbd
