// Monomials (power products) and monomial orderings.
//
// A monomial x1^e1 … xn^en is an exponent vector with a cached total degree.
// The number of variables is fixed per computation by the PolyContext
// (see polynomial.hpp); all binary operations require equal lengths.
//
// The paper's HCF(m1, m2) (componentwise min) and the lcm m1·m2/HCF
// (componentwise max) are both provided; the pair-selection heuristic of the
// paper (footnote 2) minimizes the lcm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gbd {

class Writer;
class Reader;

class Monomial {
 public:
  /// The constant monomial 1 over `nvars` variables.
  explicit Monomial(std::size_t nvars = 0) : exps_(nvars, 0), degree_(0) {}

  /// From an explicit exponent vector.
  explicit Monomial(std::vector<std::uint32_t> exps);

  std::size_t nvars() const { return exps_.size(); }
  std::uint32_t exp(std::size_t i) const { return exps_[i]; }
  std::uint32_t degree() const { return degree_; }
  bool is_one() const { return degree_ == 0; }

  /// Componentwise sum: this · rhs.
  Monomial operator*(const Monomial& rhs) const;

  /// True iff this divides rhs (componentwise <=).
  bool divides(const Monomial& rhs) const;

  /// Quotient rhs / this is NOT defined; this computes this / rhs and
  /// requires rhs.divides(*this).
  Monomial operator/(const Monomial& rhs) const;

  /// Componentwise min — the paper's HCF (monomial gcd).
  static Monomial hcf(const Monomial& a, const Monomial& b);

  /// Componentwise max — least common multiple.
  static Monomial lcm(const Monomial& a, const Monomial& b);

  /// True iff hcf(a, b) == 1 (Buchberger's first criterion test).
  static bool coprime(const Monomial& a, const Monomial& b);

  bool operator==(const Monomial& rhs) const { return exps_ == rhs.exps_; }
  bool operator!=(const Monomial& rhs) const { return !(*this == rhs); }

  /// Render with the given variable names, e.g. "x^2*y". "1" for the unit.
  std::string to_string(const std::vector<std::string>& names) const;

  void write(Writer& w) const;
  static Monomial read(Reader& r);
  std::size_t wire_size() const { return 8 + 4 * exps_.size(); }

  std::size_t hash() const;

 private:
  std::vector<std::uint32_t> exps_;
  std::uint32_t degree_;
};

/// Admissible monomial orderings. The paper's measurements use total-degree
/// ordering (kGrLex here); lex and graded-reverse-lex are provided as well.
enum class OrderKind : std::uint8_t {
  kLex,      // pure lexicographic, x1 > x2 > …
  kGrLex,    // total degree, ties by lex — the paper's "total degree ordering"
  kGRevLex,  // total degree, ties by reverse lex (the usual fastest order)
  kElim,     // block elimination order: the first PolyContext::elim_vars
             // variables dominate (compared by grlex among themselves), ties
             // by grlex on the remaining block. An elimination order for the
             // first block: a Gröbner basis's elements free of the first
             // block generate the elimination ideal, but the order stays
             // graded within each block (usually far cheaper than full lex).
};

const char* order_name(OrderKind k);

/// Three-way comparison of monomials under `kind`: <0, 0 or >0 as a <,==,> b.
/// For kElim, `elim_vars` is the size of the dominating first block
/// (ignored by the other kinds; PolyContext::cmp supplies it).
int mono_cmp(OrderKind kind, const Monomial& a, const Monomial& b, std::size_t elim_vars = 0);

}  // namespace gbd
