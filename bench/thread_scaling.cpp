// Wall-clock scaling of the real-threads backend (PR 3): runs the paper
// problems on ThreadMachine at 1/2/4/8 threads with the sharded-mailbox
// machine and the batched wire protocol, and emits BENCH_pr3.json with wall
// time, speedup, message/byte totals and the mailbox contention counters.
//
// Real speedup needs real cores: the JSON records host_cores
// (std::thread::hardware_concurrency) next to every number, and each row
// also carries the deterministic SimMachine speedup at the same processor
// count as an architecture-level proxy that is meaningful even on a
// single-core host (virtual time overlaps communication exactly as the
// cost model says, independent of how the OS multiplexes threads).
//
// Modes:
//   thread_scaling [--out FILE] [--problems a,b,c] [--repeats N]
//       measure and write the JSON (default BENCH_pr3.json in the CWD).
//   thread_scaling --smoke [--threads N]
//       CI gate: one problem (trinks1) at N threads (default 2). Exits 0
//       with a note when the host has fewer cores than threads (the gate
//       would measure the scheduler, not the machine); otherwise fails
//       (exit 1) when wall speedup over the 1-thread run is < 1.0.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gb/parallel.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

struct Cell {
  int threads = 0;
  double wall_ms = 0;       // best of repeats, whole groebner_parallel_threads call
  double wall_speedup = 0;  // wall_ms(1 thread) / wall_ms
  double sim_speedup = 0;   // sim makespan(P=1) / sim makespan(P) — architecture proxy
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t notifies = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t max_drain_batch = 0;
};

struct Row {
  std::string name;
  std::vector<Cell> cells;
};

ParallelConfig scaled_config(int nprocs) {
  ParallelConfig cfg;
  cfg.nprocs = nprocs;
  cfg.wire.batch_invalidations = true;
  cfg.wire.batch_fetches = true;
  return cfg;
}

Cell measure_cell(const PolySystem& sys, int threads, int repeats, double wall_ms_1,
                  std::uint64_t sim_makespan_1) {
  Cell c;
  c.threads = threads;
  ParallelConfig cfg = scaled_config(threads);
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    ParallelResult r = groebner_parallel_threads(sys, cfg);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < c.wall_ms) {
      c.wall_ms = ms;
      c.messages = 0;
      c.bytes = 0;
      for (const ProcCommStats& pc : r.machine.per_proc) {
        c.messages += pc.messages_sent;
        c.bytes += pc.bytes_sent;
      }
      c.wakeups = c.notifies = c.lock_contended = c.max_drain_batch = 0;
      for (const MailboxStats& mb : r.machine.mailbox) {
        c.wakeups += mb.wakeups;
        c.notifies += mb.notifies;
        c.lock_contended += mb.lock_contended;
        if (mb.max_drain_batch > c.max_drain_batch) c.max_drain_batch = mb.max_drain_batch;
      }
    }
  }
  c.wall_speedup = c.wall_ms > 0 ? wall_ms_1 / c.wall_ms : 0.0;
  ParallelResult sim = groebner_parallel(sys, cfg);
  c.sim_speedup = sim.machine.makespan > 0
                      ? static_cast<double>(sim_makespan_1) /
                            static_cast<double>(sim.machine.makespan)
                      : 0.0;
  return c;
}

Row measure_row(const std::string& name, const std::vector<int>& threads, int repeats) {
  PolySystem sys = load_problem(name);
  Row row;
  row.name = name;
  // 1-thread baselines (wall and virtual) anchor both speedup columns.
  std::uint64_t sim_1 = groebner_parallel(sys, scaled_config(1)).machine.makespan;
  double wall_1 = 0;
  {
    ParallelConfig cfg = scaled_config(1);
    for (int i = 0; i < repeats; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      groebner_parallel_threads(sys, cfg);
      auto t1 = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (i == 0 || ms < wall_1) wall_1 = ms;
    }
  }
  for (int t : threads) {
    row.cells.push_back(measure_cell(sys, t, repeats, wall_1, sim_1));
  }
  return row;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"pr3_thread_scaling\",\n  \"host_cores\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"note\": \"wall speedups are meaningful only when host_cores >= threads; "
         "sim_speedup is the deterministic virtual-time proxy\",\n  \"problems\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"name\": \"" << rows[i].name << "\", \"runs\": [\n";
    for (std::size_t j = 0; j < rows[i].cells.size(); ++j) {
      const Cell& c = rows[i].cells[j];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "      {\"threads\": %d, \"wall_ms\": %.3f, \"wall_speedup\": %.3f, "
                    "\"sim_speedup\": %.3f, \"messages\": %llu, \"bytes\": %llu, "
                    "\"wakeups\": %llu, \"notifies\": %llu, \"lock_contended\": %llu, "
                    "\"max_drain_batch\": %llu}%s\n",
                    c.threads, c.wall_ms, c.wall_speedup, c.sim_speedup,
                    static_cast<unsigned long long>(c.messages),
                    static_cast<unsigned long long>(c.bytes),
                    static_cast<unsigned long long>(c.wakeups),
                    static_cast<unsigned long long>(c.notifies),
                    static_cast<unsigned long long>(c.lock_contended),
                    static_cast<unsigned long long>(c.max_drain_batch),
                    j + 1 < rows[i].cells.size() ? "," : "");
      out << buf;
    }
    out << "    ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int smoke(int threads) {
  unsigned cores = std::thread::hardware_concurrency();
  if (cores < static_cast<unsigned>(threads)) {
    std::printf("SKIP: host has %u core(s) < %d threads — wall speedup would measure the "
                "OS scheduler, not the machine; run on a multicore host for the gate\n",
                cores, threads);
    return 0;
  }
  PolySystem sys = load_problem("trinks1");
  Row row = measure_row("trinks1", {threads}, /*repeats=*/5);
  const Cell& c = row.cells.front();
  std::printf("trinks1 @ %d threads: wall %.2f ms, speedup %.2fx (sim proxy %.2fx), "
              "%llu msgs, %llu wakeups\n",
              threads, c.wall_ms, c.wall_speedup, c.sim_speedup,
              static_cast<unsigned long long>(c.messages),
              static_cast<unsigned long long>(c.wakeups));
  if (c.wall_speedup < 1.0) {
    std::fprintf(stderr, "FAIL: %d-thread wall speedup %.2f < 1.0\n", threads, c.wall_speedup);
    return 1;
  }
  return 0;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(int argc, char** argv) {
  std::string out_path = "BENCH_pr3.json";
  std::vector<std::string> problems = {"katsura4", "trinks2", "trinks1"};
  std::vector<int> threads = {1, 2, 4, 8};
  int repeats = 5;
  bool smoke_mode = false;
  int smoke_threads = 2;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--problems") {
      problems = split_csv(next());
    } else if (a == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (a == "--smoke") {
      smoke_mode = true;
    } else if (a == "--threads") {
      smoke_threads = std::atoi(next().c_str());
    } else {
      std::fprintf(stderr,
                   "usage: thread_scaling [--out FILE] [--problems a,b,c] [--repeats N]\n"
                   "       thread_scaling --smoke [--threads N]\n");
      return 2;
    }
  }

  if (smoke_mode) return smoke(smoke_threads);

  std::printf("host cores: %u\n", std::thread::hardware_concurrency());
  std::vector<Row> rows;
  for (const std::string& name : problems) {
    if (!has_problem(name)) {
      std::fprintf(stderr, "unknown problem %s\n", name.c_str());
      return 2;
    }
    Row row = measure_row(name, threads, repeats);
    for (const Cell& c : row.cells) {
      std::printf("%-10s P=%d  wall %8.2f ms  speedup %5.2fx  sim %5.2fx  msgs %7llu  "
                  "bytes %9llu  wakeups %6llu  contended %6llu  max_drain %4llu\n",
                  name.c_str(), c.threads, c.wall_ms, c.wall_speedup, c.sim_speedup,
                  static_cast<unsigned long long>(c.messages),
                  static_cast<unsigned long long>(c.bytes),
                  static_cast<unsigned long long>(c.wakeups),
                  static_cast<unsigned long long>(c.lock_contended),
                  static_cast<unsigned long long>(c.max_drain_batch));
    }
    rows.push_back(std::move(row));
  }
  write_json(rows, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gbd

int main(int argc, char** argv) { return gbd::run(argc, argv); }
