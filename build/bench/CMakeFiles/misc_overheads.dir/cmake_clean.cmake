file(REMOVE_RECURSE
  "CMakeFiles/misc_overheads.dir/misc_overheads.cpp.o"
  "CMakeFiles/misc_overheads.dir/misc_overheads.cpp.o.d"
  "misc_overheads"
  "misc_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
