// Pair bookkeeping for the sequential-side engines: the priority queue gpq,
// the treated-pair set, and Buchberger's elimination criteria.
//
// The queue orders pairs by heuristic merit (§3.1: "priority ordering is
// necessary in gpq, so that heuristic merit can be encoded into priority").
// The treated-pair set supports the chain criterion: pair (i,j) is
// superfluous if some basis element k has HMONO(k) | lcm(i,j) and the pairs
// (i,k) and (j,k) were both treated earlier. Soundness relies on citing only
// pairs completed strictly earlier, so callers must mark a pair done *after*
// testing it for pruning.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "gb/engine_common.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// A queued pair of basis indices (i < j) with its cached head-lcm.
struct PendingPair {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  Monomial lcm;
  std::uint32_t sugar = 0;  ///< pair sugar degree (used by Selection::kSugar)
  std::uint64_t seq = 0;    ///< creation sequence number (FIFO + determinism)
};

/// Priority queue over PendingPair implementing the Selection strategies.
/// Deterministic: ties broken by creation sequence.
class SequentialPairQueue {
 public:
  SequentialPairQueue(const PolyContext* ctx, Selection selection)
      : ctx_(ctx), selection_(selection), pairs_(Cmp{this}) {}

  void push(std::uint32_t i, std::uint32_t j, Monomial lcm, std::uint32_t sugar = 0);

  bool empty() const { return pairs_.empty(); }
  std::size_t size() const { return pairs_.size(); }

  /// Remove and return the best pair under the selection strategy.
  PendingPair pop_best();

  /// The pair pop_best would return, without removing it. Queue must be
  /// non-empty. Used by the batched matrix path to gather all pairs of the
  /// current minimal degree.
  const PendingPair& peek_best() const;

 private:
  struct Cmp {
    const SequentialPairQueue* q;
    bool operator()(const PendingPair& a, const PendingPair& b) const {
      return q->before(a, b);
    }
  };

  bool before(const PendingPair& a, const PendingPair& b) const;

  const PolyContext* ctx_;
  Selection selection_;
  std::uint64_t next_seq_ = 0;
  std::set<PendingPair, Cmp> pairs_;
};

/// Set of treated (completed) pairs keyed by index pair.
class DonePairs {
 public:
  void mark(std::uint32_t i, std::uint32_t j) { done_.insert(key(i, j)); }
  bool contains(std::uint32_t i, std::uint32_t j) const { return done_.count(key(i, j)) > 0; }
  std::size_t size() const { return done_.size(); }

 private:
  static std::uint64_t key(std::uint32_t i, std::uint32_t j) {
    if (i > j) std::swap(i, j);
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }
  std::unordered_set<std::uint64_t> done_;
};

/// Buchberger's first criterion: coprime head monomials.
inline bool coprime_criterion(const Monomial& hi, const Monomial& hj) {
  return Monomial::coprime(hi, hj);
}

/// Buchberger's second (chain) criterion for pair (i,j) against basis heads:
/// true if some k (≠ i,j) has heads[k] | lcm and both (i,k) and (j,k) are in
/// `done`. `heads` is indexed by basis position.
bool chain_criterion(std::uint32_t i, std::uint32_t j, const Monomial& lcm,
                     const std::vector<Monomial>& heads, const DonePairs& done);

struct GmPruneCounts {
  std::uint64_t m_rule = 0;
  std::uint64_t f_rule = 0;
  std::uint64_t coprime = 0;
};

/// Gebauer–Möller update: given the head monomials of the current basis and
/// the head of a new element r, return the indices i whose pair (g_i, r)
/// must actually be queued. Applies, in order (Becker–Weispfenning,
/// "Gröbner Bases", GEBAUERMOELLER):
///   M — drop i when some lcm(h_j, h_r) strictly divides lcm(h_i, h_r);
///   F — among groups with equal lcm keep one representative, or none if any
///       member of the group has coprime heads;
///   B1 — drop survivors with coprime heads (Buchberger's first criterion).
/// The rules are purely syntactic on head monomials — no processing-order
/// bookkeeping — which is what makes them usable by the parallel adder,
/// whose replica is complete and stable under the invalidation lock.
std::vector<std::size_t> gm_new_pairs(const PolyContext& ctx,
                                      const std::vector<Monomial>& heads, const Monomial& hr,
                                      GmPruneCounts* counts = nullptr);

}  // namespace gbd
