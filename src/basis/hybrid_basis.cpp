#include "basis/hybrid_basis.hpp"

#include "basis/replicated_basis.hpp"
#include "support/check.hpp"

namespace gbd {

HybridBasis::HybridBasis(Proc& self, HybridConfig cfg)
    : self_(self), cfg_(cfg), reducer_view_(this) {
  if (cfg_.homes < 1) cfg_.homes = 1;
  if (cfg_.homes > self.nprocs()) cfg_.homes = self.nprocs();
  // A non-home processor must be able to hold at least a working set of
  // fetched bodies (the two polynomials of a pair plus a couple of
  // reducers); with zero cache it could never materialize any body and the
  // engine would deadlock on its own fetches.
  if (cfg_.homes < self.nprocs() && cfg_.cache_capacity < 4) cfg_.cache_capacity = 4;
  self_.on(kBaInvalidate, [this](Proc&, int src, Reader& r) { on_invalidate(src, r); });
  self_.on(kBaInvAck, [this](Proc&, int, Reader&) {
    GBD_CHECK_MSG(acks_missing_ > 0, "unexpected invalidation ack");
    acks_missing_ -= 1;
  });
  self_.on(kBaFetch, [this](Proc&, int src, Reader& r) { on_fetch(src, r); });
  self_.on(kBaBody, [this](Proc&, int, Reader& r) { on_body(r, /*as_home=*/false); });
  self_.on(kBaHomeBody, [this](Proc&, int, Reader& r) { on_body(r, /*as_home=*/true); });
}

bool HybridBasis::is_home(PolyId id) const {
  int p = self_.nprocs();
  int dist = (self_.id() - poly_id_owner(id) + p) % p;
  return dist < cfg_.homes;
}

int HybridBasis::tree_parent(int owner) const {
  int p = self_.nprocs();
  int pos = (self_.id() - owner + p) % p;
  GBD_CHECK_MSG(pos != 0, "owner routing to itself");
  return ((pos - 1) / 2 + owner) % p;
}

void HybridBasis::announce(PolyId id, Monomial head) {
  auto [it, inserted] = head_index_.emplace(id, head);
  if (inserted) {
    if (ruler_.nvars() != head.nvars()) ruler_ = DivMaskRuler(head.nvars());
    head_masks_.push_back(ruler_.mask(head));
    known_heads_.emplace_back(id, std::move(head));
  }
}

void HybridBasis::touch(PolyId id) {
  auto pos = lru_pos_.find(id);
  if (pos == lru_pos_.end()) return;  // home body: not subject to eviction
  lru_.splice(lru_.end(), lru_, pos->second);
}

void HybridBasis::store_body(PolyId id, Polynomial poly) {
  if (resident_.count(id) > 0) return;
  if (!is_home(id)) {
    if (cfg_.cache_capacity == 0) return;  // nothing may be cached here
    while (lru_.size() >= cfg_.cache_capacity) {
      PolyId victim = lru_.front();
      lru_.pop_front();
      lru_pos_.erase(victim);
      resident_.erase(victim);
      stats_.evictions += 1;
    }
    lru_.push_back(id);
    lru_pos_[id] = std::prev(lru_.end());
  }
  resident_.emplace(id, std::move(poly));
  stats_.max_resident = std::max(stats_.max_resident, resident_.size());
}

void HybridBasis::preload(PolyId id, Polynomial poly) {
  GBD_CHECK_MSG(head_index_.find(id) == head_index_.end(), "preload of duplicate id");
  if (poly_id_owner(id) == self_.id() && poly_id_seq(id) >= next_local_seq_) {
    next_local_seq_ = poly_id_seq(id) + 1;
  }
  announce(id, poly.hmono());
  // Inputs are resident everywhere regardless of the home policy (they are
  // part of the program text, not communicated state).
  resident_.emplace(id, std::move(poly));
  stats_.max_resident = std::max(stats_.max_resident, resident_.size());
}

PolyId HybridBasis::begin_add(Polynomial poly) {
  GBD_CHECK_MSG(add_done(), "begin_add while a previous add is still in flight");
  PolyId id = make_poly_id(self_.id(), next_local_seq_++);
  Monomial head = poly.hmono();
  announce(id, head);

  // Eagerly place the body on the other home processors.
  Writer body_msg;
  body_msg.u64(id);
  poly.write(body_msg);
  const std::vector<std::uint8_t> body_payload = body_msg.take();
  for (int k = 1; k < cfg_.homes; ++k) {
    self_.send((self_.id() + k) % self_.nprocs(), kBaHomeBody, body_payload);
  }

  resident_.emplace(id, std::move(poly));  // owner is always a home
  stats_.max_resident = std::max(stats_.max_resident, resident_.size());

  acks_missing_ = self_.nprocs() - 1;
  for (int p = 0; p < self_.nprocs(); ++p) {
    if (p == self_.id()) continue;
    Writer w;
    w.u64(id);
    head.write(w);
    self_.send(p, kBaInvalidate, w.take());
    stats_.invalidations_sent += 1;
  }
  return id;
}

void HybridBasis::on_invalidate(int src, Reader& r) {
  PolyId id = r.u64();
  Monomial head = Monomial::read(r);
  announce(id, std::move(head));
  self_.send(src, kBaInvAck, {});
}

void HybridBasis::prefetch(PolyId id) {
  if (resident_.count(id) > 0) return;
  request_body(id);
}

void HybridBasis::request_body(PolyId id) {
  auto [it, inserted] = fetch_in_flight_.emplace(id, true);
  if (!inserted) return;
  Writer w;
  w.u64(id);
  self_.send(tree_parent(poly_id_owner(id)), kBaFetch, w.take());
  stats_.fetches_sent += 1;
}

void HybridBasis::on_fetch(int src, Reader& r) {
  PolyId id = r.u64();
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    touch(id);
    Writer w;
    w.u64(id);
    it->second.write(w);
    self_.send(src, kBaBody, w.take());
    stats_.bodies_served += 1;
    return;
  }
  pending_requesters_[id].push_back(src);
  request_body(id);
}

void HybridBasis::on_body(Reader& r, bool as_home) {
  PolyId id = r.u64();
  Polynomial poly = Polynomial::read(r);
  stats_.bodies_received += 1;
  fetch_in_flight_.erase(id);
  announce(id, poly.hmono());  // a body can overtake its invalidation

  auto pend = pending_requesters_.find(id);
  if (pend != pending_requesters_.end()) {
    Writer w;
    w.u64(id);
    poly.write(w);
    const std::vector<std::uint8_t> payload = w.take();
    for (int child : pend->second) {
      self_.send(child, kBaBody, payload);
      stats_.bodies_forwarded += 1;
    }
    pending_requesters_.erase(pend);
  }
  // A home push always sticks; a fetched copy goes through the cache policy.
  if (as_home) {
    GBD_CHECK_MSG(is_home(id), "home push delivered to a non-home processor");
  }
  store_body(id, std::move(poly));
}

const Polynomial* HybridBasis::find(PolyId id) {
  auto it = resident_.find(id);
  if (it == resident_.end()) return nullptr;
  touch(id);
  return &it->second;
}

PolyId HybridBasis::pending_reducer(const Monomial& m) const {
  for (const auto& [id, head] : known_heads_) {
    if (resident_.count(id) == 0 && head.divides(m)) return id;
  }
  return 0;
}

const Polynomial* HybridBasis::ReducerView::find_reducer(const Monomial& m,
                                                         std::uint64_t* out_id) const {
  if (b_->known_heads_.empty()) return nullptr;
  FindReducerStats& st = find_reducer_stats();
  st.calls += 1;
  const std::uint64_t tmask = b_->ruler_.mask(m);
  const Polynomial* best = nullptr;
  PolyId best_id = 0;
  std::size_t best_bits = 0, best_terms = 0;
  for (std::size_t i = 0; i < b_->known_heads_.size(); ++i) {
    st.probes += 1;
    // Mask test first: it is cheaper than both the exponent walk and the
    // residency map lookup it gates.
    if (!DivMaskRuler::may_divide(b_->head_masks_[i], tmask)) {
      st.mask_rejects += 1;
      continue;
    }
    const auto& [id, head] = b_->known_heads_[i];
    st.divides_calls += 1;
    if (!head.divides(m)) continue;
    auto it = b_->resident_.find(id);
    if (it == b_->resident_.end()) continue;
    std::size_t gbits = it->second.hcoef().bit_length();
    std::size_t gterms = it->second.nterms();
    if (best == nullptr || gbits < best_bits || (gbits == best_bits && gterms < best_terms)) {
      best = &it->second;
      best_id = id;
      best_bits = gbits;
      best_terms = gterms;
    }
  }
  if (best != nullptr) {
    b_->touch(best_id);
    if (out_id) *out_id = best_id;
  }
  return best;
}

}  // namespace gbd
