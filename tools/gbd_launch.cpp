// gbd_launch — rendezvous launcher for the SocketMachine backend: one OS
// process per logical processor over TCP loopback (or real hosts).
//
// Launcher mode (default):
//   gbd_launch [--procs N] [--problem NAME] [--port BASE] [--seed S]
//              [--coeff exact|zp:P] [--net-chaos LEVEL] [--chaos-seed S]
//              [--batch] [--reserve] [--peer-timeout-ms T] [--trace-dir DIR]
//              [--watch] [--telemetry-out FILE]
//              [--timeout SECONDS] [--no-verify]
//              [--kill-rank R [--kill-after-ms T]]
//
//   Forks N worker processes (re-exec of this binary) on 127.0.0.1 ports
//   BASE..BASE+N-1, supervises them under a watchdog, and reports per-rank
//   exit status. Rank 0 computes the merged basis, verifies the Gröbner
//   certificate, and prints the run summary. --kill-rank is a failure drill:
//   the launcher SIGKILLs that rank mid-run and then *expects* the survivors
//   to fail fast with a clean transport error (exit 3) instead of hanging.
//
//   --watch turns on live telemetry and renders a dashboard on rank 0's
//   stderr (per-rank busy bars, queue depth, message rates, a progress/ETA
//   line); --telemetry-out FILE appends one JSON object per telemetry update
//   (a flight log replayable offline). Both ride the best-effort kTelemetry
//   frame path: loss under --net-chaos costs dashboard freshness, never
//   correctness. With --trace-dir, each rank also arms the crash flight
//   recorder: a rank dying to a fatal signal or NetError leaves
//   DIR/rankN.flight.json with its last trace events and metric snapshot.
//
// Worker mode (started by the launcher, or by hand on real hosts):
//   gbd_launch --worker --rank R [--hosts FILE] ...same flags...
//
//   With --hosts, FILE lists one "host:port" per line, one line per rank,
//   and every rank must be started manually with its --rank.
//
// Exit codes: 0 success; 1 wrong result/verification failure; 2 usage;
// 3 transport failure (peer died / timed out); 124 watchdog timeout.
#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bigint/zp.hpp"
#include "gb/verify.hpp"
#include "net/net_engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "problems/problems.hpp"

using namespace gbd;

namespace {

struct Options {
  int procs = 4;
  std::string problem = "trinks1";
  int port = 0;  ///< 0 = derive from pid
  std::uint64_t seed = 1;
  std::string coeff = "exact";  ///< "exact" or "zp:P" (run over Z/PZ)
  int net_chaos = 0;
  std::uint64_t chaos_seed = 42;
  bool batch = false;
  bool reserve = false;
  int peer_timeout_ms = 10000;
  std::string trace_dir;
  bool watch = false;
  std::string telemetry_out;
  int telemetry_interval_ms = 100;
  int timeout_s = 120;
  bool verify = true;
  int kill_rank = -1;
  int kill_after_ms = 500;
  std::string hosts_file;
  // Worker mode.
  bool worker = false;
  int rank = -1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--procs N] [--problem NAME] [--port BASE] [--seed S]\n"
               "          [--coeff exact|zp:P] [--net-chaos LEVEL] [--chaos-seed S]\n"
               "          [--batch] [--reserve] [--peer-timeout-ms T] [--trace-dir DIR]\n"
               "          [--watch] [--telemetry-out FILE] [--telemetry-interval-ms T]\n"
               "          [--timeout SECONDS] [--no-verify]\n"
               "          [--kill-rank R [--kill-after-ms T]]\n"
               "       %s --worker --rank R [--hosts FILE] ...\n",
               argv0, argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--procs") == 0) {
      opt.procs = std::atoi(value(i));
    } else if (std::strcmp(a, "--problem") == 0) {
      opt.problem = value(i);
    } else if (std::strcmp(a, "--port") == 0) {
      opt.port = std::atoi(value(i));
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--coeff") == 0) {
      opt.coeff = value(i);
    } else if (std::strcmp(a, "--net-chaos") == 0) {
      opt.net_chaos = std::atoi(value(i));
    } else if (std::strcmp(a, "--chaos-seed") == 0) {
      opt.chaos_seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--batch") == 0) {
      opt.batch = true;
    } else if (std::strcmp(a, "--reserve") == 0) {
      opt.reserve = true;
    } else if (std::strcmp(a, "--peer-timeout-ms") == 0) {
      opt.peer_timeout_ms = std::atoi(value(i));
    } else if (std::strcmp(a, "--trace-dir") == 0) {
      opt.trace_dir = value(i);
    } else if (std::strcmp(a, "--watch") == 0) {
      opt.watch = true;
    } else if (std::strcmp(a, "--telemetry-out") == 0) {
      opt.telemetry_out = value(i);
    } else if (std::strcmp(a, "--telemetry-interval-ms") == 0) {
      opt.telemetry_interval_ms = std::atoi(value(i));
    } else if (std::strcmp(a, "--timeout") == 0) {
      opt.timeout_s = std::atoi(value(i));
    } else if (std::strcmp(a, "--no-verify") == 0) {
      opt.verify = false;
    } else if (std::strcmp(a, "--kill-rank") == 0) {
      opt.kill_rank = std::atoi(value(i));
    } else if (std::strcmp(a, "--kill-after-ms") == 0) {
      opt.kill_after_ms = std::atoi(value(i));
    } else if (std::strcmp(a, "--hosts") == 0) {
      opt.hosts_file = value(i);
    } else if (std::strcmp(a, "--worker") == 0) {
      opt.worker = true;
    } else if (std::strcmp(a, "--rank") == 0) {
      opt.rank = std::atoi(value(i));
    } else {
      usage(argv[0]);
    }
  }
  if (opt.procs < 1 || opt.procs > 256) usage(argv[0]);
  if (opt.worker && (opt.rank < 0 || opt.rank >= opt.procs)) usage(argv[0]);
  return opt;
}

/// "exact" or "zp:P" → engine coefficient options; exits on junk.
CoeffOptions parse_coeff(const std::string& spec) {
  if (spec == "exact") return CoeffOptions::exact();
  if (spec.rfind("zp:", 0) == 0) {
    std::uint64_t p = std::strtoull(spec.c_str() + 3, nullptr, 10);
    if (p < 3 || p % 2 == 0 || p >= (std::uint64_t{1} << 62) || !is_prime_u64(p)) {
      std::fprintf(stderr, "error: --coeff zp:P needs an odd prime 3 <= P < 2^62 (got '%s')\n",
                   spec.c_str());
      std::exit(2);
    }
    return CoeffOptions::zp(p);
  }
  std::fprintf(stderr, "error: --coeff must be 'exact' or 'zp:P' (got '%s')\n", spec.c_str());
  std::exit(2);
}

int base_port(const Options& opt) {
  if (opt.port != 0) return opt.port;
  // Derive a per-invocation base so concurrent test runs don't collide.
  return 21000 + static_cast<int>(::getpid() % 20000);
}

std::vector<NetEndpoint> make_endpoints(const Options& opt) {
  std::vector<NetEndpoint> eps;
  if (!opt.hosts_file.empty()) {
    std::ifstream in(opt.hosts_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open hosts file %s\n", opt.hosts_file.c_str());
      std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      NetEndpoint ep;
      std::size_t colon = line.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: hosts line '%s' is not host:port\n", line.c_str());
        std::exit(2);
      }
      ep.host = line.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(std::atoi(line.c_str() + colon + 1));
      eps.push_back(ep);
    }
    if (static_cast<int>(eps.size()) != opt.procs) {
      std::fprintf(stderr, "error: hosts file has %zu entries, --procs is %d\n", eps.size(),
                   opt.procs);
      std::exit(2);
    }
    return eps;
  }
  int base = base_port(opt);
  for (int r = 0; r < opt.procs; ++r) {
    NetEndpoint ep;
    ep.host = "127.0.0.1";
    ep.port = static_cast<std::uint16_t>(base + r);
    eps.push_back(ep);
  }
  return eps;
}

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(out);
}

/// Live --watch dashboard. Rendered on stderr from the telemetry on_update
/// hook (rank 0 only); on a TTY it redraws in place with cursor movement,
/// otherwise it degrades to an occasional plain status line. Rates (busy %,
/// msgs/s) come from deltas between consecutive per-rank samples — the wire
/// carries counters, the renderer differentiates.
struct WatchRenderer {
  bool tty = isatty(2) != 0;
  int lines_drawn = 0;
  std::chrono::steady_clock::time_point last{};
  std::vector<TeleSample> prev;  ///< per-rank previous sample, for deltas

  static std::string bar(double f, int width) {
    if (f < 0) f = 0;
    if (f > 1) f = 1;
    int fill = static_cast<int>(f * width + 0.5);
    std::string s(static_cast<std::size_t>(width), '-');
    for (int i = 0; i < fill; ++i) s[static_cast<std::size_t>(i)] = '#';
    return s;
  }

  void render(const TelemetryAggregator& agg) {
    auto now = std::chrono::steady_clock::now();
    auto min_gap = std::chrono::milliseconds(tty ? 100 : 1000);
    if (last.time_since_epoch().count() != 0 && now - last < min_gap) return;
    last = now;

    int n = agg.nprocs();
    prev.resize(static_cast<std::size_t>(n));
    std::string out;
    char line[256];

    std::uint64_t retired = 0, zeroed = 0, queued = 0;
    for (int r = 0; r < n; ++r) {
      const TelemetryAggregator::RankState& rs = agg.rank(r);
      retired += tele_get(rs.values, TeleKey::kSpairsRetired);
      zeroed += tele_get(rs.values, TeleKey::kSpairsZeroed);
      queued += tele_get(rs.values, TeleKey::kQueueDepth);
    }
    std::snprintf(line, sizeof line,
                  "progress [%s] %5.1f%%  pairs %llu done / %llu queued  "
                  "frames %llu (lost %llu)\n",
                  bar(agg.progress(), 30).c_str(), agg.progress() * 100.0,
                  static_cast<unsigned long long>(retired + zeroed),
                  static_cast<unsigned long long>(queued),
                  static_cast<unsigned long long>(agg.frames_received()),
                  static_cast<unsigned long long>(agg.dropped_frames()));
    out += line;

    if (!tty) {
      // Non-interactive: one summary line per second is plenty.
      std::fputs(out.c_str(), stderr);
      return;
    }

    for (int r = 0; r < n; ++r) {
      const TelemetryAggregator::RankState& rs = agg.rank(r);
      TeleSample& pv = prev[static_cast<std::size_t>(r)];
      std::uint64_t dt = tele_get(rs.values, TeleKey::kTime) - tele_get(pv, TeleKey::kTime);
      double busy = 0.0, msgs_s = 0.0;
      if (dt > 0) {
        std::uint64_t didle =
            tele_get(rs.values, TeleKey::kIdleUnits) - tele_get(pv, TeleKey::kIdleUnits);
        busy = didle <= dt ? 1.0 - static_cast<double>(didle) / static_cast<double>(dt) : 0.0;
        std::uint64_t dmsgs =
            tele_get(rs.values, TeleKey::kMsgsSent) - tele_get(pv, TeleKey::kMsgsSent) +
            tele_get(rs.values, TeleKey::kMsgsRecv) - tele_get(pv, TeleKey::kMsgsRecv);
        msgs_s = static_cast<double>(dmsgs) * 1e9 / static_cast<double>(dt);
      }
      pv = rs.values;
      std::snprintf(line, sizeof line,
                    "rank %2d [%s] %4.0f%% busy  q=%-5llu deg=%-3llu "
                    "basis=%-4llu %7.0f msg/s%s\n",
                    r, bar(busy, 16).c_str(), busy * 100.0,
                    static_cast<unsigned long long>(tele_get(rs.values, TeleKey::kQueueDepth)),
                    static_cast<unsigned long long>(tele_get(rs.values, TeleKey::kDegree)),
                    static_cast<unsigned long long>(tele_get(rs.values, TeleKey::kBasisSize)),
                    msgs_s, rs.synced ? "" : "  (stale)");
      out += line;
    }

    // Redraw in place: move the cursor back up over the previous frame and
    // clear each line as it is rewritten.
    if (lines_drawn > 0) std::fprintf(stderr, "\x1b[%dA", lines_drawn);
    lines_drawn = 1 + n;
    std::string painted;
    std::size_t start = 0;
    while (start < out.size()) {
      std::size_t nl = out.find('\n', start);
      painted += "\x1b[2K";
      painted += out.substr(start, nl - start + 1);
      start = nl + 1;
    }
    std::fputs(painted.c_str(), stderr);
    std::fflush(stderr);
  }
};

int run_worker(const Options& opt) {
  if (!has_problem(opt.problem)) {
    std::fprintf(stderr, "error: unknown problem '%s'\n", opt.problem.c_str());
    return 2;
  }
  PolySystem sys = load_problem(opt.problem);

  SocketMachineConfig mc;
  mc.net.rank = opt.rank;
  mc.net.nprocs = opt.procs;
  mc.net.peers = make_endpoints(opt);
  mc.net.peer_timeout_ms = opt.peer_timeout_ms;
  if (opt.net_chaos != 0) {
    mc.net.chaos = ChaosConfig::net_intensity(opt.net_chaos, opt.chaos_seed);
  }

  Tracer tracer;
  MetricsRegistry metrics(opt.procs);
  TelemetryConfig tc;
  if (opt.telemetry_interval_ms > 0) {
    tc.interval_ms = static_cast<std::uint64_t>(opt.telemetry_interval_ms);
  }
  Telemetry tele(tc);
  CoeffOptions coeff = parse_coeff(opt.coeff);
  ParallelConfig cfg;
  cfg.gb.coeff = coeff;
  cfg.nprocs = opt.procs;
  cfg.seed = opt.seed;
  cfg.reserve_coordinator = opt.reserve;
  if (opt.batch) {
    cfg.wire.batch_invalidations = true;
    cfg.wire.batch_fetches = true;
  }
  if (!opt.trace_dir.empty()) {
    cfg.tracer = &tracer;
    cfg.metrics = &metrics;
  }
  bool telemetry_on = opt.watch || !opt.telemetry_out.empty();
  if (telemetry_on) cfg.telemetry = &tele;

  // Only rank 0 ever aggregates; the dashboard and the JSONL flight log hang
  // off its on_update hook. The hook runs under the aggregator lock, so it
  // reads the aggregator it is handed and never calls back into `tele`.
  WatchRenderer watch;
  std::FILE* flight_log = nullptr;
  if (opt.rank == 0 && telemetry_on) {
    if (!opt.telemetry_out.empty()) {
      flight_log = std::fopen(opt.telemetry_out.c_str(), "w");
      if (flight_log == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", opt.telemetry_out.c_str());
        return 2;
      }
    }
    tele.set_on_update([&](const TelemetryAggregator& agg) {
      if (flight_log != nullptr) {
        std::string line = agg.snapshot_json();
        line += '\n';
        std::fputs(line.c_str(), flight_log);
        std::fflush(flight_log);
      }
      if (opt.watch) watch.render(agg);
    });
  }

  // Arm the crash flight recorder alongside tracing: any rank that dies to a
  // fatal signal or a NetError leaves DIR/rankN.flight.json behind. Lazy arm:
  // the per-rank tracer/telemetry views only exist once the run starts.
  if (!opt.trace_dir.empty()) {
    FlightRecorder::instance().arm(
        opt.trace_dir + "/rank" + std::to_string(opt.rank) + ".flight.json", opt.rank, &tracer,
        telemetry_on ? &tele : nullptr);
  }

  SocketMachine machine(mc);
  ParallelResult res;
  try {
    res = groebner_parallel_socket(machine, sys, cfg);
  } catch (const NetError& e) {
    std::fprintf(stderr, "rank %d: transport failure: %s\n", opt.rank, e.what());
    std::string reason = "NetError: ";
    reason += e.what();
    FlightRecorder::instance().dump_now(reason.c_str());
    return 3;
  }
  FlightRecorder::instance().disarm();

  if (opt.rank == 0 && telemetry_on) {
    // Final state: one closing JSONL line, and step the dashboard off its
    // in-place redraw so the summary lines below start on a fresh row.
    if (flight_log != nullptr) {
      std::string line = tele.snapshot_json();
      line += '\n';
      std::fputs(line.c_str(), flight_log);
      std::fclose(flight_log);
    }
    if (opt.watch && watch.lines_drawn > 0) std::fputc('\n', stderr);
  }

  const TransportStats& net = machine.transport_stats();
  if (!opt.trace_dir.empty()) {
    // Per-rank wire counters ride along in the metrics snapshot.
    metrics.add("net.frames_sent", opt.rank, net.frames_sent);
    metrics.add("net.frames_received", opt.rank, net.frames_received);
    metrics.add("net.bytes_sent", opt.rank, net.bytes_sent);
    metrics.add("net.bytes_received", opt.rank, net.bytes_received);
    metrics.add("net.retransmits", opt.rank, net.retransmits);
    metrics.add("net.dup_frames_dropped", opt.rank, net.dup_frames_dropped);
    metrics.add("net.chaos_drops", opt.rank, net.chaos_drops);
    metrics.add("net.chaos_dups", opt.rank, net.chaos_dups);
    metrics.add("net.chaos_delays", opt.rank, net.chaos_delays);
    metrics.add("net.telemetry_sent", opt.rank, net.telemetry_sent);
    metrics.add("net.telemetry_received", opt.rank, net.telemetry_received);
    metrics.add("net.telemetry_lost", opt.rank, net.telemetry_lost);
    std::string prefix = opt.trace_dir + "/rank" + std::to_string(opt.rank);
    std::vector<std::uint8_t> bytes = tracer.data().encode();
    if (!write_file(prefix + ".gbdt", bytes.data(), bytes.size())) return 1;
    std::string json = metrics.snapshot().to_json();
    if (!write_file(prefix + ".metrics.json", json.data(), json.size())) return 1;
  }

  if (opt.rank != 0) return 0;

  std::printf("%s  P=%d  backend=socket  coeff=%s  seed=%llu  basis=%zu  makespan=%.3f ms\n",
              opt.problem.c_str(), opt.procs, opt.coeff.c_str(),
              static_cast<unsigned long long>(opt.seed), res.basis_ids.size(),
              static_cast<double>(res.machine.makespan) / 1e6);
  std::printf("messages=%llu  wire: frames=%llu retransmits=%llu dups_dropped=%llu "
              "chaos(drop/dup/delay)=%llu/%llu/%llu\n",
              static_cast<unsigned long long>(res.stats.messages_sent),
              static_cast<unsigned long long>(net.frames_sent),
              static_cast<unsigned long long>(net.retransmits),
              static_cast<unsigned long long>(net.dup_frames_dropped),
              static_cast<unsigned long long>(net.chaos_drops),
              static_cast<unsigned long long>(net.chaos_dups),
              static_cast<unsigned long long>(net.chaos_delays));
  if (telemetry_on) {
    const TelemetryAggregator& agg = tele.aggregator();
    std::printf("telemetry: frames=%llu lost=%llu stale+malformed=%llu progress=%.1f%%\n",
                static_cast<unsigned long long>(agg.frames_received()),
                static_cast<unsigned long long>(agg.dropped_frames()),
                static_cast<unsigned long long>(agg.malformed_frames()),
                agg.progress() * 100.0);
  }
  if (!res.violations.empty()) {
    for (const std::string& v : res.violations) {
      std::fprintf(stderr, "invariant violation: %s\n", v.c_str());
    }
    return 1;
  }
  if (opt.verify) {
    std::vector<Polynomial> inputs;
    for (const auto& p : sys.polys) {
      if (!p.is_zero()) inputs.push_back(p);
    }
    std::string why;
    if (!verify_groebner_result(sys.ctx, inputs, res.basis, &why, coeff)) {
      std::fprintf(stderr, "certificate FAILED: %s\n", why.c_str());
      return 1;
    }
    std::printf("certificate OK (%zu basis elements)\n", res.basis.size());
  }
  return 0;
}

int run_launcher(const Options& opt, char** argv) {
  if (!opt.hosts_file.empty()) {
    std::fprintf(stderr,
                 "error: with --hosts, start each rank yourself:\n"
                 "  %s --worker --rank R --hosts FILE ...\n",
                 argv[0]);
    return 2;
  }
  int base = base_port(opt);
  std::vector<pid_t> pids(static_cast<std::size_t>(opt.procs), -1);
  for (int r = 0; r < opt.procs; ++r) {
    pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      for (pid_t p : pids) {
        if (p > 0) ::kill(p, SIGKILL);
      }
      return 1;
    }
    if (pid == 0) {
      // Child: re-exec ourselves in worker mode with the same flags plus
      // identity. /proc/self/exe keeps this independent of argv[0] and cwd.
      std::vector<std::string> args;
      for (int i = 0; argv[i] != nullptr; ++i) args.push_back(argv[i]);
      args.push_back("--worker");
      args.push_back("--rank");
      args.push_back(std::to_string(r));
      args.push_back("--port");
      args.push_back(std::to_string(base));
      std::vector<char*> cargs;
      for (std::string& s : args) cargs.push_back(s.data());
      cargs.push_back(nullptr);
      ::execv("/proc/self/exe", cargs.data());
      std::perror("execv");
      ::_exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Failure drill: kill one rank mid-run, then expect the survivors to
  // detect it (peer EOF / heartbeat silence) and exit with a clean error.
  if (opt.kill_rank >= 0 && opt.kill_rank < opt.procs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.kill_after_ms));
    std::printf("launcher: killing rank %d (failure drill)\n", opt.kill_rank);
    ::kill(pids[static_cast<std::size_t>(opt.kill_rank)], SIGKILL);
  }

  // Watchdog: collect children, SIGKILL everyone at the deadline.
  std::vector<int> status(static_cast<std::size_t>(opt.procs), -1);
  int remaining = opt.procs;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(opt.timeout_s);
  bool timed_out = false;
  while (remaining > 0) {
    int st = 0;
    pid_t done = ::waitpid(-1, &st, WNOHANG);
    if (done > 0) {
      for (int r = 0; r < opt.procs; ++r) {
        if (pids[static_cast<std::size_t>(r)] == done) {
          status[static_cast<std::size_t>(r)] = st;
          remaining -= 1;
        }
      }
      continue;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      timed_out = true;
      std::fprintf(stderr, "launcher: timeout after %d s, killing all ranks\n", opt.timeout_s);
      for (pid_t p : pids) ::kill(p, SIGKILL);
      for (int r = 0; r < opt.procs; ++r) {
        if (status[static_cast<std::size_t>(r)] == -1) {
          ::waitpid(pids[static_cast<std::size_t>(r)], &st, 0);
          status[static_cast<std::size_t>(r)] = st;
          remaining -= 1;
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  bool all_ok = true;
  for (int r = 0; r < opt.procs; ++r) {
    int st = status[static_cast<std::size_t>(r)];
    if (WIFEXITED(st)) {
      int code = WEXITSTATUS(st);
      if (code != 0) {
        std::fprintf(stderr, "launcher: rank %d exited with code %d\n", r, code);
      }
      all_ok = all_ok && code == 0;
    } else if (WIFSIGNALED(st)) {
      std::fprintf(stderr, "launcher: rank %d killed by signal %d\n", r, WTERMSIG(st));
      all_ok = false;
    } else {
      all_ok = false;
    }
  }
  if (timed_out) return 124;

  if (opt.kill_rank >= 0) {
    // Drill verdict: the killed rank must be signaled, every survivor must
    // exit 3 (clean NetError) — no rank may hang (covered by the watchdog).
    bool drill_ok = WIFSIGNALED(status[static_cast<std::size_t>(opt.kill_rank)]);
    for (int r = 0; r < opt.procs; ++r) {
      if (r == opt.kill_rank) continue;
      int st = status[static_cast<std::size_t>(r)];
      drill_ok = drill_ok && WIFEXITED(st) && WEXITSTATUS(st) == 3;
    }
    std::printf("failure drill: %s\n", drill_ok ? "PASS (clean transport errors)" : "FAIL");
    return drill_ok ? 0 : 1;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);
  if (opt.worker) return run_worker(opt);
  return run_launcher(opt, argv);
}
