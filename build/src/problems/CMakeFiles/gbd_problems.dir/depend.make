# Empty dependencies file for gbd_problems.
# This may be replaced when dependencies are built.
