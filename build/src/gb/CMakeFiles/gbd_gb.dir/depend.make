# Empty dependencies file for gbd_gb.
# This may be replaced when dependencies are built.
