// Observability layer (PR 4): the per-processor event tracer, the unified
// metrics registry, and the breakdown analyzer.
//
//   · unit coverage of ProcTracer's ring/stack mechanics and the binary
//     trace codec;
//   · determinism: on the simulator the trace is a pure function of the
//     config — same problem, seed and chaos schedule give byte-identical
//     encodings;
//   · well-formedness: even under chaos (jitter/reorder/duplication) every
//     processor's span stream obeys the stack discipline check_well_formed
//     verifies;
//   · the analyzer's buckets partition [0, makespan] (rows sum to 100%);
//   · tracing must observe, not perturb: attaching a tracer leaves the
//     virtual makespan and the charged algebra work essentially unchanged;
//   · Perfetto export emits structurally sound trace_event JSON.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gb/parallel.hpp"
#include "machine/chaos.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

// --- ProcTracer mechanics ----------------------------------------------------

TEST(ProcTracerTest, SpansRecordInCompletionOrder) {
  ProcTracer t;
  t.begin(Ev::kTask, 10, 1, 2);
  t.begin(Ev::kReduce, 20);
  t.end(Ev::kReduce, 30, /*result=*/7);
  t.end(Ev::kTask, 50);
  ASSERT_EQ(t.open_spans(), 0u);
  std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 2u);
  // Child closes first, so it is recorded first.
  EXPECT_EQ(evs[0].kind, Ev::kReduce);
  EXPECT_EQ(evs[0].t0, 20u);
  EXPECT_EQ(evs[0].t1, 30u);
  EXPECT_EQ(evs[0].b, 7u);  // end() result overrides begin's b
  EXPECT_EQ(evs[1].kind, Ev::kTask);
  EXPECT_EQ(evs[1].t0, 10u);
  EXPECT_EQ(evs[1].t1, 50u);
  EXPECT_EQ(evs[1].a, 1u);
  EXPECT_EQ(evs[1].b, 2u);
}

TEST(ProcTracerTest, RingDropsOldestAndCountsDrops) {
  ProcTracer t(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) t.instant(Ev::kSteal, i, i);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving first: instants 6..9.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].a, 6 + i);
}

TEST(ProcTracerTest, AsyncAndInstantShapes) {
  ProcTracer t;
  t.async_begin(Ev::kHold, 5, /*id=*/42, /*b=*/9);
  t.instant(Ev::kStealGrant, 7, 3);
  t.async_end(Ev::kHold, 11, 42);
  std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].phase, Ph::kAsyncBegin);
  EXPECT_EQ(evs[1].phase, Ph::kInstant);
  EXPECT_EQ(evs[2].phase, Ph::kAsyncEnd);
  EXPECT_EQ(evs[2].a, 42u);
}

TEST(TraceDataTest, EncodeDecodeRoundTrip) {
  Tracer tracer;
  tracer.start_run(2, ClockDomain::kSteadyNs);
  tracer.at(0).begin(Ev::kTask, 1, 8, 9);
  tracer.at(0).end(Ev::kTask, 4);
  tracer.at(1).async_begin(Ev::kLockWait, 2, 1);
  tracer.at(1).async_end(Ev::kLockWait, 3, 1);
  tracer.finish_run(100);
  TraceData a = tracer.data();
  TraceData b = TraceData::decode(a.encode());
  EXPECT_EQ(b.domain, ClockDomain::kSteadyNs);
  EXPECT_EQ(b.makespan, 100u);
  ASSERT_EQ(b.procs.size(), 2u);
  ASSERT_EQ(b.procs[0].events.size(), 1u);
  ASSERT_EQ(b.procs[1].events.size(), 2u);
  EXPECT_EQ(b.procs[0].events[0].a, 8u);
  EXPECT_EQ(b.procs[0].events[0].b, 9u);
  EXPECT_EQ(b.procs[1].events[1].phase, Ph::kAsyncEnd);
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(ReportTest, FlagsUnclosedAndMalformedSpans) {
  Tracer tracer;
  tracer.start_run(1, ClockDomain::kVirtual);
  tracer.at(0).begin(Ev::kTask, 1);
  tracer.finish_run(10);  // span never closed
  EXPECT_NE(check_well_formed(tracer.data()), "");

  Tracer ok;
  ok.start_run(1, ClockDomain::kVirtual);
  ok.at(0).complete(Ev::kHandler, 2, 5, 1, 0);
  ok.finish_run(10);
  EXPECT_EQ(check_well_formed(ok.data()), "");
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsTest, RegistryZeroFillsAndAccumulates) {
  MetricsRegistry reg(4);
  reg.add("x.count", 2, 5);
  reg.add("x.count", 2, 3);
  reg.add("y.count", 0, 1);
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.nprocs, 4);
  const std::vector<std::uint64_t>* x = snap.find("x.count");
  ASSERT_NE(x, nullptr);
  ASSERT_EQ(x->size(), 4u);
  EXPECT_EQ((*x)[2], 8u);
  EXPECT_EQ((*x)[0], 0u);
  EXPECT_EQ(snap.total("x.count"), 8u);
  EXPECT_EQ(snap.total("missing"), 0u);
  EXPECT_EQ(snap.find("missing"), nullptr);
  std::string json = snap.to_json();
  EXPECT_NE(json.find("\"nprocs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"x.count\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":8"), std::string::npos);
}

// --- end-to-end on the simulator --------------------------------------------

ParallelConfig traced_config(int nprocs, Tracer* tracer, std::uint64_t chaos_seed) {
  ParallelConfig cfg;
  cfg.nprocs = nprocs;
  cfg.tracer = tracer;
  if (chaos_seed != 0) cfg.chaos = ChaosConfig::intensity(2, chaos_seed);
  return cfg;
}

TEST(ObsEndToEndTest, SimTraceIsDeterministic) {
  PolySystem sys = load_problem("katsura4");
  std::vector<std::uint8_t> first;
  for (int run = 0; run < 2; ++run) {
    Tracer tracer;
    ParallelResult res = groebner_parallel(sys, traced_config(4, &tracer, /*chaos=*/77));
    ASSERT_GT(res.basis.size(), 0u);
    std::vector<std::uint8_t> bytes = tracer.data().encode();
    if (run == 0) {
      first = std::move(bytes);
    } else {
      EXPECT_EQ(first, bytes) << "same config must give a byte-identical trace";
    }
  }
}

TEST(ObsEndToEndTest, TraceIsWellFormedUnderChaos) {
  PolySystem sys = load_problem("katsura4");
  for (std::uint64_t chaos_seed : {0ull, 13ull, 99ull}) {
    Tracer tracer;
    groebner_parallel(sys, traced_config(4, &tracer, chaos_seed));
    TraceData data = tracer.data();
    EXPECT_EQ(check_well_formed(data), "") << "chaos seed " << chaos_seed;
    std::uint64_t events = 0;
    for (const auto& p : data.procs) events += p.events.size();
    EXPECT_GT(events, 0u);
  }
}

TEST(ObsEndToEndTest, BreakdownPartitionsTheMakespan) {
  PolySystem sys = load_problem("katsura4");
  Tracer tracer;
  groebner_parallel(sys, traced_config(4, &tracer, /*chaos=*/0));
  BreakdownReport report = analyze_trace(tracer.data());
  ASSERT_EQ(report.procs.size(), 4u);
  ASSERT_GT(report.makespan, 0u);
  EXPECT_EQ(report.dropped_events, 0u);
  for (std::size_t p = 0; p < report.procs.size(); ++p) {
    const ProcBreakdown& b = report.procs[p];
    double sum = static_cast<double>(b.reduce + b.comm + b.other + b.hold + b.idle);
    double pct = 100.0 * sum / static_cast<double>(report.makespan);
    EXPECT_NEAR(pct, 100.0, 1.0) << "proc " << p;
  }
  EXPECT_GE(report.load_imbalance, 1.0);
  EXPECT_LE(report.critical_path, report.makespan);
}

TEST(ObsEndToEndTest, TracingDoesNotPerturbTheRun) {
  // The tracer observes: virtual makespan and the engine's charged work must
  // be unchanged by attaching it (the simulator is deterministic, so any
  // drift is instrumentation charging time it shouldn't).
  PolySystem sys = load_problem("katsura4");
  ParallelResult plain = groebner_parallel(sys, traced_config(4, nullptr, 0));
  Tracer tracer;
  ParallelResult traced = groebner_parallel(sys, traced_config(4, &tracer, 0));
  EXPECT_EQ(plain.machine.makespan, traced.machine.makespan);
  EXPECT_EQ(plain.stats.work_units, traced.stats.work_units);
  EXPECT_EQ(plain.stats.reduction_steps, traced.stats.reduction_steps);
}

TEST(ObsEndToEndTest, RingOverflowIsCountedNotFatal) {
  PolySystem sys = load_problem("katsura4");
  Tracer tracer(TracerConfig{/*ring_capacity=*/16});
  groebner_parallel(sys, traced_config(4, &tracer, 0));
  TraceData data = tracer.data();
  std::uint64_t dropped = 0;
  for (const auto& p : data.procs) {
    EXPECT_LE(p.events.size(), 16u);
    dropped += p.dropped;
  }
  EXPECT_GT(dropped, 0u);
  BreakdownReport report = analyze_trace(data);  // must not crash on a truncated trace
  EXPECT_EQ(report.dropped_events, dropped);
}

TEST(ObsEndToEndTest, MetricsCoverEveryLayer) {
  PolySystem sys = load_problem("katsura4");
  MetricsRegistry reg(4);
  ParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.metrics = &reg;
  groebner_parallel(sys, cfg);
  MetricsSnapshot snap = reg.snapshot();
  for (const char* name :
       {"comm.messages_sent", "comm.messages_received", "comm.idle_units", "mailbox.enqueues",
        "mailbox.drained_messages", "machine.makespan", "gb.pairs_created", "gb.spolys_computed",
        "gb.basis_added", "gb.reduction_steps", "gb.work_units", "basis.invalidations_sent",
        "basis.bodies_received", "taskq.enqueued", "taskq.dequeued",
        "kernel.find_reducer.calls", "kernel.find_reducer.probes"}) {
    EXPECT_GT(snap.total(name), 0u) << name;
  }
  // GL-P reduces one reduce_step at a time (the paper's minimum grain), so
  // geobucket counters are legitimately zero — but the series must exist:
  // every backend and engine reports the same shape.
  EXPECT_NE(snap.find("kernel.geobucket.axpys"), nullptr);
  // The accounting identity holds through the registry too.
  EXPECT_EQ(snap.total("gb.spolys_computed"),
            snap.total("gb.reductions_to_zero") + snap.total("gb.basis_added"));
  // Every series has one slot per processor.
  for (const auto& [name, vals] : snap.series) {
    EXPECT_EQ(vals.size(), 4u) << name;
  }
}

TEST(ObsEndToEndTest, PerfettoExportIsStructurallySound) {
  PolySystem sys = load_problem("katsura4");
  Tracer tracer;
  groebner_parallel(sys, traced_config(2, &tracer, 0));
  std::string json = trace_to_perfetto_json(tracer.data());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("\"reduce\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsEndToEndTest, ThreadBackendProducesAnalyzableTrace) {
  PolySystem sys = load_problem("katsura4");
  Tracer tracer;
  ParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.tracer = &tracer;
  groebner_parallel_threads(sys, cfg);
  TraceData data = tracer.data();
  EXPECT_EQ(data.domain, ClockDomain::kSteadyNs);
  EXPECT_EQ(check_well_formed(data), "");
  BreakdownReport report = analyze_trace(data);
  ASSERT_EQ(report.procs.size(), 4u);
  std::string table = render_breakdown(report);
  EXPECT_NE(table.find("proc"), std::string::npos);
  EXPECT_NE(table.find("reduce%"), std::string::npos);
}

}  // namespace
}  // namespace gbd
