// Larger-topology coverage: tree-routed fetches across a 16-processor ring
// (multi-hop forwarding paths), hybrid stores at machine sizes past the
// paper's partitions, and virtual-time properties of long chains.
#include <gtest/gtest.h>

#include "basis/replicated_basis.hpp"
#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "io/parse.hpp"
#include "machine/sim_machine.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

TEST(DeepTopologyTest, TreeFetchForwardsAcrossMultipleHops) {
  // P = 16, owner = 0: the fetch tree is four levels deep. A leaf-distance
  // processor's fetch must route up through intermediates, each of which
  // caches the body and can serve later requests.
  const int kP = 16;
  SimMachine m(kP);
  PolyContext ctx{{"x", "y"}, OrderKind::kGrLex};
  Polynomial g = parse_poly_or_die(ctx, "x^4 - y + 3");
  std::vector<std::uint64_t> fetches(kP, 0), serves(kP, 0);
  m.run([&](Proc& self) {
    ReplicatedBasis basis(self);
    if (self.id() == 0) {
      basis.begin_add(g);
      while (!basis.add_done()) {
        ASSERT_TRUE(self.wait());
      }
      while (self.wait()) {
      }
    } else {
      while (basis.shadow_size() == 0) {
        ASSERT_TRUE(self.wait());
      }
      while (!basis.valid()) {
        basis.begin_validate();
        ASSERT_TRUE(self.wait());
      }
      const Polynomial* p = basis.find(make_poly_id(0, 0));
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(p->equals(g));
      while (self.wait()) {
      }
    }
    fetches[static_cast<std::size_t>(self.id())] = basis.stats().fetches_sent;
    serves[static_cast<std::size_t>(self.id())] =
        basis.stats().bodies_served + basis.stats().bodies_forwarded;
  });
  // Load balancing: the owner must NOT have served all 15 bodies itself —
  // the tree spreads distribution across intermediate nodes.
  EXPECT_LT(serves[0], 15u);
  std::uint64_t intermediate_serves = 0;
  for (int p = 1; p < kP; ++p) intermediate_serves += serves[static_cast<std::size_t>(p)];
  EXPECT_GT(intermediate_serves, 0u);
}

TEST(DeepTopologyTest, EngineAt32Processors) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ParallelConfig cfg;
  cfg.nprocs = 32;
  ParallelResult res = groebner_parallel(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
}

TEST(DeepTopologyTest, HybridAt16WithTinyCache) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ParallelConfig cfg;
  cfg.nprocs = 16;
  cfg.basis_mode = BasisMode::kHybrid;
  cfg.hybrid_homes = 2;
  cfg.hybrid_cache_capacity = 4;
  ParallelResult res = groebner_parallel(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
  // The memory bound really bit: no processor held the whole basis.
  EXPECT_LT(res.stats.peak_resident_bodies, res.basis.size());
}

TEST(DeepTopologyTest, VirtualTimeMonotoneAlongMessageChains) {
  // now() observed in a chain of handlers must be nondecreasing along the
  // causal chain even when the chain zig-zags between processors.
  const int kP = 8;
  SimMachine m(kP);
  std::vector<std::uint64_t> stamps;
  m.run([&](Proc& self) {
    self.on(0, [&](Proc& p, int, Reader& r) {
      std::uint64_t hop = r.u64();
      stamps.push_back(p.now());
      if (hop < 20) {
        Writer w;
        w.u64(hop + 1);
        p.send(static_cast<int>((hop * 5 + 3) % kP), 0, w.take());
      }
    });
    if (self.id() == 0) {
      Writer w;
      w.u64(0);
      self.send(3, 0, w.take());
    }
    while (self.wait()) {
    }
  });
  ASSERT_EQ(stamps.size(), 21u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_GE(stamps[i], stamps[i - 1]) << "hop " << i;
  }
}

TEST(DeepTopologyTest, ReservedCoordinatorAtScale) {
  PolySystem sys = load_problem("arnborg4");
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ParallelConfig cfg;
  cfg.nprocs = 12;
  cfg.reserve_coordinator = true;
  cfg.taskq.termination = Termination::kTokenRing;
  ParallelResult res = groebner_parallel(sys, cfg);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, res.basis);
  ASSERT_EQ(red.size(), ref.size());
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << i;
  }
}

}  // namespace
}  // namespace gbd
