file(REMOVE_RECURSE
  "CMakeFiles/gbd_io.dir/parse.cpp.o"
  "CMakeFiles/gbd_io.dir/parse.cpp.o.d"
  "libgbd_io.a"
  "libgbd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
