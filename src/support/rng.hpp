// Deterministic pseudo-random number generation.
//
// Experiments in the paper report "best of 5 runs": on the CM-5 the variation
// came from timing races. Our simulator is deterministic, so run-to-run
// variation is reintroduced explicitly through a seed that perturbs
// tie-breaking and scheduling decisions. SplitMix64 is small, fast and has
// well-understood statistical quality; we do not need cryptographic strength.
#pragma once

#include <cstdint>

namespace gbd {

/// SplitMix64 generator. Copyable; a copy replays the same stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Derive an independent child stream (for per-processor RNGs).
  Rng split(std::uint64_t salt) {
    Rng child(state_ ^ (salt * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
    child.next();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace gbd
