file(REMOVE_RECURSE
  "CMakeFiles/gbd_support.dir/cost.cpp.o"
  "CMakeFiles/gbd_support.dir/cost.cpp.o.d"
  "CMakeFiles/gbd_support.dir/table.cpp.o"
  "CMakeFiles/gbd_support.dir/table.cpp.o.d"
  "libgbd_support.a"
  "libgbd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
