file(REMOVE_RECURSE
  "CMakeFiles/table2_added_zeroed.dir/table2_added_zeroed.cpp.o"
  "CMakeFiles/table2_added_zeroed.dir/table2_added_zeroed.cpp.o.d"
  "table2_added_zeroed"
  "table2_added_zeroed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_added_zeroed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
