// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary prints the rows of the paper exhibit it regenerates;
// this keeps the output format consistent across all of them.
#pragma once

#include <string>
#include <vector>

namespace gbd {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Render with a rule under the header, columns padded to widest cell.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant decimal places.
std::string fmt(double v, int prec = 2);

}  // namespace gbd
