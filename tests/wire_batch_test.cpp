// Differential tests for the PR-3 wire batching: the coalesced protocol
// (multi-id invalidation envelopes + multi-add lock rounds, batched
// validation fetch/body traffic) must compute exactly the same reduced
// Gröbner basis as the one-message-per-id oracle, stay deterministic on the
// simulator, actually put fewer envelopes on the wire, and survive chaos
// schedules that reorder and duplicate the batched messages themselves.
#include <gtest/gtest.h>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

std::vector<Polynomial> reduced_reference(const PolySystem& sys) {
  return reduce_basis(sys.ctx, groebner_sequential(sys).basis);
}

void expect_same_reduced(const PolySystem& sys, const std::vector<Polynomial>& basis,
                         const std::vector<Polynomial>& ref, const std::string& label) {
  std::vector<Polynomial> red = reduce_basis(sys.ctx, basis);
  ASSERT_EQ(red.size(), ref.size()) << label;
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << label << " element " << i;
  }
}

ParallelConfig batched_cfg(int nprocs, std::uint64_t seed = 1) {
  ParallelConfig cfg;
  cfg.nprocs = nprocs;
  cfg.seed = seed;
  cfg.wire.batch_invalidations = true;
  cfg.wire.batch_fetches = true;
  return cfg;
}

class WireBatchProblemTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WireBatchProblemTest, BatchedMatchesOracleAcrossProcessorCounts) {
  PolySystem sys = load_problem(GetParam());
  std::vector<Polynomial> ref = reduced_reference(sys);
  for (int nprocs : {2, 4, 7}) {
    ParallelResult res = groebner_parallel(sys, batched_cfg(nprocs));
    std::string why;
    EXPECT_TRUE(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) << why;
    expect_same_reduced(sys, res.basis, ref,
                        std::string(GetParam()) + " P=" + std::to_string(nprocs));
  }
}

INSTANTIATE_TEST_SUITE_P(Problems, WireBatchProblemTest,
                         ::testing::Values("katsura4", "trinks2", "arnborg4"));

TEST(WireBatchTest, EachKnobAloneMatchesOracle) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduced_reference(sys);
  ParallelConfig inv_only = batched_cfg(4);
  inv_only.wire.batch_fetches = false;
  expect_same_reduced(sys, groebner_parallel(sys, inv_only).basis, ref, "inv-only");
  ParallelConfig fetch_only = batched_cfg(4);
  fetch_only.wire.batch_invalidations = false;
  expect_same_reduced(sys, groebner_parallel(sys, fetch_only).basis, ref, "fetch-only");
}

TEST(WireBatchTest, DeterministicOnSimulator) {
  PolySystem sys = load_problem("trinks2");
  ParallelConfig cfg = batched_cfg(4, /*seed=*/9);
  ParallelResult a = groebner_parallel(sys, cfg);
  ParallelResult b = groebner_parallel(sys, cfg);
  EXPECT_EQ(a.machine.makespan, b.machine.makespan);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  ASSERT_EQ(a.basis_ids.size(), b.basis_ids.size());
  for (std::size_t i = 0; i < a.basis_ids.size(); ++i) {
    EXPECT_EQ(a.basis_ids[i].first, b.basis_ids[i].first);
    EXPECT_TRUE(a.basis_ids[i].second.equals(b.basis_ids[i].second));
  }
}

TEST(WireBatchTest, BatchingPutsFewerEnvelopesOnTheWire) {
  // The point of the exercise: same algebra, fewer messages. Batched adds
  // also save whole lock hand-offs, so on a problem big enough for lock
  // contention (trinks1) the total message count drops sharply (~40% at
  // P=4 when measured); small problems can go either way because batching
  // perturbs the schedule and may change the intermediate basis trajectory.
  PolySystem sys = load_problem("trinks1");
  ParallelConfig plain;
  plain.nprocs = 4;
  ParallelResult unbatched = groebner_parallel(sys, plain);
  ParallelResult batched = groebner_parallel(sys, batched_cfg(4));
  EXPECT_LT(batched.stats.messages_sent, unbatched.stats.messages_sent)
      << "batched=" << batched.stats.messages_sent
      << " unbatched=" << unbatched.stats.messages_sent;
  expect_same_reduced(sys, batched.basis, reduce_basis(sys.ctx, unbatched.basis),
                      "batched vs unbatched");
}

TEST(WireBatchTest, EnvelopeCountersShowCompression) {
  // Schedule-independent form of the claim: the same logical traffic
  // (per-destination invalidation announcements) travels in strictly fewer
  // envelopes, i.e. some lock round carried more than one add.
  PolySystem sys = load_problem("trinks1");
  ParallelResult res = groebner_parallel(sys, batched_cfg(4));
  ASSERT_GT(res.wire.invalidation_batches, 0u);
  EXPECT_LT(res.wire.invalidation_batches, res.wire.invalidations_sent);
  // Fetch batching: logical fetches >= envelopes, with at least one
  // multi-id envelope on a problem with real validation traffic.
  ASSERT_GT(res.wire.fetch_batches, 0u);
  EXPECT_LE(res.wire.fetch_batches, res.wire.fetches_sent);
  EXPECT_GT(res.wire.body_batches, 0u);
  // The oracle run keeps the batch counters at zero.
  ParallelConfig plain;
  plain.nprocs = 4;
  ParallelResult oracle = groebner_parallel(sys, plain);
  EXPECT_EQ(oracle.wire.invalidation_batches, 0u);
  EXPECT_EQ(oracle.wire.fetch_batches, 0u);
  EXPECT_EQ(oracle.wire.body_batches, 0u);
}

TEST(WireBatchTest, MaxBatchOneDegeneratesToOracleBehavior) {
  // With at most one add per lock round the batched path walks the same
  // protocol states as the oracle; the answer must be identical.
  PolySystem sys = load_problem("katsura4");
  std::vector<Polynomial> ref = reduced_reference(sys);
  ParallelConfig cfg = batched_cfg(4);
  cfg.max_batch_adds = 1;
  expect_same_reduced(sys, groebner_parallel(sys, cfg).basis, ref, "max_batch=1");
}

class WireBatchChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireBatchChaosTest, ChaoticSchedulesReorderAndDuplicateBatches) {
  // Batched envelopes declared dup-safe: chaos may duplicate a whole
  // multi-id invalidation round or a bulk body reply, and reorder them
  // against everything else. The protocol invariants (replica coherence,
  // task conservation, termination safety) must hold on every sweep and the
  // answer must still be the canonical reduced basis.
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduced_reference(sys);
  ParallelConfig cfg = batched_cfg(4, /*seed=*/GetParam());
  cfg.chaos.seed = GetParam();
  cfg.chaos.jitter = 40;
  cfg.chaos.reorder_permille = 250;
  cfg.chaos.reorder_window = 200;
  cfg.chaos.dup_permille = 250;  // dup_safe filled in by groebner_parallel
  cfg.check_invariants = true;
  cfg.invariant_period = 64;
  ParallelResult res = groebner_parallel(sys, cfg);
  EXPECT_TRUE(res.violations.empty()) << res.violations.front();
  EXPECT_GT(res.invariant_sweeps, 0u);
  expect_same_reduced(sys, res.basis, ref, "chaos seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireBatchChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace gbd
