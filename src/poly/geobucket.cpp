#include "poly/geobucket.hpp"

#include <utility>

#include "bigint/zp.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

// Once the pending multipliers exceed this many bits in total, materialize
// and divide by the content. Rare on the seed problems (reducer head
// coefficients stay small), but bounds worst-case coefficient blowup to a
// constant factor over the per-step-primitive naive path.
constexpr std::size_t kNormalizeBits = 512;

}  // namespace

GeobucketStats& geobucket_stats() {
  thread_local GeobucketStats stats;
  return stats;
}

void reset_geobucket_stats() { geobucket_stats() = GeobucketStats{}; }

Geobucket::Geobucket(const PolyContext& ctx, Polynomial p, const ZpField* zp)
    : ctx_(&ctx), zp_(zp) {
  if (p.is_zero()) return;
  std::vector<Term> terms(p.terms().begin(), p.terms().end());
  insert(std::move(terms), BigInt(1));
}

void Geobucket::settle_bucket(Bucket& b) const {
  if (b.scale.is_one()) return;
  if (zp_ != nullptr) {
    Zp s = zp_->from_residue(zp_residue_u64(b.scale));
    for (std::size_t i = b.start; i < b.terms.size(); ++i) {
      b.terms[i].coeff = BigInt(
          static_cast<std::int64_t>(zp_->mul_canonical(s, zp_residue_u64(b.terms[i].coeff))));
    }
    CostCounter::charge(b.terms.size() - b.start);
  } else {
    for (std::size_t i = b.start; i < b.terms.size(); ++i) {
      b.terms[i].coeff *= b.scale;
    }
  }
  b.scale = BigInt(1);
}

std::vector<Term> Geobucket::merge(std::vector<Term> a, std::size_t astart, std::vector<Term> b,
                                   std::size_t bstart) const {
  std::vector<Term> out;
  out.reserve((a.size() - astart) + (b.size() - bstart));
  std::size_t i = astart, j = bstart;
  while (i < a.size() && j < b.size()) {
    int c = ctx_->cmp(a[i].mono, b[j].mono);
    if (c > 0) {
      out.push_back(std::move(a[i++]));
    } else if (c < 0) {
      out.push_back(std::move(b[j++]));
    } else {
      if (zp_ != nullptr) {
        a[i].coeff = BigInt(static_cast<std::int64_t>(
            zp_->add_canonical(zp_residue_u64(a[i].coeff), zp_residue_u64(b[j].coeff))));
      } else {
        a[i].coeff += b[j].coeff;
      }
      if (!a[i].coeff.is_zero()) out.push_back(std::move(a[i]));
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(std::move(a[i]));
  for (; j < b.size(); ++j) out.push_back(std::move(b[j]));
  // Same term-movement charge as Polynomial::add for these lengths.
  CostCounter::charge((a.size() - astart) + (b.size() - bstart));
  return out;
}

void Geobucket::insert(std::vector<Term> terms, BigInt scale) {
  if (terms.empty()) return;
  std::size_t i = 0;
  while (cap(i) < terms.size()) ++i;
  if (buckets_.size() <= i) buckets_.resize(i + 1);
  std::size_t start = 0;
  for (;;) {
    if (buckets_.size() <= i) buckets_.resize(i + 1);
    Bucket& b = buckets_[i];
    if (!b.live()) {
      b.terms = std::move(terms);
      b.start = start;
      b.scale = std::move(scale);
      return;
    }
    // Occupied: materialize both pending scales and merge.
    settle_bucket(b);
    if (!scale.is_one()) {
      if (zp_ != nullptr) {
        Zp s = zp_->from_residue(zp_residue_u64(scale));
        for (std::size_t k = start; k < terms.size(); ++k) {
          terms[k].coeff = BigInt(
              static_cast<std::int64_t>(zp_->mul_canonical(s, zp_residue_u64(terms[k].coeff))));
        }
        CostCounter::charge(terms.size() - start);
      } else {
        for (std::size_t k = start; k < terms.size(); ++k) terms[k].coeff *= scale;
      }
      scale = BigInt(1);
    }
    terms = merge(std::move(b.terms), b.start, std::move(terms), start);
    start = 0;
    b.terms.clear();
    b.start = 0;
    b.scale = BigInt(1);
    if (terms.empty()) return;
    if (terms.size() <= cap(i)) {
      b.terms = std::move(terms);
      return;
    }
    ++i;  // cascade upward
  }
}

bool Geobucket::lead(Term* out) {
  if (lead_valid_) {
    *out = lead_;
    return true;
  }
  for (;;) {
    // Largest head monomial across the live buckets.
    const Monomial* maxm = nullptr;
    for (const Bucket& b : buckets_) {
      if (!b.live()) continue;
      const Monomial& hm = b.terms[b.start].mono;
      if (maxm == nullptr || ctx_->cmp(hm, *maxm) > 0) maxm = &hm;
    }
    if (maxm == nullptr) return false;
    Monomial mono = *maxm;
    // Exact coefficient: sum the contributing heads under their scales.
    BigInt coeff;
    lead_src_.clear();
    if (zp_ != nullptr) {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < buckets_.size(); ++i) {
        Bucket& b = buckets_[i];
        if (!b.live() || b.terms[b.start].mono != mono) continue;
        lead_src_.push_back(i);
        std::uint64_t c = zp_residue_u64(b.terms[b.start].coeff);
        if (!b.scale.is_one()) {
          c = zp_->mul_canonical(zp_->from_residue(zp_residue_u64(b.scale)), c);
        }
        acc = zp_->add_canonical(acc, c);
      }
      coeff = BigInt(static_cast<std::int64_t>(acc));
    } else {
      for (std::size_t i = 0; i < buckets_.size(); ++i) {
        Bucket& b = buckets_[i];
        if (!b.live() || b.terms[b.start].mono != mono) continue;
        lead_src_.push_back(i);
        if (b.scale.is_one()) {
          coeff += b.terms[b.start].coeff;
        } else {
          coeff += b.terms[b.start].coeff * b.scale;
        }
      }
    }
    if (coeff.is_zero()) {
      // Heads cancelled exactly (the designed outcome of a reduction step):
      // drop them and look again.
      for (std::size_t i : lead_src_) buckets_[i].start += 1;
      continue;
    }
    lead_.mono = std::move(mono);
    lead_.coeff = std::move(coeff);
    lead_valid_ = true;
    *out = lead_;
    return true;
  }
}

void Geobucket::retire_lead() {
  GBD_CHECK_MSG(lead_valid_, "retire_lead without a current lead");
  for (std::size_t i : lead_src_) buckets_[i].start += 1;
  done_.push_back(Retired{std::move(lead_), static_cast<std::uint32_t>(scale_log_.size())});
  lead_valid_ = false;
}

void Geobucket::axpy(const BigInt& scale, const BigInt& coeff, const Monomial& m,
                     const Polynomial& p) {
  GBD_DCHECK(!scale.is_zero() && !coeff.is_zero());
  // Zp mode has no deferred fraction-free multiplier: the step's scale is
  // always 1, so the scale log stays empty and normalize() never fires.
  GBD_DCHECK(zp_ == nullptr || scale.is_one());
  geobucket_stats().axpys += 1;
  lead_valid_ = false;
  if (!scale.is_one()) {
    for (Bucket& b : buckets_) {
      if (b.live()) b.scale *= scale;
    }
    scale_log_.push_back(scale);
    pending_bits_ += scale.bit_length();
  }
  std::vector<Term> add;
  add.reserve(p.nterms());
  for (const Term& t : p.terms()) {
    add.push_back(Term{t.coeff, t.mono * m});
  }
  insert(std::move(add), coeff);
  if (pending_bits_ > kNormalizeBits) normalize();
}

void Geobucket::axpy_expanded(const BigInt& scale, const BigInt& coeff,
                              const std::vector<Term>& expanded) {
  GBD_DCHECK(!scale.is_zero() && !coeff.is_zero());
  GBD_DCHECK(zp_ == nullptr || scale.is_one());
  geobucket_stats().axpys += 1;
  lead_valid_ = false;
  if (!scale.is_one()) {
    for (Bucket& b : buckets_) {
      if (b.live()) b.scale *= scale;
    }
    scale_log_.push_back(scale);
    pending_bits_ += scale.bit_length();
  }
  // The run is already m·p; only the coefficient copy remains per term.
  insert(expanded, coeff);
  if (pending_bits_ > kNormalizeBits) normalize();
}

void Geobucket::settle_done() {
  BigInt acc(1);
  std::size_t j = scale_log_.size();
  for (std::size_t i = done_.size(); i-- > 0;) {
    while (j > done_[i].epoch) acc *= scale_log_[--j];
    if (!acc.is_one()) done_[i].term.coeff *= acc;
    done_[i].epoch = 0;
  }
}

std::vector<Term> Geobucket::drain_buckets() {
  std::vector<Term> all;
  for (Bucket& b : buckets_) {
    if (!b.live()) {
      b.terms.clear();
      b.start = 0;
      b.scale = BigInt(1);
      continue;
    }
    settle_bucket(b);
    std::vector<Term> run = std::move(b.terms);
    std::size_t start = b.start;
    b.terms.clear();
    b.start = 0;
    b.scale = BigInt(1);
    all = all.empty() && start == 0 ? std::move(run) : merge(std::move(all), 0, std::move(run), start);
  }
  return all;
}

void Geobucket::normalize() {
  normalizations_ += 1;
  geobucket_stats().normalizations += 1;
  settle_done();
  std::vector<Term> rest = drain_buckets();
  std::size_t ndone = done_.size();
  std::vector<Term> all;
  all.reserve(ndone + rest.size());
  for (auto& d : done_) all.push_back(std::move(d.term));
  for (auto& t : rest) all.push_back(std::move(t));
  Polynomial p = Polynomial::from_sorted_terms(*ctx_, std::move(all));
  p.make_primitive();
  // Split back: retired terms are strictly larger than every bucketed term,
  // and rescaling never changes the support, so the boundary is positional.
  std::vector<Term> terms(p.terms().begin(), p.terms().end());
  for (std::size_t i = 0; i < ndone; ++i) {
    done_[i].term = std::move(terms[i]);
    done_[i].epoch = 0;
  }
  scale_log_.clear();
  pending_bits_ = 0;
  std::vector<Term> tail(std::make_move_iterator(terms.begin() + static_cast<std::ptrdiff_t>(ndone)),
                         std::make_move_iterator(terms.end()));
  insert(std::move(tail), BigInt(1));
}

Polynomial Geobucket::extract() {
  geobucket_stats().extracts += 1;
  lead_valid_ = false;
  settle_done();
  std::vector<Term> rest = drain_buckets();
  std::vector<Term> all;
  all.reserve(done_.size() + rest.size());
  for (auto& d : done_) all.push_back(std::move(d.term));
  for (auto& t : rest) all.push_back(std::move(t));
  done_.clear();
  scale_log_.clear();
  pending_bits_ = 0;
  Polynomial p = Polynomial::from_sorted_terms(*ctx_, std::move(all));
  if (zp_ != nullptr) {
    p.make_monic(*zp_);
  } else {
    p.make_primitive();
  }
  return p;
}

}  // namespace gbd
