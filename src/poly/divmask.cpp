#include "poly/divmask.hpp"

namespace gbd {

DivMaskRuler::DivMaskRuler(std::size_t nvars) : bits_(nvars, 0), offset_(nvars, 0) {
  if (nvars == 0) return;
  std::size_t covered = nvars < 64 ? nvars : 64;  // variables past 64 get no bits
  std::size_t base = 64 / covered;
  std::size_t spare = 64 % covered;
  std::size_t at = 0;
  for (std::size_t v = 0; v < covered; ++v) {
    std::size_t w = base + (v < spare ? 1 : 0);
    bits_[v] = static_cast<std::uint8_t>(w);
    offset_[v] = static_cast<std::uint8_t>(at);
    at += w;
  }
}

std::uint64_t DivMaskRuler::mask(const Monomial& m) const {
  std::uint64_t out = 0;
  for (std::size_t v = 0; v < bits_.size(); ++v) {
    std::uint32_t b = bits_[v];
    if (b == 0) continue;
    std::uint32_t e = m.exp(v);
    std::uint32_t ones = e < b ? e : b;
    // `ones` low ones of this variable's field: thresholds 1..ones are met.
    out |= ((std::uint64_t{1} << ones) - 1) << offset_[v];
  }
  return out;
}

namespace {
thread_local FindReducerStats g_find_stats;
}  // namespace

FindReducerStats& find_reducer_stats() { return g_find_stats; }
void reset_find_reducer_stats() { g_find_stats = FindReducerStats{}; }

}  // namespace gbd
