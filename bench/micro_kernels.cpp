// Google-benchmark microbenchmarks of the substrate kernels, in real
// nanoseconds: the building blocks whose abstract-unit charges drive the
// virtual clock (Table 1's "Max Single Reduction Step" column measured on
// this host's silicon instead of the CM-5's 33 MHz Sparc).
#include <benchmark/benchmark.h>

#include "support/check.hpp"

#include "bigint/bigint.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

BigInt random_bigint(Rng& rng, std::size_t digits) {
  std::string s;
  s.push_back(static_cast<char>('1' + rng.below(9)));
  for (std::size_t i = 1; i < digits; ++i) {
    s.push_back(static_cast<char>('0' + rng.below(10)));
  }
  return BigInt::from_string(s);
}

void BM_BigIntMul(benchmark::State& state) {
  Rng rng(42);
  std::size_t digits = static_cast<std::size_t>(state.range(0));
  BigInt a = random_bigint(rng, digits);
  BigInt b = random_bigint(rng, digits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(9)->Arg(50)->Arg(400)->Arg(2000);

void BM_BigIntGcd(benchmark::State& state) {
  Rng rng(43);
  std::size_t digits = static_cast<std::size_t>(state.range(0));
  BigInt a = random_bigint(rng, digits);
  BigInt b = random_bigint(rng, digits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntGcd)->Arg(9)->Arg(50)->Arg(200);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(44);
  BigInt a = random_bigint(rng, 400);
  BigInt b = random_bigint(rng, 150);
  for (auto _ : state) {
    BigInt q, r;
    BigInt::divmod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod);

void BM_MonomialOps(benchmark::State& state) {
  Monomial a({3, 0, 2, 1, 0, 4});
  Monomial b({1, 2, 2, 0, 1, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Monomial::lcm(a, b));
    benchmark::DoNotOptimize(a.divides(b));
    benchmark::DoNotOptimize(mono_cmp(OrderKind::kGrLex, a, b));
  }
}
BENCHMARK(BM_MonomialOps);

void BM_PolyAdd(benchmark::State& state) {
  Rng rng(45);
  PolySystem sys = random_system(rng, 4, 2, 6, 30, 1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.polys[0].add(sys.ctx, sys.polys[1]));
  }
}
BENCHMARK(BM_PolyAdd);

void BM_ReduceStep(benchmark::State& state) {
  // A single reduction step on trinks1-sized operands: the minimum grain of
  // the replicated design (§4.1.1).
  PolySystem sys = load_problem("trinks1");
  Polynomial p = sys.polys[2].mul(sys.ctx, sys.polys[4]);
  const Polynomial& r = sys.polys[2];
  GBD_CHECK(r.hmono().divides(p.hmono()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_step(sys.ctx, p, r));
  }
}
BENCHMARK(BM_ReduceStep);

void BM_Spoly(benchmark::State& state) {
  PolySystem sys = load_problem("katsura4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(spoly(sys.ctx, sys.polys[1], sys.polys[2]));
  }
}
BENCHMARK(BM_Spoly);

void BM_FullReduction(benchmark::State& state) {
  // A whole REDUCE(h, G): hundreds of steps; compare with BM_ReduceStep for
  // the two-orders-of-magnitude grain gap Table 1 shows.
  PolySystem sys = load_problem("trinks2");
  Polynomial h = spoly(sys.ctx, sys.polys[0], sys.polys[2]);
  VectorReducerSet set(&sys.polys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_full(sys.ctx, h, set));
  }
}
BENCHMARK(BM_FullReduction);

void BM_ParseTrinks(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(load_problem("trinks1"));
  }
}
BENCHMARK(BM_ParseTrinks);

}  // namespace
}  // namespace gbd

BENCHMARK_MAIN();
