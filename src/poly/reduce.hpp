// Polynomial reduction (normal forms) — the computational core of
// Buchberger's algorithm and the place the paper reports nearly all time
// being spent.
//
// A single step cancels one term of p against a basis polynomial r whose head
// monomial divides it, using the fraction-free formulation
//     p' = a·p − b·(m·r),  a = hc(r)/g, b = c/g, g = gcd(c, hc(r)),
// where c is the cancelled coefficient and m the monomial quotient. Over the
// rationals this is REDUCE of §2 up to a nonzero scalar, which is irrelevant
// to Gröbner structure and avoids rational arithmetic in the inner loop.
//
// Reducers are supplied through the ReducerSet interface: the sequential
// engine backs it with a plain vector, the distributed engine with the local
// replica of the replicated basis (the paper's ForAll iterator — the replica
// "might be incomplete", and that is safe; see DESIGN.md §6).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "poly/coeff.hpp"
#include "poly/divmask.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// Source of candidate reducers for a monomial.
class ReducerSet {
 public:
  virtual ~ReducerSet() = default;

  /// Some basis element whose head monomial divides m, or nullptr if m is
  /// irreducible against this set. *out_id (if non-null) receives a stable
  /// identifier of the reducer for per-reducer accounting.
  virtual const Polynomial* find_reducer(const Monomial& m, std::uint64_t* out_id) const = 0;

  // Optional change-tracking interface, used by SymbolicMemo (symbolic.hpp)
  // to reuse reducer resolutions across batches. A set that grows append-only
  // reports a monotone version; find_reducer's answer for m can only change
  // between two versions if an element whose head divides m was appended in
  // between (existing elements never change, and a newcomer only displaces
  // the previous winner if it is itself applicable). Sets that cannot
  // guarantee this stay kUnversioned and the memo is bypassed.

  static constexpr std::uint64_t kUnversioned = ~std::uint64_t{0};
  /// Monotone version, or kUnversioned when change tracking is unsupported.
  virtual std::uint64_t version() const { return kUnversioned; }
  /// True if an element whose head divides m was added after `stamp`.
  /// Conservative default: always true (forces re-resolution).
  virtual bool head_added_since(const Monomial& m, std::uint64_t stamp) const {
    (void)m;
    (void)stamp;
    return true;
  }
  /// The element behind an id previously reported by find_reducer, or
  /// nullptr when ids cannot be resolved back.
  virtual const Polynomial* by_id(std::uint64_t id) const {
    (void)id;
    return nullptr;
  }
};

/// Strict preference between two applicable reducers: smaller head
/// coefficient first (the fraction-free step multiplies the reduct through
/// by hc(r)/g, so large head coefficients compound), then fewer terms.
/// Deterministic ties are broken by the caller (oldest wins).
bool reducer_preferred(const Polynomial& a, const Polynomial& b);

/// ReducerSet over a vector of polynomials; reducer id is the vector index.
/// Among applicable reducers the reducer_preferred one wins (deterministic).
///
/// Maintains a divmask signature per element (see divmask.hpp) so the scan
/// dismisses most non-divisors with one AND/compare. The cache extends itself
/// lazily as the backing vector grows; the contract is that the vector is
/// APPEND-ONLY while this set is alive (elements are never modified or
/// removed in place) — exactly how every engine uses its basis vector.
class VectorReducerSet final : public ReducerSet {
 public:
  VectorReducerSet() = default;
  explicit VectorReducerSet(const std::vector<Polynomial>* polys) : polys_(polys) {}

  const Polynomial* find_reducer(const Monomial& m, std::uint64_t* out_id) const override;

  /// Version = backing-vector size: append-only growth makes it monotone.
  std::uint64_t version() const override {
    return polys_ == nullptr ? 0 : polys_->size();
  }
  bool head_added_since(const Monomial& m, std::uint64_t stamp) const override;
  const Polynomial* by_id(std::uint64_t id) const override {
    if (polys_ == nullptr || id >= polys_->size()) return nullptr;
    return &(*polys_)[static_cast<std::size_t>(id)];
  }

 private:
  const std::vector<Polynomial>* polys_ = nullptr;
  // Lazily extended per-element head masks (mutable: a pure cache).
  mutable DivMaskRuler ruler_;
  mutable std::vector<std::uint64_t> masks_;
};

/// Per-step notification, used by Table 1's per-reducer time accounting and
/// by the trace recorder of Fig. 8(b).
class ReduceObserver {
 public:
  virtual ~ReduceObserver() = default;
  virtual void on_step(std::uint64_t reducer_id, std::uint64_t cost_units) = 0;
};

struct ReduceOptions {
  /// Also reduce non-head terms (strong normal form). Head-only reduction is
  /// what NORMAL/REDUCE of the paper require; tail reduction is used when
  /// producing the canonical reduced basis and as an ablation.
  bool tail_reduce = false;
  /// Accumulate through a geobucket (O(n log n) term movement) instead of
  /// rebuilding the flat term vector every step. Produces bit-identical
  /// normal forms and step counts (see geobucket.hpp); the naive path is kept
  /// for one release as the differential-test oracle and escape hatch.
  bool use_geobuckets = true;
  /// Safety valve for property tests; reduction of a polynomial by a finite
  /// set always terminates, so hitting this aborts.
  std::uint64_t max_steps = std::numeric_limits<std::uint64_t>::max();
  /// Coefficient ring (poly/coeff.hpp). kExact is the historical
  /// fraction-free integer path, bit-identical to before the seam existed.
  /// kZp cancels with field inverses instead: p' = p − c·hc(r)^{-1}·(m·r)
  /// mod prime, normal forms are monic, and reducer coefficients must
  /// already be canonical residues (engine bases over Zp always are).
  CoeffOptions coeff;
};

struct ReduceOutcome {
  Polynomial poly;          ///< canonical normal form (head-normal if !tail_reduce)
  std::uint64_t steps = 0;  ///< number of single reduction steps performed
};

/// One head-cancelling step of p by r. Requires r.hmono() | p.hmono().
Polynomial reduce_step(const PolyContext& ctx, const Polynomial& p, const Polynomial& r);

/// The Zp analogue: p − hc(p)·hc(r)^{-1}·(m·r) over Z/pZ. Both operands'
/// coefficients must be canonical residues. Requires r.hmono() | p.hmono().
Polynomial reduce_step_mod(const PolyContext& ctx, const Polynomial& p, const Polynomial& r,
                           const ZpField& field);

/// Full reduction of p by `set` (the paper's REDUCE(h, G)). Returns a
/// primitive normal form; zero iff p reduces to zero.
ReduceOutcome reduce_full(const PolyContext& ctx, Polynomial p, const ReducerSet& set,
                          const ReduceOptions& opts = {}, ReduceObserver* obs = nullptr);

/// True iff no element of `set` can reduce p's head (the paper's NORMAL(p,S)).
/// The zero polynomial is normal with respect to any set.
bool is_normal(const Polynomial& p, const ReducerSet& set);

/// Canonical *reduced* Gröbner basis: minimize (drop elements whose head is
/// divisible by another's), tail-reduce every element against the rest, make
/// primitive, and sort by ascending head monomial. Two engines computing a
/// Gröbner basis of the same ideal agree exactly on this form — the
/// cross-engine oracle used throughout the tests.
///
/// REQUIRES the input to be a Gröbner basis: the minimization step drops any
/// element whose head another element's head divides, which only preserves
/// the ideal when reduction is confluent. For arbitrary generating sets use
/// interreduce().
std::vector<Polynomial> reduce_basis(const PolyContext& ctx, std::vector<Polynomial> basis,
                                     const CoeffOptions& coeff = {});

/// Ideal-preserving interreduction of an arbitrary generating set: each
/// element is fully (head+tail) reduced against the others until nothing
/// changes; elements reducing to zero are dropped. Safe on any input — every
/// step subtracts multiples of other generators — and terminates because
/// each replacement strictly shrinks its element in the monomial order.
std::vector<Polynomial> interreduce(const PolyContext& ctx, std::vector<Polynomial> gens,
                                    const CoeffOptions& coeff = {});

}  // namespace gbd
