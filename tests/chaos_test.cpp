// Tests for chaos mode on the simulated machine: the ChaosConfig replay
// string, deterministic seeded jitter/reordering/duplication/starvation at
// the SimMachine level, and the InvariantMonitor bookkeeping.
#include "machine/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "machine/invariants.hpp"
#include "machine/sim_machine.hpp"

namespace gbd {
namespace {

enum Handlers : HandlerId { kData = 0, kOther = 1 };

TEST(ChaosConfigTest, DefaultIsDisabled) {
  ChaosConfig c;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(c.schedule_chaos());
  EXPECT_EQ(c.starve_scale(0), 1u);
}

TEST(ChaosConfigTest, EncodeDecodeRoundTrip) {
  for (int level = 0; level <= 3; ++level) {
    ChaosConfig c = ChaosConfig::intensity(level, 0xDEADBEEFu + static_cast<std::uint64_t>(level));
    c.dup_safe = {kData, kOther};
    ChaosConfig back = ChaosConfig::decode(c.encode());
    EXPECT_EQ(c, back) << "level " << level << " string " << c.encode();
  }
}

TEST(ChaosConfigTest, EncodeOmitsDefaults) {
  ChaosConfig c;
  c.seed = 7;
  std::string s = c.encode();
  EXPECT_EQ(s, "chaos:v1;seed=7");
  EXPECT_EQ(ChaosConfig::decode(s), c);
}

TEST(ChaosConfigTest, IntensityZeroIsOff) {
  ChaosConfig c = ChaosConfig::intensity(0, 99);
  EXPECT_FALSE(c.enabled());
  EXPECT_EQ(c.seed, 99u);
}

TEST(ChaosConfigTest, StarveScaleIsSeedDeterministic) {
  ChaosConfig c = ChaosConfig::intensity(3, 42);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(c.starve_scale(p), ChaosConfig::intensity(3, 42).starve_scale(p));
  }
  // Intensity 3 starves a third of processors: over many ids both outcomes
  // must occur.
  bool starved = false, spared = false;
  for (int p = 0; p < 64; ++p) {
    (c.starve_scale(p) > 1 ? starved : spared) = true;
  }
  EXPECT_TRUE(starved);
  EXPECT_TRUE(spared);
}

// ---------------------------------------------------------------------------
// SimMachine under chaos.

/// Proc 0 sends `n` numbered messages to proc 1; returns the values in the
/// order proc 1 observed them.
std::vector<std::uint64_t> run_stream(const ChaosConfig& chaos, int n,
                                      SimStats* stats_out = nullptr) {
  SimMachine m(2, CostModel{}, chaos);
  std::vector<std::uint64_t> seen;
  SimStats stats = m.run_sim([&](Proc& self) {
    self.on(kData, [&](Proc&, int, Reader& r) { seen.push_back(r.u64()); });
    self.on(kOther, [&](Proc&, int, Reader& r) { seen.push_back(1000 + r.u64()); });
    if (self.id() == 0) {
      for (int i = 0; i < n; ++i) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(i));
        self.send(1, kData, w.take());
      }
    } else {
      while (self.wait()) {
      }
    }
  });
  if (stats_out != nullptr) *stats_out = stats;
  return seen;
}

TEST(SimChaosTest, NoChaosDeliversInOrder) {
  std::vector<std::uint64_t> seen = run_stream(ChaosConfig{}, 16);
  ASSERT_EQ(seen.size(), 16u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(SimChaosTest, ReorderingPermutesButPreservesDelivery) {
  ChaosConfig chaos;
  chaos.seed = 3;
  chaos.reorder_permille = 1000;
  chaos.reorder_window = 5000;
  std::vector<std::uint64_t> seen = run_stream(chaos, 32);
  ASSERT_EQ(seen.size(), 32u);
  // Exactly-once delivery: the stream is a permutation of 0..31 ...
  std::vector<std::uint64_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint64_t> expect(32);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(sorted, expect);
  // ... and at full reorder probability it is actually permuted.
  EXPECT_FALSE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(SimChaosTest, JitterDelaysButNeverDrops) {
  ChaosConfig chaos;
  chaos.seed = 11;
  chaos.jitter = 5000;
  SimStats plain_stats, chaos_stats;
  std::vector<std::uint64_t> plain = run_stream(ChaosConfig{}, 8, &plain_stats);
  std::vector<std::uint64_t> jittered = run_stream(chaos, 8, &chaos_stats);
  EXPECT_EQ(plain.size(), jittered.size());
  // Jitter only ever adds wire time, so the receiver finishes no earlier.
  EXPECT_GE(chaos_stats.makespan, plain_stats.makespan);
  EXPECT_GT(chaos_stats.makespan, plain_stats.makespan);  // 8 draws, jitter 5000: some hit
}

TEST(SimChaosTest, DeterministicUnderChaos) {
  ChaosConfig chaos = ChaosConfig::intensity(3, 1234);
  chaos.dup_safe = {kData};
  SimStats s1, s2;
  std::vector<std::uint64_t> a = run_stream(chaos, 24, &s1);
  std::vector<std::uint64_t> b = run_stream(chaos, 24, &s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1.makespan, s2.makespan);
  EXPECT_EQ(s1.duplicated_messages, s2.duplicated_messages);
}

TEST(SimChaosTest, DuplicationRespectsSafeList) {
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.dup_permille = 1000;  // duplicate everything eligible
  chaos.dup_safe = {kData};
  SimMachine m(2, CostModel{}, chaos);
  int data = 0, other = 0;
  SimStats stats = m.run_sim([&](Proc& self) {
    self.on(kData, [&](Proc&, int, Reader&) { ++data; });
    self.on(kOther, [&](Proc&, int, Reader&) { ++other; });
    if (self.id() == 0) {
      for (int i = 0; i < 6; ++i) self.send(1, kData, {});
      for (int i = 0; i < 6; ++i) self.send(1, kOther, {});
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(data, 12);   // every safe message delivered twice
  EXPECT_EQ(other, 6);   // unsafe handler never duplicated
  EXPECT_EQ(stats.duplicated_messages, 6u);
}

TEST(SimChaosTest, EmptySafeListMeansNoDuplication) {
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.dup_permille = 1000;
  SimStats stats;
  std::vector<std::uint64_t> seen = run_stream(chaos, 10, &stats);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(stats.duplicated_messages, 0u);
}

TEST(SimChaosTest, StarvationStretchesVirtualClock) {
  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.starve_permille = 1000;  // starve everyone
  chaos.starve_factor = 4;
  SimMachine m(2, CostModel::free(), chaos);
  SimStats stats = m.run_sim([&](Proc& self) { self.charge(100); });
  // Every work unit on a starved processor costs starve_factor virtual units.
  EXPECT_EQ(stats.makespan, 400u);
  EXPECT_EQ(stats.proc_clocks[0], 400u);
  EXPECT_EQ(stats.proc_clocks[1], 400u);
}

// ---------------------------------------------------------------------------
// InvariantMonitor.

TEST(InvariantMonitorTest, CleanChecksStayOk) {
  InvariantMonitor mon(1);
  mon.add_check("always-ok", [] { return std::string(); });
  for (int i = 0; i < 5; ++i) mon.maybe_check();
  mon.run_all("quiescence");
  EXPECT_TRUE(mon.ok());
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_EQ(mon.sweeps_run(), 6u);
}

TEST(InvariantMonitorTest, PeriodGatesSweeps) {
  InvariantMonitor mon(4);
  int runs = 0;
  mon.add_check("count", [&] {
    ++runs;
    return std::string();
  });
  for (int i = 0; i < 8; ++i) mon.maybe_check();
  EXPECT_EQ(runs, 2);  // calls 4 and 8
  EXPECT_EQ(mon.sweeps_run(), 2u);
}

TEST(InvariantMonitorTest, ViolationsCollapseByName) {
  InvariantMonitor mon(1);
  mon.add_check("broken", [] { return std::string("first failure detail"); });
  for (int i = 0; i < 3; ++i) mon.maybe_check();
  EXPECT_FALSE(mon.ok());
  std::vector<std::string> v = mon.violations();
  ASSERT_EQ(v.size(), 1u);  // three failures, one line
  EXPECT_NE(v[0].find("broken"), std::string::npos);
  EXPECT_NE(v[0].find("first failure detail"), std::string::npos);
  EXPECT_NE(v[0].find("3"), std::string::npos) << v[0];
}

TEST(InvariantMonitorTest, NoteRecordsHookViolations) {
  InvariantMonitor mon;
  mon.note("hook-invariant", "task 7 executed twice");
  EXPECT_FALSE(mon.ok());
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_NE(mon.violations()[0].find("task 7"), std::string::npos);
}

TEST(InvariantMonitorTest, SimMachineRunsRegisteredChecks) {
  ChaosConfig chaos;  // chaos not required for monitoring
  SimMachine m(2, CostModel{}, chaos);
  InvariantMonitor mon(1);
  int observed = 0;
  mon.add_check("observer", [&] {
    ++observed;
    return std::string();
  });
  m.set_monitor(&mon);
  m.run_sim([&](Proc& self) {
    self.on(kData, [](Proc&, int, Reader&) {});
    if (self.id() == 0) {
      for (int i = 0; i < 4; ++i) self.send(1, kData, {});
    } else {
      while (self.wait()) {
      }
    }
  });
  // Four deliveries plus the final quiescence sweep.
  EXPECT_GE(observed, 5);
  EXPECT_TRUE(mon.ok());
}

}  // namespace
}  // namespace gbd
