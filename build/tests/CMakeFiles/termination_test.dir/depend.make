# Empty dependencies file for termination_test.
# This may be replaced when dependencies are built.
