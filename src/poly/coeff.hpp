// The coefficient seam: one selector chooses which ring the reduction
// kernels compute over.
//
// Every engine historically worked over Q via primitive-integer associates
// (polynomial.hpp). CoeffOptions generalizes that seam: kExact keeps the
// fraction-free integer path bit-for-bit unchanged (it remains the oracle),
// kZp runs the same kernels over a machine-word prime field (bigint/zp.hpp).
//
// Canonical forms per ring:
//   kExact — primitive integer associate, positive head coefficient;
//   kZp    — every coefficient a canonical residue in [0, p) stored as an
//            inline small BigInt, head coefficient 1 (monic).
// Both are "the same polynomial up to a unit", so Gröbner structure is
// untouched; what changes is that Zp coefficients never grow.
//
// Contract for the Zp kernels (zp_combine, Geobucket in Zp mode,
// reduce_step_mod): operand coefficients must already be canonical residues.
// Entry points that accept arbitrary integer polynomials (reduce_full,
// reduce_basis, spoly, the engines) canonicalize via poly_mod/coeff_normalize
// first; debug builds check the contract on every residue read.
#pragma once

#include <cstdint>
#include <string>

#include "bigint/zp.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

enum class CoeffField : std::uint8_t {
  kExact,  ///< primitive-integer associates over Q (the historical path)
  kZp,     ///< machine-word prime field Z/pZ (Montgomery, bigint/zp.hpp)
};

struct CoeffOptions {
  CoeffField field = CoeffField::kExact;
  /// The modulus when field == kZp; must satisfy ZpField's constraints.
  std::uint64_t prime = 0;

  bool is_zp() const { return field == CoeffField::kZp; }

  static CoeffOptions exact() { return {}; }
  static CoeffOptions zp(std::uint64_t prime) { return {CoeffField::kZp, prime}; }

  /// "exact" or "zp:<prime>" (diagnostics, bench labels).
  std::string to_string() const;

  bool operator==(const CoeffOptions&) const = default;
};

/// Image of an arbitrary integer polynomial in Z/pZ: every coefficient
/// replaced by its canonical residue, vanishing terms dropped. NOT made
/// monic — compose with make_monic for the canonical Zp form.
Polynomial poly_mod(const PolyContext& ctx, const Polynomial& p, const ZpField& field);

/// Canonicalize in place for the selected ring: kExact → make_primitive;
/// kZp → residues in [0, p) with monic head. The zero polynomial is fixed.
void coeff_normalize(const PolyContext& ctx, Polynomial* p, const CoeffOptions& coeff);

/// a·(ma·pa) + b·(mb·pb) over Z/pZ, merged in one pass. a and b are
/// canonical residues (a nonzero; b may be zero only if pb is zero);
/// pa/pb coefficients must be canonical residues. This is the single
/// combination primitive behind the Zp s-polynomial and the naive Zp
/// reduction step.
Polynomial zp_combine(const PolyContext& ctx, const ZpField& field, std::uint64_t a,
                      const Monomial& ma, const Polynomial& pa, std::uint64_t b,
                      const Monomial& mb, const Polynomial& pb);

}  // namespace gbd
