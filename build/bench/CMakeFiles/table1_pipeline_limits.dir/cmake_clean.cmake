file(REMOVE_RECURSE
  "CMakeFiles/table1_pipeline_limits.dir/table1_pipeline_limits.cpp.o"
  "CMakeFiles/table1_pipeline_limits.dir/table1_pipeline_limits.cpp.o.d"
  "table1_pipeline_limits"
  "table1_pipeline_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pipeline_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
