#include "serve/wire.hpp"

namespace gbd {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kRequeued: return "requeued";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timed-out";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  switch (s) {
    case JobState::kQueued:
    case JobState::kRunning:
    case JobState::kRequeued:
      return false;
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
    case JobState::kTimedOut:
    case JobState::kRejected:
      return true;
  }
  return true;
}

const char* serve_backend_name(ServeBackend b) {
  switch (b) {
    case ServeBackend::kSequential: return "sequential";
    case ServeBackend::kSim: return "sim";
    case ServeBackend::kThread: return "thread";
  }
  return "?";
}

bool SafeReader::need(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t SafeReader::u8() {
  if (!need(1)) return 0;
  return buf_[pos_++];
}

std::uint32_t SafeReader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t SafeReader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::string SafeReader::str(std::size_t max_len) {
  std::uint64_t n = u64();
  if (!ok_ || n > max_len || !need(static_cast<std::size_t>(n))) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(buf_ + pos_), static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void SubmitRequest::encode(Writer& w) const {
  w.u64(token);
  w.u32(priority);
  w.u64(deadline_ms);
  w.u8(static_cast<std::uint8_t>((subscribe ? 1 : 0) | (want_cert ? 2 : 0)));
  w.u8(source);
  w.str(problem);
  w.u64(zp_prime);
}

bool SubmitRequest::decode(SafeReader& r, SubmitRequest* out) {
  out->token = r.u64();
  out->priority = r.u32();
  out->deadline_ms = r.u64();
  std::uint8_t flags = r.u8();
  out->subscribe = (flags & 1) != 0;
  out->want_cert = (flags & 2) != 0;
  out->source = r.u8();
  out->problem = r.str();
  out->zp_prime = r.u64();
  return r.done() && out->source <= 1;
}

void JobEventMsg::encode(Writer& w) const {
  w.u64(token);
  w.u64(job_id);
  w.u8(static_cast<std::uint8_t>(state));
  w.u32(progress_permille);
  w.u32(queue_depth);
  w.u32(attempt);
  w.str(note);
}

bool JobEventMsg::decode(SafeReader& r, JobEventMsg* out) {
  out->token = r.u64();
  out->job_id = r.u64();
  std::uint8_t s = r.u8();
  if (s > static_cast<std::uint8_t>(JobState::kRejected)) return false;
  out->state = static_cast<JobState>(s);
  out->progress_permille = r.u32();
  out->queue_depth = r.u32();
  out->attempt = r.u32();
  out->note = r.str();
  return r.done();
}

void JobResultMsg::encode(Writer& w) const {
  w.u64(token);
  w.u64(job_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(static_cast<std::uint8_t>((cache_hit ? 1 : 0) | (cert << 1)));
  w.u32(attempts);
  w.u64(queue_wait_ms);
  w.u64(exec_ms);
  w.u64(spolys);
  w.u64(basis_added);
  w.str(error);
  w.u32(static_cast<std::uint32_t>(basis.size()));
  for (const std::string& p : basis) w.str(p);
}

bool JobResultMsg::decode(SafeReader& r, JobResultMsg* out) {
  out->token = r.u64();
  out->job_id = r.u64();
  std::uint8_t s = r.u8();
  if (s > static_cast<std::uint8_t>(JobState::kRejected)) return false;
  out->status = static_cast<JobState>(s);
  std::uint8_t flags = r.u8();
  out->cache_hit = (flags & 1) != 0;
  out->cert = static_cast<std::uint8_t>(flags >> 1);
  out->attempts = r.u32();
  out->queue_wait_ms = r.u64();
  out->exec_ms = r.u64();
  out->spolys = r.u64();
  out->basis_added = r.u64();
  out->error = r.str();
  std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 20)) return false;
  out->basis.clear();
  out->basis.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out->basis.push_back(r.str());
  return r.done() && job_state_terminal(out->status) && out->cert <= 2;
}

void ServerStatsMsg::encode(Writer& w) const {
  w.u64(submitted);
  w.u64(rejected);
  w.u64(done);
  w.u64(failed);
  w.u64(cancelled);
  w.u64(timed_out);
  w.u64(requeues);
  w.u64(queue_depth);
  w.u64(running);
  w.u64(cache_hits);
  w.u64(cache_misses);
  w.u64(cache_entries);
  w.u64(cache_evictions);
  w.u64(wait_p50_ms);
  w.u64(wait_p99_ms);
  w.u64(exec_p50_ms);
  w.u64(exec_p99_ms);
  w.u32(workers);
  w.u8(static_cast<std::uint8_t>(backend));
  w.u8(paused ? 1 : 0);
}

bool ServerStatsMsg::decode(SafeReader& r, ServerStatsMsg* out) {
  out->submitted = r.u64();
  out->rejected = r.u64();
  out->done = r.u64();
  out->failed = r.u64();
  out->cancelled = r.u64();
  out->timed_out = r.u64();
  out->requeues = r.u64();
  out->queue_depth = r.u64();
  out->running = r.u64();
  out->cache_hits = r.u64();
  out->cache_misses = r.u64();
  out->cache_entries = r.u64();
  out->cache_evictions = r.u64();
  out->wait_p50_ms = r.u64();
  out->wait_p99_ms = r.u64();
  out->exec_p50_ms = r.u64();
  out->exec_p99_ms = r.u64();
  out->workers = r.u32();
  std::uint8_t b = r.u8();
  if (b > static_cast<std::uint8_t>(ServeBackend::kThread)) return false;
  out->backend = static_cast<ServeBackend>(b);
  out->paused = r.u8() != 0;
  return r.done();
}

}  // namespace gbd
