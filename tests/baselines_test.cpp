// Tests for the two comparison engines: the Vidal-style shared-memory
// baseline and the Siegl-style partitioned pipeline.
#include <gtest/gtest.h>

#include "gb/pipeline.hpp"
#include "gb/sequential.hpp"
#include "gb/shared_memory.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

std::vector<Polynomial> reduced_reference(const PolySystem& sys) {
  return reduce_basis(sys.ctx, groebner_sequential(sys).basis);
}

void expect_same_reduced(const PolySystem& sys, const std::vector<Polynomial>& basis,
                         const std::vector<Polynomial>& ref, const std::string& label) {
  std::vector<Polynomial> red = reduce_basis(sys.ctx, basis);
  ASSERT_EQ(red.size(), ref.size()) << label;
  for (std::size_t i = 0; i < red.size(); ++i) {
    EXPECT_TRUE(red[i].equals(ref[i])) << label << " element " << i;
  }
}

class SharedMemoryProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedMemoryProcsTest, CorrectAcrossWorkerCounts) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduced_reference(sys);
  SharedMemoryConfig cfg;
  cfg.nprocs = GetParam();
  SharedMemoryResult res = groebner_shared(sys, cfg);
  std::string why;
  EXPECT_TRUE(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) << why;
  expect_same_reduced(sys, res.basis, ref, "P=" + std::to_string(cfg.nprocs));
  EXPECT_GT(res.makespan, 0u);
  EXPECT_EQ(res.worker_clocks.size(), static_cast<std::size_t>(cfg.nprocs));
}

INSTANTIATE_TEST_SUITE_P(Procs, SharedMemoryProcsTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(SharedMemoryTest, DeterministicPerSeed) {
  PolySystem sys = load_problem("arnborg4");
  SharedMemoryConfig cfg;
  cfg.nprocs = 4;
  cfg.seed = 77;
  SharedMemoryResult a = groebner_shared(sys, cfg);
  SharedMemoryResult b = groebner_shared(sys, cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.lock_wait, b.lock_wait);
  EXPECT_EQ(a.stats.reduction_steps, b.stats.reduction_steps);
}

TEST(SharedMemoryTest, SeedsPerturbSchedules) {
  PolySystem sys = load_problem("trinks2");
  SharedMemoryConfig a, b;
  a.nprocs = b.nprocs = 4;
  a.seed = 1;
  b.seed = 2;
  SharedMemoryResult ra = groebner_shared(sys, a);
  SharedMemoryResult rb = groebner_shared(sys, b);
  // Same answer either way; timing may differ (it is allowed to coincide,
  // but the reduced bases must match).
  PolySystem sys2 = load_problem("trinks2");
  expect_same_reduced(sys2, ra.basis, reduce_basis(sys2.ctx, rb.basis), "seeds");
}

TEST(SharedMemoryTest, LockContentionGrowsWithWorkers) {
  PolySystem sys = load_problem("katsura4");
  std::uint64_t prev_wait = 0;
  for (int p : {1, 8}) {
    SharedMemoryConfig cfg;
    cfg.nprocs = p;
    SharedMemoryResult res = groebner_shared(sys, cfg);
    if (p == 1) {
      EXPECT_EQ(res.lock_wait, 0u);  // nobody to contend with
      prev_wait = res.lock_wait;
    } else {
      EXPECT_GT(res.lock_wait, prev_wait);
    }
  }
}

TEST(SharedMemoryTest, WorkMatchesSequentialAtOneWorker) {
  // One worker = Algorithm S with lock costs; same pair order, same algebra.
  PolySystem sys = load_problem("morgenstern");
  SequentialResult seq = groebner_sequential(sys);
  SharedMemoryConfig cfg;
  cfg.nprocs = 1;
  cfg.seed = 0;
  SharedMemoryResult sm = groebner_shared(sys, cfg);
  EXPECT_EQ(sm.stats.spolys_computed, seq.stats.spolys_computed);
  EXPECT_EQ(sm.stats.basis_added, seq.stats.basis_added);
  EXPECT_EQ(sm.stats.reductions_to_zero, seq.stats.reductions_to_zero);
}

class PipelineStagesTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineStagesTest, CorrectAcrossStageCounts) {
  PolySystem sys = load_problem("trinks2");
  std::vector<Polynomial> ref = reduced_reference(sys);
  PipelineConfig cfg;
  cfg.nstages = GetParam();
  cfg.inflight = GetParam();
  PipelineResult res = groebner_pipeline(sys, cfg);
  std::string why;
  EXPECT_TRUE(verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) << why;
  expect_same_reduced(sys, res.basis, ref, "S=" + std::to_string(cfg.nstages));
}

INSTANTIATE_TEST_SUITE_P(Stages, PipelineStagesTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(PipelineTest, ParallelismBoundedByStageImbalance) {
  PolySystem sys = load_problem("katsura4");
  PipelineConfig cfg;
  cfg.nstages = 8;
  cfg.inflight = 8;
  PipelineResult res = groebner_pipeline(sys, cfg);
  double par = res.achieved_parallelism();
  EXPECT_GE(par, 1.0);
  EXPECT_LE(par, 8.0);
  EXPECT_EQ(res.stage_busy.size(), 8u);
}

TEST(PipelineTest, CommunicationScalesWithTraffic) {
  // The §4.1.1 argument: partitioning moves polynomial bodies for *every*
  // reduction trip, so ring bytes grow with stages while a replicated basis
  // only ships additions.
  PolySystem sys = load_problem("trinks2");
  PipelineConfig small, large;
  small.nstages = small.inflight = 2;
  large.nstages = large.inflight = 8;
  PipelineResult a = groebner_pipeline(sys, small);
  PipelineResult b = groebner_pipeline(sys, large);
  EXPECT_GT(b.token_hops, a.token_hops);
  EXPECT_GT(b.ring_bytes, a.ring_bytes);
  // Far more bodies move than basis elements exist — the waste the paper
  // quantifies via the added/zeroed ratio.
  EXPECT_GT(a.token_hops, a.stats.basis_added);
}

TEST(PipelineTest, SingleStageDegeneratesToSequentialAlgebra) {
  PolySystem sys = load_problem("arnborg4");
  SequentialResult seq = groebner_sequential(sys);
  PipelineConfig cfg;
  cfg.nstages = 1;
  cfg.inflight = 1;
  PipelineResult res = groebner_pipeline(sys, cfg);
  EXPECT_EQ(res.stats.basis_added, seq.stats.basis_added);
  EXPECT_EQ(res.stats.reductions_to_zero, seq.stats.reductions_to_zero);
}

TEST(PipelineTest, DeterministicRuns) {
  PolySystem sys = load_problem("trinks2");
  PipelineConfig cfg;
  cfg.nstages = 4;
  cfg.inflight = 4;
  PipelineResult a = groebner_pipeline(sys, cfg);
  PipelineResult b = groebner_pipeline(sys, cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.token_hops, b.token_hops);
  EXPECT_EQ(a.ring_bytes, b.ring_bytes);
}

}  // namespace
}  // namespace gbd
