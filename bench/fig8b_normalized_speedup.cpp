// Figure 8(b) — normalized ("true") speedup via trace replay.
//
// "The parallel version accumulates traces of activity at each processor. A
// sequential program … reads in the traces and mimics an appropriately
// merged sequence of execution steps. The execution time of this program is
// used as the baseline for normalized curves." Normalization re-executes the
// exact algebra every processor performed, so lucky heuristic shortcuts no
// longer inflate speedup: "the superlinear nature has been filtered
// completely and the linear nature of 'true' speedup shows clearly."
#include "bench_common.hpp"

using namespace gbd;

int main() {
  bench::print_header(
      "Figure 8(b): normalized speedup (trace replay baseline)",
      "Normalized speedup = replay(trace of the P-proc run) / makespan(P).\n"
      "Paper shape: raw speedup can exceed linear (lazard); normalized cannot,\n"
      "and tracks utilization.");

  int seeds = bench::full_size() ? 5 : 3;
  for (const char* name : {"lazard", "trinks1"}) {
    PolySystem sys = load_problem(name);
    std::printf("-- %s --\n", name);
    TextTable table(
        {"P", "Makespan", "Raw speedup", "Replay baseline", "Normalized", "Norm/P"});
    double base = 0;
    for (int p : {1, 2, 4, 8, 16}) {
      ParallelConfig cfg;
      cfg.gb = bench::paper_era_criteria();
      cfg.nprocs = p;
      cfg.record_trace = true;
      ParallelResult best = bench::best_of_seeds(sys, cfg, p == 1 ? 1 : seeds);
      if (p == 1) base = static_cast<double>(best.machine.makespan);
      ReplayResult rep = replay_trace(sys.ctx, best.trace, best.bodies());
      double norm = static_cast<double>(rep.work_units) /
                    static_cast<double>(best.machine.makespan);
      table.add_row({std::to_string(p), std::to_string(best.machine.makespan),
                     fmt(base / static_cast<double>(best.machine.makespan)),
                     std::to_string(rep.work_units), fmt(norm), fmt(norm / p)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
