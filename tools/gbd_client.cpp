// gbd_client — command-line client for the gbd_serve daemon.
//
//   gbd_client --port P [--host H] stats
//   gbd_client --port P [--host H] submit (--problem NAME | --file F | --text T)
//              [--count N] [--priority K] [--deadline-ms T] [--zp PRIME]
//              [--cert] [--watch] [--print-basis] [--timeout-s T]
//
// `submit` sends N copies of the problem (distinct tokens), waits for every
// result, prints one line per job and a summary. --watch subscribes to
// kJobEvent progress pushes and prints them as they stream in. Exit 0 iff
// every job came back done.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

using namespace gbd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gbd_client --port P [--host H] stats\n"
               "       gbd_client --port P [--host H] submit\n"
               "                  (--problem NAME | --file F | --text T)\n"
               "                  [--count N] [--priority K] [--deadline-ms T] [--zp PRIME]\n"
               "                  [--cert] [--watch] [--print-basis] [--timeout-s T]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string command, problem, file, text;
  int count = 1;
  std::uint32_t priority = 0;
  std::uint64_t deadline_ms = 0, zp = 0;
  bool cert = false, watch = false, print_basis = false;
  int timeout_s = 120;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (a == "--host" && (v = next())) host = v;
    else if (a == "--port" && (v = next())) port = static_cast<std::uint16_t>(std::atoi(v));
    else if (a == "--problem" && (v = next())) problem = v;
    else if (a == "--file" && (v = next())) file = v;
    else if (a == "--text" && (v = next())) text = v;
    else if (a == "--count" && (v = next())) count = std::atoi(v);
    else if (a == "--priority" && (v = next())) priority = static_cast<std::uint32_t>(std::atoi(v));
    else if (a == "--deadline-ms" && (v = next())) deadline_ms = static_cast<std::uint64_t>(std::atoll(v));
    else if (a == "--zp" && (v = next())) zp = static_cast<std::uint64_t>(std::atoll(v));
    else if (a == "--cert") cert = true;
    else if (a == "--watch") watch = true;
    else if (a == "--print-basis") print_basis = true;
    else if (a == "--timeout-s" && (v = next())) timeout_s = std::atoi(v);
    else if (command.empty() && a[0] != '-') command = a;
    else return usage();
  }
  if (port == 0 || command.empty()) return usage();

  ServeClient client;
  std::string err;
  if (!client.connect(host, port, &err)) {
    std::fprintf(stderr, "gbd_client: %s\n", err.c_str());
    return 1;
  }

  if (command == "stats") {
    ServerStatsMsg s;
    if (!client.stats(&s, timeout_s * 1000)) {
      std::fprintf(stderr, "gbd_client: stats request failed\n");
      return 1;
    }
    std::printf("backend=%s workers=%u paused=%d\n", serve_backend_name(s.backend), s.workers,
                s.paused ? 1 : 0);
    std::printf("submitted=%llu rejected=%llu done=%llu failed=%llu cancelled=%llu "
                "timed_out=%llu requeues=%llu\n",
                (unsigned long long)s.submitted, (unsigned long long)s.rejected,
                (unsigned long long)s.done, (unsigned long long)s.failed,
                (unsigned long long)s.cancelled, (unsigned long long)s.timed_out,
                (unsigned long long)s.requeues);
    std::printf("queue_depth=%llu running=%llu\n", (unsigned long long)s.queue_depth,
                (unsigned long long)s.running);
    std::printf("cache: hits=%llu misses=%llu entries=%llu evictions=%llu\n",
                (unsigned long long)s.cache_hits, (unsigned long long)s.cache_misses,
                (unsigned long long)s.cache_entries, (unsigned long long)s.cache_evictions);
    std::printf("latency_ms: wait_p50=%llu wait_p99=%llu exec_p50=%llu exec_p99=%llu\n",
                (unsigned long long)s.wait_p50_ms, (unsigned long long)s.wait_p99_ms,
                (unsigned long long)s.exec_p50_ms, (unsigned long long)s.exec_p99_ms);
    return 0;
  }

  if (command != "submit") return usage();
  SubmitRequest req;
  if (!problem.empty()) {
    req.source = 1;
    req.problem = problem;
  } else if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "gbd_client: cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    req.source = 0;
    req.problem = ss.str();
  } else if (!text.empty()) {
    req.source = 0;
    req.problem = text;
  } else {
    return usage();
  }
  req.priority = priority;
  req.deadline_ms = deadline_ms;
  req.zp_prime = zp;
  req.want_cert = cert;
  req.subscribe = watch;

  for (int i = 0; i < count; ++i) {
    req.token = static_cast<std::uint64_t>(i) + 1;
    if (!client.submit(req)) {
      std::fprintf(stderr, "gbd_client: submit failed (connection lost)\n");
      return 1;
    }
  }

  int ok = 0, bad = 0;
  auto on_event = [&](const JobEventMsg& e) {
    if (watch)
      std::printf("job %llu token %llu: %s progress=%u.%u%% depth=%u attempt=%u %s\n",
                  (unsigned long long)e.job_id, (unsigned long long)e.token,
                  job_state_name(e.state), e.progress_permille / 10, e.progress_permille % 10,
                  e.queue_depth, e.attempt, e.note.c_str());
  };
  std::vector<bool> seen(static_cast<std::size_t>(count) + 1, false);
  std::uint64_t deadline = static_cast<std::uint64_t>(timeout_s) * 1000;
  for (int got = 0; got < count; ++got) {
    ClientUpdate u;
    for (;;) {
      int pr = client.poll(&u, static_cast<int>(deadline));
      if (pr <= 0) {
        std::fprintf(stderr, "gbd_client: timed out / disconnected with %d results pending\n",
                     count - got);
        return 1;
      }
      if (u.kind == ClientUpdate::Kind::kEvent) {
        on_event(u.event);
        continue;
      }
      if (u.kind == ClientUpdate::Kind::kResult) break;
    }
    const JobResultMsg& r = u.result;
    if (r.token == 0 || r.token > static_cast<std::uint64_t>(count) ||
        seen[static_cast<std::size_t>(r.token)]) {
      std::fprintf(stderr, "gbd_client: duplicate or unknown result token %llu\n",
                   (unsigned long long)r.token);
      return 1;
    }
    seen[static_cast<std::size_t>(r.token)] = true;
    std::printf("token %llu: %s%s cert=%u attempts=%u wait=%llums exec=%llums "
                "spolys=%llu basis=%zu%s%s\n",
                (unsigned long long)r.token, job_state_name(r.status),
                r.cache_hit ? " (cache hit)" : "", r.cert, r.attempts,
                (unsigned long long)r.queue_wait_ms, (unsigned long long)r.exec_ms,
                (unsigned long long)r.spolys, r.basis.size(), r.error.empty() ? "" : " error=",
                r.error.c_str());
    if (print_basis)
      for (const std::string& p : r.basis) std::printf("  %s\n", p.c_str());
    if (r.status == JobState::kDone) ++ok;
    else ++bad;
  }
  std::printf("done: %d ok, %d not-ok of %d\n", ok, bad, count);
  return bad == 0 ? 0 : 1;
}
