// Implicitizing parametric equations — the second application the paper's
// introduction names. Given a parametrization x = f(t), y = g(t), the
// implicit equation of the curve is found by eliminating t: compute a lex
// Gröbner basis with t ordered first; the basis elements free of t generate
// the elimination ideal (the implicit equations).
#include <cstdio>

#include "gb/sequential.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"

namespace {

using namespace gbd;

/// Print the basis elements not involving the first `k` variables — the
/// generators of the k-th elimination ideal.
void print_eliminated(const PolySystem& sys, const std::vector<Polynomial>& gb, std::size_t k,
                      const char* label) {
  std::printf("%s\n", label);
  for (const auto& g : gb) {
    bool free_of_params = true;
    for (const auto& t : g.terms()) {
      for (std::size_t v = 0; v < k; ++v) {
        if (t.mono.exp(v) != 0) free_of_params = false;
      }
    }
    if (free_of_params) std::printf("  %s\n", g.to_string(sys.ctx).c_str());
  }
}

void implicitize(const char* title, const char* text, std::size_t nparams) {
  PolySystem sys = parse_system_or_die(text);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  std::printf("== %s ==\nFull lex basis:\n", title);
  for (const auto& g : gb) std::printf("  %s\n", g.to_string(sys.ctx).c_str());
  print_eliminated(sys, gb, nparams, "Implicit equation(s) (parameters eliminated):");
  std::printf("\n");
}

}  // namespace

int main() {
  // The cuspidal cubic: x = t^2, y = t^3  =>  y^2 = x^3.
  implicitize("cuspidal cubic: x = t^2, y = t^3",
              R"(vars t, x, y; order lex;
                 x - t^2;
                 y - t^3;)",
              1);

  // The folium-like rational curve x = t^2 - 1, y = t^3 - t.
  implicitize("nodal cubic: x = t^2 - 1, y = t^3 - t",
              R"(vars t, x, y; order lex;
                 x - t^2 + 1;
                 y - t^3 + t;)",
              1);

  // A parametric surface: the Whitney umbrella x = u*v, y = u, z = v^2
  // => x^2 = y^2 z.
  implicitize("Whitney umbrella: x = u*v, y = u, z = v^2",
              R"(vars u, v, x, y, z; order lex;
                 x - u*v;
                 y - u;
                 z - v^2;)",
              2);
  return 0;
}
