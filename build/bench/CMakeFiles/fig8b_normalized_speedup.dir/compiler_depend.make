# Empty compiler generated dependencies file for fig8b_normalized_speedup.
# This may be replaced when dependencies are built.
