// Contract-violation coverage: the library enforces its preconditions with
// aborting checks (GBD_CHECK); these death tests pin down that misuse fails
// fast and loudly instead of corrupting algebra.
#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "support/serialize.hpp"

namespace gbd {
namespace {

PolyContext ctx2() { return PolyContext{{"x", "y"}, OrderKind::kGrLex}; }

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, BigIntDivisionByZeroAborts) {
  BigInt a(7), z(0);
  EXPECT_DEATH({ BigInt q = a / z; (void)q; }, "division by zero");
  EXPECT_DEATH({ BigInt r = a % z; (void)r; }, "division by zero");
}

TEST(ContractsDeathTest, BigIntToInt64OverflowAborts) {
  BigInt big = BigInt::pow(BigInt(2), 70);
  EXPECT_DEATH({ auto v = big.to_int64(); (void)v; }, "to_int64 overflow");
}

TEST(ContractsDeathTest, BigIntBadLiteralAborts) {
  EXPECT_DEATH({ auto v = BigInt::from_string("12x"); (void)v; }, "malformed");
}

TEST(ContractsDeathTest, RationalZeroDenominatorAborts) {
  EXPECT_DEATH({ Rational r(BigInt(1), BigInt(0)); (void)r; }, "zero denominator");
}

TEST(ContractsDeathTest, RationalInverseOfZeroAborts) {
  Rational zero;
  EXPECT_DEATH({ auto v = zero.inverse(); (void)v; }, "inverse of zero");
}

TEST(ContractsDeathTest, MonomialBadQuotientAborts) {
  Monomial a({1, 0});
  Monomial b({0, 1});
  EXPECT_DEATH({ auto q = a / b; (void)q; }, "non-divisor");
}

TEST(ContractsDeathTest, HeadOfZeroPolynomialAborts) {
  Polynomial z;
  EXPECT_DEATH({ auto& h = z.head(); (void)h; }, "zero polynomial");
}

TEST(ContractsDeathTest, DivExactScalarNonDivisorAborts) {
  PolyContext c = ctx2();
  Polynomial p = parse_poly_or_die(c, "3*x + 2");
  EXPECT_DEATH(p.div_exact_scalar(BigInt(2)), "not an exact divisor");
}

TEST(ContractsDeathTest, ReduceStepRequiresDivisibleHead) {
  PolyContext c = ctx2();
  Polynomial p = parse_poly_or_die(c, "x^2 + 1");
  Polynomial r = parse_poly_or_die(c, "y + 1");
  EXPECT_DEATH({ auto q = reduce_step(c, p, r); (void)q; }, "does not divide");
}

TEST(ContractsDeathTest, SpolyOfZeroAborts) {
  PolyContext c = ctx2();
  Polynomial p = parse_poly_or_die(c, "x");
  Polynomial z;
  EXPECT_DEATH({ auto s = spoly(c, p, z); (void)s; }, "zero polynomial");
}

TEST(ContractsDeathTest, ReaderUnderrunAborts) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  (void)r.u32();
  EXPECT_DEATH({ auto v = r.u64(); (void)v; }, "underrun");
}

TEST(ContractsDeathTest, ReduceFullMaxStepsAborts) {
  PolyContext c = ctx2();
  std::vector<Polynomial> basis = {parse_poly_or_die(c, "x - 1")};
  VectorReducerSet set(&basis);
  Polynomial p = parse_poly_or_die(c, "x^20");
  ReduceOptions opts;
  opts.max_steps = 3;  // x^20 needs 20 steps
  EXPECT_DEATH({ auto out = reduce_full(c, p, set, opts); (void)out; }, "max_steps");
}

}  // namespace
}  // namespace gbd
