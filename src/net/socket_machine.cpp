#include "net/socket_machine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "machine/invariants.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "support/check.hpp"

namespace gbd {

namespace {

constexpr int kPumpMs = 200;  ///< cap on one blocking pump (timers fire sooner anyway)

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t realtime_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

class SocketMachine::SocketProc final : public Proc {
 public:
  explicit SocketProc(SocketMachine* m) : machine_(m), id_(m->rank()) {}

  int id() const override { return id_; }
  int nprocs() const override { return machine_->nprocs(); }

  void on(HandlerId h, Handler fn) override {
    GBD_CHECK_MSG(!started_, "on() after this processor started communicating");
    if (handlers_.size() <= h) handlers_.resize(h + 1);
    GBD_CHECK_MSG(!handlers_[h], "handler registered twice");
    handlers_[h] = std::move(fn);
  }

  void send(int dst, HandlerId h, std::vector<std::uint8_t> payload) override {
    ensure_started();
    GBD_CHECK(dst >= 0 && dst < nprocs());
    GBD_CHECK_MSG(!machine_->quiescent_, "send after machine quiescence — protocol bug");
    comm_.messages_sent += 1;
    comm_.bytes_sent += payload.size();
    machine_->sent_total_ += 1;
    if (dst == id_) {
      selfq_.push_back(Envelope{h, std::move(payload)});
    } else {
      std::uint64_t seq = machine_->transport_->send_app(dst, h, std::move(payload));
      // Causal flow stamp: the send instant binds to whatever span is open
      // here; the matching kMsgRecv at the destination closes the edge.
      if (tracer() != nullptr) {
        tracer()->instant(Ev::kMsgSend, now(), flow_id(id_, dst, seq), h);
      }
    }
  }

  std::size_t poll() override {
    ensure_started();
    maybe_tick();
    if (nprocs() > 1) machine_->transport_->pump(0);
    return deliver_all();
  }

  bool wait() override {
    ensure_started();
    for (;;) {
      maybe_tick();
      if (nprocs() > 1) machine_->transport_->pump(0);
      if (deliver_all() > 0) return true;
      if (machine_->quiescent_) return false;
      if (nprocs() == 1) {
        // Alone, an empty inbox IS machine quiescence.
        machine_->quiescent_ = true;
        return false;
      }
      machine_->report_idle();
      if (machine_->quiescent_) return false;  // rank 0 may declare inline
      mb_stats_.cv_waits += 1;
      std::uint64_t t0 = now();
      machine_->transport_->pump(kPumpMs);
      comm_.idle_units += now() - t0;
      if (machine_->transport_->inbox_size() != 0 || !selfq_.empty()) {
        mb_stats_.wakeups += 1;
      }
    }
  }

  void charge(std::uint64_t) override {}

  void backoff(std::uint64_t units) override {
    // Same throttle as ThreadMachine: ~50ns per work unit with escalation,
    // cut short by arriving traffic (pump returns when an fd is ready). A
    // processor in backoff stays busy for quiescence: no idle report here.
    ensure_started();
    constexpr std::uint64_t kNsPerUnit = 50;
    constexpr std::uint64_t kMaxNs = 2'000'000;  // 2 ms
    std::uint64_t ns = std::min((units * kNsPerUnit) << std::min(backoff_streak_, 5u), kMaxNs);
    backoff_streak_ += 1;
    if (nprocs() == 1) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
      return;
    }
    if (machine_->transport_->inbox_size() != 0 || !selfq_.empty()) return;
    mb_stats_.cv_waits += 1;
    std::uint64_t t0 = now();
    machine_->transport_->pump(static_cast<int>(std::max<std::uint64_t>(1, ns / 1'000'000)));
    comm_.idle_units += now() - t0;
  }

  std::size_t kernel_lanes() const override {
    std::size_t lanes = machine_->cfg_.kernel_lanes;
    if (lanes == 0) lanes = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    return lanes;
  }

  std::uint64_t now() override { return steady_ns() - machine_->epoch_ns_; }

  void yield() override { std::this_thread::yield(); }

  const ChaosConfig* chaos() const override {
    const ChaosConfig& c = machine_->cfg_.net.chaos;
    return c.enabled() ? &c : nullptr;
  }

 private:
  friend class SocketMachine;

  struct Envelope {
    HandlerId handler;
    std::vector<std::uint8_t> payload;
  };

  /// First communication call: registration is complete — run the barrier.
  void ensure_started() {
    if (started_) return;
    started_ = true;
    machine_->registration_barrier();
  }

  /// Dispatch everything deliverable now (self-sends first, then the wire).
  std::size_t deliver_all() {
    std::size_t n = 0;
    while (!selfq_.empty()) {
      Envelope env = std::move(selfq_.front());
      selfq_.pop_front();
      dispatch(id_, env.handler, env.payload);
      n += 1;
    }
    AppMessage msg;
    while (machine_->transport_->next_app(&msg)) {
      dispatch(msg.src, msg.handler, msg.payload, msg.seq);
      n += 1;
    }
    if (n > 0) {
      backoff_streak_ = 0;
      machine_->note_busy();
      mb_stats_.drains += 1;
      mb_stats_.drained_messages += n;
      mb_stats_.max_drain_batch = std::max<std::uint64_t>(mb_stats_.max_drain_batch, n);
    }
    return n;
  }

  void dispatch(int src, HandlerId h, std::vector<std::uint8_t>& payload,
                std::uint64_t seq = 0) {
    GBD_CHECK_MSG(h < handlers_.size() && handlers_[h], "message for unregistered handler");
    comm_.messages_received += 1;
    machine_->delivered_total_ += 1;
    mb_stats_.enqueues += 1;
    Reader r(payload.data(), payload.size());
    std::uint64_t t0 = tracer() != nullptr ? now() : 0;
    // Close the causal edge: the receive instant lands inside the handler
    // slice that follows (self-sends have no wire seq and carry no edge).
    if (tracer() != nullptr && seq != 0) {
      tracer()->instant(Ev::kMsgRecv, t0, flow_id(src, id_, seq), h);
    }
    handlers_[h](*this, src, r);
    if (tracer() != nullptr) {
      tracer()->complete(Ev::kHandler, t0, now(), h, static_cast<std::uint64_t>(src));
    }
  }

  /// Post-worker: keep the machine alive until global quiescence, discarding
  /// (but counting) any envelope that still arrives — ThreadMachine likewise
  /// never dispatches into a finished worker.
  void run_to_quiescence() {
    ensure_started();
    finished_ = true;
    if (nprocs() == 1) {
      machine_->quiescent_ = true;
      return;
    }
    while (!machine_->quiescent_) {
      discard_all();
      maybe_tick();
      machine_->report_idle();
      if (machine_->quiescent_) break;
      machine_->transport_->pump(kPumpMs);
      discard_all();
    }
    discard_all();
  }

  /// Steady-clock telemetry tick. Rank 0 feeds its own aggregator directly;
  /// every other rank ships the frame best-effort (unacked, chaos-droppable)
  /// to rank 0. Neither path touches sent_total_/delivered_total_, so
  /// telemetry can never perturb Mattern quiescence.
  void maybe_tick() {
    if (telemetry_ == nullptr) return;
    std::uint64_t t = now();
    if (!telemetry_->due(t)) return;
    std::vector<std::uint8_t> frame = telemetry_->sample(
        id_, t, comm_, tracer() != nullptr ? tracer()->dropped() : 0);
    if (id_ == 0) {
      machine_->telemetry_->ingest_bytes(frame.data(), frame.size());
    } else {
      machine_->transport_->send_telemetry(0, std::move(frame));
    }
  }

  void discard_all() {
    while (!selfq_.empty()) {
      selfq_.pop_front();
      comm_.messages_received += 1;
      machine_->delivered_total_ += 1;
    }
    AppMessage msg;
    while (machine_->transport_->next_app(&msg)) {
      comm_.messages_received += 1;
      machine_->delivered_total_ += 1;
    }
  }

  bool idle_now() const {
    return (machine_->local_idle_ || finished_) && selfq_.empty() &&
           machine_->transport_->inbox_size() == 0;
  }

  SocketMachine* machine_;
  int id_;
  std::vector<Handler> handlers_;
  std::deque<Envelope> selfq_;
  MailboxStats mb_stats_;
  bool started_ = false;
  bool finished_ = false;
  unsigned backoff_streak_ = 0;
};

SocketMachine::SocketMachine(SocketMachineConfig cfg) : cfg_(std::move(cfg)) {
  GBD_CHECK(cfg_.net.nprocs >= 1);
  GBD_CHECK(cfg_.net.rank >= 0 && cfg_.net.rank < cfg_.net.nprocs);
  idle_.assign(static_cast<std::size_t>(nprocs()), false);
  r_sent_.assign(static_cast<std::size_t>(nprocs()), 0);
  r_delivered_.assign(static_cast<std::size_t>(nprocs()), 0);
}

SocketMachine::~SocketMachine() = default;

const TransportStats& SocketMachine::transport_stats() const {
  static const TransportStats kEmpty{};
  return transport_ != nullptr ? transport_->stats() : kEmpty;
}

void SocketMachine::registration_barrier() {
  if (nprocs() == 1) {
    go_received_ = true;
    return;
  }
  if (rank() == 0) {
    ready_count_ += 1;  // self
    while (ready_count_ < nprocs()) transport_->pump(kPumpMs);
    transport_->send_control(-1, FrameType::kGo);
    go_received_ = true;
  } else {
    transport_->send_control(0, FrameType::kReady);
    while (!go_received_) transport_->pump(kPumpMs);
  }
}

void SocketMachine::on_control(int src, FrameType type, Reader& r) {
  switch (type) {
    case FrameType::kReady:
      GBD_CHECK_MSG(rank() == 0, "kReady at a non-coordinator rank");
      ready_count_ += 1;
      return;
    case FrameType::kGo:
      go_received_ = true;
      return;
    case FrameType::kIdle: {
      GBD_CHECK_MSG(rank() == 0, "kIdle at a non-coordinator rank");
      std::uint64_t s = r.u64(), d = r.u64();
      idle_[static_cast<std::size_t>(src)] = true;
      r_sent_[static_cast<std::size_t>(src)] = s;
      r_delivered_[static_cast<std::size_t>(src)] = d;
      maybe_start_wave();
      return;
    }
    case FrameType::kProbe: {
      std::uint64_t wave = r.u64();
      bool idle = proc_ != nullptr && proc_->idle_now();
      // A busy answer invalidates our standing kIdle report — rank 0 marks
      // us busy, so we must re-report once idle again even if the counters
      // never move (otherwise the coordinator would wait forever).
      if (!idle) idle_reported_ = false;
      Writer w;
      w.u64(wave);
      w.u8(idle ? 1 : 0);
      w.u64(sent_total_);
      w.u64(delivered_total_);
      transport_->send_control(src, FrameType::kProbeAck, w.take());
      return;
    }
    case FrameType::kProbeAck: {
      GBD_CHECK_MSG(rank() == 0, "kProbeAck at a non-coordinator rank");
      std::uint64_t wave = r.u64();
      bool idle = r.u8() != 0;
      std::uint64_t s = r.u64(), d = r.u64();
      if (!wave_active_ || wave != wave_id_) return;
      std::size_t i = static_cast<std::size_t>(src);
      wave_all_idle_ = wave_all_idle_ && idle;
      wave_consistent_ = wave_consistent_ && s == snap_sent_[i] && d == snap_delivered_[i];
      idle_[i] = idle;
      r_sent_[i] = s;
      r_delivered_[i] = d;
      wave_replies_ += 1;
      if (wave_replies_ == nprocs()) {
        wave_active_ = false;
        if (wave_all_idle_ && wave_consistent_) {
          declare_quiescent();
        } else {
          maybe_start_wave();  // tables changed; conditions may already hold again
        }
      }
      return;
    }
    case FrameType::kQuiescent:
      quiescent_ = true;
      return;
    case FrameType::kExitStats: {
      GBD_CHECK_MSG(rank() == 0, "kExitStats at a non-coordinator rank");
      std::size_t i = static_cast<std::size_t>(src);
      ProcCommStats& c = all_comm_[i];
      c.messages_sent = r.u64();
      c.bytes_sent = r.u64();
      c.messages_received = r.u64();
      c.idle_units = r.u64();
      MailboxStats& m = all_mailbox_[i];
      m.enqueues = r.u64();
      m.notifies = r.u64();
      m.lock_contended = r.u64();
      m.cv_waits = r.u64();
      m.wakeups = r.u64();
      m.drains = r.u64();
      m.drained_messages = r.u64();
      m.max_drain_batch = r.u64();
      all_finish_[i] = r.u64();
      exit_stats_received_ += 1;
      return;
    }
    case FrameType::kExitAck:
      exit_ack_ = true;
      return;
    case FrameType::kGather: {
      GBD_CHECK_MSG(rank() == 0, "kGather at a non-coordinator rank");
      std::vector<std::uint8_t> blob(r.remaining());
      for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = r.u8();
      gather_blobs_[static_cast<std::size_t>(src)] = std::move(blob);
      gather_received_ += 1;
      return;
    }
    case FrameType::kGatherAck:
      gather_ack_ = true;
      return;
    case FrameType::kTelemetry: {
      // Best-effort metric snapshot from a peer rank. Deliberately lenient:
      // a frame arriving with no aggregator attached (or at a non-zero rank
      // after a topology mix-up) is dropped, never fatal — loss is already
      // part of this channel's contract.
      if (rank() == 0 && telemetry_ != nullptr) {
        std::vector<std::uint8_t> blob(r.remaining());
        for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = r.u8();
        telemetry_->ingest_bytes(blob.data(), blob.size());
      }
      return;
    }
    default:
      GBD_CHECK_MSG(false, "unexpected control frame");
  }
}

void SocketMachine::note_busy() {
  local_idle_ = false;
  idle_reported_ = false;
  if (rank() == 0) idle_[0] = false;
}

void SocketMachine::report_idle() {
  local_idle_ = true;
  if (rank() == 0) {
    idle_[0] = true;
    r_sent_[0] = sent_total_;
    r_delivered_[0] = delivered_total_;
    maybe_start_wave();
    return;
  }
  if (idle_reported_ && reported_sent_ == sent_total_ && reported_delivered_ == delivered_total_) {
    return;
  }
  Writer w;
  w.u64(sent_total_);
  w.u64(delivered_total_);
  transport_->send_control(0, FrameType::kIdle, w.take());
  idle_reported_ = true;
  reported_sent_ = sent_total_;
  reported_delivered_ = delivered_total_;
}

void SocketMachine::maybe_start_wave() {
  if (quiescent_ || wave_active_) return;
  if (idle_[0]) {
    r_sent_[0] = sent_total_;
    r_delivered_[0] = delivered_total_;
  }
  std::uint64_t sum_s = 0, sum_d = 0;
  for (int i = 0; i < nprocs(); ++i) {
    if (!idle_[static_cast<std::size_t>(i)]) return;
    sum_s += r_sent_[static_cast<std::size_t>(i)];
    sum_d += r_delivered_[static_cast<std::size_t>(i)];
  }
  if (sum_s != sum_d) return;
  wave_active_ = true;
  wave_id_ += 1;
  wave_replies_ = 1;  // own ack, with the snapshot values by construction
  wave_all_idle_ = true;
  wave_consistent_ = true;
  snap_sent_ = r_sent_;
  snap_delivered_ = r_delivered_;
  Writer w;
  w.u64(wave_id_);
  transport_->send_control(-1, FrameType::kProbe, w.take());
}

void SocketMachine::declare_quiescent() {
  quiescent_ = true;
  transport_->send_control(-1, FrameType::kQuiescent);
}

void SocketMachine::pump_until_flushed(const char* what) {
  std::uint64_t deadline = Transport::now_ms() + static_cast<std::uint64_t>(cfg_.net.peer_timeout_ms);
  while (!transport_->outbox_empty()) {
    if (Transport::now_ms() > deadline) {
      throw NetError("rank " + std::to_string(rank()) + ": timed out flushing " + what);
    }
    transport_->pump(20);
  }
}

void SocketMachine::exit_phase() {
  if (nprocs() == 1) return;
  std::uint64_t deadline = Transport::now_ms() + static_cast<std::uint64_t>(cfg_.net.peer_timeout_ms);
  auto check_deadline = [&](const char* what) {
    if (Transport::now_ms() > deadline) {
      throw NetError("rank " + std::to_string(rank()) + ": timed out in exit handshake (" +
                     what + ")");
    }
  };
  if (rank() == 0) {
    while (exit_stats_received_ < nprocs() - 1) {
      check_deadline("collecting stats");
      transport_->pump(kPumpMs);
    }
    transport_->send_control(-1, FrameType::kExitAck);
    // A rank may exit the moment its ack lands, closing its sockets while
    // we still flush acks to the rest — from here on, peer EOF is normal
    // teardown. (A caller that proceeds to gather() gets deadline errors
    // instead of fast-fail for a genuinely dead peer; gather guards itself.)
    transport_->set_lenient(true);
    pump_until_flushed("exit acks");
  } else {
    const ProcCommStats& c = proc_->comm_stats();
    const MailboxStats& m = proc_->mb_stats_;
    Writer w;
    w.u64(c.messages_sent);
    w.u64(c.bytes_sent);
    w.u64(c.messages_received);
    w.u64(c.idle_units);
    w.u64(m.enqueues);
    w.u64(m.notifies);
    w.u64(m.lock_contended);
    w.u64(m.cv_waits);
    w.u64(m.wakeups);
    w.u64(m.drains);
    w.u64(m.drained_messages);
    w.u64(m.max_drain_batch);
    w.u64(finish_ns_);
    transport_->send_control(0, FrameType::kExitStats, w.take());
    // Peers that receive their ack first are free to exit while we still
    // wait for ours, so their EOFs stop being failures now. If the
    // coordinator itself died, the ack never comes and the deadline above
    // turns that into a clean NetError instead of a fast-fail.
    transport_->set_lenient(true);
    while (!exit_ack_) {
      check_deadline("waiting for coordinator ack");
      transport_->pump(kPumpMs);
    }
  }
}

MachineStats SocketMachine::run(const std::function<void(Proc&)>& worker) {
  GBD_CHECK_MSG(!ran_, "SocketMachine::run is one-shot");
  ran_ = true;
  all_comm_.assign(static_cast<std::size_t>(nprocs()), ProcCommStats{});
  all_mailbox_.assign(static_cast<std::size_t>(nprocs()), MailboxStats{});
  all_finish_.assign(static_cast<std::size_t>(nprocs()), 0);
  gather_blobs_.resize(static_cast<std::size_t>(nprocs()));

  transport_ = std::make_unique<Transport>(
      cfg_.net, [this](int src, FrameType t, Reader& r) { on_control(src, t, r); });
  transport_->connect_all();
  proc_ = std::make_unique<SocketProc>(this);
  if (tracer_ != nullptr) {
    tracer_->start_run(nprocs(), ClockDomain::kSteadyNs);
    tracer_->set_wall_epoch_ns(realtime_ns());
    proc_->tracer_ = &tracer_->at(rank());
  }
  if (telemetry_ != nullptr) {
    telemetry_->start_run(nprocs(), ClockDomain::kSteadyNs);
    proc_->telemetry_ = &telemetry_->at(rank());
    transport_->set_rtt_observer([this](std::uint64_t rtt_ms) {
      telemetry_->at(rank()).hist(TeleHist::kAckRtt).record(rtt_ms);
    });
  }
  epoch_ns_ = steady_ns();

  worker(*proc_);
  finish_ns_ = proc_->now();
  proc_->run_to_quiescence();
  exit_phase();

  MachineStats stats;
  stats.has_mailbox_stats = true;
  stats.per_proc.assign(static_cast<std::size_t>(nprocs()), ProcCommStats{});
  stats.mailbox.assign(static_cast<std::size_t>(nprocs()), MailboxStats{});
  std::size_t self = static_cast<std::size_t>(rank());
  stats.per_proc[self] = proc_->comm_stats();
  stats.mailbox[self] = proc_->mb_stats_;
  stats.makespan = finish_ns_;
  if (rank() == 0) {
    for (int i = 1; i < nprocs(); ++i) {
      std::size_t j = static_cast<std::size_t>(i);
      stats.per_proc[j] = all_comm_[j];
      stats.mailbox[j] = all_mailbox_[j];
      stats.makespan = std::max(stats.makespan, all_finish_[j]);
    }
  }

  // Under real concurrency across processes a mid-run global sweep would
  // race; the final state is still checkable locally (only this rank's
  // worker exists here — checks that need every rank skip themselves).
  if (monitor_ != nullptr) monitor_->run_all("quiescence");
  if (tracer_ != nullptr) tracer_->finish_run(stats.makespan);
  return stats;
}

std::vector<std::vector<std::uint8_t>> SocketMachine::gather(std::vector<std::uint8_t> blob) {
  GBD_CHECK_MSG(ran_ && quiescent_, "gather() is a post-run collective");
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(nprocs()));
  if (nprocs() == 1) {
    out[0] = std::move(blob);
    return out;
  }
  std::uint64_t deadline = Transport::now_ms() + static_cast<std::uint64_t>(cfg_.net.peer_timeout_ms);
  auto check_deadline = [&] {
    if (Transport::now_ms() > deadline) {
      throw NetError("rank " + std::to_string(rank()) + ": timed out in gather");
    }
  };
  if (rank() == 0) {
    gather_blobs_[0] = std::move(blob);
    gather_received_ += 1;
    while (gather_received_ < nprocs()) {
      check_deadline();
      transport_->pump(kPumpMs);
    }
    transport_->send_control(-1, FrameType::kGatherAck);
    // A rank that has its ack may exit (EOF) while we still flush to the
    // rest — that is normal teardown now, not a failure. A genuinely stuck
    // flush still surfaces via the pump_until_flushed deadline.
    transport_->set_lenient(true);
    pump_until_flushed("gather acks");
    out = std::move(gather_blobs_);
  } else {
    transport_->send_control(0, FrameType::kGather, std::move(blob));
    // Peers that received their ack first will start exiting while we wait
    // for ours; their EOFs are benign. If rank 0 itself died, the ack never
    // comes and the deadline above turns that into a clean NetError.
    transport_->set_lenient(true);
    while (!gather_ack_) {
      check_deadline();
      transport_->pump(kPumpMs);
    }
  }
  return out;
}

}  // namespace gbd
