// Tests for the distributed task queue: local priority, stealing, migration,
// push balancing and the double-wave termination protocol.
#include "taskq/taskq.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>

#include "machine/sim_machine.hpp"
#include "machine/thread_machine.hpp"

namespace gbd {
namespace {

PolyContext ctx2() { return PolyContext{{"x", "y"}, OrderKind::kGrLex}; }

Monomial mono(std::uint32_t a, std::uint32_t b) { return Monomial({a, b}); }

std::vector<std::uint8_t> payload_of(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}

std::uint64_t value_of(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  return r.u64();
}

std::unique_ptr<Machine> make_machine(bool sim, int p) {
  if (sim) return std::make_unique<SimMachine>(p);
  return std::make_unique<ThreadMachine>(p);
}

class TaskQueueTest : public ::testing::TestWithParam<bool> {
 protected:
  bool sim() const { return GetParam(); }
};

TEST_P(TaskQueueTest, LocalPriorityOrder) {
  auto m = make_machine(sim(), 1);
  PolyContext ctx = ctx2();
  std::vector<std::uint64_t> order;
  m->run([&](Proc& self) {
    DistTaskQueue q(self, &ctx, [] { return true; });
    // Enqueue out of order; grlex priorities: 1 < y < x < x^2.
    q.enqueue(payload_of(3), mono(2, 0));
    q.enqueue(payload_of(0), mono(0, 0));
    q.enqueue(payload_of(2), mono(1, 0));
    q.enqueue(payload_of(1), mono(0, 1));
    std::vector<std::uint8_t> p;
    while (q.try_dequeue(&p) == DistTaskQueue::Dequeue::kGot) {
      order.push_back(value_of(p));
    }
  });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST_P(TaskQueueTest, EqualPriorityIsFifo) {
  auto m = make_machine(sim(), 1);
  PolyContext ctx = ctx2();
  std::vector<std::uint64_t> order;
  m->run([&](Proc& self) {
    DistTaskQueue q(self, &ctx, [] { return true; });
    for (std::uint64_t v = 0; v < 5; ++v) q.enqueue(payload_of(v), mono(1, 1));
    std::vector<std::uint8_t> p;
    while (q.try_dequeue(&p) == DistTaskQueue::Dequeue::kGot) order.push_back(value_of(p));
  });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST_P(TaskQueueTest, StealMovesWork) {
  // All tasks start at proc 0; both procs must end up having executed some.
  auto m = make_machine(sim(), 2);
  PolyContext ctx = ctx2();
  std::mutex mu;
  std::vector<int> executed_by(16, -1);
  m->run([&](Proc& self) {
    bool busy = false;
    DistTaskQueue q(self, &ctx, [&] { return !busy; });
    if (self.id() == 0) {
      for (std::uint64_t v = 0; v < 16; ++v) q.enqueue(payload_of(v), mono(1, 1));
    }
    std::vector<std::uint8_t> p;
    for (;;) {
      // Poll while busy so steal requests are served mid-computation —
      // the same obligation the real engine has.
      self.poll();
      auto r = q.try_dequeue(&p);
      if (r == DistTaskQueue::Dequeue::kGot) {
        busy = true;
        std::uint64_t v = value_of(p);
        {
          std::lock_guard<std::mutex> lock(mu);
          executed_by[v] = self.id();
        }
        self.charge(1000);  // make tasks take a while so stealing can engage
        busy = false;
      } else if (r == DistTaskQueue::Dequeue::kTerminated) {
        break;
      } else {
        if (!self.wait()) break;
      }
    }
  });
  int by0 = 0, by1 = 0;
  for (int e : executed_by) {
    ASSERT_NE(e, -1) << "a task was lost";
    (e == 0 ? by0 : by1) += 1;
  }
  EXPECT_EQ(by0 + by1, 16);
  if (sim()) {
    // Only the simulator gives work a deterministic duration (charge is a
    // no-op on real threads, where proc 0 may legitimately finish first).
    EXPECT_GT(by1, 0) << "stealing never moved work";
  }
}

TEST_P(TaskQueueTest, TerminationWaveFires) {
  auto m = make_machine(sim(), 4);
  PolyContext ctx = ctx2();
  std::atomic<int> done_count{0};
  std::atomic<bool> wave_flag{false};
  m->run([&](Proc& self) {
    DistTaskQueue q(self, &ctx, [] { return true; });
    if (self.id() == 1) {
      for (std::uint64_t v = 0; v < 4; ++v) q.enqueue(payload_of(v), mono(1, 0));
    }
    std::vector<std::uint8_t> p;
    for (;;) {
      auto r = q.try_dequeue(&p);
      if (r == DistTaskQueue::Dequeue::kTerminated) {
        ++done_count;
        if (q.stats().terminated_by_wave) wave_flag = true;
        break;
      }
      if (r == DistTaskQueue::Dequeue::kEmpty) {
        if (!self.wait()) {
          ++done_count;
          break;
        }
      }
    }
  });
  // Every processor exits, by announcement or quiescence fallback.
  EXPECT_EQ(done_count.load(), 4);
}

TEST_P(TaskQueueTest, TerminationCountsTasksInFlight) {
  // A task migrates between enqueue and execution; the wave protocol must
  // not declare termination while enq != deq. We assert the end state: all
  // tasks executed exactly once.
  auto m = make_machine(sim(), 3);
  PolyContext ctx = ctx2();
  std::atomic<std::uint64_t> executed{0};
  m->run([&](Proc& self) {
    TaskQueueConfig tcfg;
    tcfg.coordinator = 0;
    tcfg.push_threshold = 2;
    tcfg.steal_batch = 2;
    DistTaskQueue q(self, &ctx, [] { return true; }, tcfg);
    if (self.id() == 2) {
      for (std::uint64_t v = 0; v < 12; ++v) q.enqueue(payload_of(v), mono(1, 0));
    }
    std::vector<std::uint8_t> p;
    for (;;) {
      auto r = q.try_dequeue(&p);
      if (r == DistTaskQueue::Dequeue::kGot) {
        executed += 1;
      } else if (r == DistTaskQueue::Dequeue::kTerminated) {
        break;
      } else if (!self.wait()) {
        break;
      }
    }
  });
  EXPECT_EQ(executed.load(), 12u);
}

TEST_P(TaskQueueTest, DynamicTaskCreation) {
  // Tasks spawn children (like pairs spawning pairs); total executed must be
  // the whole tree.
  auto m = make_machine(sim(), 3);
  PolyContext ctx = ctx2();
  std::atomic<std::uint64_t> executed{0};
  m->run([&](Proc& self) {
    DistTaskQueue* qp = nullptr;
    DistTaskQueue q(self, &ctx, [] { return true; });
    qp = &q;
    if (self.id() == 0) q.enqueue(payload_of(4), mono(1, 1));  // depth 4 => 2^5-1 nodes
    std::vector<std::uint8_t> p;
    for (;;) {
      auto r = qp->try_dequeue(&p);
      if (r == DistTaskQueue::Dequeue::kGot) {
        std::uint64_t depth = value_of(p);
        executed += 1;
        if (depth > 0) {
          qp->enqueue(payload_of(depth - 1), mono(1, 1));
          qp->enqueue(payload_of(depth - 1), mono(1, 1));
        }
      } else if (r == DistTaskQueue::Dequeue::kTerminated) {
        break;
      } else if (!self.wait()) {
        break;
      }
    }
  });
  EXPECT_EQ(executed.load(), 31u);
}

INSTANTIATE_TEST_SUITE_P(Impls, TaskQueueTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sim" : "Threads";
                         });

}  // namespace
}  // namespace gbd
