// Exact rational numbers on top of BigInt.
//
// Invariants: the denominator is strictly positive and gcd(num, den) == 1;
// zero is represented as 0/1. Used at the API boundary (input coefficients,
// monic display forms, evaluation); the Gröbner engines themselves work on
// primitive integer polynomials (see poly/polynomial.hpp) for speed, which
// is the standard fraction-free formulation and exactly equivalent over Q.
#pragma once

#include <string>

#include "bigint/bigint.hpp"

namespace gbd {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT(google-explicit-constructor)
  explicit Rational(BigInt v) : num_(std::move(v)), den_(1) {}
  /// num/den, normalized. den must be nonzero.
  Rational(BigInt num, BigInt den);

  /// Parse "a", "-a", or "a/b" in decimal.
  static Rational from_string(std::string_view s);
  static bool parse(std::string_view s, Rational* out);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_one() const { return num_.is_one() && den_.is_one(); }
  bool is_integer() const { return den_.is_one(); }
  int signum() const { return num_.signum(); }

  Rational operator-() const;
  Rational inverse() const;

  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  /// rhs must be nonzero.
  Rational operator/(const Rational& rhs) const;

  Rational& operator+=(const Rational& r) { return *this = *this + r; }
  Rational& operator-=(const Rational& r) { return *this = *this - r; }
  Rational& operator*=(const Rational& r) { return *this = *this * r; }
  Rational& operator/=(const Rational& r) { return *this = *this / r; }

  bool operator==(const Rational& rhs) const { return num_ == rhs.num_ && den_ == rhs.den_; }
  bool operator!=(const Rational& rhs) const { return !(*this == rhs); }
  bool operator<(const Rational& rhs) const { return cmp(rhs) < 0; }
  bool operator<=(const Rational& rhs) const { return cmp(rhs) <= 0; }
  bool operator>(const Rational& rhs) const { return cmp(rhs) > 0; }
  bool operator>=(const Rational& rhs) const { return cmp(rhs) >= 0; }
  int cmp(const Rational& rhs) const;

  /// "n" if integral, else "n/d".
  std::string to_string() const;

  /// Nearest double (approximate; for diagnostics only).
  double to_double() const;

 private:
  void normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace gbd
