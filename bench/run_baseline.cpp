// Reduction-kernel baseline: runs the sequential engine over the benchmark
// problems with the geobucket reduction path and with the naive flat-vector
// path, and emits BENCH_pr2.json with per-problem wall time and the kernel
// counters (reduction steps, find_reducer probes / divmask rejects, BigInt
// heap spills, charged work units).
//
// Modes:
//   run_baseline [--out FILE] [--problems a,b,c] [--repeats N]
//       measure and write the JSON (default BENCH_pr2.json in the CWD).
//   run_baseline --check FILE [--tolerance PCT] [--problems a,b,c]
//       measure and compare against a committed baseline. The deterministic
//       counters (steps, probes, mask rejects, heap spills) must match
//       exactly; the *normalized* wall time — geobucket path divided by the
//       naive path measured in the same process — must not regress by more
//       than PCT percent (default 15). Normalizing by the in-binary naive
//       path cancels machine speed, so the committed numbers are meaningful
//       on any host (see EXPERIMENTS.md).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "gb/sequential.hpp"
#include "poly/divmask.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

struct Row {
  std::string name;
  double wall_ms = 0;        // geobucket path, best of repeats
  double wall_ms_naive = 0;  // naive path, best of repeats
  std::uint64_t reduction_steps = 0;
  std::uint64_t basis_added = 0;
  std::uint64_t work_units = 0;
  std::uint64_t find_reducer_calls = 0;
  std::uint64_t find_reducer_probes = 0;
  std::uint64_t mask_rejects = 0;
  std::uint64_t divides_calls = 0;
  std::uint64_t bigint_heap_allocs = 0;

  double normalized_wall() const {
    return wall_ms_naive > 0 ? wall_ms / wall_ms_naive : 0.0;
  }
};

double time_run_ms(const PolySystem& sys, const GbConfig& cfg) {
  auto t0 = std::chrono::steady_clock::now();
  SequentialResult r = groebner_sequential(sys, cfg);
  auto t1 = std::chrono::steady_clock::now();
  (void)r;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

Row measure(const std::string& name, int repeats) {
  PolySystem sys = load_problem(name);
  Row row;
  row.name = name;

  GbConfig geo;
  GbConfig naive;
  naive.use_geobuckets = false;

  // Counter pass: one geobucket run with the thread-local counters reset.
  reset_find_reducer_stats();
  LimbVec::reset_heap_allocs();
  SequentialResult res = groebner_sequential(sys, geo);
  const FindReducerStats& st = find_reducer_stats();
  row.reduction_steps = res.stats.reduction_steps;
  row.basis_added = res.stats.basis_added;
  row.work_units = res.stats.work_units;
  row.find_reducer_calls = st.calls;
  row.find_reducer_probes = st.probes;
  row.mask_rejects = st.mask_rejects;
  row.divides_calls = st.divides_calls;
  row.bigint_heap_allocs = LimbVec::heap_allocs();

  // Timing passes: best of `repeats` for each path.
  for (int i = 0; i < repeats; ++i) {
    double g = time_run_ms(sys, geo);
    if (i == 0 || g < row.wall_ms) row.wall_ms = g;
    double n = time_run_ms(sys, naive);
    if (i == 0 || n < row.wall_ms_naive) row.wall_ms_naive = n;
  }
  return row;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"pr2_reduce_kernel_baseline\",\n  \"problems\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"wall_ms\": %.3f, \"wall_ms_naive\": %.3f, "
                  "\"normalized_wall\": %.4f, \"reduction_steps\": %llu, \"basis_added\": %llu, "
                  "\"work_units\": %llu, \"find_reducer_calls\": %llu, "
                  "\"find_reducer_probes\": %llu, \"mask_rejects\": %llu, "
                  "\"divides_calls\": %llu, \"bigint_heap_allocs\": %llu}%s\n",
                  r.name.c_str(), r.wall_ms, r.wall_ms_naive, r.normalized_wall(),
                  static_cast<unsigned long long>(r.reduction_steps),
                  static_cast<unsigned long long>(r.basis_added),
                  static_cast<unsigned long long>(r.work_units),
                  static_cast<unsigned long long>(r.find_reducer_calls),
                  static_cast<unsigned long long>(r.find_reducer_probes),
                  static_cast<unsigned long long>(r.mask_rejects),
                  static_cast<unsigned long long>(r.divides_calls),
                  static_cast<unsigned long long>(r.bigint_heap_allocs),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

/// Minimal field extraction from the committed baseline: finds the object
/// containing "name": "<name>" and pulls one numeric field out of it. Not a
/// JSON parser; sufficient for the format write_json emits.
bool json_field(const std::string& text, const std::string& name, const std::string& field,
                double* out) {
  std::string key = "\"name\": \"" + name + "\"";
  std::size_t at = text.find(key);
  if (at == std::string::npos) return false;
  std::size_t end = text.find('}', at);
  std::string fkey = "\"" + field + "\": ";
  std::size_t f = text.find(fkey, at);
  if (f == std::string::npos || f > end) return false;
  *out = std::strtod(text.c_str() + f + fkey.size(), nullptr);
  return true;
}

int check(const std::vector<Row>& rows, const std::string& path, double tolerance_pct) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  int failures = 0;
  for (const Row& r : rows) {
    double want;
    auto exact = [&](const char* field, std::uint64_t got) {
      if (!json_field(text, r.name, field, &want)) {
        std::fprintf(stderr, "FAIL %s: field %s missing from baseline\n", r.name.c_str(), field);
        failures += 1;
        return;
      }
      if (static_cast<double>(got) != want) {
        std::fprintf(stderr, "FAIL %s: %s = %llu, baseline %.0f (deterministic counter drifted)\n",
                     r.name.c_str(), field, static_cast<unsigned long long>(got), want);
        failures += 1;
      }
    };
    exact("reduction_steps", r.reduction_steps);
    exact("find_reducer_probes", r.find_reducer_probes);
    exact("mask_rejects", r.mask_rejects);
    exact("bigint_heap_allocs", r.bigint_heap_allocs);

    if (!json_field(text, r.name, "normalized_wall", &want)) {
      std::fprintf(stderr, "FAIL %s: normalized_wall missing from baseline\n", r.name.c_str());
      failures += 1;
      continue;
    }
    double got = r.normalized_wall();
    double limit = want * (1.0 + tolerance_pct / 100.0);
    if (got > limit) {
      std::fprintf(stderr,
                   "FAIL %s: normalized wall %.4f exceeds baseline %.4f by more than %.0f%%\n",
                   r.name.c_str(), got, want, tolerance_pct);
      failures += 1;
    } else {
      std::printf("ok %s: normalized wall %.4f (baseline %.4f, limit %.4f)\n", r.name.c_str(), got,
                  want, limit);
    }
  }
  return failures == 0 ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(int argc, char** argv) {
  std::string out_path = "BENCH_pr2.json";
  std::string check_path;
  double tolerance = 15.0;
  int repeats = 3;
  // Default set: the paper-table problems that finish in seconds
  // sequentially, smallest first; trinks1 is the largest seed problem.
  std::vector<std::string> problems = {"morgenstern", "arnborg4", "katsura4",
                                       "trinks2",     "rose",     "trinks1"};

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--check") {
      check_path = next();
    } else if (a == "--tolerance") {
      tolerance = std::strtod(next().c_str(), nullptr);
    } else if (a == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (a == "--problems") {
      problems = split_csv(next());
    } else {
      std::fprintf(stderr,
                   "usage: run_baseline [--out FILE] [--problems a,b,c] [--repeats N]\n"
                   "                    [--check FILE [--tolerance PCT]]\n");
      return 2;
    }
  }

  std::vector<Row> rows;
  for (const std::string& name : problems) {
    if (!has_problem(name)) {
      std::fprintf(stderr, "unknown problem %s\n", name.c_str());
      return 2;
    }
    Row r = measure(name, repeats);
    std::printf("%-12s geo %8.2f ms  naive %8.2f ms  speedup %5.2fx  steps %8llu  "
                "probes %9llu  mask_rejects %9llu  heap_allocs %9llu\n",
                r.name.c_str(), r.wall_ms, r.wall_ms_naive,
                r.wall_ms > 0 ? r.wall_ms_naive / r.wall_ms : 0.0,
                static_cast<unsigned long long>(r.reduction_steps),
                static_cast<unsigned long long>(r.find_reducer_probes),
                static_cast<unsigned long long>(r.mask_rejects),
                static_cast<unsigned long long>(r.bigint_heap_allocs));
    rows.push_back(std::move(r));
  }

  if (!check_path.empty()) return check(rows, check_path, tolerance);
  write_json(rows, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gbd

int main(int argc, char** argv) { return gbd::run(argc, argv); }
