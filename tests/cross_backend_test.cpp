// Cross-backend agreement: the same GL-P worker runs on the deterministic
// SimMachine and on real OS threads (ThreadMachine, PR-3 sharded
// mailboxes). Thread schedules are nondeterministic, so virtual-time
// quantities and per-processor splits may differ — but the *answer* is
// schedule-independent (the reduced Gröbner basis is canonical) and the
// engine's accounting identities must hold on any schedule. This is the
// differential test that the real-concurrency backend implements the same
// protocol, not a lookalike.
#include <gtest/gtest.h>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "obs/metrics.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

void expect_identical_reduced(const PolySystem& sys, const std::vector<Polynomial>& a,
                              const std::vector<Polynomial>& b, const std::string& label) {
  std::vector<Polynomial> ra = reduce_basis(sys.ctx, a);
  std::vector<Polynomial> rb = reduce_basis(sys.ctx, b);
  ASSERT_EQ(ra.size(), rb.size()) << label;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_TRUE(ra[i].equals(rb[i])) << label << " element " << i;
  }
}

void expect_accounting_identities(const ParallelResult& res, const std::string& label) {
  const GbStats& s = res.stats;
  // Every computed s-polynomial either died or joined the basis — on any
  // backend, any schedule.
  EXPECT_EQ(s.spolys_computed, s.reductions_to_zero + s.basis_added) << label;
  EXPECT_GT(s.basis_added, 0u) << label;
  EXPECT_GT(s.work_units, 0u) << label;
}

class CrossBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossBackendTest, SimAndThreadsComputeTheSameBasis) {
  PolySystem sys = load_problem(GetParam());
  ParallelConfig cfg;
  cfg.nprocs = 4;
  ParallelResult sim = groebner_parallel(sys, cfg);
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  std::string why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, sim.basis, &why)) << why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, thr.basis, &why)) << why;
  expect_identical_reduced(sys, sim.basis, thr.basis, GetParam());
  expect_accounting_identities(sim, std::string(GetParam()) + " sim");
  expect_accounting_identities(thr, std::string(GetParam()) + " threads");
}

INSTANTIATE_TEST_SUITE_P(Problems, CrossBackendTest,
                         ::testing::Values("katsura4", "trinks1"));

TEST(CrossBackendTest, ThreadsMatchSimWithWireBatching) {
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.wire.batch_invalidations = true;
  cfg.wire.batch_fetches = true;
  ParallelResult sim = groebner_parallel(sys, cfg);
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  expect_identical_reduced(sys, sim.basis, thr.basis, "batched");
  expect_accounting_identities(thr, "batched threads");
}

TEST(CrossBackendTest, ThreadRunsAgreeWithEachOther) {
  // Different wall-clock schedules, same canonical answer.
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 3;
  ParallelResult a = groebner_parallel_threads(sys, cfg);
  ParallelResult b = groebner_parallel_threads(sys, cfg);
  expect_identical_reduced(sys, a.basis, b.basis, "run-to-run");
}

TEST(CrossBackendTest, ThreadMachineSurfacesMailboxStats) {
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  ParallelResult res = groebner_parallel_threads(sys, cfg);
  ASSERT_EQ(res.machine.mailbox.size(), 4u);
  std::uint64_t enqueues = 0, drained = 0, sent = 0;
  for (const MailboxStats& mb : res.machine.mailbox) {
    enqueues += mb.enqueues;
    drained += mb.drained_messages;
    EXPECT_GE(mb.enqueues, mb.notifies);
    EXPECT_GE(mb.drained_messages, mb.max_drain_batch);
  }
  for (const ProcCommStats& pc : res.machine.per_proc) sent += pc.messages_sent;
  // Every sent message was enqueued in some mailbox. Drains may fall a few
  // short of enqueues: GL-P workers exit on the task-queue termination
  // announcement, so a last ack or steal reply addressed to an
  // already-finished processor stays in its mailbox — the same
  // drop-on-finish semantics the machine has always had.
  EXPECT_EQ(enqueues, sent);
  EXPECT_LE(drained, enqueues);
  EXPECT_GT(drained, 0u);
}

TEST(CrossBackendTest, MetricsSnapshotsHaveIdenticalShape) {
  // The unified registry is the cross-backend reporting surface: both
  // machines must yield the exact same set of series names, each with one
  // slot per processor — including mailbox.*, which required the simulator
  // to start populating MachineStats::mailbox (PR 4 satellite).
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  MetricsRegistry sim_reg(cfg.nprocs);
  MetricsRegistry thr_reg(cfg.nprocs);
  cfg.metrics = &sim_reg;
  ParallelResult sim = groebner_parallel(sys, cfg);
  cfg.metrics = &thr_reg;
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  ASSERT_TRUE(sim.machine.has_mailbox_stats);
  ASSERT_TRUE(thr.machine.has_mailbox_stats);
  ASSERT_EQ(sim.machine.mailbox.size(), 4u);

  MetricsSnapshot a = sim_reg.snapshot();
  MetricsSnapshot b = thr_reg.snapshot();
  std::vector<std::string> a_names, b_names;
  for (const auto& [name, vals] : a.series) {
    a_names.push_back(name);
    EXPECT_EQ(vals.size(), 4u) << name;
  }
  for (const auto& [name, vals] : b.series) {
    b_names.push_back(name);
    EXPECT_EQ(vals.size(), 4u) << name;
  }
  EXPECT_EQ(a_names, b_names);
  EXPECT_NE(a.find("mailbox.enqueues"), nullptr);
  // Schedule-independent identities hold on both backends through the
  // registry as well.
  for (const MetricsSnapshot* s : {&a, &b}) {
    EXPECT_EQ(s->total("gb.spolys_computed"),
              s->total("gb.reductions_to_zero") + s->total("gb.basis_added"));
    EXPECT_EQ(s->total("comm.messages_sent"), s->total("mailbox.enqueues"));
  }
}

}  // namespace
}  // namespace gbd
