// Partitioned-basis pipeline Buchberger — the Siegl-style baseline of §4.1.1
// and §8: "a parallel algorithm employing a ring of reducers with the basis
// partitioned among them".
//
// The basis is partitioned round-robin over P reducer stages arranged in a
// ring. A master pops pairs, gathers the two bodies from their owner stages
// (partitioning means bodies must travel!), computes the s-polynomial and
// injects it into the ring. Each stage head-reduces a visiting polynomial by
// its own partition as long as it can, then forwards it; a polynomial that
// survives a full unproductive lap is a candidate normal form and returns to
// the master, which re-checks it against the full head index (an element
// added behind the token may reduce it — then it goes around again), and
// finally assigns it to a stage and creates new pairs.
//
// Execution is a deterministic virtual-time simulation: stage busy times
// serialize through per-stage clocks, tokens pay per-hop communication, and
// up to `inflight` tokens pipeline concurrently. The quantities the paper's
// replicate-vs-partition analysis predicts — low achievable parallelism
// (total reduction time over max stage time) and communication proportional
// to *all* reduction traffic rather than only to additions — can be read
// directly off the result.
#pragma once

#include "gb/engine_common.hpp"
#include "io/parse.hpp"
#include "machine/cost_model.hpp"

namespace gbd {

struct PipelineConfig {
  GbConfig gb;
  int nstages = 4;
  /// Maximum s-polynomial tokens circulating at once.
  int inflight = 4;
  /// Per-hop communication cost model (same units as everywhere else).
  CostModel cost;
};

struct PipelineResult : GbResult {
  std::uint64_t makespan = 0;
  /// Ring hops taken by polynomial tokens (each hop moves a whole body).
  std::uint64_t token_hops = 0;
  /// Bytes moved around the ring (tokens + body gathers).
  std::uint64_t ring_bytes = 0;
  /// Per-stage busy time; max/total bounds the pipeline's parallelism
  /// exactly as Table 1 measures it.
  std::vector<std::uint64_t> stage_busy;

  double achieved_parallelism() const;
};

PipelineResult groebner_pipeline(const PolySystem& sys, const PipelineConfig& cfg = {});

}  // namespace gbd
