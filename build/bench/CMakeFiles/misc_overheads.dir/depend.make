# Empty dependencies file for misc_overheads.
# This may be replaced when dependencies are built.
