#include "serve/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace gbd {

namespace {

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(const std::string& host, std::uint16_t port, std::string* err,
                          int timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err) *err = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad host: " + host;
    close();
    return false;
  }
  // Retry briefly: the daemon may still be binding when a test dials it.
  std::uint64_t deadline = mono_ms() + static_cast<std::uint64_t>(timeout_ms);
  while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (mono_ms() >= deadline) {
      if (err) *err = "connect: " + std::string(std::strerror(errno));
      close();
      return false;
    }
    ::usleep(10'000);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  dec_ = FrameDecoder(64u << 20);
}

bool ServeClient::send_frame(std::uint8_t type, std::vector<std::uint8_t> payload) {
  if (fd_ < 0) return false;
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload = std::move(payload);
  std::vector<std::uint8_t> bytes = encode_frame(f);
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      close();
      return false;
    }
  }
  return true;
}

bool ServeClient::submit(const SubmitRequest& req) {
  Writer w;
  req.encode(w);
  return send_frame(static_cast<std::uint8_t>(FrameType::kJobSubmit), w.take());
}

bool ServeClient::cancel(std::uint64_t token) {
  Writer w;
  w.u64(token);
  return send_frame(static_cast<std::uint8_t>(FrameType::kJobCancel), w.take());
}

bool ServeClient::request_stats() {
  return send_frame(static_cast<std::uint8_t>(FrameType::kServerStats), {});
}

int ServeClient::poll(ClientUpdate* out, int timeout_ms) {
  if (fd_ < 0) return -1;
  std::uint64_t deadline = mono_ms() + static_cast<std::uint64_t>(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    Frame f;
    FrameDecoder::Status st = dec_.next(&f);
    if (st == FrameDecoder::Status::kError) {
      close();
      return -1;
    }
    if (st == FrameDecoder::Status::kFrame) {
      SafeReader r(f.payload.data(), f.payload.size());
      switch (f.type) {
        case FrameType::kJobEvent:
          out->kind = ClientUpdate::Kind::kEvent;
          if (!JobEventMsg::decode(r, &out->event)) break;
          return 1;
        case FrameType::kJobResult:
          out->kind = ClientUpdate::Kind::kResult;
          if (!JobResultMsg::decode(r, &out->result)) break;
          return 1;
        case FrameType::kServerStats:
          out->kind = ClientUpdate::Kind::kStats;
          if (!ServerStatsMsg::decode(r, &out->stats)) break;
          return 1;
        default:
          break;
      }
      close();  // malformed or unexpected server message
      return -1;
    }
    std::uint64_t now = mono_ms();
    if (now >= deadline) return 0;
    pollfd p{fd_, POLLIN, 0};
    int pr = ::poll(&p, 1, static_cast<int>(deadline - now));
    if (pr < 0 && errno != EINTR) {
      close();
      return -1;
    }
    if (pr <= 0) continue;
    std::uint8_t buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      dec_.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      close();
      return -1;
    }
  }
}

bool ServeClient::wait_result(std::uint64_t token, JobResultMsg* out, int timeout_ms,
                              const std::function<void(const JobEventMsg&)>& on_event) {
  std::uint64_t deadline = mono_ms() + static_cast<std::uint64_t>(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    std::uint64_t now = mono_ms();
    if (now >= deadline) return false;
    ClientUpdate u;
    int pr = poll(&u, static_cast<int>(deadline - now));
    if (pr <= 0) return false;
    if (u.kind == ClientUpdate::Kind::kResult && u.result.token == token) {
      *out = std::move(u.result);
      return true;
    }
    if (u.kind == ClientUpdate::Kind::kEvent && on_event) on_event(u.event);
  }
}

bool ServeClient::stats(ServerStatsMsg* out, int timeout_ms,
                        const std::function<void(const ClientUpdate&)>& on_update) {
  if (!request_stats()) return false;
  std::uint64_t deadline = mono_ms() + static_cast<std::uint64_t>(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    std::uint64_t now = mono_ms();
    if (now >= deadline) return false;
    ClientUpdate u;
    int pr = poll(&u, static_cast<int>(deadline - now));
    if (pr <= 0) return false;
    if (u.kind == ClientUpdate::Kind::kStats) {
      *out = u.stats;
      return true;
    }
    if (on_update) on_update(u);
  }
}

}  // namespace gbd
