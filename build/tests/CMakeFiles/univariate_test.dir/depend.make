# Empty dependencies file for univariate_test.
# This may be replaced when dependencies are built.
