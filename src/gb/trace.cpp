#include "gb/trace.hpp"

#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

std::size_t RunTrace::total_tasks() const {
  std::size_t n = 0;
  for (const auto& p : procs) n += p.tasks.size();
  return n;
}

ReplayResult replay_trace(const PolyContext& ctx, const RunTrace& trace,
                          const std::map<PolyId, Polynomial>& bodies) {
  ReplayResult res;
  CostScope total;

  auto body = [&](PolyId id) -> const Polynomial& {
    auto it = bodies.find(id);
    GBD_CHECK_MSG(it != bodies.end(), "trace references an unknown polynomial id");
    return it->second;
  };

  // "Appropriately merged": tasks are replayed processor by processor; any
  // merge order re-executes the same algebra, since each task's inputs are
  // final basis elements.
  for (const auto& proc : trace.procs) {
    for (const auto& task : proc.tasks) {
      Polynomial h = spoly(ctx, body(task.a), body(task.b));
      for (PolyId rid : task.reducers) {
        const Polynomial& r = body(rid);
        GBD_CHECK_MSG(!h.is_zero(), "trace applies a reducer to the zero polynomial");
        GBD_CHECK_MSG(r.hmono().divides(h.hmono()),
                      "recorded reducer no longer cancels the head — invalid parallel run");
        h = reduce_step(ctx, h, r);
        h.make_primitive();
        res.reduction_steps += 1;
      }
      if (task.added) {
        GBD_CHECK_MSG(!h.is_zero(), "trace says added but replay reached zero");
        GBD_CHECK_MSG(h.equals(body(task.result)),
                      "replayed normal form differs from the recorded basis element");
      } else {
        GBD_CHECK_MSG(h.is_zero(), "trace says zeroed but replay reached a nonzero form");
      }
      res.tasks_replayed += 1;
    }
  }
  res.work_units = total.elapsed();
  return res;
}

}  // namespace gbd
