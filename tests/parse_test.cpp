// Tests for the polynomial-system text parser.
#include "io/parse.hpp"

#include <gtest/gtest.h>

namespace gbd {
namespace {

PolyContext ctx2() { return PolyContext{{"x", "y"}, OrderKind::kGrLex}; }

TEST(ParsePolyTest, SimpleTerms) {
  PolyContext c = ctx2();
  EXPECT_EQ(parse_poly_or_die(c, "x").to_string(c), "x");
  EXPECT_EQ(parse_poly_or_die(c, "3*x").to_string(c), "3*x");
  EXPECT_EQ(parse_poly_or_die(c, "x^3").to_string(c), "x^3");
  EXPECT_EQ(parse_poly_or_die(c, "7").to_string(c), "7");
  EXPECT_EQ(parse_poly_or_die(c, "0").to_string(c), "0");
}

TEST(ParsePolyTest, SumsAndSigns) {
  PolyContext c = ctx2();
  EXPECT_EQ(parse_poly_or_die(c, "x + y").to_string(c), "x + y");
  // Integer polynomials are preserved exactly as written (no sign or
  // content normalization happens at parse time).
  EXPECT_EQ(parse_poly_or_die(c, "-x + y").to_string(c), "-x + y");
  EXPECT_EQ(parse_poly_or_die(c, "x - x").to_string(c), "0");
  EXPECT_EQ(parse_poly_or_die(c, "- x - 1").to_string(c), "-x - 1");
  EXPECT_EQ(parse_poly_or_die(c, "6*x + 4*y").to_string(c), "6*x + 4*y");
}

TEST(ParsePolyTest, RationalCoefficientsClearToPrimitive) {
  PolyContext c = ctx2();
  // 1/2 x + 1/3 y -> 3x + 2y (primitive integer associate).
  EXPECT_EQ(parse_poly_or_die(c, "1/2*x + 1/3*y").to_string(c), "3*x + 2*y");
  EXPECT_EQ(parse_poly_or_die(c, "2/4*x").to_string(c), "x");
}

TEST(ParsePolyTest, ParenthesesAndProducts) {
  PolyContext c = ctx2();
  EXPECT_EQ(parse_poly_or_die(c, "(x + y)*(x - y)").to_string(c), "x^2 - y^2");
  EXPECT_EQ(parse_poly_or_die(c, "(x + y)^2").to_string(c), "x^2 + 2*x*y + y^2");
  EXPECT_EQ(parse_poly_or_die(c, "(x + 1)^0").to_string(c), "1");
  EXPECT_EQ(parse_poly_or_die(c, "2*(x + y) - (x - y)").to_string(c), "x + 3*y");
}

TEST(ParsePolyTest, SlashOnlyInNumericLiteral) {
  PolyContext c = ctx2();
  Polynomial p;
  std::string err;
  EXPECT_FALSE(parse_poly(c, "x/2", &p, &err));  // '/' is not a polynomial operator
}

TEST(ParsePolyTest, Errors) {
  PolyContext c = ctx2();
  Polynomial p;
  std::string err;
  EXPECT_FALSE(parse_poly(c, "", &p, &err));
  EXPECT_FALSE(parse_poly(c, "w + 1", &p, &err));
  EXPECT_NE(err.find("unknown variable"), std::string::npos);
  EXPECT_FALSE(parse_poly(c, "x +", &p, &err));
  EXPECT_FALSE(parse_poly(c, "(x", &p, &err));
  EXPECT_FALSE(parse_poly(c, "x ^ y", &p, &err));
  EXPECT_FALSE(parse_poly(c, "1/0", &p, &err));
  EXPECT_FALSE(parse_poly(c, "x y", &p, &err));  // implicit product not allowed
}

TEST(ParseSystemTest, FullSystem) {
  PolySystem sys;
  std::string err;
  const char* text = R"(
    name demo;
    vars x, y, z;
    order grevlex;
    # a comment
    x^2 + y^2 + z^2 - 1;
    x - y;
  )";
  ASSERT_TRUE(parse_system(text, &sys, &err)) << err;
  EXPECT_EQ(sys.name, "demo");
  EXPECT_EQ(sys.ctx.vars, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(sys.ctx.order, OrderKind::kGRevLex);
  ASSERT_EQ(sys.polys.size(), 2u);
}

TEST(ParseSystemTest, DefaultsToGrlex) {
  PolySystem sys;
  std::string err;
  ASSERT_TRUE(parse_system("vars x; x^2 - 1;", &sys, &err)) << err;
  EXPECT_EQ(sys.ctx.order, OrderKind::kGrLex);
  EXPECT_TRUE(sys.name.empty());
}

TEST(ParseSystemTest, Errors) {
  PolySystem sys;
  std::string err;
  EXPECT_FALSE(parse_system("x + 1;", &sys, &err));  // no vars decl
  EXPECT_FALSE(parse_system("vars x, x; x;", &sys, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
  EXPECT_FALSE(parse_system("vars x; order nope; x;", &sys, &err));
  EXPECT_FALSE(parse_system("vars x; x + 1", &sys, &err));  // missing ';'
}

TEST(ParseSystemTest, RoundTripThroughText) {
  PolySystem sys;
  std::string err;
  ASSERT_TRUE(parse_system("name t; vars x, y; order lex; x^2 - y; 3*x*y + 1;", &sys, &err))
      << err;
  std::string text = to_text(sys);
  PolySystem back;
  ASSERT_TRUE(parse_system(text, &back, &err)) << err << "\n" << text;
  EXPECT_EQ(back.name, sys.name);
  EXPECT_EQ(back.ctx.vars, sys.ctx.vars);
  EXPECT_EQ(back.ctx.order, sys.ctx.order);
  ASSERT_EQ(back.polys.size(), sys.polys.size());
  for (std::size_t i = 0; i < sys.polys.size(); ++i) {
    EXPECT_TRUE(back.polys[i].equals(sys.polys[i])) << i;
  }
}

}  // namespace
}  // namespace gbd

namespace gbd {
namespace {

TEST(ParseErrorPositionTest, ReportsLineAndColumn) {
  PolySystem sys;
  std::string err;
  ASSERT_FALSE(parse_system("vars x, y;\nx + w;\n", &sys, &err));
  EXPECT_NE(err.find("unknown variable 'w'"), std::string::npos);
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(ParseErrorPositionTest, FirstErrorWins) {
  PolyContext c{{"x"}, OrderKind::kGrLex};
  Polynomial p;
  std::string err;
  ASSERT_FALSE(parse_poly(c, "x + q + r", &p, &err));
  EXPECT_NE(err.find("'q'"), std::string::npos);
  EXPECT_EQ(err.find("'r'"), std::string::npos);
}

TEST(ParsePolyTest, LargeExponentAndCoefficients) {
  PolyContext c{{"x"}, OrderKind::kGrLex};
  Polynomial p = parse_poly_or_die(c, "123456789012345678901234567890*x^200 - 1");
  EXPECT_EQ(p.degree(), 200u);
  EXPECT_EQ(p.hcoef().to_string(), "123456789012345678901234567890");
  // Exponent overflow is rejected, not wrapped.
  Polynomial q;
  std::string err;
  EXPECT_FALSE(parse_poly(c, "x^99999999999", &q, &err));
}

TEST(ParsePolyTest, DeepNesting) {
  PolyContext c{{"x"}, OrderKind::kGrLex};
  Polynomial p = parse_poly_or_die(c, "((((x + 1))))^2 - (x^2 + 2*x + 1)");
  EXPECT_TRUE(p.is_zero());
}

}  // namespace
}  // namespace gbd
