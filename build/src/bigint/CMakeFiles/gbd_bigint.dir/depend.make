# Empty dependencies file for gbd_bigint.
# This may be replaced when dependencies are built.
