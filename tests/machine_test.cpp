// Tests for the virtual distributed-memory machine: both the real-thread
// implementation and the deterministic discrete-event simulator.
#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "machine/sim_machine.hpp"
#include "machine/thread_machine.hpp"
#include "support/cost.hpp"

namespace gbd {
namespace {

enum Handlers : HandlerId { kPing = 0, kPong = 1, kData = 2 };

std::unique_ptr<Machine> make_machine(bool sim, int p, CostModel cm = CostModel{}) {
  if (sim) return std::make_unique<SimMachine>(p, cm);
  return std::make_unique<ThreadMachine>(p);
}

// Parameterized over implementation so every behavior test runs on both.
class MachineTest : public ::testing::TestWithParam<bool> {
 protected:
  bool sim() const { return GetParam(); }
};

TEST_P(MachineTest, SingleProcRunsToCompletion) {
  auto m = make_machine(sim(), 1);
  int visits = 0;
  auto stats = m->run([&](Proc& self) {
    EXPECT_EQ(self.id(), 0);
    EXPECT_EQ(self.nprocs(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
  EXPECT_EQ(stats.per_proc.size(), 1u);
}

TEST_P(MachineTest, PingPongRoundTrip) {
  auto m = make_machine(sim(), 2);
  std::atomic<int> pongs{0};
  m->run([&](Proc& self) {
    bool got_reply = false;
    self.on(kPing, [](Proc& p, int src, Reader& r) {
      std::uint64_t v = r.u64();
      Writer w;
      w.u64(v + 1);
      p.send(src, kPong, w.take());
    });
    self.on(kPong, [&](Proc&, int, Reader& r) {
      EXPECT_EQ(r.u64(), 43u);
      got_reply = true;
      ++pongs;
    });
    if (self.id() == 0) {
      Writer w;
      w.u64(42);
      self.send(1, kPing, w.take());
      while (!got_reply) {
        if (!self.wait()) break;
      }
      EXPECT_TRUE(got_reply);
    } else {
      // Serve until quiescence.
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(pongs.load(), 1);
}

TEST_P(MachineTest, QuiescenceReleasesAllWaiters) {
  auto m = make_machine(sim(), 4);
  std::atomic<int> released{0};
  m->run([&](Proc& self) {
    self.on(kData, [](Proc&, int, Reader&) {});
    // Nobody ever sends: wait() must return false everywhere, not hang.
    EXPECT_FALSE(self.wait());
    ++released;
  });
  EXPECT_EQ(released.load(), 4);
}

TEST_P(MachineTest, BroadcastGather) {
  const int kP = 5;
  auto m = make_machine(sim(), kP);
  std::vector<std::uint64_t> received(kP, 0);
  m->run([&](Proc& self) {
    int acks = 0;
    std::uint64_t sum = 0;
    self.on(kData, [&](Proc& p, int src, Reader& r) {
      sum += r.u64();
      if (p.id() != 0) {
        // Echo to the root.
        Writer w;
        w.u64(static_cast<std::uint64_t>(p.id()) * 100);
        p.send(0, kPong, w.take());
      }
      (void)src;
    });
    self.on(kPong, [&](Proc&, int, Reader& r) {
      sum += r.u64();
      ++acks;
    });
    if (self.id() == 0) {
      for (int d = 1; d < kP; ++d) {
        Writer w;
        w.u64(7);
        self.send(d, kData, w.take());
      }
      while (acks < kP - 1) {
        ASSERT_TRUE(self.wait());
      }
      received[0] = sum;  // 100+200+300+400 = 1000
    } else {
      while (self.wait()) {
      }
      received[static_cast<std::size_t>(self.id())] = sum;
    }
  });
  EXPECT_EQ(received[0], 1000u);
  for (int i = 1; i < kP; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], 7u);
}

TEST_P(MachineTest, SelfSendDelivered) {
  auto m = make_machine(sim(), 1);
  int got = 0;
  m->run([&](Proc& self) {
    self.on(kData, [&](Proc&, int src, Reader&) {
      EXPECT_EQ(src, 0);
      ++got;
    });
    self.send(0, kData, {});
    ASSERT_TRUE(self.wait());
  });
  EXPECT_EQ(got, 1);
}

TEST_P(MachineTest, CommStatsCounted) {
  auto m = make_machine(sim(), 2);
  auto stats = m->run([&](Proc& self) {
    self.on(kData, [](Proc&, int, Reader&) {});
    if (self.id() == 0) {
      self.send(1, kData, std::vector<std::uint8_t>(100));
      self.send(1, kData, std::vector<std::uint8_t>(50));
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(stats.per_proc[0].messages_sent, 2u);
  EXPECT_EQ(stats.per_proc[0].bytes_sent, 150u);
  EXPECT_EQ(stats.per_proc[1].messages_received, 2u);
}

TEST_P(MachineTest, HandlersMaySendChains) {
  // 0 -> 1 -> 2 -> 3 relay, each hop forwarding from inside the handler.
  const int kP = 4;
  auto m = make_machine(sim(), kP);
  std::atomic<int> final_dst{-1};
  m->run([&](Proc& self) {
    bool done = false;
    self.on(kData, [&](Proc& p, int, Reader& r) {
      std::uint64_t hops = r.u64();
      if (p.id() + 1 < p.nprocs()) {
        Writer w;
        w.u64(hops + 1);
        p.send(p.id() + 1, kData, w.take());
      } else {
        EXPECT_EQ(hops, 3u);
        final_dst = p.id();
      }
      done = true;
    });
    if (self.id() == 0) {
      Writer w;
      w.u64(1);
      self.send(1, kData, w.take());
    }
    while (!done && self.wait()) {
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(final_dst.load(), 3);
}

INSTANTIATE_TEST_SUITE_P(Impls, MachineTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sim" : "Threads";
                         });

// ---------------------------------------------------------------------------
// Simulator-specific: virtual time, determinism, idle accounting.

TEST(SimMachineTest, VirtualTimeAdvancesByCharge) {
  SimMachine m(1, CostModel::free());
  std::uint64_t end = 0;
  m.run_sim([&](Proc& self) {
    EXPECT_EQ(self.now(), 0u);
    self.charge(100);
    EXPECT_EQ(self.now(), 100u);
    CostCounter::charge(50);  // kernel-style implicit work
    EXPECT_EQ(self.now(), 150u);
    end = self.now();
  });
  EXPECT_EQ(end, 150u);
}

TEST(SimMachineTest, MessageTimingFollowsCostModel) {
  CostModel cm;
  cm.latency = 1000;
  cm.units_per_16_bytes = 16;  // 1 unit per byte
  cm.dispatch = 10;
  cm.inject = 5;
  SimMachine m(2, cm);
  std::uint64_t recv_time = 0;
  auto stats = m.run_sim([&](Proc& self) {
    self.on(kData, [&](Proc& p, int, Reader&) { recv_time = p.now(); });
    if (self.id() == 0) {
      self.send(1, kData, std::vector<std::uint8_t>(32));
    } else {
      while (self.wait()) {
      }
    }
  });
  // Sender: inject ends at 5; arrival = 5 + 1000 + 32 = 1037. Receiver idles
  // to 1037, pays dispatch 10, reads now() inside the handler = 1047.
  EXPECT_EQ(recv_time, 1047u);
  EXPECT_EQ(stats.per_proc[1].idle_units, 1037u);
}

TEST(SimMachineTest, LowestClockRunsFirst) {
  // Proc 1 charges less, so its sends should land before proc 2's at proc 0,
  // regardless of host thread scheduling.
  CostModel cm = CostModel::free();
  SimMachine m(3, cm);
  std::vector<int> arrival_order;
  m.run_sim([&](Proc& self) {
    self.on(kData, [&](Proc&, int src, Reader&) { arrival_order.push_back(src); });
    if (self.id() == 0) {
      while (self.wait()) {
      }
    } else {
      self.charge(self.id() == 1 ? 10 : 1000);
      self.send(0, kData, {});
    }
  });
  ASSERT_EQ(arrival_order.size(), 2u);
  EXPECT_EQ(arrival_order[0], 1);
  EXPECT_EQ(arrival_order[1], 2);
}

TEST(SimMachineTest, DeterministicAcrossRuns) {
  auto one_run = [] {
    SimMachine m(4);
    std::vector<std::uint64_t> trace;
    auto stats = m.run_sim([&](Proc& self) {
      self.on(kData, [&](Proc& p, int src, Reader& r) {
        std::uint64_t v = r.u64();
        trace.push_back(v * 1000 + static_cast<std::uint64_t>(src));
        if (v < 8) {
          CostCounter::charge((v * 37 + static_cast<std::uint64_t>(p.id())) % 97);
          Writer w;
          w.u64(v + 1);
          p.send(static_cast<int>((v + static_cast<std::uint64_t>(p.id())) % 4), kData,
                 w.take());
        }
      });
      if (self.id() == 0) {
        Writer w;
        w.u64(0);
        self.send(1, kData, w.take());
        w.u64(0);
        self.send(2, kData, w.take());
      }
      while (self.wait()) {
      }
    });
    trace.push_back(stats.makespan);
    return trace;
  };
  auto t1 = one_run();
  auto t2 = one_run();
  auto t3 = one_run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t3);
}

TEST(SimMachineTest, MakespanIsMaxClock) {
  SimMachine m(3, CostModel::free());
  auto stats = m.run_sim([&](Proc& self) {
    self.charge(static_cast<std::uint64_t>(self.id()) * 500 + 100);
  });
  EXPECT_EQ(stats.makespan, 1100u);
  ASSERT_EQ(stats.proc_clocks.size(), 3u);
  EXPECT_EQ(stats.proc_clocks[0], 100u);
  EXPECT_EQ(stats.proc_clocks[2], 1100u);
}

TEST(SimMachineTest, ParallelWorkOverlapsInVirtualTime) {
  // P independent workers each charging W: makespan must be W, not P·W —
  // the whole point of virtual time.
  SimMachine m(8, CostModel::free());
  auto stats = m.run_sim([&](Proc& self) {
    (void)self;
    CostCounter::charge(10000);
  });
  EXPECT_EQ(stats.makespan, 10000u);
}

}  // namespace
}  // namespace gbd
