// Runtime-dispatched SIMD lanes for the Zp echelon sweep (echelon.hpp).
//
// The scalar Zp kernel pays one Montgomery REDC (two 64x64 multiplies) per
// pivot term, walking a sparse column-index array. The vector kernel streams
// the GBLA-style "multiline" pivot runs (matrix.hpp) through a *delayed
// reduction* AXPY instead: accumulator lanes hold arbitrary 64-bit values
// that are only *congruent* mod p to the true entries, each lane update is
// one 32x32→64 multiply plus a wrap correction, and normalization (`% p`)
// happens once per cell when the cell is read — not once per update.
//
// Overflow-budget argument (the reason the dispatch demands p < 2^32):
// an AXPY adds prod = fneg·coeff ≤ (p−1)² to a lane. If the 64-bit addition
// wraps, the lane now holds true_value − 2^64; adding r64 = 2^64 mod p
// restores the congruence. The correction itself cannot wrap again: a lane
// that just wrapped is < prod ≤ (p−1)², and (p−1)² + p < 2^64 whenever
// p < 2^32. So one conditional correction per lane per update keeps every
// lane exact mod p with no budget counter and no mid-sweep normalization
// passes. For p ≥ 2^32 the products do not fit a 64-bit lane and the
// Montgomery scalar kernel (the PR-7 oracle) is used instead.
//
// Dispatch: CPUID at first use (AVX2), overridable at runtime with the
// GBD_DISABLE_SIMD environment variable (any non-empty value forces scalar;
// re-read on every simd_level() call so tests can flip it), and at compile
// time with -DGBD_DISABLE_SIMD. The scalar lane kernel performs the
// identical delayed-reduction arithmetic and is the differential oracle for
// the vector one; both produce the same canonical residues as the Montgomery
// kernel, so every dispatch choice yields bit-identical polynomials.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gbd {

enum class SimdLevel : std::uint8_t {
  kScalar = 0,  ///< delayed-reduction lane math, one lane at a time
  kAvx2 = 1,    ///< 4 lanes per step (vpmuludq + wrap-correct)
};

/// CPU capability probes (x86 CPUID; false elsewhere). AVX-512 is detected
/// for reporting only — the vector kernel targets AVX2.
bool cpu_has_avx2();
bool cpu_has_avx512();

/// The level the Zp sweep will dispatch to right now: kAvx2 iff the CPU has
/// it, the build did not define GBD_DISABLE_SIMD, and the GBD_DISABLE_SIMD
/// environment variable is unset/empty (checked on every call).
SimdLevel simd_level();

const char* simd_level_name(SimdLevel level);

/// Delayed-reduction AXPY over one multiline run:
///   acc[i] ← acc[i] + fneg·coeffs[i]   (as values mod p; lanes mod 2^64)
/// for i in [0, n). Preconditions: fneg and every coeffs[i] are canonical
/// residues of a prime p < 2^32, and r64 == 2^64 mod p. Lanes of `acc` may
/// hold any 64-bit value congruent to the true entry; the postcondition is
/// the same congruence (see the overflow-budget argument above).
void zp_axpy_delayed(std::uint64_t* acc, const std::uint32_t* coeffs, std::size_t n,
                     std::uint64_t fneg, std::uint64_t r64, SimdLevel level);

/// The scalar reference for zp_axpy_delayed — exposed so the differential
/// tests can pit the vector path against it lane for lane.
void zp_axpy_delayed_scalar(std::uint64_t* acc, const std::uint32_t* coeffs, std::size_t n,
                            std::uint64_t fneg, std::uint64_t r64);

}  // namespace gbd
