// Cross-backend agreement: the same GL-P worker runs on the deterministic
// SimMachine and on real OS threads (ThreadMachine, PR-3 sharded
// mailboxes). Thread schedules are nondeterministic, so virtual-time
// quantities and per-processor splits may differ — but the *answer* is
// schedule-independent (the reduced Gröbner basis is canonical) and the
// engine's accounting identities must hold on any schedule. This is the
// differential test that the real-concurrency backend implements the same
// protocol, not a lookalike.
#include <sys/wait.h>

#include <cstdio>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "gb/modular.hpp"
#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "net/net_engine.hpp"
#include "obs/metrics.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"
#include "support/serialize.hpp"

namespace gbd {
namespace {

void expect_identical_reduced(const PolySystem& sys, const std::vector<Polynomial>& a,
                              const std::vector<Polynomial>& b, const std::string& label) {
  std::vector<Polynomial> ra = reduce_basis(sys.ctx, a);
  std::vector<Polynomial> rb = reduce_basis(sys.ctx, b);
  ASSERT_EQ(ra.size(), rb.size()) << label;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_TRUE(ra[i].equals(rb[i])) << label << " element " << i;
  }
}

void expect_accounting_identities(const ParallelResult& res, const std::string& label) {
  const GbStats& s = res.stats;
  // Every computed s-polynomial either died or joined the basis — on any
  // backend, any schedule.
  EXPECT_EQ(s.spolys_computed, s.reductions_to_zero + s.basis_added) << label;
  EXPECT_GT(s.basis_added, 0u) << label;
  EXPECT_GT(s.work_units, 0u) << label;
}

class CrossBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossBackendTest, SimAndThreadsComputeTheSameBasis) {
  PolySystem sys = load_problem(GetParam());
  ParallelConfig cfg;
  cfg.nprocs = 4;
  ParallelResult sim = groebner_parallel(sys, cfg);
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  std::string why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, sim.basis, &why)) << why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, thr.basis, &why)) << why;
  expect_identical_reduced(sys, sim.basis, thr.basis, GetParam());
  expect_accounting_identities(sim, std::string(GetParam()) + " sim");
  expect_accounting_identities(thr, std::string(GetParam()) + " threads");
}

INSTANTIATE_TEST_SUITE_P(Problems, CrossBackendTest,
                         ::testing::Values("katsura4", "trinks1"));

TEST(CrossBackendTest, ThreadsMatchSimWithWireBatching) {
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.wire.batch_invalidations = true;
  cfg.wire.batch_fetches = true;
  ParallelResult sim = groebner_parallel(sys, cfg);
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  expect_identical_reduced(sys, sim.basis, thr.basis, "batched");
  expect_accounting_identities(thr, "batched threads");
}

TEST(CrossBackendTest, ThreadRunsAgreeWithEachOther) {
  // Different wall-clock schedules, same canonical answer.
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 3;
  ParallelResult a = groebner_parallel_threads(sys, cfg);
  ParallelResult b = groebner_parallel_threads(sys, cfg);
  expect_identical_reduced(sys, a.basis, b.basis, "run-to-run");
}

TEST(CrossBackendTest, ThreadMachineSurfacesMailboxStats) {
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  ParallelResult res = groebner_parallel_threads(sys, cfg);
  ASSERT_EQ(res.machine.mailbox.size(), 4u);
  std::uint64_t enqueues = 0, drained = 0, sent = 0;
  for (const MailboxStats& mb : res.machine.mailbox) {
    enqueues += mb.enqueues;
    drained += mb.drained_messages;
    EXPECT_GE(mb.enqueues, mb.notifies);
    EXPECT_GE(mb.drained_messages, mb.max_drain_batch);
  }
  for (const ProcCommStats& pc : res.machine.per_proc) sent += pc.messages_sent;
  // Every sent message was enqueued in some mailbox. Drains may fall a few
  // short of enqueues: GL-P workers exit on the task-queue termination
  // announcement, so a last ack or steal reply addressed to an
  // already-finished processor stays in its mailbox — the same
  // drop-on-finish semantics the machine has always had.
  EXPECT_EQ(enqueues, sent);
  EXPECT_LE(drained, enqueues);
  EXPECT_GT(drained, 0u);
}

// ---------------------------------------------------------------------------
// Third backend: one OS process per rank over loopback TCP (src/net/).
// ---------------------------------------------------------------------------

struct SocketRunResult {
  bool ok = false;
  std::vector<Polynomial> basis;
  std::uint64_t sent = 0;      ///< sum of per-rank envelopes sent
  std::uint64_t received = 0;  ///< sum of per-rank envelopes delivered
};

/// Fork `nprocs` real processes, run GL-P over sockets, and recover rank 0's
/// merged result through a temp file (children cannot return objects). The
/// per-rank ProcCommStats come back too: rank 0's exit handshake collects
/// every rank's counters, which is what makes the conservation law checkable
/// from one process.
SocketRunResult run_socket_backend(const PolySystem& sys, int nprocs, int base_port) {
  std::string path = "/tmp/gbd_xbk_" + std::to_string(::getpid()) + "_" +
                     std::to_string(base_port) + ".bin";
  std::vector<pid_t> pids;
  for (int r = 0; r < nprocs; ++r) {
    pid_t pid = ::fork();
    if (pid == 0) {
      SocketMachineConfig mc;
      mc.net.rank = r;
      mc.net.nprocs = nprocs;
      for (int i = 0; i < nprocs; ++i) {
        NetEndpoint ep;
        ep.host = "127.0.0.1";
        ep.port = static_cast<std::uint16_t>(base_port + i);
        mc.net.peers.push_back(ep);
      }
      SocketMachine machine(mc);
      ParallelConfig cfg;
      cfg.nprocs = nprocs;
      ParallelResult res;
      try {
        res = groebner_parallel_socket(machine, sys, cfg);
      } catch (const NetError& e) {
        std::fprintf(stderr, "rank %d: %s\n", r, e.what());
        ::_exit(3);
      }
      if (r != 0) ::_exit(0);
      Writer w;
      w.u32(static_cast<std::uint32_t>(res.basis.size()));
      for (const Polynomial& p : res.basis) p.write(w);
      std::uint64_t sent = 0, received = 0;
      for (const ProcCommStats& pc : res.machine.per_proc) {
        sent += pc.messages_sent;
        received += pc.messages_received;
      }
      w.u64(sent);
      w.u64(received);
      std::vector<std::uint8_t> bytes = w.take();
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      out.close();  // _exit skips destructors; flush explicitly
      ::_exit(out ? 0 : 1);
    }
    pids.push_back(pid);
  }
  SocketRunResult result;
  result.ok = true;
  for (pid_t pid : pids) {
    int st = 0;
    ::waitpid(pid, &st, 0);
    result.ok = result.ok && WIFEXITED(st) && WEXITSTATUS(st) == 0;
  }
  if (!result.ok) return result;
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  Reader rd(bytes);
  std::uint32_t n = rd.u32();
  for (std::uint32_t i = 0; i < n; ++i) result.basis.push_back(Polynomial::read(rd));
  result.sent = rd.u64();
  result.received = rd.u64();
  result.ok = rd.done();
  return result;
}

int xbk_port(int salt) { return 24100 + static_cast<int>(::getpid() % 17000) + salt; }

// The full three-way differential: simulator, threads and sockets reduce to
// the *identical* canonical basis at P=2 and P=4, and the socket backend's
// gathered counters conserve envelopes (everything sent across process
// boundaries was delivered somewhere — quiescence guarantees no residue).
TEST(CrossBackendTest, SimThreadsAndSocketsComputeTheSameBasis) {
  PolySystem sys = load_problem("katsura4");
  int salt = 0;
  for (int nprocs : {2, 4}) {
    ParallelConfig cfg;
    cfg.nprocs = nprocs;
    ParallelResult sim = groebner_parallel(sys, cfg);
    ParallelResult thr = groebner_parallel_threads(sys, cfg);
    SocketRunResult sock = run_socket_backend(sys, nprocs, xbk_port(salt));
    salt += nprocs + 1;
    ASSERT_TRUE(sock.ok) << "socket run failed at P=" << nprocs;
    std::string label = "P=" + std::to_string(nprocs);
    expect_identical_reduced(sys, sim.basis, thr.basis, label + " sim/threads");
    expect_identical_reduced(sys, sim.basis, sock.basis, label + " sim/sockets");
    EXPECT_EQ(sock.sent, sock.received) << label << " envelope conservation across ranks";
    EXPECT_GT(sock.sent, 0u) << label;
  }
}

TEST(CrossBackendTest, SocketsMatchSimOnTrinks1) {
  PolySystem sys = load_problem("trinks1");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  ParallelResult sim = groebner_parallel(sys, cfg);
  SocketRunResult sock = run_socket_backend(sys, 4, xbk_port(97));
  ASSERT_TRUE(sock.ok);
  std::string why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, sock.basis, &why)) << why;
  expect_identical_reduced(sys, sim.basis, sock.basis, "trinks1 sim/sockets");
  EXPECT_EQ(sock.sent, sock.received);
}

// ---------------------------------------------------------------------------
// Multi-modular driver: the per-prime jobs dispatch onto each backend in
// turn, and the certified lifted basis must be identical everywhere.
// ---------------------------------------------------------------------------

TEST(CrossBackendTest, ModularDriverAgreesAcrossAllBackends) {
  PolySystem sys = load_problem("katsura4");
  std::vector<Polynomial> exact = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  int salt = 600;
  for (int nprocs : {2, 4}) {
    for (ModularBackend backend :
         {ModularBackend::kSequential, ModularBackend::kSim, ModularBackend::kThread,
          ModularBackend::kSocket}) {
      ModularConfig cfg;
      cfg.backend = backend;
      cfg.nprocs = nprocs;
      cfg.initial_primes = 2;
      cfg.max_primes = 6;
      cfg.socket_base_port = xbk_port(salt);
      salt += 64;  // room for nprocs ports per prime job
      ModularResult res = groebner_multimodular(sys, cfg);
      std::string label =
          std::string("modular ") + modular_backend_name(backend) + " P=" + std::to_string(nprocs);
      EXPECT_TRUE(res.stats.verified) << label;
      EXPECT_FALSE(res.stats.used_exact_fallback) << label;
      ASSERT_EQ(res.basis.size(), exact.size()) << label;
      for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_TRUE(res.basis[i].equals(exact[i])) << label << " element " << i;
      }
    }
  }
}

TEST(CrossBackendTest, ModularDriverSurvivesChaosAndInjectedFaults) {
  // Level-1 chaos jitters the simulated machine under every per-prime GL-P
  // job while the fault drill kills each job's early attempts outright. The
  // driver must retry the jobs, still certify, and land on the exact basis.
  PolySystem sys = load_problem("arnborg4");
  std::vector<Polynomial> exact = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ModularConfig cfg;
  cfg.backend = ModularBackend::kSim;
  cfg.nprocs = 4;
  cfg.chaos = ChaosConfig::intensity(1, 42);
  cfg.fault_permille = 1000;  // every attempt but the last allowed one fails
  cfg.max_job_retries = 2;
  cfg.initial_primes = 2;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  EXPECT_GE(res.stats.jobs_retried, 2u * cfg.initial_primes);
  ASSERT_EQ(res.basis.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_TRUE(res.basis[i].equals(exact[i])) << "element " << i;
  }
}

TEST(CrossBackendTest, MetricsSnapshotsHaveIdenticalShape) {
  // The unified registry is the cross-backend reporting surface: both
  // machines must yield the exact same set of series names, each with one
  // slot per processor — including mailbox.*, which required the simulator
  // to start populating MachineStats::mailbox (PR 4 satellite).
  PolySystem sys = load_problem("katsura4");
  ParallelConfig cfg;
  cfg.nprocs = 4;
  MetricsRegistry sim_reg(cfg.nprocs);
  MetricsRegistry thr_reg(cfg.nprocs);
  cfg.metrics = &sim_reg;
  ParallelResult sim = groebner_parallel(sys, cfg);
  cfg.metrics = &thr_reg;
  ParallelResult thr = groebner_parallel_threads(sys, cfg);
  ASSERT_TRUE(sim.machine.has_mailbox_stats);
  ASSERT_TRUE(thr.machine.has_mailbox_stats);
  ASSERT_EQ(sim.machine.mailbox.size(), 4u);

  MetricsSnapshot a = sim_reg.snapshot();
  MetricsSnapshot b = thr_reg.snapshot();
  std::vector<std::string> a_names, b_names;
  for (const auto& [name, vals] : a.series) {
    a_names.push_back(name);
    EXPECT_EQ(vals.size(), 4u) << name;
  }
  for (const auto& [name, vals] : b.series) {
    b_names.push_back(name);
    EXPECT_EQ(vals.size(), 4u) << name;
  }
  EXPECT_EQ(a_names, b_names);
  EXPECT_NE(a.find("mailbox.enqueues"), nullptr);
  // Schedule-independent identities hold on both backends through the
  // registry as well.
  for (const MetricsSnapshot* s : {&a, &b}) {
    EXPECT_EQ(s->total("gb.spolys_computed"),
              s->total("gb.reductions_to_zero") + s->total("gb.basis_added"));
    EXPECT_EQ(s->total("comm.messages_sent"), s->total("mailbox.enqueues"));
  }
}

}  // namespace
}  // namespace gbd
