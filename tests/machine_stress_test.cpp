// Stress and property tests for the virtual machine: message storms, big
// payloads, determinism under load, and cost-model arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "machine/cost_model.hpp"
#include "machine/sim_machine.hpp"
#include "machine/thread_machine.hpp"
#include "support/cost.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

enum Handlers : HandlerId { kWork = 0, kStop = 1 };

TEST(CostModelTest, WireTimeArithmetic) {
  CostModel cm;
  cm.latency = 100;
  cm.units_per_16_bytes = 8;
  EXPECT_EQ(cm.wire_time(0), 100u);
  EXPECT_EQ(cm.wire_time(1), 108u);
  EXPECT_EQ(cm.wire_time(16), 108u);
  EXPECT_EQ(cm.wire_time(17), 116u);
  EXPECT_EQ(cm.wire_time(160), 180u);
  CostModel free = CostModel::free();
  EXPECT_EQ(free.wire_time(100000), 0u);
  EXPECT_EQ(free.dispatch, 0u);
}

// Random storm: every processor fires pseudo-random messages at random
// destinations for a fixed number of rounds; the run must terminate and be
// bit-identical across repetitions (SimMachine).
std::vector<std::uint64_t> storm_run(int procs, std::uint64_t seed, int rounds) {
  SimMachine m(procs);
  std::vector<std::uint64_t> digest(static_cast<std::size_t>(procs), 0);
  auto stats = m.run_sim([&](Proc& self) {
    Rng rng(seed + static_cast<std::uint64_t>(self.id()) * 1000003);
    int remaining = rounds;
    std::uint64_t& mine = digest[static_cast<std::size_t>(self.id())];
    self.on(kWork, [&](Proc& p, int src, Reader& r) {
      std::uint64_t v = r.u64();
      mine = mine * 31 + v + static_cast<std::uint64_t>(src);
      CostCounter::charge(v % 257);
      if (remaining > 0) {
        --remaining;
        Writer w;
        w.u64(rng.next() % 1000);
        p.send(static_cast<int>(rng.below(static_cast<std::uint64_t>(p.nprocs()))), kWork,
               w.take());
      }
    });
    // Kick off a few messages.
    for (int k = 0; k < 3; ++k) {
      Writer w;
      w.u64(rng.next() % 1000);
      self.send(static_cast<int>(rng.below(static_cast<std::uint64_t>(self.nprocs()))), kWork,
                w.take());
    }
    while (self.wait()) {
    }
  });
  digest.push_back(stats.makespan);
  return digest;
}

TEST(SimStressTest, MessageStormDeterministic) {
  auto a = storm_run(6, 99, 50);
  auto b = storm_run(6, 99, 50);
  EXPECT_EQ(a, b);
  auto c = storm_run(6, 100, 50);
  EXPECT_NE(a, c);  // different seed, different run
}

TEST(SimStressTest, LargePayloadsSurvive) {
  SimMachine m(2);
  std::size_t got = 0;
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc&, int, Reader& r) { got = r.str().size(); });
    if (self.id() == 0) {
      Writer w;
      w.str(std::string(1 << 20, 'x'));
      self.send(1, kWork, w.take());
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(got, static_cast<std::size_t>(1 << 20));
}

TEST(SimStressTest, BandwidthChargesForBigMessages) {
  CostModel cm;
  cm.latency = 10;
  cm.units_per_16_bytes = 4;
  cm.dispatch = 0;
  cm.inject = 0;
  SimMachine m(2, cm);
  std::uint64_t recv_at = 0;
  m.run_sim([&](Proc& self) {
    self.on(kWork, [&](Proc& p, int, Reader&) { recv_at = p.now(); });
    if (self.id() == 0) {
      self.send(1, kWork, std::vector<std::uint8_t>(1600));
    } else {
      while (self.wait()) {
      }
    }
  });
  EXPECT_EQ(recv_at, 10u + 4u * 100u);
}

TEST(ThreadStressTest, ManyMessagesAllDelivered) {
  const int kP = 4;
  const int kEach = 500;
  ThreadMachine m(kP);
  std::atomic<int> received{0};
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc&, int, Reader&) { received.fetch_add(1); });
    for (int k = 0; k < kEach; ++k) {
      self.send((self.id() + 1 + k) % kP, kWork, {});
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(received.load(), kP * kEach);
}

TEST(ThreadStressTest, PingPongChainsUnderRealConcurrency) {
  const int kP = 3;
  ThreadMachine m(kP);
  std::atomic<int> hops{0};
  m.run([&](Proc& self) {
    self.on(kWork, [&](Proc& p, int, Reader& r) {
      std::uint64_t left = r.u64();
      hops.fetch_add(1);
      if (left > 0) {
        Writer w;
        w.u64(left - 1);
        p.send((p.id() + 1) % kP, kWork, w.take());
      }
    });
    if (self.id() == 0) {
      Writer w;
      w.u64(300);
      self.send(1, kWork, w.take());
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(hops.load(), 301);
}

TEST(ThreadStressTest, MultiProducerMailboxThroughputAndOrdering) {
  // Every other processor floods processor 0's mailbox concurrently with a
  // per-source sequence number. The machine contract is FIFO per (src, dst):
  // each producer's stream must arrive in order; interleaving across
  // producers is free. Also exercises the drain path's slab swapping under
  // real contention and checks the PR-3 mailbox counters add up.
  const int kP = 8;
  const int kEach = 2000;
  ThreadMachine m(kP);
  std::vector<std::uint64_t> next_expected(kP, 0);
  std::uint64_t received = 0;  // proc 0 only — no lock needed
  MachineStats stats = m.run([&](Proc& self) {
    self.on(kWork, [&](Proc&, int src, Reader& r) {
      std::uint64_t seq = r.u64();
      ASSERT_EQ(seq, next_expected[static_cast<std::size_t>(src)]) << "src " << src;
      next_expected[static_cast<std::size_t>(src)] = seq + 1;
      ++received;
    });
    if (self.id() != 0) {
      for (int k = 0; k < kEach; ++k) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(k));
        self.send(0, kWork, w.take());
      }
    }
    while (self.wait()) {
    }
  });
  EXPECT_EQ(received, static_cast<std::uint64_t>((kP - 1) * kEach));
  ASSERT_EQ(stats.mailbox.size(), static_cast<std::size_t>(kP));
  const MailboxStats& mb0 = stats.mailbox[0];
  EXPECT_EQ(mb0.enqueues, static_cast<std::uint64_t>((kP - 1) * kEach));
  EXPECT_EQ(mb0.drained_messages, mb0.enqueues);
  EXPECT_GE(mb0.max_drain_batch, 1u);
  EXPECT_LE(mb0.notifies, mb0.enqueues);
}

TEST(ThreadStressTest, RegistrationBarrierBlocksCrossProcDispatch) {
  // Regression for the handler-registration race: processor 0 fires at
  // processor 1 immediately, while processor 1 dawdles before registering.
  // The machine-wide barrier must hold 0's send until 1's registration is
  // complete — otherwise the dispatch aborts on an unknown handler id.
  const int kP = 2;
  for (int round = 0; round < 20; ++round) {
    ThreadMachine m(kP);
    std::atomic<int> got{0};
    m.run([&](Proc& self) {
      if (self.id() == 0) {
        self.on(kWork, [](Proc&, int, Reader&) {});
        self.send(1, kWork, {});  // first comm call: blocks on the barrier
      } else {
        // Not a comm call, so the barrier is still open while we stall.
        std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
        self.on(kWork, [&](Proc&, int, Reader&) { got.fetch_add(1); });
      }
      while (self.wait()) {
      }
    });
    ASSERT_EQ(got.load(), 1) << "round " << round;
  }
}

TEST(ThreadStressTest, WorkersThatNeverCommunicateStillQuiesce) {
  // A worker may return without ever sending or waiting; the barrier and
  // the quiescence count must both account for it.
  ThreadMachine m(4);
  std::atomic<int> got{0};
  m.run([&](Proc& self) {
    if (self.id() == 3) return;  // registers nothing, communicates never
    self.on(kWork, [&](Proc&, int, Reader&) { got.fetch_add(1); });
    if (self.id() == 0) self.send(1, kWork, {});
    while (self.wait()) {
    }
  });
  EXPECT_EQ(got.load(), 1);
}

TEST(ThreadStressTest, AllToAllStormQuiescesWithConservedCounters) {
  // Random all-to-all storm on real threads: echo chains with decreasing
  // TTL. Checks global quiescence under the atomic in-flight counter and
  // that sender-side enqueues equal owner-side drains on every mailbox.
  const int kP = 6;
  ThreadMachine m(kP);
  std::atomic<std::uint64_t> delivered{0};
  MachineStats stats = m.run([&](Proc& self) {
    Rng rng(static_cast<std::uint64_t>(self.id()) * 7919 + 1);
    self.on(kWork, [&](Proc& p, int, Reader& r) {
      std::uint64_t ttl = r.u64();
      delivered.fetch_add(1);
      if (ttl > 0) {
        Writer w;
        w.u64(ttl - 1);
        p.send(static_cast<int>(rng.below(kP)), kWork, w.take());
      }
    });
    for (int k = 0; k < 20; ++k) {
      Writer w;
      w.u64(rng.next() % 30);
      self.send(static_cast<int>(rng.below(kP)), kWork, w.take());
    }
    while (self.wait()) {
    }
  });
  std::uint64_t enqueued = 0, drained = 0, sent = 0;
  for (const MailboxStats& mb : stats.mailbox) {
    enqueued += mb.enqueues;
    drained += mb.drained_messages;
  }
  for (const ProcCommStats& pc : stats.per_proc) sent += pc.messages_sent;
  EXPECT_EQ(delivered.load(), sent);
  EXPECT_EQ(enqueued, sent);
  EXPECT_EQ(drained, sent);
}

TEST(SimStressTest, ManyProcessorsQuiesce) {
  // 64 simulated processors — well past the CM-5 partition sizes the paper
  // used — start, exchange one round, and shut down cleanly.
  const int kP = 64;
  SimMachine m(kP);
  std::atomic<int> done{0};
  m.run([&](Proc& self) {
    self.on(kWork, [](Proc&, int, Reader&) {});
    self.send((self.id() + 1) % kP, kWork, {});
    while (self.wait()) {
    }
    ++done;
  });
  EXPECT_EQ(done.load(), kP);
}

}  // namespace
}  // namespace gbd
