file(REMOVE_RECURSE
  "libgbd_problems.a"
)
