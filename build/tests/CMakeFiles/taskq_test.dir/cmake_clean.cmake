file(REMOVE_RECURSE
  "CMakeFiles/taskq_test.dir/taskq_test.cpp.o"
  "CMakeFiles/taskq_test.dir/taskq_test.cpp.o.d"
  "taskq_test"
  "taskq_test.pdb"
  "taskq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
