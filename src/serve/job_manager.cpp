#include "serve/job_manager.hpp"

namespace gbd {

bool JobManager::submit(JobPtr job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || queued_ >= capacity_) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.submitted;
  queue_[job->req.priority].push_back(std::move(job));
  ++queued_;
  cv_.notify_one();
  return true;
}

JobPtr JobManager::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_ || (!paused_ && queued_ > 0); });
  if (shutdown_) return nullptr;
  return pop_locked();
}

JobPtr JobManager::pop_locked() {
  auto it = queue_.begin();
  JobPtr job = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queue_.erase(it);
  --queued_;
  running_.emplace(job->id, job);
  return job;
}

void JobManager::requeue(JobPtr job) {
  std::lock_guard<std::mutex> lock(mu_);
  running_.erase(job->id);
  ++stats_.requeues;
  if (shutdown_) return;
  // Front of its level: a worker crash must not cost the job its turn.
  queue_[job->req.priority].push_front(std::move(job));
  ++queued_;
  cv_.notify_one();
}

void JobManager::finish(const JobPtr& job, JobState final_state, std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  running_.erase(job->id);
  switch (final_state) {
    case JobState::kDone: ++stats_.done; break;
    case JobState::kFailed: ++stats_.failed; break;
    case JobState::kCancelled: ++stats_.cancelled; break;
    case JobState::kTimedOut: ++stats_.timed_out; break;
    default: break;
  }
  std::uint64_t started = job->start_ms != 0 ? job->start_ms : now_ms;
  stats_.queue_wait_ms.record(started - job->submit_ms);
  stats_.exec_ms.record(now_ms >= started ? now_ms - started : 0);
}

JobPtr JobManager::take_queued(std::uint64_t conn_id, std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    auto& dq = it->second;
    for (auto jt = dq.begin(); jt != dq.end(); ++jt) {
      if ((*jt)->conn_id == conn_id && (*jt)->req.token == token) {
        JobPtr job = std::move(*jt);
        dq.erase(jt);
        if (dq.empty()) queue_.erase(it);
        --queued_;
        return job;
      }
    }
  }
  return nullptr;
}

JobPtr JobManager::find_running(std::uint64_t conn_id, std::uint64_t token) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : running_) {
    if (job->conn_id == conn_id && job->req.token == token) return job;
  }
  return nullptr;
}

std::vector<JobPtr> JobManager::expire(std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobPtr> dead;
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto& dq = it->second;
    for (auto jt = dq.begin(); jt != dq.end();) {
      if ((*jt)->deadline_ms != 0 && now_ms >= (*jt)->deadline_ms) {
        dead.push_back(std::move(*jt));
        jt = dq.erase(jt);
        --queued_;
      } else {
        ++jt;
      }
    }
    it = dq.empty() ? queue_.erase(it) : std::next(it);
  }
  for (const auto& [id, job] : running_) {
    if (job->deadline_ms != 0 && now_ms >= job->deadline_ms) job->raise_stop(2);
  }
  return dead;
}

std::vector<JobPtr> JobManager::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobPtr> jobs;
  jobs.reserve(running_.size());
  for (const auto& [id, job] : running_) jobs.push_back(job);
  return jobs;
}

void JobManager::resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  cv_.notify_all();
}

void JobManager::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

std::size_t JobManager::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

ServeStats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats s = stats_;
  s.queue_depth = queued_;
  s.running = running_.size();
  return s;
}

}  // namespace gbd
