// Figure 7(b) — scalability on the synthetic long-running workloads of §7:
// "multiple copies of a benchmark with variables named apart", best of 3
// runs. The copies give the problem enough independent work to saturate
// processors past the startup/termination transients that cap Figure 7(a).
#include "bench_common.hpp"

using namespace gbd;

int main() {
  bench::print_header(
      "Figure 7(b): speedup on synthetic workloads (renamed copies, best of 3 runs)",
      "Paper shape: markedly better scalability than the small single\n"
      "instances, with stretches at or above linear.");

  int seeds = 3;
  int copies = bench::full_size() ? 6 : 4;
  std::vector<int> procs = {1, 2, 4, 8, 16};

  for (const char* base_name : {"trinks2", "arnborg4"}) {
    PolySystem base = load_problem(base_name);
    PolySystem sys = replicate_renamed(base, copies);
    std::printf("-- %s x %d copies --\n", base_name, copies);
    TextTable table({"P", "Makespan", "Speedup", "Efficiency", "Zeroed", "Added"});
    double base_time = 0;
    for (int p : procs) {
      ParallelConfig cfg;
      cfg.gb = bench::paper_era_criteria();
      cfg.nprocs = p;
      ParallelResult best = bench::best_of_seeds(sys, cfg, p == 1 ? 1 : seeds);
      if (p == 1) base_time = static_cast<double>(best.machine.makespan);
      double sp = base_time / static_cast<double>(best.machine.makespan);
      table.add_row({std::to_string(p), std::to_string(best.machine.makespan), fmt(sp),
                     fmt(sp / p * 100.0, 0) + "%", std::to_string(best.stats.reductions_to_zero),
                     std::to_string(best.stats.basis_added)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
