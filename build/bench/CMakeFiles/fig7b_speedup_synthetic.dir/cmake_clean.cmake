file(REMOVE_RECURSE
  "CMakeFiles/fig7b_speedup_synthetic.dir/fig7b_speedup_synthetic.cpp.o"
  "CMakeFiles/fig7b_speedup_synthetic.dir/fig7b_speedup_synthetic.cpp.o.d"
  "fig7b_speedup_synthetic"
  "fig7b_speedup_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_speedup_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
