// Cross-engine integration: all five engines, all three monomial orders,
// benchmark and random inputs — everything must land on the same canonical
// reduced Gröbner basis. This is the library's strongest end-to-end oracle.
#include <gtest/gtest.h>

#include "gb/parallel.hpp"
#include "gb/pipeline.hpp"
#include "gb/sequential.hpp"
#include "gb/shared_memory.hpp"
#include "gb/transition.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

void expect_equal_bases(const PolyContext& ctx, const std::vector<Polynomial>& a,
                        const std::vector<Polynomial>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].equals(b[i])) << label << " element " << i << ": "
                                   << a[i].to_string(ctx) << " vs " << b[i].to_string(ctx);
  }
}

/// Run every engine on `sys` and compare canonical reduced bases.
void all_engines_agree(const PolySystem& sys, const std::string& label) {
  SequentialResult seq = groebner_sequential(sys);
  std::string why;
  ASSERT_TRUE(verify_groebner_result(sys.ctx, sys.polys, seq.basis, &why)) << label << why;
  std::vector<Polynomial> ref = reduce_basis(sys.ctx, seq.basis);

  TransitionConfig tcfg;
  tcfg.seed = 3;
  expect_equal_bases(sys.ctx, reduce_basis(sys.ctx, groebner_transition(sys, tcfg).basis), ref,
                     label + "/transition");

  ParallelConfig pcfg;
  pcfg.nprocs = 3;
  expect_equal_bases(sys.ctx, reduce_basis(sys.ctx, groebner_parallel(sys, pcfg).basis), ref,
                     label + "/parallel");

  SharedMemoryConfig scfg;
  scfg.nprocs = 3;
  expect_equal_bases(sys.ctx, reduce_basis(sys.ctx, groebner_shared(sys, scfg).basis), ref,
                     label + "/shared");

  PipelineConfig plcfg;
  plcfg.nstages = 3;
  plcfg.inflight = 3;
  expect_equal_bases(sys.ctx, reduce_basis(sys.ctx, groebner_pipeline(sys, plcfg).basis), ref,
                     label + "/pipeline");
}

TEST(IntegrationTest, AllEnginesAgreeOnTrinks2) {
  all_engines_agree(load_problem("trinks2"), "trinks2");
}

TEST(IntegrationTest, AllEnginesAgreeOnArnborg4) {
  all_engines_agree(load_problem("arnborg4"), "arnborg4");
}

TEST(IntegrationTest, AllEnginesAgreeOnMorgenstern) {
  all_engines_agree(load_problem("morgenstern"), "morgenstern");
}

class OrderIntegrationTest : public ::testing::TestWithParam<OrderKind> {};

TEST_P(OrderIntegrationTest, EnginesAgreeUnderEveryOrder) {
  PolySystem sys = load_problem("arnborg4");
  sys.ctx.order = GetParam();
  // Re-canonicalize the generators under the new order.
  for (auto& p : sys.polys) {
    std::vector<Term> terms(p.terms().begin(), p.terms().end());
    p = Polynomial::from_terms(sys.ctx, std::move(terms));
    p.make_primitive();
  }
  all_engines_agree(sys, std::string("arnborg4/") + order_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderIntegrationTest,
                         ::testing::Values(OrderKind::kLex, OrderKind::kGrLex,
                                           OrderKind::kGRevLex),
                         [](const ::testing::TestParamInfo<OrderKind>& info) {
                           return order_name(info.param);
                         });

class RandomIntegrationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomIntegrationTest, EnginesAgreeOnRandomSystems) {
  Rng rng(GetParam());
  PolySystem sys = random_system(rng, 3, 3, 3, 3, 5);
  all_engines_agree(sys, "random/" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIntegrationTest, ::testing::Values(11, 47, 83, 2024));

TEST(IntegrationTest, ElimTheoryHoldsLexGb) {
  // Lex Gröbner bases intersect elimination ideals: for a zero-dimensional
  // ideal (Katsura-3 here; note cyclic-4 is NOT zero-dimensional — it has a
  // one-dimensional solution component) the basis must contain a univariate
  // polynomial in the last variable.
  PolySystem sys = load_problem("morgenstern");
  sys.ctx.order = OrderKind::kLex;
  for (auto& p : sys.polys) {
    std::vector<Term> terms(p.terms().begin(), p.terms().end());
    p = Polynomial::from_terms(sys.ctx, std::move(terms));
    p.make_primitive();
  }
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  bool has_univariate_last = false;
  for (const auto& g : gb) {
    bool only_last = true;
    for (const auto& t : g.terms()) {
      for (std::size_t v = 0; v + 1 < sys.ctx.nvars(); ++v) {
        if (t.mono.exp(v) != 0) only_last = false;
      }
    }
    has_univariate_last = has_univariate_last || only_last;
  }
  EXPECT_TRUE(has_univariate_last)
      << "zero-dimensional ideal must eliminate to a univariate polynomial";
}

TEST(IntegrationTest, ReplicatedWorkloadBasisIsBlockUnion) {
  // The reduced basis of k renamed copies is exactly k renamed copies of the
  // base's reduced basis.
  PolySystem base = load_problem("trinks2");
  std::vector<Polynomial> base_red = reduce_basis(base.ctx, groebner_sequential(base).basis);
  PolySystem sys = replicate_renamed(base, 2);
  std::vector<Polynomial> red = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  EXPECT_EQ(red.size(), 2 * base_red.size());
}

}  // namespace
}  // namespace gbd
