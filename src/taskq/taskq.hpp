// Distributed task queue (after Wen et al., §4.2 of the paper).
//
// The queue is partitioned: each processor owns a local priority queue and
// there is exactly one copy of each task. Enqueue is local (with optional
// push-based rebalancing to the ring neighbor when the local queue grows
// long); dequeue serves the best local task and, when the local queue is
// empty, steals from ring neighbors round-robin. Priority is only enforced
// within each local queue, not globally — exactly the weakened heuristic
// order §4.2.1 describes.
//
// Termination is detected by a coordinator running a double-wave counting
// protocol: a wave probes every processor for (enqueued, dequeued, activity,
// Idle?); two consecutive waves that are all-idle, activity-stable and have
// total enqueued == total dequeued prove global completion ("Terminated is a
// stable property, true only if the total number of enqueued tasks equals
// the total number of dequeued tasks, and all processors are idle"). The
// caller supplies Idle? — needed because tasks may be buffered in local
// variables of busy processors.
//
// Tasks are opaque payload bytes with a Monomial priority (smaller under the
// ambient monomial order = served first), matching the engine's use where
// priority is the pair's head-lcm (footnote 2 of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>

#include "gb/engine_common.hpp"
#include "machine/machine.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// Handler-id block reserved for the task queue (see HandlerId ranges in
/// each module; the application must not reuse 100..109).
enum TaskQueueHandlers : HandlerId {
  kTqSteal = 100,    ///< steal request
  kTqGrant = 101,    ///< stolen tasks (possibly empty = NACK)
  kTqPush = 102,     ///< push-balanced tasks
  kTqProbe = 103,    ///< termination wave probe
  kTqReport = 104,   ///< probe reply
  kTqAnnounce = 105, ///< termination announcement
  kTqToken = 106,    ///< Dijkstra–Feijen–van Gasteren ring token
};

/// Termination-detection protocol. The paper uses a centralized coordinator
/// and notes it "will not scale to thousands of processors. However, a large
/// variety of relatively decentralized protocols are available" (§6) — the
/// token ring is the classic one: a colored token circulates; a processor
/// that ships tasks turns black, blackening the token as it passes; a token
/// that completes a fully white, fully idle circuit proves termination with
/// O(P) messages per round and no central bottleneck.
enum class Termination : std::uint8_t {
  kCoordinatorWave,  ///< the paper's centralized double-count wave (default)
  kTokenRing,        ///< Dijkstra–Feijen–van Gasteren colored token
};

struct TaskQueueConfig {
  int coordinator = 0;
  /// Push-balance: when a local enqueue leaves more than this many tasks,
  /// offload the worst ones to the ring neighbor. 0 disables pushing.
  std::size_t push_threshold = 0;
  /// How many tasks a victim surrenders per steal (at most half its queue).
  std::size_t steal_batch = 4;
  /// Work units an idle processor waits after a full circuit of empty
  /// grants before polling the ring again.
  std::uint64_t steal_backoff = 2000;
  /// Which end of the victim's queue migrates. false (default): the worst-
  /// priority end — thieves work far from the victim's current focus, which
  /// spreads processors across independent regions of the pair space and
  /// keeps speculative overlap shallow. true: the best end — thieves take
  /// over the globally most promising work (closer to sequential order, but
  /// all processors crowd the same region).
  bool steal_from_best = false;
  /// How the priority monomial orders the local queue (kNormal: full
  /// monomial order; kDegree: total degree, ties FIFO; kFifo: creation
  /// order).
  Selection selection = Selection::kNormal;
  Termination termination = Termination::kCoordinatorWave;
  /// Observability hooks for the chaos/invariant harness (see
  /// machine/invariants.hpp); both may be null. on_dequeue receives the
  /// task's machine-wide unique id — stable across steals and pushes — so a
  /// checker can prove no task is ever executed twice. on_announce fires
  /// when this endpoint learns of global termination (either protocol),
  /// letting a checker assert nothing was in flight or on hold.
  std::function<void(std::uint64_t uid)> on_dequeue;
  std::function<void()> on_announce;
};

struct TaskQueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t steals_sent = 0;
  std::uint64_t steals_won = 0;   ///< grants that carried at least one task
  std::uint64_t tasks_migrated = 0;     ///< tasks shipped out (steal grants + pushes)
  std::uint64_t tasks_migrated_in = 0;  ///< tasks landed here from grants + pushes
  std::uint64_t waves_started = 0;   ///< coordinator only
  std::uint64_t token_rounds = 0;    ///< ring-token circuits initiated (proc 0 only)
  bool terminated_by_wave = false;   ///< either protocol's announcement fired
};

/// One processor's endpoint of the distributed queue. Construct inside the
/// worker after Proc is available; all processors must construct it (the
/// protocol handlers are registered in the constructor).
class DistTaskQueue {
 public:
  enum class Dequeue { kGot, kEmpty, kTerminated };

  /// `idle` must return true iff the calling processor currently holds no
  /// work outside the queue (no task being executed, nothing suspended).
  DistTaskQueue(Proc& self, const PolyContext* ctx, std::function<bool()> idle,
                TaskQueueConfig cfg = {});

  /// Add a task. Never blocks; may push-balance to the ring neighbor.
  void enqueue(std::vector<std::uint8_t> payload, Monomial priority);

  /// Serve the best local task, or report kEmpty (a hint — the caller should
  /// poll/wait and retry; a steal or termination wave may be in flight), or
  /// kTerminated (stable).
  Dequeue try_dequeue(std::vector<std::uint8_t>* payload);

  /// Give the termination coordinator a chance to start a probe wave. Called
  /// implicitly by try_dequeue; a reserved coordinator that never dequeues
  /// must call it from its serve loop.
  void pump_termination() {
    if (self_.id() == cfg_.coordinator) maybe_start_wave();
  }

  bool terminated() const { return terminated_; }
  std::size_t local_size() const { return local_.size(); }
  const TaskQueueStats& stats() const { return stats_; }

  /// The caller-supplied Idle? predicate (invariant checkers read the whole
  /// machine's idleness through the queue endpoints).
  bool app_idle() const { return idle_(); }

 private:
  struct Item {
    Monomial priority;
    std::uint64_t seq;  ///< local insertion order (tie-break); reassigned on migration
    std::uint64_t uid;  ///< machine-wide identity, preserved across migration
    std::vector<std::uint8_t> payload;
  };
  struct ItemBefore {
    const DistTaskQueue* q;
    bool operator()(const Item& a, const Item& b) const;
  };

  void insert_local(Item item);
  Item pop_best();
  void send_tasks(int dst, HandlerId handler, std::size_t count);
  void maybe_start_wave();
  void finish_wave();
  void note_activity() { activity_ += 1; }

  // Handlers.
  void on_steal(int src);
  void on_grant(int src, Reader& r);
  void on_push(int src, Reader& r);
  void on_probe(int src);
  void on_report(int src, Reader& r);
  void on_announce();
  void on_token(Reader& r);
  void maybe_forward_token();

  Proc& self_;
  const PolyContext* ctx_;
  std::function<bool()> idle_;
  TaskQueueConfig cfg_;
  TaskQueueStats stats_;

  std::set<Item, ItemBefore> local_;
  std::uint64_t next_seq_;

  // Stealing state.
  bool steal_outstanding_ = false;
  int next_victim_;
  int consecutive_empty_grants_ = 0;

  // Activity counter: bumps on every enqueue/dequeue/migration in or out.
  std::uint64_t activity_ = 0;
  bool terminated_ = false;

  // Coordinator-side wave state.
  struct WaveReply {
    std::uint64_t enq = 0, deq = 0, activity = 0;
    bool idle = false;
  };
  bool wave_in_progress_ = false;
  int wave_replies_ = 0;
  std::vector<WaveReply> wave_data_;
  bool have_prev_wave_ = false;
  std::vector<WaveReply> prev_wave_;

  // Token-ring state (Dijkstra–Feijen–van Gasteren).
  bool proc_black_ = false;    ///< shipped tasks since the token last passed
  bool holding_token_ = false;
  bool token_black_ = false;   ///< color of the held token
  bool token_started_ = false; ///< proc 0: first token launched
};

}  // namespace gbd
