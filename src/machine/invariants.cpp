#include "machine/invariants.hpp"

#include "support/check.hpp"

namespace gbd {

InvariantMonitor::InvariantMonitor(std::uint64_t period) : period_(period) {
  GBD_CHECK(period >= 1);
}

void InvariantMonitor::add_check(std::string name, Check fn) {
  std::lock_guard<std::mutex> lock(mu_);
  checks_.push_back(Entry{std::move(name), std::move(fn)});
}

void InvariantMonitor::maybe_check() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (++calls_ % period_ != 0) return;
  }
  run_all("periodic");
}

void InvariantMonitor::run_all(const char* when) {
  // Checks run outside the lock: they call back into application state and
  // may themselves note() (which takes the lock). The registry is append-
  // only, so indexing by position is stable.
  std::size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweeps_ += 1;
    n = checks_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Check* fn;
    std::string name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn = &checks_[i].fn;
      name = checks_[i].name;
    }
    std::string detail = (*fn)();
    if (!detail.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      record_locked(name, detail + " [at " + when + "]");
    }
  }
}

void InvariantMonitor::note(const std::string& name, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  record_locked(name, detail);
}

void InvariantMonitor::record_locked(const std::string& name, const std::string& detail) {
  for (auto& v : violations_) {
    if (v.name == name) {
      v.count += 1;
      return;
    }
  }
  violations_.push_back(Violation{name, detail, 1});
}

bool InvariantMonitor::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty();
}

std::vector<std::string> InvariantMonitor::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& v : violations_) {
    std::string line = v.name + ": " + v.first_detail;
    if (v.count > 1) line += " (x" + std::to_string(v.count) + ")";
    out.push_back(std::move(line));
  }
  return out;
}

std::uint64_t InvariantMonitor::sweeps_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

}  // namespace gbd
