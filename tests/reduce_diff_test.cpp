// Differential and fuzz coverage for the reduction-kernel overhaul:
//
//   · geobucket reduce_full vs the naive flat-vector path must produce
//     bit-identical normal forms AND identical step counts, across random
//     systems × orderings × tail on/off and on the real benchmark inputs
//     (the scalar-multiple argument of geobucket.hpp, checked exactly);
//   · the divmask prefilter must be sound (a | b implies may_divide) and the
//     divmask-indexed find_reducer must agree with a plain linear scan —
//     including for the replicated basis while chaos mode reorders,
//     duplicates and delays the invalidation/fetch protocol underneath it.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "basis/replicated_basis.hpp"
#include "bigint/zp.hpp"
#include "gb/modular.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "io/parse.hpp"
#include "machine/sim_machine.hpp"
#include "poly/divmask.hpp"
#include "poly/geobucket.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

Monomial random_monomial(Rng& rng, std::size_t nvars, std::uint32_t maxexp) {
  std::vector<std::uint32_t> exps;
  exps.reserve(nvars);
  for (std::size_t v = 0; v < nvars; ++v) {
    exps.push_back(static_cast<std::uint32_t>(rng.below(maxexp + 1)));
  }
  return Monomial(std::move(exps));
}

/// The pre-divmask linear scan, verbatim: the reference oracle.
const Polynomial* linear_scan(const std::vector<Polynomial>& polys, const Monomial& m,
                              std::uint64_t* out_id) {
  const Polynomial* best = nullptr;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    const Polynomial& r = polys[i];
    if (!r.is_zero() && r.hmono().divides(m)) {
      if (best == nullptr || reducer_preferred(r, *best)) {
        best = &r;
        best_i = i;
      }
    }
  }
  if (best && out_id) *out_id = best_i;
  return best;
}

/// find_reducer counter deltas across one reduce_full call (thread-local
/// stats windowed the same way obs/metrics.hpp does per worker).
struct ProbeDelta {
  std::uint64_t calls, probes, mask_rejects, divides_calls;
  bool operator==(const ProbeDelta&) const = default;
};

ReduceOutcome windowed_reduce(const PolyContext& ctx, const Polynomial& p,
                              const VectorReducerSet& set, const ReduceOptions& opt,
                              ProbeDelta* delta) {
  FindReducerStats before = find_reducer_stats();
  ReduceOutcome out = reduce_full(ctx, p, set, opt);
  FindReducerStats after = find_reducer_stats();
  *delta = ProbeDelta{after.calls - before.calls, after.probes - before.probes,
                      after.mask_rejects - before.mask_rejects,
                      after.divides_calls - before.divides_calls};
  return out;
}

void expect_both_paths_agree(const PolyContext& ctx, const Polynomial& p,
                             const std::vector<Polynomial>& basis, bool tail) {
  VectorReducerSet set(&basis);
  ReduceOptions geo;
  geo.tail_reduce = tail;
  geo.use_geobuckets = true;
  geo.max_steps = 200000;
  ReduceOptions naive = geo;
  naive.use_geobuckets = false;
  ProbeDelta da{}, db{};
  GeobucketStats gb_before = geobucket_stats();
  ReduceOutcome a = windowed_reduce(ctx, p, set, geo, &da);
  std::uint64_t geo_axpys = geobucket_stats().axpys - gb_before.axpys;
  ReduceOutcome b = windowed_reduce(ctx, p, set, naive, &db);
  EXPECT_TRUE(a.poly.equals(b.poly))
      << "geobucket: " << a.poly.to_string(ctx) << "\nnaive:     " << b.poly.to_string(ctx);
  EXPECT_EQ(a.steps, b.steps);
  // Both paths walk the identical sequence of leading monomials, so the
  // reducer-lookup work — probes, divmask rejects, full divides — must be
  // bit-identical, not merely similar. The geobucket changes *how* the
  // accumulation is represented, never *what* is looked up.
  EXPECT_EQ(da, db) << "find_reducer probe/reject counts diverged between paths";
  // And only the geobucket path touches geobucket machinery.
  if (a.steps > 0) EXPECT_GT(geo_axpys, 0u);
  EXPECT_EQ(geobucket_stats().axpys - gb_before.axpys, geo_axpys)
      << "naive path must not perform geobucket axpys";
}

class GeobucketDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeobucketDiffTest, RandomSystemsAcrossOrderingsAndModes) {
  for (OrderKind order : {OrderKind::kGrLex, OrderKind::kLex, OrderKind::kGRevLex}) {
    Rng rng(GetParam() ^ (static_cast<std::uint64_t>(order) << 32));
    PolySystem sys = random_system(rng, 3, 6, 4, 5, 50);
    sys.ctx.order = order;
    // random_system canonicalized under its default order; re-sort the term
    // vectors under the order actually being tested.
    for (auto& p : sys.polys) {
      p = Polynomial::from_terms(sys.ctx, std::vector<Term>(p.terms().begin(), p.terms().end()));
    }
    const PolyContext& c = sys.ctx;
    std::vector<Polynomial> basis(sys.polys.begin(), sys.polys.begin() + 4);
    for (auto& g : basis) g.make_primitive();
    for (std::size_t i = 4; i < sys.polys.size(); ++i) {
      expect_both_paths_agree(c, sys.polys[i], basis, /*tail=*/false);
      expect_both_paths_agree(c, sys.polys[i], basis, /*tail=*/true);
    }
    // Products of basis elements reduce to zero both ways.
    Polynomial member = basis[0].mul(c, sys.polys[4]);
    expect_both_paths_agree(c, member, basis, /*tail=*/true);
  }
}

TEST_P(GeobucketDiffTest, LargeCoefficientsForceNormalization) {
  // Huge reducer head coefficients drive the pending-scale bits past the
  // geobucket's normalization threshold, exercising the mid-reduction
  // materialize/make_primitive/rebuild path.
  Rng rng(GetParam() ^ 0x9e3779b9);
  PolySystem sys = random_system(rng, 3, 5, 3, 4, 1000000007LL);
  const PolyContext& c = sys.ctx;
  std::vector<Polynomial> basis(sys.polys.begin(), sys.polys.begin() + 3);
  for (auto& g : basis) g.make_primitive();
  expect_both_paths_agree(c, sys.polys[3], basis, /*tail=*/true);
  expect_both_paths_agree(c, sys.polys[4], basis, /*tail=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeobucketDiffTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(GeobucketDiffTest, BenchmarkProblemSpolys) {
  for (const char* name : {"arnborg4", "katsura4", "trinks1"}) {
    PolySystem sys = load_problem(name);
    const PolyContext& c = sys.ctx;
    std::vector<Polynomial> basis = sys.polys;
    for (auto& g : basis) g.make_primitive();
    for (std::size_t i = 0; i < basis.size(); ++i) {
      for (std::size_t j = i + 1; j < basis.size(); ++j) {
        Polynomial s = spoly(c, basis[i], basis[j]);
        if (s.is_zero()) continue;
        expect_both_paths_agree(c, s, basis, /*tail=*/false);
        expect_both_paths_agree(c, s, basis, /*tail=*/true);
      }
    }
  }
}

// --- Zp coefficient path -----------------------------------------------------

// Small, mid and edge primes for the per-prime differential runs.
const std::uint64_t kZpDiffPrimes[] = {
    1000003,
    prev_prime_u64(std::uint64_t{1} << 31),
    prev_prime_u64(std::uint64_t{1} << 62),
};

std::vector<Polynomial> zp_image(const PolyContext& ctx, const std::vector<Polynomial>& basis,
                                 std::uint64_t prime) {
  CoeffOptions zp = CoeffOptions::zp(prime);
  std::vector<Polynomial> out;
  out.reserve(basis.size());
  for (const auto& g : basis) {
    Polynomial q = g;
    coeff_normalize(ctx, &q, zp);
    out.push_back(std::move(q));
  }
  return out;
}

/// Mod p there is no scalar freedom at all (both paths cancel to the exact
/// residue), so the geobucket and naive Zp reducers must agree
/// coefficient-for-coefficient at identical step counts — a stronger
/// statement than the exact paths' scalar-multiple argument.
Polynomial expect_zp_paths_agree(const PolyContext& ctx, const Polynomial& p,
                                 const std::vector<Polynomial>& zp_basis, std::uint64_t prime,
                                 bool tail) {
  VectorReducerSet set(&zp_basis);
  ReduceOptions geo;
  geo.tail_reduce = tail;
  geo.use_geobuckets = true;
  geo.max_steps = 200000;
  geo.coeff = CoeffOptions::zp(prime);
  ReduceOptions naive = geo;
  naive.use_geobuckets = false;
  ReduceOutcome a = reduce_full(ctx, p, set, geo);
  ReduceOutcome b = reduce_full(ctx, p, set, naive);
  EXPECT_TRUE(a.poly.equals(b.poly))
      << "p=" << prime << "\ngeobucket: " << a.poly.to_string(ctx)
      << "\nnaive:     " << b.poly.to_string(ctx);
  EXPECT_EQ(a.steps, b.steps) << "p=" << prime;
  return a.poly;
}

class ZpDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZpDiffTest, GeobucketMatchesNaiveModP) {
  Rng rng(GetParam() ^ 0x5A5A);
  PolySystem sys = random_system(rng, 3, 6, 4, 5, 50);
  const PolyContext& c = sys.ctx;
  std::vector<Polynomial> basis(sys.polys.begin(), sys.polys.begin() + 4);
  for (std::uint64_t prime : kZpDiffPrimes) {
    std::vector<Polynomial> zb;
    for (const auto& g : zp_image(c, basis, prime)) {
      if (!g.is_zero()) zb.push_back(g);
    }
    if (zb.empty()) continue;
    for (std::size_t i = 4; i < sys.polys.size(); ++i) {
      expect_zp_paths_agree(c, sys.polys[i], zb, prime, /*tail=*/false);
      expect_zp_paths_agree(c, sys.polys[i], zb, prime, /*tail=*/true);
    }
    // An ideal member reduces to zero mod p on both paths.
    Polynomial member = zb[0].mul(c, sys.polys[4]);
    Polynomial nf = expect_zp_paths_agree(c, member, zb, prime, /*tail=*/true);
    EXPECT_TRUE(nf.is_zero()) << "p=" << prime;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZpDiffTest, ::testing::Values(0xA1, 0xB2, 0xC3, 0xD4));

TEST(ZpDiffTest, ThreeWayAgainstExactOnBenchmarkProblems) {
  // Three-way differential on the corpus: exact-geobucket vs exact-naive is
  // covered above; here each normal form additionally crosses the field
  // boundary. Over the reduced Gröbner basis the (tail-reduced) normal form
  // is *unique*, so the mod-p image of the exact normal form must be monic-
  // equal to the normal form computed natively in Zp — two entirely disjoint
  // arithmetic paths (BigInt gcd/divide vs Montgomery) landing on one value.
  for (const char* name : {"arnborg4", "katsura4", "trinks1"}) {
    PolySystem sys = load_problem(name);
    const PolyContext& c = sys.ctx;
    std::vector<Polynomial> gb = reduce_basis(c, groebner_sequential(sys).basis);
    VectorReducerSet exact_set(&gb);
    ReduceOptions exact_opts;
    exact_opts.tail_reduce = true;
    for (std::uint64_t prime : kZpDiffPrimes) {
      ZpField field(prime);
      CoeffOptions zp = CoeffOptions::zp(prime);
      std::vector<Polynomial> zb = zp_image(c, gb, prime);
      // These primes are lucky for the corpus: the image stays a GB mod p.
      std::string why;
      ASSERT_TRUE(verify_groebner_result(c, sys.polys, zb, &why, zp))
          << name << " p=" << prime << ": " << why;
      std::vector<Polynomial> probes = sys.polys;
      for (std::size_t i = 0; i < gb.size(); ++i) {
        for (std::size_t j = i + 1; j < gb.size() && probes.size() < 24; ++j) {
          probes.push_back(spoly(c, gb[i], gb[j]));
        }
      }
      for (const Polynomial& q : probes) {
        if (q.is_zero()) continue;
        Polynomial zp_nf = expect_zp_paths_agree(c, q, zb, prime, /*tail=*/true);
        Polynomial exact_nf = reduce_full(c, q, exact_set, exact_opts).poly;
        Polynomial img = poly_mod(c, exact_nf, field);
        img.make_monic(field);
        EXPECT_TRUE(img.equals(zp_nf))
            << name << " p=" << prime << "\nexact mod p: " << img.to_string(c)
            << "\nnative Zp:   " << zp_nf.to_string(c);
      }
    }
  }
}

TEST(ZpDiffTest, LiftedMultimodularBasisIsCoefficientIdenticalToExact) {
  // The full circle: per-prime Zp bases, CRT-lifted and rationally
  // reconstructed, must land on the very same primitive integer polynomials
  // as the exact engine — not just the same ideal.
  PolySystem sys = load_problem("trinks1");
  std::vector<Polynomial> exact = reduce_basis(sys.ctx, groebner_sequential(sys).basis);
  ModularConfig cfg;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_TRUE(res.stats.verified);
  EXPECT_FALSE(res.stats.used_exact_fallback);
  ASSERT_EQ(res.basis.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_TRUE(res.basis[i].equals(exact[i])) << "element " << i;
  }
}

// --- divmask -----------------------------------------------------------------

TEST(DivmaskTest, FilterIsSound) {
  for (std::size_t nvars : {1u, 3u, 7u, 13u, 70u}) {
    DivMaskRuler ruler(nvars);
    Rng rng(0xD1FF ^ nvars);
    for (int iter = 0; iter < 2000; ++iter) {
      Monomial a = random_monomial(rng, nvars, 6);
      Monomial b = random_monomial(rng, nvars, 6);
      if (a.divides(b)) {
        EXPECT_TRUE(DivMaskRuler::may_divide(ruler.mask(a), ruler.mask(b)));
      }
      // A monomial always divides itself and its multiples.
      Monomial ab = a * b;
      EXPECT_TRUE(DivMaskRuler::may_divide(ruler.mask(a), ruler.mask(ab)));
      EXPECT_TRUE(DivMaskRuler::may_divide(ruler.mask(b), ruler.mask(ab)));
    }
  }
}

TEST(DivmaskTest, FilterActuallyRejects) {
  // Not a correctness property, but the point of the index: on disjoint
  // supports the mask must reject without an exponent walk.
  DivMaskRuler ruler(4);
  Monomial x = Monomial({1, 0, 0, 0});
  Monomial y3 = Monomial({0, 3, 0, 0});
  EXPECT_FALSE(DivMaskRuler::may_divide(ruler.mask(x), ruler.mask(y3)));
}

class DivmaskFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DivmaskFuzzTest, IndexedFindReducerMatchesLinearScan) {
  Rng rng(GetParam());
  PolySystem sys = random_system(rng, 4, 10, 4, 4, 30);
  std::vector<Polynomial> basis;
  VectorReducerSet set(&basis);
  auto check_queries = [&](int n) {
    for (int q = 0; q < n; ++q) {
      Monomial m = random_monomial(rng, 4, 5);
      if (!basis.empty() && rng.below(2)) {
        // Bias toward hits: query a multiple of some head.
        m = basis[rng.below(basis.size())].hmono() * m;
      }
      std::uint64_t got_id = ~0ull, want_id = ~0ull;
      const Polynomial* got = set.find_reducer(m, &got_id);
      const Polynomial* want = linear_scan(basis, m, &want_id);
      ASSERT_EQ(got, want);
      if (want != nullptr) ASSERT_EQ(got_id, want_id);
    }
  };
  // Grow the backing vector between query rounds: the lazy mask extension
  // must pick up appended elements (the engines' append-only usage).
  for (auto& p : sys.polys) {
    p.make_primitive();
    basis.push_back(std::move(p));
    check_queries(25);
  }
}

TEST_P(DivmaskFuzzTest, ReplicatedBasisUnderChaosMatchesLinearScan) {
  // Chaos mode jitters, reorders and duplicates the invalidate/ack/fetch/body
  // traffic while every processor adds elements and validates; at every
  // stage each processor's divmask-indexed ReducerView must agree with a
  // linear scan over whatever its local replica happens to hold.
  const int kP = 4;
  ChaosConfig chaos = ChaosConfig::intensity(2, GetParam());
  chaos.dup_safe = {kBaInvalidate, kBaInvAck, kBaFetch, kBaBody};
  SimMachine m(kP, CostModel{}, chaos);

  Rng gen(GetParam() ^ 0xFEED);
  PolySystem sys = random_system(gen, 3, 2 * kP, 3, 4, 20);
  for (auto& p : sys.polys) p.make_primitive();

  m.run([&](Proc& self) {
    ReplicatedBasis basis(self);
    Rng qrng(GetParam() ^ static_cast<std::uint64_t>(self.id()));
    auto cross_check = [&]() {
      // Reference: the same preference policy over the local replica.
      std::vector<Polynomial> local;
      for (PolyId id : basis.local_ids()) local.push_back(*basis.find(id));
      for (int q = 0; q < 20; ++q) {
        Monomial mono = random_monomial(qrng, 3, 4);
        if (!local.empty() && qrng.below(2)) {
          mono = local[qrng.below(local.size())].hmono() * mono;
        }
        std::uint64_t got_id = 0, want_i = 0;
        const Polynomial* got = basis.reducer_set().find_reducer(mono, &got_id);
        const Polynomial* want = linear_scan(local, mono, &want_i);
        if (want == nullptr) {
          ASSERT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          ASSERT_TRUE(got->equals(*want));
          ASSERT_EQ(got_id, basis.local_ids()[want_i]);
        }
      }
    };
    // Each processor adds two elements, one at a time, round-robin by id.
    for (int round = 0; round < 2; ++round) {
      for (int owner = 0; owner < kP; ++owner) {
        if (owner == self.id()) {
          basis.begin_add(sys.polys[static_cast<std::size_t>(2 * owner + round)]);
          while (!basis.add_done()) {
            ASSERT_TRUE(self.wait());
          }
        } else {
          // Drain protocol traffic until the adder's element is known here.
          PolyId expect = make_poly_id(owner, static_cast<std::uint32_t>(round));
          while (!basis.known(expect)) {
            ASSERT_TRUE(self.wait());
          }
        }
        cross_check();
      }
      // Re-issue begin_validate on every wake: a later turn's invalidation
      // can land mid-validation (in-flight fetches dedup, so this is safe).
      while (!basis.valid()) {
        basis.begin_validate();
        ASSERT_TRUE(self.wait());
      }
      cross_check();
    }
    while (self.wait()) {
    }
    // Everything settled: replicas are complete and must still agree.
    EXPECT_EQ(basis.replica_size(), static_cast<std::size_t>(2 * kP));
    cross_check();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivmaskFuzzTest,
                         ::testing::Values(0x101, 0x202, 0x303, 0x404, 0x505, 0x606));

}  // namespace
}  // namespace gbd
