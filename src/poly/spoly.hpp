// S-polynomials — the pair-combination step of Buchberger's algorithm (§2).
#pragma once

#include "poly/coeff.hpp"
#include "poly/polynomial.hpp"

namespace gbd {

/// SPOL(p1, p2) of the paper:
///   (k2·m2/HCF)·p1 − (k1·m1/HCF)·p2,
/// where ki = HCOEF(pi), mi = HMONO(pi) and HCF is the monomial gcd; the
/// head terms cancel by construction. Coefficients are first divided by
/// gcd(k1, k2) and the result is returned in primitive form — the same
/// polynomial up to a unit, with the smallest possible integers.
/// Both inputs must be nonzero.
Polynomial spoly(const PolyContext& ctx, const Polynomial& p1, const Polynomial& p2);

/// Coefficient-seam dispatch (poly/coeff.hpp). kExact forwards to the
/// fraction-free spoly above; kZp forms hc2·(m2/HCF)·p1 − hc1·(m1/HCF)·p2
/// over Z/pZ and returns the monic canonical form. Over Zp both inputs'
/// coefficients must already be canonical residues.
Polynomial spoly(const PolyContext& ctx, const Polynomial& p1, const Polynomial& p2,
                 const CoeffOptions& coeff);

/// The lcm of the two head monomials, HMONO(p1)·HMONO(p2)/HCF — the quantity
/// the paper's selection heuristic minimizes (footnote 2).
Monomial pair_lcm(const Polynomial& p1, const Polynomial& p2);

}  // namespace gbd
