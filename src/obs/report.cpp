#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace gbd {

namespace {

enum class Cat { kReduce, kComm, kHold, kIdle };

Cat category(const TraceEvent& e) {
  switch (e.kind) {
    case Ev::kTask:
    case Ev::kSpoly:
    case Ev::kReduce:
    case Ev::kFreshen:
    case Ev::kAugment:
    case Ev::kMatSymbolic:
    case Ev::kMatBuild:
    case Ev::kMatEliminate:
    case Ev::kMatConvert:
      return Cat::kReduce;
    case Ev::kHandler:
      return Cat::kComm;
    case Ev::kResume:
      return Cat::kHold;
    case Ev::kWait:
      switch (static_cast<WaitReason>(e.a)) {
        case WaitReason::kHold: return Cat::kHold;
        case WaitReason::kProtocol: return Cat::kComm;
        case WaitReason::kIdle: break;
      }
      return Cat::kIdle;
    case Ev::kBackoff:
      return Cat::kIdle;
    default:
      return Cat::kIdle;  // async/instant kinds never reach here
  }
}

struct Frame {
  std::uint64_t t0, t1;
};

}  // namespace

BreakdownReport analyze_trace(const TraceData& data) {
  BreakdownReport rep;
  rep.domain = data.domain;
  rep.makespan = data.makespan;
  for (const TraceData::ProcData& pd : data.procs) {
    ProcBreakdown b;
    rep.dropped_events += pd.dropped;
    std::vector<Frame> frames;  // completed top-level-so-far spans, t0 ascending
    std::uint64_t last_t = 0;
    for (const TraceEvent& e : pd.events) {
      last_t = std::max(last_t, e.t1);
      if (e.phase == Ph::kAsyncBegin) {
        if (e.kind == Ev::kHold) b.holds_opened += 1;
        continue;
      }
      if (e.phase == Ph::kInstant) {
        if (e.kind == Ev::kSteal) b.steals += 1;
        continue;
      }
      if (e.phase != Ph::kSpan) continue;
      b.spans += 1;
      // Completion order puts children before parents: frames whose start is
      // inside this span are its direct children (grandchildren were already
      // absorbed into them).
      std::uint64_t child_sum = 0;
      while (!frames.empty() && frames.back().t0 >= e.t0) {
        child_sum += frames.back().t1 - frames.back().t0;
        frames.pop_back();
      }
      std::uint64_t dur = e.t1 >= e.t0 ? e.t1 - e.t0 : 0;
      std::uint64_t self = dur >= child_sum ? dur - child_sum : 0;
      switch (category(e)) {
        case Cat::kReduce: b.reduce += self; break;
        case Cat::kComm: b.comm += self; break;
        case Cat::kHold: b.hold += self; break;
        case Cat::kIdle: b.idle += self; break;
      }
      switch (e.kind) {
        case Ev::kMatSymbolic: b.mat_symbolic += self; break;
        case Ev::kMatBuild: b.mat_build += self; break;
        case Ev::kMatEliminate: b.mat_eliminate += self; break;
        case Ev::kMatConvert: b.mat_convert += self; break;
        default: break;
      }
      frames.push_back(Frame{e.t0, e.t1});
    }
    // Account for the uncovered remainder of [0, makespan]: gaps between
    // top-level spans are unattributed busy time ("other"); the head gap
    // before the first event and the tail gap after the last are idle (the
    // tail gap is the load-imbalance loss).
    std::uint64_t covered = 0;
    for (const Frame& f : frames) covered += f.t1 - f.t0;
    if (!frames.empty()) {
      std::uint64_t window = frames.back().t1 - frames.front().t0;
      b.other = window >= covered ? window - covered : 0;
      b.idle += frames.front().t0;
    } else {
      b.idle += std::min(last_t, data.makespan);
    }
    if (data.makespan > last_t) b.idle += data.makespan - last_t;
    rep.procs.push_back(b);
  }
  double mean_busy = 0.0;
  for (const ProcBreakdown& b : rep.procs) {
    mean_busy += static_cast<double>(b.busy());
    rep.critical_path = std::max(rep.critical_path, b.busy());
  }
  if (!rep.procs.empty()) mean_busy /= static_cast<double>(rep.procs.size());
  rep.load_imbalance = mean_busy > 0.0 ? static_cast<double>(rep.critical_path) / mean_busy : 1.0;
  return rep;
}

std::string check_well_formed(const TraceData& data) {
  for (std::size_t p = 0; p < data.procs.size(); ++p) {
    const TraceData::ProcData& pd = data.procs[p];
    auto where = [&](std::size_t i) {
      return "proc " + std::to_string(p) + " event " + std::to_string(i);
    };
    if (pd.open_spans != 0) {
      return "proc " + std::to_string(p) + " finished with " + std::to_string(pd.open_spans) +
             " open span(s)";
    }
    std::vector<Frame> frames;
    std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> open_async;
    std::uint64_t prev_t1 = 0;
    for (std::size_t i = 0; i < pd.events.size(); ++i) {
      const TraceEvent& e = pd.events[i];
      if (e.t1 < e.t0) return where(i) + ": negative duration";
      if (e.phase == Ph::kAsyncBegin) {
        open_async[{static_cast<std::uint8_t>(e.kind), e.a}] += 1;
        continue;
      }
      if (e.phase == Ph::kAsyncEnd) {
        auto key = std::make_pair(static_cast<std::uint8_t>(e.kind), e.a);
        auto it = open_async.find(key);
        if (pd.dropped == 0 && (it == open_async.end() || it->second == 0)) {
          return where(i) + ": async end of " + ev_name(e.kind) + " round " + std::to_string(e.a) +
                 " with no matching begin";
        }
        if (it != open_async.end() && it->second > 0) it->second -= 1;
        continue;
      }
      if (e.phase != Ph::kSpan) continue;
      if (e.t1 < prev_t1) return where(i) + ": completion order not monotone";
      prev_t1 = e.t1;
      while (!frames.empty() && frames.back().t0 >= e.t0) {
        if (frames.back().t1 > e.t1) {
          return where(i) + ": child span extends past its parent (" + ev_name(e.kind) + ")";
        }
        frames.pop_back();
      }
      if (!frames.empty() && frames.back().t1 > e.t0) {
        return where(i) + ": span partially overlaps an earlier sibling (" + ev_name(e.kind) + ")";
      }
      frames.push_back(Frame{e.t0, e.t1});
    }
  }
  return "";
}

std::string render_breakdown(const BreakdownReport& rep) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line, "per-processor activity breakdown (%s, makespan %llu):\n",
                rep.domain == ClockDomain::kVirtual ? "virtual units" : "wall ns",
                static_cast<unsigned long long>(rep.makespan));
  out += line;
  out += "  proc    reduce%     comm%     hold%     idle%          busy\n";
  double max_other_pct = 0.0;
  for (std::size_t p = 0; p < rep.procs.size(); ++p) {
    const ProcBreakdown& b = rep.procs[p];
    double total = rep.makespan > 0 ? static_cast<double>(rep.makespan) : 1.0;
    double reduce = 100.0 * static_cast<double>(b.reduce) / total;
    // The unattributed residual is protocol-driving engine time; fold it
    // into comm so the four columns partition the makespan.
    double comm = 100.0 * static_cast<double>(b.comm + b.other) / total;
    double hold = 100.0 * static_cast<double>(b.hold) / total;
    double idle = 100.0 * static_cast<double>(b.idle) / total;
    max_other_pct = std::max(max_other_pct, 100.0 * static_cast<double>(b.other) / total);
    std::snprintf(line, sizeof line, "  %4zu  %8.2f  %8.2f  %8.2f  %8.2f  %12llu\n", p, reduce,
                  comm, hold, idle, static_cast<unsigned long long>(b.busy()));
    out += line;
  }
  std::snprintf(line, sizeof line, "  load imbalance (max/mean busy): %.3f\n", rep.load_imbalance);
  out += line;
  double cp_pct = rep.makespan > 0
                      ? 100.0 * static_cast<double>(rep.critical_path) /
                            static_cast<double>(rep.makespan)
                      : 0.0;
  std::snprintf(line, sizeof line, "  critical-path estimate (busiest proc): %llu (%.1f%% of makespan)\n",
                static_cast<unsigned long long>(rep.critical_path), cp_pct);
  out += line;
  std::snprintf(line, sizeof line, "  unattributed engine time (folded into comm%%): max %.2f%%\n",
                max_other_pct);
  out += line;
  std::uint64_t ms = 0, mb = 0, me = 0, mc = 0;
  for (const ProcBreakdown& b : rep.procs) {
    ms += b.mat_symbolic;
    mb += b.mat_build;
    me += b.mat_eliminate;
    mc += b.mat_convert;
  }
  if (ms + mb + me + mc > 0) {
    std::snprintf(line, sizeof line,
                  "  matrix phases (within reduce): symbolic %llu  build %llu  eliminate %llu"
                  "  convert %llu\n",
                  static_cast<unsigned long long>(ms), static_cast<unsigned long long>(mb),
                  static_cast<unsigned long long>(me), static_cast<unsigned long long>(mc));
    out += line;
  }
  if (rep.dropped_events > 0) {
    std::snprintf(line, sizeof line,
                  "  WARNING: %llu events dropped (ring overflow) — breakdown is partial\n",
                  static_cast<unsigned long long>(rep.dropped_events));
    out += line;
  }
  return out;
}

}  // namespace gbd
