// The gbd_serve daemon: a persistent, multi-tenant Gröbner job server.
//
// One JobServer keeps a pool of resident worker threads alive across an
// arbitrary stream of problems — the antithesis of the one-shot launchers:
// startup cost (thread spawn, machine setup) is paid once, then thousands of
// queued jobs flow through the same pool. Clients connect over TCP and speak
// GBDF frames (net/frame.hpp) carrying the serve/wire.hpp job protocol.
//
// Threading model:
//   - One I/O thread owns every socket: it accepts connections, decodes
//     frames, performs admission (parse, validate, canonicalize, enqueue)
//     and is the only writer to any connection. It doubles as the reaper
//     (deadline expiry) and the progress ticker.
//   - `workers` worker threads block on JobManager::pop and execute jobs on
//     the configured backend (sequential engine, or GL-P via a per-job
//     Sim/Thread machine through the groebner_parallel_machine seam).
//     Workers never touch sockets: results and events go through a locked
//     outgoing queue and a self-pipe wakes the I/O thread to flush them.
//
// Failure semantics:
//   - A worker whose backend raises NetError mid-job (a dead rank — or the
//     fault_hook test seam simulating one) dumps a flight record naming the
//     rank, then requeues the job at the front of its priority level; after
//     max_attempts the job fails instead. The daemon itself never dies with
//     a job.
//   - Exactly one kJobResult is sent per admitted token; requeues emit
//     kJobEvent transitions, never a second result. A disconnected client's
//     jobs are cancelled (queued) or stopped (running) and their results
//     discarded.
//   - Hostile bytes (bad frame, bad payload, oversized submit) drop that
//     connection with a diagnostic; they never crash the daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "gb/engine_common.hpp"
#include "serve/cache.hpp"
#include "serve/job_manager.hpp"
#include "serve/wire.hpp"

namespace gbd {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; JobServer::port() after start
  std::uint32_t workers = 2;
  ServeBackend backend = ServeBackend::kSequential;
  /// Logical processors per job for the kSim / kThread backends.
  int backend_procs = 4;
  std::size_t queue_capacity = 1024;  ///< admission bound; beyond it: kRejected
  std::uint32_t max_attempts = 3;     ///< executions before a dying job fails
  std::size_t cache_capacity = 256;   ///< result-cache entries (0 disables)
  std::uint64_t default_deadline_ms = 0;  ///< applied when a submit says 0; 0 = none
  std::uint32_t max_payload = 1u << 20;   ///< per-frame bound on client bytes
  std::size_t max_generators = 256;   ///< admission bound on system size
  std::size_t max_vars = 64;
  /// Start with the worker pool paused: jobs queue but none run until
  /// resume() — lets a bench enqueue its whole corpus first.
  bool start_paused = false;
  /// Arm the crash flight recorder at this path (empty = leave unarmed).
  std::string flight_path;
  /// Milliseconds between kJobEvent progress pushes for subscribed jobs.
  int progress_interval_ms = 50;
  /// Base engine options for every job (coeff/stop are overridden per job).
  GbConfig gb;
  /// Test seam: called on a worker thread right before each execution
  /// attempt; may throw NetError to simulate that worker's rank dying
  /// mid-job (the chaos drill). Never set in production.
  std::function<void(const Job&)> fault_hook;
};

class JobServer {
 public:
  explicit JobServer(ServerConfig cfg);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Bind + listen, spawn the I/O thread and the worker pool.
  /// Returns false with *err on bind failure.
  bool start(std::string* err = nullptr);

  /// Stop accepting, cancel queued jobs, stop running jobs, join threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (after start); useful with cfg.port == 0.
  std::uint16_t port() const;

  /// Release a start_paused worker pool.
  void resume();

  /// In-process statistics snapshot (same data the wire kServerStats carries).
  ServerStatsMsg stats() const;
  CacheStats cache_stats() const;
  std::size_t queue_depth() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gbd
