// Google-benchmark comparison of the two reduce_full paths (naive flat-vector
// rebuild vs geobucket accumulator) on inputs from the benchmark problems,
// in real nanoseconds. The two paths produce bit-identical normal forms and
// step counts (tests/reduce_diff_test.cpp), so any wall-clock delta is pure
// kernel efficiency: term movement, BigInt allocation and find_reducer
// filtering.
//
// Counters reported per benchmark: steps, find_reducer probes, divmask
// rejects and BigInt heap spills for one reduction at that configuration.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/zp.hpp"
#include "gb/sequential.hpp"
#include "poly/coeff.hpp"
#include "poly/divmask.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "problems/problems.hpp"
#include "support/check.hpp"

namespace gbd {
namespace {

const std::vector<std::string>& problem_names() {
  static const std::vector<std::string> names = {"arnborg4", "katsura4", "trinks2", "trinks1"};
  return names;
}

/// The heaviest s-polynomial over the elements of `basis`: s-polynomials of
/// a Gröbner basis reduce all the way to zero, so this drives the longest
/// reduction chains REDUCE(h, G) sees on this problem.
Polynomial heavy_spoly(const PolyContext& ctx, const std::vector<Polynomial>& basis) {
  Polynomial heaviest;
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      Polynomial s = spoly(ctx, basis[i], basis[j]);
      if (s.is_zero()) continue;
      if (heaviest.is_zero() || s.nterms() > heaviest.nterms()) heaviest = std::move(s);
    }
  }
  GBD_CHECK(!heaviest.is_zero());
  return heaviest;
}

void reduce_bench(benchmark::State& state, bool geobuckets) {
  const std::string& name = problem_names()[static_cast<std::size_t>(state.range(0))];
  PolySystem sys = load_problem(name);
  std::vector<Polynomial> basis = groebner_sequential(sys).basis;
  Polynomial h = heavy_spoly(sys.ctx, basis);
  VectorReducerSet set(&basis);
  ReduceOptions opts;
  opts.tail_reduce = true;  // full normal form: the long-tail case
  opts.use_geobuckets = geobuckets;

  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_full(sys.ctx, h, set, opts));
  }

  reset_find_reducer_stats();
  LimbVec::reset_heap_allocs();
  ReduceOutcome out = reduce_full(sys.ctx, h, set, opts);
  const FindReducerStats& st = find_reducer_stats();
  state.SetLabel(name);
  state.counters["steps"] = static_cast<double>(out.steps);
  state.counters["probes"] = static_cast<double>(st.probes);
  state.counters["mask_rejects"] = static_cast<double>(st.mask_rejects);
  state.counters["heap_allocs"] = static_cast<double>(LimbVec::heap_allocs());
}

void BM_ReduceFullNaive(benchmark::State& state) { reduce_bench(state, false); }
void BM_ReduceFullGeobucket(benchmark::State& state) { reduce_bench(state, true); }
BENCHMARK(BM_ReduceFullNaive)->DenseRange(0, 3);
BENCHMARK(BM_ReduceFullGeobucket)->DenseRange(0, 3);

/// Same reduction, coefficients in Z/pZ (Montgomery word arithmetic) instead
/// of exact integers: the per-step cost the multi-modular driver's jobs pay.
/// The BigInt heap-spill counter should read ~0 here — every coefficient is
/// one canonical machine word.
void reduce_bench_zp(benchmark::State& state, bool geobuckets) {
  const std::string& name = problem_names()[static_cast<std::size_t>(state.range(0))];
  const std::uint64_t prime = prev_prime_u64(std::uint64_t{1} << 62);
  PolySystem sys = load_problem(name);
  CoeffOptions zp = CoeffOptions::zp(prime);
  std::vector<Polynomial> basis = groebner_sequential(sys).basis;
  Polynomial h = heavy_spoly(sys.ctx, basis);
  for (auto& g : basis) coeff_normalize(sys.ctx, &g, zp);
  coeff_normalize(sys.ctx, &h, zp);
  VectorReducerSet set(&basis);
  ReduceOptions opts;
  opts.tail_reduce = true;
  opts.use_geobuckets = geobuckets;
  opts.coeff = zp;

  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_full(sys.ctx, h, set, opts));
  }

  reset_find_reducer_stats();
  LimbVec::reset_heap_allocs();
  ReduceOutcome out = reduce_full(sys.ctx, h, set, opts);
  const FindReducerStats& st = find_reducer_stats();
  state.SetLabel(name + " mod p");
  state.counters["steps"] = static_cast<double>(out.steps);
  state.counters["probes"] = static_cast<double>(st.probes);
  state.counters["mask_rejects"] = static_cast<double>(st.mask_rejects);
  state.counters["heap_allocs"] = static_cast<double>(LimbVec::heap_allocs());
}

void BM_ReduceFullNaiveZp(benchmark::State& state) { reduce_bench_zp(state, false); }
void BM_ReduceFullGeobucketZp(benchmark::State& state) { reduce_bench_zp(state, true); }
BENCHMARK(BM_ReduceFullNaiveZp)->DenseRange(0, 3);
BENCHMARK(BM_ReduceFullGeobucketZp)->DenseRange(0, 3);

}  // namespace
}  // namespace gbd

BENCHMARK_MAIN();
