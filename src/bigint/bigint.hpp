// Arbitrary-precision signed integers.
//
// The paper's implementation used the CMU bignum package for exact rational
// coefficient arithmetic; this is our from-scratch equivalent. Representation
// is sign–magnitude with little-endian 32-bit limbs (no leading zero limbs;
// zero is the empty limb vector with sign 0). Multiplication switches from
// schoolbook to Karatsuba above a limb threshold; division is Knuth's
// algorithm D; gcd is the binary algorithm.
//
// The limb storage is a small-vector (LimbVec): magnitudes of up to
// kInlineLimbs limbs (64 bits) live inline in the BigInt object and never
// touch the heap. Gröbner coefficient distributions are dominated by one-
// and two-limb values, so the common case allocates nothing; LimbVec counts
// the heap allocations it does make (see heap_allocs) so benchmarks can
// report allocation pressure. Single-limb operands additionally take direct
// machine-arithmetic fast paths in +, -, *, / and the in-place compound
// operators.
//
// All operations charge CostCounter in proportion to the limb work they do,
// so coefficient growth is visible to the simulated machine's virtual clock.
// The fast paths charge exactly what the generic limb loops would charge for
// the same operand sizes — the cost model is a property of the arithmetic,
// not of the representation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace gbd {

class Writer;
class Reader;

/// Growable little-endian limb buffer with inline storage for small values.
/// Deliberately minimal: just the vector operations the BigInt kernels use.
class LimbVec {
 public:
  static constexpr std::size_t kInlineLimbs = 2;

  LimbVec() = default;
  LimbVec(std::size_t n, std::uint32_t fill) { resize(n, fill); }
  LimbVec(const std::uint32_t* first, const std::uint32_t* last) {
    resize(static_cast<std::size_t>(last - first), 0);
    if (size_ > 0) std::memcpy(data(), first, size_ * sizeof(std::uint32_t));
  }

  LimbVec(const LimbVec& o) : LimbVec(o.data(), o.data() + o.size()) {}
  LimbVec(LimbVec&& o) noexcept { steal(o); }
  LimbVec& operator=(const LimbVec& o) {
    if (this != &o) {
      size_ = 0;
      resize(o.size_, 0);
      if (size_ > 0) std::memcpy(data(), o.data(), size_ * sizeof(std::uint32_t));
    }
    return *this;
  }
  LimbVec& operator=(LimbVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~LimbVec() { release(); }

  std::uint32_t* data() { return cap_ <= kInlineLimbs ? inline_ : heap_; }
  const std::uint32_t* data() const { return cap_ <= kInlineLimbs ? inline_ : heap_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  std::uint32_t operator[](std::size_t i) const { return data()[i]; }
  std::uint32_t& operator[](std::size_t i) { return data()[i]; }
  std::uint32_t back() const { return data()[size_ - 1]; }

  std::uint32_t* begin() { return data(); }
  std::uint32_t* end() { return data() + size_; }
  const std::uint32_t* begin() const { return data(); }
  const std::uint32_t* end() const { return data() + size_; }

  void push_back(std::uint32_t v) {
    if (size_ == cap_) grow(2 * cap_ + 2);
    data()[size_++] = v;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  void resize(std::size_t n, std::uint32_t fill = 0) {
    if (n > cap_) grow(n);
    std::uint32_t* d = data();
    for (std::size_t i = size_; i < n; ++i) d[i] = fill;
    size_ = static_cast<std::uint32_t>(n);
  }

  bool operator==(const LimbVec& o) const {
    return size_ == o.size_ &&
           (size_ == 0 || std::memcmp(data(), o.data(), size_ * sizeof(std::uint32_t)) == 0);
  }
  bool operator!=(const LimbVec& o) const { return !(*this == o); }

  /// Thread-local count of heap (spill) allocations since the last reset —
  /// the benchmark-visible "BigInt allocations" metric.
  static std::uint64_t heap_allocs();
  static void reset_heap_allocs();

 private:
  void grow(std::size_t newcap);  // out-of-line: counts the allocation
  void release() {
    if (cap_ > kInlineLimbs) delete[] heap_;
    cap_ = kInlineLimbs;
    size_ = 0;
  }
  void steal(LimbVec& o) {
    size_ = o.size_;
    cap_ = o.cap_;
    if (o.cap_ > kInlineLimbs) {
      heap_ = o.heap_;
      o.cap_ = kInlineLimbs;
      o.size_ = 0;
    } else if (size_ > 0) {
      std::memcpy(inline_, o.inline_, size_ * sizeof(std::uint32_t));
    }
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineLimbs;
  union {
    std::uint32_t inline_[kInlineLimbs];
    std::uint32_t* heap_;
  };
};

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) — int literals are pervasive

  /// Parse a decimal string with optional leading '-'. Aborts on bad input;
  /// use parse() for fallible parsing.
  static BigInt from_string(std::string_view s);

  /// Fallible decimal parse; returns false and leaves *out untouched on error.
  static bool parse(std::string_view s, BigInt* out);

  bool is_zero() const { return sign_ == 0; }
  bool is_one() const { return sign_ == 1 && mag_.size() == 1 && mag_[0] == 1; }
  bool is_negative() const { return sign_ < 0; }
  /// -1, 0 or +1.
  int signum() const { return sign_; }

  /// Number of significant bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  /// Number of 32-bit limbs (0 for zero).
  std::size_t limbs() const { return mag_.size(); }

  /// Value as int64 if it fits; aborts otherwise (see fits_int64).
  std::int64_t to_int64() const;
  bool fits_int64() const;

  std::string to_string() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated (C-style) quotient. rhs must be nonzero.
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder with the sign of the dividend (C semantics). rhs must be nonzero.
  BigInt operator%(const BigInt& rhs) const;

  /// In-place add/subtract: reuses this value's limb buffer whenever it has
  /// the capacity (always for inline-small values), so `x += y` in a hot
  /// loop performs no allocation instead of building `x + y` and assigning.
  BigInt& operator+=(const BigInt& rhs) {
    add_in_place(rhs, rhs.sign_);
    return *this;
  }
  BigInt& operator-=(const BigInt& rhs) {
    add_in_place(rhs, -rhs.sign_);
    return *this;
  }
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator/=(const BigInt& rhs) { return *this = *this / rhs; }
  BigInt& operator%=(const BigInt& rhs) { return *this = *this % rhs; }

  /// Quotient and remainder in one division.
  static void divmod(const BigInt& num, const BigInt& den, BigInt* quot, BigInt* rem);

  /// Greatest common divisor; always nonnegative. gcd(0,0) == 0.
  static BigInt gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple; always nonnegative.
  static BigInt lcm(const BigInt& a, const BigInt& b);
  static BigInt pow(const BigInt& base, std::uint32_t exp);

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  bool operator==(const BigInt& rhs) const { return sign_ == rhs.sign_ && mag_ == rhs.mag_; }
  bool operator!=(const BigInt& rhs) const { return !(*this == rhs); }
  bool operator<(const BigInt& rhs) const { return cmp(rhs) < 0; }
  bool operator<=(const BigInt& rhs) const { return cmp(rhs) <= 0; }
  bool operator>(const BigInt& rhs) const { return cmp(rhs) > 0; }
  bool operator>=(const BigInt& rhs) const { return cmp(rhs) >= 0; }

  /// Three-way comparison: negative, zero or positive.
  int cmp(const BigInt& rhs) const;

  /// Marshal to / unmarshal from a message payload.
  void write(Writer& w) const;
  static BigInt read(Reader& r);

  /// Bytes this value occupies on the wire (for communication-volume stats).
  std::size_t wire_size() const { return 1 + 8 + 4 * mag_.size(); }

  /// FNV-1a hash of the canonical representation.
  std::size_t hash() const;

 private:
  using Mag = LimbVec;

  static int cmp_mag(const Mag& a, const Mag& b);
  static Mag add_mag(const Mag& a, const Mag& b);
  /// Requires |a| >= |b|.
  static Mag sub_mag(const Mag& a, const Mag& b);
  static Mag mul_mag(const Mag& a, const Mag& b);
  static Mag mul_school(const Mag& a, const Mag& b);
  static Mag mul_karatsuba(const Mag& a, const Mag& b);
  static void divmod_mag(const Mag& num, const Mag& den, Mag* quot, Mag* rem);
  static void trim(Mag& v);
  void normalize();

  /// *this = *this + rsign·|rhs| without allocating when the result fits the
  /// existing buffer. Backbone of += and -=.
  void add_in_place(const BigInt& rhs, int rsign);

  BigInt(int sign, Mag mag) : sign_(sign), mag_(std::move(mag)) { normalize(); }

  /// Build from a sign and a raw 64-bit magnitude (inline, no allocation).
  static BigInt from_parts(int sign, std::uint64_t mag);

  int sign_ = 0;
  Mag mag_;
};

}  // namespace gbd
