// Work accounting in abstract "term-operation" units.
//
// The simulated machine (machine/sim_machine.hpp) advances virtual time in
// proportion to the computational work a logical processor performs. The
// polynomial kernels charge this thread-local counter as they run (one unit
// per coefficient word-operation / monomial exponent-operation); the machine
// drains the counter into the processor's virtual clock at yield points.
//
// This is the same proxy the paper uses when it reports "time for a single
// reduction step": work is measured where it happens, independent of host
// hardware, and identically in sequential, replayed and parallel executions.
#pragma once

#include <cstdint>

namespace gbd {

/// Thread-local accumulated work, in term-operation units.
struct CostCounter {
  static std::uint64_t& local();

  /// Add `units` of work to the calling thread's counter.
  static void charge(std::uint64_t units) { local() += units; }

  /// Read and reset the calling thread's counter.
  static std::uint64_t drain() {
    std::uint64_t& c = local();
    std::uint64_t v = c;
    c = 0;
    return v;
  }

  /// Read without resetting.
  static std::uint64_t peek() { return local(); }
};

/// RAII scope that measures the work performed inside it.
class CostScope {
 public:
  CostScope() : start_(CostCounter::peek()) {}
  std::uint64_t elapsed() const { return CostCounter::peek() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace gbd
