// Differential coverage for the batched F4-style matrix reduction path
// (poly/symbolic + poly/matrix + poly/echelon and its engine wiring):
//
//   · per-row normal forms: reduce_batch with interreduce off must reproduce
//     the per-poly geobucket oracle (reduce_full, tail_reduce) bit-for-bit —
//     including which rows die — across random systems × orderings ×
//     {exact, three primes}. This is the bit-identity claim of echelon.hpp:
//     symbolic preprocessing delegates reducer *choice* to the same
//     ReducerSet::find_reducer, and the kernel performs the identical
//     fraction-free (resp. modular-inverse) cancellation steps;
//   · whole runs: the sequential engine with matrix_reduce on must reach the
//     same reduced basis as the per-poly path on the benchmark corpus, over
//     Q and over Zp, for small batch caps (many rounds) and a threaded
//     elimination kernel (thread count must not change results);
//   · the GL-P engine under chaos: batching changes *when* replicas are
//     polled (never during a matrix round — the frame holds pointers into
//     replica storage), so the protocol invariants get their own sweep;
//   · the multi-modular driver passes matrix_reduce through to its per-prime
//     jobs and still reconstructs the exact rational answer.
#include "poly/echelon.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bigint/zp.hpp"
#include "gb/modular.hpp"
#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "machine/chaos.hpp"
#include "machine/thread_machine.hpp"
#include "poly/coeff.hpp"
#include "poly/reduce.hpp"
#include "poly/simd.hpp"
#include "poly/spoly.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"

namespace gbd {
namespace {

/// Three moduli of very different sizes: a 31-bit engine-sized prime, a
/// 20-bit one, and a small prime where coefficient collisions (rows dying
/// mod p that survive over Q) are common.
const std::uint64_t kPrimes[] = {prev_prime_u64(std::uint64_t{1} << 31),
                                 prev_prime_u64(std::uint64_t{1} << 20), prev_prime_u64(40000)};

/// Rebuild a system under a different monomial order (terms re-sorted;
/// content untouched, so primitivity survives).
PolySystem with_order(const PolySystem& sys, OrderKind order) {
  PolySystem out;
  out.name = sys.name;
  out.ctx = sys.ctx;
  out.ctx.order = order;
  for (const auto& p : sys.polys) {
    std::vector<Term> terms(p.terms().begin(), p.terms().end());
    out.polys.push_back(Polynomial::from_terms(out.ctx, std::move(terms)));
  }
  return out;
}

/// Canonical nonzero image of a generating set for `coeff` (reduce_batch and
/// spoly both require canonical inputs; over a small prime a generator can
/// vanish entirely).
std::vector<Polynomial> canonical_set(const PolyContext& ctx, const std::vector<Polynomial>& in,
                                      const CoeffOptions& coeff) {
  std::vector<Polynomial> out;
  for (const auto& p : in) {
    Polynomial q = p;
    coeff_normalize(ctx, &q, coeff);
    if (!q.is_zero()) out.push_back(std::move(q));
  }
  return out;
}

/// The differential core: every pairwise non-coprime S-polynomial of
/// `reducers` goes through the matrix as one batch; each surviving row must
/// equal the per-poly tail-reduced normal form exactly, and src_zeroed must
/// flag exactly the rows whose oracle normal form is zero.
void expect_matrix_matches_per_poly(const PolyContext& ctx,
                                    const std::vector<Polynomial>& reducers,
                                    const CoeffOptions& coeff, const std::string& label) {
  VectorReducerSet set(&reducers);
  std::vector<Polynomial> rows;
  for (std::size_t i = 0; i < reducers.size(); ++i) {
    for (std::size_t j = i + 1; j < reducers.size(); ++j) {
      if (Monomial::coprime(reducers[i].hmono(), reducers[j].hmono())) continue;
      Polynomial s = spoly(ctx, reducers[i], reducers[j], coeff);
      if (!s.is_zero()) rows.push_back(std::move(s));
    }
  }
  if (rows.empty()) return;

  ReduceOptions ropts;
  ropts.tail_reduce = true;
  ropts.coeff = coeff;
  std::vector<Polynomial> oracle;
  oracle.reserve(rows.size());
  for (const auto& r : rows) oracle.push_back(reduce_full(ctx, r, set, ropts).poly);

  EchelonOptions eopts;
  eopts.coeff = coeff;
  eopts.interreduce = false;  // one output row per input row, no D-block mixing
  EchelonOutput out = reduce_batch(ctx, rows, set, eopts);

  ASSERT_EQ(out.src_zeroed.size(), rows.size()) << label;
  std::size_t next = 0;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    if (oracle[s].is_zero()) {
      EXPECT_TRUE(out.src_zeroed[s]) << label << " row " << s << ": matrix kept a row the "
                                     << "per-poly path reduces to zero";
      continue;
    }
    ASSERT_LT(next, out.rows.size()) << label << " row " << s << ": matrix zeroed a surviving row";
    ASSERT_EQ(out.rows[next].src, s) << label;
    EXPECT_FALSE(out.src_zeroed[s]) << label << " row " << s;
    EXPECT_TRUE(out.rows[next].poly.equals(oracle[s]))
        << label << " row " << s << "\n  matrix: " << out.rows[next].poly.to_string(ctx)
        << "\n  oracle: " << oracle[s].to_string(ctx);
    ++next;
  }
  EXPECT_EQ(next, out.rows.size()) << label << ": matrix produced extra rows";
}

TEST(MatrixNormalFormTest, RandomSystemsAcrossOrderingsAndFields) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    PolySystem base = random_system(rng, 4, 6, 4, 5, 8);
    for (OrderKind order : {OrderKind::kGrLex, OrderKind::kGRevLex, OrderKind::kLex}) {
      PolySystem sys = with_order(base, order);
      std::string where =
          "seed " + std::to_string(seed) + " order " + order_name(order);
      expect_matrix_matches_per_poly(sys.ctx, canonical_set(sys.ctx, sys.polys, {}),
                                     CoeffOptions{}, where + " exact");
      for (std::uint64_t p : kPrimes) {
        CoeffOptions zp = CoeffOptions::zp(p);
        expect_matrix_matches_per_poly(sys.ctx, canonical_set(sys.ctx, sys.polys, zp), zp,
                                       where + " mod " + std::to_string(p));
      }
    }
  }
}

TEST(MatrixNormalFormTest, CorpusGenerators) {
  // The real benchmark inputs exercise deeper reduction chains (transitive
  // symbolic closure) than the random systems do.
  for (const char* name : {"arnborg4", "katsura4", "trinks2"}) {
    PolySystem sys = load_problem(name);
    expect_matrix_matches_per_poly(sys.ctx, canonical_set(sys.ctx, sys.polys, {}),
                                   CoeffOptions{}, std::string(name) + " exact");
    CoeffOptions zp = CoeffOptions::zp(kPrimes[0]);
    expect_matrix_matches_per_poly(sys.ctx, canonical_set(sys.ctx, sys.polys, zp), zp,
                                   std::string(name) + " zp");
  }
}

/// Run the sequential engine both ways and compare canonical reduced bases.
void expect_equal_reduced_basis(const PolySystem& sys, const CoeffOptions& coeff,
                                std::size_t batch_max, std::size_t threads) {
  GbConfig per_poly;
  per_poly.coeff = coeff;
  GbConfig matrix = per_poly;
  matrix.matrix_reduce = true;
  matrix.matrix_batch_max = batch_max;
  matrix.matrix_threads = threads;

  SequentialResult a = groebner_sequential(sys, per_poly);
  SequentialResult b = groebner_sequential(sys, matrix);
  std::vector<Polynomial> ga = reduce_basis(sys.ctx, a.basis, coeff);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, b.basis, coeff);
  std::string label = sys.name + " batch_max " + std::to_string(batch_max) + " threads " +
                      std::to_string(threads);
  ASSERT_EQ(ga.size(), gb.size()) << label;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_TRUE(ga[i].equals(gb[i])) << label << " element " << i;
  }
}

TEST(MatrixSequentialTest, CorpusReducedBasesMatchExact) {
  for (const char* name : {"arnborg4", "katsura4", "trinks2", "rose"}) {
    expect_equal_reduced_basis(load_problem(name), CoeffOptions{}, 64, 1);
  }
}

TEST(MatrixSequentialTest, CorpusReducedBasesMatchZp) {
  for (const char* name : {"arnborg4", "katsura4", "trinks1", "rose"}) {
    for (std::uint64_t p : {kPrimes[0], kPrimes[2]}) {
      expect_equal_reduced_basis(load_problem(name), CoeffOptions::zp(p), 64, 1);
    }
  }
}

TEST(MatrixSequentialTest, TinyBatchesAndThreadsDoNotChangeResults) {
  // batch_max 2 forces many small rounds (frame reuse across degrees);
  // threads 3 exercises the parallel pivot sweep's determinism claim.
  PolySystem sys = load_problem("katsura4");
  expect_equal_reduced_basis(sys, CoeffOptions{}, 2, 1);
  expect_equal_reduced_basis(sys, CoeffOptions::zp(kPrimes[0]), 2, 3);
  expect_equal_reduced_basis(load_problem("arnborg4"), CoeffOptions::zp(kPrimes[2]), 3, 2);
}

TEST(MatrixSequentialTest, ParametricFamiliesMatch) {
  // Generated (not table-text) inputs, one size beyond the builtin corpus.
  expect_equal_reduced_basis(load_problem("katsura(5)"), CoeffOptions::zp(kPrimes[0]), 64, 1);
  expect_equal_reduced_basis(load_problem("cyclic(5)"), CoeffOptions::zp(kPrimes[0]), 64, 1);
}

TEST(MatrixGlpTest, SimMatchesSequentialOracle) {
  for (const char* name : {"arnborg4", "katsura4"}) {
    PolySystem sys = load_problem(name);
    for (bool use_zp : {false, true}) {
      CoeffOptions coeff = use_zp ? CoeffOptions::zp(kPrimes[0]) : CoeffOptions{};
      GbConfig seq;
      seq.coeff = coeff;
      std::vector<Polynomial> want =
          reduce_basis(sys.ctx, groebner_sequential(sys, seq).basis, coeff);

      ParallelConfig cfg;
      cfg.gb.coeff = coeff;
      cfg.gb.matrix_reduce = true;
      cfg.gb.matrix_batch_max = 8;
      cfg.nprocs = 4;
      cfg.seed = 3;
      cfg.check_invariants = true;
      ParallelResult res = groebner_parallel(sys, cfg);
      EXPECT_TRUE(res.violations.empty())
          << name << (use_zp ? " zp: " : " exact: ")
          << (res.violations.empty() ? "" : res.violations.front());
      EXPECT_GT(res.invariant_sweeps, 0u);
      std::vector<Polynomial> got = reduce_basis(sys.ctx, res.basis, coeff);
      ASSERT_EQ(got.size(), want.size()) << name;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].equals(want[i])) << name << " element " << i;
      }
    }
  }
}

TEST(MatrixGlpTest, ChaosScheduleStaysCoherent) {
  // Full-intensity schedule adversary: jitter, reordering, duplication of
  // the idempotent handlers, starvation. Matrix rounds must neither serve
  // the network mid-frame (pointer stability) nor break protocol
  // invariants, and the answer must still be the oracle's.
  PolySystem sys = load_problem("arnborg4");
  CoeffOptions coeff = CoeffOptions::zp(kPrimes[0]);
  GbConfig seq;
  seq.coeff = coeff;
  std::vector<Polynomial> want =
      reduce_basis(sys.ctx, groebner_sequential(sys, seq).basis, coeff);

  for (std::uint64_t chaos_seed : {11u, 12u}) {
    ParallelConfig cfg;
    cfg.gb.coeff = coeff;
    cfg.gb.matrix_reduce = true;
    cfg.gb.matrix_batch_max = 4;
    cfg.nprocs = 4;
    cfg.seed = 1;
    cfg.chaos = ChaosConfig::intensity(3, chaos_seed);
    cfg.check_invariants = true;
    ParallelResult res = groebner_parallel(sys, cfg);
    EXPECT_TRUE(res.violations.empty())
        << "chaos seed " << chaos_seed << ": "
        << (res.violations.empty() ? "" : res.violations.front());
    EXPECT_GT(res.invariant_sweeps, 0u);
    std::vector<Polynomial> got = reduce_basis(sys.ctx, res.basis, coeff);
    ASSERT_EQ(got.size(), want.size()) << "chaos seed " << chaos_seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i].equals(want[i])) << "chaos seed " << chaos_seed << " element " << i;
    }
  }
}

// ——— PR-8: vectorized sweep, dispatch pinning, frame memo, kernel lanes ———

/// Scoped override of the GBD_DISABLE_SIMD environment variable, restoring
/// whatever was there (so the forced-scalar CI job's setting survives this
/// binary's dispatch tests).
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prev = std::getenv("GBD_DISABLE_SIMD");
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value == nullptr) {
      unsetenv("GBD_DISABLE_SIMD");
    } else {
      setenv("GBD_DISABLE_SIMD", value, 1);
    }
  }
  ~ScopedSimdEnv() {
    if (had_) {
      setenv("GBD_DISABLE_SIMD", saved_.c_str(), 1);
    } else {
      unsetenv("GBD_DISABLE_SIMD");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(SimdDispatchTest, EnvVarForcesScalarAndBack) {
  {
    ScopedSimdEnv force("1");
    EXPECT_EQ(simd_level(), SimdLevel::kScalar);
  }
  {
    ScopedSimdEnv clear(nullptr);
    SimdLevel native = simd_level();
#if defined(__x86_64__) && !defined(GBD_DISABLE_SIMD)
    EXPECT_EQ(native, cpu_has_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar);
#else
    EXPECT_EQ(native, SimdLevel::kScalar);
#endif
  }
}

TEST(SimdKernelTest, DelayedAxpyLanesMatchWideOracle) {
  // Edge moduli for the overflow-budget proof: the smallest legal field,
  // the Mersenne prime 2^31−1, and the largest SIMD-eligible prime below
  // 2^32 (products graze the top of the 64-bit lane).
  for (std::uint64_t p : {std::uint64_t{3}, (std::uint64_t{1} << 31) - 1,
                          prev_prime_u64(std::uint64_t{1} << 32)}) {
    ZpField field(p);
    ASSERT_TRUE(field.delayed_reduction_ok());
    const std::uint64_t r64 = field.r_mod_p();
    Rng rng(7 + p);
    const std::size_t n = 37;  // covers the 4-lane vector body and the tail
    std::vector<std::uint64_t> lanes(n), lanes_scalar(n);
    std::vector<std::uint64_t> want(n);  // true residues, tracked alongside
    for (std::size_t i = 0; i < n; ++i) {
      lanes[i] = rng.next();  // arbitrary u64 starting point
      lanes_scalar[i] = lanes[i];
      want[i] = lanes[i] % p;
    }
    std::vector<std::uint32_t> coeffs(n);
    // Many unnormalized updates in a row: lanes wander the full 64-bit
    // range and wrap repeatedly — exactly the regime the proof covers.
    for (int round = 0; round < 64; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        coeffs[i] = static_cast<std::uint32_t>(rng.below(p));
      }
      std::uint64_t fneg = p - (1 + rng.below(p - 1));
      for (std::size_t i = 0; i < n; ++i) {
        unsigned __int128 t =
            static_cast<unsigned __int128>(fneg) * coeffs[i] + want[i];
        want[i] = static_cast<std::uint64_t>(t % p);
      }
      zp_axpy_delayed(lanes.data(), coeffs.data(), n, fneg, r64, simd_level());
      zp_axpy_delayed_scalar(lanes_scalar.data(), coeffs.data(), n, fneg, r64);
    }
    for (std::size_t i = 0; i < n; ++i) {
      // The two kernels perform the identical lane arithmetic: raw 64-bit
      // lanes agree bit for bit, and both are congruent to the oracle.
      EXPECT_EQ(lanes[i], lanes_scalar[i]) << "p " << p << " lane " << i;
      EXPECT_EQ(lanes[i] % p, want[i]) << "p " << p << " lane " << i;
    }
  }
}

TEST(SimdDifferentialTest, ForcedScalarAndAutoDispatchAgreeRowForRow) {
  // Whole-kernel differential: reduce_batch under pinned-scalar dispatch
  // against automatic dispatch, row for row, across field sizes including
  // one past the delayed-reduction bound (2^62: auto dispatch itself must
  // fall back to the Montgomery kernel).
  const std::uint64_t primes[] = {3, (std::uint64_t{1} << 31) - 1,
                                  prev_prime_u64(std::uint64_t{1} << 32),
                                  prev_prime_u64(std::uint64_t{1} << 62)};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    PolySystem sys = random_system(rng, 4, 6, 4, 5, 8);
    for (std::uint64_t p : primes) {
      CoeffOptions zp = CoeffOptions::zp(p);
      std::vector<Polynomial> reducers = canonical_set(sys.ctx, sys.polys, zp);
      VectorReducerSet set(&reducers);
      std::vector<Polynomial> rows;
      for (std::size_t i = 0; i < reducers.size(); ++i) {
        for (std::size_t j = i + 1; j < reducers.size(); ++j) {
          if (Monomial::coprime(reducers[i].hmono(), reducers[j].hmono())) continue;
          Polynomial s = spoly(sys.ctx, reducers[i], reducers[j], zp);
          if (!s.is_zero()) rows.push_back(std::move(s));
        }
      }
      if (rows.empty()) continue;
      EchelonOptions auto_opts;
      auto_opts.coeff = zp;
      EchelonOptions scalar_opts = auto_opts;
      scalar_opts.force_scalar = true;
      EchelonOutput a = reduce_batch(sys.ctx, rows, set, auto_opts);
      EchelonOutput b = reduce_batch(sys.ctx, rows, set, scalar_opts);
      std::string label = "seed " + std::to_string(seed) + " mod " + std::to_string(p);
      ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
      EXPECT_EQ(a.src_zeroed, b.src_zeroed) << label;
      for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].src, b.rows[i].src) << label;
        EXPECT_TRUE(a.rows[i].poly.equals(b.rows[i].poly)) << label << " row " << i;
      }
    }
  }
}

TEST(MatrixSequentialTest, ForcedScalarMatchesAutoDispatchAndMemoEngages) {
  PolySystem sys = load_problem("katsura4");
  CoeffOptions zp = CoeffOptions::zp(kPrimes[0]);
  GbConfig auto_cfg;
  auto_cfg.coeff = zp;
  auto_cfg.matrix_reduce = true;
  GbConfig scalar_cfg = auto_cfg;
  scalar_cfg.matrix_force_scalar = true;

  const MatrixKernelStats& ks = matrix_kernel_stats();
  const std::uint64_t hits_before = ks.memo_hits;
  const std::uint64_t simd_before = ks.simd_rows;
  SequentialResult a = groebner_sequential(sys, auto_cfg);
  // Adjacent-degree rounds share closure monomials: the frame memo must
  // actually fire, not just exist.
  EXPECT_GT(ks.memo_hits, hits_before);
  if (simd_level() != SimdLevel::kScalar) {
    EXPECT_GT(ks.simd_rows, simd_before) << "host dispatches vector but kernel ran scalar";
  }

  const std::uint64_t scalar_rows_before = ks.scalar_rows;
  SequentialResult b = groebner_sequential(sys, scalar_cfg);
  EXPECT_GT(ks.scalar_rows, scalar_rows_before);

  std::vector<Polynomial> ga = reduce_basis(sys.ctx, a.basis, zp);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, b.basis, zp);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_TRUE(ga[i].equals(gb[i])) << "element " << i;
  }
}

TEST(MatrixGlpTest, KernelLanesAreDeterministicOnSimAndMatchOracle) {
  PolySystem sys = load_problem("katsura4");
  CoeffOptions coeff = CoeffOptions::zp(kPrimes[0]);
  GbConfig seq;
  seq.coeff = coeff;
  std::vector<Polynomial> want =
      reduce_basis(sys.ctx, groebner_sequential(sys, seq).basis, coeff);

  ParallelConfig cfg;
  cfg.gb.coeff = coeff;
  cfg.gb.matrix_reduce = true;
  cfg.gb.matrix_batch_max = 8;
  cfg.gb.matrix_threads = 3;  // sim grants lanes freely; makespan-charged
  cfg.nprocs = 4;
  cfg.seed = 3;
  ParallelResult r1 = groebner_parallel(sys, cfg);
  ParallelResult r2 = groebner_parallel(sys, cfg);
  // Virtual time must be a pure function of the configuration — real lane
  // threads may interleave arbitrarily, but the makespan charge is the max
  // per-lane tally, which is schedule-independent.
  EXPECT_EQ(r1.machine.makespan, r2.machine.makespan);

  cfg.gb.matrix_threads = 1;
  ParallelResult r3 = groebner_parallel(sys, cfg);
  for (const ParallelResult* r : {&r1, &r3}) {
    std::vector<Polynomial> got = reduce_basis(sys.ctx, r->basis, coeff);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i].equals(want[i])) << "element " << i;
    }
  }
}

TEST(MatrixGlpTest, ThreadBackendKernelLanesMatchOracle) {
  // Real threads under the elimination kernel (the TSan job runs this):
  // lanes share nothing but the frame and matrix, so any missing
  // synchronization shows up as a race or a wrong basis.
  PolySystem sys = load_problem("arnborg4");
  CoeffOptions coeff = CoeffOptions::zp(kPrimes[0]);
  GbConfig seq;
  seq.coeff = coeff;
  std::vector<Polynomial> want =
      reduce_basis(sys.ctx, groebner_sequential(sys, seq).basis, coeff);

  ParallelConfig cfg;
  cfg.gb.coeff = coeff;
  cfg.gb.matrix_reduce = true;
  cfg.gb.matrix_batch_max = 8;
  cfg.gb.matrix_threads = 2;
  cfg.nprocs = 2;
  cfg.seed = 5;
  // Explicit 2-lane grant: the auto grant divides the host's cores and
  // would silently degrade to 1 lane on small boxes, skipping the very
  // path under test.
  ThreadMachine machine(cfg.nprocs, /*kernel_lanes=*/2);
  ParallelResult res = groebner_parallel_machine(machine, sys, cfg);
  std::vector<Polynomial> got = reduce_basis(sys.ctx, res.basis, coeff);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].equals(want[i])) << "element " << i;
  }
}

TEST(MatrixModularTest, PerPrimeJobsInheritMatrixReduce) {
  PolySystem sys = load_problem("katsura4");
  std::vector<Polynomial> want = reduce_basis(sys.ctx, groebner_sequential(sys).basis, {});

  ModularConfig cfg;
  cfg.gb.matrix_reduce = true;
  cfg.initial_primes = 3;
  ModularResult res = groebner_multimodular(sys, cfg);
  EXPECT_FALSE(res.primes.empty());
  ASSERT_EQ(res.basis.size(), want.size());
  for (std::size_t i = 0; i < res.basis.size(); ++i) {
    EXPECT_TRUE(res.basis[i].equals(want[i])) << "element " << i;
  }
}

}  // namespace
}  // namespace gbd
