file(REMOVE_RECURSE
  "CMakeFiles/problems_test.dir/problems_test.cpp.o"
  "CMakeFiles/problems_test.dir/problems_test.cpp.o.d"
  "problems_test"
  "problems_test.pdb"
  "problems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
