// Solving a system of non-linear equations — the first application the
// paper's introduction names, taken all the way to exact real solutions:
//
//   1. compute a lexicographic Gröbner basis ("analogous to a triangular set
//      of linear equations, which can be solved by substitution", §2);
//   2. take the univariate eliminant in the last variable;
//   3. count and isolate its real roots exactly (Sturm sequences over Q);
//   4. extract exact rational roots where they exist and back-substitute.
//
// Demonstrated on the intersection of a circle with a parabola, in a variant
// with irrational solutions (isolated to rational intervals) and one with
// rational solutions (solved exactly and verified by evaluation).
#include <cstdio>
#include <optional>

#include "gb/sequential.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"
#include "poly/univariate.hpp"

namespace {

using namespace gbd;

/// The basis element univariate in `var`, if any.
std::optional<UniPoly> eliminant_in(const PolySystem& sys, const std::vector<Polynomial>& gb,
                                    std::size_t var) {
  for (const auto& g : gb) {
    auto u = UniPoly::from_polynomial(sys.ctx, g, var);
    if (u.has_value() && !u->is_zero()) return u;
  }
  return std::nullopt;
}

void solve(const char* title, const char* text) {
  std::printf("== %s ==\n", title);
  PolySystem sys = parse_system_or_die(text);
  std::vector<Polynomial> gb = reduce_basis(sys.ctx, groebner_sequential(sys).basis);

  std::printf("Triangular lex basis:\n");
  for (const auto& g : gb) std::printf("  %s\n", g.to_string(sys.ctx).c_str());

  std::size_t last = sys.ctx.nvars() - 1;
  auto elim = eliminant_in(sys, gb, last);
  if (!elim.has_value()) {
    std::printf("No univariate eliminant: the ideal is not zero-dimensional.\n\n");
    return;
  }
  const std::string& vname = sys.ctx.vars[last];
  std::printf("Eliminant: %s = 0\n", elim->to_string(vname).c_str());

  int nreal = elim->count_real_roots();
  std::printf("Distinct real values of %s (Sturm): %d\n", vname.c_str(), nreal);

  Rational width(BigInt(1), BigInt(1 << 16));
  for (const auto& iv : elim->isolate_real_roots(width)) {
    std::printf("  %s in (%s, %s]  ~ %.6f\n", vname.c_str(), iv.lo.to_string().c_str(),
                iv.hi.to_string().c_str(), 0.5 * (iv.lo.to_double() + iv.hi.to_double()));
  }

  std::vector<Rational> exact = elim->rational_roots();
  if (exact.empty()) {
    std::printf("(no rational roots — the isolating intervals above are the exact answer\n"
                " a numeric polish step would start from)\n\n");
    return;
  }
  // Back-substitute each rational root through the triangular basis.
  for (const Rational& r : exact) {
    std::printf("Exact %s = %s:\n", vname.c_str(), r.to_string().c_str());
    for (const auto& g : gb) {
      auto u = UniPoly::from_polynomial(sys.ctx, g, last);
      if (u.has_value()) continue;  // the eliminant itself
      // Substitute the root and report the resulting constraint on the
      // remaining variables.
      Polynomial num = Polynomial::monomial(r.num(), Monomial(sys.ctx.nvars()));
      Polynomial reduced = g.substitute(sys.ctx, last, num);
      // Scale: substituting num/den into x^e needs den^e; easier exactly:
      // evaluate coefficient-wise via substitute with the rational split.
      // For display purposes clear the denominator by substituting r exactly
      // through evaluate on a per-variable basis — here we only show the
      // constraint for 2-variable systems:
      if (sys.ctx.nvars() == 2) {
        // g(x, r) as a univariate in x, computed exactly over Q then cleared.
        // Substitute via evaluate at (x, r) symbolically: collect powers of x.
        std::vector<Rational> coef;
        for (const auto& t : g.terms()) {
          std::size_t e = t.mono.exp(0);
          if (coef.size() <= e) coef.resize(e + 1);
          Rational term{t.coeff};
          for (std::uint32_t k = 0; k < t.mono.exp(1); ++k) term *= r;
          coef[e] += term;
        }
        BigInt den(1);
        for (const auto& q : coef) den = BigInt::lcm(den, q.den());
        std::vector<BigInt> ic;
        for (const auto& q : coef) ic.push_back(q.num() * (den / q.den()));
        UniPoly gx{std::move(ic)};
        std::printf("  constraint: %s = 0\n", gx.to_string(sys.ctx.vars[0]).c_str());
        for (const Rational& x : gx.rational_roots()) {
          std::printf("    exact solution: (%s, %s)\n", x.to_string().c_str(),
                      r.to_string().c_str());
          // Verify against every original generator.
          bool ok = true;
          for (const auto& f : sys.polys) {
            ok = ok && f.evaluate(sys.ctx, {x, r}).is_zero();
          }
          std::printf("    verified on all input equations: %s\n", ok ? "yes" : "NO");
        }
      } else {
        std::printf("  remaining constraint: %s\n", reduced.to_string(sys.ctx).c_str());
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  solve("circle x^2+y^2=5 and parabola y=x^2-1 (irrational solutions)",
        R"(vars x, y; order lex;
           x^2 + y^2 - 5;
           x^2 - y - 1;)");

  solve("circle x^2+y^2=13 and parabola y=x^2-7 (rational solutions)",
        R"(vars x, y; order lex;
           x^2 + y^2 - 13;
           x^2 - y - 7;)");

  solve("three ellipsoids in three variables",
        R"(vars x, y, z; order lex;
           x^2 + y^2 + z^2 - 9;
           x^2 + 4*y^2 - z - 7;
           x - y;)");
  return 0;
}
