#include "poly/echelon.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "poly/geobucket.hpp"
#include "poly/simd.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

struct SweepTally {
  std::uint64_t axpys = 0;
  std::uint64_t dense_cells = 0;
  std::uint64_t simd_rows = 0;
  std::uint64_t scalar_rows = 0;
  std::uint64_t simd_cells = 0;
  std::uint64_t simd_runs = 0;
  std::uint64_t cache_builds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cost = 0;  // term-operation units this worker charged
};

/// Zp pivot sweep for one work row: dense accumulator of canonical residues,
/// columns walked in tiles. A pivot's tail scatters strictly to the right of
/// its head, so one left-to-right pass clears every pivot column.
Polynomial sweep_row_zp(const PolyContext& ctx, const SymbolicFrame& frame,
                        const MacaulayMatrix& mat, const ZpField& field, const MatrixRow& row,
                        std::size_t block_cols, std::vector<std::uint64_t>* acc,
                        SweepTally* tally) {
  const std::size_t ncols = mat.ncols;
  std::fill(acc->begin(), acc->end(), 0);
  for (std::size_t i = 0; i < row.nnz(); ++i) {
    (*acc)[row.cols[i]] = zp_residue_u64(row.coeffs[i]);
  }
  const std::size_t tile = std::max<std::size_t>(1, block_cols);
  for (std::size_t b = 0; b < ncols; b += tile) {
    const std::size_t be = std::min(ncols, b + tile);
    for (std::size_t c = b; c < be; ++c) {
      std::uint64_t f = (*acc)[c];
      if (f == 0) continue;
      std::int32_t pv = frame.pivot_of_col[c];
      if (pv < 0) continue;
      const ZpPivotRow& prow = mat.zp_pivots[static_cast<std::size_t>(pv)];
      // prow is monic with head at column c: the head cancels exactly.
      (*acc)[c] = 0;
      for (std::size_t j = 1; j < prow.cols.size(); ++j) {
        std::uint64_t& cell = (*acc)[prow.cols[j]];
        cell = field.sub_canonical(cell, field.mul_canonical(Zp{prow.mont[j]}, f));
      }
      tally->axpys += 1;
      CostCounter::charge(prow.cols.size());
    }
  }
  tally->dense_cells += ncols;
  tally->scalar_rows += 1;
  CostCounter::charge(ncols / 8 + 1);  // the tile scan itself, amortized

  std::vector<Term> terms;
  for (std::size_t c = 0; c < ncols; ++c) {
    std::uint64_t v = (*acc)[c];
    if (v != 0) terms.push_back(Term{BigInt(static_cast<std::int64_t>(v)), frame.cols[c]});
  }
  Polynomial out = Polynomial::from_sorted_terms(ctx, std::move(terms));
  out.make_monic(field);
  return out;
}

/// Vectorized Zp sweep: same left-to-right pass, but accumulator lanes hold
/// arbitrary 64-bit values merely *congruent* mod p (delayed reduction; see
/// poly/simd.hpp for the wrap-correction soundness argument). A cell is
/// canonicalized exactly once — when the pass reaches its column and every
/// contribution to it is in — so the value the pivot factor (and the output
/// term) is read from is the same canonical residue the scalar kernel
/// maintains throughout: the produced row is bit-identical. Eliminations
/// stream the pivot's multiline runs (matrix.hpp) through the vector AXPY.
/// Charged cost units match sweep_row_zp exactly — 1 + tail per
/// elimination, ncols/8 + 1 per row — so virtual-time runs (SimMachine) are
/// reproducible across hosts regardless of dispatch.
Polynomial sweep_row_zp_simd(const PolyContext& ctx, const SymbolicFrame& frame,
                             const MacaulayMatrix& mat, const ZpField& field,
                             const MatrixRow& row, SimdLevel level,
                             std::vector<std::uint64_t>* acc, SweepTally* tally) {
  const std::size_t ncols = mat.ncols;
  const std::uint64_t p = field.p();
  const std::uint64_t r64 = field.r_mod_p();
  std::fill(acc->begin(), acc->end(), 0);
  for (std::size_t i = 0; i < row.nnz(); ++i) {
    (*acc)[row.cols[i]] = zp_residue_u64(row.coeffs[i]);
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    std::uint64_t v = (*acc)[c];
    if (v == 0) continue;
    // Finalize the cell: one division, skipped when no elimination ever
    // streamed into it (still canonical from the scatter).
    std::uint64_t f = v < p ? v : v % p;
    std::int32_t pv = frame.pivot_of_col[c];
    if (pv < 0) {
      (*acc)[c] = f;  // final: later eliminations only touch columns > c
      continue;
    }
    (*acc)[c] = 0;  // the monic head cancels exactly
    if (f == 0) continue;
    const ZpPivotRuns& runs = mat.zp_runs[static_cast<std::size_t>(pv)];
    const std::uint64_t fneg = p - f;  // subtraction as lane addition
    for (const ZpPivotRuns::Run& run : runs.runs) {
      zp_axpy_delayed(acc->data() + run.col, runs.coeffs.data() + run.off, run.len, fneg, r64,
                      level);
    }
    tally->axpys += 1;
    tally->simd_cells += runs.coeffs.size();
    tally->simd_runs += runs.runs.size();
    // Identical unit charge to the scalar kernel's prow.cols.size():
    // head (1) + tail (the concatenated run payload).
    CostCounter::charge(runs.coeffs.size() + 1);
  }
  tally->dense_cells += ncols;
  tally->simd_rows += 1;
  CostCounter::charge(ncols / 8 + 1);

  std::vector<Term> terms;
  for (std::size_t c = 0; c < ncols; ++c) {
    std::uint64_t v = (*acc)[c];  // already canonical: finalized per column
    if (v != 0) terms.push_back(Term{BigInt(static_cast<std::int64_t>(v)), frame.cols[c]});
  }
  Polynomial out = Polynomial::from_sorted_terms(ctx, std::move(terms));
  out.make_monic(field);
  return out;
}

/// Lazily expanded pivot products for the exact sweep: slot pv holds the
/// term run of mult·reducer (coefficients verbatim, monomials multiplied
/// through), built at first touch and reused for every later row that hits
/// the same pivot column. One cache per worker thread — reuse is amortized
/// across that worker's rows with no synchronization.
using ExactPivotCache = std::vector<std::unique_ptr<std::vector<Term>>>;

/// Exact pivot sweep for one work row: the reduce_full geobucket loop with
/// the reducer choice read off the frame. Bit-identical to the per-poly
/// oracle's tail-reduced normal form (same reducers, same fraction-free
/// steps, same final make_primitive inside extract()).
Polynomial sweep_row_exact(const PolyContext& ctx, const SymbolicFrame& frame,
                           const MatrixRow& mrow, ExactPivotCache* cache, SweepTally* tally) {
  Polynomial p = row_to_poly(ctx, frame, mrow);
  p.make_primitive();
  if (p.is_zero()) return p;
  Geobucket acc(ctx, std::move(p));
  Term lead;
  while (acc.lead(&lead)) {
    std::int64_t c = frame.col_of(lead.mono);
    GBD_CHECK_MSG(c >= 0, "echelon_reduce: monomial escaped the frame");
    std::int32_t pv = frame.pivot_of_col[static_cast<std::size_t>(c)];
    if (pv < 0) {
      acc.retire_lead();
      continue;
    }
    const PivotProduct& prod = frame.pivots[static_cast<std::size_t>(pv)];
    BigInt g = BigInt::gcd(lead.coeff, prod.reducer->hcoef());
    BigInt a = prod.reducer->hcoef() / g;
    BigInt b = lead.coeff / g;
    if (a.is_negative()) {
      a = -a;
      b = -b;
    }
    b = -b;
    // Expand mult·reducer once per (worker, pivot); later touches skip the
    // per-term monomial multiplications (axpy's dominant non-BigInt cost).
    std::unique_ptr<std::vector<Term>>& slot = (*cache)[static_cast<std::size_t>(pv)];
    if (slot == nullptr) {
      auto run = std::make_unique<std::vector<Term>>();
      run->reserve(prod.reducer->nterms());
      for (const Term& t : prod.reducer->terms()) {
        run->push_back(Term{t.coeff, t.mono * prod.mult});
      }
      slot = std::move(run);
      tally->cache_builds += 1;
    } else {
      tally->cache_hits += 1;
    }
    acc.axpy_expanded(a, b, *slot);
    tally->axpys += 1;
  }
  return acc.extract();
}

/// Combine `row` against `piv` (equal head monomials), fraction-free.
void combine_exact(const PolyContext& ctx, Polynomial* row, const Polynomial& piv) {
  BigInt g = BigInt::gcd(row->hcoef(), piv.hcoef());
  BigInt a = piv.hcoef() / g;
  BigInt b = row->hcoef() / g;
  if (a.is_negative()) {
    a = -a;
    b = -b;
  }
  Monomial unit(row->hmono().nvars());
  Polynomial sub = piv.mul_term(b, unit);
  *row = (a.is_one() ? *row : row->mul_term(a, unit)).sub(ctx, sub);
  row->make_primitive();
}

}  // namespace

EchelonOutput echelon_reduce(const PolyContext& ctx, const SymbolicFrame& frame,
                             const MacaulayMatrix& mat, const EchelonOptions& opts) {
  MatrixKernelStats& st = matrix_kernel_stats();
  const std::size_t nrows = mat.work_rows.size();
  EchelonOutput out;
  out.src_zeroed.assign(nrows, false);

  const bool zp = opts.coeff.is_zp();
  ZpField field(zp ? opts.coeff.prime : 3);

  // Dispatch, resolved once per matrix: the vector sweep needs the multiline
  // pivot layout (only built for delayed-reduction-safe primes) and an
  // actual vector unit; force_scalar / GBD_DISABLE_SIMD pin the oracle.
  SimdLevel level = SimdLevel::kScalar;
  if (zp && mat.has_runs && !opts.force_scalar) level = simd_level();
  const bool use_simd = level != SimdLevel::kScalar;

  // Stage 1: per-row pivot sweep, parallel across rows. Each worker owns its
  // accumulator, exact-pivot cache and tally; slot i of `reduced` is written
  // by exactly one worker.
  std::vector<Polynomial> reduced(nrows);
  std::size_t nthreads = std::max<std::size_t>(1, opts.nthreads);
  nthreads = std::min(nthreads, std::max<std::size_t>(1, nrows));
  std::vector<SweepTally> tallies(nthreads);

  auto sweep_range = [&](std::size_t t) {
    SweepTally& tally = tallies[t];
    CostScope scope;
    std::vector<std::uint64_t> acc;
    if (zp) acc.assign(mat.ncols, 0);
    ExactPivotCache cache;
    if (!zp) cache.resize(frame.pivots.size());
    for (std::size_t i = t; i < nrows; i += nthreads) {
      const MatrixRow& row = mat.work_rows[i];
      if (row.empty()) continue;
      if (!zp) {
        reduced[i] = sweep_row_exact(ctx, frame, row, &cache, &tally);
      } else if (use_simd) {
        reduced[i] = sweep_row_zp_simd(ctx, frame, mat, field, row, level, &acc, &tally);
      } else {
        reduced[i] = sweep_row_zp(ctx, frame, mat, field, row, opts.block_cols, &acc, &tally);
      }
    }
    tally.cost = scope.elapsed();
  };

  const auto sweep_t0 = std::chrono::steady_clock::now();
  if (nthreads == 1) {
    sweep_range(0);
  } else {
    // Workers charge their own thread-local cost counters, which die with
    // the threads; the caller is charged the slowest worker's total below
    // (parallel makespan, same convention as the machine backends).
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) workers.emplace_back(sweep_range, t);
    for (auto& w : workers) w.join();
    std::uint64_t makespan = 0;
    for (const auto& tally : tallies) makespan = std::max(makespan, tally.cost);
    CostCounter::charge(makespan);
  }
  st.sweep_ns += static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                std::chrono::steady_clock::now() - sweep_t0)
                                                .count());
  for (const auto& tally : tallies) {
    st.axpys += tally.axpys;
    st.dense_cells += tally.dense_cells;
    st.simd_rows += tally.simd_rows;
    st.scalar_rows += tally.scalar_rows;
    st.simd_cells += tally.simd_cells;
    st.simd_runs += tally.simd_runs;
    st.pivot_cache_builds += tally.cache_builds;
    st.pivot_cache_hits += tally.cache_hits;
  }

  // Stage 2: row echelon of the surviving rows. Rows are processed in
  // descending head order (ties by src) so an accepted row can never be
  // re-touched by a later combination; each combination strictly lowers the
  // working row's head. Row identity (src) survives combination.
  struct Work {
    Polynomial poly;
    std::size_t src;
  };
  std::vector<Work> alive;
  for (std::size_t i = 0; i < nrows; ++i) {
    if (mat.work_rows[i].empty() || reduced[i].is_zero()) {
      if (!mat.work_rows[i].empty()) out.src_zeroed[i] = true;
      continue;
    }
    alive.push_back(Work{std::move(reduced[i]), i});
  }

  if (opts.interreduce && alive.size() > 1) {
    std::sort(alive.begin(), alive.end(), [&](const Work& a, const Work& b) {
      int c = ctx.cmp(a.poly.hmono(), b.poly.hmono());
      if (c != 0) return c > 0;
      return a.src < b.src;
    });
    std::unordered_map<Monomial, std::size_t, SymbolicFrame::MonoHash> head_of;
    std::vector<Work> kept;
    Monomial unit(ctx.nvars());
    for (Work& w : alive) {
      while (!w.poly.is_zero()) {
        auto it = head_of.find(w.poly.hmono());
        if (it == head_of.end()) break;
        const Polynomial& piv = kept[it->second].poly;
        if (zp) {
          std::uint64_t f = field.p() - zp_residue_u64(w.poly.hcoef());  // piv is monic
          w.poly = zp_combine(ctx, field, 1, unit, w.poly, f, unit, piv);
        } else {
          combine_exact(ctx, &w.poly, piv);
        }
        st.axpys += 1;
      }
      if (w.poly.is_zero()) {
        out.src_zeroed[w.src] = true;
        continue;
      }
      if (zp) w.poly.make_monic(field);
      head_of.emplace(w.poly.hmono(), kept.size());
      kept.push_back(std::move(w));
    }
    alive = std::move(kept);
  }

  std::sort(alive.begin(), alive.end(),
            [](const Work& a, const Work& b) { return a.src < b.src; });
  out.rows.reserve(alive.size());
  for (Work& w : alive) out.rows.push_back(EchelonOutput::NewRow{std::move(w.poly), w.src});
  for (bool z : out.src_zeroed) st.rows_zeroed += z ? 1 : 0;
  return out;
}

EchelonOutput reduce_batch(const PolyContext& ctx, const std::vector<Polynomial>& rows,
                           const ReducerSet& reducers, const EchelonOptions& opts,
                           SymbolicMemo* memo) {
  SymbolicFrame frame = symbolic_preprocess(ctx, rows, reducers, memo);
  // Only lay out multiline runs when the vector sweep could actually run, so
  // scalar-pinned configurations don't pay (or get charged) the extra build.
  const bool want_runs =
      opts.coeff.is_zp() && !opts.force_scalar && simd_level() != SimdLevel::kScalar;
  MacaulayMatrix mat = build_matrix(ctx, frame, rows, opts.coeff, want_runs);
  return echelon_reduce(ctx, frame, mat, opts);
}

}  // namespace gbd
