file(REMOVE_RECURSE
  "CMakeFiles/monomial_test.dir/monomial_test.cpp.o"
  "CMakeFiles/monomial_test.dir/monomial_test.cpp.o.d"
  "monomial_test"
  "monomial_test.pdb"
  "monomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
