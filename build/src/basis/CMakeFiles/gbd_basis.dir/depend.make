# Empty dependencies file for gbd_basis.
# This may be replaced when dependencies are built.
