
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/sim_machine.cpp" "src/machine/CMakeFiles/gbd_machine.dir/sim_machine.cpp.o" "gcc" "src/machine/CMakeFiles/gbd_machine.dir/sim_machine.cpp.o.d"
  "/root/repo/src/machine/thread_machine.cpp" "src/machine/CMakeFiles/gbd_machine.dir/thread_machine.cpp.o" "gcc" "src/machine/CMakeFiles/gbd_machine.dir/thread_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gbd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
