// Socket-backend benchmarks (PR 5): what does crossing a real process
// boundary cost, and what does GL-P wall time look like when every logical
// processor is its own OS process on loopback TCP?
//
// Three sections, emitted as BENCH_pr5.json:
//   - rtt: round-trip time of one application envelope between two ranks
//     (transport layer only — frame codec, reliability, poll loop).
//   - throughput: one-way streaming rate of small envelopes, rank 0 -> 1.
//   - glp: trinks1 wall time at P=1/2/4 processes, with message and wire
//     counters from the exit handshake. host_cores rides along: on a
//     single-core host every process multiplexes one CPU, so wall times
//     measure protocol overhead, not parallel speedup (same caveat as
//     thread_scaling; the SimMachine numbers are the architecture proxy).
//
// Modes:
//   socket_scaling [--out FILE]       measure everything, write the JSON
//   socket_scaling --smoke            CI gate: RTT sane (< 50 ms) and
//                                     trinks1 P=2 completes with a basis
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "net/net_engine.hpp"
#include "problems/problems.hpp"
#include "support/serialize.hpp"

namespace gbd {
namespace {

int next_port_block() {
  static int counter = 0;
  counter += 8;
  return 26000 + static_cast<int>(::getpid() % 18000) + counter;
}

NetConfig make_net(int rank, int nprocs, int base_port) {
  NetConfig cfg;
  cfg.rank = rank;
  cfg.nprocs = nprocs;
  for (int r = 0; r < nprocs; ++r) {
    NetEndpoint ep;
    ep.host = "127.0.0.1";
    ep.port = static_cast<std::uint16_t>(base_port + r);
    cfg.peers.push_back(ep);
  }
  return cfg;
}

/// Fork `nprocs` ranks; rank 0's body returns a serialized result blob that
/// comes back to the parent via a temp file. Returns empty on any failure.
template <typename Body>
std::vector<std::uint8_t> run_forked(int nprocs, Body body) {
  int base_port = next_port_block();
  std::string path =
      "/tmp/gbd_bench_" + std::to_string(::getpid()) + "_" + std::to_string(base_port) + ".bin";
  std::vector<pid_t> pids;
  for (int r = 0; r < nprocs; ++r) {
    pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<std::uint8_t> out;
      int code = body(r, base_port, &out);
      if (r == 0 && code == 0) {
        std::ofstream f(path, std::ios::binary);
        f.write(reinterpret_cast<const char*>(out.data()),
                static_cast<std::streamsize>(out.size()));
        f.close();  // _exit skips destructors; flush explicitly
        if (!f) code = 1;
      }
      ::_exit(code);
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (pid_t pid : pids) {
    int st = 0;
    ::waitpid(pid, &st, 0);
    ok = ok && WIFEXITED(st) && WEXITSTATUS(st) == 0;
  }
  if (!ok) return {};
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --------------------------------------------------------------------------
// RTT: rank 0 sends one envelope, rank 1 echoes it, `rounds` times.
// --------------------------------------------------------------------------

struct RttResult {
  double avg_us = 0;
  bool ok = false;
};

RttResult bench_rtt(int rounds) {
  std::vector<std::uint8_t> blob = run_forked(2, [&](int rank, int base_port,
                                                     std::vector<std::uint8_t>* out) -> int {
    NetConfig cfg = make_net(rank, 2, base_port);
    Transport t(cfg, [](int, FrameType, Reader&) {});
    t.connect_all();
    std::uint64_t deadline = Transport::now_ms() + 60000;
    if (rank == 0) {
      double t0 = now_ms();
      for (int i = 0; i < rounds; ++i) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(i));
        t.send_app(1, 1, w.take());
        AppMessage m;
        while (!t.next_app(&m)) {
          if (Transport::now_ms() > deadline) return 10;
          t.pump(10);
        }
      }
      double elapsed = now_ms() - t0;
      Writer w;
      w.u64(static_cast<std::uint64_t>(elapsed * 1000.0));  // total us
      *out = w.take();
      t.set_lenient(true);
      std::uint64_t linger = Transport::now_ms() + 300;
      while (Transport::now_ms() < linger) t.pump(20);
      return 0;
    }
    for (int i = 0; i < rounds; ++i) {
      AppMessage m;
      while (!t.next_app(&m)) {
        if (Transport::now_ms() > deadline) return 20;
        t.pump(10);
      }
      t.send_app(0, 1, m.payload);
    }
    t.set_lenient(true);
    std::uint64_t linger = Transport::now_ms() + 600;
    while (Transport::now_ms() < linger) t.pump(20);
    return 0;
  });
  RttResult r;
  if (blob.empty()) return r;
  Reader rd(blob);
  r.avg_us = static_cast<double>(rd.u64()) / rounds;
  r.ok = true;
  return r;
}

// --------------------------------------------------------------------------
// Throughput: rank 0 streams `count` envelopes of `payload_bytes` to rank 1.
// --------------------------------------------------------------------------

struct ThroughputResult {
  double envelopes_per_sec = 0;
  double mb_per_sec = 0;
  bool ok = false;
};

ThroughputResult bench_throughput(int count, std::size_t payload_bytes) {
  std::vector<std::uint8_t> blob = run_forked(2, [&](int rank, int base_port,
                                                     std::vector<std::uint8_t>* out) -> int {
    NetConfig cfg = make_net(rank, 2, base_port);
    Transport t(cfg, [](int, FrameType, Reader&) {});
    t.connect_all();
    std::uint64_t deadline = Transport::now_ms() + 120000;
    if (rank == 0) {
      std::vector<std::uint8_t> payload(payload_bytes, 0x5A);
      double t0 = now_ms();
      for (int i = 0; i < count; ++i) {
        t.send_app(1, 1, payload);
        t.pump(0);  // keep the pipe draining; don't build an unbounded queue
      }
      // Completion = receiver's summary envelope.
      AppMessage m;
      while (!t.next_app(&m)) {
        if (Transport::now_ms() > deadline) return 10;
        t.pump(10);
      }
      double elapsed_s = (now_ms() - t0) / 1000.0;
      Reader r(m.payload);
      if (r.u64() != static_cast<std::uint64_t>(count)) return 11;
      Writer w;
      w.u64(static_cast<std::uint64_t>(count / elapsed_s));
      w.u64(static_cast<std::uint64_t>(
          (static_cast<double>(count) * static_cast<double>(payload_bytes)) / elapsed_s));
      *out = w.take();
      t.set_lenient(true);
      std::uint64_t linger = Transport::now_ms() + 300;
      while (Transport::now_ms() < linger) t.pump(20);
      return 0;
    }
    std::uint64_t seen = 0;
    while (seen < static_cast<std::uint64_t>(count)) {
      AppMessage m;
      if (!t.next_app(&m)) {
        if (Transport::now_ms() > deadline) return 20;
        t.pump(10);
        continue;
      }
      seen += 1;
    }
    Writer w;
    w.u64(seen);
    t.send_app(0, 2, w.take());
    t.set_lenient(true);
    std::uint64_t linger = Transport::now_ms() + 600;
    while (Transport::now_ms() < linger) t.pump(20);
    return 0;
  });
  ThroughputResult r;
  if (blob.empty()) return r;
  Reader rd(blob);
  r.envelopes_per_sec = static_cast<double>(rd.u64());
  r.mb_per_sec = static_cast<double>(rd.u64()) / (1024.0 * 1024.0);
  r.ok = true;
  return r;
}

// --------------------------------------------------------------------------
// GL-P over processes: trinks1 at P ranks.
// --------------------------------------------------------------------------

struct GlpCell {
  int nprocs = 0;
  double wall_ms = 0;
  std::size_t basis = 0;
  std::uint64_t messages = 0;
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t retransmits = 0;
  bool ok = false;
};

GlpCell bench_glp(const std::string& problem, int nprocs) {
  PolySystem sys = load_problem(problem);
  std::vector<std::uint8_t> blob = run_forked(nprocs, [&](int rank, int base_port,
                                                          std::vector<std::uint8_t>* out) -> int {
    SocketMachineConfig mc;
    mc.net = make_net(rank, nprocs, base_port);
    SocketMachine machine(mc);
    ParallelConfig cfg;
    cfg.nprocs = nprocs;
    double t0 = now_ms();
    ParallelResult res;
    try {
      res = groebner_parallel_socket(machine, sys, cfg);
    } catch (const NetError& e) {
      std::fprintf(stderr, "rank %d: %s\n", rank, e.what());
      return 3;
    }
    if (rank != 0) return 0;
    double wall = now_ms() - t0;
    const TransportStats& net = machine.transport_stats();
    Writer w;
    w.u64(static_cast<std::uint64_t>(wall * 1000.0));  // us
    w.u64(res.basis.size());
    w.u64(res.stats.messages_sent);
    w.u64(net.frames_sent);
    w.u64(net.bytes_sent);
    w.u64(net.retransmits);
    *out = w.take();
    return 0;
  });
  GlpCell c;
  c.nprocs = nprocs;
  if (blob.empty()) return c;
  Reader rd(blob);
  c.wall_ms = static_cast<double>(rd.u64()) / 1000.0;
  c.basis = static_cast<std::size_t>(rd.u64());
  c.messages = rd.u64();
  c.frames = rd.u64();
  c.wire_bytes = rd.u64();
  c.retransmits = rd.u64();
  c.ok = true;
  return c;
}

int run_smoke() {
  RttResult rtt = bench_rtt(50);
  if (!rtt.ok) {
    std::fprintf(stderr, "smoke: RTT bench failed\n");
    return 1;
  }
  std::printf("smoke: loopback RTT %.1f us\n", rtt.avg_us);
  if (rtt.avg_us > 50000.0) {
    std::fprintf(stderr, "smoke: RTT %.1f us implausibly slow (> 50 ms)\n", rtt.avg_us);
    return 1;
  }
  GlpCell glp = bench_glp("trinks1", 2);
  if (!glp.ok || glp.basis == 0) {
    std::fprintf(stderr, "smoke: trinks1 P=2 over sockets failed\n");
    return 1;
  }
  std::printf("smoke: trinks1 P=2 wall %.1f ms, basis %zu, %llu frames\n", glp.wall_ms,
              glp.basis, static_cast<unsigned long long>(glp.frames));
  return 0;
}

int run_full(const std::string& out_path) {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("host_cores=%u\n", cores);

  RttResult rtt = bench_rtt(500);
  if (!rtt.ok) {
    std::fprintf(stderr, "RTT bench failed\n");
    return 1;
  }
  std::printf("loopback RTT: %.1f us/round-trip\n", rtt.avg_us);

  ThroughputResult tput = bench_throughput(20000, 64);
  if (!tput.ok) {
    std::fprintf(stderr, "throughput bench failed\n");
    return 1;
  }
  std::printf("throughput (64 B envelopes): %.0f env/s, %.2f MiB/s\n", tput.envelopes_per_sec,
              tput.mb_per_sec);

  std::vector<GlpCell> cells;
  for (int p : {1, 2, 4}) {
    GlpCell c = bench_glp("trinks1", p);
    if (!c.ok) {
      std::fprintf(stderr, "trinks1 P=%d failed\n", p);
      return 1;
    }
    std::printf("trinks1 P=%d: wall %.1f ms, basis %zu, messages %llu, frames %llu, "
                "retransmits %llu\n",
                p, c.wall_ms, c.basis, static_cast<unsigned long long>(c.messages),
                static_cast<unsigned long long>(c.frames),
                static_cast<unsigned long long>(c.retransmits));
    cells.push_back(c);
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"socket_scaling\",\n";
  js << "  \"backend\": \"socket (1 process per rank, loopback TCP)\",\n";
  js << "  \"host_cores\": " << cores << ",\n";
  js << "  \"note\": \"single-core hosts multiplex all ranks on one CPU; wall times "
        "measure protocol overhead, not parallel speedup\",\n";
  js << "  \"rtt_us\": " << rtt.avg_us << ",\n";
  js << "  \"envelopes_per_sec\": " << tput.envelopes_per_sec << ",\n";
  js << "  \"throughput_mib_per_sec\": " << tput.mb_per_sec << ",\n";
  js << "  \"glp\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GlpCell& c = cells[i];
    js << "    {\"problem\": \"trinks1\", \"procs\": " << c.nprocs
       << ", \"wall_ms\": " << c.wall_ms << ", \"basis\": " << c.basis
       << ", \"messages\": " << c.messages << ", \"frames\": " << c.frames
       << ", \"wire_bytes\": " << c.wire_bytes << ", \"retransmits\": " << c.retransmits << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  js << "  ]\n";
  js << "}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gbd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr5.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? gbd::run_smoke() : gbd::run_full(out_path);
}
