# Empty dependencies file for gbd_taskq.
# This may be replaced when dependencies are built.
