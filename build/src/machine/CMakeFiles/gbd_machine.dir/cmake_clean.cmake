file(REMOVE_RECURSE
  "CMakeFiles/gbd_machine.dir/sim_machine.cpp.o"
  "CMakeFiles/gbd_machine.dir/sim_machine.cpp.o.d"
  "CMakeFiles/gbd_machine.dir/thread_machine.cpp.o"
  "CMakeFiles/gbd_machine.dir/thread_machine.cpp.o.d"
  "libgbd_machine.a"
  "libgbd_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbd_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
