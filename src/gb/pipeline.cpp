#include "gb/pipeline.hpp"

#include <algorithm>
#include <queue>

#include "gb/pairs.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"

namespace gbd {

namespace {

struct Token {
  Polynomial h;
  std::uint32_t pi = 0, pj = 0;
  int unproductive_visits = 0;
};

enum class Ev { kMasterPop, kStageVisit, kReturn };

struct Event {
  std::uint64_t time;
  std::uint64_t seq;
  Ev kind;
  int stage = 0;
  std::size_t token = 0;
  bool zero = false;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

double PipelineResult::achieved_parallelism() const {
  std::uint64_t total = 0, mx = 0;
  for (std::uint64_t b : stage_busy) {
    total += b;
    mx = std::max(mx, b);
  }
  return mx == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(mx);
}

PipelineResult groebner_pipeline(const PolySystem& sys, const PipelineConfig& cfg) {
  GBD_CHECK(cfg.nstages >= 1 && cfg.inflight >= 1);
  GBD_CHECK_MSG(!cfg.gb.coeff.is_zp(),
                "groebner_pipeline is exact-only; use the sequential or GL-P engines for Zp");
  PipelineResult res;
  const PolyContext& ctx = sys.ctx;
  const GbConfig& gb = cfg.gb;
  const int P = cfg.nstages;

  // Global basis; each element owned by one stage. The master only keeps the
  // head index (cheap); bodies live in their stage's partition.
  std::vector<Polynomial> basis;
  std::vector<Monomial> heads;
  std::vector<int> owner;
  std::vector<std::vector<std::size_t>> partition(static_cast<std::size_t>(P));
  int next_owner = 0;

  auto install = [&](Polynomial g) {
    std::size_t idx = basis.size();
    heads.push_back(g.hmono());
    basis.push_back(std::move(g));
    owner.push_back(next_owner);
    partition[static_cast<std::size_t>(next_owner)].push_back(idx);
    next_owner = (next_owner + 1) % P;
    return idx;
  };

  for (const auto& p : sys.polys) {
    if (p.is_zero()) continue;
    Polynomial q = p;
    q.make_primitive();
    install(std::move(q));
  }

  SequentialPairQueue gpq(&ctx, gb.selection);
  DonePairs done;
  for (std::uint32_t i = 0; i < basis.size(); ++i) {
    for (std::uint32_t j = i + 1; j < basis.size(); ++j) {
      gpq.push(i, j, Monomial::lcm(heads[i], heads[j]));
      res.stats.pairs_created += 1;
    }
  }

  std::vector<Token> tokens;
  std::vector<std::uint64_t> stage_free(static_cast<std::size_t>(P), 0);
  res.stage_busy.assign(static_cast<std::size_t>(P), 0);
  std::uint64_t master_free = 0;
  int inflight = 0;
  std::uint64_t makespan = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  auto post = [&](std::uint64_t t, Ev kind, int stage = 0, std::size_t token = 0,
                  bool zero = false) {
    events.push(Event{t, seq++, kind, stage, token, zero});
    makespan = std::max(makespan, t);
  };

  auto hop_cost = [&](const Polynomial& h) {
    res.token_hops += 1;
    res.ring_bytes += h.wire_size();
    res.stats.messages_sent += 1;
    res.stats.bytes_sent += h.wire_size();
    res.stats.polys_transferred += 1;
    return cfg.cost.wire_time(h.wire_size()) + cfg.cost.inject + cfg.cost.dispatch;
  };

  post(0, Ev::kMasterPop);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();

    switch (ev.kind) {
      case Ev::kMasterPop: {
        if (gpq.empty() || inflight >= cfg.inflight) break;  // retriggered later
        std::uint64_t t = std::max(ev.time, master_free);
        PendingPair pair = gpq.pop_best();
        if (gb.coprime_criterion && coprime_criterion(heads[pair.i], heads[pair.j])) {
          res.stats.pairs_pruned_coprime += 1;
          done.mark(pair.i, pair.j);
          master_free = t + 1;
          post(master_free, Ev::kMasterPop);
          break;
        }
        if (gb.chain_criterion && chain_criterion(pair.i, pair.j, pair.lcm, heads, done)) {
          res.stats.pairs_pruned_chain += 1;
          master_free = t + 1;
          post(master_free, Ev::kMasterPop);
          break;
        }
        // Gather the two bodies from their owner stages: with a partitioned
        // basis the pair's polynomials must travel to be combined.
        std::uint64_t gather = 0;
        gather = std::max(gather, hop_cost(basis[pair.i]));
        gather = std::max(gather, hop_cost(basis[pair.j]));
        t += gather;
        CostScope cost;
        Polynomial h = spoly(ctx, basis[pair.i], basis[pair.j]);
        h.make_primitive();
        t += cost.elapsed();
        res.stats.work_units += cost.elapsed();
        res.stats.spolys_computed += 1;
        master_free = t;

        std::size_t tok = tokens.size();
        tokens.push_back(Token{std::move(h), pair.i, pair.j, 0});
        inflight += 1;
        if (tokens[tok].h.is_zero()) {
          post(t, Ev::kReturn, 0, tok, true);
        } else {
          post(t + hop_cost(tokens[tok].h), Ev::kStageVisit, 0, tok);
        }
        post(master_free, Ev::kMasterPop);  // pipeline more if slots remain
        break;
      }

      case Ev::kStageVisit: {
        Token& tok = tokens[ev.token];
        int s = ev.stage;
        std::uint64_t t = std::max(ev.time, stage_free[static_cast<std::size_t>(s)]);
        CostScope cost;
        bool reduced_any = false;
        for (;;) {
          // Best applicable reducer within this stage's partition only.
          const Polynomial* best = nullptr;
          for (std::size_t idx : partition[static_cast<std::size_t>(s)]) {
            const Polynomial& g = basis[idx];
            if (g.hmono().divides(tok.h.hmono()) &&
                (best == nullptr || reducer_preferred(g, *best))) {
              best = &g;
            }
          }
          if (best == nullptr) break;
          tok.h = reduce_step(ctx, tok.h, *best);
          tok.h.make_primitive();
          res.stats.reduction_steps += 1;
          reduced_any = true;
          if (tok.h.is_zero()) break;
        }
        std::uint64_t w = cost.elapsed();
        res.stats.work_units += w;
        res.stats.max_step_cost = std::max(res.stats.max_step_cost, w);
        t += w;
        stage_free[static_cast<std::size_t>(s)] = t;
        res.stage_busy[static_cast<std::size_t>(s)] += w;
        makespan = std::max(makespan, t);

        if (tok.h.is_zero()) {
          post(t + cfg.cost.wire_time(16), Ev::kReturn, 0, ev.token, true);
          break;
        }
        tok.unproductive_visits = reduced_any ? 0 : tok.unproductive_visits + 1;
        if (tok.unproductive_visits >= P) {
          post(t + hop_cost(tok.h), Ev::kReturn, 0, ev.token, false);
        } else {
          post(t + hop_cost(tok.h), Ev::kStageVisit, (s + 1) % P, ev.token);
        }
        break;
      }

      case Ev::kReturn: {
        std::uint64_t t = std::max(ev.time, master_free);
        Token& tok = tokens[ev.token];
        if (ev.zero) {
          res.stats.reductions_to_zero += 1;
          done.mark(tok.pi, tok.pj);
          inflight -= 1;
          master_free = t + 1;
          post(master_free, Ev::kMasterPop);
          break;
        }
        // The master's head index is complete: if an element added behind
        // the token can still reduce it, send it around again.
        bool reducible = false;
        for (const Monomial& hm : heads) {
          if (hm.divides(tok.h.hmono())) {
            reducible = true;
            break;
          }
        }
        master_free = t + 1;
        if (reducible) {
          tok.unproductive_visits = 0;
          post(master_free + hop_cost(tok.h), Ev::kStageVisit, 0, ev.token);
          break;
        }
        // Genuine normal form: install it in the next partition and create
        // the new pairs (master knows all heads).
        std::uint64_t m = basis.size();
        Monomial new_head = tok.h.hmono();
        res.stats.pairs_created += m;
        std::vector<bool> keep(m, true);
        if (gb.gm_update) {
          GmPruneCounts gm;
          std::vector<std::size_t> kept = gm_new_pairs(ctx, heads, new_head, &gm);
          keep.assign(m, false);
          for (std::size_t i : kept) keep[i] = true;
          res.stats.pairs_pruned_coprime += gm.coprime;
          res.stats.pairs_pruned_chain += gm.m_rule + gm.f_rule;
        }
        res.ring_bytes += tok.h.wire_size();  // body travels to its new owner
        res.stats.bytes_sent += tok.h.wire_size();
        std::size_t idx = install(std::move(tok.h));
        res.stats.basis_added += 1;
        done.mark(tok.pi, tok.pj);
        for (std::uint32_t i = 0; i < m; ++i) {
          if (keep[i]) {
            gpq.push(i, static_cast<std::uint32_t>(idx),
                     Monomial::lcm(heads[i], heads[idx]));
          } else if (coprime_criterion(heads[i], heads[idx])) {
            done.mark(i, static_cast<std::uint32_t>(idx));
          }
        }
        inflight -= 1;
        post(master_free, Ev::kMasterPop);
        break;
      }
    }
  }

  GBD_CHECK_MSG(gpq.empty() && inflight == 0, "pipeline simulation wedged");
  res.basis = std::move(basis);
  res.makespan = std::max(makespan, master_free);
  res.elapsed_units = res.makespan;
  return res;
}

}  // namespace gbd
