file(REMOVE_RECURSE
  "libgbd_bigint.a"
)
