// RAII span helper binding the tracer to a Proc's clock.
//
// Constructing a TraceSpan opens a span stamped with the processor's
// current time; destruction closes it. With no tracer attached (or with
// GBD_DISABLE_TRACING) both ends reduce to one null test.
//
// Timestamp discipline: Proc::now() on the simulator drains the thread-local
// CostCounter into the virtual clock, so never construct or destroy a
// TraceSpan between a CostScope's construction and the last read of its
// elapsed() — the drain would make the pending delta vanish. Placing the
// span strictly outside the CostScope block (or after elapsed() is read)
// is always safe; every call site in the engine follows that rule.
#pragma once

#include "machine/machine.hpp"
#include "obs/tracer.hpp"

namespace gbd {

class TraceSpan {
 public:
  TraceSpan(Proc& p, Ev kind, std::uint64_t a = 0, std::uint64_t b = 0)
      : t_(p.tracer()), p_(&p), kind_(kind) {
    if (t_ != nullptr) t_->begin(kind, p.now(), a, b);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Recorded into the event's b field at close (e.g. reduction steps).
  void result(std::uint64_t r) { result_ = r; }

  ~TraceSpan() {
    if (t_ != nullptr) t_->end(kind_, p_->now(), result_);
  }

 private:
  ProcTracer* t_;
  Proc* p_;
  Ev kind_;
  std::uint64_t result_ = 0;
};

}  // namespace gbd
