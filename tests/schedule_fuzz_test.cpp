// Schedule fuzzing for the GL-P engine: sweep seeds × processor counts ×
// chaos intensities over a small problem, assert (a) the chaotic parallel
// run still produces the sequential reduced basis and (b) every protocol
// invariant held on every sweep. A failing configuration is shrunk to a
// minimal replay string before being reported, so a red run in CI is
// directly re-runnable (see DESIGN.md "Determinism & chaos testing").
//
// GBD_FUZZ_SEEDS overrides the seeds-per-cell count (default 64); CI's
// smoke matrix runs with GBD_FUZZ_SEEDS=32.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "gb/parallel.hpp"
#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "poly/reduce.hpp"
#include "problems/problems.hpp"

namespace gbd {
namespace {

constexpr const char* kProblem = "arnborg4";

int seeds_per_cell() {
  const char* env = std::getenv("GBD_FUZZ_SEEDS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 64;
}

const PolySystem& problem() {
  static const PolySystem sys = load_problem(kProblem);
  return sys;
}

const std::vector<Polynomial>& reference() {
  static const std::vector<Polynomial> ref =
      reduce_basis(problem().ctx, groebner_sequential(problem()).basis);
  return ref;
}

ParallelResult run_chaos(int nprocs, const ChaosConfig& chaos) {
  ParallelConfig cfg;
  cfg.nprocs = nprocs;
  cfg.seed = chaos.seed + 1;  // also perturb initial pair placement
  cfg.chaos = chaos;
  cfg.check_invariants = true;
  cfg.invariant_period = 64;
  return groebner_parallel(problem(), cfg);
}

std::string replay_string(int nprocs, const ChaosConfig& chaos) {
  return std::string("problem=") + kProblem + ";nprocs=" + std::to_string(nprocs) + ";" +
         chaos.encode();
}

/// "" when the run is healthy, else a description of what broke.
std::string failure_reason(int nprocs, const ChaosConfig& chaos) {
  ParallelResult res = run_chaos(nprocs, chaos);
  if (!res.violations.empty()) return "invariant violated: " + res.violations.front();
  std::vector<Polynomial> red = reduce_basis(problem().ctx, res.basis);
  if (red.size() != reference().size()) {
    return "reduced basis size " + std::to_string(red.size()) + " != " +
           std::to_string(reference().size());
  }
  for (std::size_t i = 0; i < red.size(); ++i) {
    if (!red[i].equals(reference()[i])) {
      return "reduced basis element " + std::to_string(i) + " differs";
    }
  }
  return "";
}

/// Greedy 1-minimal shrink of a failing configuration: try zeroing each chaos
/// knob and halving the processor count, keeping every simplification that
/// still fails. Returns the minimal replay string.
std::string shrink(int nprocs, ChaosConfig chaos) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<ChaosConfig> candidates;
    if (chaos.jitter != 0) {
      ChaosConfig c = chaos;
      c.jitter = 0;
      candidates.push_back(c);
    }
    if (chaos.reorder_permille != 0) {
      ChaosConfig c = chaos;
      c.reorder_permille = 0;
      c.reorder_window = 0;
      candidates.push_back(c);
    }
    if (chaos.dup_permille != 0) {
      ChaosConfig c = chaos;
      c.dup_permille = 0;
      c.dup_safe.clear();
      candidates.push_back(c);
    }
    if (chaos.starve_permille != 0) {
      ChaosConfig c = chaos;
      c.starve_permille = 0;
      c.starve_factor = 1;
      candidates.push_back(c);
    }
    for (const ChaosConfig& c : candidates) {
      if (!failure_reason(nprocs, c).empty()) {
        chaos = c;
        progress = true;
        break;
      }
    }
    if (!progress && nprocs > 2 && !failure_reason(nprocs / 2, chaos).empty()) {
      nprocs /= 2;
      progress = true;
    }
  }
  return replay_string(nprocs, chaos);
}

// ---------------------------------------------------------------------------
// The matrix: seeds × {2, 4, 8} processors, one test per intensity level so
// a failure pinpoints the regime.

class FuzzMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzMatrixTest, ChaoticSchedulesPreserveBasisAndInvariants) {
  const int level = GetParam();
  const int seeds = seeds_per_cell();
  for (int nprocs : {2, 4, 8}) {
    for (int s = 0; s < seeds; ++s) {
      std::uint64_t seed = 0x5EED0000u + static_cast<std::uint64_t>(s);
      ChaosConfig chaos = ChaosConfig::intensity(level, seed);
      std::string why = failure_reason(nprocs, chaos);
      if (!why.empty()) {
        ADD_FAILURE() << why << "\n  failing config: " << replay_string(nprocs, chaos)
                      << "\n  shrunk to:      " << shrink(nprocs, chaos);
        return;  // one reproducer per regime is enough signal
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Intensity, FuzzMatrixTest, ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Level" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Replayability: the replay string alone reproduces a run bit-for-bit.

TEST(FuzzReplayTest, ReplayStringReproducesRunExactly) {
  ChaosConfig chaos = ChaosConfig::intensity(3, 0xC0FFEE);
  ParallelResult a = run_chaos(4, chaos);
  ParallelResult b = run_chaos(4, ChaosConfig::decode(chaos.encode()));
  EXPECT_EQ(a.machine.makespan, b.machine.makespan);
  EXPECT_EQ(a.machine.duplicated_messages, b.machine.duplicated_messages);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.violations, b.violations);
  ASSERT_EQ(a.basis_ids.size(), b.basis_ids.size());
  for (std::size_t i = 0; i < a.basis_ids.size(); ++i) {
    EXPECT_EQ(a.basis_ids[i].first, b.basis_ids[i].first);
    EXPECT_TRUE(a.basis_ids[i].second.equals(b.basis_ids[i].second));
  }
}

TEST(FuzzReplayTest, SweepsActuallyRan) {
  ParallelResult res = run_chaos(4, ChaosConfig::intensity(2, 7));
  // The monitor must have swept periodically plus once at quiescence;
  // a zero here would mean the harness silently checked nothing.
  EXPECT_GE(res.invariant_sweeps, 2u);
  EXPECT_TRUE(res.violations.empty());
}

// ---------------------------------------------------------------------------
// Checker validation: a deliberately injected protocol bug — a processor
// acks an INVALIDATE but drops the apply (ack-before-apply lost update) —
// must be caught by the coherence checker, with a replayable seed.

TEST(InjectedFaultTest, DroppedInvalidationIsCaughtByCoherenceChecker) {
  int caught = 0;
  std::string first_reproducer;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.fault_drop_invalidate_permille = 500;
    ParallelResult res = run_chaos(4, chaos);
    bool coherence = false;
    for (const std::string& v : res.violations) {
      if (v.find("basis-coherence") != std::string::npos) coherence = true;
    }
    if (coherence) {
      ++caught;
      if (first_reproducer.empty()) first_reproducer = replay_string(4, chaos);
    }
  }
  EXPECT_GE(caught, 3) << "coherence checker missed the injected lost-update bug";
  ASSERT_FALSE(first_reproducer.empty());
  // The reproducer replays to the same violation.
  std::size_t semi = first_reproducer.rfind("chaos:v1");
  ASSERT_NE(semi, std::string::npos);
  ChaosConfig replay = ChaosConfig::decode(first_reproducer.substr(semi));
  ParallelResult again = run_chaos(4, replay);
  bool coherence_again = false;
  for (const std::string& v : again.violations) {
    if (v.find("basis-coherence") != std::string::npos) coherence_again = true;
  }
  EXPECT_TRUE(coherence_again);
}

TEST(InjectedFaultTest, ShrinkStripsIrrelevantChaos) {
  // Start from the fault plus full schedule chaos; the fault alone explains
  // the failure, so shrinking must discard every schedule knob.
  ChaosConfig chaos = ChaosConfig::intensity(3, 2);
  chaos.fault_drop_invalidate_permille = 500;
  ASSERT_FALSE(failure_reason(4, chaos).empty()) << "fault did not trigger at this seed";
  std::string minimal = shrink(4, chaos);
  EXPECT_NE(minimal.find("fdi=500"), std::string::npos) << minimal;
  EXPECT_EQ(minimal.find("jit="), std::string::npos) << minimal;
  EXPECT_EQ(minimal.find("rp="), std::string::npos) << minimal;
  EXPECT_EQ(minimal.find("dp="), std::string::npos) << minimal;
  EXPECT_EQ(minimal.find("sp="), std::string::npos) << minimal;
}

}  // namespace
}  // namespace gbd
