file(REMOVE_RECURSE
  "CMakeFiles/hybrid_basis_test.dir/hybrid_basis_test.cpp.o"
  "CMakeFiles/hybrid_basis_test.dir/hybrid_basis_test.cpp.o.d"
  "hybrid_basis_test"
  "hybrid_basis_test.pdb"
  "hybrid_basis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_basis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
