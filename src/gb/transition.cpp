#include "gb/transition.hpp"

#include "gb/pairs.hpp"
#include "poly/reduce.hpp"
#include "poly/spoly.hpp"
#include "support/check.hpp"
#include "support/cost.hpp"
#include "support/rng.hpp"

namespace gbd {

namespace {

enum class Axiom { kSpoly, kReduce, kAugment, kDiscard };

struct Action {
  Axiom axiom;
  std::size_t target;  // index into gq for reduce/augment/discard
};

}  // namespace

TransitionResult groebner_transition(const PolySystem& sys, const TransitionConfig& cfg) {
  GBD_CHECK_MSG(!cfg.gb.coeff.is_zp(),
                "groebner_transition is exact-only; use the sequential or GL-P engines for Zp");
  TransitionResult res;
  const PolyContext& ctx = sys.ctx;
  const GbConfig& gb = cfg.gb;
  Rng rng(cfg.seed);
  CostScope total;

  std::vector<Polynomial> basis;
  for (const auto& p : sys.polys) {
    if (p.is_zero()) continue;
    Polynomial q = p;
    q.make_primitive();
    basis.push_back(std::move(q));
  }
  std::vector<Monomial> heads;
  for (const auto& g : basis) heads.push_back(g.hmono());

  SequentialPairQueue gpq(&ctx, gb.selection);
  DonePairs done;
  VectorReducerSet reducer_set(&basis);

  for (std::uint32_t i = 0; i < basis.size(); ++i) {
    for (std::uint32_t j = i + 1; j < basis.size(); ++j) {
      gpq.push(i, j, Monomial::lcm(heads[i], heads[j]));
      res.stats.pairs_created += 1;
    }
  }

  // gq: in-flight reducts, each remembering the pair that spawned it.
  struct Reduct {
    Polynomial poly;
    std::uint32_t from_i, from_j;
  };
  std::vector<Reduct> gq;

  auto fire_spoly = [&] {
    // Selection of the best pair is a heuristic, not a correctness
    // requirement (§3.1) — the axiom allows any pair; we take the best.
    PendingPair pair = gpq.pop_best();
    // Only self-grounded treatments enter `done` (see sequential.cpp for the
    // justification-cycle hazard): coprime prunes yes, chain/GM prunes no.
    if (gb.coprime_criterion && coprime_criterion(heads[pair.i], heads[pair.j])) {
      res.stats.pairs_pruned_coprime += 1;
      done.mark(pair.i, pair.j);
      return;
    }
    if (gb.chain_criterion && chain_criterion(pair.i, pair.j, pair.lcm, heads, done)) {
      res.stats.pairs_pruned_chain += 1;
      return;
    }
    Polynomial s = spoly(ctx, basis[pair.i], basis[pair.j]);
    s.make_primitive();
    res.stats.spolys_computed += 1;
    GBD_CHECK_MSG(res.stats.spolys_computed <= gb.max_spolys,
                  "groebner_transition exceeded max_spolys");
    gq.push_back(Reduct{std::move(s), pair.i, pair.j});
    res.trace.fired_spoly += 1;
  };

  auto fire_reduce_step = [&](std::size_t t) {
    const Polynomial* r = reducer_set.find_reducer(gq[t].poly.hmono(), nullptr);
    GBD_DCHECK(r != nullptr);
    CostScope step;
    gq[t].poly = reduce_step(ctx, gq[t].poly, *r);
    gq[t].poly.make_primitive();
    res.stats.reduction_steps += 1;
    res.stats.max_step_cost = std::max(res.stats.max_step_cost, step.elapsed());
    res.trace.fired_reduce += 1;
  };

  auto fire_augment = [&](std::size_t t) {
    Reduct r = std::move(gq[t]);
    gq.erase(gq.begin() + static_cast<std::ptrdiff_t>(t));
    done.mark(r.from_i, r.from_j);
    std::uint32_t m = static_cast<std::uint32_t>(basis.size());
    Monomial new_head = r.poly.hmono();
    res.stats.pairs_created += m;
    std::vector<bool> keep(m, true);
    if (gb.gm_update) {
      GmPruneCounts gm;
      std::vector<std::size_t> kept = gm_new_pairs(ctx, heads, new_head, &gm);
      keep.assign(m, false);
      for (std::size_t i : kept) keep[i] = true;
      res.stats.pairs_pruned_coprime += gm.coprime;
      res.stats.pairs_pruned_chain += gm.m_rule + gm.f_rule;
    }
    heads.push_back(new_head);
    basis.push_back(std::move(r.poly));
    res.stats.basis_added += 1;
    for (std::uint32_t i = 0; i < m; ++i) {
      if (keep[i]) {
        gpq.push(i, m, Monomial::lcm(heads[i], heads[m]));
      } else if (coprime_criterion(heads[i], heads[m])) {
        done.mark(i, m);  // grounded by criterion 1; M/F drops stay uncitable
      }
    }
    res.trace.fired_augment += 1;
  };

  auto fire_discard = [&](std::size_t t) {
    done.mark(gq[t].from_i, gq[t].from_j);
    gq.erase(gq.begin() + static_cast<std::ptrdiff_t>(t));
    res.stats.reductions_to_zero += 1;
    res.trace.fired_discard += 1;
  };

  while (!gpq.empty() || !gq.empty()) {
    if (cfg.fused_reduce_augment) {
      // Figure 5 variant: gq entries are processed to completion in one
      // firing; the scheduler only interleaves s-polynomial creation.
      std::vector<Action> actions;
      if (!gpq.empty() && gq.size() < cfg.max_inflight) actions.push_back({Axiom::kSpoly, 0});
      for (std::size_t t = 0; t < gq.size(); ++t) actions.push_back({Axiom::kReduce, t});
      Action a = actions[rng.below(actions.size())];
      if (a.axiom == Axiom::kSpoly) {
        fire_spoly();
      } else {
        // REDUCE/AUGMENT fused: reduce fully, then augment or discard.
        while (!gq[a.target].poly.is_zero() &&
               reducer_set.find_reducer(gq[a.target].poly.hmono(), nullptr) != nullptr) {
          fire_reduce_step(a.target);
        }
        if (gq[a.target].poly.is_zero()) {
          fire_discard(a.target);
        } else {
          fire_augment(a.target);
        }
      }
      continue;
    }

    // Separate-axiom schedule: enumerate every enabled (axiom, target)
    // action and fire one uniformly at random.
    std::vector<Action> actions;
    if (!gpq.empty() && gq.size() < cfg.max_inflight) actions.push_back({Axiom::kSpoly, 0});
    for (std::size_t t = 0; t < gq.size(); ++t) {
      if (gq[t].poly.is_zero()) {
        actions.push_back({Axiom::kDiscard, t});
      } else if (reducer_set.find_reducer(gq[t].poly.hmono(), nullptr) != nullptr) {
        actions.push_back({Axiom::kReduce, t});
      } else {
        actions.push_back({Axiom::kAugment, t});
      }
    }
    GBD_CHECK_MSG(!actions.empty(), "transition scheduler wedged: no enabled axiom");
    Action a = actions[rng.below(actions.size())];
    switch (a.axiom) {
      case Axiom::kSpoly:
        fire_spoly();
        break;
      case Axiom::kReduce:
        fire_reduce_step(a.target);
        break;
      case Axiom::kAugment:
        fire_augment(a.target);
        break;
      case Axiom::kDiscard:
        fire_discard(a.target);
        break;
    }
  }

  res.basis = std::move(basis);
  res.stats.work_units = total.elapsed();
  res.elapsed_units = res.stats.work_units;
  return res;
}

}  // namespace gbd
