# Empty dependencies file for gbd_machine.
# This may be replaced when dependencies are built.
