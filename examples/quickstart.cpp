// Quickstart: parse a polynomial system, compute its Gröbner basis with the
// sequential engine, print the canonical reduced basis, and verify it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "gb/sequential.hpp"
#include "gb/verify.hpp"
#include "io/parse.hpp"
#include "poly/reduce.hpp"

int main() {
  using namespace gbd;

  // A system is plain text: variables (declaration order = variable order),
  // a monomial order, and the generator polynomials.
  const char* text = R"(
    vars x, y, z;
    order grlex;
    x^2 + y^2 + z^2 - 1;
    x^2 - y + z^2;
    x - z;
  )";

  PolySystem sys;
  std::string err;
  if (!parse_system(text, &sys, &err)) {
    std::fprintf(stderr, "parse error: %s\n", err.c_str());
    return 1;
  }

  std::printf("Input generators:\n");
  for (const auto& p : sys.polys) {
    std::printf("  %s\n", p.to_string(sys.ctx).c_str());
  }

  // Compute the Gröbner basis (Buchberger's algorithm with the normal
  // selection strategy and full pair-elimination criteria).
  SequentialResult res = groebner_sequential(sys);
  std::printf("\nBuchberger: %llu s-polynomials, %llu reduced to zero, %llu added\n",
              static_cast<unsigned long long>(res.stats.spolys_computed),
              static_cast<unsigned long long>(res.stats.reductions_to_zero),
              static_cast<unsigned long long>(res.stats.basis_added));

  // The reduced Gröbner basis is canonical: any engine, any schedule, any
  // criteria configuration produces exactly this set.
  std::vector<Polynomial> reduced = reduce_basis(sys.ctx, res.basis);
  std::printf("\nReduced Groebner basis (%zu elements):\n", reduced.size());
  for (const auto& g : reduced) {
    std::printf("  %s\n", g.to_string(sys.ctx).c_str());
  }

  // Verify: every pairwise s-polynomial reduces to zero and every input lies
  // in the ideal of the output.
  std::string why;
  if (!verify_groebner_result(sys.ctx, sys.polys, res.basis, &why)) {
    std::fprintf(stderr, "verification FAILED: %s\n", why.c_str());
    return 1;
  }
  std::printf("\nVerified: output is a Groebner basis of the input ideal.\n");

  // Use it: ideal membership by reduction to normal form.
  Polynomial probe = parse_poly_or_die(sys.ctx, "(x - z) * (y + 7)");
  std::printf("NF((x-z)*(y+7)) = %s  (0 means: in the ideal)\n",
              ideal_contains(sys.ctx, res.basis, probe) ? "0" : "nonzero");
  return 0;
}
