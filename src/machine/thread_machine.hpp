// ThreadMachine — the Machine interface on real OS threads.
//
// One std::thread per logical processor; per-processor mailboxes guarded by
// one machine-wide mutex; sends are immediate enqueues. wait() blocks on a
// condition variable with machine-wide quiescence detection: when every
// processor is blocked or finished and no message is undelivered, all
// waiters are released with `false` (the shutdown signal). charge() is a
// no-op (real time just passes); now() is wall nanoseconds since run start.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "machine/machine.hpp"

namespace gbd {

class ThreadMachine final : public Machine {
 public:
  explicit ThreadMachine(int nprocs);
  ~ThreadMachine() override;

  int nprocs() const override { return nprocs_; }
  MachineStats run(const std::function<void(Proc&)>& worker) override;

 private:
  class ThreadProc;

  void maybe_quiesce_locked();

  int nprocs_;
  std::vector<std::unique_ptr<ThreadProc>> procs_;
  std::uint64_t epoch_ns_ = 0;

  // Quiescence bookkeeping, guarded by mu_.
  std::mutex mu_;
  std::condition_variable cv_;
  int blocked_ = 0;
  int finished_ = 0;
  std::uint64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace gbd
