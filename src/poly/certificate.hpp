// Reduction certificates: standard representations with explicit quotients.
//
// reduce_full (reduce.hpp) tells you the normal form; this variant
// additionally returns the witnesses — the scalar c and quotients q_i with
//
//     c · p  =  Σ_i q_i · g_i  +  r,        c a positive integer,
//
// which any third party can check by plain polynomial arithmetic, with no
// trust in the reduction engine at all. (The scalar c appears because the
// engines work fraction-free over Z; over Q it is a unit.) Certificates turn
// ideal-membership answers into proofs: p ∈ ⟨G⟩ is witnessed by r = 0 and
// the q_i. They cost extra arithmetic to build, so the engines use plain
// reduction and the oracles/tests use this.
#pragma once

#include <vector>

#include "poly/reduce.hpp"

namespace gbd {

struct Certificate {
  /// The positive scalar multiplying the input.
  BigInt scale{1};
  /// One quotient per element of the generating set (index-aligned).
  std::vector<Polynomial> quotients;
  /// The remainder (normal form).
  Polynomial remainder;
  std::uint64_t steps = 0;

  /// Recompute c·p − Σ q_i·g_i − r; the zero polynomial iff the certificate
  /// is valid for p over gens.
  Polynomial defect(const PolyContext& ctx, const Polynomial& p,
                    const std::vector<Polynomial>& gens) const;

  bool valid(const PolyContext& ctx, const Polynomial& p,
             const std::vector<Polynomial>& gens) const {
    return defect(ctx, p, gens).is_zero();
  }
};

/// Full head-and-tail reduction of p by gens, producing a checkable
/// certificate. Reducer choice matches VectorReducerSet (reducer_preferred),
/// so the remainder is the same strong normal form reduce_full computes with
/// tail_reduce = true (up to the primitive-form unit: the certificate keeps
/// the exact un-normalized remainder so the identity holds literally).
Certificate reduce_certified(const PolyContext& ctx, const Polynomial& p,
                             const std::vector<Polynomial>& gens);

/// Ideal membership with proof: returns true and fills *cert (if non-null)
/// when p reduces to zero modulo gb. REQUIRES gb to be a Gröbner basis for
/// completeness (soundness — a returned certificate — needs nothing).
bool ideal_contains_certified(const PolyContext& ctx, const std::vector<Polynomial>& gb,
                              const Polynomial& p, Certificate* cert = nullptr);

}  // namespace gbd
