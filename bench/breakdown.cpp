// PR 4 — the paper's activity breakdown (§6/§7 discussion): for trinks1 at
// P = 1/2/4/8 on the simulator, the per-processor split of virtual time into
// reduce / comm / hold / idle, plus the load-imbalance ratio and the real
// wall time of the (traced) simulation itself. Emits BENCH_pr4.json.
//
// The virtual-time percentages are deterministic for a fixed seed; wall_ms
// is the only host-dependent field.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

using namespace gbd;

namespace {

struct Run {
  int procs = 0;
  double wall_ms = 0;
  BreakdownReport report;
};

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

Run measure(const PolySystem& sys, int procs, std::uint64_t seed) {
  Tracer tracer;
  ParallelConfig cfg;
  cfg.gb = bench::paper_era_criteria();
  cfg.nprocs = procs;
  cfg.seed = seed;
  cfg.tracer = &tracer;
  auto t0 = std::chrono::steady_clock::now();
  ParallelResult res = groebner_parallel(sys, cfg);
  auto t1 = std::chrono::steady_clock::now();
  (void)res;
  Run run;
  run.procs = procs;
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.report = analyze_trace(tracer.data());
  return run;
}

void write_json(const std::string& path, const std::string& problem,
                const std::vector<Run>& runs) {
  std::ofstream out(path);
  char buf[256];
  out << "{\n  \"bench\": \"pr4_breakdown\",\n  \"problem\": \"" << problem << "\",\n"
      << "  \"note\": \"virtual-time activity split per processor (comm includes the "
         "unattributed residual); wall_ms is host wall time of the traced sim run\",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"procs\": %d, \"makespan\": %llu, \"wall_ms\": %.3f, "
                  "\"load_imbalance\": %.3f, \"critical_path\": %llu, \"per_proc\": [\n",
                  r.procs, static_cast<unsigned long long>(r.report.makespan), r.wall_ms,
                  r.report.load_imbalance,
                  static_cast<unsigned long long>(r.report.critical_path));
    out << buf;
    for (std::size_t p = 0; p < r.report.procs.size(); ++p) {
      const ProcBreakdown& b = r.report.procs[p];
      std::snprintf(buf, sizeof(buf),
                    "      {\"proc\": %zu, \"reduce_pct\": %.1f, \"comm_pct\": %.1f, "
                    "\"hold_pct\": %.1f, \"idle_pct\": %.1f, \"busy\": %llu}%s\n",
                    p, pct(b.reduce, r.report.makespan),
                    pct(b.comm + b.other, r.report.makespan), pct(b.hold, r.report.makespan),
                    pct(b.idle, r.report.makespan), static_cast<unsigned long long>(b.busy()),
                    p + 1 < r.report.procs.size() ? "," : "");
      out << buf;
    }
    out << "    ]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr4.json";
  std::string problem = "trinks1";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--problem") == 0 && i + 1 < argc) {
      problem = argv[++i];
    } else {
      std::fprintf(stderr, "usage: breakdown [--out FILE] [--problem NAME]\n");
      return 2;
    }
  }

  bench::print_header("PR 4: per-processor activity breakdown (trinks1, simulator)",
                      "The paper's utilization analysis: where each processor's virtual time\n"
                      "goes. Idle grows with P on a small problem — the Fig. 7(a) sublinearity\n"
                      "made visible.");

  PolySystem sys = load_problem(problem);
  std::vector<Run> runs;
  for (int p : {1, 2, 4, 8}) {
    Run run = measure(sys, p, /*seed=*/1);
    std::printf("-- %s P=%d  makespan %llu  imbalance %.3f  wall %.1f ms --\n", problem.c_str(),
                p, static_cast<unsigned long long>(run.report.makespan),
                run.report.load_imbalance, run.wall_ms);
    std::fputs(render_breakdown(run.report).c_str(), stdout);
    std::printf("\n");
    runs.push_back(std::move(run));
  }

  write_json(out_path, problem, runs);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
