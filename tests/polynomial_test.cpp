// Unit and property tests for sparse polynomial arithmetic.
#include "poly/polynomial.hpp"

#include <gtest/gtest.h>

#include "io/parse.hpp"
#include "problems/problems.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"

namespace gbd {
namespace {

PolyContext ctx3(OrderKind order = OrderKind::kGrLex) {
  return PolyContext{{"x", "y", "z"}, order};
}

Polynomial P(const PolyContext& c, std::string_view s) { return parse_poly_or_die(c, s); }

TEST(PolynomialTest, ZeroBasics) {
  Polynomial z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.nterms(), 0u);
  EXPECT_EQ(z.degree(), 0u);
  PolyContext c = ctx3();
  EXPECT_EQ(z.to_string(c), "0");
  EXPECT_TRUE(z.is_primitive());
}

TEST(PolynomialTest, FromTermsSortsAndMerges) {
  PolyContext c = ctx3();
  std::vector<Term> terms;
  terms.push_back(Term{BigInt(1), Monomial({1, 0, 0})});
  terms.push_back(Term{BigInt(2), Monomial({0, 2, 0})});
  terms.push_back(Term{BigInt(3), Monomial({1, 0, 0})});
  Polynomial p = Polynomial::from_terms(c, std::move(terms));
  // grlex: y^2 (deg 2) > x (deg 1); 1x+3x merge to 4x.
  EXPECT_EQ(p.to_string(c), "2*y^2 + 4*x");
}

TEST(PolynomialTest, FromTermsCancelsToZero) {
  PolyContext c = ctx3();
  std::vector<Term> terms;
  terms.push_back(Term{BigInt(5), Monomial({1, 1, 0})});
  terms.push_back(Term{BigInt(-5), Monomial({1, 1, 0})});
  EXPECT_TRUE(Polynomial::from_terms(c, std::move(terms)).is_zero());
}

TEST(PolynomialTest, HeadDependsOnOrder) {
  // p = x*z + y^2: grlex head is x*z, grevlex head is y^2.
  PolyContext cg = ctx3(OrderKind::kGrLex);
  PolyContext cr = ctx3(OrderKind::kGRevLex);
  Polynomial pg = P(cg, "x*z + y^2");
  Polynomial pr = P(cr, "x*z + y^2");
  EXPECT_EQ(pg.hmono().to_string(cg.vars), "x*z");
  EXPECT_EQ(pr.hmono().to_string(cr.vars), "y^2");
}

TEST(PolynomialTest, PaperCanonicalFormExample) {
  // §2 example: p = 2x^2y^3 - 7xy^10 + z under lex with x > y > z.
  PolyContext c = ctx3(OrderKind::kLex);
  Polynomial p = P(c, "2*x^2*y^3 - 7*x*y^10 + z");
  EXPECT_EQ(p.nterms(), 3u);
  EXPECT_EQ(p.hmono().to_string(c.vars), "x^2*y^3");
  EXPECT_EQ(p.hcoef().to_int64(), 2);
  EXPECT_EQ(p.to_string(c), "2*x^2*y^3 - 7*x*y^10 + z");
}

TEST(PolynomialTest, AddMergesAndCancels) {
  PolyContext c = ctx3();
  Polynomial a = P(c, "x^2 + 3*x*y - z");
  Polynomial b = P(c, "-x^2 + 2*z + 1");
  EXPECT_EQ(a.add(c, b).to_string(c), "3*x*y + z + 1");
  EXPECT_TRUE(a.add(c, -a).is_zero());
  EXPECT_EQ(a.add(c, Polynomial()).to_string(c), a.to_string(c));
}

TEST(PolynomialTest, SubIsAddNeg) {
  PolyContext c = ctx3();
  Polynomial a = P(c, "x + y");
  Polynomial b = P(c, "x - y");
  EXPECT_EQ(a.sub(c, b).to_string(c), "2*y");
}

TEST(PolynomialTest, MulTermPreservesOrderAllOrders) {
  for (OrderKind k : {OrderKind::kLex, OrderKind::kGrLex, OrderKind::kGRevLex}) {
    PolyContext c = ctx3(k);
    Polynomial p = P(c, "x^2*y + x*z^3 + y^2 + 7");
    Polynomial q = p.mul_term(BigInt(3), Monomial({1, 2, 0}));
    // Re-canonicalizing must be a no-op: order was preserved.
    std::vector<Term> ts(q.terms().begin(), q.terms().end());
    Polynomial canon = Polynomial::from_terms(c, std::move(ts));
    EXPECT_TRUE(q.equals(canon)) << order_name(k);
    EXPECT_EQ(q.nterms(), p.nterms());
  }
}

TEST(PolynomialTest, MulKnownProduct) {
  PolyContext c = ctx3();
  Polynomial a = P(c, "x + y");
  Polynomial b = P(c, "x - y");
  EXPECT_EQ(a.mul(c, b).to_string(c), "x^2 - y^2");
  Polynomial sq = a.mul(c, a);
  EXPECT_EQ(sq.to_string(c), "x^2 + 2*x*y + y^2");
}

TEST(PolynomialTest, ContentAndPrimitive) {
  PolyContext c = ctx3();
  Polynomial p = P(c, "6*x^2 - 9*y");  // content 3, head positive
  EXPECT_EQ(p.content().to_int64(), 3);
  EXPECT_FALSE(p.is_primitive());
  BigInt unit = p.make_primitive();
  EXPECT_EQ(unit.to_int64(), 3);
  EXPECT_EQ(p.to_string(c), "2*x^2 - 3*y");
  EXPECT_TRUE(p.is_primitive());

  // Negative head: the unit carries the sign.
  Polynomial q = p.mul_term(BigInt(-6), Monomial(3));
  EXPECT_FALSE(q.is_primitive());
  EXPECT_EQ(q.content().to_int64(), 6);
  BigInt unit2 = q.make_primitive();
  EXPECT_EQ(unit2.to_int64(), -6);
  EXPECT_TRUE(q.equals(p));

  // div_exact_scalar divides through and aborts on non-divisors (not tested);
  // exact division by the content yields the primitive magnitude.
  Polynomial r6 = p.mul_term(BigInt(6), Monomial(3));
  r6.div_exact_scalar(BigInt(6));
  EXPECT_TRUE(r6.equals(p));
}

TEST(PolynomialTest, MakePrimitiveOfZero) {
  Polynomial z;
  EXPECT_TRUE(z.make_primitive().is_zero());
  EXPECT_TRUE(z.is_zero());
}

TEST(PolynomialTest, SerializationRoundTrip) {
  PolyContext c = ctx3();
  for (const char* s : {"x", "0", "x^2*y - 12345678901234567890*z + 1", "3*x*y*z"}) {
    Polynomial p = P(c, s);
    Writer w;
    p.write(w);
    Reader r(w.data());
    Polynomial back = Polynomial::read(r);
    EXPECT_TRUE(r.done());
    EXPECT_TRUE(back.equals(p)) << s;
    EXPECT_EQ(p.wire_size(), w.size()) << s;
  }
}

TEST(PolynomialTest, HashAgreesWithEquality) {
  PolyContext c = ctx3();
  EXPECT_EQ(P(c, "x + y").hash(), P(c, "y + x").hash());
  EXPECT_NE(P(c, "x + y").hash(), P(c, "x - y").hash());
  EXPECT_NE(P(c, "x").hash(), P(c, "2*x").hash());
}

class PolyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolyPropertyTest, RingAxioms) {
  Rng rng(GetParam());
  PolySystem sys = random_system(rng, 3, 3, 4, 5, 9);
  const PolyContext& c = sys.ctx;
  const Polynomial& a = sys.polys[0];
  const Polynomial& b = sys.polys[1];
  const Polynomial& d = sys.polys[2];
  EXPECT_TRUE(a.add(c, b).equals(b.add(c, a)));
  EXPECT_TRUE(a.add(c, b).add(c, d).equals(a.add(c, b.add(c, d))));
  EXPECT_TRUE(a.mul(c, b).equals(b.mul(c, a)));
  EXPECT_TRUE(a.mul(c, b.add(c, d)).equals(a.mul(c, b).add(c, a.mul(c, d))));
  EXPECT_TRUE(a.sub(c, a).is_zero());
}

TEST_P(PolyPropertyTest, CanonicalInvariantMaintained) {
  Rng rng(GetParam() ^ 0xc0ffee);
  PolySystem sys = random_system(rng, 3, 2, 5, 6, 99);
  const PolyContext& c = sys.ctx;
  Polynomial p = sys.polys[0].mul(c, sys.polys[1]).add(c, sys.polys[0]);
  // Strictly decreasing monomials, no zero coefficients.
  for (std::size_t i = 0; i < p.nterms(); ++i) {
    EXPECT_FALSE(p.terms()[i].coeff.is_zero());
    if (i + 1 < p.nterms()) {
      EXPECT_GT(c.cmp(p.terms()[i].mono, p.terms()[i + 1].mono), 0);
    }
  }
}

TEST_P(PolyPropertyTest, DegreeOfProductAdds) {
  // For graded orders deg(a*b) == deg a + deg b (no characteristic issues
  // over Z, so heads cannot cancel).
  Rng rng(GetParam() ^ 0xdead);
  PolySystem sys = random_system(rng, 3, 2, 4, 5, 9);
  const Polynomial& a = sys.polys[0];
  const Polynomial& b = sys.polys[1];
  Polynomial ab = a.mul(sys.ctx, b);
  ASSERT_FALSE(ab.is_zero());
  EXPECT_EQ(ab.degree(), a.degree() + b.degree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyPropertyTest, ::testing::Values(7, 14, 21, 28, 35, 42));

}  // namespace
}  // namespace gbd
