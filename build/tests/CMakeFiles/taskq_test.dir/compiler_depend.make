# Empty compiler generated dependencies file for taskq_test.
# This may be replaced when dependencies are built.
