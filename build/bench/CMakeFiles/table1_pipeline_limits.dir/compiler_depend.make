# Empty compiler generated dependencies file for table1_pipeline_limits.
# This may be replaced when dependencies are built.
