file(REMOVE_RECURSE
  "CMakeFiles/fig8b_normalized_speedup.dir/fig8b_normalized_speedup.cpp.o"
  "CMakeFiles/fig8b_normalized_speedup.dir/fig8b_normalized_speedup.cpp.o.d"
  "fig8b_normalized_speedup"
  "fig8b_normalized_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_normalized_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
