file(REMOVE_RECURSE
  "CMakeFiles/geometry_proof.dir/geometry_proof.cpp.o"
  "CMakeFiles/geometry_proof.dir/geometry_proof.cpp.o.d"
  "geometry_proof"
  "geometry_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
